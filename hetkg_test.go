package hetkg

import (
	"net"
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	res, err := Run(RunConfig{
		Dataset: "fb15k",
		Scale:   ScaleTiny,
		System:  SystemHETKGC,
		Epochs:  2,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Final.MRR <= 0 || res.Entities == nil || res.Relations == nil {
		t.Error("incomplete result through the facade")
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 3 {
		t.Fatalf("DatasetNames = %v", names)
	}
	for _, n := range names {
		g, ok := DatasetByName(n, ScaleTiny, 1)
		if !ok || g.NumTriples() == 0 {
			t.Errorf("DatasetByName(%q) failed", n)
		}
	}
	g := FB15kLike(ScaleTiny, 1)
	if g.NumEntity != 500 {
		t.Errorf("FB15kLike tiny entities = %d", g.NumEntity)
	}
	if WN18Like(ScaleTiny, 1).NumRel != 18 {
		t.Error("WN18Like should have 18 relations")
	}
	if Freebase86mLike(ScaleTiny, 1).NumTriples() == 0 {
		t.Error("Freebase86mLike empty")
	}
}

func TestFacadeModelsAndEval(t *testing.T) {
	if len(ModelNames()) < 4 {
		t.Error("too few models")
	}
	m, err := NewModel("transe")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Dataset: "wn18", Scale: ScaleTiny, System: SystemDGLKE, Epochs: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := DatasetByName("wn18", ScaleTiny, 2)
	ev, err := Evaluate(EvalConfig{
		Model:         m,
		Entities:      res.Entities,
		Relations:     res.Relations,
		NumCandidates: 20,
		Seed:          3,
	}, g.Triples[:50])
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.MRR <= 0 || ev.MRR > 1 {
		t.Errorf("MRR = %v out of range", ev.MRR)
	}
}

func TestFacadeReadTSV(t *testing.T) {
	g, vocab, err := ReadTSV(strings.NewReader("a\tr\tb\nb\tr\tc\n"), "mini")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTriples() != 2 || vocab.NumEntities() != 3 {
		t.Error("ReadTSV through facade broken")
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	if _, ok := ExperimentByID("table6"); !ok {
		t.Error("table6 missing")
	}
	if len(ExperimentIDs()) != len(exps) {
		t.Error("IDs and Experiments disagree")
	}
}

func TestFacadeSystemsAndScales(t *testing.T) {
	if len(Systems()) != 4 {
		t.Error("Systems should list 4 systems")
	}
	if ParseScale("tiny") != ScaleTiny || ParseScale("paper") != ScalePaper {
		t.Error("ParseScale broken")
	}
	if Default1Gbps().RemoteBandwidthBps <= 0 {
		t.Error("Default1Gbps invalid")
	}
}

func TestFacadeCheckpointRoundTrip(t *testing.T) {
	res, err := Run(RunConfig{
		Dataset: "fb15k", Scale: ScaleTiny, System: SystemDGLKE, Epochs: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.ckpt"
	err = WriteCheckpoint(path, &Checkpoint{
		ModelName: "transe",
		Dim:       res.Entities.Dim,
		Dataset:   "fb15k",
		Seed:      4,
		Epochs:    1,
		System:    res.System,
		Entities:  res.Entities,
		Relations: res.Relations,
	})
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	c, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if c.Entities.Rows != res.Entities.Rows {
		t.Error("checkpoint lost rows")
	}
}

func TestFacadeKNN(t *testing.T) {
	res, err := Run(RunConfig{
		Dataset: "fb15k", Scale: ScaleTiny, System: SystemDGLKE, Epochs: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewKNN(res.Entities, KNNCosine)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ix.Neighbors(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 5 {
		t.Errorf("got %d neighbors", len(nb))
	}
}

func TestFacadeBuildAndServeShard(t *testing.T) {
	rc := RunConfig{Dataset: "fb15k", Scale: ScaleTiny, Machines: 2, Seed: 4}
	shard, err := BuildShard(rc, 0)
	if err != nil {
		t.Fatalf("BuildShard: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeShard(l, shard)
	defer l.Close()
	// A trainer can use it.
	rc.System = SystemDGLKE
	rc.Epochs = 1
	shard1, err := BuildShard(rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeShard(l1, shard1)
	defer l1.Close()
	rc.ShardAddrs = []string{l.Addr().String(), l1.Addr().String()}
	if _, err := Run(rc); err != nil {
		t.Fatalf("training against facade-served shards: %v", err)
	}
}
