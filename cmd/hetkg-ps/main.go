// hetkg-ps hosts one parameter-server shard as a standalone process, the
// multi-process deployment of the co-located PS architecture. Every shard
// derives its own rows deterministically from the run configuration (no
// state transfer), so a cluster is just N hetkg-ps processes plus one
// hetkg-train -shards process pointing at them.
//
// Example 2-machine deployment (three terminals):
//
//	hetkg-ps    -dataset fb15k -scale tiny -machines 2 -machine 0 -listen :7070
//	hetkg-ps    -dataset fb15k -scale tiny -machines 2 -machine 1 -listen :7071
//	hetkg-train -dataset fb15k -scale tiny -machines 2 -shards localhost:7070,localhost:7071
//
// Every flag shared with hetkg-train must be given the same value on all
// processes — the deterministic derivation depends on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetkg"
)

func main() {
	var (
		ds       = flag.String("dataset", "fb15k", "dataset preset: fb15k | wn18 | freebase86m")
		scale    = flag.String("scale", "small", "dataset scale: tiny | small | paper")
		mdl      = flag.String("model", "transe", "model (fixes the row widths)")
		dim      = flag.Int("dim", 0, "embedding dimension d (0 = scale default)")
		lr       = flag.Float64("lr", 0.1, "optimizer learning rate")
		optim    = flag.String("optimizer", "adagrad", "optimizer: adagrad | sgd | adam")
		machines = flag.Int("machines", 2, "total cluster machines")
		machine  = flag.Int("machine", 0, "this shard's machine index [0, machines)")
		partName = flag.String("partitioner", "metis", "graph partitioner: metis | ldg | random")
		seed     = flag.Int64("seed", 42, "random seed (must match the trainer)")
		listen   = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		codecs   = flag.String("codec", "", "comma-separated wire codec profiles to accept (empty = all)")
		coord    = flag.Bool("coordinator", false, "additionally host the cluster coordinator (exactly one shard per cluster; requires -shards)")
		shards   = flag.String("shards", "", "comma-separated addresses of ALL shards in machine order, advertised to joining workers (required with -coordinator)")
		hbEvery  = flag.Duration("heartbeat-interval", time.Second, "heartbeat cadence advertised to workers (with -coordinator)")
		wTimeout = flag.Duration("worker-timeout", 0, "declare a worker dead after this much heartbeat silence (0 = 3x -heartbeat-interval; with -coordinator)")
		metAddr  = flag.String("metrics-addr", "", "serve live metrics + pprof on this address (e.g. 127.0.0.1:6060; unauthenticated, loopback only unless -metrics-allow-remote)")
		metAllow = flag.Bool("metrics-allow-remote", false, "allow -metrics-addr to bind non-loopback addresses (exposes unauthenticated pprof)")
		telAddr  = flag.String("telemetry", "", "ship this shard's metrics to the coordinator at this address (not needed on the coordinator itself)")
		telEvery = flag.Duration("telemetry-every", 0, "telemetry report cadence (0 = default)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight connections on SIGINT/SIGTERM")
		artDir   = flag.String("artifacts", "", "serve dataset generation and partitioning from this content-addressed cache directory")
	)
	flag.Parse()

	var store *hetkg.ArtifactStore
	if *artDir != "" {
		var err error
		store, err = hetkg.OpenArtifacts(*artDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "artifacts:", err)
			os.Exit(1)
		}
	}

	shard, err := hetkg.BuildShard(hetkg.RunConfig{
		Dataset:         *ds,
		Scale:           hetkg.ParseScale(*scale),
		ModelName:       *mdl,
		Dim:             *dim,
		LR:              float32(*lr),
		OptimizerName:   *optim,
		Machines:        *machines,
		PartitionerName: *partName,
		Seed:            *seed,
		Artifacts:       store,
	}, *machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building shard:", err)
		os.Exit(1)
	}

	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	reg := hetkg.NewMetricsRegistry()
	shard.Instrument(reg)

	var membership *hetkg.ClusterMembership
	var fleet *hetkg.FleetTelemetry
	if *coord {
		if *shards == "" {
			fmt.Fprintln(os.Stderr, "-coordinator requires -shards (the full fleet, in machine order)")
			os.Exit(2)
		}
		addrs := strings.Split(*shards, ",")
		if len(addrs) != *machines {
			fmt.Fprintf(os.Stderr, "-shards lists %d addresses for %d machines\n", len(addrs), *machines)
			os.Exit(2)
		}
		fleet = hetkg.NewFleetTelemetry(hetkg.FleetTelemetryConfig{Logf: logf})
		fleet.Instrument(reg)
		membership, err = hetkg.NewMembership(hetkg.MemberConfig{
			Partitions:     *machines,
			ShardAddrs:     addrs,
			HeartbeatEvery: *hbEvery,
			WorkerTimeout:  *wTimeout,
			Telemetry:      fleet,
			Logf:           logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
			os.Exit(1)
		}
		membership.Instrument(reg)
	}

	if *metAddr != "" {
		var opts []hetkg.ServeOption
		if *metAllow {
			opts = append(opts, hetkg.MetricsAllowRemote())
		}
		if fleet != nil {
			opts = append(opts, hetkg.MetricsRoute("/fleet", fleet))
		}
		srv, err := hetkg.ServeMetrics(*metAddr, reg, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving http://%s/metrics (+ /debug/pprof)\n", srv.Addr())
		if fleet != nil {
			fmt.Printf("metrics: fleet view on http://%s/fleet (hetkg-top -addr %s)\n", srv.Addr(), srv.Addr())
		}
	}

	// Every shard reports into the fleet view: the coordinator's own shard
	// in-process through its membership, the rest over TCP via -telemetry.
	label := fmt.Sprintf("machine-%d", *machine)
	startShipper := func(send hetkg.TelemetrySender) *hetkg.TelemetryShipper {
		s := hetkg.NewTelemetryShipper(hetkg.TelemetryRoleShard, label, reg.Snapshot, send, *telEvery, logf)
		s.Start()
		return s
	}
	switch {
	case membership != nil:
		shipper := startShipper(membership)
		defer shipper.Stop()
	case *telAddr != "":
		// Shard launch order is not guaranteed, so the coordinator may not
		// be listening yet: dial in the background and retry until it is.
		// The connection and shipper live for the rest of the process.
		addr := *telAddr
		go func() {
			for attempt := 0; ; attempt++ {
				cc, err := hetkg.DialCoordinator(addr, 5*time.Second)
				if err == nil {
					logf("telemetry: shipping to coordinator %s as shard/%s", addr, label)
					startShipper(cc)
					return
				}
				if attempt == 0 {
					logf("telemetry: coordinator %s unreachable (%v), retrying every 1s", addr, err)
				}
				time.Sleep(time.Second)
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("hetkg-ps: shard %d/%d serving %d rows on %s (dataset=%s scale=%s seed=%d)\n",
		*machine, *machines, shard.NumRows(), l.Addr(), *ds, *scale, *seed)

	// Serve until SIGINT/SIGTERM, then drain: close the listener (stops
	// accepting), wait up to -grace for trainer connections to finish,
	// force-close stragglers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var acc hetkg.ShardAcceptor
	if *codecs != "" {
		acc.AllowCodecs = strings.Split(*codecs, ",")
	}
	if membership != nil {
		acc.Coordinator = membership
		timeout := *wTimeout
		if timeout <= 0 {
			timeout = 3 * *hbEvery
		}
		fmt.Printf("hetkg-ps: coordinating %d partitions (heartbeat %v, worker timeout %v)\n",
			*machines, *hbEvery, timeout)
	}
	served := make(chan struct{})
	go func() {
		acc.Serve(l, shard)
		close(served)
	}()
	select {
	case <-served: // listener failed underneath us
		fmt.Fprintln(os.Stderr, "hetkg-ps: listener closed")
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("hetkg-ps: shutting down, draining connections")
	l.Close()
	acc.Shutdown(*grace)
}
