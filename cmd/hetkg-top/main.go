// hetkg-top is a live terminal dashboard over a cluster's fleet telemetry:
// it polls the coordinator's /fleet endpoint (a hetkg-ps -coordinator
// process with -metrics-addr set) and renders one row per process — derived
// rates, cache hit ratio, a sparkline of the recent primary rate, report
// age — plus the currently active health alerts (straggler, cache
// degradation, comm stall, telemetry lag).
//
//	hetkg-ps -coordinator -shards ... -metrics-addr 127.0.0.1:6060 ...
//	hetkg-top -addr 127.0.0.1:6060
//
// By default the screen refreshes every 2s until interrupted. With -once it
// prints a single snapshot and exits; add -fail-on-alert to exit nonzero
// when any alert is active (the cluster smoke test's health assertion).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetkg/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6060", "coordinator metrics address serving /fleet (host:port or a full http:// URL)")
		refresh = flag.Duration("refresh", 2*time.Second, "poll and redraw interval")
		once    = flag.Bool("once", false, "print one snapshot and exit instead of refreshing")
		failOn  = flag.Bool("fail-on-alert", false, "exit with status 1 when any health alert is active")
	)
	flag.Parse()

	url := fleetURL(*addr)
	if *once {
		v, err := fetchView(url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetkg-top:", err)
			os.Exit(1)
		}
		render(os.Stdout, v)
		if *failOn && len(v.Alerts) > 0 {
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	alerted := watch(ctx, os.Stdout, url, *refresh)
	if *failOn && alerted {
		os.Exit(1)
	}
}

// watch polls url every refresh and redraws until ctx is cancelled. It
// returns whether any poll showed an active alert.
func watch(ctx context.Context, w io.Writer, url string, refresh time.Duration) bool {
	alerted := false
	t := time.NewTicker(refresh)
	defer t.Stop()
	for {
		v, err := fetchView(url)
		fmt.Fprint(w, "\033[H\033[2J") // home + clear: redraw in place
		if err != nil {
			fmt.Fprintf(w, "hetkg-top: %v (retrying every %v)\n", err, refresh)
		} else {
			render(w, v)
			alerted = alerted || len(v.Alerts) > 0
		}
		select {
		case <-ctx.Done():
			return alerted
		case <-t.C:
		}
	}
}

// fleetURL normalizes -addr into the /fleet URL.
func fleetURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + "/fleet"
}

// fetchView GETs and decodes one FleetView, rejecting non-fleet documents
// (e.g. pointing -addr at a process that serves /metrics but hosts no
// coordinator).
func fetchView(url string) (*telemetry.FleetView, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s (is this address a coordinator with -metrics-addr?)", url, resp.Status)
	}
	var v telemetry.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	if v.Kind != telemetry.ViewKind {
		return nil, fmt.Errorf("%s is %q, want %q", url, v.Kind, telemetry.ViewKind)
	}
	return &v, nil
}

// render draws one fleet snapshot: the per-process table then the active
// alerts.
func render(w io.Writer, v *telemetry.FleetView) {
	fmt.Fprintf(w, "fleet: %d processes, %d active alerts\n\n", len(v.Processes), len(v.Alerts))
	if len(v.Processes) == 0 {
		fmt.Fprintln(w, "  no processes have reported yet")
		return
	}
	fmt.Fprintf(w, "  %-28s%10s%12s%12s%7s%8s%9s  %-16s%s\n",
		"process", "reports", "rate", "bytes/s", "hit%", "links", "age", "trend", "alerts")
	for _, p := range v.Processes {
		fmt.Fprintf(w, "  %-28s%10d%12s%12s%7s%8s%9s  %-16s%s\n",
			p.ID, p.Reports,
			fmtRate(primaryOf(p)),
			fmtRate(rateOr(p, "bytes_s")),
			fmtHit(p.HitRatio),
			fmtLinks(p.LinksDown),
			fmtMS(p.AgeMS),
			sparkline(p.History),
			strings.Join(p.Alerts, ","))
	}
	if len(v.Alerts) == 0 {
		fmt.Fprintln(w, "\n  no active alerts")
		return
	}
	fmt.Fprintln(w, "\nactive alerts:")
	for _, a := range v.Alerts {
		subject := a.Proc
		if subject == "" {
			subject = "fleet"
		}
		fmt.Fprintf(w, "  [%s] %s: %s (active %s)\n", a.Rule, subject, a.Message, fmtMS(a.SinceMS))
	}
}

// primaryOf returns a process's primary rate (iter/s for workers, rpc/s for
// shards, req/s for serve), NaN-free: -1 marks "unknown".
func primaryOf(p telemetry.ProcessView) float64 {
	return rateOr(p, telemetry.PrimaryRate(p.Role))
}

// rateOr returns the named derived rate, or -1 when the process has not
// produced it yet.
func rateOr(p telemetry.ProcessView, name string) float64 {
	if v, ok := p.Rates[name]; ok {
		return v
	}
	return -1
}

// fmtRate renders a per-second rate compactly ("-" for unknown, k/M
// suffixes above 10^3/10^6).
func fmtRate(v float64) string {
	switch {
	case v < 0:
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtHit renders a cache hit ratio as a percentage, "-" when the role has
// no cache or saw no accesses in the window.
func fmtHit(r *float64) string {
	if r == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", *r*100)
}

// fmtLinks renders per-process shard link health: "-" when the process
// reports no link-layer gauge (in-proc transport, shards themselves), "ok"
// when every link is up, "N down" while circuit breakers are open.
func fmtLinks(n *int) string {
	switch {
	case n == nil:
		return "-"
	case *n == 0:
		return "ok"
	default:
		return fmt.Sprintf("%d down", *n)
	}
}

// fmtMS renders a millisecond quantity as a duration ("1.2s", "450ms").
func fmtMS(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	if d >= time.Second {
		return d.Round(100 * time.Millisecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// sparkline renders values as Unicode blocks, min-max scaled (same scheme
// as hetkg-trace's per-run sparklines).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
