package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/telemetry"
)

// fixtureView is a hand-built fleet snapshot: two healthy workers, one
// straggler, a shard, and a serve replica.
func fixtureView() telemetry.FleetView {
	hit := 0.75
	return telemetry.FleetView{
		Kind: telemetry.ViewKind,
		Processes: []telemetry.ProcessView{
			{ID: "serve/127.0.0.1:8080", Role: telemetry.RoleServe, Label: "127.0.0.1:8080", Reports: 4,
				AgeMS: 500, Rates: map[string]float64{"req_s": 1234}, HitRatio: &hit},
			{ID: "shard/machine-0", Role: telemetry.RoleShard, Label: "machine-0", Reports: 9,
				AgeMS: 900, Rates: map[string]float64{"rpc_s": 220, "bytes_s": 2_500_000}},
			{ID: "worker/w0", Role: telemetry.RoleWorker, Label: "w0", Reports: 10,
				AgeMS: 1000, Rates: map[string]float64{"iter_s": 100, "bytes_s": 50_000},
				History: []float64{90, 95, 100, 100}},
			{ID: "worker/w1", Role: telemetry.RoleWorker, Label: "w1", Reports: 10,
				AgeMS: 1100, Rates: map[string]float64{"iter_s": 20, "bytes_s": 10_000},
				History: []float64{100, 60, 30, 20}, Alerts: []string{telemetry.RuleStraggler}},
		},
		Alerts: []telemetry.Alert{{
			Rule: telemetry.RuleStraggler, Proc: "worker/w1", Value: 20, Threshold: 50,
			SinceMS: 4000, Message: "iter/s 20.0 vs fleet median 100.0 (z=-1.0)",
		}},
	}
}

func serveFixture(t *testing.T, v telemetry.FleetView) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Errorf("encoding fixture: %v", err)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRenderSnapshot(t *testing.T) {
	v := fixtureView()
	var buf bytes.Buffer
	render(&buf, &v)
	out := buf.String()
	for _, want := range []string{
		"fleet: 4 processes, 1 active alerts",
		"worker/w0", "worker/w1", "shard/machine-0", "serve/127.0.0.1:8080",
		"100.0", // w0 primary iter/s
		"50.0k", // w0 bytes/s with k suffix
		"2.5M",  // shard bytes/s with M suffix
		"1.2k",  // serve req/s
		"75%",   // serve hit ratio
		"▁▄██",  // w0 sparkline rises
		"█▄▁▁",  // w1 sparkline falls
		"straggler",
		"[straggler] worker/w1: iter/s 20.0 vs fleet median 100.0 (z=-1.0) (active 4s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmptyAndHealthy(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, &telemetry.FleetView{Kind: telemetry.ViewKind})
	if !strings.Contains(buf.String(), "no processes have reported yet") {
		t.Errorf("empty view render:\n%s", buf.String())
	}

	buf.Reset()
	v := fixtureView()
	v.Alerts = nil
	render(&buf, &v)
	if !strings.Contains(buf.String(), "no active alerts") {
		t.Errorf("healthy view render:\n%s", buf.String())
	}
}

func TestFetchView(t *testing.T) {
	srv := serveFixture(t, fixtureView())
	v, err := fetchView(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("fetchView: %v", err)
	}
	if len(v.Processes) != 4 || len(v.Alerts) != 1 {
		t.Fatalf("view = %d processes, %d alerts", len(v.Processes), len(v.Alerts))
	}

	// A 404 (not a coordinator) and a non-fleet document must both error.
	if _, err := fetchView(srv.URL + "/nope"); err == nil {
		t.Error("404 accepted")
	}
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"kind":"hetkg-timeline/v1"}`))
	}))
	defer other.Close()
	if _, err := fetchView(other.URL); err == nil {
		t.Error("non-fleet document accepted")
	} else if !strings.Contains(err.Error(), telemetry.ViewKind) {
		t.Errorf("kind error not descriptive: %v", err)
	}
}

// TestFetchViewEndToEnd is the fault-injection drill end to end: a real
// aggregator under an injectable clock, three workers with one artificially
// slowed, served over HTTP and read through hetkg-top's own fetch+render.
// The straggler rule must fire deterministically and show up both on the
// slow worker's row and in the active-alerts section — exactly what
// `hetkg-top -once` prints against a live coordinator.
func TestFetchViewEndToEnd(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fleet := telemetry.NewFleet(telemetry.FleetConfig{Now: func() time.Time { return clock }})
	// Per-second iteration rates: w2 is the injected fault, crawling at a
	// fifth of the healthy pace.
	rates := map[string]int64{"w0": 100, "w1": 110, "w2": 20}
	totals := map[string]int64{}
	for round := 1; round <= 6; round++ {
		for label, rate := range rates {
			totals[label] += rate
			reg := metrics.NewRegistry()
			reg.Counter(metrics.MTrainIterations).Add(totals[label])
			if err := fleet.Ingest(telemetry.Report{
				Role: telemetry.RoleWorker, Label: label, Seq: int64(round), Metrics: reg.Snapshot(),
			}); err != nil {
				t.Fatal(err)
			}
		}
		clock = clock.Add(time.Second)
	}
	mux := http.NewServeMux()
	mux.Handle("/fleet", fleet)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	v, err := fetchView(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("fetchView: %v", err)
	}
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != telemetry.RuleStraggler || v.Alerts[0].Proc != "worker/w2" {
		t.Fatalf("alerts = %+v, want one straggler on worker/w2", v.Alerts)
	}
	var buf bytes.Buffer
	render(&buf, v)
	out := buf.String()
	for _, want := range []string{
		"fleet: 3 processes, 1 active alerts",
		"worker/w0", "worker/w1",
		"[straggler] worker/w2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("end-to-end render missing %q:\n%s", want, out)
		}
	}
	// The straggler marker sits on the slow worker's row, not the healthy ones.
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "worker/w2") && !strings.Contains(line, "straggler"):
			t.Errorf("straggler row unmarked: %q", line)
		case strings.Contains(line, "worker/w0") && strings.Contains(line, "straggler"):
			t.Errorf("healthy row marked: %q", line)
		}
	}
}

func TestWatchLoop(t *testing.T) {
	srv := serveFixture(t, fixtureView())
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	alerted := watch(ctx, &buf, srv.URL+"/fleet", 50*time.Millisecond)
	if !alerted {
		t.Error("watch over an alerting fleet reported no alerts")
	}
	if !strings.Contains(buf.String(), "worker/w1") {
		t.Errorf("watch output missing process rows:\n%s", buf.String())
	}
}

func TestFleetURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:6060":         "http://127.0.0.1:6060/fleet",
		"http://127.0.0.1:6060":  "http://127.0.0.1:6060/fleet",
		"http://127.0.0.1:6060/": "http://127.0.0.1:6060/fleet",
	} {
		if got := fleetURL(in); got != want {
			t.Errorf("fleetURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := fmtRate(-1); got != "-" {
		t.Errorf("fmtRate(-1) = %q", got)
	}
	if got := fmtRate(999); got != "999.0" {
		t.Errorf("fmtRate(999) = %q", got)
	}
	if got := fmtHit(nil); got != "-" {
		t.Errorf("fmtHit(nil) = %q", got)
	}
	if got := fmtMS(450); got != "450ms" {
		t.Errorf("fmtMS(450) = %q", got)
	}
	if got := fmtMS(1234); got != "1.2s" {
		t.Errorf("fmtMS(1234) = %q", got)
	}
}
