package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetkg/internal/plan/benchfmt"
)

const testPlan = `
plan: clitest
run:
  scale: tiny
  epochs: 1
  machines: 2
  evalMax: 50
sweep:
  codec: [fp32, int8]
compare:
  tolerance:
    wall_ms: 1000      # wall clock is not comparable across machines
    iters_per_sec: 1000
`

func writePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.yml")
	if err := os.WriteFile(path, []byte(testPlan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlanVerbDeterministic(t *testing.T) {
	path := writePlan(t)
	var out1, out2, errb strings.Builder
	if code := run([]string{"plan", path}, &out1, &errb); code != 0 {
		t.Fatalf("plan exit %d: %s", code, errb.String())
	}
	if code := run([]string{"plan", path}, &out2, &errb); code != 0 {
		t.Fatalf("plan exit %d: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("plan output not deterministic:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	for _, want := range []string{"plan clitest: 2 run(s)", "codec=fp32", "codec=int8"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("plan output lacks %q:\n%s", want, out1.String())
		}
	}
}

func TestApplyAndCompareRoundTrip(t *testing.T) {
	path := writePlan(t)
	outDir := t.TempDir()
	artDir := filepath.Join(t.TempDir(), "artifacts")

	var out, errb strings.Builder
	code := run([]string{"apply", "-artifacts", artDir, "-out", outDir, "-q", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("apply exit %d: %s", code, errb.String())
	}
	snap := filepath.Join(outDir, "BENCH_clitest.json")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v (stdout: %s)", err, out.String())
	}

	// The snapshot gates cleanly against itself.
	out.Reset()
	errb.Reset()
	code = run([]string{"compare", "-plan", path, snap, snap}, &out, &errb)
	if code != 0 {
		t.Fatalf("self-compare exit %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "compare: OK") {
		t.Errorf("verdict missing:\n%s", out.String())
	}

	// Inject a 20% mrr regression into the baseline (baseline better than
	// current by >tolerance) — the gate must fail.
	f, err := benchfmt.Read(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Rows {
		f.Rows[i].Values["mrr"] *= 1.25
	}
	inflated := filepath.Join(outDir, "BENCH_inflated.json")
	data, _ := json.Marshal(f)
	if err := os.WriteFile(inflated, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"compare", "-plan", path, snap, inflated}, &out, &errb)
	if code != 1 {
		t.Fatalf("regression compare exit %d, want 1:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "compare: FAIL") {
		t.Errorf("regression output:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus-verb"},
		{"plan"},
		{"apply"},
		{"compare", "only-one.json"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	var out, errb strings.Builder
	if code := run([]string{"help"}, &out, &errb); code != 0 || !strings.Contains(out.String(), "usage:") {
		t.Errorf("help exit %d output %q", code, out.String())
	}
	// Runtime (not usage) failures exit 1.
	if code := run([]string{"plan", "/nonexistent.yml"}, &out, &errb); code != 1 {
		t.Errorf("missing plan file exit %d, want 1", code)
	}
}
