// hetkg drives declarative experiment plans (DESIGN.md §14).
//
// Usage:
//
//	hetkg plan examples/plans/codecs.yml
//	hetkg apply -out . examples/plans/codecs.yml
//	hetkg compare -plan examples/plans/ci.yml BENCH_ci.json examples/plans/BENCH_baseline.json
//
// `plan` resolves the sweep matrix and prints one line per run with its
// canonical config hash; `apply` executes the matrix in-process — dataset
// generation and partitioning served from the content-addressed artifact
// cache — and writes one hetkg-bench/v2 snapshot; `compare` gates a
// snapshot against a committed baseline and exits non-zero on regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hetkg/internal/artifact"
	"hetkg/internal/plan"
	"hetkg/internal/plan/benchfmt"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

const usage = `usage:
  hetkg plan  [-full] <plan.yml>                 resolve and print the run matrix
  hetkg apply [-artifacts dir] [-out dir] <plan.yml>
                                                 execute the plan, write BENCH_<plan>.json
  hetkg compare [-plan plan.yml] [-q] <current.json> <baseline.json>
                                                 gate a snapshot against a baseline
`

// run is the testable entry point: 0 on success, 1 on execution or gate
// failure, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "plan":
		return runPlan(args[1:], stdout, stderr)
	case "apply":
		return runApply(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "hetkg: unknown verb %q\n%s", args[0], usage)
		return 2
	}
}

func runPlan(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetkg plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "print full 64-char config hashes")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "hetkg plan: exactly one plan file expected")
		return 2
	}
	p, err := plan.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	runs, err := p.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "plan %s: %d run(s)\n", p.Name, len(runs))
	for i, r := range runs {
		hash := r.Spec.ShortHash()
		if *full {
			hash = r.Hash
		}
		fmt.Fprintf(stdout, "%3d  %s  %s\n", i+1, hash, r.Name)
	}
	return 0
}

func runApply(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetkg apply", flag.ContinueOnError)
	fs.SetOutput(stderr)
	artDir := fs.String("artifacts", filepath.Join(os.TempDir(), "hetkg-artifacts"),
		"artifact cache directory (empty = no caching)")
	outDir := fs.String("out", ".", "directory for the BENCH_<plan>.json snapshot")
	quiet := fs.Bool("q", false, "suppress per-run progress")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "hetkg apply: exactly one plan file expected")
		return 2
	}
	p, err := plan.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	opt := plan.ApplyOptions{}
	if *artDir != "" {
		st, err := artifact.Open(*artDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		opt.Artifacts = st
	}
	if !*quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "[apply] "+format+"\n", args...)
		}
	}
	res, err := plan.Apply(p, opt)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	path, err := benchfmt.WriteDir(*outDir, res.File)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d runs, artifact cache: %d hits, %d misses)\n",
		path, len(res.File.Rows), res.CacheHits, res.CacheMisses)
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetkg compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	planPath := fs.String("plan", "", "plan file supplying compare tolerances")
	quiet := fs.Bool("q", false, "print only the verdict")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "hetkg compare: expected <current.json> <baseline.json>")
		return 2
	}
	var tol map[string]float64
	if *planPath != "" {
		p, err := plan.Load(*planPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tol = p.Tolerance
	}
	cur, err := benchfmt.Read(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	base, err := benchfmt.Read(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep := plan.Compare(cur, base, tol)
	if !*quiet {
		for _, d := range rep.Deltas {
			fmt.Fprintln(stdout, " ", d)
		}
	}
	for _, row := range rep.MissingRows {
		fmt.Fprintf(stdout, "  %s: MISSING ROW\n", row)
	}
	for _, f := range rep.MissingFields {
		fmt.Fprintf(stdout, "  %s: MISSING FIELD\n", f)
	}
	fmt.Fprintln(stdout, rep.Summary())
	if !rep.OK() {
		return 1
	}
	return 0
}
