// hetkg-eval scores a saved checkpoint on a link-prediction test set.
//
// Usage:
//
//	hetkg-eval -ckpt model.ckpt                       # preset test split from the checkpoint's provenance
//	hetkg-eval -ckpt model.ckpt -in test.tsv          # user-supplied test triples
//	hetkg-eval -ckpt model.ckpt -candidates 1000      # sampled-candidate protocol
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hetkg"
	"hetkg/internal/eval"
	"hetkg/internal/kg"
)

func main() {
	var (
		ckptPath   = flag.String("ckpt", "", "checkpoint file written by hetkg-train -save (required)")
		in         = flag.String("in", "", "TSV test triples (default: re-derive the preset's test split)")
		scale      = flag.String("scale", "small", "scale of the provenance dataset")
		candidates = flag.Int("candidates", 0, "rank against this many sampled negatives (0 = all entities)")
		maxTriples = flag.Int("max", 1000, "maximum test triples to score (0 = all)")
		filtered   = flag.Bool("filtered", true, "exclude known positives from candidate rankings")
		task       = flag.String("task", "linkpred", "evaluation task: linkpred | classify")
		parallel   = flag.Int("parallelism", 0, "cores used to rank test triples (0 = all; results identical at any value)")
	)
	flag.Parse()
	if *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "-ckpt is required")
		os.Exit(2)
	}

	c, err := hetkg.ReadCheckpoint(*ckptPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mdl, err := hetkg.NewModel(c.ModelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var test []hetkg.Triple
	var filter *kg.TripleSet
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		g, _, err := kg.ReadTSV(f, *in)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse:", err)
			os.Exit(1)
		}
		test = g.Triples
		filter = kg.NewTripleSet(g.Triples)
	} else {
		g, ok := hetkg.DatasetByName(c.Dataset, hetkg.ParseScale(*scale), c.Seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "checkpoint's dataset %q is not a preset; pass -in\n", c.Dataset)
			os.Exit(2)
		}
		sp, err := kg.SplitTriples(g, rand.New(rand.NewSource(c.Seed+17)), 0.05, 0.05)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		test = sp.Test.Triples
		filter = sp.AllTriples()
	}
	if *maxTriples > 0 && len(test) > *maxTriples {
		test = test[:*maxTriples]
	}
	if !*filtered {
		filter = nil
	}

	cfg := hetkg.EvalConfig{
		Model:         mdl,
		Entities:      c.Entities,
		Relations:     c.Relations,
		Filter:        filter,
		NumCandidates: *candidates,
		Seed:          c.Seed + 99,
		Parallelism:   *parallel,
	}
	fmt.Printf("checkpoint %s: model=%s dim=%d dataset=%s system=%s epochs=%d\n",
		*ckptPath, c.ModelName, c.Dim, c.Dataset, c.System, c.Epochs)
	switch *task {
	case "classify":
		// Use the first half of the test triples to learn thresholds and
		// the second half to measure accuracy.
		if len(test) < 4 {
			fmt.Fprintln(os.Stderr, "classify needs at least 4 test triples")
			os.Exit(1)
		}
		half := len(test) / 2
		cres, err := eval.Classify(cfg, test[:half], test[half:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "classify:", err)
			os.Exit(1)
		}
		fmt.Printf("triple classification over %d triples: accuracy %.3f (%d relations)\n",
			cres.N, cres.Accuracy, len(cres.PerRelation))
	default:
		res, err := hetkg.Evaluate(cfg, test)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		fmt.Printf("test triples: %d (%d rankings)\n", len(test), res.N)
		fmt.Printf("%s | Hits@3 %.3f\n", res, res.Hits[3])
	}
}
