// hetkg-train runs one distributed KGE training job and reports per-epoch
// progress, the final link-prediction metrics, and the time/traffic
// breakdown.
//
// Usage:
//
//	hetkg-train -dataset fb15k -system hetkg-d -model transe -machines 4 -epochs 5
//
// The experiment-semantic flags (dataset, model, cache, codec, ...) are the
// shared plan surface (internal/plan.BindFlags) — identical names, defaults,
// and mapping as plan-file `run:` keys — so hetkg-train and `hetkg apply`
// cannot drift. The flags below them here are deployment concerns (shards,
// checkpoints, observability) that plans never configure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetkg"
	"hetkg/internal/artifact"
	"hetkg/internal/plan"
	"hetkg/internal/trace"
)

func main() {
	spec := plan.BindFlags(flag.CommandLine)
	var (
		inFile   = flag.String("in", "", "train on TSV triples from this file instead of a preset")
		save     = flag.String("save", "", "write the trained embeddings to this checkpoint file")
		load     = flag.String("load", "", "resume training from this checkpoint file")
		shards   = flag.String("shards", "", "comma-separated hetkg-ps addresses (one per machine) for a multi-process run")
		join     = flag.String("join", "", "coordinator address for an elastic cluster run (shard fleet is discovered from the join reply; see OPERATIONS.md)")
		hbEvery  = flag.Duration("heartbeat-interval", 0, "override the coordinator-advertised heartbeat cadence (with -join)")
		ckptDir  = flag.String("ckpt-dir", "", "write per-partition progress snapshots to this directory for crash recovery (with -join)")
		ckptN    = flag.Int("ckpt-every", 0, "iterations between progress snapshots (0 = 16; with -join)")
		recoverD = flag.String("recover-from", "", "read adopted partitions' progress snapshots from this directory (default: -ckpt-dir)")
		rpcTO    = flag.Duration("rpc-timeout", 0, "per-attempt deadline on remote-shard RPCs (0 = default 10s, negative disables)")
		rpcRetry = flag.Int("rpc-retries", 0, "retry budget per remote-shard RPC after a link failure (0 = default 3, negative disables)")
		degStale = flag.Int("degraded-max-staleness", 0, "ride out shard outages by serving cached rows up to this many iterations stale and buffering pushes for replay (0 = fail fast; hetkg-c/hetkg-d only)")
		artDir   = flag.String("artifacts", "", "serve dataset generation and partitioning from this content-addressed cache directory")
		traceOut = flag.String("trace", "", "write a per-epoch JSONL trace to this file")
		timeline = flag.String("timeline", "", "write a per-iteration JSONL timeline to this file")
		tlEvery  = flag.Int("timeline-every", 0, "iterations between timeline records (0 = default)")
		spanOut  = flag.String("span", "", "trace every Nth batch per worker and write the spans to this file")
		spanN    = flag.Int("span-every", 0, "batch sampling interval for -span (0 = default 16)")
		spanFmt  = flag.String("span-format", "jsonl", "span output format: jsonl (hetkg-spans/v1) | chrome (Perfetto trace-event JSON)")
		metAddr  = flag.String("metrics-addr", "", "serve live metrics + pprof on this address (e.g. 127.0.0.1:6060; unauthenticated, loopback only unless -metrics-allow-remote)")
		metAllow = flag.Bool("metrics-allow-remote", false, "allow -metrics-addr to bind non-loopback addresses (exposes unauthenticated pprof)")
		machine  = flag.Int("machine", -1, "run only this machine's workers (-1 = all; requires -shards for a real deployment)")
	)
	flag.Parse()

	rc, err := spec.RunConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var custom *hetkg.Graph
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		custom, _, err = hetkg.ReadTSV(f, *inFile)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse:", err)
			os.Exit(1)
		}
		spec.Dataset = *inFile
		rc.Dataset = *inFile
	}

	var shardAddrs []string
	if *shards != "" {
		shardAddrs = strings.Split(*shards, ",")
	}
	var resume *hetkg.Checkpoint
	if *load != "" {
		var err error
		resume, err = hetkg.ReadCheckpoint(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("resuming from %s (model=%s epochs=%d)\n", *load, resume.ModelName, resume.Epochs)
	}

	reg := hetkg.NewMetricsRegistry()
	if *metAddr != "" {
		var opts []hetkg.ServeOption
		if *metAllow {
			opts = append(opts, hetkg.MetricsAllowRemote())
		}
		srv, err := hetkg.ServeMetrics(*metAddr, reg, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving http://%s/metrics (+ /debug/pprof)\n", srv.Addr())
	}

	if *artDir != "" {
		st, err := artifact.Open(*artDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "artifacts:", err)
			os.Exit(1)
		}
		rc.Artifacts = st
	}

	// Overlay the deployment-specific configuration onto the shared spec.
	rc.Graph = custom
	rc.ShardAddrs = shardAddrs
	rc.JoinAddr = *join
	rc.HeartbeatInterval = *hbEvery
	rc.CkptDir = *ckptDir
	rc.RecoverFrom = *recoverD
	rc.CkptEvery = *ckptN
	rc.ClusterLogf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rc.RPCTimeout = *rpcTO
	rc.RPCRetries = *rpcRetry
	rc.DegradedMaxStaleness = *degStale
	rc.Resume = resume
	rc.LocalMachines = localMachines(*machine)
	rc.Metrics = reg
	rc.TimelinePath = *timeline
	rc.TimelineEvery = *tlEvery
	rc.SpanPath = *spanOut
	rc.SpanEvery = *spanN
	rc.SpanFormat = *spanFmt

	res, err := hetkg.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	fmt.Printf("system=%s dataset=%s scale=%s model=%s machines=%d seed=%d\n",
		res.System, spec.Dataset, spec.Scale, spec.Model, spec.Machines, spec.Seed)
	for _, e := range res.Epochs {
		fmt.Printf("epoch %2d  loss %.4f  mrr %.3f  comp %v  comm %v  hit %.3f\n",
			e.Epoch, e.Loss, e.MRR, e.Comp.Round(1e6), e.Comm.Round(1e6), e.HitRatio)
	}
	fmt.Printf("final: %s\n", res.Final)
	fmt.Printf("time: comp %v + comm %v = %v (simulated cluster time)\n",
		res.Comp.Round(1e6), res.Comm.Round(1e6), res.Total().Round(1e6))
	fmt.Printf("traffic: %s\n", res.Traffic)
	if res.HitRatio > 0 {
		fmt.Printf("cache: hit ratio %.3f, refreshed rows %d\n", res.HitRatio, res.RefreshRows)
	}
	if *timeline != "" {
		fmt.Printf("timeline written to %s\n", *timeline)
	}
	if *spanOut != "" {
		fmt.Printf("spans written to %s (%s format)\n", *spanOut, *spanFmt)
		if *spanFmt == "chrome" {
			fmt.Println("open in https://ui.perfetto.dev or chrome://tracing")
		} else {
			fmt.Printf("analyze with: hetkg-trace spans %s\n", *spanOut)
		}
	}
	if *traceOut != "" {
		err := trace.WriteFile(*traceOut, trace.Header{
			Dataset:  spec.Dataset,
			Model:    spec.Model,
			Dim:      res.Entities.Dim,
			Machines: spec.Machines,
			Seed:     spec.Seed,
		}, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *save != "" {
		err := hetkg.WriteCheckpoint(*save, &hetkg.Checkpoint{
			ModelName: spec.Model,
			Dim:       res.Entities.Dim,
			Dataset:   spec.Dataset,
			Seed:      spec.Seed,
			Epochs:    len(res.Epochs),
			System:    res.System,
			Entities:  res.Entities,
			Relations: res.Relations,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
}

// localMachines converts the -machine flag to a machine filter.
func localMachines(m int) []int {
	if m < 0 {
		return nil
	}
	return []int{m}
}
