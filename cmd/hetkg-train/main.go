// hetkg-train runs one distributed KGE training job and reports per-epoch
// progress, the final link-prediction metrics, and the time/traffic
// breakdown.
//
// Usage:
//
//	hetkg-train -dataset fb15k -system hetkg-d -model transe -machines 4 -epochs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetkg"
	"hetkg/internal/trace"
)

func main() {
	var (
		ds       = flag.String("dataset", "fb15k", "dataset preset: fb15k | wn18 | freebase86m")
		scale    = flag.String("scale", "small", "dataset scale: tiny | small | paper")
		system   = flag.String("system", "hetkg-d", "system: pbg | dglke | hetkg-c | hetkg-d")
		mdl      = flag.String("model", "transe", "model: transe | transe_l2 | distmult | transh | complex")
		loss     = flag.String("loss", "logistic", "loss: logistic | ranking")
		optim    = flag.String("optimizer", "adagrad", "optimizer: adagrad | sgd | adam")
		margin   = flag.Float64("margin", 1.0, "ranking-loss margin γ")
		dim      = flag.Int("dim", 0, "embedding dimension d (0 = scale default)")
		lr       = flag.Float64("lr", 0.1, "AdaGrad learning rate")
		epochs   = flag.Int("epochs", 0, "training epochs (0 = scale default)")
		batch    = flag.Int("batch", 0, "positive batch size b_p (0 = scale default)")
		negs     = flag.Int("negs", 8, "negatives per positive b_n")
		chunk    = flag.Int("chunk", 8, "negative-sampling chunk size b_c")
		machines = flag.Int("machines", 4, "cluster machines (PS shards)")
		workers  = flag.Int("workers", 1, "workers per machine")
		partName = flag.String("partitioner", "metis", "graph partitioner: metis | random")
		capacity = flag.Int("cache", 0, "hot-embedding table capacity k (0 = 5% of ids)")
		syncP    = flag.Int("staleness", 8, "staleness bound P (cache refresh interval)")
		preD     = flag.Int("prefetch", 16, "prefetch depth D (DPS rebuild interval)")
		entFrac  = flag.Float64("entity-ratio", 0.25, "entity share of the cache (heterogeneity quota)")
		noHet    = flag.Bool("no-heterogeneity", false, "disable the entity/relation quota (HET-KG-N)")
		seed     = flag.Int64("seed", 42, "random seed")
		inFile   = flag.String("in", "", "train on TSV triples from this file instead of a preset")
		save     = flag.String("save", "", "write the trained embeddings to this checkpoint file")
		load     = flag.String("load", "", "resume training from this checkpoint file")
		shards   = flag.String("shards", "", "comma-separated hetkg-ps addresses (one per machine) for a multi-process run")
		join     = flag.String("join", "", "coordinator address for an elastic cluster run (shard fleet is discovered from the join reply; see OPERATIONS.md)")
		hbEvery  = flag.Duration("heartbeat-interval", 0, "override the coordinator-advertised heartbeat cadence (with -join)")
		ckptDir  = flag.String("ckpt-dir", "", "write per-partition progress snapshots to this directory for crash recovery (with -join)")
		ckptN    = flag.Int("ckpt-every", 0, "iterations between progress snapshots (0 = 16; with -join)")
		recoverD = flag.String("recover-from", "", "read adopted partitions' progress snapshots from this directory (default: -ckpt-dir)")
		codec    = flag.String("codec", "", "wire codec profile: fp32 | fp16 | int8 | delta-int8 | topk | auto (default fp32)")
		rpcTO    = flag.Duration("rpc-timeout", 0, "per-attempt deadline on remote-shard RPCs (0 = default 10s, negative disables)")
		rpcRetry = flag.Int("rpc-retries", 0, "retry budget per remote-shard RPC after a link failure (0 = default 3, negative disables)")
		evalN    = flag.Int("eval-every", 0, "epochs between validation evaluations (0 = every epoch; larger than -epochs defers to the final evaluation only)")
		degStale = flag.Int("degraded-max-staleness", 0, "ride out shard outages by serving cached rows up to this many iterations stale and buffering pushes for replay (0 = fail fast; hetkg-c/hetkg-d only)")
		topk     = flag.Float64("topk-ratio", 0, "kept gradient fraction per row for -codec topk (0 = default 0.125)")
		traceOut = flag.String("trace", "", "write a per-epoch JSONL trace to this file")
		timeline = flag.String("timeline", "", "write a per-iteration JSONL timeline to this file")
		tlEvery  = flag.Int("timeline-every", 0, "iterations between timeline records (0 = default)")
		spanOut  = flag.String("span", "", "trace every Nth batch per worker and write the spans to this file")
		spanN    = flag.Int("span-every", 0, "batch sampling interval for -span (0 = default 16)")
		spanFmt  = flag.String("span-format", "jsonl", "span output format: jsonl (hetkg-spans/v1) | chrome (Perfetto trace-event JSON)")
		metAddr  = flag.String("metrics-addr", "", "serve live metrics + pprof on this address (e.g. 127.0.0.1:6060; unauthenticated, loopback only unless -metrics-allow-remote)")
		metAllow = flag.Bool("metrics-allow-remote", false, "allow -metrics-addr to bind non-loopback addresses (exposes unauthenticated pprof)")
		machine  = flag.Int("machine", -1, "run only this machine's workers (-1 = all; requires -shards for a real deployment)")
		advTemp  = flag.Float64("adversarial", 0, "self-adversarial negative sampling temperature (0 = off)")
		degNegs  = flag.Bool("degree-negatives", false, "corrupt with degree^0.75-weighted entities (hard negatives)")
		parallel = flag.Int("parallelism", 0, "cores for batch compute and evaluation (0 = all; results identical at any value)")
	)
	flag.Parse()

	sys, ok := map[string]hetkg.System{
		"pbg":     hetkg.SystemPBG,
		"dglke":   hetkg.SystemDGLKE,
		"hetkg-c": hetkg.SystemHETKGC,
		"hetkg-d": hetkg.SystemHETKGD,
	}[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	var custom *hetkg.Graph
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		custom, _, err = hetkg.ReadTSV(f, *inFile)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse:", err)
			os.Exit(1)
		}
		*ds = *inFile
	}

	var shardAddrs []string
	if *shards != "" {
		shardAddrs = strings.Split(*shards, ",")
	}
	var resume *hetkg.Checkpoint
	if *load != "" {
		var err error
		resume, err = hetkg.ReadCheckpoint(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("resuming from %s (model=%s epochs=%d)\n", *load, resume.ModelName, resume.Epochs)
	}

	reg := hetkg.NewMetricsRegistry()
	if *metAddr != "" {
		var opts []hetkg.ServeOption
		if *metAllow {
			opts = append(opts, hetkg.MetricsAllowRemote())
		}
		srv, err := hetkg.ServeMetrics(*metAddr, reg, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving http://%s/metrics (+ /debug/pprof)\n", srv.Addr())
	}

	res, err := hetkg.Run(hetkg.RunConfig{
		Graph:             custom,
		Dataset:           *ds,
		Scale:             hetkg.ParseScale(*scale),
		System:            sys,
		ModelName:         *mdl,
		LossName:          *loss,
		OptimizerName:     *optim,
		Margin:            float32(*margin),
		Dim:               *dim,
		LR:                float32(*lr),
		Epochs:            *epochs,
		BatchSize:         *batch,
		NegPerPos:         *negs,
		ChunkSize:         *chunk,
		Machines:          *machines,
		WorkersPerMachine: *workers,
		PartitionerName:   *partName,
		CacheCapacity:     *capacity,
		CacheSyncEvery:    *syncP,
		CachePrefetchD:    *preD,
		EntityFraction:    *entFrac,
		NoHeterogeneity:   *noHet,
		ShardAddrs:        shardAddrs,
		JoinAddr:          *join,
		HeartbeatInterval: *hbEvery,
		CkptDir:           *ckptDir,
		RecoverFrom:       *recoverD,
		CkptEvery:         *ckptN,
		ClusterLogf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Codec:                   *codec,
		TopKRatio:               *topk,
		RPCTimeout:              *rpcTO,
		RPCRetries:              *rpcRetry,
		DegradedMaxStaleness:    *degStale,
		EvalEvery:               *evalN,
		Resume:                  resume,
		LocalMachines:           localMachines(*machine),
		AdversarialTemp:         float32(*advTemp),
		DegreeWeightedNegatives: *degNegs,
		Parallelism:             *parallel,
		Metrics:                 reg,
		TimelinePath:            *timeline,
		TimelineEvery:           *tlEvery,
		SpanPath:                *spanOut,
		SpanEvery:               *spanN,
		SpanFormat:              *spanFmt,
		Seed:                    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	fmt.Printf("system=%s dataset=%s scale=%s model=%s machines=%d seed=%d\n",
		res.System, *ds, *scale, *mdl, *machines, *seed)
	for _, e := range res.Epochs {
		fmt.Printf("epoch %2d  loss %.4f  mrr %.3f  comp %v  comm %v  hit %.3f\n",
			e.Epoch, e.Loss, e.MRR, e.Comp.Round(1e6), e.Comm.Round(1e6), e.HitRatio)
	}
	fmt.Printf("final: %s\n", res.Final)
	fmt.Printf("time: comp %v + comm %v = %v (simulated cluster time)\n",
		res.Comp.Round(1e6), res.Comm.Round(1e6), res.Total().Round(1e6))
	fmt.Printf("traffic: %s\n", res.Traffic)
	if res.HitRatio > 0 {
		fmt.Printf("cache: hit ratio %.3f, refreshed rows %d\n", res.HitRatio, res.RefreshRows)
	}
	if *timeline != "" {
		fmt.Printf("timeline written to %s\n", *timeline)
	}
	if *spanOut != "" {
		fmt.Printf("spans written to %s (%s format)\n", *spanOut, *spanFmt)
		if *spanFmt == "chrome" {
			fmt.Println("open in https://ui.perfetto.dev or chrome://tracing")
		} else {
			fmt.Printf("analyze with: hetkg-trace spans %s\n", *spanOut)
		}
	}
	if *traceOut != "" {
		err := trace.WriteFile(*traceOut, trace.Header{
			Dataset:  *ds,
			Model:    *mdl,
			Dim:      res.Entities.Dim,
			Machines: *machines,
			Seed:     *seed,
		}, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *save != "" {
		err := hetkg.WriteCheckpoint(*save, &hetkg.Checkpoint{
			ModelName: *mdl,
			Dim:       res.Entities.Dim,
			Dataset:   *ds,
			Seed:      *seed,
			Epochs:    len(res.Epochs),
			System:    res.System,
			Entities:  res.Entities,
			Relations: res.Relations,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
}

// localMachines converts the -machine flag to a machine filter.
func localMachines(m int) []int {
	if m < 0 {
		return nil
	}
	return []int{m}
}
