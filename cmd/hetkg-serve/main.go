// hetkg-serve answers knowledge-graph queries over HTTP from a trained
// checkpoint: triple scoring, top-k link prediction, and embedding-space
// nearest neighbors, fronted by a hotness-aware embedding cache and a
// request batcher that coalesces concurrent predictions into shared
// candidate sweeps (DESIGN.md §9).
//
//	hetkg-train -dataset fb15k -scale tiny -save model.ckpt
//	hetkg-serve -ckpt model.ckpt -listen 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/v1/predict?entity=12&relation=3&k=5'
//
// The endpoints are unauthenticated, so non-loopback -listen addresses are
// refused unless -allow-remote is set. /metrics, /healthz, and /debug/pprof/
// are mounted on the same listener. SIGINT/SIGTERM trigger a graceful
// shutdown: the listener closes, in-flight requests drain (bounded by
// -grace), and the span dump (if -span is set) is written on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetkg"
	"hetkg/internal/span"
)

func main() {
	var (
		ckptPath    = flag.String("ckpt", "", "checkpoint to serve (from hetkg-train -save; required)")
		listen      = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		allowRemote = flag.Bool("allow-remote", false, "allow -listen to bind non-loopback addresses (exposes unauthenticated query + pprof endpoints)")
		cacheRows   = flag.Int("cache", 0, "hot-tier row budget (0 = 5% of all rows)")
		entFrac     = flag.Float64("entity-fraction", 0, "entity share of the cache budget (0 = the paper's 0.25)")
		rebuild     = flag.Int("rebuild-every", 0, "cache accesses between promotion passes (0 = default, negative = never)")
		maxBatch    = flag.Int("max-batch", 0, "max predictions coalesced per candidate sweep (0 = default)")
		maxK        = flag.Int("max-k", 0, "max k per request (0 = default)")
		knnMetric   = flag.String("knn-metric", "cosine", "neighbor similarity: cosine | dot | l2")
		parallel    = flag.Int("parallelism", 0, "sweep worker count (0 = GOMAXPROCS)")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")
		spanOut     = flag.String("span", "", "write sampled request spans to this file on shutdown (hetkg-trace spans)")
		spanEvery   = flag.Int("span-every", 0, "request sampling interval for -span (default every 16th)")
		spanFormat  = flag.String("span-format", "", "span dump format: jsonl (default) | chrome")
		telAddr     = flag.String("telemetry", "", "ship serve.* metrics to the cluster coordinator at this address (fleet view / hetkg-top)")
		telEvery    = flag.Duration("telemetry-every", 0, "telemetry report cadence (0 = default)")
		telLabel    = flag.String("telemetry-label", "", "label for this process in the fleet view (default: the -listen address)")
	)
	flag.Parse()
	if *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "hetkg-serve: -ckpt is required")
		flag.Usage()
		os.Exit(2)
	}

	ck, err := hetkg.ReadCheckpoint(*ckptPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint:", err)
		os.Exit(1)
	}
	metric, err := hetkg.ParseKNNMetric(*knnMetric)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var col *span.Collector
	cfg := hetkg.QueryServerConfig{
		Checkpoint:     ck,
		CacheBudget:    *cacheRows,
		EntityFraction: *entFrac,
		RebuildEvery:   *rebuild,
		MaxBatch:       *maxBatch,
		MaxK:           *maxK,
		Parallelism:    *parallel,
		KNNMetric:      metric,
	}
	if *spanOut != "" {
		col = span.NewCollector(span.CollectorConfig{Every: *spanEvery})
		cfg.Tracer = col.Tracer(0, 0)
	}
	srv, err := hetkg.NewQueryServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	l, err := srv.Listen(*listen, *allowRemote)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	eb, rb := srv.Cache().Budgets()
	fmt.Printf("hetkg-serve: %s (%s, dim %d, %d entities, %d relations) on http://%s\n",
		*ckptPath, ck.ModelName, ck.Dim, ck.Entities.Rows, ck.Relations.Rows, l.Addr())
	fmt.Printf("hetkg-serve: hot tier %d+%d rows (entities+relations), endpoints /v1/{score,predict,neighbors} + /metrics\n", eb, rb)

	if *telAddr != "" {
		label := *telLabel
		if label == "" {
			label = l.Addr().String()
		}
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		// Telemetry is auxiliary: the coordinator may be down or not up yet,
		// so dial in the background and retry rather than refusing to serve.
		// The connection and shipper live for the rest of the process.
		addr := *telAddr
		go func() {
			for attempt := 0; ; attempt++ {
				cc, err := hetkg.DialCoordinator(addr, 5*time.Second)
				if err == nil {
					logf("hetkg-serve: shipping telemetry to %s as serve/%s", addr, label)
					s := hetkg.NewTelemetryShipper(hetkg.TelemetryRoleServe, label, srv.Registry().Snapshot, cc, *telEvery, logf)
					s.Start()
					return
				}
				if attempt == 0 {
					logf("telemetry: coordinator %s unreachable (%v), retrying every 1s", addr, err)
				}
				time.Sleep(time.Second)
			}
		}()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(l) }()

	select {
	case err := <-done:
		// Serve only returns on listener failure; shutdown arrives via ctx.
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("hetkg-serve: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close() // grace expired: force-close lingering connections
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	srv.Close()
	if *spanOut != "" {
		hdr := span.Header{System: "hetkg-serve", Dataset: ck.Dataset, Every: col.Every(), Seed: ck.Seed}
		if err := span.WriteFile(*spanOut, *spanFormat, hdr, col.Drain()); err != nil {
			fmt.Fprintln(os.Stderr, "span:", err)
			os.Exit(1)
		}
		fmt.Printf("hetkg-serve: spans written to %s\n", *spanOut)
	}
}
