// hetkg-partition partitions a knowledge graph across a cluster and reports
// edge-cut and balance — the locality numbers behind §V "Graph
// Partitioning".
//
// Usage:
//
//	hetkg-partition -dataset fb15k -scale small -k 4
//	hetkg-partition -in triples.tsv -k 8 -algo random
package main

import (
	"flag"
	"fmt"
	"os"

	"hetkg"
	"hetkg/internal/kg"
	"hetkg/internal/partition"
)

func main() {
	var (
		ds    = flag.String("dataset", "fb15k", "dataset preset (ignored when -in is set)")
		scale = flag.String("scale", "small", "scale: tiny | small | paper")
		in    = flag.String("in", "", "read triples from this TSV file instead of a preset")
		k     = flag.Int("k", 4, "number of partitions")
		algo  = flag.String("algo", "metis", "partitioner: metis | ldg | random")
		seed  = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	var g *kg.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		defer f.Close()
		var verr error
		g, _, verr = kg.ReadTSV(f, *in)
		if verr != nil {
			fmt.Fprintln(os.Stderr, "parse:", verr)
			os.Exit(1)
		}
	} else {
		var ok bool
		g, ok = hetkg.DatasetByName(*ds, hetkg.ParseScale(*scale), *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
			os.Exit(2)
		}
	}

	p, err := partition.New(*algo, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := p.Partition(g, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}

	fmt.Printf("graph      %s: %d entities, %d relations, %d triples\n",
		g.Name, g.NumEntity, g.NumRel, g.NumTriples())
	fmt.Printf("algorithm  %s, k=%d\n", p.Name(), *k)
	fmt.Printf("edge cut   %d triples (%.1f%% cross-partition)\n",
		res.EdgeCut(g), 100*res.CutFraction(g))
	fmt.Printf("balance    %.3f (max load / ideal load)\n", res.Balance())
	for i, idx := range res.TripleIdx {
		ents := 0
		for _, pp := range res.EntityPart {
			if int(pp) == i {
				ents++
			}
		}
		fmt.Printf("  part %d: %d triples, %d entities\n", i, len(idx), ents)
	}
}
