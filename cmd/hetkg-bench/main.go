// hetkg-bench regenerates the tables and figures of the HET-KG paper.
//
// Usage:
//
//	hetkg-bench -list
//	hetkg-bench -exp table3,table6 -scale small
//	hetkg-bench -exp all -scale tiny
//
// Each experiment prints a text table matching the corresponding paper
// artifact; EXPERIMENTS.md records paper-vs-measured for every row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetkg"
	"hetkg/internal/plan/benchfmt"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale   = flag.String("scale", "small", "workload scale: tiny | small | paper")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "log progress")
		asJSON  = flag.Bool("json", false, "emit tables as JSON lines instead of text")
		tlDir   = flag.String("timeline", "", "write one JSONL timeline per training run into this directory")
		spanDir = flag.String("span", "", "write one span dump per training run into this directory")
		spanN   = flag.Int("span-every", 0, "batch sampling interval for -span (0 = default 16)")
		spanFmt = flag.String("span-format", "jsonl", "span output format for -span: jsonl | chrome")
		bench   = flag.String("bench-out", "", "write one hetkg-bench/v2 perf snapshot (BENCH_<exp>.json) per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range hetkg.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = hetkg.ExperimentIDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	opts := hetkg.ExperimentOptions{
		Scale:       hetkg.ParseScale(*scale),
		Seed:        *seed,
		TimelineDir: *tlDir,
		SpanDir:     *spanDir,
		SpanEvery:   *spanN,
		SpanFormat:  *spanFmt,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[bench] "+format+"\n", args...)
		}
	}

	failures := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := hetkg.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failures++
			continue
		}
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failures++
			continue
		}
		if *bench != "" {
			path, err := benchfmt.WriteDir(*bench, tab.BenchFile())
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s snapshot: %v\n", id, err)
				failures++
				continue
			}
			fmt.Fprintf(os.Stderr, "[bench] %s snapshot -> %s\n", id, path)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(tab); err != nil {
				fmt.Fprintln(os.Stderr, "encode:", err)
				failures++
			}
			continue
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			failures++
			continue
		}
		fmt.Printf("(%s wall time: %v, scale=%s, seed=%d)\n\n",
			id, time.Since(start).Round(time.Millisecond), *scale, *seed)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
