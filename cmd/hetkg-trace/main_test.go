package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
	"hetkg/internal/trace"
	"hetkg/internal/train"
)

func writeTrace(t *testing.T, name, system string, epochs []metrics.EpochStat) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	err := trace.WriteFile(path, trace.Header{Dataset: "fb15k", Seed: 7},
		&train.Result{System: system, Epochs: epochs})
	if err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	return path
}

func writeFileString(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}

func TestCompareRunsTableAndSparkline(t *testing.T) {
	a := writeTrace(t, "a.jsonl", "DGL-KE", []metrics.EpochStat{
		{Epoch: 1, Loss: 5, MRR: 0.1}, {Epoch: 2, Loss: 2, MRR: 0.3},
	})
	b := writeTrace(t, "b.jsonl", "HET-KG-D", []metrics.EpochStat{
		{Epoch: 1, Loss: 4, MRR: 0.2}, {Epoch: 2, Loss: 1.5, MRR: 0.4}, {Epoch: 3, Loss: 1, MRR: 0.5},
	})

	var buf bytes.Buffer
	if err := compareRuns(&buf, "mrr", []string{a, b}); err != nil {
		t.Fatalf("compareRuns: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"epoch:", "DGL-KE/fb15k", "HET-KG-D/fb15k",
		"0.100", "0.300", "0.500", // metric values land in the table
		"mrr over epochs:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Three epochs of columns: header row ends at epoch 3.
	header := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(header, "3") {
		t.Errorf("header not aligned to longest run: %q", header)
	}
	// The longer run's sparkline has one block rune per epoch.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "HET-KG-D/fb15k") && strings.ContainsRune(line, '█') {
			runes := []rune(strings.TrimSpace(strings.TrimPrefix(line, "HET-KG-D/fb15k")))
			if len(runes) != 3 {
				t.Errorf("sparkline has %d runes, want 3: %q", len(runes), line)
			}
		}
	}

	// Every documented metric selects its own column.
	for _, m := range []string{"loss", "comm_ms", "hit_ratio"} {
		if err := compareRuns(&bytes.Buffer{}, m, []string{a}); err != nil {
			t.Errorf("metric %q rejected: %v", m, err)
		}
	}
}

func TestCompareRunsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := compareRuns(&buf, "mrr", []string{"/nonexistent/run.jsonl"}); err == nil {
		t.Error("missing file accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := writeFileString(bad, `{"kind":"hetkg-timeline/v1"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if err := compareRuns(&buf, "mrr", []string{bad}); err == nil {
		t.Error("wrong header kind accepted")
	} else if !strings.Contains(err.Error(), "kind") {
		t.Errorf("kind error not descriptive: %v", err)
	}

	good := writeTrace(t, "good.jsonl", "DGL-KE", []metrics.EpochStat{{Epoch: 1, MRR: 0.1}})
	if err := compareRuns(&buf, "f1", []string{good}); err == nil {
		t.Error("unknown metric accepted")
	} else if !strings.Contains(err.Error(), "f1") {
		t.Errorf("metric error does not name the metric: %v", err)
	}
}

func TestSpansReport(t *testing.T) {
	// A hand-built dump: two batches on two machines with compute, RPC,
	// and shard child spans.
	base := int64(1_000_000)
	ms := int64(time.Millisecond)
	spans := []span.Span{
		{Trace: 0x101, ID: 1, Name: span.NBatch, Machine: 0, Worker: 0, StartNS: base, DurNS: 10 * ms, Iter: 16, Shard: span.NoShard},
		{Trace: 0x101, ID: 2, Parent: 1, Name: span.NGradCompute, Machine: 0, Worker: 0, StartNS: base + ms, DurNS: 6 * ms, Rows: 512, Shard: span.NoShard},
		{Trace: 0x101, ID: 3, Parent: 1, Name: span.NPSPull, Machine: 0, Worker: 0, StartNS: base + 7*ms, DurNS: 2 * ms, Bytes: 4096, Shard: 1},
		{Trace: 0x101, ID: 4, Parent: 3, Name: span.NShardPull, Machine: 1, Worker: span.WorkerShard, StartNS: base + 7*ms, DurNS: ms, Rows: 32, Shard: 1},
		{Trace: 0x101, ID: 5, Parent: 1, Name: span.NCacheLookup, Machine: 0, Worker: 0, StartNS: base + 9*ms, DurNS: ms, Shard: span.NoShard},
		{Trace: 0x201, ID: 6, Name: span.NBatch, Machine: 1, Worker: 1, StartNS: base, DurNS: 4 * ms, Iter: 16, Shard: span.NoShard},
		{Trace: 0x201, ID: 7, Parent: 6, Name: span.NGradCompute, Machine: 1, Worker: 1, StartNS: base + ms, DurNS: 3 * ms, Shard: span.NoShard},
	}
	path := filepath.Join(t.TempDir(), "s.jsonl")
	hdr := span.Header{System: "HET-KG-D", Dataset: "fb15k", Every: 16, Seed: 7}
	if err := span.WriteFile(path, span.FormatJSONL, hdr, spans); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := spansReport(&buf, []string{path}, 3); err != nil {
		t.Fatalf("spansReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"HET-KG-D/fb15k, 7 spans (every 16), seed 7",
		"2 sampled batches across 1 files",
		"critical-path attribution",
		"compute", "comm", "cache", "other",
		"top-3 slowest spans",
		span.NGradCompute,
		"per-machine batches (straggler view):",
		"slowest batch critical path (machine 0 worker 0 iter 16, 10ms):",
		"batch 10ms -> grad.compute 6ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Attribution shares: compute 9ms, comm 2ms, cache 1ms of 14ms total.
	for _, want := range []string{"64.3%", "14.3%", "7.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing share %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "duplicate spans") {
		t.Errorf("single-file report mentions duplicates:\n%s", out)
	}

	if err := spansReport(&buf, []string{"/nonexistent/s.jsonl"}, 0); err == nil {
		t.Error("missing span file accepted")
	}
	// A trace file is not a span dump: the kind check must reject it.
	tr := writeTrace(t, "run.jsonl", "DGL-KE", []metrics.EpochStat{{Epoch: 1}})
	if err := spansReport(&buf, []string{tr}, 0); err == nil {
		t.Error("hetkg-trace/v1 file accepted as span dump")
	}
}

// TestSpansReportMergesFiles splits one elastic run's spans across a worker
// dump and a shard dump (sharing trace IDs and one duplicated span) and
// checks the merged analysis stitches the cross-process critical path back
// together — identical to analyzing a single combined dump.
func TestSpansReportMergesFiles(t *testing.T) {
	base := int64(1_000_000)
	ms := int64(time.Millisecond)
	workerSpans := []span.Span{
		{Trace: 0x101, ID: 1, Name: span.NBatch, Machine: 0, Worker: 0, StartNS: base, DurNS: 10 * ms, Iter: 16, Shard: span.NoShard},
		{Trace: 0x101, ID: 2, Parent: 1, Name: span.NGradCompute, Machine: 0, Worker: 0, StartNS: base + ms, DurNS: 6 * ms, Rows: 512, Shard: span.NoShard},
		{Trace: 0x101, ID: 3, Parent: 1, Name: span.NPSPull, Machine: 0, Worker: 0, StartNS: base + 7*ms, DurNS: 2 * ms, Bytes: 4096, Shard: 1},
		{Trace: 0x201, ID: 6, Name: span.NBatch, Machine: 1, Worker: 1, StartNS: base, DurNS: 4 * ms, Iter: 16, Shard: span.NoShard},
	}
	// The shard's dump carries its own spans for the same trace IDs, plus a
	// duplicate of the worker's ps.pull span (overlapping rings).
	shardSpans := []span.Span{
		{Trace: 0x101, ID: 3, Parent: 1, Name: span.NPSPull, Machine: 0, Worker: 0, StartNS: base + 7*ms, DurNS: 2 * ms, Bytes: 4096, Shard: 1},
		{Trace: 0x101, ID: 4, Parent: 3, Name: span.NShardPull, Machine: 1, Worker: span.WorkerShard, StartNS: base + 7*ms, DurNS: ms, Rows: 32, Shard: 1},
		{Trace: 0x201, ID: 7, Parent: 6, Name: span.NGradCompute, Machine: 1, Worker: 1, StartNS: base + ms, DurNS: 3 * ms, Shard: span.NoShard},
	}
	dir := t.TempDir()
	hdr := span.Header{System: "HET-KG-D", Dataset: "fb15k", Every: 16, Seed: 7}
	wp := filepath.Join(dir, "worker.jsonl")
	sp := filepath.Join(dir, "shard.jsonl")
	if err := span.WriteFile(wp, span.FormatJSONL, hdr, workerSpans); err != nil {
		t.Fatal(err)
	}
	if err := span.WriteFile(sp, span.FormatJSONL, hdr, shardSpans); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := spansReport(&buf, []string{wp, sp}, 5); err != nil {
		t.Fatalf("spansReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"worker.jsonl: HET-KG-D/fb15k, 4 spans (every 16), seed 7",
		"shard.jsonl: HET-KG-D/fb15k, 2 spans (every 16), seed 7",
		"dropped 1 duplicate spans shared between files",
		"2 sampled batches across 2 files",
		// The shard-side span from the second file attributes into the
		// worker's batch: cross-process merge by trace ID worked.
		span.NShardPull,
		"slowest batch critical path (machine 0 worker 0 iter 16, 10ms):",
		"batch 10ms -> grad.compute 6ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged report missing %q:\n%s", want, out)
		}
	}
	// Merged attribution matches the single-file analysis of the same spans:
	// compute 9ms, comm 2ms of 14ms batch time.
	for _, want := range []string{"64.3%", "14.3%"} {
		if !strings.Contains(out, want) {
			t.Errorf("merged report missing share %q:\n%s", want, out)
		}
	}
}

func TestSparklineScaling(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1})
	if got != "▁█" {
		t.Errorf("sparkline(0,1) = %q, want ▁█", got)
	}
	if got := sparkline([]float64{2, 2, 2}); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want ▁▁▁", got)
	}
}
