// hetkg-trace inspects training-run recordings.
//
// Compare mode (the default) aligns per-epoch columns of runs recorded with
// hetkg-train -trace and renders an ASCII sparkline per run, for quick
// convergence comparison without leaving the terminal:
//
//	hetkg-train -dataset fb15k -system dglke   -trace a.jsonl
//	hetkg-train -dataset fb15k -system hetkg-d -trace b.jsonl
//	hetkg-trace a.jsonl b.jsonl
//
// Spans mode analyzes per-batch span dumps recorded with hetkg-train -span:
// a comm-vs-compute-vs-cache attribution table over the sampled batches, the
// top-k slowest spans, the per-machine straggler summary, and the slowest
// batch's critical path:
//
//	hetkg-train -dataset fb15k -system hetkg-d -span s.jsonl
//	hetkg-trace spans s.jsonl
//
// Multiple span files merge into one analysis by trace ID, so the per-process
// dumps of an elastic run (worker batches in one file, shard-side spans in
// another) stitch back into whole cross-process critical paths:
//
//	hetkg-trace spans worker0.jsonl worker1.jsonl shard0.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hetkg/internal/span"
	"hetkg/internal/trace"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "spans" {
		fs := flag.NewFlagSet("spans", flag.ExitOnError)
		topK := fs.Int("top", 5, "how many slowest spans to list")
		fs.Parse(args[1:])
		if fs.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: hetkg-trace spans [-top K] spans.jsonl [more.jsonl ...]")
			os.Exit(2)
		}
		if err := spansReport(os.Stdout, fs.Args(), *topK); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	metric := flag.String("metric", "mrr", "column to compare: mrr | loss | comm_ms | hit_ratio")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hetkg-trace [-metric mrr|loss|comm_ms|hit_ratio] run1.jsonl [run2.jsonl ...]")
		fmt.Fprintln(os.Stderr, "       hetkg-trace spans [-top K] spans.jsonl [more.jsonl ...]")
		os.Exit(2)
	}
	if err := compareRuns(os.Stdout, *metric, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// epochValue extracts one comparison metric from an epoch line.
func epochValue(e trace.Epoch, metric string) (float64, error) {
	switch metric {
	case "mrr":
		return e.MRR, nil
	case "loss":
		return e.Loss, nil
	case "comm_ms":
		return e.CommMS, nil
	case "hit_ratio":
		return e.HitRatio, nil
	default:
		return 0, fmt.Errorf("hetkg-trace: unknown metric %q (want mrr, loss, comm_ms, or hit_ratio)", metric)
	}
}

// compareRuns renders the aligned per-epoch table and sparklines for the
// given trace files.
func compareRuns(w io.Writer, metric string, paths []string) error {
	type loaded struct {
		name string
		vals []float64
	}
	var runs []loaded
	maxEpochs := 0
	for _, path := range paths {
		r, err := trace.ReadFile(path)
		if err != nil {
			return err
		}
		vals := make([]float64, len(r.Epochs))
		for i, e := range r.Epochs {
			if vals[i], err = epochValue(e, metric); err != nil {
				return err
			}
		}
		name := fmt.Sprintf("%s/%s", r.Header.System, r.Header.Dataset)
		runs = append(runs, loaded{name: name, vals: vals})
		if len(vals) > maxEpochs {
			maxEpochs = len(vals)
		}
	}

	// Aligned table.
	fmt.Fprintf(w, "%-28s", "epoch:")
	for e := 1; e <= maxEpochs; e++ {
		fmt.Fprintf(w, "%9d", e)
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		fmt.Fprintf(w, "%-28s", r.name)
		for _, v := range r.vals {
			fmt.Fprintf(w, "%9.3f", v)
		}
		fmt.Fprintln(w)
	}

	// Sparklines (min-max normalized per run).
	fmt.Fprintf(w, "\n%s over epochs:\n", metric)
	for _, r := range runs {
		fmt.Fprintf(w, "%-28s %s\n", r.name, sparkline(r.vals))
	}
	return nil
}

// spansReport merges every input dump and analyzes the union as one
// trace set. A multi-process elastic run writes one dump per process —
// the worker's batch spans and the shards' shard.pull/shard.apply spans
// carry the same trace ID (it rides the wire header), so concatenating
// the files is exactly merge-by-trace-ID and cross-process parent/child
// chains reconnect. Spans identical in (trace, id, start) — overlapping
// dumps of the same ring — are dropped as duplicates.
func spansReport(w io.Writer, paths []string, topK int) error {
	type spanKey struct {
		trace, id uint64
		start     int64
	}
	var spans []span.Span
	seen := make(map[spanKey]bool)
	dups := 0
	for _, path := range paths {
		d, err := span.ReadFile(path)
		if err != nil {
			return err
		}
		kept := 0
		for _, s := range d.Spans {
			k := spanKey{s.Trace, s.ID, s.StartNS}
			if seen[k] {
				dups++
				continue
			}
			seen[k] = true
			spans = append(spans, s)
			kept++
		}
		fmt.Fprintf(w, "%s: %s/%s, %d spans (every %d), seed %d\n",
			path, d.Header.System, d.Header.Dataset, kept, d.Header.Every, d.Header.Seed)
	}
	if dups > 0 {
		fmt.Fprintf(w, "dropped %d duplicate spans shared between files\n", dups)
	}

	a := span.Analyze(spans, topK)
	fmt.Fprintf(w, "%d sampled batches across %d files\n", len(a.Batches), len(paths))
	if len(a.Batches) == 0 {
		fmt.Fprintln(w, "  no batch spans in dump")
		return nil
	}

	fmt.Fprintf(w, "\ncritical-path attribution over %s of sampled batch time:\n", fmtDur(a.TotalBatch))
	fmt.Fprintf(w, "  %-10s%12s%9s\n", "category", "total", "share")
	for _, cat := range span.Categories() {
		dur := a.Total[cat]
		share := 0.0
		if a.TotalBatch > 0 {
			share = 100 * float64(dur) / float64(a.TotalBatch)
		}
		fmt.Fprintf(w, "  %-10s%12s%8.1f%%\n", cat, fmtDur(dur), share)
	}

	fmt.Fprintf(w, "\ntop-%d slowest spans:\n", len(a.Slowest))
	fmt.Fprintf(w, "  %12s  %-20s%9s%8s%7s%7s%9s%11s\n",
		"dur", "name", "machine", "worker", "iter", "shard", "rows", "bytes")
	for _, s := range a.Slowest {
		name := s.Name
		if s.Sim {
			name += " (sim)"
		}
		fmt.Fprintf(w, "  %12s  %-20s%9d%8d%7d%7s%9d%11d\n",
			fmtDur(s.Duration()), name, s.Machine, s.Worker, s.Iter, fmtShard(s.Shard), s.Rows, s.Bytes)
	}

	fmt.Fprintln(w, "\nper-machine batches (straggler view):")
	fmt.Fprintf(w, "  %-9s%9s%12s%12s\n", "machine", "batches", "mean", "max")
	for _, m := range a.Machines {
		fmt.Fprintf(w, "  %-9d%9d%12s%12s\n", m.Machine, m.Batches, fmtDur(m.Mean), fmtDur(m.Max))
	}

	slow := slowestBatch(a)
	chain := span.CriticalPath(spans, slow)
	fmt.Fprintf(w, "\nslowest batch critical path (machine %d worker %d iter %d, %s):\n  ",
		slow.Machine, slow.Worker, slow.Iter, fmtDur(slow.Duration()))
	for i, s := range chain {
		if i > 0 {
			fmt.Fprint(w, " -> ")
		}
		fmt.Fprintf(w, "%s %s", s.Name, fmtDur(s.Duration()))
	}
	fmt.Fprintln(w)
	return nil
}

// slowestBatch returns the root span of the longest sampled batch.
func slowestBatch(a *span.Analysis) span.Span {
	idx := 0
	for i, b := range a.Batches {
		if b.Root.DurNS > a.Batches[idx].Root.DurNS {
			idx = i
		}
	}
	return a.Batches[idx].Root
}

// fmtDur renders durations compactly for tables (microsecond precision
// below a millisecond, otherwise 10µs precision).
func fmtDur(d time.Duration) string {
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}

// fmtShard renders a span's target shard, "-" when not applicable.
func fmtShard(shard int) string {
	if shard == span.NoShard {
		return "-"
	}
	return fmt.Sprintf("%d", shard)
}

// sparkline renders values as Unicode block characters, min-max scaled.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
