// hetkg-trace compares training runs recorded with hetkg-train -trace:
// aligned per-epoch columns plus an ASCII sparkline per run, for quick
// convergence comparison without leaving the terminal.
//
// Usage:
//
//	hetkg-train -dataset fb15k -system dglke   -trace a.jsonl
//	hetkg-train -dataset fb15k -system hetkg-d -trace b.jsonl
//	hetkg-trace a.jsonl b.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetkg/internal/trace"
)

func main() {
	metric := flag.String("metric", "mrr", "column to compare: mrr | loss | comm_ms | hit_ratio")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hetkg-trace [-metric mrr|loss|comm_ms|hit_ratio] run1.jsonl [run2.jsonl ...]")
		os.Exit(2)
	}

	type loaded struct {
		name string
		run  *trace.Run
		vals []float64
	}
	var runs []loaded
	maxEpochs := 0
	for _, path := range flag.Args() {
		r, err := trace.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		vals := make([]float64, len(r.Epochs))
		for i, e := range r.Epochs {
			switch *metric {
			case "loss":
				vals[i] = e.Loss
			case "comm_ms":
				vals[i] = e.CommMS
			case "hit_ratio":
				vals[i] = e.HitRatio
			default:
				vals[i] = e.MRR
			}
		}
		name := fmt.Sprintf("%s/%s", r.Header.System, r.Header.Dataset)
		runs = append(runs, loaded{name: name, run: r, vals: vals})
		if len(vals) > maxEpochs {
			maxEpochs = len(vals)
		}
	}

	// Aligned table.
	fmt.Printf("%-28s", "epoch:")
	for e := 1; e <= maxEpochs; e++ {
		fmt.Printf("%9d", e)
	}
	fmt.Println()
	for _, r := range runs {
		fmt.Printf("%-28s", r.name)
		for _, v := range r.vals {
			fmt.Printf("%9.3f", v)
		}
		fmt.Println()
	}

	// Sparklines (min-max normalized per run).
	fmt.Printf("\n%s over epochs:\n", *metric)
	for _, r := range runs {
		fmt.Printf("%-28s %s\n", r.name, sparkline(r.vals))
	}
}

// sparkline renders values as Unicode block characters, min-max scaled.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
