// hetkg-data generates the synthetic benchmark datasets and reports the
// structural statistics that drive HET-KG's design (the Fig. 2
// micro-benchmark): degree skew and relation-usage concentration.
//
// Usage:
//
//	hetkg-data -dataset fb15k -scale small -stats
//	hetkg-data -dataset wn18 -scale tiny -out wn18.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"hetkg"
	"hetkg/internal/kg"
)

func main() {
	var (
		ds    = flag.String("dataset", "fb15k", "dataset preset: fb15k | wn18 | freebase86m")
		scale = flag.String("scale", "small", "scale: tiny | small | paper")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("out", "", "write triples as TSV to this file")
		stats = flag.Bool("stats", true, "print structural statistics")
	)
	flag.Parse()

	g, ok := hetkg.DatasetByName(*ds, hetkg.ParseScale(*scale), *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q (have %v)\n", *ds, hetkg.DatasetNames())
		os.Exit(2)
	}

	if *stats {
		s := g.ComputeStats()
		fmt.Printf("dataset         %s (scale=%s seed=%d)\n", g.Name, *scale, *seed)
		fmt.Printf("entities        %d\n", s.NumEntity)
		fmt.Printf("relations       %d\n", s.NumRel)
		fmt.Printf("triples         %d\n", s.NumTriples)
		fmt.Printf("max degree      %d\n", s.MaxEntityDegree)
		fmt.Printf("mean degree     %.2f\n", s.MeanEntityDegree)
		fmt.Printf("top1%% entities  %.1f%% of entity usage\n", 100*s.Top1PctEntityShare)
		fmt.Printf("top1%% relations %.1f%% of relation usage\n", 100*s.Top1PctRelationShare)
		fmt.Println("(paper Fig. 2: access frequency is heavily skewed; relations hotter than entities)")
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "create:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := kg.WriteTSV(f, g); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d triples to %s\n", g.NumTriples(), *out)
	}
}
