// Package hetkg is a pure-Go implementation of HET-KG (ICDE 2022):
// communication-efficient distributed knowledge-graph-embedding training via
// a hotness-aware per-worker embedding cache.
//
// The package is the stable public surface over the internal substrates:
//
//   - training systems: HET-KG (CPS/DPS), a DGL-KE-style parameter-server
//     baseline, and a PyTorch-BigGraph-style block baseline;
//   - KGE models (TransE, DistMult, TransH, ComplEx) with logistic and
//     margin-ranking losses, chunked negative sampling, sparse AdaGrad;
//   - the distributed substrate: a sharded parameter server (in-process and
//     TCP transports), a METIS-like multilevel graph partitioner, and a
//     network cost model that meters local vs remote traffic;
//   - synthetic datasets calibrated to FB15k / WN18 / Freebase-86m plus TSV
//     loaders for real dumps;
//   - link-prediction evaluation (MRR, MR, Hits@k; raw/filtered; full or
//     sampled candidates);
//   - the experiment registry regenerating every table and figure of the
//     paper (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	res, err := hetkg.Run(hetkg.RunConfig{
//	    Dataset: "fb15k",
//	    Scale:   hetkg.ScaleTiny,
//	    System:  hetkg.SystemHETKGD,
//	})
//	fmt.Println(res.Final) // MRR, Hits@k, MR
package hetkg

import (
	"io"
	"net"
	"net/http"
	"time"

	"hetkg/internal/artifact"
	"hetkg/internal/ckpt"
	"hetkg/internal/core"
	"hetkg/internal/dataset"
	"hetkg/internal/eval"
	"hetkg/internal/kg"
	"hetkg/internal/knn"
	"hetkg/internal/metrics"
	"hetkg/internal/model"
	"hetkg/internal/netsim"
	"hetkg/internal/obs"
	"hetkg/internal/ps"
	"hetkg/internal/serve"
	"hetkg/internal/span"
	"hetkg/internal/telemetry"
	"hetkg/internal/train"
	"hetkg/internal/vec"
)

// RunConfig specifies one training run; see the field docs on core.RunConfig.
type RunConfig = core.RunConfig

// Result is a completed run: per-epoch stats, final metrics, embeddings,
// traffic, and the computation/communication breakdown.
type Result = train.Result

// System identifies a training system implementation.
type System = core.System

// The four systems of the paper's evaluation.
const (
	SystemPBG    = core.SystemPBG
	SystemDGLKE  = core.SystemDGLKE
	SystemHETKGC = core.SystemHETKGC
	SystemHETKGD = core.SystemHETKGD
)

// Systems lists all systems in the paper's table order.
func Systems() []System { return core.Systems() }

// Scale selects synthetic dataset sizes.
type Scale = dataset.Scale

// Scales, smallest to largest. ScalePaper matches the published FB15k/WN18
// statistics (Freebase-86m stays capped; see DESIGN.md).
const (
	ScaleTiny  = dataset.Tiny
	ScaleSmall = dataset.Small
	ScalePaper = dataset.Paper
)

// ParseScale converts "tiny" / "small" / "paper" to a Scale.
func ParseScale(s string) Scale { return dataset.ParseScale(s) }

// Run executes a training run.
func Run(rc RunConfig) (*Result, error) { return core.Run(rc) }

// ArtifactStore is the content-addressed on-disk cache for expensive
// deterministic intermediates (synthetic datasets, partitioner outputs).
// Attach one via RunConfig.Artifacts to skip regeneration across runs and
// processes; results are bit-identical with or without it.
type ArtifactStore = artifact.Store

// OpenArtifacts opens (creating if needed) an artifact cache directory.
func OpenArtifacts(dir string) (*ArtifactStore, error) { return artifact.Open(dir) }

// Graph is an immutable knowledge graph.
type Graph = kg.Graph

// Triple is one (head, relation, tail) fact.
type Triple = kg.Triple

// EntityID identifies an entity; RelationID identifies a relation.
type (
	EntityID   = kg.EntityID
	RelationID = kg.RelationID
)

// Vocab maps string labels to dense ids and back (built by ReadTSV).
type Vocab = kg.Vocab

// Dataset constructors: deterministic synthetic graphs calibrated to the
// paper's benchmarks.
var (
	FB15kLike       = dataset.FB15kLike
	WN18Like        = dataset.WN18Like
	Freebase86mLike = dataset.Freebase86mLike
)

// DatasetByName resolves a preset name ("fb15k", "wn18", "freebase86m").
func DatasetByName(name string, scale Scale, seed int64) (*Graph, bool) {
	return dataset.ByName(name, scale, seed)
}

// DatasetNames lists the preset names.
func DatasetNames() []string { return dataset.Names() }

// ReadTSV parses "head<TAB>relation<TAB>tail" benchmark files.
func ReadTSV(r io.Reader, name string) (*Graph, *kg.Vocab, error) {
	return kg.ReadTSV(r, name)
}

// Model scores triples; construct with NewModel.
type Model = model.Model

// NewModel returns "transe", "transe_l2", "distmult", "transh", "complex",
// "rescal", "hole", or "rotate".
func NewModel(name string) (Model, error) { return model.New(name) }

// ModelNames lists the model registry.
func ModelNames() []string { return model.Names() }

// Matrix is a dense row-major embedding table.
type Matrix = vec.Matrix

// EvalConfig parameterizes link-prediction evaluation.
type EvalConfig = eval.Config

// EvalResult aggregates MRR, MR and Hits@k.
type EvalResult = eval.Result

// Evaluate runs link prediction over a test set.
func Evaluate(cfg EvalConfig, test []Triple) (EvalResult, error) {
	return eval.Evaluate(cfg, test)
}

// Experiment regenerates one table or figure of the paper.
type Experiment = core.Experiment

// ExperimentOptions parameterizes an experiment invocation.
type ExperimentOptions = core.Options

// ExperimentTable is an experiment's rendered output.
type ExperimentTable = core.Table

// Experiments returns the full registry, sorted by ID.
func Experiments() []Experiment { return core.All() }

// ExperimentByID looks up one experiment ("table3", "fig8a", ...).
func ExperimentByID(id string) (Experiment, bool) { return core.ByID(id) }

// ExperimentIDs lists all registered experiment IDs.
func ExperimentIDs() []string { return core.IDs() }

// MetricsRegistry is the named-metric registry every subsystem of a run
// publishes into: counters, gauges, histograms and timers, keyed by the
// canonical names in internal/metrics/names.go (documented in
// EXPERIMENTS.md's metric table).
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry. Pass it as
// RunConfig.Metrics to observe a run live through ServeMetrics; leave
// RunConfig.Metrics nil to get a private one back in Result.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsServer is a running live-introspection endpoint: the registry as
// JSON under /metrics plus the net/http/pprof profiles.
type MetricsServer = obs.Server

// ServeOption adjusts ServeMetrics.
type ServeOption = obs.Option

// MetricsAllowRemote permits ServeMetrics to bind non-loopback addresses.
// The endpoint serves unauthenticated pprof; only use this on a trusted
// network.
func MetricsAllowRemote() ServeOption { return obs.AllowRemote() }

// ServeMetrics starts an introspection endpoint on addr. The endpoint is
// unauthenticated, so non-loopback addresses are refused unless
// MetricsAllowRemote is passed; see DESIGN.md §7.
func ServeMetrics(addr string, reg *MetricsRegistry, opts ...ServeOption) (*MetricsServer, error) {
	return obs.Serve(addr, reg, opts...)
}

// TimelineRun is a parsed run timeline (header plus records).
type TimelineRun = metrics.TimelineRun

// ReadTimelineFile parses a JSONL timeline written via
// RunConfig.TimelinePath or hetkg-train/hetkg-bench -timeline.
func ReadTimelineFile(path string) (*TimelineRun, error) {
	return metrics.ReadTimelineFile(path)
}

// SpanDump is a parsed per-batch span dump (header plus spans), written via
// RunConfig.SpanPath or hetkg-train/hetkg-bench -span.
type SpanDump = span.Dump

// ReadSpansFile parses a hetkg-spans/v1 JSONL span dump. Chrome-format
// exports are for Perfetto, not this reader.
func ReadSpansFile(path string) (*SpanDump, error) { return span.ReadFile(path) }

// CostModel converts metered traffic into simulated time.
type CostModel = netsim.CostModel

// Default1Gbps mirrors the paper's 1 Gbps testbed network.
func Default1Gbps() CostModel { return netsim.Default1Gbps() }

// PSShard is one parameter-server shard (hosted by cmd/hetkg-ps).
type PSShard = ps.Server

// BuildShard constructs the shard that machine m of the given run owns;
// serve it with ServeShard. Every process derives identical cluster state
// from the same RunConfig, so shards need no state transfer at startup.
func BuildShard(rc RunConfig, machine int) (*PSShard, error) {
	return core.BuildShard(rc, machine)
}

// ServeShard runs a shard's accept loop on l until the listener closes.
func ServeShard(l net.Listener, s *PSShard) { ps.ServeTCP(l, s) }

// Checkpoint is a trained model's persistent state (embeddings + metadata).
type Checkpoint = ckpt.Checkpoint

// WriteCheckpoint atomically saves a checkpoint to path.
func WriteCheckpoint(path string, c *Checkpoint) error { return ckpt.WriteFile(path, c) }

// ReadCheckpoint loads a checkpoint from path.
func ReadCheckpoint(path string) (*Checkpoint, error) { return ckpt.ReadFile(path) }

// KNNIndex is an exact nearest-neighbor index over an embedding table.
type KNNIndex = knn.Index

// KNNResult is one neighbor (row id + similarity score).
type KNNResult = knn.Result

// Similarity metrics for NewKNN.
const (
	KNNCosine = knn.Cosine
	KNNDot    = knn.Dot
	KNNL2     = knn.L2
)

// NewKNN builds an exact similarity index over an embedding matrix.
func NewKNN(m *Matrix, metric knn.Metric) (*KNNIndex, error) { return knn.New(m, metric) }

// ParseKNNMetric parses a similarity metric name: "cosine", "dot", or "l2".
func ParseKNNMetric(s string) (knn.Metric, error) { return knn.ParseMetric(s) }

// KNNScratch is reusable state for allocation-free KNN searches
// (KNNIndex.SearchInto / NeighborsInto).
type KNNScratch = knn.Scratch

// ShardAcceptor serves a PS shard with graceful shutdown: close the
// listener to stop accepting, then Shutdown(grace) to drain in-flight
// connections before force-closing stragglers. Set its Coordinator field
// to make the shard the cluster coordinator (DESIGN.md §11).
type ShardAcceptor = ps.Acceptor

// ClusterMembership is the coordinator's membership state machine: worker
// registration, heartbeats with failure detection, and partition
// reassignment for the elastic multi-process cluster (DESIGN.md §11).
type ClusterMembership = ps.Membership

// MemberConfig parameterizes NewMembership.
type MemberConfig = ps.MemberConfig

// NewMembership builds a cluster coordinator; install it on a
// ShardAcceptor's Coordinator field before serving.
func NewMembership(cfg MemberConfig) (*ClusterMembership, error) { return ps.NewMembership(cfg) }

// CoordClient is a TCP client for the cluster coordinator: workers join,
// heartbeat, and leave through it, and any process can ship telemetry
// reports over the same connection (DESIGN.md §12).
type CoordClient = ps.CoordClient

// DialCoordinator connects to the cluster coordinator at addr.
func DialCoordinator(addr string, timeout time.Duration) (*CoordClient, error) {
	return ps.DialCoordinator(addr, timeout)
}

// FleetTelemetry is the coordinator-side fleet aggregator: it ingests
// labeled metric-registry snapshots from every process, keeps ring-buffered
// time series with derived rates, and runs the straggler / cache-degradation
// / comm-stall health rules (DESIGN.md §12). Install it on a coordinator's
// MemberConfig.Telemetry and mount it with MetricsRoute("/fleet", fleet).
type FleetTelemetry = telemetry.Fleet

// FleetTelemetryConfig parameterizes NewFleetTelemetry.
type FleetTelemetryConfig = telemetry.FleetConfig

// NewFleetTelemetry builds a fleet aggregator.
func NewFleetTelemetry(cfg FleetTelemetryConfig) *FleetTelemetry {
	return telemetry.NewFleet(cfg)
}

// TelemetryReport is one process's labeled metric snapshot, shipped to the
// coordinator's fleet aggregator.
type TelemetryReport = telemetry.Report

// TelemetrySender delivers telemetry reports to a fleet aggregator; both
// *CoordClient (over TCP) and *ClusterMembership (in-process) implement it.
type TelemetrySender = telemetry.Sender

// TelemetryShipper periodically snapshots a registry and ships it to a
// coordinator; hosts that are not elastic workers (shards, serve processes)
// run one.
type TelemetryShipper = telemetry.Shipper

// NewTelemetryShipper builds a shipper; call Start to begin shipping and
// Stop for a final flush on shutdown.
func NewTelemetryShipper(role, label string, snap func() metrics.Snapshot, send TelemetrySender,
	every time.Duration, logf func(format string, args ...any)) *TelemetryShipper {
	return telemetry.NewShipper(role, label, snap, send, every, logf)
}

// Telemetry roles: the process kinds a fleet aggregator distinguishes.
const (
	TelemetryRoleWorker = telemetry.RoleWorker
	TelemetryRoleShard  = telemetry.RoleShard
	TelemetryRoleServe  = telemetry.RoleServe
)

// MetricsRoute mounts an extra handler on a ServeMetrics endpoint — the
// coordinator mounts its fleet aggregator as MetricsRoute("/fleet", fleet).
func MetricsRoute(pattern string, h http.Handler) ServeOption {
	return obs.WithRoute(pattern, h)
}

// QueryServer is the online inference server: it answers triple-scoring,
// link-prediction, and embedding-similarity queries over a trained
// checkpoint, fronted by a hotness-aware embedding cache. See DESIGN.md §9.
type QueryServer = serve.Server

// QueryServerConfig parameterizes NewQueryServer.
type QueryServerConfig = serve.Config

// NewQueryServer builds a query server over a loaded checkpoint.
func NewQueryServer(cfg QueryServerConfig) (*QueryServer, error) { return serve.New(cfg) }

// ServingHotTier is the serving-side hotness-aware embedding cache: decayed
// frequency counters, a fixed row budget split by the paper's entity /
// relation quota, and periodic promotion of the hottest rows.
type ServingHotTier = serve.HotTier
