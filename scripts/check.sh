#!/bin/sh
# Tier-2 gate: static analysis plus the full test suite under the race
# detector. The deterministic parallel engine (internal/par) and the code
# built on it (train batch compute, eval ranking) must stay race-free at
# any parallelism, so -race covers every package, not just internal/par.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
