#!/bin/sh
# Tier-2 gate: static analysis plus the full test suite under the race
# detector. The deterministic parallel engine (internal/par) and the code
# built on it (train batch compute, eval ranking) must stay race-free at
# any parallelism, so -race covers every package, not just internal/par.
set -eu
cd "$(dirname "$0")/.."

echo "== doc-comment lint (internal/metrics + internal/serve + internal/ckpt + cluster + telemetry layers)"
# Every top-level exported declaration in internal/metrics must carry a doc
# comment: the package is the observability contract other layers (and
# EXPERIMENTS.md) build on, so undocumented surface is a defect here.
# internal/serve is held to the same bar — it is the outward-facing query
# surface (hetkg-serve) and the hetkg facade aliases its types. So are
# internal/ckpt (the recovery file formats operators depend on), the
# cluster membership/elastic layer (the wire protocol and driver that
# OPERATIONS.md documents), and the experiment-plan layer (internal/plan,
# internal/artifact — the declarative surface DESIGN.md §14 documents).
undoc=$(
    for f in internal/metrics/*.go internal/serve/*.go internal/ckpt/*.go \
            internal/telemetry/*.go \
            internal/plan/*.go internal/plan/benchfmt/*.go internal/artifact/*.go \
            internal/ps/member.go internal/train/elastic.go; do
        case "$f" in *_test.go) continue ;; esac
        awk -v file="$f" '
            /^(func|type) [A-Z]/ || /^func \([^)]*\) [A-Z]/ || /^(var|const) [A-Z]/ {
                if (prev !~ /^\/\//)
                    printf "%s:%d: missing doc comment: %s\n", file, FNR, $0
            }
            { prev = $0 }
        ' "$f"
    done
)
if [ -n "$undoc" ]; then
    echo "$undoc"
    echo "check: FAIL (undocumented exported symbols in internal/metrics)"
    exit 1
fi

echo "== EXPERIMENTS.md metric coverage lint"
# Every canonical metric name in internal/metrics/names.go must appear in
# EXPERIMENTS.md's metric -> paper artifact table, so no series is emitted
# without a documented meaning.
missing=0
for name in $(sed -n 's/.*= "\([a-z0-9_.]*\)"$/\1/p' internal/metrics/names.go); do
    if ! grep -qF "$name" EXPERIMENTS.md; then
        echo "EXPERIMENTS.md does not document metric \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (undocumented metric names)"
    exit 1
fi

echo "== OPERATIONS.md cluster metric coverage lint"
# Every cluster.* metric in internal/metrics/names.go must appear in
# OPERATIONS.md's troubleshooting table: the cluster series exist for the
# operator, so one that the runbook cannot explain is a defect.
missing=0
for name in $(sed -n 's/.*= "\(cluster\.[a-z0-9_.]*\)"$/\1/p' internal/metrics/names.go); do
    if ! grep -qF "$name" OPERATIONS.md; then
        echo "OPERATIONS.md does not document cluster metric \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (cluster metrics missing from the runbook)"
    exit 1
fi

echo "== OPERATIONS.md fleet metric coverage lint"
# Every fleet.* metric in internal/metrics/names.go must appear in
# OPERATIONS.md's fleet view section: the telemetry plane exists for the
# operator, so an aggregator series the runbook cannot explain is a
# defect (the fleet.* counterpart of the cluster.* lint above).
missing=0
for name in $(sed -n 's/.*= "\(fleet\.[a-z0-9_.]*\)"$/\1/p' internal/metrics/names.go); do
    if ! grep -qF "$name" OPERATIONS.md; then
        echo "OPERATIONS.md does not document fleet metric \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (fleet metrics missing from the runbook)"
    exit 1
fi

echo "== OPERATIONS.md link metric coverage lint"
# Every ps.link.* metric in internal/metrics/names.go must appear in
# OPERATIONS.md's troubleshooting table: the fault-tolerant link layer
# (DESIGN.md §13) surfaces its retry/reconnect/breaker behavior through
# these series, and an outage signal the runbook cannot explain is a
# defect. The extraction is guarded against going silently empty if the
# names move: the link layer always defines at least one ps.link.* series.
linknames=$(sed -n 's/.*= "\(ps\.link\.[a-z0-9_.]*\)"$/\1/p' internal/metrics/names.go)
if [ -z "$linknames" ]; then
    echo "internal/metrics/names.go defines no ps.link.* metrics (lint pattern stale?)"
    echo "check: FAIL (link metric extraction came up empty)"
    exit 1
fi
missing=0
for name in $linknames; do
    if ! grep -qF "$name" OPERATIONS.md; then
        echo "OPERATIONS.md does not document link metric \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (link metrics missing from the runbook)"
    exit 1
fi

echo "== DESIGN.md span coverage lint"
# Every canonical span name in internal/span/names.go must appear in
# DESIGN.md §8's span table, so no span is emitted without a documented
# meaning — the tracing counterpart of the metric lint above.
missing=0
for name in $(sed -n 's/.*= "\([a-z0-9_.]*\)"$/\1/p' internal/span/names.go); do
    if ! grep -qF "$name" DESIGN.md; then
        echo "DESIGN.md does not document span \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (undocumented span names)"
    exit 1
fi

echo "== DESIGN.md §9 serving coverage lint"
# Every serve.* metric and span name must appear in DESIGN.md §9's serving
# section (the architecture doc for the query server), in addition to the
# global tables checked above.
serving=$(sed -n '/^## 9\. Serving architecture/,$p' DESIGN.md)
if [ -z "$serving" ]; then
    echo "DESIGN.md has no '## 9. Serving architecture' section"
    echo "check: FAIL (missing serving architecture doc)"
    exit 1
fi
missing=0
for name in $(sed -n 's/.*= "\(serve\.[a-z0-9_.]*\)"$/\1/p' \
        internal/metrics/names.go internal/span/names.go); do
    if ! printf '%s' "$serving" | grep -qF "$name"; then
        echo "DESIGN.md §9 does not document serving name \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (undocumented serving names)"
    exit 1
fi

echo "== codec profile coverage lint"
# Every registered codec profile in internal/ps/codec.go must (a) appear in
# EXPERIMENTS.md (the sweep documents its measured cost/accuracy trade-off)
# and (b) be exercised by name in internal/ps/codec_test.go (golden wire
# format / negotiation coverage) — no profile ships unmeasured or untested.
missing=0
for name in $(sed -n 's/^\tProfile[A-Za-z0-9]* = "\([a-z0-9-]*\)"$/\1/p' internal/ps/codec.go); do
    if ! grep -qF "\`$name\`" EXPERIMENTS.md; then
        echo "EXPERIMENTS.md does not document codec profile \"$name\""
        missing=1
    fi
    if ! grep -qF "\"$name\"" internal/ps/codec_test.go; then
        echo "internal/ps/codec_test.go does not cover codec profile \"$name\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (codec profile without docs or tests)"
    exit 1
fi

echo "== DESIGN.md §14 plan key coverage lint"
# Every plan key (the `plan:"..."` struct tags on internal/plan.RunSpec)
# must be documented in DESIGN.md §14's schema table: the plan file is a
# user-facing config surface, so an undocumented knob is a defect. The
# extraction is guarded against going silently empty if the tags move.
plansection=$(sed -n '/^## 14\. /,$p' DESIGN.md)
if [ -z "$plansection" ]; then
    echo "DESIGN.md has no '## 14.' experiment-plan section"
    echo "check: FAIL (missing plan schema doc)"
    exit 1
fi
plankeys=$(sed -n 's/.*plan:"\([A-Za-z0-9]*\)".*/\1/p' internal/plan/spec.go)
if [ -z "$plankeys" ]; then
    echo "internal/plan/spec.go defines no plan:\"...\" tags (lint pattern stale?)"
    echo "check: FAIL (plan key extraction came up empty)"
    exit 1
fi
missing=0
for key in $plankeys; do
    if ! printf '%s' "$plansection" | grep -qF "\`$key\`"; then
        echo "DESIGN.md §14 does not document plan key \"$key\""
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check: FAIL (undocumented plan keys)"
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
