#!/bin/sh
# Multi-process cluster smoke drill: 2 real hetkg-ps shards (one of them
# the coordinator), 2 real hetkg-train elastic workers, SIGKILL one worker
# mid-epoch, and verify the survivor adopts its partitions and finishes
# the run. The scripted version of OPERATIONS.md's failure walkthrough;
# CI runs it on every push and it must stay under a minute.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== building binaries"
go build -o "$tmp/hetkg-ps" ./cmd/hetkg-ps
go build -o "$tmp/hetkg-train" ./cmd/hetkg-train

# One fast, small run config, shared by every process (the deterministic
# derivation demands it); trainers add the loop knobs shards don't take.
# Aggressive timings so detection fits in seconds.
addr0=127.0.0.1:17970
addr1=127.0.0.1:17971
cfg="-dataset fb15k -scale tiny -machines 2 -seed 42"
traincfg="$cfg -system hetkg-c -epochs 6 -batch 16 -join $addr0 -ckpt-dir $tmp/ckpt -ckpt-every 4"

echo "== starting shards (coordinator on $addr0)"
# shellcheck disable=SC2086
"$tmp/hetkg-ps" $cfg -machine 0 -listen "$addr0" \
    -coordinator -shards "$addr0,$addr1" \
    -heartbeat-interval 100ms -worker-timeout 400ms \
    >"$tmp/shard0.log" 2>&1 &
pids="$pids $!"
# shellcheck disable=SC2086
"$tmp/hetkg-ps" $cfg -machine 1 -listen "$addr1" >"$tmp/shard1.log" 2>&1 &
pids="$pids $!"

# Wait for both shards to accept connections.
i=0
while ! grep -q "serving" "$tmp/shard0.log" || ! grep -q "serving" "$tmp/shard1.log"; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "FAIL: shards did not start"; cat "$tmp"/shard*.log; exit 1; }
    sleep 0.1
done

echo "== starting victim worker (owns both partitions)"
# shellcheck disable=SC2086
"$tmp/hetkg-train" $traincfg >"$tmp/victim.log" 2>&1 &
victim=$!
pids="$pids $victim"

# Progress proof: the victim's first snapshot file means it is mid-epoch.
i=0
while [ -z "$(ls "$tmp/ckpt" 2>/dev/null)" ]; do
    i=$((i + 1))
    [ "$i" -le 200 ] || { echo "FAIL: victim never snapshotted"; cat "$tmp/victim.log"; exit 1; }
    sleep 0.05
done

echo "== starting survivor worker (joins as a spare)"
# shellcheck disable=SC2086
"$tmp/hetkg-train" $traincfg >"$tmp/survivor.log" 2>&1 &
survivor=$!
pids="$pids $survivor"

i=0
while ! grep -q "joined, 2 live" "$tmp/shard0.log"; do
    i=$((i + 1))
    [ "$i" -le 200 ] || { echo "FAIL: survivor never joined"; cat "$tmp/survivor.log"; exit 1; }
    sleep 0.05
done

echo "== SIGKILLing the victim mid-epoch"
kill -9 "$victim"

# The survivor must detect the death (via the coordinator), adopt both
# partitions, finish every epoch, and exit 0 with a final evaluation.
i=0
while kill -0 "$survivor" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 450 ] || { echo "FAIL: survivor did not finish"; cat "$tmp/survivor.log"; exit 1; }
    sleep 0.1
done
if ! wait "$survivor"; then
    echo "FAIL: survivor exited nonzero"
    cat "$tmp/survivor.log"
    exit 1
fi

echo "== verifying the recovery actually happened"
grep -q "expired after" "$tmp/shard0.log" || {
    echo "FAIL: coordinator never expired the victim"; cat "$tmp/shard0.log"; exit 1; }
grep -q "adopted partition" "$tmp/survivor.log" || {
    echo "FAIL: survivor never adopted a partition"; cat "$tmp/survivor.log"; exit 1; }
grep -q "^final:" "$tmp/survivor.log" || {
    echo "FAIL: survivor printed no final evaluation"; cat "$tmp/survivor.log"; exit 1; }

echo "cluster smoke: OK"
grep "^final:" "$tmp/survivor.log"
