#!/bin/sh
# Multi-process cluster smoke drill: 2 real hetkg-ps shards (one of them
# the coordinator), 2 real hetkg-train elastic workers, SIGKILL one worker
# mid-epoch, and verify the survivor adopts its partitions and finishes
# the run. The scripted version of OPERATIONS.md's failure walkthrough;
# CI runs it on every push and it must stay under a minute.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== building binaries"
go build -o "$tmp/hetkg-ps" ./cmd/hetkg-ps
go build -o "$tmp/hetkg-train" ./cmd/hetkg-train
go build -o "$tmp/hetkg-top" ./cmd/hetkg-top

# One fast, small run config, shared by every process (the deterministic
# derivation demands it); trainers add the loop knobs shards don't take.
# Aggressive timings so detection fits in seconds. A shared artifact cache
# means the dataset and partition are generated once, not once per process.
addr0=127.0.0.1:17970
addr1=127.0.0.1:17971
obsaddr=127.0.0.1:17972
cfg="-dataset fb15k -scale tiny -machines 2 -seed 42 -artifacts $tmp/artifacts"
traincfg="$cfg -system hetkg-c -epochs 12 -batch 16 -join $addr0 -ckpt-dir $tmp/ckpt -ckpt-every 4"

echo "== starting shards (coordinator on $addr0)"
# The coordinator comes up first so shard 1's telemetry dial succeeds on
# the first attempt and its report reaches /fleet without a retry delay.
# shellcheck disable=SC2086
"$tmp/hetkg-ps" $cfg -machine 0 -listen "$addr0" \
    -coordinator -shards "$addr0,$addr1" \
    -heartbeat-interval 100ms -worker-timeout 400ms \
    -metrics-addr "$obsaddr" \
    >"$tmp/shard0.log" 2>&1 &
pids="$pids $!"
i=0
while ! grep -q "serving" "$tmp/shard0.log"; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "FAIL: coordinator did not start"; cat "$tmp/shard0.log"; exit 1; }
    sleep 0.1
done
# shellcheck disable=SC2086
"$tmp/hetkg-ps" $cfg -machine 1 -listen "$addr1" -telemetry "$addr0" \
    >"$tmp/shard1.log" 2>&1 &
pids="$pids $!"
i=0
while ! grep -q "serving" "$tmp/shard1.log"; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "FAIL: shard 1 did not start"; cat "$tmp/shard1.log"; exit 1; }
    sleep 0.1
done

echo "== starting victim worker (owns both partitions)"
# shellcheck disable=SC2086
"$tmp/hetkg-train" $traincfg >"$tmp/victim.log" 2>&1 &
victim=$!
pids="$pids $victim"

# Progress proof: the victim's first snapshot file means it is mid-epoch.
i=0
while [ -z "$(ls "$tmp/ckpt" 2>/dev/null)" ]; do
    i=$((i + 1))
    [ "$i" -le 200 ] || { echo "FAIL: victim never snapshotted"; cat "$tmp/victim.log"; exit 1; }
    sleep 0.05
done

echo "== starting survivor worker (joins as a spare)"
# shellcheck disable=SC2086
"$tmp/hetkg-train" $traincfg >"$tmp/survivor.log" 2>&1 &
survivor=$!
pids="$pids $survivor"

i=0
while ! grep -q "joined, 2 live" "$tmp/shard0.log"; do
    i=$((i + 1))
    [ "$i" -le 200 ] || { echo "FAIL: survivor never joined"; cat "$tmp/survivor.log"; exit 1; }
    sleep 0.05
done

echo "== fleet view shows every process (hetkg-top -once)"
# Both shards ship telemetry (the coordinator in-process, shard 1 over the
# wire) and both workers piggyback reports on their heartbeats, so within a
# couple of heartbeat intervals the coordinator's /fleet must list all four
# processes. Poll because the survivor's first piggybacked report can trail
# its join by one heartbeat (process rows are indented, alert lines start
# with "  [", so ^  worker/ counts rows only).
fleet_ok=""
i=0
while [ "$i" -le 100 ]; do
    i=$((i + 1))
    if "$tmp/hetkg-top" -addr "$obsaddr" -once >"$tmp/top.log" 2>&1 \
        && grep -q "shard/machine-0" "$tmp/top.log" \
        && grep -q "shard/machine-1" "$tmp/top.log" \
        && [ "$(grep -c "^  worker/" "$tmp/top.log")" -eq 2 ]; then
        fleet_ok=1
        break
    fi
    sleep 0.05
done
[ -n "$fleet_ok" ] || {
    echo "FAIL: fleet view did not list all 4 processes"
    cat "$tmp/top.log"; cat "$tmp/shard0.log"; exit 1; }
# Mid-run, with everything healthy, none of the anomaly rules may be
# active: straggler (no slow worker), telemetry_lag (reports flowing),
# comm_stall (bytes moving). cache_degraded is tolerated — the tiny-scale
# cache genuinely sits below the 0.2 hit-ratio floor, so that rule firing
# here is a true positive, not noise.
if grep -E "straggler|telemetry_lag|comm_stall" "$tmp/top.log"; then
    echo "FAIL: unexpected fleet alerts"; cat "$tmp/top.log"; exit 1
fi

echo "== SIGKILLing the victim mid-epoch"
kill -9 "$victim"

# The survivor must detect the death (via the coordinator), adopt both
# partitions, finish every epoch, and exit 0 with a final evaluation.
i=0
while kill -0 "$survivor" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 450 ] || { echo "FAIL: survivor did not finish"; cat "$tmp/survivor.log"; exit 1; }
    sleep 0.1
done
if ! wait "$survivor"; then
    echo "FAIL: survivor exited nonzero"
    cat "$tmp/survivor.log"
    exit 1
fi

echo "== verifying the recovery actually happened"
grep -q "expired after" "$tmp/shard0.log" || {
    echo "FAIL: coordinator never expired the victim"; cat "$tmp/shard0.log"; exit 1; }
grep -q "adopted partition" "$tmp/survivor.log" || {
    echo "FAIL: survivor never adopted a partition"; cat "$tmp/survivor.log"; exit 1; }
grep -q "^final:" "$tmp/survivor.log" || {
    echo "FAIL: survivor printed no final evaluation"; cat "$tmp/survivor.log"; exit 1; }

echo "cluster smoke: OK"
grep "^final:" "$tmp/survivor.log"
