#!/bin/sh
# Shard-outage survival drill: 2 real hetkg-ps shards, 1 hetkg-train worker
# in degraded mode, SIGSTOP one shard for 10 s mid-run, SIGCONT it, and
# verify the run rides the outage out — stale-serving pulls from the hot
# cache, buffering pushes, replaying them on reconnect — and finishes with
# an MRR within noise of an undisturbed baseline. The scripted version of
# OPERATIONS.md's "Surviving a shard outage" walkthrough; CI runs it on
# every push and it must stay under two minutes.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        kill -CONT "$p" 2>/dev/null || true
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== building binaries"
go build -o "$tmp/hetkg-ps" ./cmd/hetkg-ps
go build -o "$tmp/hetkg-train" ./cmd/hetkg-train

# One fast, small run config shared by every process (the deterministic
# derivation demands it). The trainer rides outages out: a short RPC
# deadline so failures surface in milliseconds, a staleness budget wide
# enough for the whole drill, and a cache sized and censused to hold every
# row training can touch: -prefetch 2000 makes the one-shot CPS census span
# ~18 epochs, whose ~256k uniform negative draws over 500 entities reach
# the full keyspace, so every degraded pull is stale-servable. Evaluation
# is deferred to the end so no epoch barrier needs the downed shard. Epoch
# count is sized so the run comfortably outlasts the 12 s fault window.
# The shared artifact cache generates the dataset and partition once for
# the whole drill (2 shard pairs + 2 trainers) instead of once per process.
addr0=127.0.0.1:17980
addr1=127.0.0.1:17981
cfg="-dataset fb15k -scale tiny -machines 2 -seed 42 -artifacts $tmp/artifacts"
traincfg="$cfg -system hetkg-c -shards $addr0,$addr1 -epochs 250 -batch 16 \
    -cache 100000 -prefetch 2000 -degraded-max-staleness 100000 \
    -rpc-timeout 500ms -eval-every 1000"

# start_shards run-label: brings up a fresh shard pair writing to
# shard<machine>.<label>.log and records their pids in shard0/shard1.
# Each run needs fresh processes — shards derive their initial rows at
# startup and training mutates them, so reuse would resume from trained
# state and make the two finals incomparable.
start_shards() {
    # shellcheck disable=SC2086
    "$tmp/hetkg-ps" $cfg -machine 0 -listen "$addr0" >"$tmp/shard0.$1.log" 2>&1 &
    shard0=$!
    pids="$pids $shard0"
    # shellcheck disable=SC2086
    "$tmp/hetkg-ps" $cfg -machine 1 -listen "$addr1" >"$tmp/shard1.$1.log" 2>&1 &
    shard1=$!
    pids="$pids $shard1"
    for log in "$tmp/shard0.$1.log" "$tmp/shard1.$1.log"; do
        i=0
        while ! grep -q "serving" "$log"; do
            i=$((i + 1))
            [ "$i" -le 100 ] || { echo "FAIL: shard did not start"; cat "$log"; exit 1; }
            sleep 0.1
        done
    done
}

mrr_of() {
    sed -n 's/^final: MRR \([0-9.]*\).*/\1/p' "$1"
}

echo "== baseline run (no faults)"
start_shards base
# shellcheck disable=SC2086
if ! "$tmp/hetkg-train" $traincfg >"$tmp/base.log" 2>&1; then
    echo "FAIL: baseline run exited nonzero"; cat "$tmp/base.log"; exit 1
fi
kill -9 "$shard0" "$shard1" 2>/dev/null || true
base_mrr=$(mrr_of "$tmp/base.log")
[ -n "$base_mrr" ] || { echo "FAIL: baseline printed no final MRR"; cat "$tmp/base.log"; exit 1; }
echo "   baseline MRR $base_mrr"

echo "== chaos run: SIGSTOP shard 1 for 10s mid-run"
start_shards chaos
victim=$shard1
# shellcheck disable=SC2086
"$tmp/hetkg-train" $traincfg -timeline "$tmp/chaos.tl.jsonl" >"$tmp/chaos.log" 2>&1 &
trainer=$!
pids="$pids $trainer"
sleep 2
kill -0 "$trainer" 2>/dev/null || {
    echo "FAIL: trainer finished before the fault (raise -epochs)"; cat "$tmp/chaos.log"; exit 1; }
kill -STOP "$victim"
echo "   shard 1 stopped"
sleep 10
kill -CONT "$victim"
echo "   shard 1 resumed"

i=0
while kill -0 "$trainer" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 600 ] || { echo "FAIL: trainer did not finish after the outage"; cat "$tmp/chaos.log"; exit 1; }
    sleep 0.1
done
if ! wait "$trainer"; then
    echo "FAIL: trainer exited nonzero"
    cat "$tmp/chaos.log"
    exit 1
fi

echo "== verifying the outage was survived, not dodged"
# Non-vacuity: the trainer prints nothing until the run completes, so the
# proof the fault landed lives in the timeline counters — degraded batches
# were trained from stale cache rows, buffered pushes were replayed, and
# the link layer reconnected.
grep -q '"train.degraded.stale_rows":{"kind":"counter","count":' "$tmp/chaos.tl.jsonl" || {
    echo "FAIL: no stale-served rows recorded — did the fault land?"
    tail -2 "$tmp/chaos.tl.jsonl"; exit 1; }
grep -q '"train.degraded.replayed_rows":{"kind":"counter","count":' "$tmp/chaos.tl.jsonl" || {
    echo "FAIL: no buffered pushes were replayed"
    tail -2 "$tmp/chaos.tl.jsonl"; exit 1; }
grep -q '"ps.link.reconnects":{"kind":"counter","count":' "$tmp/chaos.tl.jsonl" || {
    echo "FAIL: the link layer never reconnected"
    tail -2 "$tmp/chaos.tl.jsonl"; exit 1; }
grep -q "^final:" "$tmp/chaos.log" || {
    echo "FAIL: chaos run printed no final evaluation"; cat "$tmp/chaos.log"; exit 1; }

chaos_mrr=$(mrr_of "$tmp/chaos.log")
echo "   chaos MRR $chaos_mrr (baseline $base_mrr)"
# Stale pulls and coalesced replays perturb the trajectory, so the finals
# need not match bit-for-bit — but a run that survived in name only (lost
# updates, poisoned state) craters its MRR. 0.05 absolute is ~5x the
# seed-to-seed noise at this scale.
awk -v a="$base_mrr" -v b="$chaos_mrr" 'BEGIN {
    d = a - b; if (d < 0) d = -d
    if (d > 0.05) { printf "FAIL: MRR drifted %.3f (baseline %s, chaos %s)\n", d, a, b; exit 1 }
}' || exit 1

echo "chaos smoke: OK"
grep "^final:" "$tmp/chaos.log"
