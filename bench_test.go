package hetkg

// The bench harness: one macro-benchmark per table and figure of the paper
// (each runs the corresponding experiment end-to-end at tiny scale and
// reports simulated cluster time as custom metrics), plus micro-benchmarks
// of the hot paths (scoring, sampling, cache ops, partitioning, PS
// pull/push).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Full-size experiment sweeps are the hetkg-bench binary's job:
//
//	go run ./cmd/hetkg-bench -exp all -scale small

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hetkg/internal/cache"
	"hetkg/internal/core"
	"hetkg/internal/dataset"
	"hetkg/internal/eval"
	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
	"hetkg/internal/span"
	"hetkg/internal/train"
	"hetkg/internal/vec"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := core.Options{Scale: dataset.Tiny, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Macro benches: every paper artifact.

func BenchmarkTable1CommFraction(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkFig2AccessSkew(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkTable3FB15k(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4WN18(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkTable5Freebase(b *testing.B)      { benchExperiment(b, "table5") }
func BenchmarkFig5Convergence(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6Scalability(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7Breakdown(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8aCacheSize(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8bStaleness(b *testing.B)      { benchExperiment(b, "fig8b") }
func BenchmarkFig8cEntityRatio(b *testing.B)    { benchExperiment(b, "fig8c") }
func BenchmarkFig9StalenessCurves(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkTable6CachePolicies(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7Heterogeneity(b *testing.B) { benchExperiment(b, "table7") }

// Ablation benches (design choices called out in DESIGN.md).

func BenchmarkAblationPartition(b *testing.B)   { benchExperiment(b, "xablation-partition") }
func BenchmarkAblationNegSampling(b *testing.B) { benchExperiment(b, "xablation-negsampling") }
func BenchmarkAblationStrategy(b *testing.B)    { benchExperiment(b, "xablation-strategy") }
func BenchmarkAblationQuantize(b *testing.B)    { benchExperiment(b, "xablation-quantize") }
func BenchmarkAblationAdversarial(b *testing.B) { benchExperiment(b, "xablation-adversarial") }
func BenchmarkAblationBandwidth(b *testing.B)   { benchExperiment(b, "xablation-bandwidth") }
func BenchmarkAblationHardNegs(b *testing.B)    { benchExperiment(b, "xablation-hardnegs") }
func BenchmarkTheoryStaleness(b *testing.B)     { benchExperiment(b, "xtheory-staleness") }

// BenchmarkEpochPerSystem reports the simulated epoch time of each system
// on the same workload — the repository's headline comparison.
func BenchmarkEpochPerSystem(b *testing.B) {
	for _, sys := range Systems() {
		b.Run(string(sys), func(b *testing.B) {
			var comp, comm float64
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{
					Dataset:   "fb15k",
					Scale:     ScaleTiny,
					System:    sys,
					Dim:       64,
					BatchSize: 128,
					Epochs:    1,
					EvalEvery: -1,
					Seed:      42,
				})
				if err != nil {
					b.Fatal(err)
				}
				comp += res.Comp.Seconds()
				comm += res.Comm.Seconds()
			}
			b.ReportMetric(comp/float64(b.N)*1000, "comp-ms/epoch")
			b.ReportMetric(comm/float64(b.N)*1000, "comm-ms/epoch")
		})
	}
}

// Micro benches: the hot paths.

func benchScore(b *testing.B, m model.Model) {
	d := 64
	rng := rand.New(rand.NewSource(1))
	h := make([]float32, m.EntityDim(d))
	r := make([]float32, m.RelationDim(d))
	t := make([]float32, m.EntityDim(d))
	for _, v := range [][]float32{h, r, t} {
		for i := range v {
			v[i] = rng.Float32()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += m.Score(h, r, t)
	}
	_ = sink
}

func BenchmarkScoreTransE(b *testing.B)   { benchScore(b, model.TransE{Norm: 1}) }
func BenchmarkScoreDistMult(b *testing.B) { benchScore(b, model.DistMult{}) }
func BenchmarkScoreComplEx(b *testing.B)  { benchScore(b, model.ComplEx{}) }

func BenchmarkGradTransE(b *testing.B) {
	m := model.TransE{Norm: 1}
	d := 64
	h := make([]float32, d)
	r := make([]float32, d)
	t := make([]float32, d)
	gh := make([]float32, d)
	gr := make([]float32, d)
	gt := make([]float32, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Grad(h, r, t, 1, gh, gr, gt)
	}
}

func BenchmarkSamplerChunked(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	smp, err := sampler.New(sampler.Config{
		BatchSize: 128, NegPerPos: 16, ChunkSize: 16, NumEntity: g.NumEntity,
	}, g, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.Next()
	}
}

func BenchmarkPrefetchAndFilter(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		smp, err := sampler.New(sampler.Config{
			BatchSize: 64, NegPerPos: 8, ChunkSize: 8, NumEntity: g.NumEntity,
		}, g, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		pre := cache.Prefetch(smp, 16)
		if _, err := cache.Filter(pre, cache.FilterConfig{
			Capacity: 64, EntityFraction: 0.25, Heterogeneity: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachePolicies(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	smp, _ := sampler.New(sampler.Config{
		BatchSize: 64, NegPerPos: 8, ChunkSize: 8, NumEntity: g.NumEntity,
	}, g, rand.New(rand.NewSource(1)))
	pre := cache.Prefetch(smp, 30)
	var stream []ps.Key
	for _, bt := range pre.Batches {
		ents, rels := bt.DistinctIDs()
		for _, e := range ents {
			stream = append(stream, ps.EntityKey(e))
		}
		for _, r := range rels {
			stream = append(stream, ps.RelationKey(r))
		}
	}
	for _, name := range []string{"fifo", "lru", "lfu"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, _ := cache.NewPolicy(name, 64)
				cache.ReplayHitRatio(p, stream)
			}
		})
	}
}

func BenchmarkPartitioner(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	for _, name := range []string{"random", "metis"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, _ := partition.New(name, int64(i))
				if _, err := p.Partition(g, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPSPullPush(b *testing.B) {
	part := make([]int32, 1000)
	for i := range part {
		part[i] = int32(i % 4)
	}
	cluster, err := ps.NewCluster(ps.ClusterConfig{
		NumMachines:  4,
		EntityPart:   part,
		NumRelations: 20,
		EntityDim:    64,
		RelationDim:  64,
		NewOptimizer: func() opt.Optimizer { return opt.NewAdaGrad(0.1, 1e-10) },
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	client, err := ps.NewClient(0, cluster, ps.NewInProc(cluster), nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]ps.Key, 128)
	for i := range keys {
		keys[i] = ps.EntityKey(kg.EntityID(i * 7 % 1000))
	}
	grad := make([]float32, 64)
	grad[0] = 0.01
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make(map[ps.Key][]float32, len(keys))
		if err := client.Pull(keys, rows); err != nil {
			b.Fatal(err)
		}
		if err := client.Push(map[ps.Key][]float32{keys[i%len(keys)]: grad}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDegrees deduplicates the parallelism settings worth comparing on
// this machine: serial, a mid point, and every core.
func benchDegrees() []int {
	degrees := []int{1, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	var out []int
	for _, p := range degrees {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkProcessBatch measures the worker's batch hot path — gather,
// sharded gradient compute, ordered merge, push — at serial and full
// parallelism, reporting ns per (positive, negative) pair and allocs/op.
// The workload matches the paper's compute-bound regime: d = 128 with 64
// negatives per positive.
func BenchmarkProcessBatch(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	for _, p := range benchDegrees() {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			bb, err := train.NewBatchBench(train.Config{
				Graph:       g,
				Model:       model.TransE{Norm: 1},
				Loss:        model.LogisticLoss{},
				Dim:         128,
				LR:          0.1,
				Epochs:      1,
				BatchSize:   256,
				NegPerPos:   64,
				ChunkSize:   16,
				NumMachines: 1,
				Seed:        7,
				Parallelism: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bb.ProcessBatch(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bb.Pairs()), "ns/pair")
		})
	}
}

// BenchmarkProcessBatchSpans pins the span tracer's overhead guard against
// BenchmarkProcessBatch (the PR 1 baseline, which has no collector at all):
//
//	tracer=off     Config.Spans nil — every span call is a nil-check branch.
//	               Must match BenchmarkProcessBatch in ns/pair and allocs/op.
//	tracer=sampled every batch traced end to end (Every=1), the worst case;
//	               real runs trace 1/16 batches by default.
func BenchmarkProcessBatchSpans(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	base := train.Config{
		Graph:       g,
		Model:       model.TransE{Norm: 1},
		Loss:        model.LogisticLoss{},
		Dim:         128,
		LR:          0.1,
		Epochs:      1,
		BatchSize:   256,
		NegPerPos:   64,
		ChunkSize:   16,
		NumMachines: 1,
		Seed:        7,
		Parallelism: 1,
	}
	run := func(b *testing.B, cfg train.Config) {
		bb, err := train.NewBatchBench(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bb.ProcessBatchTraced(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bb.Pairs()), "ns/pair")
	}
	b.Run("tracer=off", func(b *testing.B) { run(b, base) })
	b.Run("tracer=sampled", func(b *testing.B) {
		cfg := base
		cfg.Spans = span.NewCollector(span.CollectorConfig{Every: 1, Capacity: 1 << 16})
		run(b, cfg)
	})
}

// BenchmarkEvaluate measures parallel link-prediction ranking in the
// sampled-candidate protocol, reporting ns per (triple, side) ranking.
func BenchmarkEvaluate(b *testing.B) {
	g := dataset.FB15kLike(dataset.Tiny, 1)
	rng := rand.New(rand.NewSource(3))
	ents := vec.NewMatrix(g.NumEntity, 128)
	rels := vec.NewMatrix(g.NumRel, 128)
	for _, m := range []*vec.Matrix{ents, rels} {
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = rng.Float32() - 0.5
			}
		}
	}
	test := g.Triples
	if len(test) > 256 {
		test = test[:256]
	}
	for _, p := range benchDegrees() {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			cfg := eval.Config{
				Model:         model.TransE{Norm: 1},
				Entities:      ents,
				Relations:     rels,
				NumCandidates: 200,
				Seed:          5,
				Parallelism:   p,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Evaluate(cfg, test); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*2*len(test)), "ns/ranking")
		})
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.FB15kLike(dataset.Tiny, int64(i))
	}
}
