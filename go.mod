module hetkg

go 1.22
