# Tier-1: build + unit tests (the gate every change must keep green).
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2: static analysis + the full suite under the race detector.
# The parallel execution engine (internal/par) and everything built on it
# must stay data-race free at any parallelism.
.PHONY: check
check:
	go vet ./...
	go test -race ./...

# Hot-path and experiment benchmarks with allocation counts.
.PHONY: bench
bench:
	go test -bench=. -benchmem -run '^$$' .

# Just the execution-engine benchmarks (batch compute + evaluation) at
# serial vs full parallelism.
.PHONY: bench-par
bench-par:
	go test -bench 'BenchmarkProcessBatch|BenchmarkEvaluate' -benchmem -run '^$$' .
