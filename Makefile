# Tier-1: build + unit tests (the gate every change must keep green).
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2: static analysis + the full suite under the race detector.
# The parallel execution engine (internal/par) and everything built on it
# must stay data-race free at any parallelism.
.PHONY: check
check:
	go vet ./...
	go test -race ./...

# Hot-path and experiment benchmarks with allocation counts.
.PHONY: bench
bench:
	go test -bench=. -benchmem -run '^$$' .

# Just the execution-engine benchmarks (batch compute + evaluation) at
# serial vs full parallelism.
.PHONY: bench-par
bench-par:
	go test -bench 'BenchmarkProcessBatch|BenchmarkEvaluate' -benchmem -run '^$$' .

# Observability demo: a ~200-iteration toy train writing a per-iteration
# JSONL timeline, then the final record. DESIGN.md §7 documents the schema;
# EXPERIMENTS.md maps each metric name to its paper artifact.
.PHONY: timeline-demo
timeline-demo:
	go run ./cmd/hetkg-train -dataset fb15k -scale tiny -system hetkg-d \
		-machines 2 -epochs 3 -timeline out/timeline-demo.jsonl -timeline-every 5
	@echo "== final timeline record:"
	@tail -n 1 out/timeline-demo.jsonl

# Serving demo: train a tiny checkpoint, serve it, and run the three query
# endpoints once. DESIGN.md §9 documents the architecture.
.PHONY: serve-demo
serve-demo:
	go run ./cmd/hetkg-train -dataset fb15k -scale tiny -epochs 2 -save out/serve-demo.ckpt
	go run ./cmd/hetkg-serve -ckpt out/serve-demo.ckpt -listen 127.0.0.1:8080 & \
	    sleep 2; \
	    curl -s 'localhost:8080/v1/score?head=0&relation=0&tail=1'; echo; \
	    curl -s 'localhost:8080/v1/predict?entity=0&relation=0&k=5'; echo; \
	    curl -s 'localhost:8080/v1/neighbors?entity=0&k=5'; echo; \
	    kill %1
