// Custom data: the full lifecycle on a user-supplied knowledge graph —
// write a TSV of facts, load it, train HET-KG on it, save a checkpoint,
// reload the checkpoint, and evaluate. This is the path a downstream user
// takes with their own data instead of the built-in benchmarks.
//
// Run with:
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"hetkg"
)

// makeTSV fabricates a small "org chart" knowledge graph: people report to
// managers, belong to teams, and teams own services. Any real TSV of
// "head<TAB>relation<TAB>tail" lines works the same way.
func makeTSV(path string) error {
	rng := rand.New(rand.NewSource(4))
	var sb strings.Builder
	const people, teams, services = 300, 20, 60
	for p := 0; p < people; p++ {
		fmt.Fprintf(&sb, "person%d\tmember_of\tteam%d\n", p, rng.Intn(teams))
		fmt.Fprintf(&sb, "person%d\treports_to\tperson%d\n", p, rng.Intn(people/10))
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, "person%d\ton_call_for\tservice%d\n", p, rng.Intn(services))
		}
	}
	for s := 0; s < services; s++ {
		fmt.Fprintf(&sb, "team%d\towns\tservice%d\n", rng.Intn(teams), s)
		fmt.Fprintf(&sb, "service%d\tdepends_on\tservice%d\n", s, rng.Intn(services))
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func main() {
	dir, err := os.MkdirTemp("", "hetkg-customdata")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tsvPath := filepath.Join(dir, "orgchart.tsv")
	ckptPath := filepath.Join(dir, "orgchart.ckpt")

	if err := makeTSV(tsvPath); err != nil {
		log.Fatal(err)
	}

	// 1. Load the TSV. The vocabulary maps string labels ↔ dense ids.
	f, err := os.Open(tsvPath)
	if err != nil {
		log.Fatal(err)
	}
	g, vocab, err := hetkg.ReadTSV(f, "orgchart")
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d entities, %d relations, %d triples\n",
		tsvPath, g.NumEntity, g.NumRel, g.NumTriples())

	// 2. Train HET-KG on the custom graph.
	res, err := hetkg.Run(hetkg.RunConfig{
		Graph:     g,
		Dataset:   "orgchart",
		System:    hetkg.SystemHETKGD,
		ModelName: "distmult",
		Dim:       32,
		Epochs:    8,
		Machines:  2,
		Seed:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %s (cache hit ratio %.1f%%)\n", res.Final, 100*res.HitRatio)

	// 3. Save a checkpoint and reload it — what a service embedding store
	// would do between training and serving.
	err = hetkg.WriteCheckpoint(ckptPath, &hetkg.Checkpoint{
		ModelName: "distmult",
		Dim:       res.Entities.Dim,
		Dataset:   "orgchart",
		Seed:      4,
		Epochs:    len(res.Epochs),
		System:    res.System,
		Entities:  res.Entities,
		Relations: res.Relations,
	})
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := hetkg.ReadCheckpoint(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint round trip: %d entity rows, %d relation rows\n",
		loaded.Entities.Rows, loaded.Relations.Rows)

	// 4. Query the reloaded embeddings: who is most plausibly on call for
	// service0? (Uses the vocabulary to translate labels ↔ ids.)
	mdl, err := hetkg.NewModel(loaded.ModelName)
	if err != nil {
		log.Fatal(err)
	}
	onCall := vocab.RelationID("on_call_for")
	service0 := vocab.EntityID("service0")
	r := loaded.Relations.Row(int(onCall))
	t := loaded.Entities.Row(int(service0))
	bestScore := float32(-1e30)
	best := ""
	for e := 0; e < loaded.Entities.Rows; e++ {
		label := vocab.EntityLabel(hetkg.EntityID(e))
		if !strings.HasPrefix(label, "person") {
			continue
		}
		if s := mdl.Score(loaded.Entities.Row(e), r, t); s > bestScore {
			bestScore, best = s, label
		}
	}
	fmt.Printf("most plausible (X, on_call_for, service0): %s (score %.3f)\n", best, bestScore)
}
