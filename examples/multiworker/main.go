// Multi-worker: the distributed substrate up close. This example
//
//  1. runs the same workload on 1 vs 4 simulated machines for all three
//     systems and prints the computation/communication breakdown (the
//     paper's Table I / Fig. 7 story), and
//  2. stands up real parameter-server shards on TCP sockets, connects a
//     client through the wire protocol, and does a pull → gradient push →
//     pull round trip — the same code path a true multi-process deployment
//     would use.
//
// Run with:
//
//	go run ./examples/multiworker
package main

import (
	"fmt"
	"log"
	"net"

	"hetkg"
	"hetkg/internal/opt"
	"hetkg/internal/ps"
)

func main() {
	fmt.Println("== 1 vs 4 machines: where does the time go? ==")
	fmt.Println("system    machines  comp     comm     comm%")
	for _, sys := range []hetkg.System{hetkg.SystemPBG, hetkg.SystemDGLKE, hetkg.SystemHETKGD} {
		for _, machines := range []int{1, 4} {
			res, err := hetkg.Run(hetkg.RunConfig{
				Dataset:   "fb15k",
				Scale:     hetkg.ScaleTiny,
				System:    sys,
				ModelName: "transe",
				Dim:       64,
				BatchSize: 128,
				Machines:  machines,
				Epochs:    2,
				EvalEvery: -1,
				Seed:      5,
			})
			if err != nil {
				log.Fatal(err)
			}
			frac := 0.0
			if res.Total() > 0 {
				frac = 100 * float64(res.Comm) / float64(res.Total())
			}
			fmt.Printf("%-9s %-9d %-8v %-8v %.0f%%\n",
				res.System, machines, res.Comp.Round(1e6), res.Comm.Round(1e6), frac)
		}
	}

	fmt.Println("\n== the parameter server over real TCP ==")
	// Build a 2-shard cluster and expose each shard on a loopback socket.
	cluster, err := ps.NewCluster(ps.ClusterConfig{
		NumMachines:  2,
		EntityPart:   []int32{0, 1, 0, 1, 0, 1, 0, 1},
		NumRelations: 3,
		EntityDim:    8,
		RelationDim:  8,
		NewOptimizer: func() opt.Optimizer { return opt.NewAdaGrad(0.1, 1e-10) },
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	for _, srv := range cluster.Servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		go ps.ServeTCP(l, srv)
	}
	fmt.Printf("shards listening on %v\n", addrs)

	tr, err := ps.DialTCP(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	client, err := ps.NewClient(0, cluster, tr, nil)
	if err != nil {
		log.Fatal(err)
	}

	keys := []ps.Key{ps.EntityKey(2), ps.EntityKey(3), ps.RelationKey(1)}
	rows := make(map[ps.Key][]float32)
	if err := client.Pull(keys, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulled %v over the wire; e:2 starts %.4f\n", keys, rows[ps.EntityKey(2)][0])

	grad := make([]float32, 8)
	grad[0] = 1 // one AdaGrad step on the first coordinate
	if err := client.Push(map[ps.Key][]float32{ps.EntityKey(2): grad}); err != nil {
		log.Fatal(err)
	}
	after := make(map[ps.Key][]float32)
	if err := client.Pull([]ps.Key{ps.EntityKey(2)}, after); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after pushing a gradient: e:2 starts %.4f (server applied AdaGrad)\n",
		after[ps.EntityKey(2)][0])
}
