// Cache tuning: sweep the three hot-embedding-cache knobs the paper studies
// in Fig. 8 — capacity, staleness bound P, and the entity/relation quota —
// and print how each moves the hit ratio, the communication time, and the
// model quality. This is the experiment a user would run before deploying
// HET-KG on their own graph.
//
// Run with:
//
//	go run ./examples/cachetuning
package main

import (
	"fmt"
	"log"

	"hetkg"
)

func run(mutate func(*hetkg.RunConfig)) *hetkg.Result {
	rc := hetkg.RunConfig{
		Dataset:   "freebase86m",
		Scale:     hetkg.ScaleTiny,
		System:    hetkg.SystemHETKGC,
		ModelName: "transe",
		// d=64 with batch 128 keeps traffic bandwidth-bound (the paper's
		// d=400 regime), so the comm column responds to the cache knobs.
		Dim:       64,
		BatchSize: 128,
		Epochs:    3,
		Seed:      11,
	}
	mutate(&rc)
	res, err := hetkg.Run(rc)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("-- cache capacity (P=8, quota 25/75) --")
	fmt.Println("capacity  hit-ratio  comm     MRR")
	for _, capRows := range []int{20, 50, 100, 200, 400} {
		res := run(func(rc *hetkg.RunConfig) { rc.CacheCapacity = capRows })
		fmt.Printf("%8d  %.3f      %-7v  %.3f\n",
			capRows, res.HitRatio, res.Comm.Round(1e6), res.Final.MRR)
	}

	fmt.Println("\n-- staleness bound P (capacity 100) --")
	fmt.Println("P    hit-ratio  comm     MRR")
	for _, p := range []int{1, 4, 16, 64} {
		res := run(func(rc *hetkg.RunConfig) {
			rc.CacheCapacity = 100
			rc.CacheSyncEvery = p
		})
		fmt.Printf("%-4d %.3f      %-7v  %.3f\n",
			p, res.HitRatio, res.Comm.Round(1e6), res.Final.MRR)
	}

	fmt.Println("\n-- entity share of the table (capacity 100, P=8) --")
	fmt.Println("entity%  hit-ratio  MRR")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.9} {
		res := run(func(rc *hetkg.RunConfig) {
			rc.CacheCapacity = 100
			rc.EntityFraction = frac
		})
		fmt.Printf("%6.0f%%  %.3f      %.3f\n", 100*frac, res.HitRatio, res.Final.MRR)
	}

	fmt.Println("\nreading the sweep: pick the smallest capacity where hit ratio")
	fmt.Println("flattens, keep P at or below the knee where MRR starts dropping")
	fmt.Println("(the paper finds P≈8), and keep most of the table for relations.")
}
