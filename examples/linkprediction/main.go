// Link prediction: train two KGE models on the same knowledge graph,
// compare their ranking quality, and use the better one to answer
// completion queries ("which tails are most plausible for (h, r, ?)") —
// the downstream task the paper's introduction motivates (question
// answering, recommendation).
//
// Run with:
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"
	"sort"

	"hetkg"
)

func main() {
	// Train TransE and DistMult on the same WN18-like graph. WN18 has only
	// 18 relation types, the regime where HET-KG's relation caching shines
	// (paper §VI-B.2).
	type trained struct {
		name string
		res  *hetkg.Result
	}
	var runs []trained
	for _, mdl := range []string{"transe", "distmult"} {
		res, err := hetkg.Run(hetkg.RunConfig{
			Dataset:   "wn18",
			Scale:     hetkg.ScaleTiny,
			System:    hetkg.SystemHETKGC,
			ModelName: mdl,
			Epochs:    6,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %s  (trained in %v)\n", mdl, res.Final, res.Total().Round(1e6))
		runs = append(runs, trained{mdl, res})
	}

	best := runs[0]
	if runs[1].res.Final.MRR > best.res.Final.MRR {
		best = runs[1]
	}
	fmt.Printf("\nusing %s for completion queries\n\n", best.name)

	model, err := hetkg.NewModel(best.name)
	if err != nil {
		log.Fatal(err)
	}
	ents, rels := best.res.Entities, best.res.Relations

	// Regenerate the graph (same preset + seed = same graph) to pick some
	// query heads and relations.
	g, _ := hetkg.DatasetByName("wn18", hetkg.ScaleTiny, 3)
	for q := 0; q < 3; q++ {
		tr := g.Triples[q*37]
		h := ents.Row(int(tr.Head))
		r := rels.Row(int(tr.Relation))

		// Score every entity as a candidate tail and report the top 5.
		type cand struct {
			id    int
			score float32
		}
		cands := make([]cand, ents.Rows)
		for e := 0; e < ents.Rows; e++ {
			cands[e] = cand{e, model.Score(h, r, ents.Row(e))}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

		fmt.Printf("query (%d, %d, ?) — true tail %d\n", tr.Head, tr.Relation, tr.Tail)
		for rank, c := range cands[:5] {
			marker := ""
			if c.id == int(tr.Tail) {
				marker = "  ← true tail"
			}
			fmt.Printf("  #%d entity %-6d score %8.3f%s\n", rank+1, c.id, c.score, marker)
		}
	}

	// Entity similarity: the trained table doubles as a vector index for
	// "more like this" queries (recommendation candidate generation).
	ix, err := hetkg.NewKNN(ents, hetkg.KNNCosine)
	if err != nil {
		log.Fatal(err)
	}
	probe := g.Triples[0].Head
	neighbors, err := ix.Neighbors(probe, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nentities most similar to entity %d (cosine):\n", probe)
	for _, n := range neighbors {
		fmt.Printf("  entity %-6d similarity %.3f\n", n.ID, n.Score)
	}
}
