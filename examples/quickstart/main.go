// Quickstart: train HET-KG on a small synthetic FB15k-like knowledge graph
// and print per-epoch progress plus the final link-prediction quality.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetkg"
)

func main() {
	// A single RunConfig describes the whole job: the dataset, the system
	// (HET-KG with the dynamic-partial-stale cache here), the model, and
	// the simulated cluster. Everything not set gets a sensible default
	// (4 machines, AdaGrad lr=0.1, the paper's 1 Gbps network).
	res, err := hetkg.Run(hetkg.RunConfig{
		Dataset:   "fb15k",
		Scale:     hetkg.ScaleTiny,
		System:    hetkg.SystemHETKGD,
		ModelName: "transe",
		Epochs:    5,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %s on fb15k-like\n\n", res.System)
	fmt.Println("epoch  loss     val-MRR  hit-ratio  epoch-time")
	for _, e := range res.Epochs {
		fmt.Printf("%5d  %.4f   %.3f    %.3f      %v\n",
			e.Epoch, e.Loss, e.MRR, e.HitRatio, e.Total().Round(1e6))
	}

	fmt.Printf("\nfinal link prediction: %s\n", res.Final)
	fmt.Printf("simulated cluster time: %v computation + %v communication\n",
		res.Comp.Round(1e6), res.Comm.Round(1e6))
	fmt.Printf("hot-embedding cache: %.1f%% of embedding reads served locally\n",
		100*res.HitRatio)

	// The trained embeddings are ordinary matrices, ready for downstream
	// use (nearest-neighbor search, clustering, features for another
	// model, ...).
	fmt.Printf("embeddings: %d entities × %d dims, %d relations × %d dims\n",
		res.Entities.Rows, res.Entities.Dim, res.Relations.Rows, res.Relations.Dim)
}
