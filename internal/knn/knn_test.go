package knn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hetkg/internal/kg"
	"hetkg/internal/vec"
)

func axisMatrix() *vec.Matrix {
	// Rows 0..3 on axes, row 4 near row 0.
	m := vec.NewMatrix(5, 4)
	m.Row(0)[0] = 1
	m.Row(1)[1] = 1
	m.Row(2)[2] = 1
	m.Row(3)[3] = 1
	m.Row(4)[0] = 0.9
	m.Row(4)[1] = 0.1
	return m
}

func TestCosineNeighbors(t *testing.T) {
	ix, err := New(axisMatrix(), Cosine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Neighbors(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].ID != 4 {
		t.Errorf("nearest to row 0 = %d, want 4", res[0].ID)
	}
	if res[0].Score < res[1].Score {
		t.Error("results not sorted descending")
	}
	for _, r := range res {
		if r.ID == 0 {
			t.Error("self not excluded")
		}
	}
}

func TestL2Search(t *testing.T) {
	ix, _ := New(axisMatrix(), L2)
	q := []float32{0.95, 0.05, 0, 0}
	res, err := ix.Search(q, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 4 && res[0].ID != 0 {
		t.Errorf("nearest = %d, want 0 or 4", res[0].ID)
	}
}

func TestDotSearch(t *testing.T) {
	m := vec.NewMatrix(3, 2)
	m.Row(0)[0] = 1
	m.Row(1)[0] = 10 // dot favors magnitude
	m.Row(2)[1] = 1
	ix, _ := New(m, Dot)
	res, _ := ix.Search([]float32{1, 0}, 1, -1)
	if res[0].ID != 1 {
		t.Errorf("dot nearest = %d, want 1 (largest projection)", res[0].ID)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Cosine); err == nil {
		t.Error("nil matrix accepted")
	}
	ix, _ := New(axisMatrix(), Cosine)
	if _, err := ix.Search([]float32{1}, 3, -1); err == nil {
		t.Error("wrong-width query accepted")
	}
	if _, err := ix.Neighbors(99, 3); err == nil {
		t.Error("out-of-range id accepted")
	}
	if res, err := ix.Search(make([]float32, 4), 0, -1); err != nil || res != nil {
		t.Error("k=0 should return nothing, no error")
	}
}

func TestKLargerThanRows(t *testing.T) {
	ix, _ := New(axisMatrix(), Cosine)
	res, err := ix.Neighbors(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // 5 rows minus self
		t.Errorf("got %d results, want 4", len(res))
	}
}

func TestZeroVectorCosine(t *testing.T) {
	m := vec.NewMatrix(2, 3)
	m.Row(1)[0] = 1
	ix, _ := New(m, Cosine)
	res, err := ix.Search(make([]float32, 3), 2, -1) // zero query
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score != 0 {
			t.Errorf("zero query scored %v against row %d", r.Score, r.ID)
		}
	}
}

// Property: the heap-based top-k agrees with a full sort.
func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := vec.NewMatrix(40, 6)
		m.InitXavier(rng)
		ix, err := New(m, Cosine)
		if err != nil {
			return false
		}
		q := make([]float32, 6)
		for i := range q {
			q[i] = rng.Float32()*2 - 1
		}
		k := 1 + int(kRaw%10)
		got, err := ix.Search(q, k, -1)
		if err != nil || len(got) != k {
			return false
		}
		// Brute-force reference.
		type sc struct {
			id kg.EntityID
			s  float32
		}
		var all []sc
		qn := vec.L2(q)
		for i := 0; i < m.Rows; i++ {
			d := qn * vec.L2(m.Row(i))
			var s float32
			if d > 0 {
				s = vec.Dot(q, m.Row(i)) / d
			}
			all = append(all, sc{kg.EntityID(i), s})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
		for i := 0; i < k; i++ {
			if got[i].Score != all[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSearchIntoMatchesSearch pins the scratch path to the allocating path:
// identical results on random tables at several k.
func TestSearchIntoMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := vec.NewMatrix(200, 16)
	m.InitUniform(rng, 1)
	for _, metric := range []Metric{Cosine, Dot, L2} {
		ix, err := New(m, metric)
		if err != nil {
			t.Fatal(err)
		}
		var scratch Scratch
		dst := make([]Result, 0, 32)
		for _, k := range []int{1, 5, 32} {
			q := m.Row(rng.Intn(m.Rows))
			want, err := ix.Search(q, k, -1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.SearchInto(dst, q, k, -1, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v k=%d: got %d results, want %d", metric, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%v k=%d result %d: got %+v, want %+v", metric, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSearchIntoZeroAlloc pins the serve hot loop's requirement: after the
// scratch warms up, a search performs no allocation.
func TestSearchIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := vec.NewMatrix(500, 32)
	m.InitUniform(rng, 1)
	ix, err := New(m, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	var scratch Scratch
	dst := make([]Result, 0, 10)
	q := m.Row(3)
	// Warm up the scratch heap once.
	if _, err := ix.SearchInto(dst, q, 10, 3, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ix.SearchInto(dst, q, 10, 3, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SearchInto allocates %.1f objects per search, want 0", allocs)
	}
}

func benchIndex(b *testing.B, rows, dim int) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	m := vec.NewMatrix(rows, dim)
	m.InitUniform(rng, 1)
	ix, err := New(m, Cosine)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkSearch(b *testing.B) {
	ix := benchIndex(b, 10000, 64)
	q := ix.m.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchInto(b *testing.B) {
	ix := benchIndex(b, 10000, 64)
	q := ix.m.Row(0)
	var scratch Scratch
	dst := make([]Result, 0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = ix.SearchInto(dst, q, 10, 0, &scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
}
