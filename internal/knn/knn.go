// Package knn provides exact nearest-neighbor search over embedding tables
// — the primary downstream consumption of trained KGE embeddings (similar
// entities for recommendation, candidate generation for QA, deduplication).
package knn

import (
	"container/heap"
	"fmt"

	"hetkg/internal/kg"
	"hetkg/internal/vec"
)

// Metric selects the similarity measure.
type Metric int

const (
	// Cosine similarity (higher = closer); zero vectors score 0.
	Cosine Metric = iota
	// Dot product (higher = closer).
	Dot
	// L2 ranks by negative Euclidean distance (higher = closer).
	L2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	case L2:
		return "l2"
	default:
		return "unknown"
	}
}

// Result is one neighbor: the row id and its similarity score.
type Result struct {
	ID    kg.EntityID
	Score float32
}

// Index searches an embedding matrix exactly (brute force with a bounded
// heap — at KGE scales a scan is memory-bandwidth-bound and beats
// approximate structures until millions of rows).
type Index struct {
	m      *vec.Matrix
	metric Metric
	norms  []float32 // cached row l2 norms for Cosine
}

// New builds an index over m. The matrix is referenced, not copied; callers
// must not resize it while searching (updates to values are fine for Dot
// and L2; Cosine caches norms at construction).
func New(m *vec.Matrix, metric Metric) (*Index, error) {
	if m == nil || m.Rows == 0 {
		return nil, fmt.Errorf("knn: empty matrix")
	}
	ix := &Index{m: m, metric: metric}
	if metric == Cosine {
		ix.norms = make([]float32, m.Rows)
		for i := 0; i < m.Rows; i++ {
			ix.norms[i] = vec.L2(m.Row(i))
		}
	}
	return ix, nil
}

// Search returns the k most similar rows to query, most similar first.
// exclude (when ≥ 0) removes one row id from the results — pass the query's
// own id for "neighbors of entity X".
func (ix *Index) Search(query []float32, k int, exclude kg.EntityID) ([]Result, error) {
	if len(query) != ix.m.Dim {
		return nil, fmt.Errorf("knn: query width %d, index width %d", len(query), ix.m.Dim)
	}
	if k <= 0 {
		return nil, nil
	}
	var qNorm float32
	if ix.metric == Cosine {
		qNorm = vec.L2(query)
	}
	h := &resultHeap{}
	heap.Init(h)
	for i := 0; i < ix.m.Rows; i++ {
		if kg.EntityID(i) == exclude {
			continue
		}
		var s float32
		switch ix.metric {
		case Cosine:
			d := qNorm * ix.norms[i]
			if d > 0 {
				s = vec.Dot(query, ix.m.Row(i)) / d
			}
		case Dot:
			s = vec.Dot(query, ix.m.Row(i))
		case L2:
			s = -vec.L2Dist(query, ix.m.Row(i))
		}
		if h.Len() < k {
			heap.Push(h, Result{ID: kg.EntityID(i), Score: s})
		} else if s > (*h)[0].Score {
			(*h)[0] = Result{ID: kg.EntityID(i), Score: s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, nil
}

// Neighbors returns the k nearest rows to row id (excluding itself).
func (ix *Index) Neighbors(id kg.EntityID, k int) ([]Result, error) {
	if int(id) < 0 || int(id) >= ix.m.Rows {
		return nil, fmt.Errorf("knn: id %d out of range [0,%d)", id, ix.m.Rows)
	}
	return ix.Search(ix.m.Row(int(id)), k, id)
}

// resultHeap is a min-heap on Score, so the root is the weakest of the
// current top-k and can be displaced cheaply.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
