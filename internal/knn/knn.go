// Package knn provides exact nearest-neighbor search over embedding tables
// — the primary downstream consumption of trained KGE embeddings (similar
// entities for recommendation, candidate generation for QA, deduplication).
package knn

import (
	"fmt"

	"hetkg/internal/kg"
	"hetkg/internal/vec"
)

// Metric selects the similarity measure.
type Metric int

const (
	// Cosine similarity (higher = closer); zero vectors score 0.
	Cosine Metric = iota
	// Dot product (higher = closer).
	Dot
	// L2 ranks by negative Euclidean distance (higher = closer).
	L2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	case L2:
		return "l2"
	default:
		return "unknown"
	}
}

// ParseMetric converts "cosine" / "dot" / "l2" to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine":
		return Cosine, nil
	case "dot":
		return Dot, nil
	case "l2":
		return L2, nil
	default:
		return 0, fmt.Errorf("knn: unknown metric %q (want cosine, dot, or l2)", s)
	}
}

// Result is one neighbor: the row id and its similarity score.
type Result struct {
	ID    kg.EntityID `json:"id"`
	Score float32     `json:"score"`
}

// Index searches an embedding matrix exactly (brute force with a bounded
// heap — at KGE scales a scan is memory-bandwidth-bound and beats
// approximate structures until millions of rows).
type Index struct {
	m      *vec.Matrix
	metric Metric
	norms  []float32 // cached row l2 norms for Cosine
}

// New builds an index over m. The matrix is referenced, not copied; callers
// must not resize it while searching (updates to values are fine for Dot
// and L2; Cosine caches norms at construction).
func New(m *vec.Matrix, metric Metric) (*Index, error) {
	if m == nil || m.Rows == 0 {
		return nil, fmt.Errorf("knn: empty matrix")
	}
	ix := &Index{m: m, metric: metric}
	if metric == Cosine {
		ix.norms = make([]float32, m.Rows)
		for i := 0; i < m.Rows; i++ {
			ix.norms[i] = vec.L2(m.Row(i))
		}
	}
	return ix, nil
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.m.Rows }

// Metric returns the similarity measure the index was built with.
func (ix *Index) Metric() Metric { return ix.metric }

// Scratch is reusable state for SearchInto: a caller-owned bounded heap
// that lets the hot path of a query server run without a single allocation
// per search. The zero Scratch is ready to use (the first search sizes it).
type Scratch struct {
	heap []Result
}

// Search returns the k most similar rows to query, most similar first.
// exclude (when ≥ 0) removes one row id from the results — pass the query's
// own id for "neighbors of entity X". Search allocates its result slice;
// allocation-sensitive callers should use SearchInto.
func (ix *Index) Search(query []float32, k int, exclude kg.EntityID) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	var s Scratch
	return ix.SearchInto(make([]Result, 0, k), query, k, exclude, &s)
}

// SearchInto is Search with caller-provided storage: results are written
// into dst (grown from dst[:0], so pass a slice with capacity ≥ k to avoid
// growth) and the bounded heap lives in scratch, which is reused across
// calls. After the scratch has warmed up to the largest k seen, a search
// performs no allocation.
func (ix *Index) SearchInto(dst []Result, query []float32, k int, exclude kg.EntityID, scratch *Scratch) ([]Result, error) {
	if len(query) != ix.m.Dim {
		return nil, fmt.Errorf("knn: query width %d, index width %d", len(query), ix.m.Dim)
	}
	if k <= 0 {
		return dst[:0], nil
	}
	var qNorm float32
	if ix.metric == Cosine {
		qNorm = vec.L2(query)
	}
	h := scratch.heap[:0]
	for i := 0; i < ix.m.Rows; i++ {
		if kg.EntityID(i) == exclude {
			continue
		}
		var s float32
		switch ix.metric {
		case Cosine:
			d := qNorm * ix.norms[i]
			if d > 0 {
				s = vec.Dot(query, ix.m.Row(i)) / d
			}
		case Dot:
			s = vec.Dot(query, ix.m.Row(i))
		case L2:
			s = -vec.L2Dist(query, ix.m.Row(i))
		}
		if len(h) < k {
			h = append(h, Result{ID: kg.EntityID(i), Score: s})
			siftUp(h, len(h)-1)
		} else if s > h[0].Score {
			h[0] = Result{ID: kg.EntityID(i), Score: s}
			siftDown(h, 0)
		}
	}
	scratch.heap = h // keep the grown backing array for the next call
	if cap(dst) < len(h) {
		dst = make([]Result, len(h))
	} else {
		dst = dst[:len(h)]
	}
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		siftDown(h, 0)
	}
	return dst, nil
}

// Neighbors returns the k nearest rows to row id (excluding itself).
func (ix *Index) Neighbors(id kg.EntityID, k int) ([]Result, error) {
	if int(id) < 0 || int(id) >= ix.m.Rows {
		return nil, fmt.Errorf("knn: id %d out of range [0,%d)", id, ix.m.Rows)
	}
	return ix.Search(ix.m.Row(int(id)), k, id)
}

// NeighborsInto is Neighbors with caller-provided storage (see SearchInto).
func (ix *Index) NeighborsInto(dst []Result, id kg.EntityID, k int, scratch *Scratch) ([]Result, error) {
	if int(id) < 0 || int(id) >= ix.m.Rows {
		return nil, fmt.Errorf("knn: id %d out of range [0,%d)", id, ix.m.Rows)
	}
	return ix.SearchInto(dst, ix.m.Row(int(id)), k, id, scratch)
}

// The heap is a min-heap on score, so the root is the weakest of the
// current top-k and can be displaced cheaply. Sift operations are hand
// rolled rather than going through container/heap: the interface boxing on
// heap.Push costs one allocation per displaced candidate, which SearchInto
// exists to avoid.

func siftUp(h []Result, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Score <= h[i].Score {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []Result, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].Score < h[small].Score {
			small = l
		}
		if r < n && h[r].Score < h[small].Score {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
