package cache

import (
	"math/rand"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/ps"
)

func keyStream(ids ...int) []ps.Key {
	out := make([]ps.Key, len(ids))
	for i, id := range ids {
		out[i] = ps.EntityKey(kg.EntityID(id))
	}
	return out
}

func TestBeladyKnownSequence(t *testing.T) {
	// Classic example: capacity 2, stream 1 2 3 1 2. MIN keeps 1 and 2
	// (bypassing 3, whose next use is never) → hits on the final 1 and 2.
	stream := keyStream(1, 2, 3, 1, 2)
	got := Belady(2, stream)
	if want := 2.0 / 5.0; got != want {
		t.Errorf("Belady = %v, want %v", got, want)
	}
}

func TestBeladyAllHitsWhenEverythingFits(t *testing.T) {
	stream := keyStream(1, 2, 1, 2, 1, 2)
	if got := Belady(10, stream); got != 4.0/6.0 {
		t.Errorf("Belady = %v, want 4/6 (first touch of each key must miss)", got)
	}
}

func TestBeladyEdgeCases(t *testing.T) {
	if Belady(0, keyStream(1, 2)) != 0 {
		t.Error("capacity 0 should give 0")
	}
	if Belady(4, nil) != 0 {
		t.Error("empty stream should give 0")
	}
	if Belady(1, keyStream(1)) != 0 {
		t.Error("single access can never hit")
	}
}

// Belady dominates every online policy on every stream — the defining
// property. Check against FIFO, LRU and LFU on random Zipf-ish streams.
func TestBeladyDominatesOnlinePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 400 + rng.Intn(400)
		stream := make([]ps.Key, n)
		for i := range stream {
			// Squared uniform → skewed toward small ids.
			v := rng.Intn(40)
			stream[i] = ps.EntityKey(kg.EntityID(v * v / 40))
		}
		capacity := 2 + rng.Intn(10)
		bound := Belady(capacity, stream)
		for _, name := range []string{"fifo", "lru", "lfu"} {
			p, _ := NewPolicy(name, capacity)
			if got := ReplayHitRatio(p, stream); got > bound+1e-9 {
				t.Fatalf("trial %d: %s (%.4f) beat Belady (%.4f) at capacity %d",
					trial, name, got, bound, capacity)
			}
		}
	}
}

func TestBeladyMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	stream := make([]ps.Key, 600)
	for i := range stream {
		stream[i] = ps.EntityKey(kg.EntityID(rng.Intn(30)))
	}
	prev := -1.0
	for _, capacity := range []int{1, 2, 4, 8, 16, 32} {
		got := Belady(capacity, stream)
		if got < prev-1e-9 {
			t.Fatalf("Belady not monotone: capacity %d gives %.4f < %.4f", capacity, got, prev)
		}
		prev = got
	}
}
