package cache

import (
	"math/rand"
	"testing"

	"hetkg/internal/dataset"
	"hetkg/internal/kg"
	"hetkg/internal/metrics"
	"hetkg/internal/opt"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
)

// fixture builds a 1-machine cluster with a client over a small graph.
func fixture(t *testing.T, g *kg.Graph) (*ps.Cluster, *ps.Client) {
	t.Helper()
	part := make([]int32, g.NumEntity)
	c, err := ps.NewCluster(ps.ClusterConfig{
		NumMachines:  1,
		EntityPart:   part,
		NumRelations: g.NumRel,
		EntityDim:    4,
		RelationDim:  4,
		NewOptimizer: func() opt.Optimizer { return &opt.SGD{LR: 0.1} },
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl, err := ps.NewClient(0, c, ps.NewInProc(c), nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c, cl
}

func smallGraph(t *testing.T) *kg.Graph {
	t.Helper()
	return dataset.MustGenerate(dataset.Config{
		Name: "cachetest", NumEntity: 100, NumRel: 8, NumTriples: 800,
		EntityZipf: 1.0, RelationZipf: 1.0, Seed: 3,
	})
}

func newTestSampler(t *testing.T, g *kg.Graph, seed int64) *sampler.Sampler {
	t.Helper()
	s, err := sampler.New(sampler.Config{
		BatchSize: 16, NegPerPos: 4, ChunkSize: 4, NumEntity: g.NumEntity,
	}, g, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("sampler.New: %v", err)
	}
	return s
}

func TestPrefetchCensus(t *testing.T) {
	g := smallGraph(t)
	s := newTestSampler(t, g, 1)
	p := Prefetch(s, 5)
	if len(p.Batches) != 5 {
		t.Fatalf("prefetched %d batches, want 5", len(p.Batches))
	}
	// Recount manually and compare.
	entWant := map[kg.EntityID]int{}
	relWant := map[kg.RelationID]int{}
	for _, b := range p.Batches {
		for i, pos := range b.Pos {
			entWant[pos.Head]++
			entWant[pos.Tail]++
			relWant[pos.Relation]++
			for _, e := range b.Neg[i].Entities {
				entWant[e]++
			}
		}
	}
	for e, w := range entWant {
		if p.EntityFreq[e] != w {
			t.Errorf("EntityFreq[%d] = %d, want %d", e, p.EntityFreq[e], w)
		}
	}
	for r, w := range relWant {
		if p.RelationFreq[r] != w {
			t.Errorf("RelationFreq[%d] = %d, want %d", r, p.RelationFreq[r], w)
		}
	}
}

func TestFilterCapacityAndQuota(t *testing.T) {
	p := &Prefetched{
		EntityFreq:   map[kg.EntityID]int{0: 100, 1: 90, 2: 80, 3: 70, 4: 60},
		RelationFreq: map[kg.RelationID]int{0: 500, 1: 400, 2: 300, 3: 200},
	}
	keys, err := Filter(p, FilterConfig{Capacity: 4, EntityFraction: 0.25, Heterogeneity: true})
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if len(keys) != 4 {
		t.Fatalf("selected %d keys, want 4", len(keys))
	}
	ents, rels := 0, 0
	for _, k := range keys {
		if k.IsRelation() {
			rels++
		} else {
			ents++
		}
	}
	if ents != 1 || rels != 3 {
		t.Errorf("quota split = %d entities / %d relations, want 1/3", ents, rels)
	}
	// The selected entity must be the hottest one.
	if keys[0] != ps.EntityKey(0) {
		t.Errorf("hottest entity not selected first: %v", keys[0])
	}
}

func TestFilterWithoutHeterogeneityPrefersRelations(t *testing.T) {
	// Relations are hotter; without the quota they crowd out entities —
	// the HET-KG-N behavior of Table VII.
	p := &Prefetched{
		EntityFreq:   map[kg.EntityID]int{0: 10, 1: 9},
		RelationFreq: map[kg.RelationID]int{0: 100, 1: 90, 2: 80},
	}
	keys, err := Filter(p, FilterConfig{Capacity: 3, Heterogeneity: false})
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	for _, k := range keys {
		if !k.IsRelation() {
			t.Errorf("frequency-only filter admitted entity %v over hotter relations", k)
		}
	}
}

func TestFilterShortfallSpillsToOtherPool(t *testing.T) {
	// WN18-like: only 2 relations but 75% relation quota on capacity 8 —
	// the unused relation slots must go to entities.
	p := &Prefetched{
		EntityFreq:   map[kg.EntityID]int{0: 9, 1: 8, 2: 7, 3: 6, 4: 5, 5: 4, 6: 3, 7: 2, 8: 1},
		RelationFreq: map[kg.RelationID]int{0: 100, 1: 90},
	}
	keys, err := Filter(p, FilterConfig{Capacity: 8, EntityFraction: 0.25, Heterogeneity: true})
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if len(keys) != 8 {
		t.Fatalf("selected %d keys, want 8 (capacity must not be wasted)", len(keys))
	}
	rels := 0
	for _, k := range keys {
		if k.IsRelation() {
			rels++
		}
	}
	if rels != 2 {
		t.Errorf("got %d relations, want all 2", rels)
	}
}

func TestFilterTinyUniverse(t *testing.T) {
	// Fewer ids than capacity: everything is selected, nothing repeats.
	p := &Prefetched{
		EntityFreq:   map[kg.EntityID]int{0: 2},
		RelationFreq: map[kg.RelationID]int{0: 3},
	}
	keys, err := Filter(p, FilterConfig{Capacity: 100, EntityFraction: 0.25, Heterogeneity: true})
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if len(keys) != 2 {
		t.Errorf("selected %d keys, want 2", len(keys))
	}
}

func TestFilterValidation(t *testing.T) {
	p := &Prefetched{EntityFreq: map[kg.EntityID]int{}, RelationFreq: map[kg.RelationID]int{}}
	if _, err := Filter(p, FilterConfig{Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := Filter(p, FilterConfig{Capacity: 1, EntityFraction: 2}); err == nil {
		t.Error("EntityFraction > 1 accepted")
	}
}

func TestFilterDeterministic(t *testing.T) {
	g := smallGraph(t)
	pa := Prefetch(newTestSampler(t, g, 7), 10)
	pb := Prefetch(newTestSampler(t, g, 7), 10)
	cfg := FilterConfig{Capacity: 20, EntityFraction: 0.25, Heterogeneity: true}
	ka, _ := Filter(pa, cfg)
	kb, _ := Filter(pb, cfg)
	if len(ka) != len(kb) {
		t.Fatal("nondeterministic selection size")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("selection differs at %d: %v vs %v", i, ka[i], kb[i])
		}
	}
}

func TestHotCacheBuildGetUpdateRefresh(t *testing.T) {
	g := smallGraph(t)
	_, cl := fixture(t, g)
	hc, err := New(cl, &opt.SGD{LR: 0.1}, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	keys := []ps.Key{ps.EntityKey(0), ps.RelationKey(0)}
	if err := hc.Build(keys, 0); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if hc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", hc.Len())
	}
	// Cached value must equal the PS value.
	psRows := make(map[ps.Key][]float32)
	if err := cl.Pull(keys, psRows); err != nil {
		t.Fatal(err)
	}
	row, ok := hc.Get(ps.EntityKey(0), 0)
	if !ok {
		t.Fatal("cached key missed")
	}
	for i := range row {
		if row[i] != psRows[ps.EntityKey(0)][i] {
			t.Fatal("cached value differs from PS value after Build")
		}
	}
	// Miss on an uncached key.
	if _, ok := hc.Get(ps.EntityKey(50), 0); ok {
		t.Error("uncached key hit")
	}
	if got := hc.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", got)
	}
	// Update mutates the local copy only.
	grad := []float32{1, 0, 0, 0}
	before := row[0]
	hc.Update(ps.EntityKey(0), grad)
	after, _ := hc.Peek(ps.EntityKey(0))
	if after[0] != before-0.1 {
		t.Errorf("local update: %v, want %v", after[0], before-0.1)
	}
	psRows2 := make(map[ps.Key][]float32)
	_ = cl.Pull(keys, psRows2)
	if psRows2[ps.EntityKey(0)][0] != psRows[ps.EntityKey(0)][0] {
		t.Error("cache Update leaked to the parameter server")
	}
	// Refresh restores the PS value (local divergence erased).
	if err := hc.Refresh(0); err != nil {
		t.Fatal(err)
	}
	fresh, _ := hc.Peek(ps.EntityKey(0))
	if fresh[0] != psRows[ps.EntityKey(0)][0] {
		t.Error("Refresh did not restore the PS value")
	}
}

func TestHotCacheUpdateUnknownKeyIsNoop(t *testing.T) {
	g := smallGraph(t)
	_, cl := fixture(t, g)
	hc, _ := New(cl, &opt.SGD{LR: 0.1}, 0)
	hc.Update(ps.EntityKey(99), []float32{1, 1, 1, 1}) // must not panic
}

func TestPerRowStalenessBound(t *testing.T) {
	g := smallGraph(t)
	_, cl := fixture(t, g)
	hc, _ := New(cl, &opt.SGD{LR: 0.1}, 4) // P = 4
	k := ps.EntityKey(0)
	if err := hc.Build([]ps.Key{k}, 0); err != nil {
		t.Fatal(err)
	}
	// Fresh for iterations 0..3, stale from iteration 4.
	for it := 0; it < 4; it++ {
		if _, ok := hc.Get(k, it); !ok {
			t.Fatalf("iteration %d: fresh row missed", it)
		}
	}
	if _, ok := hc.Get(k, 4); ok {
		t.Fatal("row older than P served as a hit")
	}
	// Re-offering a fresh value resets the clock.
	fresh := make(map[ps.Key][]float32)
	if err := cl.Pull([]ps.Key{k}, fresh); err != nil {
		t.Fatal(err)
	}
	hc.Offer(k, fresh[k], 4)
	for it := 4; it < 8; it++ {
		if _, ok := hc.Get(k, it); !ok {
			t.Fatalf("iteration %d after Offer: missed", it)
		}
	}
	if _, ok := hc.Get(k, 8); ok {
		t.Fatal("staleness clock not re-armed after Offer")
	}
	// P = 0: unbounded, never stale.
	hc0, _ := New(cl, &opt.SGD{LR: 0.1}, 0)
	_ = hc0.Build([]ps.Key{k}, 0)
	if _, ok := hc0.Get(k, 1000000); !ok {
		t.Error("unbounded cache expired a row")
	}
	// Offer for a key outside the table is ignored.
	hc0.Offer(ps.EntityKey(99), fresh[k], 0)
	if hc0.Contains(ps.EntityKey(99)) {
		t.Error("Offer admitted a non-hot key")
	}
}

func TestStalenessBoundedByRefresh(t *testing.T) {
	// Another writer updates the PS; the cache serves the stale value
	// until Refresh, after which it serves the new one. This is the
	// partial-stale contract of §IV-C.
	g := smallGraph(t)
	_, cl := fixture(t, g)
	hc, _ := New(cl, &opt.SGD{LR: 0.1}, 0)
	k := ps.EntityKey(1)
	if err := hc.Build([]ps.Key{k}, 0); err != nil {
		t.Fatal(err)
	}
	stale, _ := hc.Peek(k)
	staleVal := stale[0]
	// Simulate a remote worker pushing a gradient to the PS.
	grad := []float32{2, 0, 0, 0}
	if err := cl.Push(map[ps.Key][]float32{k: grad}); err != nil {
		t.Fatal(err)
	}
	cur, _ := hc.Peek(k)
	if cur[0] != staleVal {
		t.Error("cache changed without Refresh")
	}
	if err := hc.Refresh(0); err != nil {
		t.Fatal(err)
	}
	fresh, _ := hc.Peek(k)
	if fresh[0] == staleVal {
		t.Error("Refresh did not pick up the remote update")
	}
}

func TestNewValidation(t *testing.T) {
	g := smallGraph(t)
	_, cl := fixture(t, g)
	if _, err := New(nil, &opt.SGD{LR: 0.1}, 0); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := New(cl, nil, 0); err == nil {
		t.Error("nil optimizer accepted")
	}
	if _, err := New(cl, &opt.SGD{LR: 0.1}, -1); err == nil {
		t.Error("negative staleBound accepted")
	}
}

func TestFIFOPolicy(t *testing.T) {
	f := NewFIFO(2)
	if f.Access(ps.EntityKey(1)) {
		t.Error("cold access hit")
	}
	if !f.Access(ps.EntityKey(1)) {
		t.Error("resident access missed")
	}
	f.Access(ps.EntityKey(2))
	f.Access(ps.EntityKey(3)) // evicts 1 (oldest)
	if f.Access(ps.EntityKey(1)) {
		t.Error("evicted key still resident")
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

func TestLRUPolicy(t *testing.T) {
	l := NewLRU(2)
	l.Access(ps.EntityKey(1))
	l.Access(ps.EntityKey(2))
	l.Access(ps.EntityKey(1)) // 1 now most recent
	l.Access(ps.EntityKey(3)) // evicts 2
	if !l.Access(ps.EntityKey(1)) {
		t.Error("recently used key evicted")
	}
	if l.Access(ps.EntityKey(2)) {
		t.Error("least recently used key not evicted")
	}
}

func TestLFUPolicy(t *testing.T) {
	l := NewLFU(2)
	for i := 0; i < 5; i++ {
		l.Access(ps.EntityKey(1))
	}
	l.Access(ps.EntityKey(2))
	// Key 3 is colder than both residents: not admitted.
	l.Access(ps.EntityKey(3))
	if !l.Access(ps.EntityKey(1)) {
		t.Error("hot key evicted by cold newcomer")
	}
	// Heat key 3 until it displaces key 2.
	for i := 0; i < 5; i++ {
		l.Access(ps.EntityKey(3))
	}
	if !l.Access(ps.EntityKey(3)) {
		t.Error("now-hot key not admitted")
	}
}

func TestZeroCapacityPolicies(t *testing.T) {
	for _, name := range []string{"fifo", "lru", "lfu"} {
		p, ok := NewPolicy(name, 0)
		if !ok {
			t.Fatalf("NewPolicy(%q) failed", name)
		}
		if p.Access(ps.EntityKey(1)) || p.Len() != 0 {
			t.Errorf("%s with capacity 0 admitted a key", name)
		}
	}
	if _, ok := NewPolicy("arc", 1); ok {
		t.Error("unknown policy accepted")
	}
}

// Table VI's qualitative ordering: on a skewed access stream with equal
// capacity, FIFO < LRU < LFU < HET-KG's oracle-prefetch selection.
func TestPolicyOrderingOnSkewedStream(t *testing.T) {
	g := dataset.FB15kLike(dataset.Tiny, 5)
	s, err := sampler.New(sampler.Config{
		BatchSize: 32, NegPerPos: 4, ChunkSize: 8, NumEntity: g.NumEntity,
	}, g, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	p := Prefetch(s, 60)
	// The access stream is per-iteration *pulls*: within a mini-batch the
	// worker deduplicates ids and fetches each embedding once, so the
	// stream carries one access per distinct id per batch (matching how
	// the paper counts cache hits).
	var stream []ps.Key
	for _, b := range p.Batches {
		ents, rels := b.DistinctIDs()
		for _, e := range ents {
			stream = append(stream, ps.EntityKey(e))
		}
		for _, r := range rels {
			stream = append(stream, ps.RelationKey(r))
		}
	}
	const capacity = 40
	fifo := ReplayHitRatio(NewFIFO(capacity), stream)
	lru := ReplayHitRatio(NewLRU(capacity), stream)
	lfu := ReplayHitRatio(NewLFU(capacity), stream)
	keys, err := Filter(p, FilterConfig{Capacity: capacity, EntityFraction: 0.25, Heterogeneity: true})
	if err != nil {
		t.Fatal(err)
	}
	table := make(map[ps.Key]struct{}, len(keys))
	for _, k := range keys {
		table[k] = struct{}{}
	}
	het := StaticHitRatio(table, stream)
	t.Logf("hit ratios: fifo=%.3f lru=%.3f lfu=%.3f hetkg=%.3f", fifo, lru, lfu, het)
	if !(fifo <= lru+0.02) {
		t.Errorf("FIFO (%.3f) should not beat LRU (%.3f)", fifo, lru)
	}
	if !(lru < het) || !(lfu < het+1e-9) {
		t.Errorf("HET-KG (%.3f) must beat LRU (%.3f) and LFU (%.3f)", het, lru, lfu)
	}
	if het < 0.2 {
		t.Errorf("HET-KG hit ratio %.3f implausibly low on a skewed stream", het)
	}
}

func TestReplayHitRatioEmptyStream(t *testing.T) {
	if ReplayHitRatio(NewLRU(4), nil) != 0 {
		t.Error("empty stream ratio should be 0")
	}
	if StaticHitRatio(map[ps.Key]struct{}{}, nil) != 0 {
		t.Error("empty static ratio should be 0")
	}
}

func TestStrategyString(t *testing.T) {
	if CPS.String() != "CPS" || DPS.String() != "DPS" {
		t.Error("Strategy.String wrong")
	}
}

// DPS exists because access patterns drift (§IV-B.2): when the sampling
// distribution changes mid-stream, a table rebuilt from short-term lookahead
// must beat the table frozen from the old distribution.
func TestDPSAdaptsToDriftingDistribution(t *testing.T) {
	// Phase 1 touches entities 0..49; phase 2 touches 50..99.
	phase := func(lo, hi, batches int) *Prefetched {
		p := &Prefetched{
			EntityFreq:   map[kg.EntityID]int{},
			RelationFreq: map[kg.RelationID]int{0: batches},
		}
		for b := 0; b < batches; b++ {
			for e := lo; e < hi; e++ {
				p.EntityFreq[kg.EntityID(e)] += (hi - e) % 7 // some skew
			}
		}
		return p
	}
	cfg := FilterConfig{Capacity: 20, EntityFraction: 0.9, Heterogeneity: true}
	oldTable, err := Filter(phase(0, 50, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	newTable, err := Filter(phase(50, 100, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Phase-2 access stream.
	var stream []ps.Key
	for rep := 0; rep < 3; rep++ {
		for e := 50; e < 100; e++ {
			stream = append(stream, ps.EntityKey(kg.EntityID(e)))
		}
	}
	toSet := func(keys []ps.Key) map[ps.Key]struct{} {
		m := map[ps.Key]struct{}{}
		for _, k := range keys {
			m[k] = struct{}{}
		}
		return m
	}
	cpsHit := StaticHitRatio(toSet(oldTable), stream) // frozen CPS table
	dpsHit := StaticHitRatio(toSet(newTable), stream) // rebuilt DPS table
	if dpsHit <= cpsHit {
		t.Errorf("after drift, DPS hit %.3f should beat stale CPS %.3f", dpsHit, cpsHit)
	}
	if dpsHit < 0.3 {
		t.Errorf("rebuilt table hit %.3f implausibly low", dpsHit)
	}
}

// TestReplayObserved checks the registry-publishing replay agrees with
// ReplayHitRatio and exposes hits, misses, and evictions under the policy's
// cache.policy.<name>.* series.
func TestReplayObserved(t *testing.T) {
	stream := make([]ps.Key, 0, 60)
	for round := 0; round < 3; round++ {
		for e := 0; e < 20; e++ {
			stream = append(stream, ps.EntityKey(kg.EntityID(e)))
		}
	}
	a := NewFIFO(8)
	want := ReplayHitRatio(a, stream)

	reg := metrics.NewRegistry()
	b := NewFIFO(8)
	got := ReplayObserved(b, stream, reg)
	if got != want {
		t.Fatalf("ReplayObserved hit ratio %v, ReplayHitRatio %v", got, want)
	}
	hits := reg.Counter("cache.policy.fifo.hits").Value()
	misses := reg.Counter("cache.policy.fifo.misses").Value()
	if hits+misses != int64(len(stream)) {
		t.Fatalf("hits %d + misses %d != %d accesses", hits, misses, len(stream))
	}
	if float64(hits)/float64(len(stream)) != want {
		t.Fatalf("counter-derived hit ratio disagrees with %v", want)
	}
	ev := reg.Counter("cache.policy.fifo.evictions").Value()
	if ev != b.Evictions() || ev == 0 {
		t.Fatalf("evictions counter %d, policy reports %d", ev, b.Evictions())
	}
	// A second replay into the same registry accumulates, evictions stay
	// in sync with the policy's own total.
	ReplayObserved(b, stream, reg)
	if got := reg.Counter("cache.policy.fifo.evictions").Value(); got != b.Evictions() {
		t.Fatalf("after second replay evictions counter %d, policy reports %d", got, b.Evictions())
	}
}

// TestPolicyEvictionCounts pins eviction accounting for each policy.
func TestPolicyEvictionCounts(t *testing.T) {
	f := NewFIFO(2)
	for e := 0; e < 4; e++ {
		f.Access(ps.EntityKey(kg.EntityID(e)))
	}
	if f.Evictions() != 2 {
		t.Errorf("FIFO evictions = %d, want 2", f.Evictions())
	}
	l := NewLRU(2)
	for e := 0; e < 4; e++ {
		l.Access(ps.EntityKey(kg.EntityID(e)))
	}
	if l.Evictions() != 2 {
		t.Errorf("LRU evictions = %d, want 2", l.Evictions())
	}
	u := NewLFU(1)
	u.Access(ps.EntityKey(1))
	u.Access(ps.EntityKey(1))
	u.Access(ps.EntityKey(2)) // colder than resident: not admitted
	if u.Evictions() != 0 {
		t.Errorf("LFU evicted on a rejected admission: %d", u.Evictions())
	}
	u.Access(ps.EntityKey(2)) // now as hot as the resident: displaces key 1
	if u.Evictions() != 1 {
		t.Errorf("LFU evictions = %d, want 1", u.Evictions())
	}
}

// TestRowVersions pins the synchronization-generation counter the delta
// wire codec reasons about: absent rows report 0, Build starts at 1, every
// fresh install (Offer, Refresh) advances it, and rebuilding an existing
// key continues its generation instead of restarting.
func TestRowVersions(t *testing.T) {
	g := smallGraph(t)
	_, cl := fixture(t, g)
	hc, err := New(cl, &opt.SGD{LR: 0.1}, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := ps.EntityKey(0)
	if v := hc.Version(k); v != 0 {
		t.Errorf("uncached version = %d, want 0", v)
	}
	keys := []ps.Key{k, ps.RelationKey(0)}
	if err := hc.Build(keys, 0); err != nil {
		t.Fatal(err)
	}
	if v := hc.Version(k); v != 1 {
		t.Errorf("version after Build = %d, want 1", v)
	}
	hc.Offer(k, make([]float32, 4), 1)
	if v := hc.Version(k); v != 2 {
		t.Errorf("version after Offer = %d, want 2", v)
	}
	// Offers for keys outside the table do not create versions.
	hc.Offer(ps.EntityKey(50), make([]float32, 4), 1)
	if v := hc.Version(ps.EntityKey(50)); v != 0 {
		t.Errorf("foreign key gained version %d", v)
	}
	if err := hc.Refresh(2); err != nil {
		t.Fatal(err)
	}
	if v := hc.Version(k); v != 3 {
		t.Errorf("version after Refresh = %d, want 3", v)
	}
	// A rebuild keeps the generation moving for surviving keys and drops
	// it for evicted ones.
	if err := hc.Build([]ps.Key{k}, 3); err != nil {
		t.Fatal(err)
	}
	if v := hc.Version(k); v != 4 {
		t.Errorf("version after rebuild = %d, want 4", v)
	}
	if v := hc.Version(ps.RelationKey(0)); v != 0 {
		t.Errorf("evicted key kept version %d", v)
	}
}
