package cache

import (
	"fmt"
	"sort"

	"hetkg/internal/metrics"
	"hetkg/internal/opt"
	"hetkg/internal/ps"
	"hetkg/internal/span"
)

// HotCache is one worker's hot-embedding table: a fixed identifier set with
// locally held values, each stamped with the iteration it was last
// synchronized against the parameter server.
//
// Staleness is bounded PER ROW: a cached row older than the bound P counts
// as a miss on Get — the worker re-pulls it and re-installs the fresh value
// via Offer. This realizes the partial-stale guarantee of §IV-C (every
// embedding used for a gradient is at most P iterations stale) while paying
// refresh traffic only for rows that are actually used, which is what makes
// the cache a net win on large graphs — and it is the semantics under which
// the paper's Fig. 8(b) observation ("hit ratio improves as staleness
// increases") holds: a tighter bound turns more reads into refresh misses.
//
// Gradients are applied to the local copy on Update *and* pushed to the PS
// by the trainer, so the PS remains the source of truth; staleness only
// reflects missed updates from other workers.
//
// HotCache is confined to its owning worker goroutine; only the hit-ratio
// counters are read concurrently.
type HotCache struct {
	client *ps.Client
	optim  opt.Optimizer
	rows   map[ps.Key]*hotRow
	hits   metrics.Ratio
	// staleBound is P; 0 means unbounded (cached rows never expire).
	staleBound int
	// refreshed counts rows pulled by Build/Refresh (table construction
	// traffic; per-row refresh misses flow through the normal pull path).
	refreshed metrics.Counter

	obs    *cacheObs
	tracer *span.Tracer
	sc     span.Context
}

// cacheObs holds a cache's registry-backed series (see Instrument).
type cacheObs struct {
	hits      *metrics.Counter
	misses    *metrics.Counter
	staleness *metrics.Histogram
	evicted   *metrics.Counter
	refreshed *metrics.Counter
}

// Instrument publishes this cache's behaviour into reg: hit/miss counts
// (cache.{hits,misses}), the staleness each hit was served at — iterations
// since the row last synchronized with the parameter server — as the
// cache.staleness histogram, rows dropped when Build replaces the identifier
// table (cache.evicted_rows), and rows pulled by Build/Refresh
// (cache.refresh_rows). Caches wired to the same registry aggregate. Call
// before the cache is used.
func (h *HotCache) Instrument(reg *metrics.Registry) {
	h.obs = &cacheObs{
		hits:      reg.Counter(metrics.MCacheHits),
		misses:    reg.Counter(metrics.MCacheMisses),
		staleness: reg.Histogram(metrics.MCacheStaleness),
		evicted:   reg.Counter(metrics.MCacheEvictedRows),
		refreshed: reg.Counter(metrics.MCacheRefreshRows),
	}
}

// Trace attaches the owning worker's span tracer. Build and Refresh then
// record cache.refresh spans under the current span context, with their bulk
// pulls nested beneath. Safe to leave unset.
func (h *HotCache) Trace(t *span.Tracer) { h.tracer = t }

// SetSpanContext sets the context refresh spans parent under — the sampled
// batch's root span. Pass the zero Context to stop recording.
func (h *HotCache) SetSpanContext(sc span.Context) { h.sc = sc }

// refreshSpan opens a cache.refresh span and re-parents the client's RPC
// spans beneath it for the duration of the bulk pull, so refresh traffic
// attributes to the refresh, not directly to the batch. done() ends the span
// and restores the client's context.
func (h *HotCache) refreshSpan() (sp span.Active, done func(rows int64)) {
	sp = h.tracer.StartChild(h.sc, span.NCacheRefresh)
	if !sp.Valid() {
		return sp, func(int64) {}
	}
	prev := h.client.SpanContext()
	h.client.SetSpanContext(sp.Context())
	return sp, func(rows int64) {
		h.client.SetSpanContext(prev)
		sp.EndAttrs(span.Attrs{Rows: rows, Shard: span.NoShard})
	}
}

type hotRow struct {
	vals     []float32
	lastSync int
	// version counts synchronizations with the parameter server (Build,
	// Refresh, Offer), starting at 1. It is the cache-level view of the
	// replica generation the wire codec's delta protocol keys on: a row's
	// version advances exactly when a fresh server-side value lands, so
	// "the version the worker holds" is well defined for the pull path.
	version uint32
}

// New builds an empty cache for a worker. localOpt is the optimizer applied
// to cached copies on Update (the paper's workers mirror the server-side
// AdaGrad); staleBound is P (0 = unbounded staleness).
func New(client *ps.Client, localOpt opt.Optimizer, staleBound int) (*HotCache, error) {
	if client == nil {
		return nil, fmt.Errorf("cache: nil ps client")
	}
	if localOpt == nil {
		return nil, fmt.Errorf("cache: nil local optimizer")
	}
	if staleBound < 0 {
		return nil, fmt.Errorf("cache: negative staleBound %d", staleBound)
	}
	return &HotCache{
		client:     client,
		optim:      localOpt,
		rows:       make(map[ps.Key]*hotRow),
		staleBound: staleBound,
	}, nil
}

// Build replaces the identifier table with keys and pulls their current
// values from the parameter server (the tail of Algorithm 2), stamping them
// with the given iteration. The local optimizer state survives rebuilds —
// it is keyed by embedding id, and a DPS worker keeps pushing gradients for
// the same hot rows across table generations.
func (h *HotCache) Build(keys []ps.Key, iteration int) error {
	fresh := make(map[ps.Key][]float32, len(keys))
	if len(keys) > 0 {
		sorted := make([]ps.Key, len(keys))
		copy(sorted, keys)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		_, done := h.refreshSpan()
		err := h.client.Pull(sorted, fresh)
		done(int64(len(sorted)))
		if err != nil {
			return fmt.Errorf("cache: building hot-embedding table: %w", err)
		}
		h.refreshed.Add(int64(len(sorted)))
		if o := h.obs; o != nil {
			o.refreshed.Add(int64(len(sorted)))
		}
	}
	rows := make(map[ps.Key]*hotRow, len(fresh))
	for k, v := range fresh {
		ver := uint32(1)
		if old := h.rows[k]; old != nil {
			ver = old.version + 1
		}
		rows[k] = &hotRow{vals: v, lastSync: iteration, version: ver}
	}
	if o := h.obs; o != nil {
		for k := range h.rows {
			if _, kept := rows[k]; !kept {
				o.evicted.Inc()
			}
		}
	}
	h.rows = rows
	return nil
}

// Len returns the number of cached rows.
func (h *HotCache) Len() int { return len(h.rows) }

// Contains reports whether k is in the identifier table (fresh or stale).
func (h *HotCache) Contains(k ps.Key) bool {
	_, ok := h.rows[k]
	return ok
}

// Get returns the cached row for k if it is present and within the
// staleness bound at the given iteration, recording a hit or miss. A stale
// row is a miss: the caller pulls the fresh value and hands it back through
// Offer. The returned slice is the live local copy.
func (h *HotCache) Get(k ps.Key, iteration int) ([]float32, bool) {
	row, ok := h.rows[k]
	if !ok || h.stale(row, iteration) {
		h.hits.Miss()
		if o := h.obs; o != nil {
			o.misses.Inc()
		}
		return nil, false
	}
	h.hits.Hit()
	if o := h.obs; o != nil {
		o.hits.Inc()
		o.staleness.ObserveInt(int64(iteration - row.lastSync))
	}
	return row.vals, true
}

func (h *HotCache) stale(row *hotRow, iteration int) bool {
	return h.staleBound > 0 && iteration-row.lastSync >= h.staleBound
}

// Offer installs a freshly pulled value for k if k belongs to the
// identifier table, resetting its staleness clock. Values for keys outside
// the table are ignored (they are not hot). The cache adopts the slice.
func (h *HotCache) Offer(k ps.Key, vals []float32, iteration int) {
	row, ok := h.rows[k]
	if !ok {
		return
	}
	row.vals = vals
	row.lastSync = iteration
	row.version++
}

// Version returns the row's synchronization generation: how many times a
// fresh parameter-server value has been installed for k (0 when k is not
// cached). Diagnostics and the delta-codec tests use it to reason about
// which generation a worker replica holds.
func (h *HotCache) Version(k ps.Key) uint32 {
	row, ok := h.rows[k]
	if !ok {
		return 0
	}
	return row.version
}

// Peek returns the cached row regardless of freshness, without touching the
// hit-ratio counters (diagnostics and tests).
func (h *HotCache) Peek(k ps.Key) ([]float32, bool) {
	row, ok := h.rows[k]
	if !ok {
		return nil, false
	}
	return row.vals, true
}

// ServeStale returns the cached row for k if its age at the given iteration
// is within maxAge (0 = any age), without touching the hit-ratio counters —
// the Get that preceded it already recorded the miss. This is the degraded
// mode's read path while k's shard link is down: the row may be staler than
// the cache's own bound P, but never staler than maxAge, which keeps the
// staleness guarantee explicit (a used row is at most max(P, maxAge) stale).
func (h *HotCache) ServeStale(k ps.Key, iteration, maxAge int) ([]float32, bool) {
	row, ok := h.rows[k]
	if !ok {
		return nil, false
	}
	if maxAge > 0 && iteration-row.lastSync >= maxAge {
		return nil, false
	}
	return row.vals, true
}

// Update applies a gradient to the cached copy of k (workflow step 4:
// "update the corresponding gradients to the involved hot-embeddings").
// Unknown keys are ignored — the gradient still reaches the PS through the
// trainer's push.
func (h *HotCache) Update(k ps.Key, grad []float32) {
	row, ok := h.rows[k]
	if !ok {
		return
	}
	h.optim.Apply(uint64(k), row.vals, grad)
}

// Refresh re-pulls every cached key's latest value from the parameter
// server and stamps it with the given iteration — the bulk variant of the
// synchronization step, used after barriers and by diagnostics.
func (h *HotCache) Refresh(iteration int) error {
	if len(h.rows) == 0 {
		return nil
	}
	keys := make([]ps.Key, 0, len(h.rows))
	for k := range h.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fresh := make(map[ps.Key][]float32, len(keys))
	_, done := h.refreshSpan()
	err := h.client.Pull(keys, fresh)
	done(int64(len(keys)))
	if err != nil {
		return fmt.Errorf("cache: refreshing hot-embedding table: %w", err)
	}
	h.refreshed.Add(int64(len(keys)))
	if o := h.obs; o != nil {
		o.refreshed.Add(int64(len(keys)))
	}
	for k, v := range fresh {
		ver := uint32(1)
		if old := h.rows[k]; old != nil {
			ver = old.version + 1
		}
		h.rows[k] = &hotRow{vals: v, lastSync: iteration, version: ver}
	}
	return nil
}

// RefreshedRows returns the total rows pulled by Build and Refresh over the
// cache's lifetime (table-construction traffic; per-row staleness refreshes
// travel through the worker's ordinary pulls instead).
func (h *HotCache) RefreshedRows() int64 { return h.refreshed.Value() }

// HitRatio returns the cache hit ratio since the last ResetStats. Under
// per-row staleness this is also the local-service ratio: every miss —
// cold or stale — costs one parameter-server pull.
func (h *HotCache) HitRatio() float64 { return h.hits.Value() }

// Accesses returns the total number of Get calls since the last ResetStats.
func (h *HotCache) Accesses() int64 { return h.hits.Total.Value() }

// ResetStats clears the hit-ratio counters (values stay cached).
func (h *HotCache) ResetStats() { h.hits.Reset() }
