package cache

import "hetkg/internal/ps"

// Belady computes the hit ratio of Belady's MIN algorithm — the provably
// optimal replacement policy, which evicts the resident key whose next use
// lies farthest in the future. It needs the whole access stream up front,
// so it is an *analysis bound*, not a deployable policy: the gap between a
// practical policy and Belady is the headroom HET-KG's prefetch lookahead
// exploits (HET-KG can approach the bound because, unlike LRU/LFU, it
// really does see the future access stream it prefetched).
func Belady(capacity int, stream []ps.Key) float64 {
	if len(stream) == 0 || capacity <= 0 {
		return 0
	}
	// nextUse[i] = index of the next occurrence of stream[i] after i, or
	// len(stream) if none.
	next := make([]int, len(stream))
	last := make(map[ps.Key]int, 1024)
	for i := len(stream) - 1; i >= 0; i-- {
		if j, ok := last[stream[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(stream)
		}
		last[stream[i]] = i
	}
	resident := make(map[ps.Key]int, capacity) // key → its next use index
	hits := 0
	for i, k := range stream {
		if _, ok := resident[k]; ok {
			hits++
			resident[k] = next[i]
			continue
		}
		if len(resident) < capacity {
			resident[k] = next[i]
			continue
		}
		// Evict the resident with the farthest next use — unless the
		// newcomer's own next use is even farther, in which case it is
		// not worth admitting (the standard MIN bypass).
		var victim ps.Key
		farthest := -1
		for rk, nu := range resident {
			if nu > farthest {
				victim, farthest = rk, nu
			}
		}
		if next[i] < farthest {
			delete(resident, victim)
			resident[k] = next[i]
		}
	}
	return float64(hits) / float64(len(stream))
}
