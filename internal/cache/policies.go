package cache

import (
	"container/list"
	"strings"

	"hetkg/internal/metrics"
	"hetkg/internal/ps"
)

// Policy is a classical cache replacement policy simulated over an access
// stream, used to reproduce Table VI's comparison against HET-KG's
// prefetch-and-filter selection. Policies track only identifiers; no
// embedding values are involved in the hit-ratio study.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Access records a reference to k and reports whether it hit.
	Access(k ps.Key) bool
	// Len returns the current resident-set size.
	Len() int
}

// NewPolicy constructs a policy by name ("fifo", "lru", "lfu") with the
// given capacity.
func NewPolicy(name string, capacity int) (Policy, bool) {
	switch name {
	case "fifo":
		return NewFIFO(capacity), true
	case "lru":
		return NewLRU(capacity), true
	case "lfu", "importance":
		return NewLFU(capacity), true
	default:
		return nil, false
	}
}

// EvictionCounter is implemented by policies that count how many residents
// they have displaced; all policies in this package do.
type EvictionCounter interface {
	// Evictions returns the number of keys evicted so far.
	Evictions() int64
}

// FIFO evicts the oldest-admitted key.
type FIFO struct {
	capacity  int
	queue     *list.List // of ps.Key, front = oldest
	resident  map[ps.Key]struct{}
	evictions int64
}

// NewFIFO returns a FIFO cache of the given capacity.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: capacity, queue: list.New(), resident: make(map[ps.Key]struct{})}
}

// Name implements Policy.
func (*FIFO) Name() string { return "FIFO" }

// Len implements Policy.
func (f *FIFO) Len() int { return len(f.resident) }

// Evictions implements EvictionCounter.
func (f *FIFO) Evictions() int64 { return f.evictions }

// Access implements Policy.
func (f *FIFO) Access(k ps.Key) bool {
	if _, ok := f.resident[k]; ok {
		return true
	}
	if f.capacity == 0 {
		return false
	}
	if len(f.resident) >= f.capacity {
		oldest := f.queue.Remove(f.queue.Front()).(ps.Key)
		delete(f.resident, oldest)
		f.evictions++
	}
	f.resident[k] = struct{}{}
	f.queue.PushBack(k)
	return false
}

// LRU evicts the least-recently-used key.
type LRU struct {
	capacity  int
	order     *list.List // of ps.Key, front = most recent
	elems     map[ps.Key]*list.Element
	evictions int64
}

// NewLRU returns an LRU cache of the given capacity.
func NewLRU(capacity int) *LRU {
	return &LRU{capacity: capacity, order: list.New(), elems: make(map[ps.Key]*list.Element)}
}

// Name implements Policy.
func (*LRU) Name() string { return "LRU" }

// Len implements Policy.
func (l *LRU) Len() int { return len(l.elems) }

// Evictions implements EvictionCounter.
func (l *LRU) Evictions() int64 { return l.evictions }

// Access implements Policy.
func (l *LRU) Access(k ps.Key) bool {
	if el, ok := l.elems[k]; ok {
		l.order.MoveToFront(el)
		return true
	}
	if l.capacity == 0 {
		return false
	}
	if len(l.elems) >= l.capacity {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.elems, back.Value.(ps.Key))
		l.evictions++
	}
	l.elems[k] = l.order.PushFront(k)
	return false
}

// LFU evicts the least-frequently-used key (ties broken by recency). It is
// the "importance cache" baseline of Table VI: admission by observed
// frequency, but without HET-KG's lookahead.
type LFU struct {
	capacity  int
	freq      map[ps.Key]int
	resident  map[ps.Key]struct{}
	clock     int64
	lastUse   map[ps.Key]int64
	evictions int64
}

// NewLFU returns an LFU cache of the given capacity.
func NewLFU(capacity int) *LFU {
	return &LFU{
		capacity: capacity,
		freq:     make(map[ps.Key]int),
		resident: make(map[ps.Key]struct{}),
		lastUse:  make(map[ps.Key]int64),
	}
}

// Name implements Policy.
func (*LFU) Name() string { return "LFU" }

// Len implements Policy.
func (l *LFU) Len() int { return len(l.resident) }

// Evictions implements EvictionCounter.
func (l *LFU) Evictions() int64 { return l.evictions }

// Access implements Policy.
func (l *LFU) Access(k ps.Key) bool {
	l.clock++
	l.freq[k]++
	l.lastUse[k] = l.clock
	if _, ok := l.resident[k]; ok {
		return true
	}
	if l.capacity == 0 {
		return false
	}
	if len(l.resident) < l.capacity {
		l.resident[k] = struct{}{}
		return false
	}
	// Evict the coldest resident if the newcomer is at least as hot;
	// otherwise the newcomer is not admitted (frequency-based admission).
	var victim ps.Key
	victimFreq := int(^uint(0) >> 1)
	var victimUse int64
	for rk := range l.resident {
		f := l.freq[rk]
		if f < victimFreq || (f == victimFreq && l.lastUse[rk] < victimUse) {
			victim, victimFreq, victimUse = rk, f, l.lastUse[rk]
		}
	}
	if l.freq[k] >= victimFreq {
		delete(l.resident, victim)
		l.resident[k] = struct{}{}
		l.evictions++
	}
	return false
}

// ReplayObserved runs an access stream through a policy like ReplayHitRatio
// while publishing per-policy series into reg:
// cache.policy.<name>.{hits,misses,evictions} (name lower-cased, evictions
// only for policies implementing EvictionCounter). Used by the Table VI
// hit-ratio study to expose baseline-policy behaviour on a run's timeline.
func ReplayObserved(p Policy, stream []ps.Key, reg *metrics.Registry) float64 {
	prefix := metrics.MCachePolicyPrefix + strings.ToLower(p.Name()) + "."
	hits := reg.Counter(prefix + "hits")
	misses := reg.Counter(prefix + "misses")
	n := 0
	for _, k := range stream {
		if p.Access(k) {
			hits.Inc()
			n++
		} else {
			misses.Inc()
		}
	}
	if ec, ok := p.(EvictionCounter); ok {
		ev := reg.Counter(prefix + "evictions")
		ev.Add(ec.Evictions() - ev.Value())
	}
	if len(stream) == 0 {
		return 0
	}
	return float64(n) / float64(len(stream))
}

// ReplayHitRatio runs an access stream through a policy and returns the
// hit ratio.
func ReplayHitRatio(p Policy, stream []ps.Key) float64 {
	if len(stream) == 0 {
		return 0
	}
	hits := 0
	for _, k := range stream {
		if p.Access(k) {
			hits++
		}
	}
	return float64(hits) / float64(len(stream))
}

// StaticHitRatio measures the hit ratio of a fixed identifier set over an
// access stream — how HET-KG's prefetch-selected table is scored in
// Table VI.
func StaticHitRatio(table map[ps.Key]struct{}, stream []ps.Key) float64 {
	if len(stream) == 0 {
		return 0
	}
	hits := 0
	for _, k := range stream {
		if _, ok := table[k]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(stream))
}
