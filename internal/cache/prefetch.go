// Package cache implements HET-KG's hot-embedding cache (§IV of the paper):
// the prefetching pass (Algorithm 1) that looks ahead at upcoming
// mini-batches, the filtering pass (Algorithm 2) that selects the top-k
// hottest entity and relation embeddings under a node-heterogeneity quota,
// the CPS/DPS construction strategies, the bounded-staleness synchronization
// of cached values with the parameter server (Algorithms 3/4), and the
// simple caching baselines (FIFO, LRU, LFU) of Table VI.
package cache

import (
	"fmt"
	"sort"

	"hetkg/internal/kg"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
)

// Prefetched is the output of Algorithm 1: the materialized sample list L_s
// for the next D iterations plus the de-duplicated access census over the
// entities and relations they touch (L_er with multiplicities).
type Prefetched struct {
	// Batches are the exact mini-batches the trainer will replay, so
	// prefetching never desynchronizes the cache contents from the data.
	Batches []*sampler.Batch
	// EntityFreq and RelationFreq count accesses per id across Batches.
	EntityFreq   map[kg.EntityID]int
	RelationFreq map[kg.RelationID]int
}

// Prefetch runs the sampler d iterations ahead (Algorithm 1). The sampler's
// state advances, so the caller must train on the returned Batches rather
// than drawing fresh ones.
func Prefetch(s *sampler.Sampler, d int) *Prefetched {
	p := &Prefetched{
		Batches:      make([]*sampler.Batch, 0, d),
		EntityFreq:   make(map[kg.EntityID]int),
		RelationFreq: make(map[kg.RelationID]int),
	}
	for j := 0; j < d; j++ {
		b := s.Next()
		p.Batches = append(p.Batches, b)
		for i, pos := range b.Pos {
			p.EntityFreq[pos.Head]++
			p.EntityFreq[pos.Tail]++
			p.RelationFreq[pos.Relation]++
			for range b.Neg[i].Entities {
				// Negative accesses hit the shared chunk entities; count
				// them per reference (each use is one embedding read).
			}
			for _, e := range b.Neg[i].Entities {
				p.EntityFreq[e]++
			}
		}
	}
	return p
}

// FilterConfig parameterizes Algorithm 2.
type FilterConfig struct {
	// Capacity is k, the number of rows the hot-embedding table holds.
	Capacity int
	// EntityFraction fixes the share of slots reserved for entities when
	// Heterogeneity is on (the paper's default is 0.25: 25% entities, 75%
	// relations, §VI-D.3).
	EntityFraction float64
	// Heterogeneity enables the node-heterogeneity quota. When off
	// (HET-KG-N in Table VII) entities and relations compete in a single
	// frequency-ordered pool.
	Heterogeneity bool
}

// Validate reports whether the configuration is usable.
func (c FilterConfig) Validate() error {
	if c.Capacity < 0 {
		return fmt.Errorf("cache: negative capacity %d", c.Capacity)
	}
	if c.EntityFraction < 0 || c.EntityFraction > 1 {
		return fmt.Errorf("cache: EntityFraction %v outside [0,1]", c.EntityFraction)
	}
	return nil
}

// rankedKey pairs a key with its observed frequency for sorting.
type rankedKey struct {
	key  ps.Key
	freq int
}

// Filter implements Algorithm 2: select the top-Capacity hottest ids from
// the prefetch census, honoring the heterogeneity quota. Ties break on key
// order for determinism. The result is the hot-embedding identifier table.
func Filter(p *Prefetched, cfg FilterConfig) ([]ps.Key, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ents := make([]rankedKey, 0, len(p.EntityFreq))
	for e, f := range p.EntityFreq {
		ents = append(ents, rankedKey{ps.EntityKey(e), f})
	}
	rels := make([]rankedKey, 0, len(p.RelationFreq))
	for r, f := range p.RelationFreq {
		rels = append(rels, rankedKey{ps.RelationKey(r), f})
	}
	byHotness := func(s []rankedKey) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].freq != s[j].freq {
				return s[i].freq > s[j].freq
			}
			return s[i].key < s[j].key
		})
	}
	byHotness(ents)
	byHotness(rels)

	if !cfg.Heterogeneity {
		all := append(ents, rels...)
		byHotness(all)
		return takeKeys(all, cfg.Capacity), nil
	}
	entSlots := int(float64(cfg.Capacity) * cfg.EntityFraction)
	relSlots := cfg.Capacity - entSlots
	// Fill shortfalls from the other pool so capacity is never wasted on a
	// dataset with few relations (WN18 has 18).
	if len(rels) < relSlots {
		entSlots += relSlots - len(rels)
		relSlots = len(rels)
	}
	if len(ents) < entSlots {
		relSlots += entSlots - len(ents)
		entSlots = len(ents)
		if relSlots > len(rels) {
			relSlots = len(rels)
		}
	}
	out := takeKeys(ents, entSlots)
	out = append(out, takeKeys(rels, relSlots)...)
	return out, nil
}

func takeKeys(s []rankedKey, n int) []ps.Key {
	if n > len(s) {
		n = len(s)
	}
	out := make([]ps.Key, n)
	for i := 0; i < n; i++ {
		out[i] = s[i].key
	}
	return out
}

// Strategy selects how the hot-embedding table is constructed over the
// course of training (§IV-B).
type Strategy int

const (
	// CPS (constant partial stale) fixes the table once before training
	// from a whole-subgraph census.
	CPS Strategy = iota
	// DPS (dynamic partial stale) re-prefetches D iterations ahead and
	// rebuilds the table every D iterations.
	DPS
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == DPS {
		return "DPS"
	}
	return "CPS"
}
