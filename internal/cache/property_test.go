package cache

import (
	"testing"
	"testing/quick"

	"hetkg/internal/kg"
	"hetkg/internal/ps"
)

// Filter invariants on arbitrary censuses: the selection never exceeds
// capacity, contains no duplicates, and only contains ids present in the
// census.
func TestFilterInvariants(t *testing.T) {
	f := func(entRaw, relRaw []uint8, capRaw uint8, fracRaw uint8, hetero bool) bool {
		p := &Prefetched{
			EntityFreq:   map[kg.EntityID]int{},
			RelationFreq: map[kg.RelationID]int{},
		}
		for i, v := range entRaw {
			p.EntityFreq[kg.EntityID(i%50)] += int(v)
		}
		for i, v := range relRaw {
			p.RelationFreq[kg.RelationID(i%10)] += int(v)
		}
		cfg := FilterConfig{
			Capacity:       int(capRaw % 64),
			EntityFraction: float64(fracRaw%101) / 100,
			Heterogeneity:  hetero,
		}
		keys, err := Filter(p, cfg)
		if err != nil {
			return false
		}
		if len(keys) > cfg.Capacity {
			return false
		}
		seen := map[ps.Key]bool{}
		for _, k := range keys {
			if seen[k] {
				return false
			}
			seen[k] = true
			if k.IsRelation() {
				if _, ok := p.RelationFreq[k.Relation()]; !ok {
					return false
				}
			} else {
				if _, ok := p.EntityFreq[k.Entity()]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Online policies never hold more than capacity keys, and replay hit
// ratios stay in [0, 1].
func TestPolicyInvariants(t *testing.T) {
	f := func(stream []uint8, capRaw uint8) bool {
		capacity := int(capRaw % 12)
		keys := make([]ps.Key, len(stream))
		for i, v := range stream {
			keys[i] = ps.EntityKey(kg.EntityID(v % 30))
		}
		for _, name := range []string{"fifo", "lru", "lfu"} {
			p, _ := NewPolicy(name, capacity)
			ratio := ReplayHitRatio(p, keys)
			if ratio < 0 || ratio > 1 {
				return false
			}
			if p.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// A fixed table selected with full knowledge of the stream's frequencies
// always beats (or ties) a uniformly random table of the same size.
func TestHotSelectionBeatsRandomSelection(t *testing.T) {
	f := func(streamRaw []uint8, capRaw uint8) bool {
		if len(streamRaw) < 20 {
			return true
		}
		capacity := 1 + int(capRaw%10)
		stream := make([]ps.Key, len(streamRaw))
		freq := map[ps.Key]int{}
		for i, v := range streamRaw {
			k := ps.EntityKey(kg.EntityID(v % 25))
			stream[i] = k
			freq[k]++
		}
		// Top-capacity by frequency.
		hot := map[ps.Key]struct{}{}
		for len(hot) < capacity {
			var best ps.Key
			bestF := -1
			for k, c := range freq {
				if _, used := hot[k]; used {
					continue
				}
				if c > bestF || (c == bestF && k < best) {
					best, bestF = k, c
				}
			}
			if bestF < 0 {
				break
			}
			hot[best] = struct{}{}
		}
		// "Random" table: first-capacity distinct keys of the reversed stream.
		rnd := map[ps.Key]struct{}{}
		for i := len(stream) - 1; i >= 0 && len(rnd) < capacity; i-- {
			rnd[stream[i]] = struct{}{}
		}
		return StaticHitRatio(hot, stream) >= StaticHitRatio(rnd, stream)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
