//go:build !race

package serve

// raceEnabled skips the allocation-count assertions under the race
// detector, which intentionally drops sync.Pool items to surface races.
const raceEnabled = false
