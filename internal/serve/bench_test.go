package serve

import (
	"math/rand"
	"testing"

	"hetkg/internal/ckpt"
	"hetkg/internal/knn"
	"hetkg/internal/vec"
)

// benchCheckpoint builds a synthetic checkpoint large enough that the sweep
// dominates (no training needed to benchmark the read path).
func benchCheckpoint(ents, dim int) *ckpt.Checkpoint {
	rng := rand.New(rand.NewSource(1))
	e := vec.NewMatrix(ents, dim)
	r := vec.NewMatrix(8, dim)
	e.InitKGE(rng)
	r.InitKGE(rng)
	return &ckpt.Checkpoint{
		ModelName: "transe",
		Dim:       dim,
		Dataset:   "synthetic",
		Entities:  e,
		Relations: r,
	}
}

// benchServer configures the hot path the way the allocation criterion is
// stated: rebuilds amortized out (manual), tracing off.
func benchServer(tb testing.TB, ents, dim, degree int) *Server {
	tb.Helper()
	s, err := New(Config{
		Checkpoint:   benchCheckpoint(ents, dim),
		RebuildEvery: -1,
		Parallelism:  degree,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

// TestPredictZeroAlloc pins the acceptance criterion: after warmup, a
// prediction allocates nothing — pooled jobs, persistent sweep workers,
// reusable top-k heaps, and a caller-owned destination slice cover the
// whole path.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	s := benchServer(t, 2000, 16, 4)
	dst := make([]knn.Result, 0, 10)
	var err error
	for i := 0; i < 10; i++ { // warm pools and lazily-grown buffers
		if dst, err = s.PredictInto(dst, i, 0, true, 10); err != nil {
			t.Fatal(err)
		}
	}
	e := 0
	avg := testing.AllocsPerRun(100, func() {
		dst, _ = s.PredictInto(dst, e, 0, true, 10)
		e = (e + 1) % 100
	})
	if avg != 0 {
		t.Errorf("PredictInto allocates %.2f objects per call, want 0", avg)
	}
}

// TestScoreZeroAlloc pins the same property for the scoring path.
func TestScoreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	s := benchServer(t, 100, 16, 1)
	if _, err := s.ScoreTriple(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		s.ScoreTriple(1, 0, 2)
	})
	if avg != 0 {
		t.Errorf("ScoreTriple allocates %.2f objects per call, want 0", avg)
	}
}

// TestNeighborsZeroAlloc pins it for the similarity path.
func TestNeighborsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	s := benchServer(t, 2000, 16, 1)
	dst := make([]knn.Result, 0, 10)
	var err error
	if dst, err = s.NeighborsInto(dst, 0, 10); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		dst, _ = s.NeighborsInto(dst, 5, 10)
	})
	if avg != 0 {
		t.Errorf("NeighborsInto allocates %.2f objects per call, want 0", avg)
	}
}

// BenchmarkPredict measures the single-caller prediction sweep
// (ReportAllocs documents the zero-allocation hot path).
func BenchmarkPredict(b *testing.B) {
	s := benchServer(b, 50000, 64, 0)
	dst := make([]knn.Result, 0, 10)
	var err error
	if dst, err = s.PredictInto(dst, 0, 0, true, 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = s.PredictInto(dst, i%1000, 0, true, 10)
	}
}

// BenchmarkPredictConcurrent measures coalesced throughput: parallel
// callers share candidate sweeps through the batcher.
func BenchmarkPredictConcurrent(b *testing.B) {
	s := benchServer(b, 50000, 64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]knn.Result, 0, 10)
		i := 0
		for pb.Next() {
			dst, _ = s.PredictInto(dst, i%1000, 0, true, 10)
			i++
		}
	})
	b.StopTimer()
	reqs := s.reg.Counter("serve.requests").Value()
	batches := s.reg.Counter("serve.batches").Value()
	if batches > 0 {
		b.ReportMetric(float64(reqs)/float64(batches), "reqs/sweep")
	}
}

// BenchmarkScoreTriple measures the cached scoring path.
func BenchmarkScoreTriple(b *testing.B) {
	s := benchServer(b, 50000, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreTriple(i%1000, 0, (i+1)%1000)
	}
}

// BenchmarkHotTier reports the hit ratio a 5% budget achieves under the two
// workload shapes — the serving-side restatement of the paper's Fig. 7
// motivation: skew is what makes a small hot tier worth having.
func BenchmarkHotTier(b *testing.B) {
	const n, dim = 100000, 64
	run := func(b *testing.B, next func() int) {
		e, r := vec.NewMatrix(n, dim), vec.NewMatrix(4, dim)
		h, err := NewHotTier(e, r, n/20, 0.9, DefaultRebuildEvery)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2*DefaultRebuildEvery; i++ {
			h.Entity(next())
		}
		h.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Entity(next())
		}
		b.ReportMetric(h.HitRatio(), "hit_ratio")
	}
	b.Run("zipf", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		z := rand.NewZipf(rng, 1.1, 1, n-1)
		run(b, func() int { return int(z.Uint64()) })
	})
	b.Run("uniform", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		run(b, func() int { return rng.Intn(n) })
	})
}
