package serve

import (
	"sync"

	"hetkg/internal/kg"
	"hetkg/internal/knn"
	"hetkg/internal/metrics"
	"hetkg/internal/model"
	"hetkg/internal/par"
	"hetkg/internal/span"
	"hetkg/internal/vec"
)

// DefaultMaxBatch is the default cap on predictions coalesced into one
// candidate sweep.
const DefaultMaxBatch = 64

// DefaultMaxK is the default cap on a prediction's k.
const DefaultMaxK = 128

// job is one in-flight prediction. Jobs are pooled: done is a reusable
// buffered channel and out a reusable result buffer, so a request borrows
// and returns a job without allocating.
type job struct {
	anchorRow []float32 // the known entity's embedding (head or tail)
	relRow    []float32
	tailMode  bool // true: rank tails score(anchor, r, c); false: rank heads score(c, r, anchor)
	k         int
	sc        span.Context
	out       []knn.Result
	done      chan struct{}
}

// batcher coalesces concurrent predictions into shared candidate sweeps —
// the group-commit pattern: while one sweep scans the entity table, newly
// arriving jobs queue, and the next sweep takes them all. Scoring j jobs
// against a candidate row while it is resident in cache amortizes the scan
// that dominates prediction cost, so batching raises throughput without a
// coalescing timer (an idle server runs a lone request immediately).
//
// The sweep fans out over persistent shard workers (fixed contiguous ranges
// from par.Shards; long-lived goroutines signaled by channel, so a sweep
// allocates nothing). Results are deterministic at any parallelism: each
// candidate's score is computed independently, and the total order of TopK
// (score desc, id asc) makes the merged top-k independent of sharding.
type batcher struct {
	model    model.Model
	ents     *vec.Matrix
	maxBatch int
	maxK     int
	jobs     chan *job
	pool     sync.Pool
	workers  []*sweepWorker
	cur      []*job // batch under sweep; written by dispatcher, read by workers (synchronized by start/done channels)
	final    []*TopK
	spans    []span.Active
	tracer   *span.Tracer
	obs      *batchObs
	quit     chan struct{}
	wg       sync.WaitGroup
}

// batchObs holds the batcher's registry-backed series.
type batchObs struct {
	batches *metrics.Counter
	size    *metrics.Histogram
}

// sweepWorker owns one fixed shard of the candidate space and a private
// top-k selector per batch slot.
type sweepWorker struct {
	rng   par.Range
	topks []*TopK
	start chan struct{}
	done  chan struct{}
}

// newBatcher starts the dispatcher and the shard workers. degree ≤ 1 runs
// sweeps inline on the dispatcher goroutine.
func newBatcher(m model.Model, ents *vec.Matrix, maxBatch, maxK, degree int) *batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	if degree > ents.Rows {
		degree = ents.Rows
	}
	if degree < 1 {
		degree = 1
	}
	b := &batcher{
		model:    m,
		ents:     ents,
		maxBatch: maxBatch,
		maxK:     maxK,
		jobs:     make(chan *job, maxBatch),
		final:    make([]*TopK, maxBatch),
		spans:    make([]span.Active, 0, maxBatch),
		quit:     make(chan struct{}),
	}
	b.pool.New = func() any {
		return &job{
			out:  make([]knn.Result, 0, maxK),
			done: make(chan struct{}, 1),
		}
	}
	for i := range b.final {
		b.final[i] = NewTopK(maxK)
	}
	shards := par.Shards(ents.Rows, degree)
	b.workers = make([]*sweepWorker, len(shards))
	for w, rng := range shards {
		sw := &sweepWorker{
			rng:   rng,
			topks: make([]*TopK, maxBatch),
			start: make(chan struct{}),
			done:  make(chan struct{}),
		}
		for i := range sw.topks {
			sw.topks[i] = NewTopK(maxK)
		}
		b.workers[w] = sw
	}
	if len(b.workers) > 1 {
		for _, sw := range b.workers[1:] {
			b.wg.Add(1)
			go b.workerLoop(sw)
		}
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// instrument publishes serve.batches and serve.batch_size into reg.
func (b *batcher) instrument(reg *metrics.Registry) {
	b.obs = &batchObs{
		batches: reg.Counter(metrics.MServeBatches),
		size:    reg.Histogram(metrics.MServeBatchSize),
	}
}

// trace attaches the server's tracer for serve.sweep spans.
func (b *batcher) trace(t *span.Tracer) { b.tracer = t }

// get borrows a pooled job.
func (b *batcher) get() *job { return b.pool.Get().(*job) }

// put returns a job to the pool.
func (b *batcher) put(j *job) {
	j.anchorRow, j.relRow, j.sc = nil, nil, span.Context{}
	j.out = j.out[:0]
	b.pool.Put(j)
}

// submit enqueues a job; the caller waits on j.done.
func (b *batcher) submit(j *job) { b.jobs <- j }

// close stops the dispatcher and workers. Outstanding jobs are not waited
// for; callers stop submitting first.
func (b *batcher) close() {
	close(b.quit)
	b.wg.Wait()
}

func (b *batcher) dispatch() {
	defer b.wg.Done()
	batch := make([]*job, 0, b.maxBatch)
	for {
		select {
		case <-b.quit:
			return
		case j := <-b.jobs:
			batch = append(batch[:0], j)
		drain: // opportunistic coalescing: take whatever queued during the last sweep
			for len(batch) < b.maxBatch {
				select {
				case j2 := <-b.jobs:
					batch = append(batch, j2)
				default:
					break drain
				}
			}
			b.sweep(batch)
			for _, j := range batch {
				j.done <- struct{}{}
			}
		}
	}
}

// workerLoop runs one persistent shard worker.
func (b *batcher) workerLoop(sw *sweepWorker) {
	defer b.wg.Done()
	for {
		select {
		case <-b.quit:
			return
		case <-sw.start:
			sw.scan(b.model, b.ents, b.cur)
			sw.done <- struct{}{}
		}
	}
}

// scan scores the worker's candidate range against every job in the batch.
func (sw *sweepWorker) scan(m model.Model, ents *vec.Matrix, batch []*job) {
	for i, j := range batch {
		sw.topks[i].Reset(j.k)
	}
	for c := sw.rng.Begin; c < sw.rng.End; c++ {
		row := ents.Row(c)
		for i, j := range batch {
			var s float32
			if j.tailMode {
				s = m.Score(j.anchorRow, j.relRow, row)
			} else {
				s = m.Score(row, j.relRow, j.anchorRow)
			}
			sw.topks[i].Offer(kg.EntityID(c), s)
		}
	}
}

// sweep runs one batched candidate sweep and writes each job's sorted
// results into its out buffer.
func (b *batcher) sweep(batch []*job) {
	if o := b.obs; o != nil {
		o.batches.Inc()
		o.size.ObserveInt(int64(len(batch)))
	}
	b.spans = b.spans[:0]
	for _, j := range batch {
		if sp := b.tracer.StartChild(j.sc, span.NServeSweep); sp.Valid() {
			b.spans = append(b.spans, sp)
		}
	}

	b.cur = batch
	if len(b.workers) > 1 {
		for _, sw := range b.workers[1:] {
			sw.start <- struct{}{}
		}
		b.workers[0].scan(b.model, b.ents, batch)
		for _, sw := range b.workers[1:] {
			<-sw.done
		}
	} else {
		b.workers[0].scan(b.model, b.ents, batch)
	}

	// Merge the per-shard partials in shard order; the TopK total order
	// makes the outcome independent of the sharding.
	for i, j := range batch {
		f := b.final[i]
		f.Reset(j.k)
		for _, sw := range b.workers {
			for _, r := range sw.topks[i].Items() {
				f.Offer(r.ID, r.Score)
			}
		}
		j.out = f.Sorted(j.out)
	}

	for _, sp := range b.spans {
		sp.EndAttrs(span.Attrs{Rows: int64(b.ents.Rows), Shard: span.NoShard})
	}
}
