package serve

import (
	"hetkg/internal/kg"
	"hetkg/internal/knn"
)

// TopK selects the k best results under a total order (score descending,
// ties to the lower id) with a bounded min-heap over a reusable backing
// array. The total order makes the selected set — and its sorted output —
// independent of offer order, which is what lets the batcher merge per-shard
// partial top-ks in any sharding and still return deterministic results.
// Sifts are hand rolled (no container/heap interface boxing), so a warmed
// TopK performs no allocation.
type TopK struct {
	k int
	h []knn.Result
}

// NewTopK returns a TopK whose backing array holds capK results without
// growing.
func NewTopK(capK int) *TopK {
	return &TopK{h: make([]knn.Result, 0, capK)}
}

// Reset empties the selector and sets the bound for the next use. A k
// larger than the constructed capacity grows the backing array (allocates).
func (t *TopK) Reset(k int) {
	t.k = k
	t.h = t.h[:0]
}

// worse reports whether a ranks strictly below b.
func worse(a, b knn.Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Offer considers one candidate.
func (t *TopK) Offer(id kg.EntityID, score float32) {
	r := knn.Result{ID: id, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, r)
		// Sift up: the root is the worst of the current top-k.
		i := len(t.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(t.h[i], t.h[p]) {
				break
			}
			t.h[i], t.h[p] = t.h[p], t.h[i]
			i = p
		}
		return
	}
	if t.k == 0 || !worse(t.h[0], r) {
		return
	}
	t.h[0] = r
	t.siftDown(0)
}

func (t *TopK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && worse(t.h[l], t.h[w]) {
			w = l
		}
		if r < n && worse(t.h[r], t.h[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.h[i], t.h[w] = t.h[w], t.h[i]
		i = w
	}
}

// Len returns how many results are currently held.
func (t *TopK) Len() int { return len(t.h) }

// Items returns the held results in heap order — input for merging into
// another TopK. The slice aliases the selector's storage; it is invalidated
// by the next Offer/Reset/Sorted.
func (t *TopK) Items() []knn.Result { return t.h }

// Sorted drains the selector into dst, best first. dst is grown from
// dst[:0]; pass capacity ≥ Len to avoid allocation. The selector is empty
// afterwards (Reset before reuse).
func (t *TopK) Sorted(dst []knn.Result) []knn.Result {
	n := len(t.h)
	if cap(dst) < n {
		dst = make([]knn.Result, n)
	} else {
		dst = dst[:n]
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = t.h[0]
		last := len(t.h) - 1
		t.h[0] = t.h[last]
		t.h = t.h[:last]
		t.siftDown(0)
	}
	return dst
}
