package serve

import (
	"math/rand"
	"sort"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/knn"
	"hetkg/internal/metrics"
	"hetkg/internal/vec"
)

// testMatrices builds recognizable tables: row i of each table is filled
// with the value i (entities) or 1000+i (relations), so a returned slice's
// first element identifies which row — and which copy — it came from.
func testMatrices(ents, rels, dim int) (*vec.Matrix, *vec.Matrix) {
	e := vec.NewMatrix(ents, dim)
	r := vec.NewMatrix(rels, dim)
	for i := 0; i < ents; i++ {
		for d := 0; d < dim; d++ {
			e.Row(i)[d] = float32(i)
		}
	}
	for i := 0; i < rels; i++ {
		for d := 0; d < dim; d++ {
			r.Row(i)[d] = float32(1000 + i)
		}
	}
	return e, r
}

// TestHotTierPromotion checks that hot rows serve from the slab after a
// rebuild with correct values, and cold rows keep serving from the table.
func TestHotTierPromotion(t *testing.T) {
	e, r := testMatrices(100, 10, 4)
	h, err := NewHotTier(e, r, 8, 0.5, -1) // manual rebuilds: 4 ent + 4 rel slots
	if err != nil {
		t.Fatal(err)
	}
	if eb, rb := h.Budgets(); eb != 4 || rb != 4 {
		t.Fatalf("budgets = (%d, %d), want (4, 4)", eb, rb)
	}
	// Skewed touches: entities 1,2,3,4 hot; relations 0,1 hot.
	for i := 0; i < 10; i++ {
		for id := 1; id <= 4; id++ {
			h.Entity(id)
		}
		h.Relation(0)
		h.Relation(1)
	}
	if hr := h.HitRatio(); hr != 0 {
		t.Errorf("hit ratio %v before first rebuild, want 0", hr)
	}
	h.Rebuild()
	if he, hrr := h.HotRows(); he != 4 || hrr != 2 {
		t.Errorf("hot rows = (%d, %d), want (4, 2)", he, hrr)
	}
	h.ResetStats()
	for _, id := range []int{1, 2, 3, 4} {
		row := h.Entity(id)
		if row[0] != float32(id) {
			t.Errorf("hot entity %d row starts with %v", id, row[0])
		}
	}
	if row := h.Entity(50); row[0] != 50 { // cold
		t.Errorf("cold entity row = %v, want 50", row[0])
	}
	if row := h.Relation(1); row[0] != 1001 {
		t.Errorf("hot relation row = %v, want 1001", row[0])
	}
	// 4 hot entity + 1 hot relation hits, 1 cold miss.
	if hr := h.HitRatio(); hr != 5.0/6.0 {
		t.Errorf("hit ratio = %v, want 5/6", hr)
	}
	if h.Rebuilds() != 1 {
		t.Errorf("rebuilds = %d, want 1", h.Rebuilds())
	}
}

// TestHotTierDecay checks counters halve at each rebuild, so stale hotness
// ages out: a row hammered once loses its slot to a steadily-hot row.
func TestHotTierDecay(t *testing.T) {
	e, r := testMatrices(10, 2, 2)
	h, err := NewHotTier(e, r, 2, 0.5, -1) // 1 entity slot
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Entity(3) // burst
	}
	h.Entity(7)
	h.Rebuild()
	if h.Entity(3)[0] != 3 {
		t.Fatal("sanity: row value")
	}
	h.ResetStats()
	h.Entity(3)
	if h.HitRatio() != 1 {
		t.Error("burst row not hot after first rebuild")
	}
	// The burst never recurs; 7 is touched every epoch. After enough
	// halvings (100 → 50 → 25 → ... → 0) the steady row wins the slot.
	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 3; i++ {
			h.Entity(7)
		}
		h.Rebuild()
	}
	h.ResetStats()
	h.Entity(7)
	h.Entity(3)
	if h.HitRatio() != 0.5 {
		t.Errorf("after decay: hit ratio = %v, want 0.5 (7 hot, 3 evicted)", h.HitRatio())
	}
}

// TestHotTierBudgetSplit checks the heterogeneity quota: the relation share
// is capped by the relation table size, with the surplus spilling back to
// entities, and the default split is the paper's 25% entities.
func TestHotTierBudgetSplit(t *testing.T) {
	e, r := testMatrices(1000, 4, 2)
	// Default fraction 0.25: 75% of 100 = 75 relation rows wanted, but the
	// table only has 4; the surplus spills to entities.
	h, err := NewHotTier(e, r, 100, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if eb, rb := h.Budgets(); eb != 96 || rb != 4 {
		t.Errorf("budgets = (%d, %d), want (96, 4)", eb, rb)
	}
	// Default budget: 5% of 1004 rows = 50.
	h, err = NewHotTier(e, r, 0, 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	eb, rb := h.Budgets()
	if eb+rb != 50 {
		t.Errorf("default budget = %d, want 50", eb+rb)
	}
}

// TestHotTierAutoRebuild checks the access-count trigger promotes without
// any manual Rebuild call.
func TestHotTierAutoRebuild(t *testing.T) {
	e, r := testMatrices(50, 4, 2)
	h, err := NewHotTier(e, r, 4, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		h.Entity(i % 5)
	}
	if h.Rebuilds() != 2 {
		t.Errorf("rebuilds = %d after 250 accesses every 100, want 2", h.Rebuilds())
	}
	if he, _ := h.HotRows(); he == 0 {
		t.Error("no hot entities after auto rebuild")
	}
}

// TestHotTierInstrumented checks the registry series mirror the tier.
func TestHotTierInstrumented(t *testing.T) {
	e, r := testMatrices(50, 4, 2)
	h, err := NewHotTier(e, r, 4, 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	h.Instrument(reg)
	for i := 0; i < 20; i++ {
		h.Entity(1)
	}
	h.Rebuild()
	for i := 0; i < 10; i++ {
		h.Entity(1)
	}
	h.Entity(30)
	if v := reg.Counter(metrics.MServeCacheHits).Value(); v != 10 {
		t.Errorf("%s = %d, want 10", metrics.MServeCacheHits, v)
	}
	if v := reg.Counter(metrics.MServeCacheMisses).Value(); v != 21 {
		t.Errorf("%s = %d, want 21", metrics.MServeCacheMisses, v)
	}
	if v := reg.Counter(metrics.MServeCacheRebuilds).Value(); v != 1 {
		t.Errorf("%s = %d, want 1", metrics.MServeCacheRebuilds, v)
	}
	if v := reg.Counter(metrics.MServeCachePromotedRows).Value(); v == 0 {
		t.Errorf("%s = 0, want > 0", metrics.MServeCachePromotedRows)
	}
	h.Rebuild() // ratio gauge refreshes at rebuild
	if got, want := reg.Gauge(metrics.MServeCacheHitRatio).Value(), h.HitRatio(); got != want {
		t.Errorf("%s = %v, want %v", metrics.MServeCacheHitRatio, got, want)
	}
}

// measureHitRatio warms the tier on 4·rebuildEvery draws from next, resets
// the stats, then measures the hit ratio over another 4·rebuildEvery draws.
func measureHitRatio(t *testing.T, next func() int) float64 {
	t.Helper()
	const n, dim, rels = 10000, 4, 16
	e, r := testMatrices(n, rels, dim)
	h, err := NewHotTier(e, r, n/20, 0.9, 2048) // 500 rows, mostly entities
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*2048; i++ {
		h.Entity(next())
	}
	h.ResetStats()
	for i := 0; i < 4*2048; i++ {
		h.Entity(next())
	}
	return h.HitRatio()
}

// TestZipfBeatsUniform is the cache's reason to exist: at the same budget
// (5% of rows), a Zipf-skewed query stream — the paper's access model for
// knowledge graphs — must achieve a materially higher hit ratio than
// uniform queries, for which a 5% cache can serve at most ~5% of lookups.
func TestZipfBeatsUniform(t *testing.T) {
	zr := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(zr, 1.1, 1, 10000-1)
	zipfRatio := measureHitRatio(t, func() int { return int(zipf.Uint64()) })
	ur := rand.New(rand.NewSource(11))
	uniformRatio := measureHitRatio(t, func() int { return ur.Intn(10000) })
	t.Logf("hit ratio: zipf %.3f, uniform %.3f", zipfRatio, uniformRatio)
	if uniformRatio > 0.12 {
		t.Errorf("uniform hit ratio %.3f implausibly high for a 5%% budget", uniformRatio)
	}
	if zipfRatio < 0.5 {
		t.Errorf("zipf hit ratio %.3f, want >= 0.5", zipfRatio)
	}
	if zipfRatio < 4*uniformRatio {
		t.Errorf("zipf ratio %.3f not materially above uniform %.3f", zipfRatio, uniformRatio)
	}
}

// TestTopKMatchesSort checks Offer/Sorted against a full sort under the
// serving total order, including duplicate scores.
func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 5, 32} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(200)
			all := make([]knn.Result, n)
			tk := NewTopK(k)
			tk.Reset(k)
			for i := range all {
				all[i] = knn.Result{ID: kg.EntityID(i), Score: float32(rng.Intn(20))}
				tk.Offer(all[i].ID, all[i].Score)
			}
			sort.Slice(all, func(a, b int) bool { return worse(all[b], all[a]) })
			want := all
			if len(want) > k {
				want = want[:k]
			}
			got := tk.Sorted(nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d n=%d: %d results, want %d", k, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d n=%d: got[%d] = %v, want %v", k, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKMergeInvariance checks the property the batcher relies on: merging
// per-shard top-ks yields the same result as one global top-k, for any
// split point.
func TestTopKMergeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, k = 300, 10
	all := make([]knn.Result, n)
	global := NewTopK(k)
	global.Reset(k)
	for i := range all {
		all[i] = knn.Result{ID: kg.EntityID(i), Score: float32(rng.Intn(30))}
		global.Offer(all[i].ID, all[i].Score)
	}
	want := global.Sorted(nil)
	for _, cut := range []int{1, 37, 150, 299} {
		a, b, m := NewTopK(k), NewTopK(k), NewTopK(k)
		a.Reset(k)
		b.Reset(k)
		m.Reset(k)
		for _, r := range all[:cut] {
			a.Offer(r.ID, r.Score)
		}
		for _, r := range all[cut:] {
			b.Offer(r.ID, r.Score)
		}
		for _, r := range a.Items() {
			m.Offer(r.ID, r.Score)
		}
		for _, r := range b.Items() {
			m.Offer(r.ID, r.Score)
		}
		got := m.Sorted(nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: got[%d] = %v, want %v", cut, i, got[i], want[i])
			}
		}
	}
}
