package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"hetkg/internal/ckpt"
	"hetkg/internal/core"
	"hetkg/internal/kg"
	"hetkg/internal/knn"
	"hetkg/internal/model"
	"hetkg/internal/span"
)

// cycleN is the entity count of the test graph: a directed path under
// relation 0 ((i, 0, i+1)) with inverse edges under relation 1. A path —
// unlike a closed cycle, whose translations must sum to zero — is exactly
// representable by TransE (e_i = i·v, r0 = v, r1 = -v), so a short training
// run ranks the true successor first: a deterministic golden signal for the
// serving path.
const cycleN = 16

func cycleGraph() *kg.Graph {
	triples := make([]kg.Triple, 0, 2*(cycleN-1))
	for i := 0; i < cycleN-1; i++ {
		next := kg.EntityID(i + 1)
		triples = append(triples,
			kg.Triple{Head: kg.EntityID(i), Relation: 0, Tail: next},
			kg.Triple{Head: next, Relation: 1, Tail: kg.EntityID(i)},
		)
	}
	return kg.MustNewGraph("path", cycleN, 2, triples)
}

var (
	trainOnce sync.Once
	trainCkpt *ckpt.Checkpoint
	trainErr  error
)

// trainedCheckpoint trains the cycle model once per test binary and
// round-trips it through the ckpt binary format, so every test serves
// exactly what a hetkg-train invocation would have written to disk.
func trainedCheckpoint(t *testing.T) *ckpt.Checkpoint {
	t.Helper()
	trainOnce.Do(func() {
		res, err := core.Run(core.RunConfig{
			Graph:     cycleGraph(),
			System:    core.SystemHETKGC,
			ModelName: "transe",
			Machines:  1,
			Dim:       16,
			Epochs:    240,
			BatchSize: 8,
			NegPerPos: 8,
			Seed:      7,
		})
		if err != nil {
			trainErr = err
			return
		}
		var buf bytes.Buffer
		err = ckpt.Write(&buf, &ckpt.Checkpoint{
			ModelName: "transe",
			Dim:       res.Entities.Dim,
			Dataset:   "cycle",
			Seed:      7,
			Epochs:    len(res.Epochs),
			System:    res.System,
			Entities:  res.Entities,
			Relations: res.Relations,
		})
		if err != nil {
			trainErr = err
			return
		}
		trainCkpt, trainErr = ckpt.Read(&buf)
	})
	if trainErr != nil {
		t.Fatalf("training checkpoint: %v", trainErr)
	}
	return trainCkpt
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Checkpoint == nil {
		cfg.Checkpoint = trainedCheckpoint(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// referenceRank scores every candidate directly with the model (rows read
// from the raw tables, no cache, no batching) and returns the top k under
// the serving total order — the ground truth the batched sweep must match.
func referenceRank(ck *ckpt.Checkpoint, entity, rel int, tails bool, k int) []knn.Result {
	m, err := model.New(ck.ModelName)
	if err != nil {
		panic(err)
	}
	anchor := ck.Entities.Row(entity)
	rrow := ck.Relations.Row(rel)
	all := make([]knn.Result, ck.Entities.Rows)
	for c := 0; c < ck.Entities.Rows; c++ {
		var s float32
		if tails {
			s = m.Score(anchor, rrow, ck.Entities.Row(c))
		} else {
			s = m.Score(ck.Entities.Row(c), rrow, anchor)
		}
		all[c] = knn.Result{ID: kg.EntityID(c), Score: s}
	}
	sort.Slice(all, func(a, b int) bool { return worse(all[b], all[a]) })
	return all[:k]
}

// trainSplitTriples reproduces the train split core.Run derives from the
// run seed, so golden assertions target facts the model actually saw.
func trainSplitTriples(t *testing.T) []kg.Triple {
	t.Helper()
	sp, err := kg.SplitTriples(cycleGraph(), rand.New(rand.NewSource(7+17)), 0.05, 0.05)
	if err != nil {
		t.Fatalf("SplitTriples: %v", err)
	}
	return sp.Train.Triples
}

// TestRoundTripPredict is the checkpoint → serve golden test: a model
// trained in-process and round-tripped through the ckpt format must rank
// each training fact's true tail (and, via the inverse relation, true head)
// first, and the batched sweep must reproduce the brute-force reference
// ranking exactly for every query.
func TestRoundTripPredict(t *testing.T) {
	ck := trainedCheckpoint(t)
	s := newTestServer(t, Config{Parallelism: 4})
	var dst []knn.Result
	checked := 0
	for _, tr := range trainSplitTriples(t) {
		// Every (head, relation) in the cycle graph has exactly one true
		// tail, so top-1 is well defined for both r0 and its inverse r1.
		anchor, want := int(tr.Head), tr.Tail
		var err error
		dst, err = s.PredictInto(dst, anchor, int(tr.Relation), true, 5)
		if err != nil {
			t.Fatalf("PredictInto(%d, r%d): %v", anchor, tr.Relation, err)
		}
		if dst[0].ID != want {
			t.Errorf("predict tails(%d, r%d): top-1 = %d (score %.4f), want %d", anchor, tr.Relation, dst[0].ID, dst[0].Score, want)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d training facts checked; split went wrong", checked)
	}
	// The batched sweep must agree exactly with unbatched brute force for
	// every (entity, relation, direction) query, top-5.
	for e := 0; e < cycleN; e++ {
		for r := 0; r < 2; r++ {
			for _, tails := range []bool{true, false} {
				got, err := s.PredictInto(nil, e, r, tails, 5)
				if err != nil {
					t.Fatal(err)
				}
				if ref := referenceRank(ck, e, r, tails, 5); !reflect.DeepEqual(got, ref) {
					t.Errorf("predict(%d, r%d, tails=%v) = %v, want reference %v", e, r, tails, got, ref)
				}
			}
		}
	}
}

// TestPredictDeterministicAcrossParallelism asserts the batched sweep
// returns bit-identical rankings regardless of worker count — the TopK
// total order makes the merge independent of sharding.
func TestPredictDeterministicAcrossParallelism(t *testing.T) {
	base := newTestServer(t, Config{Parallelism: 1})
	for _, degree := range []int{2, 3, 8, 64} {
		s := newTestServer(t, Config{Parallelism: degree})
		for e := 0; e < cycleN; e++ {
			want, err := base.PredictInto(nil, e, 0, true, 7)
			if err != nil {
				t.Fatalf("base predict: %v", err)
			}
			got, err := s.PredictInto(nil, e, 0, true, 7)
			if err != nil {
				t.Fatalf("predict at degree %d: %v", degree, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("degree %d entity %d: %v != %v", degree, e, got, want)
			}
		}
	}
}

// TestScoreTriple checks the scoring path against the model directly.
func TestScoreTriple(t *testing.T) {
	ck := trainedCheckpoint(t)
	s := newTestServer(t, Config{})
	m, _ := model.New(ck.ModelName)
	got, err := s.ScoreTriple(0, 0, 1)
	if err != nil {
		t.Fatalf("ScoreTriple: %v", err)
	}
	want := m.Score(ck.Entities.Row(0), ck.Relations.Row(0), ck.Entities.Row(1))
	if got != want {
		t.Errorf("ScoreTriple(0,0,1) = %v, want %v", got, want)
	}
	// A true edge should outscore a non-edge under the same relation.
	far, err := s.ScoreTriple(0, 0, (0+cycleN/2)%cycleN)
	if err != nil {
		t.Fatalf("ScoreTriple far: %v", err)
	}
	if got <= far {
		t.Errorf("true edge score %v not above non-edge score %v", got, far)
	}
}

// TestNeighbors checks the similarity endpoint excludes the query and
// returns k results in descending-score order.
func TestNeighbors(t *testing.T) {
	s := newTestServer(t, Config{})
	got, err := s.NeighborsInto(nil, 5, 4)
	if err != nil {
		t.Fatalf("NeighborsInto: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d neighbors, want 4", len(got))
	}
	for i, r := range got {
		if r.ID == 5 {
			t.Errorf("result %d is the query entity itself", i)
		}
		if i > 0 && got[i-1].Score < r.Score {
			t.Errorf("results out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

// TestValidation checks out-of-range ids are rejected and counted.
func TestValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.ScoreTriple(-1, 0, 0); err == nil {
		t.Error("negative head accepted")
	}
	if _, err := s.ScoreTriple(0, 99, 0); err == nil {
		t.Error("out-of-range relation accepted")
	}
	if _, err := s.PredictInto(nil, cycleN, 0, true, 3); err == nil {
		t.Error("out-of-range entity accepted")
	}
	if _, err := s.NeighborsInto(nil, -2, 3); err == nil {
		t.Error("negative neighbor query accepted")
	}
	if v := s.reg.Counter("serve.errors").Value(); v != 4 {
		t.Errorf("serve.errors = %d, want 4", v)
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestHTTPEndpoints drives all three /v1 routes plus the mounted
// introspection handlers over real HTTP.
func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sc struct {
		Score float32 `json:"score"`
	}
	getJSON(t, ts.URL+"/v1/score?head=0&relation=0&tail=1", &sc)
	want, _ := s.ScoreTriple(0, 0, 1)
	if sc.Score != want {
		t.Errorf("/v1/score = %v, want %v", sc.Score, want)
	}

	var pr struct {
		Results []knn.Result `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/predict?entity=2&relation=0&k=3", &pr)
	if len(pr.Results) != 3 || pr.Results[0].ID != 3 {
		t.Errorf("/v1/predict results = %v, want top-1 id 3", pr.Results)
	}

	// POST body form of the same query, head direction.
	body, _ := json.Marshal(map[string]any{"entity": 3, "relation": 1, "dir": "head", "k": 2})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	pr.Results = nil
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding POST response: %v", err)
	}
	resp.Body.Close()
	if len(pr.Results) != 2 || pr.Results[0].ID != 4 {
		t.Errorf("POST /v1/predict results = %v, want top-1 id 4", pr.Results)
	}

	var nb struct {
		Results []knn.Result `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/neighbors?entity=1&k=3", &nb)
	if len(nb.Results) != 3 {
		t.Errorf("/v1/neighbors returned %d results, want 3", len(nb.Results))
	}

	// Mounted introspection routes answer from the same registry.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
	var snap map[string]json.RawMessage
	getJSON(t, ts.URL+"/metrics", &snap)
	found := false
	for name := range snap {
		if strings.HasPrefix(name, "serve.") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("/metrics has no serve.* series: %v", snap)
	}

	// Client errors come back as 400 with a JSON error body.
	for _, bad := range []string{
		"/v1/score?head=0&relation=0&tail=999",
		"/v1/score?head=x&relation=0&tail=1",
		"/v1/predict?entity=0&relation=0&dir=sideways",
		"/v1/neighbors?entity=-3",
	} {
		var e struct {
			Error string `json:"error"`
		}
		if resp := getJSON(t, ts.URL+bad, &e); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", bad, resp.StatusCode)
		} else if e.Error == "" {
			t.Errorf("GET %s: empty error body", bad)
		}
	}
}

// TestListenLoopbackGuard checks the unauthenticated listener refuses
// non-loopback binds unless explicitly allowed.
func TestListenLoopbackGuard(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Listen("0.0.0.0:0", false); err == nil {
		t.Error("non-loopback bind accepted without allowRemote")
	}
	l, err := s.Listen("127.0.0.1:0", false)
	if err != nil {
		t.Fatalf("loopback bind refused: %v", err)
	}
	l.Close()
	l, err = s.Listen("0.0.0.0:0", true)
	if err != nil {
		t.Fatalf("allowRemote bind refused: %v", err)
	}
	l.Close()
}

// TestRequestSpans checks sampled requests produce serve.request roots the
// span analyzer attributes like training batches: lookups under "cache",
// sweeps and knn scans under "compute".
func TestRequestSpans(t *testing.T) {
	col := span.NewCollector(span.CollectorConfig{Every: 1})
	tr := col.Tracer(0, 0)
	s := newTestServer(t, Config{Tracer: tr})
	if _, err := s.ScoreTriple(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictInto(nil, 0, 0, true, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NeighborsInto(nil, 0, 3); err != nil {
		t.Fatal(err)
	}
	spans := col.Drain()
	roots, byName := 0, map[string]int{}
	var rootTraces []uint64
	for _, sp := range spans {
		byName[sp.Name]++
		if span.IsRoot(sp.Name) {
			if sp.Name != span.NServeRequest {
				t.Errorf("unexpected root %q", sp.Name)
			}
			roots++
			rootTraces = append(rootTraces, sp.Trace)
		}
	}
	if roots != 3 {
		t.Fatalf("%d serve.request roots, want 3 (spans: %v)", roots, byName)
	}
	if byName[span.NServeLookup] != 3 || byName[span.NServeSweep] != 1 || byName[span.NServeKNN] != 1 {
		t.Errorf("child span counts = %v, want 3 lookups, 1 sweep, 1 knn", byName)
	}
	// Children attach to their root's trace.
	rootSet := map[uint64]bool{}
	for _, tr := range rootTraces {
		rootSet[tr] = true
	}
	for _, sp := range spans {
		if !rootSet[sp.Trace] {
			t.Errorf("span %s on trace %d has no serve.request root", sp.Name, sp.Trace)
		}
	}
	// The analyzer treats each request as a batch with categorized time —
	// what `hetkg-trace spans` prints.
	a := span.Analyze(spans, 5)
	if len(a.Batches) != 3 {
		t.Fatalf("Analyze found %d request paths, want 3", len(a.Batches))
	}
	if a.Total["cache"] <= 0 {
		t.Errorf("no cache-attributed time: %v", a.Total)
	}
	if a.Total["compute"] <= 0 {
		t.Errorf("no compute-attributed time: %v", a.Total)
	}
}

// TestConcurrentPredictBatches floods the server from many goroutines and
// checks every caller still gets the exact reference ranking while sweeps
// are being shared (serve.batches < requests proves coalescing happened;
// with a 1-entity sweep span budget it cannot be asserted deterministically,
// so only correctness is).
func TestConcurrentPredictBatches(t *testing.T) {
	ck := trainedCheckpoint(t)
	s := newTestServer(t, Config{Parallelism: 2, MaxBatch: 8})
	const callers = 16
	refs := make([][]knn.Result, cycleN)
	for e := range refs {
		refs[e] = referenceRank(ck, e, 0, true, 4)
	}
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var dst []knn.Result
			for i := 0; i < 50; i++ {
				e := (c + i) % cycleN
				var err error
				dst, err = s.PredictInto(dst, e, 0, true, 4)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(dst, refs[e]) {
					errs <- fmt.Errorf("caller %d iter %d: %v != %v", c, i, dst, refs[e])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got := s.reg.Counter("serve.requests").Value(); got != callers*50 {
		t.Errorf("serve.requests = %d, want %d", got, callers*50)
	}
}

// TestCheckpointFileRoundTrip exercises the on-disk path end to end the way
// the binaries do: WriteFile by the trainer, ReadFile by the server.
func TestCheckpointFileRoundTrip(t *testing.T) {
	ck := trainedCheckpoint(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := ckpt.WriteFile(path, ck); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	s, err := New(Config{Checkpoint: loaded})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	got, err := s.PredictInto(nil, 0, 0, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 1 {
		t.Errorf("top-1 after file round trip = %d, want 1", got[0].ID)
	}
}
