// Package serve is the online inference layer: it loads a trained checkpoint
// and answers knowledge-graph queries over HTTP — triple scoring, top-k link
// prediction, and embedding-space nearest neighbors. The serving read path
// reuses the training system's machinery where the paper's argument carries
// over: a hotness-aware HotTier fronts the embedding tables (skewed query
// workloads hit a small hot set, exactly as skewed training batches do), a
// group-commit batcher coalesces concurrent predictions into shared candidate
// sweeps, and the whole path is wired into the metrics registry and span
// tracer so serving is observable with the same tools as training.
// See DESIGN.md §9.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hetkg/internal/ckpt"
	"hetkg/internal/kg"
	"hetkg/internal/knn"
	"hetkg/internal/metrics"
	"hetkg/internal/model"
	"hetkg/internal/obs"
	"hetkg/internal/span"
)

// Config parameterizes New. Zero values take defaults.
type Config struct {
	// Checkpoint is the trained model to serve (required).
	Checkpoint *ckpt.Checkpoint
	// CacheBudget is the HotTier row budget (0 = 5% of all rows).
	CacheBudget int
	// EntityFraction is the entity share of the cache budget (0 = 0.25).
	EntityFraction float64
	// RebuildEvery is the cache promotion interval in accesses
	// (0 = DefaultRebuildEvery, negative = manual rebuilds only).
	RebuildEvery int
	// MaxBatch caps predictions coalesced per sweep (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxK caps a request's k (0 = DefaultMaxK).
	MaxK int
	// Parallelism is the sweep worker count (0 = GOMAXPROCS).
	Parallelism int
	// KNNMetric selects the /v1/neighbors similarity (zero = cosine).
	KNNMetric knn.Metric
	// Registry receives the serve.* metrics (nil = a private registry;
	// either way /metrics exposes it).
	Registry *metrics.Registry
	// Tracer, when non-nil, records serve.request spans for sampled
	// requests.
	Tracer *span.Tracer
}

// Server answers queries against one loaded checkpoint. Methods are safe for
// concurrent use; the *Into methods are allocation-free after warmup when
// given capacity-sufficient destination slices.
type Server struct {
	ck     *ckpt.Checkpoint
	model  model.Model
	tier   *HotTier
	bat    *batcher
	index  *knn.Index
	reg    *metrics.Registry
	tracer *span.Tracer
	maxK   int
	seq    atomic.Int64
	knnSc  sync.Pool // *knn.Scratch
	obs    serveObs
}

// serveObs holds the server's registry-backed series.
type serveObs struct {
	requests     *metrics.Counter
	errors       *metrics.Counter
	latScore     *metrics.Histogram
	latPredict   *metrics.Histogram
	latNeighbors *metrics.Histogram
}

// New builds a server over cfg.Checkpoint.
func New(cfg Config) (*Server, error) {
	ck := cfg.Checkpoint
	if ck == nil {
		return nil, fmt.Errorf("serve: nil checkpoint")
	}
	if err := ck.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	m, err := model.New(ck.ModelName)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	tier, err := NewHotTier(ck.Entities, ck.Relations, cfg.CacheBudget, cfg.EntityFraction, cfg.RebuildEvery)
	if err != nil {
		return nil, err
	}
	index, err := knn.New(ck.Entities, cfg.KNNMetric)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	tier.Instrument(reg)
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	degree := cfg.Parallelism
	if degree <= 0 {
		degree = runtime.GOMAXPROCS(0)
	}
	bat := newBatcher(m, ck.Entities, cfg.MaxBatch, maxK, degree)
	bat.instrument(reg)
	bat.trace(cfg.Tracer)
	s := &Server{
		ck:     ck,
		model:  m,
		tier:   tier,
		bat:    bat,
		index:  index,
		reg:    reg,
		tracer: cfg.Tracer,
		maxK:   maxK,
		obs: serveObs{
			requests:     reg.Counter(metrics.MServeRequests),
			errors:       reg.Counter(metrics.MServeErrors),
			latScore:     reg.Histogram(metrics.MServeLatencyScore),
			latPredict:   reg.Histogram(metrics.MServeLatencyPredict),
			latNeighbors: reg.Histogram(metrics.MServeLatencyNeighbors),
		},
	}
	s.knnSc.New = func() any { return &knn.Scratch{} }
	return s, nil
}

// Close stops the batcher's goroutines. In-flight requests must have
// returned (the HTTP layer's graceful shutdown guarantees this).
func (s *Server) Close() { s.bat.close() }

// Registry returns the registry carrying the serve.* metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Cache returns the serving hot tier (for inspection and manual rebuilds).
func (s *Server) Cache() *HotTier { return s.tier }

// Checkpoint returns the loaded checkpoint.
func (s *Server) Checkpoint() *ckpt.Checkpoint { return s.ck }

// checkEntity validates an entity id.
func (s *Server) checkEntity(id int, role string) error {
	if id < 0 || id >= s.ck.Entities.Rows {
		return fmt.Errorf("serve: %s entity %d out of range [0,%d)", role, id, s.ck.Entities.Rows)
	}
	return nil
}

// checkRelation validates a relation id.
func (s *Server) checkRelation(id int) error {
	if id < 0 || id >= s.ck.Relations.Rows {
		return fmt.Errorf("serve: relation %d out of range [0,%d)", id, s.ck.Relations.Rows)
	}
	return nil
}

// clampK bounds a requested k to [1, maxK] and the candidate count.
func (s *Server) clampK(k int) int {
	if k <= 0 {
		k = 10
	}
	if k > s.maxK {
		k = s.maxK
	}
	if k > s.ck.Entities.Rows {
		k = s.ck.Entities.Rows
	}
	return k
}

// ScoreTriple returns the model's plausibility score for (h, r, t), routing
// the three row reads through the hot tier.
func (s *Server) ScoreTriple(h, r, t int) (float32, error) {
	start := time.Now()
	if err := s.checkEntity(h, "head"); err != nil {
		s.obs.errors.Inc()
		return 0, err
	}
	if err := s.checkRelation(r); err != nil {
		s.obs.errors.Inc()
		return 0, err
	}
	if err := s.checkEntity(t, "tail"); err != nil {
		s.obs.errors.Inc()
		return 0, err
	}
	sp := s.tracer.RootNamed(int(s.seq.Add(1)), span.NServeRequest)
	lk := s.tracer.StartChild(sp.Context(), span.NServeLookup)
	hr, rr, tr := s.tier.Entity(h), s.tier.Relation(r), s.tier.Entity(t)
	lk.EndAttrs(span.Attrs{Rows: 3, Shard: span.NoShard})
	score := s.model.Score(hr, rr, tr)
	sp.EndAttrs(span.Attrs{Rows: 1, Shard: span.NoShard})
	s.obs.requests.Inc()
	s.obs.latScore.ObserveInt(time.Since(start).Nanoseconds())
	return score, nil
}

// PredictInto ranks every entity as the missing tail (tails=true) or head
// (tails=false) of the partial triple and writes the top k into dst, best
// first. The sweep is shared with concurrent predictions via the batcher.
// dst is grown from dst[:0]; pass capacity ≥ k to avoid allocation.
func (s *Server) PredictInto(dst []knn.Result, entity, rel int, tails bool, k int) ([]knn.Result, error) {
	start := time.Now()
	role := "tail"
	if tails {
		role = "head" // the known entity: predicting tails means it is the head
	}
	if err := s.checkEntity(entity, role); err != nil {
		s.obs.errors.Inc()
		return dst, err
	}
	if err := s.checkRelation(rel); err != nil {
		s.obs.errors.Inc()
		return dst, err
	}
	k = s.clampK(k)
	sp := s.tracer.RootNamed(int(s.seq.Add(1)), span.NServeRequest)
	lk := s.tracer.StartChild(sp.Context(), span.NServeLookup)
	anchor, rrow := s.tier.Entity(entity), s.tier.Relation(rel)
	lk.EndAttrs(span.Attrs{Rows: 2, Shard: span.NoShard})

	j := s.bat.get()
	j.anchorRow, j.relRow, j.tailMode, j.k, j.sc = anchor, rrow, tails, k, sp.Context()
	s.bat.submit(j)
	<-j.done

	n := len(j.out)
	if cap(dst) < n {
		dst = make([]knn.Result, n)
	} else {
		dst = dst[:n]
	}
	copy(dst, j.out)
	s.bat.put(j)
	sp.EndAttrs(span.Attrs{Rows: int64(s.ck.Entities.Rows), Shard: span.NoShard})
	s.obs.requests.Inc()
	s.obs.latPredict.ObserveInt(time.Since(start).Nanoseconds())
	return dst, nil
}

// NeighborsInto writes entity's k nearest neighbors in embedding space
// (excluding itself) into dst, best first. dst is grown from dst[:0]; pass
// capacity ≥ k to avoid allocation.
func (s *Server) NeighborsInto(dst []knn.Result, entity, k int) ([]knn.Result, error) {
	start := time.Now()
	if err := s.checkEntity(entity, "query"); err != nil {
		s.obs.errors.Inc()
		return dst, err
	}
	k = s.clampK(k)
	sp := s.tracer.RootNamed(int(s.seq.Add(1)), span.NServeRequest)
	lk := s.tracer.StartChild(sp.Context(), span.NServeLookup)
	row := s.tier.Entity(entity)
	lk.EndAttrs(span.Attrs{Rows: 1, Shard: span.NoShard})
	kn := s.tracer.StartChild(sp.Context(), span.NServeKNN)
	sc := s.knnSc.Get().(*knn.Scratch)
	dst, err := s.index.SearchInto(dst, row, k, kg.EntityID(entity), sc)
	s.knnSc.Put(sc)
	kn.EndAttrs(span.Attrs{Rows: int64(s.index.Rows()), Shard: span.NoShard})
	sp.EndAttrs(span.Attrs{Rows: int64(k), Shard: span.NoShard})
	if err != nil {
		s.obs.errors.Inc()
		return dst, err
	}
	s.obs.requests.Inc()
	s.obs.latNeighbors.ObserveInt(time.Since(start).Nanoseconds())
	return dst, nil
}

// Listen opens the server's TCP listener. Non-loopback addresses are
// refused unless allowRemote is set: the query endpoints and the mounted
// introspection handlers are unauthenticated.
func (s *Server) Listen(addr string, allowRemote bool) (net.Listener, error) {
	if !allowRemote {
		if err := obs.CheckLoopback(addr); err != nil {
			return nil, err
		}
	}
	return net.Listen("tcp", addr)
}

// Handler returns the HTTP mux: the three /v1 query endpoints plus the
// introspection routes (/metrics, /healthz, /debug/pprof/) from the obs
// package, all backed by this server's registry.
func (s *Server) Handler() http.Handler {
	mux := obs.Handler(s.reg)
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/neighbors", s.handleNeighbors)
	return mux
}

// scoreRequest is the /v1/score input (query params or POST JSON body).
type scoreRequest struct {
	Head     int `json:"head"`
	Relation int `json:"relation"`
	Tail     int `json:"tail"`
}

// predictRequest is the /v1/predict input. Dir is "tail" (default: rank
// tails for (entity, relation, ?)) or "head" (rank heads for (?, relation,
// entity)).
type predictRequest struct {
	Entity   int    `json:"entity"`
	Relation int    `json:"relation"`
	Dir      string `json:"dir"`
	K        int    `json:"k"`
}

// neighborsRequest is the /v1/neighbors input.
type neighborsRequest struct {
	Entity int `json:"entity"`
	K      int `json:"k"`
}

// httpError writes a JSON error body. Validation failures are the client's
// fault (400); nothing on the read path is a server error today.
func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// formInt parses an integer query parameter, returning def when absent.
func formInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// decodeBody fills v from a POST JSON body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request body: %w", err)
	}
	return nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	req := scoreRequest{Head: -1, Relation: -1, Tail: -1}
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		if req.Head, err = formInt(r, "head", -1); err == nil {
			if req.Relation, err = formInt(r, "relation", -1); err == nil {
				req.Tail, err = formInt(r, "tail", -1)
			}
		}
	}
	if err != nil {
		s.obs.errors.Inc()
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	score, err := s.ScoreTriple(req.Head, req.Relation, req.Tail)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]float32{"score": score})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req := predictRequest{Entity: -1, Relation: -1, Dir: "tail"}
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
		if req.Dir == "" {
			req.Dir = "tail"
		}
	} else {
		if req.Entity, err = formInt(r, "entity", -1); err == nil {
			if req.Relation, err = formInt(r, "relation", -1); err == nil {
				req.K, err = formInt(r, "k", 0)
			}
		}
		if d := r.URL.Query().Get("dir"); d != "" {
			req.Dir = d
		}
	}
	if err == nil && req.Dir != "tail" && req.Dir != "head" {
		err = fmt.Errorf("serve: dir must be %q or %q, got %q", "tail", "head", req.Dir)
	}
	if err != nil {
		s.obs.errors.Inc()
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	results, err := s.PredictInto(nil, req.Entity, req.Relation, req.Dir == "tail", req.K)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string][]knn.Result{"results": results})
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	req := neighborsRequest{Entity: -1}
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		if req.Entity, err = formInt(r, "entity", -1); err == nil {
			req.K, err = formInt(r, "k", 0)
		}
	}
	if err != nil {
		s.obs.errors.Inc()
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	results, err := s.NeighborsInto(nil, req.Entity, req.K)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string][]knn.Result{"results": results})
}
