package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hetkg/internal/metrics"
	"hetkg/internal/vec"
)

// DefaultRebuildEvery is the default number of cache accesses between hot-set
// rebuilds (promotion passes).
const DefaultRebuildEvery = 4096

// HotTier fronts a checkpoint's embedding tables with a fixed-budget
// in-memory hot tier, the serving-side analogue of the training HotCache:
// decayed access-frequency counters track per-row hotness, and a periodic
// promotion pass copies the hottest rows into a contiguous slab. The budget
// is split between entities and relations with the paper's heterogeneity
// quota (EntityFraction), because the two id spaces have wildly different
// hotness distributions — a handful of relations absorb most accesses.
//
// At serving time the cold table is an in-process matrix, so a hit saves a
// random-access read of cold storage rather than a network round trip; the
// tier models the architecture the paper motivates (hot rows pinned in fast
// memory, cold rows wherever capacity is cheap) and its hit ratio is the
// signal a deployment would use to size that fast memory. Lookups are
// lock-free (an atomic pointer to an immutable hot set), so readers never
// block behind a rebuild.
type HotTier struct {
	ents, rels *vec.Matrix
	// entFreq and relFreq are the decayed access counters; halved at every
	// rebuild so hotness tracks the recent workload, not all of history.
	entFreq, relFreq []atomic.Uint32
	entHot, relHot   atomic.Pointer[hotSet]
	entBudget        int
	relBudget        int
	rebuildEvery     int64
	accesses         atomic.Int64
	rebuilds         atomic.Int64
	stats            metrics.Ratio
	mu               sync.Mutex // serializes rebuilds
	obs              *tierObs
}

// hotSet is one immutable generation of promoted rows: idx maps a row id to
// its slab slot (-1 = cold). Readers load the pointer once and index
// without locks; rebuilds install a fresh generation.
type hotSet struct {
	idx  []int32
	slab []float32
	dim  int
}

// tierObs holds the tier's registry-backed series (see Instrument).
type tierObs struct {
	hits     *metrics.Counter
	misses   *metrics.Counter
	ratio    *metrics.Gauge
	promoted *metrics.Counter
	rebuilds *metrics.Counter
}

// NewHotTier builds a tier over the entity and relation tables. budget is
// the total hot-row count (0 = 5% of all rows, minimum 1); entityFraction
// is the entity share of the budget (0 = the paper's 0.25 default); unused
// relation budget spills back to entities. rebuildEvery is the access
// interval between automatic promotion passes (0 = DefaultRebuildEvery,
// negative = manual rebuilds only).
func NewHotTier(ents, rels *vec.Matrix, budget int, entityFraction float64, rebuildEvery int) (*HotTier, error) {
	if ents == nil || rels == nil || ents.Rows == 0 || rels.Rows == 0 {
		return nil, fmt.Errorf("serve: empty embedding tables")
	}
	total := ents.Rows + rels.Rows
	if budget <= 0 {
		budget = total / 20
		if budget < 1 {
			budget = 1
		}
	}
	if budget > total {
		budget = total
	}
	if entityFraction <= 0 {
		entityFraction = 0.25
	}
	if entityFraction > 1 {
		entityFraction = 1
	}
	relBudget := budget - int(entityFraction*float64(budget))
	if relBudget > rels.Rows {
		relBudget = rels.Rows // spill unused relation quota to entities
	}
	entBudget := budget - relBudget
	if entBudget > ents.Rows {
		entBudget = ents.Rows
	}
	every := int64(rebuildEvery)
	if rebuildEvery == 0 {
		every = DefaultRebuildEvery
	} else if rebuildEvery < 0 {
		every = 0 // manual
	}
	return &HotTier{
		ents:         ents,
		rels:         rels,
		entFreq:      make([]atomic.Uint32, ents.Rows),
		relFreq:      make([]atomic.Uint32, rels.Rows),
		entBudget:    entBudget,
		relBudget:    relBudget,
		rebuildEvery: every,
	}, nil
}

// Instrument publishes the tier's behaviour into reg: serve.cache.{hits,
// misses,promoted_rows,rebuilds} counters and the serve.cache.hit_ratio
// gauge (refreshed at every rebuild). Call before the tier is used.
func (h *HotTier) Instrument(reg *metrics.Registry) {
	h.obs = &tierObs{
		hits:     reg.Counter(metrics.MServeCacheHits),
		misses:   reg.Counter(metrics.MServeCacheMisses),
		ratio:    reg.Gauge(metrics.MServeCacheHitRatio),
		promoted: reg.Counter(metrics.MServeCachePromotedRows),
		rebuilds: reg.Counter(metrics.MServeCacheRebuilds),
	}
}

// Entity returns entity id's embedding row, counting the access toward the
// id's hotness. The id must be in range (the server validates requests).
func (h *HotTier) Entity(id int) []float32 {
	return h.lookup(&h.entFreq[id], &h.entHot, h.ents, id)
}

// Relation returns relation id's embedding row, counting the access toward
// the id's hotness. The id must be in range.
func (h *HotTier) Relation(id int) []float32 {
	return h.lookup(&h.relFreq[id], &h.relHot, h.rels, id)
}

func (h *HotTier) lookup(freq *atomic.Uint32, hot *atomic.Pointer[hotSet], cold *vec.Matrix, id int) []float32 {
	freq.Add(1)
	if n := h.accesses.Add(1); h.rebuildEvery > 0 && n%h.rebuildEvery == 0 {
		h.Rebuild()
	}
	if set := hot.Load(); set != nil {
		if j := set.idx[id]; j >= 0 {
			h.stats.Hit()
			if o := h.obs; o != nil {
				o.hits.Inc()
			}
			return set.slab[int(j)*set.dim : (int(j)+1)*set.dim]
		}
	}
	h.stats.Miss()
	if o := h.obs; o != nil {
		o.misses.Inc()
	}
	return cold.Row(id)
}

// Rebuild runs one promotion pass: the top-budget rows by decayed frequency
// (ties to the lower id) are copied into fresh hot sets, and every counter
// is halved so hotness decays exponentially over rebuild epochs. Safe to
// call concurrently with lookups; concurrent rebuilds serialize.
func (h *HotTier) Rebuild() {
	h.mu.Lock()
	defer h.mu.Unlock()
	promoted := int64(0)
	promoted += h.rebuildOne(&h.entHot, h.entFreq, h.ents, h.entBudget)
	promoted += h.rebuildOne(&h.relHot, h.relFreq, h.rels, h.relBudget)
	h.rebuilds.Add(1)
	if o := h.obs; o != nil {
		o.promoted.Add(promoted)
		o.rebuilds.Inc()
		o.ratio.Set(h.stats.Value())
	}
}

// rebuildOne promotes one table's hottest rows and halves its counters.
func (h *HotTier) rebuildOne(hot *atomic.Pointer[hotSet], freq []atomic.Uint32, cold *vec.Matrix, budget int) int64 {
	type cand struct {
		id int32
		n  uint32
	}
	cands := make([]cand, 0, len(freq))
	for i := range freq {
		n := freq[i].Load()
		freq[i].Store(n / 2)
		if n > 0 {
			cands = append(cands, cand{id: int32(i), n: n})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].n != cands[b].n {
			return cands[a].n > cands[b].n
		}
		return cands[a].id < cands[b].id
	})
	if len(cands) > budget {
		cands = cands[:budget]
	}
	set := &hotSet{
		idx:  make([]int32, cold.Rows),
		slab: make([]float32, len(cands)*cold.Dim),
		dim:  cold.Dim,
	}
	for i := range set.idx {
		set.idx[i] = -1
	}
	for j, c := range cands {
		set.idx[c.id] = int32(j)
		copy(set.slab[j*cold.Dim:(j+1)*cold.Dim], cold.Row(int(c.id)))
	}
	hot.Store(set)
	return int64(len(cands))
}

// HitRatio returns hits/(hits+misses) since the last ResetStats.
func (h *HotTier) HitRatio() float64 { return h.stats.Value() }

// Accesses returns the total lookup count.
func (h *HotTier) Accesses() int64 { return h.accesses.Load() }

// Rebuilds returns how many promotion passes have run.
func (h *HotTier) Rebuilds() int64 { return h.rebuilds.Load() }

// ResetStats zeroes the hit/miss counters (the frequency counters and the
// hot sets are untouched), so a warmed tier can be measured from a clean
// slate — the Zipf-vs-uniform benchmark protocol.
func (h *HotTier) ResetStats() { h.stats.Reset() }

// HotRows returns the currently promoted row counts (entities, relations).
func (h *HotTier) HotRows() (ents, rels int) {
	if s := h.entHot.Load(); s != nil {
		ents = len(s.slab) / s.dim
	}
	if s := h.relHot.Load(); s != nil {
		rels = len(s.slab) / s.dim
	}
	return ents, rels
}

// Budgets returns the per-table hot-row budgets (entities, relations).
func (h *HotTier) Budgets() (ents, rels int) { return h.entBudget, h.relBudget }
