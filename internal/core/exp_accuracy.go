package core

import (
	"fmt"

	"hetkg/internal/dataset"
)

// Tables III, IV, V: link-prediction quality and training time per system,
// and Fig. 5: convergence (MRR over cumulative time).

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Link prediction on FB15k-like (TransE, DistMult) × 4 systems  [paper Table III]",
		Run: func(o Options) (*Table, error) {
			return accuracyTable("table3", "fb15k", []string{"transe", "distmult"}, o)
		},
	})
	register(Experiment{
		ID:    "table4",
		Title: "Link prediction on WN18-like (TransE, DistMult) × 4 systems  [paper Table IV]",
		Run: func(o Options) (*Table, error) {
			return accuracyTable("table4", "wn18", []string{"transe", "distmult"}, o)
		},
	})
	register(Experiment{
		ID:    "table5",
		Title: "Link prediction on Freebase-86m-like (TransE) × 4 systems  [paper Table V]",
		Run: func(o Options) (*Table, error) {
			return accuracyTable("table5", "freebase86m", []string{"transe"}, o)
		},
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Convergence: validation MRR vs cumulative training time per system  [paper Fig. 5]",
		Run:   runFig5,
	})
}

// accuracyTable trains every system × model combination on one dataset and
// reports the paper's columns: MRR, Hits@1, Hits@10, and (simulated) time.
func accuracyTable(id, ds string, models []string, o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Link prediction on %s", ds),
		Header: []string{"System", "Model", "MRR", "Hits@1", "Hits@10", "Time(s)"},
	}
	for _, mdl := range models {
		for _, sys := range Systems() {
			o.logf("%s: %s / %s ...", id, sys, mdl)
			res, err := o.run(RunConfig{
				Dataset:   ds,
				Scale:     o.Scale,
				System:    sys,
				ModelName: mdl,
				Seed:      o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("%s (%s/%s): %w", id, sys, mdl, err)
			}
			t.AddRow(string(sys), mdl,
				res.Final.MRR, res.Final.Hits[1], res.Final.Hits[10],
				fmt.Sprintf("%.2f", res.Total().Seconds()))
		}
	}
	t.Note("paper shape: all systems reach comparable quality; HET-KG variants finish fastest, PBG slowest")
	t.Note("times are simulated cluster time: measured computation + cost-model communication (see DESIGN.md)")
	return t, nil
}

func runFig5(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig5",
		Title:  "Convergence on fb15k-like (TransE): MRR vs cumulative time",
		Header: []string{"System", "Epoch", "CumTime(s)", "MRR", "Loss"},
	}
	for _, sys := range Systems() {
		o.logf("fig5: %s ...", sys)
		res, err := o.run(RunConfig{
			Dataset:   "fb15k",
			Scale:     o.Scale,
			System:    sys,
			ModelName: "transe",
			Epochs:    fig5Epochs(o),
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig5 (%s): %w", sys, err)
		}
		for _, e := range res.Epochs {
			t.AddRow(string(sys), e.Epoch,
				fmt.Sprintf("%.2f", e.CumTime.Seconds()),
				e.MRR, fmt.Sprintf("%.4f", e.Loss))
		}
	}
	t.Note("paper shape: all systems converge to similar MRR; HET-KG's curves reach it in less cumulative time")
	return t, nil
}

func fig5Epochs(o Options) int {
	if o.Scale == dataset.Tiny {
		return 4
	}
	return 6
}
