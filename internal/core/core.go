// Package core ties the substrates together: it turns a high-level run
// specification (dataset, system, model, scale) into a configured training
// run, and hosts the experiment registry that regenerates every table and
// figure of the HET-KG paper (see DESIGN.md §4 for the index).
package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"hetkg/internal/artifact"
	"hetkg/internal/cache"
	"hetkg/internal/ckpt"
	"hetkg/internal/dataset"
	"hetkg/internal/kg"
	"hetkg/internal/metrics"
	"hetkg/internal/model"
	"hetkg/internal/netsim"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
	"hetkg/internal/span"
	"hetkg/internal/train"
	"hetkg/internal/vec"
)

// System names a training system implementation.
type System string

// The four systems of the paper's evaluation.
const (
	SystemPBG    System = "PBG"
	SystemDGLKE  System = "DGL-KE"
	SystemHETKGC System = "HET-KG-C"
	SystemHETKGD System = "HET-KG-D"
)

// Systems lists all systems in the paper's table order.
func Systems() []System {
	return []System{SystemPBG, SystemDGLKE, SystemHETKGC, SystemHETKGD}
}

// RunConfig is the high-level specification of one training run.
type RunConfig struct {
	// Graph, when non-nil, trains on this user-supplied knowledge graph
	// (e.g. loaded with kg.ReadTSV) instead of a preset.
	Graph *kg.Graph
	// Dataset is a preset name: "fb15k", "wn18", or "freebase86m".
	// Ignored when Graph is set.
	Dataset string
	// Scale selects the synthetic dataset size (tiny/small/paper).
	Scale dataset.Scale
	// System selects the trainer.
	System System
	// ModelName is a model registry name ("transe", "distmult", ...).
	ModelName string
	// LossName is "logistic" (default) or "ranking".
	LossName string
	// OptimizerName is "adagrad" (default, the paper's), "sgd", or "adam".
	OptimizerName string
	// Margin is the ranking-loss margin.
	Margin float32

	// Dim, LR, Epochs, BatchSize, NegPerPos, ChunkSize override the
	// scale-derived defaults when non-zero.
	Dim       int
	LR        float32
	Epochs    int
	BatchSize int
	NegPerPos int
	ChunkSize int

	// Machines is the cluster size (default 4, the paper's testbed).
	Machines int
	// WorkersPerMachine defaults to 1.
	WorkersPerMachine int
	// PartitionerName is "metis" (default) or "random".
	PartitionerName string
	// CostModel defaults to the paper's 1 Gbps network.
	CostModel netsim.CostModel

	// CacheCapacity is the hot-embedding table size (default: 5% of the
	// entity+relation universe). CacheSyncEvery is P (default 8);
	// CachePrefetchD is D (default 16); EntityFraction defaults to 0.25.
	CacheCapacity int
	// CacheBudget sizes the hot table as a fraction of the entity+relation
	// universe (the paper's Fig. 8(a) axis) when CacheCapacity is zero —
	// the sweep-friendly spelling of the same knob (plan key cacheBudget).
	CacheBudget      float64
	CacheSyncEvery   int
	CachePrefetchD   int
	EntityFraction   float64
	NoHeterogeneity  bool // HET-KG-N of Table VII
	DisableCacheSync bool // force unbounded staleness
	// Quantize8Bit compresses wire payloads to 8 bits (extension; the
	// legacy spelling of Codec: "int8").
	Quantize8Bit bool
	// Codec names the negotiated wire-codec profile for worker↔PS links:
	// "fp32" (default), "fp16", "int8", "delta-int8", "topk", or "auto".
	// With ShardAddrs set the profile is negotiated in each connection's
	// TCP handshake; in-process it wraps the simulated transport.
	Codec string
	// TopKRatio is the kept fraction per gradient row for Codec: "topk"
	// (default 0.125).
	TopKRatio float64
	// RPCTimeout bounds each worker↔shard RPC attempt on TCP links
	// (0 = the link layer's default, negative disables deadlines).
	RPCTimeout time.Duration
	// RPCRetries is the per-RPC retry budget after a link failure
	// (0 = the link layer's default, negative disables retries).
	RPCRetries int
	// DegradedMaxStaleness, when positive, lets cache-backed trainers ride
	// out a shard outage in degraded mode: pulls are served from the hot
	// cache up to this many iterations stale and pushes buffer for replay
	// once the link recovers (see train.Config.DegradedMaxStaleness).
	DegradedMaxStaleness int
	// AdversarialTemp enables self-adversarial negative weighting
	// (extension; 0 = the paper's uniform weighting).
	AdversarialTemp float32
	// InverseRelations augments the training split with reciprocal
	// relations (standard KGE preprocessing; doubles the relation table).
	InverseRelations bool
	// DegreeWeightedNegatives corrupts with entities drawn ∝ degree^0.75
	// (word2vec-style hard negatives) instead of uniformly (extension).
	DegreeWeightedNegatives bool
	// Resume, when non-nil, initializes the parameter server from a saved
	// checkpoint's embeddings instead of random values (continue training;
	// not supported together with ShardAddrs — shard processes derive
	// state independently). The checkpoint's model must match ModelName.
	Resume *ckpt.Checkpoint
	// LocalMachines restricts this process to the listed machines' workers
	// (multi-process worker deployment; empty = all machines).
	LocalMachines []int
	// ShardAddrs, when non-empty, connects to remote parameter-server
	// shards (one cmd/hetkg-ps process per machine, in machine order) over
	// TCP instead of hosting the shards in this process. Must have exactly
	// Machines entries.
	ShardAddrs []string
	// JoinAddr, when non-empty, runs this process as an elastic cluster
	// worker: it registers with the coordinator shard at this address,
	// discovers the shard fleet from the join reply, trains whichever
	// partitions the coordinator assigns (heartbeating, snapshotting
	// progress, adopting dead workers' partitions), and returns when every
	// partition has completed every epoch. LocalMachines become the
	// preferred partitions of the registration. Mutually exclusive with
	// ShardAddrs (the fleet comes from the coordinator) and Resume.
	JoinAddr string
	// HeartbeatInterval overrides the coordinator-advertised heartbeat
	// cadence in elastic mode (0 = use the advertised value).
	HeartbeatInterval time.Duration
	// CkptDir, when non-empty, receives per-partition progress snapshots
	// for elastic crash recovery. RecoverFrom is where adopted partitions
	// look for snapshots ("" = CkptDir); CkptEvery is the snapshot
	// iteration interval (0 = 16).
	CkptDir     string
	RecoverFrom string
	CkptEvery   int
	// WorkerLabel identifies this process in coordinator logs (default
	// hostname:pid).
	WorkerLabel string
	// ClusterLogf, when non-nil, receives worker-side cluster events
	// (joins, adoptions, heartbeat trouble) in elastic mode.
	ClusterLogf func(format string, args ...any)

	// EvalEvery/EvalCandidates/EvalMax control validation scoring.
	EvalEvery      int
	EvalCandidates int
	EvalMax        int

	// Parallelism bounds the cores used by the deterministic parallel
	// execution engine for batch compute and evaluation ranking
	// (0 = all cores; 1 = serial; results identical at any setting).
	Parallelism int

	// Metrics, when non-nil, is the registry the run publishes into —
	// share it with an obs.Server to watch the run live. nil lets the
	// trainer create a private one (returned in Result.Metrics).
	Metrics *metrics.Registry
	// TimelinePath, when non-empty, writes the run's JSONL timeline there
	// (parent directories are created). TimelineEvery is the iteration
	// interval between records (default metrics.DefaultTimelineEvery).
	TimelinePath  string
	TimelineEvery int

	// Artifacts, when non-nil, is the content-addressed cache consulted for
	// expensive deterministic intermediates — synthetic dataset generation
	// and partitioner output — so repeated runs of the same configuration
	// skip both (see internal/artifact; hetkg-train/-ps/-data expose it as
	// -artifacts, hetkg apply opens one by default). Never part of the run's
	// semantics: results are bit-identical with or without it.
	Artifacts *artifact.Store

	// SpanPath, when non-empty, enables per-batch span tracing and writes
	// the collected spans there after the run (parent directories are
	// created). SpanEvery is the per-worker batch sampling interval
	// (default span.DefaultEvery); SpanFormat is span.FormatJSONL (default,
	// the hetkg-spans/v1 dump hetkg-trace reads) or span.FormatChrome
	// (trace-event JSON for Perfetto / chrome://tracing).
	SpanPath   string
	SpanEvery  int
	SpanFormat string

	Seed int64
}

// defaults fills scale-appropriate values for everything left zero.
func (rc *RunConfig) defaults() {
	if rc.Dataset == "" && rc.Graph == nil {
		rc.Dataset = "fb15k"
	}
	if rc.ModelName == "" {
		rc.ModelName = "transe"
	}
	if rc.LossName == "" {
		rc.LossName = "logistic"
	}
	if rc.Machines == 0 {
		rc.Machines = 4
	}
	if rc.PartitionerName == "" {
		rc.PartitionerName = "metis"
	}
	if rc.Dim == 0 {
		switch rc.Scale {
		case dataset.Tiny:
			rc.Dim = 16
		case dataset.Paper:
			rc.Dim = 400 // the paper's hyperparameter table
		default:
			rc.Dim = 64
		}
	}
	if rc.LR == 0 {
		rc.LR = 0.1 // paper: ℓ = 0.1
	}
	if rc.Epochs == 0 {
		switch rc.Scale {
		case dataset.Tiny:
			rc.Epochs = 3
		default:
			rc.Epochs = 5
		}
	}
	if rc.BatchSize == 0 {
		switch rc.Scale {
		case dataset.Tiny:
			rc.BatchSize = 32 // paper: b = 32 on FB15k/WN18
		default:
			rc.BatchSize = 128
		}
	}
	if rc.NegPerPos == 0 {
		rc.NegPerPos = 8 // paper: b_n = 8
	}
	if rc.ChunkSize == 0 {
		rc.ChunkSize = 8
	}
	if rc.CostModel == (netsim.CostModel{}) {
		rc.CostModel = netsim.Default1Gbps()
	}
	if rc.EvalEvery == 0 {
		rc.EvalEvery = 1
	}
	if rc.EvalCandidates == 0 {
		rc.EvalCandidates = 100
	}
	if rc.EvalMax == 0 {
		rc.EvalMax = 300
	}
	if rc.CacheSyncEvery == 0 {
		rc.CacheSyncEvery = 8 // the knee of Fig. 8(b)
	}
	if rc.CachePrefetchD == 0 {
		rc.CachePrefetchD = 16
	}
	if rc.EntityFraction == 0 {
		rc.EntityFraction = 0.25 // the optimum of Fig. 8(c)
	}
	if rc.DisableCacheSync {
		rc.CacheSyncEvery = 0
	}
}

// Run executes the specified training run and returns its result.
// linkConfig assembles the fault-tolerance parameters for TCP shard links.
// The run seed keys the retry-backoff jitter, so a given run's retry
// schedule replays deterministically.
func (rc *RunConfig) linkConfig() ps.LinkConfig {
	return ps.LinkConfig{
		RPCTimeout: rc.RPCTimeout,
		Retries:    rc.RPCRetries,
		Seed:       rc.Seed,
	}
}

func Run(rc RunConfig) (*train.Result, error) {
	rc.defaults()
	g := rc.Graph
	if g == nil {
		var ok bool
		g, ok = dataset.ByNameCached(rc.Dataset, rc.Scale, rc.Seed, rc.Artifacts)
		if !ok {
			return nil, fmt.Errorf("core: unknown dataset %q (have %v)", rc.Dataset, dataset.Names())
		}
	}
	// Freebase-86m uses 90/5/5 in the paper; the standard benchmarks keep
	// small validation/test tails at our scales.
	sp, err := kg.SplitTriples(g, rand.New(rand.NewSource(rc.Seed+17)), 0.05, 0.05)
	if err != nil {
		return nil, err
	}
	if rc.InverseRelations {
		sp.Train = kg.AddInverses(sp.Train)
	}
	mdl, err := model.New(rc.ModelName)
	if err != nil {
		return nil, err
	}
	loss, err := model.NewLoss(rc.LossName, rc.Margin)
	if err != nil {
		return nil, err
	}
	part, err := partition.New(rc.PartitionerName, rc.Seed)
	if err != nil {
		return nil, err
	}
	part = partition.Cached(part, rc.Artifacts)
	var newOpt func() opt.Optimizer
	if rc.OptimizerName != "" && rc.OptimizerName != "adagrad" {
		name, lr := rc.OptimizerName, rc.LR
		if _, err := opt.New(name, lr); err != nil {
			return nil, err
		}
		newOpt = func() opt.Optimizer {
			o, _ := opt.New(name, lr)
			return o
		}
	}
	if rc.CacheCapacity == 0 && rc.CacheBudget > 0 {
		rc.CacheCapacity = int(rc.CacheBudget * float64(g.NumEntity+g.NumRel))
		if rc.CacheCapacity < 1 {
			rc.CacheCapacity = 1
		}
	}
	if rc.CacheCapacity == 0 {
		rc.CacheCapacity = (g.NumEntity + g.NumRel) / 20
	}

	if rc.JoinAddr != "" {
		if len(rc.ShardAddrs) > 0 {
			return nil, fmt.Errorf("core: JoinAddr and ShardAddrs are mutually exclusive (the coordinator advertises the fleet)")
		}
		if rc.Resume != nil {
			return nil, fmt.Errorf("core: Resume is not supported in elastic mode (shard processes hold the state)")
		}
	}
	if rc.Resume != nil {
		if len(rc.ShardAddrs) > 0 {
			return nil, fmt.Errorf("core: Resume is not supported with remote shards")
		}
		if rc.Resume.ModelName != rc.ModelName {
			return nil, fmt.Errorf("core: checkpoint trained with %q, run requests %q",
				rc.Resume.ModelName, rc.ModelName)
		}
	}

	tc := train.Config{
		Graph:                sp.Train,
		Valid:                sp.Valid.Triples,
		Filter:               sp.AllTriples(),
		Model:                mdl,
		Loss:                 loss,
		Dim:                  rc.Dim,
		LR:                   rc.LR,
		Epochs:               rc.Epochs,
		BatchSize:            rc.BatchSize,
		NegPerPos:            rc.NegPerPos,
		ChunkSize:            rc.ChunkSize,
		NumMachines:          rc.Machines,
		WorkersPerMachine:    rc.WorkersPerMachine,
		LocalMachines:        rc.LocalMachines,
		Partitioner:          part,
		CostModel:            rc.CostModel,
		EvalEvery:            rc.EvalEvery,
		EvalCandidates:       rc.EvalCandidates,
		EvalMax:              rc.EvalMax,
		Parallelism:          rc.Parallelism,
		Metrics:              rc.Metrics,
		Dataset:              rc.Dataset,
		TimelineEvery:        rc.TimelineEvery,
		Seed:                 rc.Seed,
		NewOptimizer:         newOpt,
		Quantize8Bit:         rc.Quantize8Bit,
		Codec:                rc.Codec,
		TopKRatio:            rc.TopKRatio,
		DegradedMaxStaleness: rc.DegradedMaxStaleness,
		NegativeWeights:      negWeights(rc.DegreeWeightedNegatives, sp.Train),
		InitialEntities:      resumeEntities(rc.Resume),
		InitialRelations:     resumeRelations(rc.Resume),
		AdversarialTemp:      rc.AdversarialTemp,
		Cache: train.CacheConfig{
			Capacity:       rc.CacheCapacity,
			EntityFraction: rc.EntityFraction,
			Heterogeneity:  !rc.NoHeterogeneity,
			SyncEvery:      rc.CacheSyncEvery,
			PrefetchD:      rc.CachePrefetchD,
		},
	}
	if len(rc.ShardAddrs) > 0 {
		if len(rc.ShardAddrs) != rc.Machines {
			return nil, fmt.Errorf("core: %d shard addresses for %d machines", len(rc.ShardAddrs), rc.Machines)
		}
		addrs := rc.ShardAddrs
		codec := rc.Codec
		if codec == "" && rc.Quantize8Bit {
			codec = ps.ProfileInt8
		}
		lcfg := rc.linkConfig()
		tc.NewTransport = func(*ps.Cluster) (ps.Transport, error) {
			return ps.DialTCPLink(addrs, codec, lcfg)
		}
	}
	var timelineFile *os.File
	if rc.TimelinePath != "" {
		if dir := filepath.Dir(rc.TimelinePath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("core: creating timeline directory: %w", err)
			}
		}
		f, err := os.Create(rc.TimelinePath)
		if err != nil {
			return nil, fmt.Errorf("core: creating timeline: %w", err)
		}
		timelineFile = f
		tc.Timeline = f
	}
	var spans *span.Collector
	if rc.SpanPath != "" {
		switch rc.SpanFormat {
		case "", span.FormatJSONL, span.FormatChrome:
		default:
			return nil, fmt.Errorf("core: unknown span format %q (want %s or %s)",
				rc.SpanFormat, span.FormatJSONL, span.FormatChrome)
		}
		spans = span.NewCollector(span.CollectorConfig{Every: rc.SpanEvery})
		tc.Spans = spans
	}
	var res *train.Result
	if rc.JoinAddr != "" {
		res, err = runElastic(rc, tc)
	} else {
		res, err = runSystem(rc.System, tc)
	}
	if timelineFile != nil {
		if cerr := timelineFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("core: closing timeline: %w", cerr)
		}
	}
	if spans != nil && err == nil {
		if dir := filepath.Dir(rc.SpanPath); dir != "." {
			if merr := os.MkdirAll(dir, 0o755); merr != nil {
				return res, fmt.Errorf("core: creating span directory: %w", merr)
			}
		}
		hdr := span.Header{System: res.System, Dataset: rc.Dataset, Every: spans.Every(), Seed: rc.Seed}
		if werr := span.WriteFile(rc.SpanPath, rc.SpanFormat, hdr, spans.Drain()); werr != nil {
			return res, fmt.Errorf("core: writing spans: %w", werr)
		}
	}
	return res, err
}

// runSystem dispatches to the trainer selected by system.
func runSystem(system System, tc train.Config) (*train.Result, error) {
	switch system {
	case SystemPBG:
		return train.TrainPBG(tc)
	case SystemDGLKE:
		return train.TrainDGLKE(tc)
	case SystemHETKGC:
		tc.Cache.Strategy = cache.CPS
		return train.TrainHETKG(tc)
	case SystemHETKGD:
		tc.Cache.Strategy = cache.DPS
		return train.TrainHETKG(tc)
	default:
		return nil, fmt.Errorf("core: unknown system %q", system)
	}
}

// Options parameterizes an experiment invocation.
type Options struct {
	// Scale selects workload sizes (default Small; benches use Tiny).
	Scale dataset.Scale
	// Seed drives all randomness (default 42).
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// TimelineDir, when non-empty, writes one sequenced timeline file per
	// training run under this directory (NNN-dataset-system.jsonl).
	TimelineDir string
	// SpanDir, when non-empty, writes one sequenced span dump per training
	// run under this directory (NNN-dataset-system.spans.jsonl or .json for
	// the chrome format). SpanEvery and SpanFormat forward to RunConfig.
	SpanDir    string
	SpanEvery  int
	SpanFormat string
}

// timelineSeq numbers experiment timeline files within a process, so runs
// of one experiment batch sort in execution order.
var timelineSeq atomic.Int64

// run executes rc with the options' observability settings applied: when
// TimelineDir is set and the run does not name its own timeline, it gets a
// sequenced file there. Experiment implementations call this instead of
// Run.
func (o Options) run(rc RunConfig) (*train.Result, error) {
	ds := rc.Dataset
	if ds == "" {
		ds = "custom"
	}
	if o.TimelineDir != "" && rc.TimelinePath == "" {
		name := fmt.Sprintf("%03d-%s-%s.jsonl", timelineSeq.Add(1), ds, rc.System)
		rc.TimelinePath = filepath.Join(o.TimelineDir, name)
	}
	if o.SpanDir != "" && rc.SpanPath == "" {
		ext := "spans.jsonl"
		if o.SpanFormat == span.FormatChrome {
			ext = "trace.json"
		}
		name := fmt.Sprintf("%03d-%s-%s.%s", spanSeq.Add(1), ds, rc.System, ext)
		rc.SpanPath = filepath.Join(o.SpanDir, name)
		rc.SpanEvery = o.SpanEvery
		rc.SpanFormat = o.SpanFormat
	}
	return Run(rc)
}

// spanSeq numbers experiment span dumps, like timelineSeq.
var spanSeq atomic.Int64

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 42
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// fmtDur renders a duration with millisecond precision for tables.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func resumeEntities(c *ckpt.Checkpoint) *vec.Matrix {
	if c == nil {
		return nil
	}
	return c.Entities
}

func resumeRelations(c *ckpt.Checkpoint) *vec.Matrix {
	if c == nil {
		return nil
	}
	return c.Relations
}

// negWeights builds deg^0.75 corruption weights when requested.
func negWeights(enabled bool, g *kg.Graph) []float64 {
	if !enabled {
		return nil
	}
	return sampler.DegreeWeights(g.EntityDegrees())
}
