package core

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"testing"
	"time"

	"hetkg/internal/dataset"
	"hetkg/internal/ps"
)

// The multi-process fault-injection harness (ISSUE: kill a worker
// mid-epoch, assert the run completes and the final MRR matches a
// no-failure run within noise). The parent test process hosts the two PS
// shards and the coordinator; trainer processes are separate OS processes
// obtained by re-executing the test binary with HETKG_ELASTIC_HELPER set,
// so a SIGKILL is a real process death: no deferred cleanup, no flushed
// snapshots, TCP connections cut mid-stream.

// procRunConfig is the run every process of the harness shares (the
// deterministic derivation demands identical configs everywhere).
func procRunConfig() RunConfig {
	return RunConfig{
		Dataset:   "fb15k",
		Scale:     dataset.Tiny,
		System:    SystemHETKGC,
		Machines:  2,
		Epochs:    4,
		BatchSize: 16,
		Seed:      42,
	}
}

const (
	helperEnv     = "HETKG_ELASTIC_HELPER"
	helperJoinEnv = "HETKG_ELASTIC_JOIN"
	helperCkptEnv = "HETKG_ELASTIC_CKPT"
)

// TestElasticWorkerHelperProcess is not a test: it is the body of the
// trainer child processes TestElasticKillRecovery spawns. Without the
// harness environment it skips immediately.
func TestElasticWorkerHelperProcess(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper body for TestElasticKillRecovery")
	}
	rc := procRunConfig()
	rc.JoinAddr = os.Getenv(helperJoinEnv)
	rc.HeartbeatInterval = 50 * time.Millisecond
	rc.CkptDir = os.Getenv(helperCkptEnv)
	rc.CkptEvery = 2
	res, err := Run(rc)
	if err != nil {
		t.Fatalf("elastic worker: %v", err)
	}
	// The parent parses this line from the surviving worker's output.
	fmt.Printf("ELASTIC_FINAL_MRR=%.6f\n", res.Final.MRR)
}

func TestElasticKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness")
	}
	rc := procRunConfig()

	// Host both shards in-process; shard 0 doubles as the coordinator.
	shard0, err := BuildShard(rc, 0)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := BuildShard(rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := ps.NewMembership(ps.MemberConfig{
		Partitions:     rc.Machines,
		ShardAddrs:     []string{l0.Addr().String(), l1.Addr().String()},
		HeartbeatEvery: 50 * time.Millisecond,
		WorkerTimeout:  250 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc0 := &ps.Acceptor{Coordinator: coord}
	acc1 := &ps.Acceptor{}
	go acc0.Serve(l0, shard0)
	go acc1.Serve(l1, shard1)
	defer func() {
		l0.Close()
		l1.Close()
		acc0.Shutdown(time.Second)
		acc1.Shutdown(time.Second)
	}()

	ckptDir := t.TempDir()
	spawn := func(label string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0], "-test.run=^TestElasticWorkerHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			helperEnv+"=1",
			helperJoinEnv+"="+l0.Addr().String(),
			helperCkptEnv+"="+ckptDir,
		)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", label, err)
		}
		return cmd, &out
	}

	// Victim first: it joins alone, is granted both partitions, and starts
	// training. We kill it as soon as the coordinator has heard real
	// progress on every partition — mid-epoch by construction.
	victim, victimOut := spawn("victim")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("victim made no observable progress; output:\n%s", victimOut.String())
		}
		snap := coord.Snapshot()
		started := snap.Workers == 1 && snap.Done == 0
		for p := 0; started && p < rc.Machines; p++ {
			if snap.Owner[p] < 0 || (snap.Epoch[p] == 1 && snap.Iteration[p] == 0) {
				started = false
			}
		}
		if started {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The survivor joins as a spare (started partitions are never
	// preempted), so until the victim dies it owns nothing.
	survivor, survivorOut := spawn("survivor")
	for coord.Snapshot().Workers < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("survivor never joined; output:\n%s", survivorOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("killing victim: %v", err)
	}
	victim.Wait() // reaps the SIGKILLed process; failure expected

	done := make(chan error, 1)
	go func() { done <- survivor.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor failed: %v\noutput:\n%s", err, survivorOut.String())
		}
	case <-time.After(60 * time.Second):
		survivor.Process.Kill()
		t.Fatalf("survivor did not finish the run; output:\n%s", survivorOut.String())
	}
	if !coord.AllDone() {
		t.Errorf("coordinator did not see every partition finish")
	}

	mrrRe := regexp.MustCompile(`ELASTIC_FINAL_MRR=([0-9.]+)`)
	match := mrrRe.FindStringSubmatch(survivorOut.String())
	if match == nil {
		t.Fatalf("survivor printed no final MRR; output:\n%s", survivorOut.String())
	}
	recovered, err := strconv.ParseFloat(match[1], 64)
	if err != nil {
		t.Fatal(err)
	}

	// No-failure reference: the same run, single process. Recovery replays
	// a handful of batches (those after the victim's last snapshot), so the
	// two runs differ only by that noise.
	base, err := Run(procRunConfig())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if base.Final.MRR <= 0.1 {
		t.Fatalf("baseline MRR %.3f too weak to compare against", base.Final.MRR)
	}
	lo, hi := base.Final.MRR/1.4, base.Final.MRR*1.4
	if recovered < lo || recovered > hi {
		t.Errorf("recovered MRR %.3f outside noise band [%.3f, %.3f] of no-failure MRR %.3f",
			recovered, lo, hi, base.Final.MRR)
	}
	t.Logf("recovered MRR %.3f vs no-failure %.3f", recovered, base.Final.MRR)
}
