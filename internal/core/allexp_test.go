package core

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsAtTinyScale executes the whole registry — every
// paper table/figure plus the ablations — end to end at tiny scale. It is
// the harness's own integration test: an experiment that errors, returns an
// empty table, or loses its header/row shape fails here before it can fail
// in a long bench run.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment registry (~15s)")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tab.ID, e.ID)
			}
			if len(tab.Header) < 2 {
				t.Errorf("%s header too narrow: %v", e.ID, tab.Header)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s row %d has %d cells, header has %d",
						e.ID, i, len(row), len(tab.Header))
				}
				for j, cell := range row {
					if strings.TrimSpace(cell) == "" {
						t.Errorf("%s cell (%d,%d) empty", e.ID, i, j)
					}
				}
			}
			if tab.String() == "" {
				t.Errorf("%s renders empty", e.ID)
			}
			if js, err := tab.MarshalJSON(); err != nil || len(js) == 0 {
				t.Errorf("%s JSON encoding failed: %v", e.ID, err)
			}
		})
	}
}
