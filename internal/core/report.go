package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hetkg/internal/plan/benchfmt"
)

// Table is one experiment's output: a titled grid of cells matching the
// corresponding table or figure in the paper, plus free-form notes (the
// workload, parameters, and expected shape).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Bench, when an experiment fills it, is the table's machine-readable
	// hetkg-bench/v2 snapshot with exact (unrounded) values. Experiments
	// that don't are still benchable: BenchFile falls back to parsing the
	// rendered cells.
	Bench *benchfmt.File
}

// BenchFile returns the table's perf snapshot: the experiment-authored one
// when present, else a best-effort conversion of the rendered grid (first
// column = row name, numeric cells = values). This is what `hetkg-bench
// -bench-out` writes as BENCH_<id>.json for every experiment.
func (t *Table) BenchFile() *benchfmt.File {
	if t.Bench != nil {
		return t.Bench
	}
	return benchfmt.FromTable(t.ID, t.Header, t.Rows)
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// MarshalJSON renders the table as a JSON object with id, title, header,
// rows, and notes — machine-readable output for plotting pipelines.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
