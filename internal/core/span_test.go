package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hetkg/internal/dataset"
	"hetkg/internal/span"
)

// TestRunWritesChromeTrace is the Chrome-export acceptance test: a run with
// SpanFormat "chrome" must produce trace-event JSON Perfetto accepts —
// a traceEvents array of complete ("X") duration events with pid/tid and
// microsecond timestamps, plus process_name/thread_name metadata ("M")
// events naming the machine and worker rows.
func TestRunWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trace.json")
	_, err := Run(RunConfig{
		Dataset:    "fb15k",
		Scale:      dataset.Tiny,
		System:     SystemHETKGD,
		Epochs:     1,
		Seed:       7,
		SpanPath:   path,
		SpanEvery:  1,
		SpanFormat: span.FormatChrome,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	var durEvents, metaEvents, batchEvents int
	procNames := map[string]bool{}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			durEvents++
			if ev.TS < 0 {
				t.Errorf("event %q has negative ts %v (rebase failed)", ev.Name, ev.TS)
			}
			if ev.Pid < 0 || ev.Tid < 0 {
				t.Errorf("event %q has negative pid/tid %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
			if ev.Name == span.NBatch {
				batchEvents++
				if _, ok := ev.Args["iter"]; !ok {
					t.Error("batch event missing args.iter")
				}
			}
		case "M":
			metaEvents++
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				procNames[name] = true
			case "thread_name":
				threadNames[name] = true
			default:
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q (Perfetto subset is X and M)", ev.Ph)
		}
	}
	if durEvents == 0 {
		t.Error("no duration (X) events")
	}
	if metaEvents == 0 {
		t.Error("no metadata (M) events")
	}
	if batchEvents == 0 {
		t.Error("no root batch events")
	}
	for _, want := range []string{"machine-0", "machine-1"} {
		if !procNames[want] {
			t.Errorf("no process_name %q (have %v)", want, procNames)
		}
	}
	for _, want := range []string{"worker-0", "ps-shard"} {
		if !threadNames[want] {
			t.Errorf("no thread_name %q (have %v)", want, threadNames)
		}
	}
}

// TestRunWritesSpanJSONL checks the default JSONL export path end to end:
// the written dump parses via span.ReadFile, its header identifies the run,
// and it contains stitched root and shard spans.
func TestRunWritesSpanJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.spans.jsonl")
	_, err := Run(RunConfig{
		Dataset:   "fb15k",
		Scale:     dataset.Tiny,
		System:    SystemHETKGC,
		Epochs:    1,
		Seed:      7,
		SpanPath:  path,
		SpanEvery: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := span.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if d.Header.Kind != span.Kind {
		t.Errorf("kind = %q", d.Header.Kind)
	}
	if d.Header.System != string(SystemHETKGC) {
		t.Errorf("system = %q, want %q", d.Header.System, SystemHETKGC)
	}
	if d.Header.Every != 4 {
		t.Errorf("every = %d, want 4", d.Header.Every)
	}
	counts := map[string]int{}
	for _, s := range d.Spans {
		counts[s.Name]++
	}
	for _, name := range []string{span.NBatch, span.NGradCompute, span.NPSPull, span.NShardPull} {
		if counts[name] == 0 {
			t.Errorf("no %q spans in dump", name)
		}
	}
}

// TestRunRejectsUnknownSpanFormat verifies the format is validated before
// any training work happens.
func TestRunRejectsUnknownSpanFormat(t *testing.T) {
	_, err := Run(RunConfig{
		Dataset:    "fb15k",
		Scale:      dataset.Tiny,
		System:     SystemDGLKE,
		SpanPath:   filepath.Join(t.TempDir(), "x"),
		SpanFormat: "protobuf",
	})
	if err == nil {
		t.Fatal("unknown span format accepted")
	}
}
