package core

import (
	"fmt"
	"math/rand"

	"hetkg/internal/dataset"
	"hetkg/internal/netsim"
	"hetkg/internal/partition"
	"hetkg/internal/sampler"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: the METIS-like partitioner vs random placement, and chunked vs
// independent negative sampling (the §V complexity claim).

func init() {
	register(Experiment{
		ID:    "xablation-partition",
		Title: "Ablation: METIS-like vs random partitioning (remote traffic, comm time)",
		Run:   runAblationPartition,
	})
	register(Experiment{
		ID:    "xablation-negsampling",
		Title: "Ablation: chunked vs independent negative sampling (distinct rows per batch)",
		Run:   runAblationNegSampling,
	})
	register(Experiment{
		ID:    "xablation-quantize",
		Title: "Extension: 8-bit wire quantization stacked on HET-KG (bytes, time, MRR)",
		Run:   runAblationQuantize,
	})
	register(Experiment{
		ID:    "xablation-adversarial",
		Title: "Extension: self-adversarial negative weighting vs uniform (MRR)",
		Run:   runAblationAdversarial,
	})
	register(Experiment{
		ID:    "xablation-bandwidth",
		Title: "Sensitivity: HET-KG's advantage over DGL-KE vs network bandwidth (§II claim)",
		Run:   runAblationBandwidth,
	})
	register(Experiment{
		ID:    "xablation-hardnegs",
		Title: "Extension: degree-weighted (deg^0.75) vs uniform negative corruption",
		Run:   runAblationHardNegs,
	})
	register(Experiment{
		ID:    "xtheory-staleness",
		Title: "§IV-C check: bounded staleness converges; unbounded staleness degrades",
		Run:   runTheoryStaleness,
	})
	register(Experiment{
		ID:    "xablation-strategy",
		Title: "Ablation: CPS vs DPS hit ratio across cache sizes",
		Run:   runAblationStrategy,
	})
}

func runAblationPartition(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-partition",
		Title:  "DGL-KE on fb15k-like, 4 machines: partitioner effect",
		Header: []string{"Partitioner", "EdgeCutFrac", "RemoteBytes", "Comm", "Total"},
	}
	g, _ := dataset.ByName("fb15k", o.Scale, o.Seed)
	for _, pname := range []string{"metis", "ldg", "random"} {
		o.logf("xablation-partition: %s ...", pname)
		p, err := partition.New(pname, o.Seed)
		if err != nil {
			return nil, err
		}
		pr, err := p.Partition(g, 4)
		if err != nil {
			return nil, err
		}
		res, err := o.run(RunConfig{
			Dataset:         "fb15k",
			Scale:           o.Scale,
			System:          SystemDGLKE,
			ModelName:       "transe",
			PartitionerName: pname,
			Epochs:          1,
			EvalEvery:       -1,
			Seed:            o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("xablation-partition (%s): %w", pname, err)
		}
		t.AddRow(pname, pr.CutFraction(g), res.Traffic.RemoteBytes,
			fmtDur(res.Comm), fmtDur(res.Total()))
	}
	t.Note("expected: the min-cut partitioner lowers the edge cut and with it remote pull volume")
	return t, nil
}

func runAblationNegSampling(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-negsampling",
		Title:  "Distinct embedding rows pulled per batch: independent vs chunked corruption",
		Header: []string{"Mode", "b_p", "b_n", "b_c", "AvgDistinctRows"},
	}
	g, _ := dataset.ByName("fb15k", o.Scale, o.Seed)
	cases := []struct {
		name  string
		chunk int
	}{
		{"independent", 1},
		{"chunked", 16},
	}
	for _, c := range cases {
		smp, err := sampler.New(sampler.Config{
			BatchSize: 128, NegPerPos: 16, ChunkSize: c.chunk, NumEntity: g.NumEntity,
		}, g, rand.New(rand.NewSource(o.Seed)))
		if err != nil {
			return nil, err
		}
		totalRows := 0
		const batches = 30
		for i := 0; i < batches; i++ {
			b := smp.Next()
			ents, rels := b.DistinctIDs()
			totalRows += len(ents) + len(rels)
		}
		t.AddRow(c.name, 128, 16, c.chunk, fmt.Sprintf("%.1f", float64(totalRows)/batches))
	}
	t.Note("§V: chunking reduces sampling/pull complexity from O(b_p·d·(b_n+1)) to O(b_p·d + b_p·k·d/b_c)")
	return t, nil
}

func runAblationStrategy(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-strategy",
		Title:  "CPS vs DPS hit ratio across cache sizes (fb15k-like)",
		Header: []string{"CacheSize(%ids)", "CPS hit", "DPS hit"},
	}
	g, _ := dataset.ByName("fb15k", o.Scale, o.Seed)
	universe := g.NumEntity + g.NumRel
	for _, pct := range []float64{1, 5, 15} {
		capacity := int(float64(universe) * pct / 100)
		if capacity < 1 {
			capacity = 1
		}
		row := []string{fmt.Sprintf("%.0f%%", pct)}
		for _, sys := range []System{SystemHETKGC, SystemHETKGD} {
			o.logf("xablation-strategy: %.0f%% / %s ...", pct, sys)
			res, err := o.run(RunConfig{
				Dataset:       "fb15k",
				Scale:         o.Scale,
				System:        sys,
				ModelName:     "transe",
				Epochs:        2,
				EvalEvery:     -1,
				CacheCapacity: capacity,
				Seed:          o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("xablation-strategy: %w", err)
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*res.HitRatio))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("§IV-B: DPS tracks the short-term access pattern, matching or beating CPS under tight capacity")
	return t, nil
}

func runAblationQuantize(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-quantize",
		Title:  "HET-KG-C on fb15k-like, 4 machines: float32 vs int8 payloads",
		Header: []string{"Wire", "RemoteBytes", "Comm", "MRR"},
	}
	for _, quant := range []bool{false, true} {
		name := "float32"
		if quant {
			name = "int8"
		}
		o.logf("xablation-quantize: %s ...", name)
		res, err := o.run(RunConfig{
			Dataset:      "fb15k",
			Scale:        o.Scale,
			System:       SystemHETKGC,
			ModelName:    "transe",
			Epochs:       2,
			Quantize8Bit: quant,
			Seed:         o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("xablation-quantize (%s): %w", name, err)
		}
		t.AddRow(name, res.Traffic.RemoteBytes, fmtDur(res.Comm), res.Final.MRR)
	}
	t.Note("expected: ~4x fewer payload bytes; quantization noise costs little MRR at 8 bits")
	return t, nil
}

func runAblationAdversarial(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-adversarial",
		Title:  "HET-KG-D on fb15k-like: negative-sample weighting",
		Header: []string{"Weighting", "MRR", "Hits@10", "FinalLoss"},
	}
	for _, temp := range []float32{0, 1} {
		name := "uniform"
		if temp > 0 {
			name = "self-adversarial(α=1)"
		}
		o.logf("xablation-adversarial: %s ...", name)
		res, err := o.run(RunConfig{
			Dataset:         "fb15k",
			Scale:           o.Scale,
			System:          SystemHETKGD,
			ModelName:       "transe",
			Epochs:          3,
			AdversarialTemp: temp,
			Seed:            o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("xablation-adversarial (%s): %w", name, err)
		}
		t.AddRow(name, res.Final.MRR, res.Final.Hits[10],
			fmt.Sprintf("%.4f", res.Epochs[len(res.Epochs)-1].Loss))
	}
	t.Note("extension beyond the paper: focusing gradient mass on hard negatives (RotatE-style)")
	return t, nil
}

// runTheoryStaleness checks the convergence analysis of §IV-C empirically:
// with the staleness bound P in force, partial-stale training converges like
// the synchronous baseline; with the bound removed (no refresh, ever),
// cached replicas drift without limit and final quality suffers. This is
// the empirical counterpart of the bounded-delay assumption (4) in the
// paper's proof sketch.
func runTheoryStaleness(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xtheory-staleness",
		Title:  "HET-KG-C on fb15k-like: bounded (P=8) vs unbounded staleness",
		Header: []string{"Staleness", "Epoch", "Loss", "MRR"},
	}
	cases := []struct {
		name      string
		unbounded bool
	}{
		{"bounded(P=8)", false},
		{"unbounded", true},
	}
	for _, c := range cases {
		o.logf("xtheory-staleness: %s ...", c.name)
		res, err := o.run(RunConfig{
			Dataset:          "fb15k",
			Scale:            o.Scale,
			System:           SystemHETKGC,
			ModelName:        "transe",
			Epochs:           fig5Epochs(o),
			DisableCacheSync: c.unbounded,
			Seed:             o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("xtheory-staleness (%s): %w", c.name, err)
		}
		for _, e := range res.Epochs {
			t.AddRow(c.name, e.Epoch, fmt.Sprintf("%.4f", e.Loss), e.MRR)
		}
	}
	t.Note("§IV-C: with T > O(K²) iterations and staleness bounded by K, convergence matches synchronous training;")
	t.Note("removing the bound violates assumption (4) of the proof sketch and the gap shows up in loss and MRR")
	return t, nil
}

// runAblationBandwidth sweeps the inter-machine bandwidth and compares
// DGL-KE and HET-KG epoch time. §II argues communication cost "will become
// expensive ... especially in a low bandwidth network environment" — so the
// cache's relative advantage should grow as the link slows.
func runAblationBandwidth(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-bandwidth",
		Title:  "Epoch time vs link bandwidth (TransE, freebase86m-like, 4 machines)",
		Header: []string{"Bandwidth", "DGL-KE comm", "HET-KG-C comm", "Comm saving"},
	}
	for _, mbps := range []float64{100, 1000, 10000} {
		cm := netsim.Default1Gbps()
		cm.RemoteBandwidthBps = mbps * 1e6 / 8
		// Compare the communication component only: it is computed
		// deterministically from metered bytes, so the comparison is free
		// of wall-clock jitter in the measured computation.
		var comms [2]float64
		for i, sys := range []System{SystemDGLKE, SystemHETKGC} {
			o.logf("xablation-bandwidth: %.0f Mbps / %s ...", mbps, sys)
			res, err := o.run(RunConfig{
				Dataset:   "freebase86m",
				Scale:     o.Scale,
				System:    sys,
				ModelName: "transe",
				Dim:       commDim(o),
				BatchSize: commBatch(o),
				Epochs:    1,
				EvalEvery: -1,
				CostModel: cm,
				Seed:      o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("xablation-bandwidth (%.0f, %s): %w", mbps, sys, err)
			}
			comms[i] = res.Comm.Seconds()
		}
		adv := 0.0
		if comms[0] > 0 {
			adv = (comms[0] - comms[1]) / comms[0] * 100
		}
		t.AddRow(fmt.Sprintf("%.0f Mbps", mbps),
			fmt.Sprintf("%.3fs", comms[0]),
			fmt.Sprintf("%.3fs", comms[1]),
			fmt.Sprintf("%+.1f%%", adv))
	}
	t.Note("§II: the cache's byte saving is a fixed fraction; its absolute time value grows as the link slows")
	return t, nil
}

func runAblationHardNegs(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "xablation-hardnegs",
		Title:  "HET-KG-C on fb15k-like: negative corruption distribution",
		Header: []string{"Corruption", "MRR", "Hits@10", "FinalLoss"},
	}
	for _, weighted := range []bool{false, true} {
		name := "uniform"
		if weighted {
			name = "degree^0.75"
		}
		o.logf("xablation-hardnegs: %s ...", name)
		res, err := o.run(RunConfig{
			Dataset:                 "fb15k",
			Scale:                   o.Scale,
			System:                  SystemHETKGC,
			ModelName:               "transe",
			Epochs:                  3,
			DegreeWeightedNegatives: weighted,
			Seed:                    o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("xablation-hardnegs (%s): %w", name, err)
		}
		t.AddRow(name, res.Final.MRR, res.Final.Hits[10],
			fmt.Sprintf("%.4f", res.Epochs[len(res.Epochs)-1].Loss))
	}
	t.Note("extension: corrupting with high-degree entities yields harder negatives on skewed graphs")
	return t, nil
}
