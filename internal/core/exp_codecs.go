package core

import (
	"fmt"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/plan/benchfmt"
	"hetkg/internal/ps"
)

// Wire-codec sweep: the negotiated codec layer's headline numbers. One
// training run per codec profile on identical data and seeds, reporting the
// pull+push payload bytes before and after encoding (ps.codec.bytes_raw /
// ps.codec.bytes_wire), the wire bytes per iteration, wall time, and the
// final MRR — the compression-vs-convergence trade the profiles span. The
// delta-int8 row is the PR's acceptance claim: ≥3x smaller wire payloads
// than fp32 with no accuracy change.

func init() {
	register(Experiment{
		ID:    "codecs",
		Title: "Wire codec sweep: payload compression vs convergence per profile  [extension]",
		Run:   runCodecs,
	})
}

func runCodecs(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "codecs",
		Title:  "Wire codecs on fb15k-like (HET-KG-D, TransE)",
		Header: []string{"Codec", "RawMB", "WireMB", "Ratio", "B/iter", "Wall", "MRR"},
	}
	// commDim keeps rows wide enough (>= 64 floats) that per-row codec
	// headers are noise; at tiny widths the 5-byte delta header eats the
	// int8 savings and no profile could show its asymptotic ratio.
	dim := commDim(o)
	const epochs = 2
	const machines = 4
	t.Bench = &benchfmt.File{
		Name:  "codecs",
		Scale: o.Scale.String(),
		Seed:  o.Seed,
		Meta: map[string]string{
			"dataset":  "fb15k",
			"model":    "transe",
			"system":   "hetkg-d",
			"dim":      fmt.Sprint(dim),
			"machines": fmt.Sprint(machines),
			"epochs":   fmt.Sprint(epochs),
		},
	}
	for _, codec := range []string{
		ps.ProfileFP32, ps.ProfileFP16, ps.ProfileInt8, ps.ProfileDeltaInt8, ps.ProfileTopK,
	} {
		o.logf("codecs: %s ...", codec)
		start := time.Now()
		res, err := o.run(RunConfig{
			Dataset:   "fb15k",
			Scale:     o.Scale,
			System:    SystemHETKGD,
			ModelName: "transe",
			Dim:       dim,
			Machines:  machines,
			Epochs:    epochs,
			Codec:     codec,
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("codecs (%s): %w", codec, err)
		}
		wall := time.Since(start)
		raw := res.Metrics.Counter(metrics.MPSCodecBytesRaw).Value()
		wire := res.Metrics.Counter(metrics.MPSCodecBytesWire).Value()
		iters := res.Metrics.Counter(metrics.MTrainIterations).Value()
		ratio := 0.0
		if wire > 0 {
			ratio = float64(raw) / float64(wire)
		}
		perIter := 0.0
		if iters > 0 {
			perIter = float64(wire) / float64(iters)
		}
		t.AddRow(codec,
			fmt.Sprintf("%.2f", float64(raw)/1e6),
			fmt.Sprintf("%.2f", float64(wire)/1e6),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.0f", perIter),
			fmtDur(wall),
			fmt.Sprintf("%.3f", res.Final.MRR))
		t.Bench.Rows = append(t.Bench.Rows, benchfmt.Row{
			Name: "codec=" + codec,
			Values: map[string]float64{
				"bytes_raw":      float64(raw),
				"bytes_wire":     float64(wire),
				"ratio":          ratio,
				"bytes_per_iter": perIter,
				"wall_ms":        float64(wall.Milliseconds()),
				"mrr":            res.Final.MRR,
			},
		})
	}
	t.Note("ratio = codec payload bytes before / after encoding (pull + push, per-row headers included)")
	t.Note("claim: delta-int8 >= 3x vs fp32's 1x with matching MRR; topk trades MRR noise for the sparsest pushes")
	return t, nil
}
