package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/ps"
)

// Wire-codec sweep: the negotiated codec layer's headline numbers. One
// training run per codec profile on identical data and seeds, reporting the
// pull+push payload bytes before and after encoding (ps.codec.bytes_raw /
// ps.codec.bytes_wire), the wire bytes per iteration, wall time, and the
// final MRR — the compression-vs-convergence trade the profiles span. The
// delta-int8 row is the PR's acceptance claim: ≥3x smaller wire payloads
// than fp32 with no accuracy change.

func init() {
	register(Experiment{
		ID:    "codecs",
		Title: "Wire codec sweep: payload compression vs convergence per profile  [extension]",
		Run:   runCodecs,
	})
}

// codecBenchRow is one codec's measurements in BENCH_codecs.json.
type codecBenchRow struct {
	Codec        string  `json:"codec"`
	BytesRaw     int64   `json:"bytes_raw"`
	BytesWire    int64   `json:"bytes_wire"`
	Ratio        float64 `json:"ratio"`
	BytesPerIter float64 `json:"bytes_per_iter"`
	WallMS       float64 `json:"wall_ms"`
	MRR          float64 `json:"mrr"`
}

// codecBenchFile is the BENCH_codecs.json schema.
type codecBenchFile struct {
	Schema   string          `json:"schema"`
	Dataset  string          `json:"dataset"`
	Scale    string          `json:"scale"`
	Dim      int             `json:"dim"`
	Machines int             `json:"machines"`
	Epochs   int             `json:"epochs"`
	Seed     int64           `json:"seed"`
	Rows     []codecBenchRow `json:"rows"`
}

func runCodecs(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "codecs",
		Title:  "Wire codecs on fb15k-like (HET-KG-D, TransE)",
		Header: []string{"Codec", "RawMB", "WireMB", "Ratio", "B/iter", "Wall", "MRR"},
	}
	// commDim keeps rows wide enough (>= 64 floats) that per-row codec
	// headers are noise; at tiny widths the 5-byte delta header eats the
	// int8 savings and no profile could show its asymptotic ratio.
	dim := commDim(o)
	const epochs = 2
	bench := codecBenchFile{
		Schema:   "hetkg-bench-codecs/v1",
		Dataset:  "fb15k",
		Scale:    o.Scale.String(),
		Dim:      dim,
		Machines: 4,
		Epochs:   epochs,
		Seed:     o.Seed,
	}
	for _, codec := range []string{
		ps.ProfileFP32, ps.ProfileFP16, ps.ProfileInt8, ps.ProfileDeltaInt8, ps.ProfileTopK,
	} {
		o.logf("codecs: %s ...", codec)
		start := time.Now()
		res, err := o.run(RunConfig{
			Dataset:   "fb15k",
			Scale:     o.Scale,
			System:    SystemHETKGD,
			ModelName: "transe",
			Dim:       dim,
			Machines:  bench.Machines,
			Epochs:    epochs,
			Codec:     codec,
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("codecs (%s): %w", codec, err)
		}
		wall := time.Since(start)
		raw := res.Metrics.Counter(metrics.MPSCodecBytesRaw).Value()
		wire := res.Metrics.Counter(metrics.MPSCodecBytesWire).Value()
		iters := res.Metrics.Counter(metrics.MTrainIterations).Value()
		ratio := 0.0
		if wire > 0 {
			ratio = float64(raw) / float64(wire)
		}
		perIter := 0.0
		if iters > 0 {
			perIter = float64(wire) / float64(iters)
		}
		t.AddRow(codec,
			fmt.Sprintf("%.2f", float64(raw)/1e6),
			fmt.Sprintf("%.2f", float64(wire)/1e6),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.0f", perIter),
			fmtDur(wall),
			fmt.Sprintf("%.3f", res.Final.MRR))
		bench.Rows = append(bench.Rows, codecBenchRow{
			Codec:        codec,
			BytesRaw:     raw,
			BytesWire:    wire,
			Ratio:        ratio,
			BytesPerIter: perIter,
			WallMS:       float64(wall.Milliseconds()),
			MRR:          res.Final.MRR,
		})
	}
	t.Note("ratio = codec payload bytes before / after encoding (pull + push, per-row headers included)")
	t.Note("claim: delta-int8 >= 3x vs fp32's 1x with matching MRR; topk trades MRR noise for the sparsest pushes")
	if o.BenchDir != "" {
		if err := writeCodecBench(o.BenchDir, bench); err != nil {
			return nil, err
		}
		t.Note("snapshot written to %s", filepath.Join(o.BenchDir, "BENCH_codecs.json"))
	}
	return t, nil
}

// writeCodecBench writes the machine-readable sweep snapshot under dir.
func writeCodecBench(dir string, bench codecBenchFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("codecs: creating bench directory: %w", err)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return fmt.Errorf("codecs: encoding snapshot: %w", err)
	}
	path := filepath.Join(dir, "BENCH_codecs.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("codecs: writing snapshot: %w", err)
	}
	return nil
}
