package core

import (
	"net"
	"testing"

	"hetkg/internal/dataset"
)

// TestMultiProcessDeploymentMatchesLocal stands up the cmd/hetkg-ps
// deployment shape — independently-derived shards behind real TCP
// listeners — and verifies a trainer pointed at them produces bit-identical
// embeddings to the all-in-one-process run. This is the correctness proof
// of the "no state transfer" deterministic-derivation design.
func TestMultiProcessDeploymentMatchesLocal(t *testing.T) {
	rc := RunConfig{
		Dataset:  "fb15k",
		Scale:    dataset.Tiny,
		System:   SystemHETKGC,
		Machines: 2,
		Epochs:   1,
		Seed:     31,
	}

	// "Processes": each shard built independently from the config.
	var addrs []string
	for m := 0; m < rc.Machines; m++ {
		shard, err := BuildShard(rc, m)
		if err != nil {
			t.Fatalf("BuildShard(%d): %v", m, err)
		}
		if shard.NumRows() == 0 {
			t.Fatalf("shard %d owns no rows", m)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		srv := shard
		go serveShard(l, srv)
	}

	remote := rc
	remote.ShardAddrs = addrs
	remoteRes, err := Run(remote)
	if err != nil {
		t.Fatalf("remote-shard run: %v", err)
	}
	localRes, err := Run(rc)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	for i := range localRes.Entities.Data {
		if remoteRes.Entities.Data[i] != localRes.Entities.Data[i] {
			t.Fatalf("multi-process and local runs diverge at entity datum %d", i)
		}
	}
	for i := range localRes.Relations.Data {
		if remoteRes.Relations.Data[i] != localRes.Relations.Data[i] {
			t.Fatalf("multi-process and local runs diverge at relation datum %d", i)
		}
	}
	if remoteRes.Final.MRR != localRes.Final.MRR {
		t.Errorf("MRR differs: remote %v vs local %v", remoteRes.Final.MRR, localRes.Final.MRR)
	}
}

func TestShardAddrCountValidation(t *testing.T) {
	rc := RunConfig{
		Dataset:    "fb15k",
		Scale:      dataset.Tiny,
		System:     SystemDGLKE,
		Machines:   2,
		Epochs:     1,
		Seed:       31,
		ShardAddrs: []string{"127.0.0.1:1"},
	}
	if _, err := Run(rc); err == nil {
		t.Error("mismatched shard address count accepted")
	}
}

func TestBuildShardValidation(t *testing.T) {
	rc := RunConfig{Dataset: "fb15k", Scale: dataset.Tiny, Machines: 2, Seed: 1}
	if _, err := BuildShard(rc, 5); err == nil {
		t.Error("out-of-range machine accepted")
	}
	bad := rc
	bad.Dataset = "nope"
	if _, err := BuildShard(bad, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	bad = rc
	bad.ModelName = "nope"
	if _, err := BuildShard(bad, 0); err == nil {
		t.Error("unknown model accepted")
	}
}
