package core

import (
	"fmt"
	"time"

	"hetkg/internal/dataset"
)

// Table I: communication fraction of DGL-KE epoch time as the cluster
// grows; Fig. 6: run-time speedup vs number of workers; Fig. 7: per-epoch
// computation/communication breakdown per system.

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "DGL-KE communication share of epoch time vs cluster size on Freebase-86m-like  [paper Table I]",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Scalability: speedup vs number of machines on Freebase-86m-like  [paper Fig. 6]",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Per-epoch computation vs communication per system and dataset  [paper Fig. 7]",
		Run:   runFig7,
	})
}

// commDim picks the embedding dimension for the communication experiments.
// The paper trains at d=400, where per-machine computation is heavy enough
// that distributing it pays off despite the 1 Gbps network; the tiny/small
// accuracy defaults (d=16/64) would put the whole sweep in a
// network-saturated regime no cluster size can win. Fig. 6 and Table I need
// the paper's compute/communication balance, so they use a larger d.
func commDim(o Options) int {
	switch o.Scale {
	case dataset.Tiny:
		return 64
	case dataset.Paper:
		return 400
	default:
		return 128
	}
}

// commBatch mirrors the paper's large-batch regime (b=512 on Freebase-86m):
// big batches amortize per-message latency, which is what makes the traffic
// bandwidth-bound.
func commBatch(o Options) int {
	if o.Scale == dataset.Tiny {
		return 128
	}
	return 256
}

func runTable1(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "table1",
		Title:  "DGL-KE (TransE) time breakdown on freebase86m-like",
		Header: []string{"Machines", "Comp", "Comm", "Total", "Comm%"},
	}
	for _, machines := range []int{1, 2, 4, 8} {
		o.logf("table1: %d machines ...", machines)
		res, err := o.run(RunConfig{
			Dataset:   "freebase86m",
			Scale:     o.Scale,
			System:    SystemDGLKE,
			ModelName: "transe",
			Dim:       commDim(o),
			BatchSize: commBatch(o),
			Machines:  machines,
			Epochs:    1,
			EvalEvery: -1, // timing only
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 (%d machines): %w", machines, err)
		}
		frac := 0.0
		if res.Total() > 0 {
			frac = float64(res.Comm) / float64(res.Total())
		}
		t.AddRow(machines, fmtDur(res.Comp), fmtDur(res.Comm), fmtDur(res.Total()),
			fmt.Sprintf("%.0f%%", 100*frac))
	}
	t.Note("paper shape: communication share grows with the cluster and dominates (>70%% at 4 machines, d=400, 1 Gbps)")
	return t, nil
}

func runFig6(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig6",
		Title:  "Speedup over the 1-machine run vs machines (TransE, freebase86m-like)",
		Header: []string{"System", "Machines", "EpochTime", "Speedup"},
	}
	systems := []System{SystemPBG, SystemDGLKE, SystemHETKGC, SystemHETKGD}
	for _, sys := range systems {
		var baseline float64
		for _, machines := range []int{1, 2, 4, 8} {
			o.logf("fig6: %s / %d machines ...", sys, machines)
			res, err := o.run(RunConfig{
				Dataset:   "freebase86m",
				Scale:     o.Scale,
				System:    sys,
				ModelName: "transe",
				Dim:       commDim(o),
				BatchSize: commBatch(o),
				Machines:  machines,
				Epochs:    1,
				EvalEvery: -1,
				Seed:      o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig6 (%s, %d): %w", sys, machines, err)
			}
			total := res.Total().Seconds()
			if machines == 1 {
				baseline = total
			}
			speedup := 0.0
			if total > 0 {
				speedup = baseline / total
			}
			t.AddRow(string(sys), machines, fmt.Sprintf("%.2fs", total),
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	t.Note("paper shape: PBG scales worst (lock-server + dense relations); HET-KG's speedup ≈30%% above DGL-KE's")
	t.Note("computation is measured on one shared CPU; per-machine parallel compute is modeled by the per-worker critical path")
	return t, nil
}

func runFig7(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig7",
		Title:  "Per-epoch computation and communication time (TransE, 4 machines)",
		Header: []string{"Dataset", "System", "Comp/epoch", "Comm/epoch", "Total/epoch"},
	}
	for _, ds := range dataset.Names() {
		for _, sys := range Systems() {
			o.logf("fig7: %s / %s ...", ds, sys)
			res, err := o.run(RunConfig{
				Dataset:   ds,
				Scale:     o.Scale,
				System:    sys,
				ModelName: "transe",
				Dim:       commDim(o),
				BatchSize: commBatch(o),
				Epochs:    2,
				EvalEvery: -1,
				Seed:      o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7 (%s/%s): %w", ds, sys, err)
			}
			n := time.Duration(len(res.Epochs))
			if n <= 0 {
				n = 1
			}
			t.AddRow(ds, string(sys),
				fmtDur(res.Comp/n), fmtDur(res.Comm/n), fmtDur(res.Total()/n))
		}
	}
	t.Note("paper shape: DGL-KE and HET-KG compute alike; HET-KG communicates less; PBG's communication dwarfs both")
	return t, nil
}
