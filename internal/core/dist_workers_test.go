package core

import (
	"net"
	"sync"
	"testing"

	"hetkg/internal/dataset"
)

// TestFullyDistributedWorkers runs the complete multi-process topology:
// two shard "processes" (independently derived PS shards behind TCP listeners) and two
// trainer "processes", each driving only its own machine's workers against
// the shared shards, concurrently. This is N× hetkg-ps + N× hetkg-train
// -machine m, the paper's actual deployment shape.
func TestFullyDistributedWorkers(t *testing.T) {
	base := RunConfig{
		Dataset:  "fb15k",
		Scale:    dataset.Tiny,
		System:   SystemHETKGC,
		Machines: 2,
		Epochs:   2,
		Seed:     37,
	}

	var addrs []string
	for m := 0; m < base.Machines; m++ {
		shard, err := BuildShard(base, m)
		if err != nil {
			t.Fatalf("BuildShard(%d): %v", m, err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		go serveShard(l, shard)
	}

	var wg sync.WaitGroup
	results := make([]*runOutcome, base.Machines)
	for m := 0; m < base.Machines; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rc := base
			rc.ShardAddrs = addrs
			rc.LocalMachines = []int{m}
			res, err := Run(rc)
			results[m] = &runOutcome{err: err}
			if err != nil {
				return
			}
			results[m].lossFirst = res.Epochs[0].Loss
			results[m].lossLast = res.Epochs[len(res.Epochs)-1].Loss
			results[m].mrr = res.Final.MRR
		}(m)
	}
	wg.Wait()

	for m, out := range results {
		if out.err != nil {
			t.Fatalf("trainer %d failed: %v", m, out.err)
		}
		if out.lossLast >= out.lossFirst {
			t.Errorf("trainer %d loss did not decrease: %.4f → %.4f", m, out.lossFirst, out.lossLast)
		}
		// Each trainer evaluates against the SHARED shard state, which has
		// seen both trainers' pushes.
		if out.mrr <= 0 {
			t.Errorf("trainer %d MRR = %v", m, out.mrr)
		}
	}
}

type runOutcome struct {
	err                 error
	lossFirst, lossLast float64
	mrr                 float64
}

func TestLocalMachinesSingleProcessSubset(t *testing.T) {
	// Running only machine 0's workers in-process must still work (its
	// shard co-hosted, the other shard idle) and touch only a subset of
	// the data.
	rc := RunConfig{
		Dataset:       "fb15k",
		Scale:         dataset.Tiny,
		System:        SystemDGLKE,
		Machines:      2,
		Epochs:        1,
		Seed:          37,
		LocalMachines: []int{0},
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatalf("subset run: %v", err)
	}
	full := rc
	full.LocalMachines = nil
	fres, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	subsetBytes := res.Traffic.LocalBytes + res.Traffic.RemoteBytes
	fullBytes := fres.Traffic.LocalBytes + fres.Traffic.RemoteBytes
	if subsetBytes >= fullBytes {
		t.Errorf("machine-0-only run moved %d bytes, full run %d — no reduction", subsetBytes, fullBytes)
	}
}
