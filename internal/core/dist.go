package core

import (
	"fmt"
	"math/rand"
	"net"
	"os"

	"hetkg/internal/cache"
	"hetkg/internal/dataset"
	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/train"
)

// Multi-process deployment: every process — the trainer and each
// cmd/hetkg-ps shard — derives the identical cluster state from the same
// RunConfig, because dataset generation, the train/valid/test split, the
// graph partition, and per-key embedding initialization are all pure
// functions of the config's seeds. A shard process therefore needs no state
// transfer at startup: it computes its own rows and starts serving.

// clusterSpec derives the parameter-server cluster configuration a
// RunConfig implies (after the same preprocessing Run performs).
func clusterSpec(rc RunConfig) (ps.ClusterConfig, error) {
	rc.defaults()
	g := rc.Graph
	if g == nil {
		var ok bool
		g, ok = dataset.ByNameCached(rc.Dataset, rc.Scale, rc.Seed, rc.Artifacts)
		if !ok {
			return ps.ClusterConfig{}, fmt.Errorf("core: unknown dataset %q", rc.Dataset)
		}
	}
	sp, err := kg.SplitTriples(g, rand.New(rand.NewSource(rc.Seed+17)), 0.05, 0.05)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	if rc.InverseRelations {
		sp.Train = kg.AddInverses(sp.Train)
	}
	mdl, err := model.New(rc.ModelName)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	part, err := partition.New(rc.PartitionerName, rc.Seed)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	pr, err := partition.Cached(part, rc.Artifacts).Partition(sp.Train, rc.Machines)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	lr := rc.LR
	name := rc.OptimizerName
	if name == "" {
		name = "adagrad"
	}
	if _, err := opt.New(name, lr); err != nil {
		return ps.ClusterConfig{}, err
	}
	return ps.ClusterConfig{
		NumMachines:  rc.Machines,
		EntityPart:   pr.EntityPart,
		NumRelations: g.NumRel,
		EntityDim:    mdl.EntityDim(rc.Dim),
		RelationDim:  mdl.RelationDim(rc.Dim),
		NewOptimizer: func() opt.Optimizer {
			o, _ := opt.New(name, lr)
			return o
		},
		Seed: rc.Seed,
	}, nil
}

// serveShard runs a shard's accept loop (mirrors cmd/hetkg-ps's serving).
func serveShard(l net.Listener, s *ps.Server) { ps.ServeTCP(l, s) }

// runElastic joins the cluster at rc.JoinAddr and trains whatever the
// coordinator assigns (Run's elastic-mode dispatch). The registration
// happens here rather than in train.TrainElastic because the join reply's
// shard list is needed to build the transport.
func runElastic(rc RunConfig, tc train.Config) (*train.Result, error) {
	switch rc.System {
	case SystemDGLKE, SystemHETKGC, SystemHETKGD:
	default:
		return nil, fmt.Errorf("core: system %q does not support elastic mode", rc.System)
	}
	label := rc.WorkerLabel
	if label == "" {
		host, _ := os.Hostname()
		label = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	// Bound each membership round trip relative to the heartbeat cadence,
	// so a dead coordinator surfaces within a few intervals.
	cc, err := ps.DialCoordinator(rc.JoinAddr, 3*rc.HeartbeatInterval)
	if err != nil {
		return nil, err
	}
	defer cc.Close()
	join, err := cc.Join(ps.JoinRequest{Label: label, Preferred: rc.LocalMachines})
	if err != nil {
		return nil, fmt.Errorf("core: joining cluster at %s: %w", rc.JoinAddr, err)
	}
	if join.Partitions != rc.Machines {
		return nil, fmt.Errorf("core: coordinator runs %d partitions, -machines says %d (all processes must share the run configuration)",
			join.Partitions, rc.Machines)
	}
	if len(join.ShardAddrs) != rc.Machines {
		return nil, fmt.Errorf("core: coordinator advertised %d shard addresses for %d machines",
			len(join.ShardAddrs), rc.Machines)
	}
	codec := rc.Codec
	if codec == "" && rc.Quantize8Bit {
		codec = ps.ProfileInt8
	}
	addrs := join.ShardAddrs
	lcfg := rc.linkConfig()
	tc.NewTransport = func(*ps.Cluster) (ps.Transport, error) {
		return ps.DialTCPLink(addrs, codec, lcfg)
	}
	switch rc.System {
	case SystemHETKGC:
		tc.Cache.Strategy = cache.CPS
	case SystemHETKGD:
		tc.Cache.Strategy = cache.DPS
	}
	return train.TrainElastic(tc, train.ElasticConfig{
		Coordinator:    cc,
		Join:           join,
		Label:          label,
		HeartbeatEvery: rc.HeartbeatInterval,
		CkptDir:        rc.CkptDir,
		RecoverFrom:    rc.RecoverFrom,
		CkptEvery:      rc.CkptEvery,
		NoCache:        rc.System == SystemDGLKE,
		Logf:           rc.ClusterLogf,
	})
}

// BuildShard constructs the single parameter-server shard that machine m of
// the given run owns — what a cmd/hetkg-ps process hosts.
func BuildShard(rc RunConfig, machine int) (*ps.Server, error) {
	spec, err := clusterSpec(rc)
	if err != nil {
		return nil, err
	}
	return ps.NewClusterShard(spec, machine)
}
