package core

import (
	"fmt"
	"math/rand"
	"net"

	"hetkg/internal/dataset"
	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
)

// Multi-process deployment: every process — the trainer and each
// cmd/hetkg-ps shard — derives the identical cluster state from the same
// RunConfig, because dataset generation, the train/valid/test split, the
// graph partition, and per-key embedding initialization are all pure
// functions of the config's seeds. A shard process therefore needs no state
// transfer at startup: it computes its own rows and starts serving.

// clusterSpec derives the parameter-server cluster configuration a
// RunConfig implies (after the same preprocessing Run performs).
func clusterSpec(rc RunConfig) (ps.ClusterConfig, error) {
	rc.defaults()
	g := rc.Graph
	if g == nil {
		var ok bool
		g, ok = dataset.ByName(rc.Dataset, rc.Scale, rc.Seed)
		if !ok {
			return ps.ClusterConfig{}, fmt.Errorf("core: unknown dataset %q", rc.Dataset)
		}
	}
	sp, err := kg.SplitTriples(g, rand.New(rand.NewSource(rc.Seed+17)), 0.05, 0.05)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	if rc.InverseRelations {
		sp.Train = kg.AddInverses(sp.Train)
	}
	mdl, err := model.New(rc.ModelName)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	part, err := partition.New(rc.PartitionerName, rc.Seed)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	pr, err := part.Partition(sp.Train, rc.Machines)
	if err != nil {
		return ps.ClusterConfig{}, err
	}
	lr := rc.LR
	name := rc.OptimizerName
	if name == "" {
		name = "adagrad"
	}
	if _, err := opt.New(name, lr); err != nil {
		return ps.ClusterConfig{}, err
	}
	return ps.ClusterConfig{
		NumMachines:  rc.Machines,
		EntityPart:   pr.EntityPart,
		NumRelations: g.NumRel,
		EntityDim:    mdl.EntityDim(rc.Dim),
		RelationDim:  mdl.RelationDim(rc.Dim),
		NewOptimizer: func() opt.Optimizer {
			o, _ := opt.New(name, lr)
			return o
		},
		Seed: rc.Seed,
	}, nil
}

// serveShard runs a shard's accept loop (mirrors cmd/hetkg-ps's serving).
func serveShard(l net.Listener, s *ps.Server) { ps.ServeTCP(l, s) }

// BuildShard constructs the single parameter-server shard that machine m of
// the given run owns — what a cmd/hetkg-ps process hosts.
func BuildShard(rc RunConfig, machine int) (*ps.Server, error) {
	spec, err := clusterSpec(rc)
	if err != nil {
		return nil, err
	}
	return ps.NewClusterShard(spec, machine)
}
