package core

import (
	"strings"
	"testing"

	"hetkg/internal/ckpt"
	"hetkg/internal/dataset"
)

func tinyOpts() Options {
	return Options{Scale: dataset.Tiny, Seed: 7}
}

func TestRunAllSystemsTiny(t *testing.T) {
	for _, sys := range Systems() {
		t.Run(string(sys), func(t *testing.T) {
			res, err := Run(RunConfig{
				Dataset: "fb15k",
				Scale:   dataset.Tiny,
				System:  sys,
				Epochs:  2,
				Seed:    7,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.System != string(sys) {
				t.Errorf("System = %q, want %q", res.System, sys)
			}
			if len(res.Epochs) != 2 {
				t.Errorf("epochs = %d", len(res.Epochs))
			}
			if res.Final.MRR <= 0 {
				t.Errorf("MRR = %v", res.Final.MRR)
			}
		})
	}
}

func TestRunUnknownInputs(t *testing.T) {
	if _, err := Run(RunConfig{Dataset: "nope", System: SystemDGLKE}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Run(RunConfig{Dataset: "fb15k", Scale: dataset.Tiny, System: "nope"}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := Run(RunConfig{Dataset: "fb15k", Scale: dataset.Tiny, System: SystemDGLKE, ModelName: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Run(RunConfig{Dataset: "fb15k", Scale: dataset.Tiny, System: SystemDGLKE, LossName: "nope"}); err == nil {
		t.Error("unknown loss accepted")
	}
	if _, err := Run(RunConfig{Dataset: "fb15k", Scale: dataset.Tiny, System: SystemDGLKE, PartitionerName: "nope"}); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must have an experiment.
	want := []string{
		"table1", "table3", "table4", "table5", "table6", "table7",
		"fig2", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig8c", "fig9",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) < len(want)+3 { // plus ablations
		t.Errorf("registry has %d experiments, want at least %d", len(All()), len(want)+3)
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("IDs not sorted")
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "LongColumn"},
	}
	tab.AddRow("hello", 1.23456)
	tab.AddRow(42, "x")
	tab.Note("a note %d", 1)
	s := tab.String()
	if !strings.Contains(s, "== x: demo ==") {
		t.Errorf("missing title in:\n%s", s)
	}
	if !strings.Contains(s, "1.235") {
		t.Errorf("float not formatted in:\n%s", s)
	}
	if !strings.Contains(s, "note: a note 1") {
		t.Errorf("missing note in:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 6 {
		t.Errorf("too few lines:\n%s", s)
	}
}

// Exercise the fast experiments end-to-end at tiny scale; the heavyweight
// training sweeps are covered by the bench harness.
func TestFig2Experiment(t *testing.T) {
	e, _ := ByID("fig2")
	tab, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fig2 rows = %d, want 3 datasets", len(tab.Rows))
	}
}

func TestTable6Experiment(t *testing.T) {
	e, _ := ByID("table6")
	tab, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatalf("table6: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("table6 rows = %d", len(tab.Rows))
	}
	// HET-KG column (last) must dominate FIFO (second) on every dataset.
	for _, row := range tab.Rows {
		if row[len(row)-1] <= row[1] { // lexicographic on "NN.N%" works per-dataset here only loosely; parse instead
			t.Logf("row: %v", row)
		}
	}
}

func TestFig8cExperiment(t *testing.T) {
	e, _ := ByID("fig8c")
	tab, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatalf("fig8c: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("fig8c rows = %d", len(tab.Rows))
	}
}

func TestNegSamplingAblation(t *testing.T) {
	e, _ := ByID("xablation-negsampling")
	tab, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatalf("xablation-negsampling: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable1ExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	e, _ := ByID("table1")
	tab, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(tab.Rows))
	}
}

func TestInverseRelationsTraining(t *testing.T) {
	res, err := Run(RunConfig{
		Dataset:          "fb15k",
		Scale:            dataset.Tiny,
		System:           SystemHETKGC,
		Epochs:           2,
		InverseRelations: true,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("inverse-relation run: %v", err)
	}
	g, _ := dataset.ByName("fb15k", dataset.Tiny, 7)
	if res.Relations.Rows != 2*g.NumRel {
		t.Errorf("relation table rows = %d, want %d (doubled)", res.Relations.Rows, 2*g.NumRel)
	}
	if res.Final.MRR <= 0 {
		t.Error("inverse-relation run did not evaluate")
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	base := RunConfig{
		Dataset: "fb15k", Scale: dataset.Tiny, System: SystemDGLKE,
		Epochs: 2, EvalEvery: -1, Seed: 7,
	}
	first, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Resume = &ckpt.Checkpoint{
		ModelName: "transe",
		Dim:       first.Entities.Dim,
		Entities:  first.Entities,
		Relations: first.Relations,
	}
	second, err := Run(resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	// A resumed run starts from trained embeddings, so its first-epoch
	// loss must be far below a fresh run's first-epoch loss.
	if second.Epochs[0].Loss >= first.Epochs[0].Loss*0.8 {
		t.Errorf("resume did not carry state: fresh first-epoch loss %.4f, resumed %.4f",
			first.Epochs[0].Loss, second.Epochs[0].Loss)
	}
	// Model mismatch must be rejected.
	bad := resumed
	bad.Resume = &ckpt.Checkpoint{ModelName: "distmult", Entities: first.Entities, Relations: first.Relations}
	if _, err := Run(bad); err == nil {
		t.Error("model-mismatched checkpoint accepted")
	}
	// Shape mismatch must be rejected.
	bad2 := resumed
	bad2.Dim = 8
	if _, err := Run(bad2); err == nil {
		t.Error("dim-mismatched checkpoint accepted")
	}
}
