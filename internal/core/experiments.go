package core

import (
	"fmt"
	"sort"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the registry key ("table3", "fig8a", ...).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment.
	Run func(Options) (*Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID (tables first, then figures,
// then ablations, by construction of the IDs).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
