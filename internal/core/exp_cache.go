package core

import (
	"fmt"
	"math/rand"
	"sort"

	"hetkg/internal/cache"
	"hetkg/internal/dataset"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
)

// Fig. 2 (access-frequency micro-benchmark), Fig. 8(a/b/c) (cache size,
// staleness, entity-ratio sweeps), Fig. 9 (staleness vs convergence),
// Table VI (policy hit ratios), and Table VII (heterogeneity ablation).

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Embedding access-frequency skew per dataset  [paper Fig. 2]",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig8a",
		Title: "Impact of cache size: hit ratio and MRR  [paper Fig. 8(a)]",
		Run:   runFig8a,
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "Impact of bounded staleness P: local service ratio and MRR  [paper Fig. 8(b)]",
		Run:   runFig8b,
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "Impact of entity ratio in the hot-embedding table  [paper Fig. 8(c)]",
		Run:   runFig8c,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Epoch-MRR curves under staleness 1 vs 128  [paper Fig. 9]",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "table6",
		Title: "Cache hit ratio: FIFO / LRU / importance(LFU) / HET-KG  [paper Table VI]",
		Run:   runTable6,
	})
	register(Experiment{
		ID:    "table7",
		Title: "Node-heterogeneity quota: HET-KG vs HET-KG-N  [paper Table VII]",
		Run:   runTable7,
	})
}

// accessCensus samples numBatches mini-batches and returns the per-batch
// deduplicated access stream plus the prefetch census.
func accessCensus(ds string, scale dataset.Scale, seed int64, numBatches int) (*cache.Prefetched, []ps.Key, error) {
	g, ok := dataset.ByName(ds, scale, seed)
	if !ok {
		return nil, nil, fmt.Errorf("unknown dataset %q", ds)
	}
	smp, err := sampler.New(sampler.Config{
		BatchSize: 64, NegPerPos: 8, ChunkSize: 8, NumEntity: g.NumEntity,
	}, g, rand.New(rand.NewSource(seed+3)))
	if err != nil {
		return nil, nil, err
	}
	pre := cache.Prefetch(smp, numBatches)
	var stream []ps.Key
	for _, b := range pre.Batches {
		ents, rels := b.DistinctIDs()
		for _, e := range ents {
			stream = append(stream, ps.EntityKey(e))
		}
		for _, r := range rels {
			stream = append(stream, ps.RelationKey(r))
		}
	}
	return pre, stream, nil
}

func runFig2(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:    "fig2",
		Title: "Access share of the hottest entities/relations under uniform batch sampling",
		Header: []string{"Dataset", "Top1% ent share", "Top1% rel share",
			"Mean acc/entity", "Mean acc/relation"},
	}
	for _, ds := range dataset.Names() {
		o.logf("fig2: %s ...", ds)
		pre, _, err := accessCensus(ds, o.Scale, o.Seed, censusBatches(o))
		if err != nil {
			return nil, fmt.Errorf("fig2 (%s): %w", ds, err)
		}
		entShare := topFreqShare(pre.EntityFreq)
		relShare := topFreqShare(pre.RelationFreq)
		t.AddRow(ds,
			fmt.Sprintf("%.1f%%", 100*entShare),
			fmt.Sprintf("%.1f%%", 100*relShare),
			fmt.Sprintf("%.1f", meanFreq(pre.EntityFreq)),
			fmt.Sprintf("%.1f", meanFreq(pre.RelationFreq)))
	}
	t.Note("paper shape: access is heavily skewed; relations are accessed far more often per id than entities")
	t.Note("paper FB15k reference: top 1%% of entities ≈6%% of usage, top 1%% of relations ≈36%%")
	return t, nil
}

func runFig8a(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig8a",
		Title:  "HET-KG-C on freebase86m-like: cache size sweep",
		Header: []string{"CacheSize(%ids)", "HitRatio", "MRR", "Comm"},
	}
	g, _ := dataset.ByName("freebase86m", o.Scale, o.Seed)
	universe := g.NumEntity + g.NumRel
	for _, pct := range []float64{0.5, 1, 2, 5, 10, 20} {
		capacity := int(float64(universe) * pct / 100)
		if capacity < 1 {
			capacity = 1
		}
		o.logf("fig8a: capacity %.1f%% (%d rows) ...", pct, capacity)
		res, err := o.run(RunConfig{
			Dataset:       "freebase86m",
			Scale:         o.Scale,
			System:        SystemHETKGC,
			ModelName:     "transe",
			Epochs:        2,
			CacheCapacity: capacity,
			Seed:          o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig8a (%.1f%%): %w", pct, err)
		}
		t.AddRow(fmt.Sprintf("%.1f%%", pct), res.HitRatio, res.Final.MRR, fmtDur(res.Comm))
	}
	t.Note("paper shape: hit ratio rises with cache size; MRR stays flat (stale fraction remains small)")
	return t, nil
}

func runFig8b(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig8b",
		Title:  "HET-KG-C on freebase86m-like: staleness bound P sweep",
		Header: []string{"P", "LocalServiceRatio", "HitRatio", "MRR"},
	}
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		o.logf("fig8b: P=%d ...", p)
		res, err := o.run(RunConfig{
			Dataset:        "freebase86m",
			Scale:          o.Scale,
			System:         SystemHETKGC,
			ModelName:      "transe",
			Epochs:         2,
			CacheSyncEvery: p,
			Seed:           o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig8b (P=%d): %w", p, err)
		}
		t.AddRow(p, res.LocalServiceRatio(), res.HitRatio, res.Final.MRR)
	}
	t.Note("paper shape: hit ratio rises with P (stale rows count as refresh misses); MRR degrades past the knee")
	return t, nil
}

func runFig8c(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig8c",
		Title:  "Hit ratio vs entity share of the hot-embedding table (freebase86m-like)",
		Header: []string{"EntityRatio", "HitRatio"},
	}
	pre, stream, err := accessCensus("freebase86m", o.Scale, o.Seed, censusBatches(o))
	if err != nil {
		return nil, fmt.Errorf("fig8c: %w", err)
	}
	g, _ := dataset.ByName("freebase86m", o.Scale, o.Seed)
	capacity := (g.NumEntity + g.NumRel) / 20
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		keys, err := cache.Filter(pre, cache.FilterConfig{
			Capacity:       capacity,
			EntityFraction: ratio,
			Heterogeneity:  true,
		})
		if err != nil {
			return nil, err
		}
		table := make(map[ps.Key]struct{}, len(keys))
		for _, k := range keys {
			table[k] = struct{}{}
		}
		t.AddRow(fmt.Sprintf("%.0f%%", 100*ratio), cache.StaticHitRatio(table, stream))
	}
	t.Note("paper shape: hit ratio peaks at a small entity share (paper: 25%%) because relation rows are far hotter")
	return t, nil
}

func runFig9(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "fig9",
		Title:  "Epoch-MRR under staleness P=1 vs P=128 (HET-KG-C, freebase86m-like)",
		Header: []string{"P", "Epoch", "MRR", "Loss"},
	}
	for _, p := range []int{1, 128} {
		o.logf("fig9: P=%d ...", p)
		res, err := o.run(RunConfig{
			Dataset: "freebase86m",
			Scale:   o.Scale,
			// CPS: the periodic refresh is the *only* mechanism bounding
			// staleness (DPS's table rebuild would mask the P knob).
			System:         SystemHETKGC,
			ModelName:      "transe",
			Epochs:         fig5Epochs(o),
			CacheSyncEvery: p,
			Seed:           o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 (P=%d): %w", p, err)
		}
		for _, e := range res.Epochs {
			t.AddRow(p, e.Epoch, e.MRR, fmt.Sprintf("%.4f", e.Loss))
		}
	}
	t.Note("paper shape: with consistency (P=1) MRR converges higher; relaxing to P=128 costs final quality")
	return t, nil
}

func runTable6(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "table6",
		Title:  "Cache hit ratio of simple policies vs HET-KG's prefetch-filter selection",
		Header: []string{"Dataset", "FIFO", "LRU", "Importance(LFU)", "HET-KG", "Belady(bound)"},
	}
	for _, ds := range dataset.Names() {
		o.logf("table6: %s ...", ds)
		pre, stream, err := accessCensus(ds, o.Scale, o.Seed, censusBatches(o))
		if err != nil {
			return nil, fmt.Errorf("table6 (%s): %w", ds, err)
		}
		g, _ := dataset.ByName(ds, o.Scale, o.Seed)
		capacity := (g.NumEntity + g.NumRel) / 20
		if capacity < 4 {
			capacity = 4
		}
		fifo := cache.ReplayHitRatio(cache.NewFIFO(capacity), stream)
		lru := cache.ReplayHitRatio(cache.NewLRU(capacity), stream)
		lfu := cache.ReplayHitRatio(cache.NewLFU(capacity), stream)
		keys, err := cache.Filter(pre, cache.FilterConfig{
			Capacity: capacity, EntityFraction: 0.25, Heterogeneity: true,
		})
		if err != nil {
			return nil, err
		}
		table := make(map[ps.Key]struct{}, len(keys))
		for _, k := range keys {
			table[k] = struct{}{}
		}
		het := cache.StaticHitRatio(table, stream)
		belady := cache.Belady(capacity, stream)
		pc := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
		t.AddRow(ds, pc(fifo), pc(lru), pc(lfu), pc(het), pc(belady))
	}
	t.Note("paper shape (FB15k): FIFO 7.4%% < LRU 11.7%% < importance 15.2%% < HET-KG 25.2%%")
	t.Note("Belady's MIN is the offline optimum (extra analysis column): HET-KG's lookahead closes most of the gap to it")
	return t, nil
}

func runTable7(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:     "table7",
		Title:  "HET-KG (25/75 quota) vs HET-KG-N (frequency only)",
		Header: []string{"Dataset", "Variant", "MRR", "Hits@1", "Hits@10", "Time(s)", "HitRatio"},
	}
	for _, ds := range []string{"fb15k", "wn18"} {
		for _, hetero := range []bool{true, false} {
			name := "HET-KG"
			if !hetero {
				name = "HET-KG-N"
			}
			o.logf("table7: %s / %s ...", ds, name)
			res, err := o.run(RunConfig{
				Dataset:         ds,
				Scale:           o.Scale,
				System:          SystemHETKGC,
				ModelName:       "transe",
				NoHeterogeneity: !hetero,
				Seed:            o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("table7 (%s/%s): %w", ds, name, err)
			}
			t.AddRow(ds, name, res.Final.MRR, res.Final.Hits[1], res.Final.Hits[10],
				fmt.Sprintf("%.2f", res.Total().Seconds()), res.HitRatio)
		}
	}
	t.Note("paper shape: HET-KG-N runs slightly faster (hotter cache) but converges to lower accuracy")
	return t, nil
}

// censusBatches scales the micro-benchmark stream length.
func censusBatches(o Options) int {
	if o.Scale == dataset.Tiny {
		return 40
	}
	return 150
}

// topFreqShare is the share of total accesses going to the top 1% of ids.
func topFreqShare[K comparable](freq map[K]int) float64 {
	counts := make([]int, 0, len(freq))
	total := 0
	for _, c := range freq {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	k := len(counts) / 100
	if k < 1 {
		k = 1
	}
	top := 0
	for i := 0; i < k && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(total)
}

func meanFreq[K comparable](freq map[K]int) float64 {
	if len(freq) == 0 {
		return 0
	}
	total := 0
	for _, c := range freq {
		total += c
	}
	return float64(total) / float64(len(freq))
}
