// Package trace records training runs as JSONL files — one self-describing
// header line followed by one line per epoch — the raw material for
// plotting convergence curves and comparing runs outside this repository.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/train"
)

// Header is the first line of a trace file: run identity and configuration.
type Header struct {
	Kind     string `json:"kind"` // always "hetkg-trace/v1"
	System   string `json:"system"`
	Dataset  string `json:"dataset"`
	Model    string `json:"model"`
	Dim      int    `json:"dim"`
	Machines int    `json:"machines"`
	Seed     int64  `json:"seed"`
}

// Epoch is one per-epoch line.
type Epoch struct {
	Epoch    int     `json:"epoch"`
	Loss     float64 `json:"loss"`
	MRR      float64 `json:"mrr,omitempty"`
	CompMS   float64 `json:"comp_ms"`
	CommMS   float64 `json:"comm_ms"`
	CumMS    float64 `json:"cum_ms"`
	HitRatio float64 `json:"hit_ratio,omitempty"`
}

// Run is a fully parsed trace.
type Run struct {
	Header Header
	Epochs []Epoch
}

const kind = "hetkg-trace/v1"

// Write serializes a training result as a trace.
func Write(w io.Writer, hdr Header, res *train.Result) error {
	hdr.Kind = kind
	if hdr.System == "" {
		hdr.System = res.System
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	for _, e := range res.Epochs {
		if err := enc.Encode(toEpoch(e)); err != nil {
			return fmt.Errorf("trace: encoding epoch %d: %w", e.Epoch, err)
		}
	}
	return bw.Flush()
}

func toEpoch(e metrics.EpochStat) Epoch {
	return Epoch{
		Epoch:    e.Epoch,
		Loss:     e.Loss,
		MRR:      e.MRR,
		CompMS:   float64(e.Comp) / float64(time.Millisecond),
		CommMS:   float64(e.Comm) / float64(time.Millisecond),
		CumMS:    float64(e.CumTime) / float64(time.Millisecond),
		HitRatio: e.HitRatio,
	}
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	var run Run
	if err := json.Unmarshal(sc.Bytes(), &run.Header); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if run.Header.Kind != kind {
		return nil, fmt.Errorf("trace: not a trace file (kind %q)", run.Header.Kind)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Epoch
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		run.Epochs = append(run.Epochs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return &run, nil
}

// WriteFile writes a trace to path.
func WriteFile(path string, hdr Header, res *train.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	if err := Write(f, hdr, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a trace from path.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
