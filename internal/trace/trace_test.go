package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/train"
)

func sampleResult() *train.Result {
	return &train.Result{
		System: "HET-KG-D",
		Epochs: []metrics.EpochStat{
			{Epoch: 1, Loss: 5.0, MRR: 0.1, Comp: 100 * time.Millisecond, Comm: 50 * time.Millisecond, CumTime: 150 * time.Millisecond, HitRatio: 0.2},
			{Epoch: 2, Loss: 2.0, MRR: 0.2, Comp: 110 * time.Millisecond, Comm: 55 * time.Millisecond, CumTime: 315 * time.Millisecond, HitRatio: 0.21},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hdr := Header{Dataset: "fb15k", Model: "transe", Dim: 64, Machines: 4, Seed: 42}
	if err := Write(&buf, hdr, sampleResult()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	run, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if run.Header.System != "HET-KG-D" {
		t.Errorf("system not filled from result: %q", run.Header.System)
	}
	if run.Header.Dataset != "fb15k" || run.Header.Seed != 42 {
		t.Errorf("header lost fields: %+v", run.Header)
	}
	if len(run.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(run.Epochs))
	}
	if run.Epochs[0].Loss != 5.0 || run.Epochs[1].MRR != 0.2 {
		t.Errorf("epoch values wrong: %+v", run.Epochs)
	}
	if run.Epochs[0].CompMS != 100 {
		t.Errorf("CompMS = %v, want 100", run.Epochs[0].CompMS)
	}
	if run.Epochs[1].CumMS != 315 {
		t.Errorf("CumMS = %v, want 315", run.Epochs[1].CumMS)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := WriteFile(path, Header{Dataset: "wn18"}, sampleResult()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	run, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if run.Header.Dataset != "wn18" || len(run.Epochs) != 2 {
		t.Error("file round trip lost data")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON header accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"other"}` + "\n")); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"hetkg-trace/v1"}` + "\nnot json\n")); err == nil {
		t.Error("bad epoch line accepted")
	}
	if _, err := ReadFile("/nonexistent/trace.jsonl"); err == nil {
		t.Error("missing file accepted")
	}
}
