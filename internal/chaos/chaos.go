// Package chaos injects deterministic faults into net.Conn traffic for
// fault-tolerance tests. An Injector holds a script of Rules; wrapping a
// connection (or a listener, which wraps every accepted connection and
// numbers them in accept order) makes the script fire on exact Read/Write
// call indices — connection 2's third write fails with a reset, every read
// after the fifth stalls 50ms, and so on. Because firing is keyed on call
// counts rather than timing, a test run replays the identical fault
// schedule every time; the optional Seed adds reproducible pseudo-random
// faults on top for soak-style tests.
//
// The unit tests in internal/ps drive the retry/reconnect/breaker state
// machine through these wrappers; scripts/chaos_smoke.sh is the real-
// process counterpart (SIGSTOP on a live shard).
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Op selects which half of a connection a Rule applies to.
type Op int

const (
	// OpRead matches Read calls.
	OpRead Op = iota
	// OpWrite matches Write calls.
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Fault is what happens when a Rule fires.
type Fault int

const (
	// FaultReset closes the underlying connection and fails the call —
	// the observable shape of a peer crash / RST.
	FaultReset Fault = iota
	// FaultStall sleeps Rule.Stall before letting the call proceed — a
	// slow or wedged peer (pair with an RPC deadline shorter than the
	// stall to exercise timeout paths).
	FaultStall
	// FaultBlackhole blocks the call until the connection is closed —
	// a one-way partition: apply to OpRead and writes still flow.
	FaultBlackhole
)

// Rule is one scripted fault. It fires on calls matching (Conn, Op) whose
// per-(conn, op) call index — counted from 0 at wrap time — is ≥ After,
// for Count firings.
type Rule struct {
	// Conn is the wrapped connection's index (assigned in Wrap/accept
	// order, starting at 0); -1 matches every connection.
	Conn int
	// Op is the call direction the rule applies to.
	Op Op
	// After is the first call index the rule fires on.
	After int
	// Count is how many matching calls fire: 0 means exactly one, -1
	// means every call from After on.
	Count int
	// Fault is the injected failure.
	Fault Fault
	// Stall is the FaultStall duration.
	Stall time.Duration
}

// Injector numbers the connections it wraps and applies its rule script
// to their calls. Safe for concurrent use; the zero value injects nothing.
type Injector struct {
	mu    sync.Mutex
	rules []rule
	conns int
	seed  uint64
	oneIn uint64
}

type rule struct {
	Rule
	fired int
}

// NewInjector builds an injector over the given script.
func NewInjector(rules ...Rule) *Injector {
	inj := &Injector{}
	for _, r := range rules {
		inj.rules = append(inj.rules, rule{Rule: r})
	}
	return inj
}

// Add appends a rule to the script (e.g. mid-test, after a phase barrier).
func (inj *Injector) Add(r Rule) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = append(inj.rules, rule{Rule: r})
}

// Seed enables pseudo-random resets on top of the script: every call
// additionally fails with probability 1/oneIn, keyed on (seed, conn, op,
// call index) — a given seed replays the identical fault schedule.
// oneIn ≤ 0 disables.
func (inj *Injector) Seed(seed int64, oneIn int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.seed = uint64(seed)
	if oneIn <= 0 {
		inj.oneIn = 0
		return
	}
	inj.oneIn = uint64(oneIn)
}

// randomReset reports whether the seeded stream fails this call.
func (inj *Injector) randomReset(conn int, op Op, idx int) bool {
	inj.mu.Lock()
	seed, oneIn := inj.seed, inj.oneIn
	inj.mu.Unlock()
	if oneIn == 0 {
		return false
	}
	x := seed ^ uint64(conn)<<40 ^ uint64(op)<<32 ^ uint64(idx)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x%oneIn == 0
}

// Wrap returns conn with the injector's script applied, assigning it the
// next connection index.
func (inj *Injector) Wrap(conn net.Conn) net.Conn {
	inj.mu.Lock()
	id := inj.conns
	inj.conns++
	inj.mu.Unlock()
	return &faultConn{Conn: conn, inj: inj, id: id, closed: make(chan struct{})}
}

// Listen wraps l so every accepted connection passes through Wrap, with
// indices assigned in accept order.
func (inj *Injector) Listen(l net.Listener) net.Listener {
	return &faultListener{Listener: l, inj: inj}
}

// match finds the first live rule for (conn, op) at call index idx and
// consumes one firing. Returns the matched rule and whether one fired.
func (inj *Injector) match(conn int, op Op, idx int) (Rule, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.rules {
		r := &inj.rules[i]
		if r.Conn != -1 && r.Conn != conn {
			continue
		}
		if r.Op != op || idx < r.After {
			continue
		}
		max := r.Count
		if max == 0 {
			max = 1
		}
		if max != -1 && r.fired >= max {
			continue
		}
		r.fired++
		return r.Rule, true
	}
	return Rule{}, false
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(conn), nil
}

// faultConn applies the injector's script to one connection. Call indices
// are counted per direction under a mutex, so concurrent readers/writers
// still observe a well-defined numbering.
type faultConn struct {
	net.Conn
	inj *Injector
	id  int

	mu     sync.Mutex
	reads  int
	writes int

	closeOnce sync.Once
	closed    chan struct{}
}

// apply consumes this call's index and runs any matching fault. It returns
// a non-nil error when the call must fail instead of proceeding.
func (c *faultConn) apply(op Op) error {
	c.mu.Lock()
	var idx int
	if op == OpRead {
		idx = c.reads
		c.reads++
	} else {
		idx = c.writes
		c.writes++
	}
	c.mu.Unlock()
	r, ok := c.inj.match(c.id, op, idx)
	if !ok {
		if c.inj.randomReset(c.id, op, idx) {
			c.Close()
			return fmt.Errorf("chaos: conn %d %s %d: seeded reset", c.id, op, idx)
		}
		return nil
	}
	switch r.Fault {
	case FaultReset:
		c.Close()
		return fmt.Errorf("chaos: conn %d %s %d: injected reset", c.id, op, idx)
	case FaultStall:
		time.Sleep(r.Stall)
	case FaultBlackhole:
		<-c.closed
		return fmt.Errorf("chaos: conn %d %s %d: blackholed until close", c.id, op, idx)
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.apply(OpRead); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.apply(OpWrite); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
