package chaos

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection, the first
// wrapped by inj.
func pipePair(inj *Injector) (wrapped, peer net.Conn) {
	a, b := net.Pipe()
	return inj.Wrap(a), b
}

// TestResetFiresOnExactCall verifies a rule fires on precisely the
// scripted call index and exactly Count times.
func TestResetFiresOnExactCall(t *testing.T) {
	inj := NewInjector(Rule{Conn: 0, Op: OpWrite, After: 2, Fault: FaultReset})
	w, peer := pipePair(inj)
	defer peer.Close()

	// A net.Pipe write needs a concurrent reader.
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
	}
	_, err := w.Write([]byte("boom"))
	if err == nil || !strings.Contains(err.Error(), "injected reset") {
		t.Fatalf("write 2: want injected reset, got %v", err)
	}
	// The reset closed the underlying conn: the peer sees EOF.
	peer.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := peer.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("peer after reset: want EOF, got %v", err)
	}
	// Count 0 means once: a fresh conn matching the same rule is clean.
	w2, peer2 := pipePair(inj)
	defer peer2.Close()
	_ = w2
}

// TestAnyConnAndForever verifies Conn -1 wildcards and Count -1 repeats.
func TestAnyConnAndForever(t *testing.T) {
	inj := NewInjector(Rule{Conn: -1, Op: OpRead, After: 0, Count: -1, Fault: FaultReset})
	for i := 0; i < 3; i++ {
		w, peer := pipePair(inj)
		if _, err := w.Read(make([]byte, 1)); err == nil {
			t.Fatalf("conn %d: read should fail", i)
		}
		peer.Close()
	}
}

// TestStallDelaysCall verifies FaultStall sleeps without failing the call.
func TestStallDelaysCall(t *testing.T) {
	const stall = 30 * time.Millisecond
	inj := NewInjector(Rule{Conn: 0, Op: OpWrite, After: 0, Fault: FaultStall, Stall: stall})
	w, peer := pipePair(inj)
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	start := time.Now()
	if _, err := w.Write([]byte("slow")); err != nil {
		t.Fatalf("stalled write failed: %v", err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("write returned after %v, want >= %v", d, stall)
	}
}

// TestBlackholeBlocksUntilClose verifies FaultBlackhole parks the call
// until Close, modeling a one-way partition.
func TestBlackholeBlocksUntilClose(t *testing.T) {
	inj := NewInjector(Rule{Conn: 0, Op: OpRead, After: 0, Fault: FaultBlackhole})
	w, peer := pipePair(inj)
	defer peer.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blackholed read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	w.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "blackholed") {
			t.Fatalf("want blackhole error, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blackholed read did not return after close")
	}
}

// TestListenerNumbersAcceptOrder verifies accepted connections get script
// indices in accept order.
func TestListenerNumbersAcceptOrder(t *testing.T) {
	inj := NewInjector(Rule{Conn: 1, Op: OpWrite, After: 0, Fault: FaultReset})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := inj.Listen(base)
	defer l.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	conn0 := <-accepted
	conn1 := <-accepted
	defer conn0.Close()
	defer conn1.Close()
	// The rule targets accept index 1, so exactly one of the two accepted
	// connections must reset on its first write.
	_, err0 := conn0.Write([]byte("x"))
	_, err1 := conn1.Write([]byte("y"))
	if (err0 == nil) == (err1 == nil) {
		t.Fatalf("want exactly one write reset, got err0=%v err1=%v", err0, err1)
	}
}

// TestSeededResetsDeterministic verifies the seeded stream replays
// identically for a given seed and differs across seeds.
func TestSeededResetsDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		inj := &Injector{}
		inj.Seed(seed, 8)
		var out []bool
		for idx := 0; idx < 256; idx++ {
			out = append(out, inj.randomReset(0, OpRead, idx))
		}
		return out
	}
	a, b, c := schedule(42), schedule(42), schedule(43)
	fires := 0
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if fires == 0 {
		t.Fatal("seeded stream never fired in 256 calls at 1/8")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}
