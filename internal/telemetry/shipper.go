package telemetry

import (
	"time"

	"hetkg/internal/metrics"
)

// DefaultShipEvery is the default report cadence of a Shipper.
const DefaultShipEvery = 2 * time.Second

// Shipper periodically snapshots a metrics registry and ships the result
// to the coordinator through a Sender. It is the telemetry loop of
// processes with no heartbeat to piggyback on (hetkg-ps shards,
// hetkg-serve replicas); elastic workers instead attach a report to every
// membership heartbeat.
type Shipper struct {
	role, label string
	snap        func() metrics.Snapshot
	send        Sender
	every       time.Duration
	logf        func(format string, args ...any)

	seq  int64
	stop chan struct{}
	done chan struct{}
}

// NewShipper builds a Shipper that ships snap() (typically
// Registry.Snapshot) through send every interval (DefaultShipEvery when
// every <= 0). logf may be nil. Call Start to begin shipping.
func NewShipper(role, label string, snap func() metrics.Snapshot, send Sender, every time.Duration, logf func(format string, args ...any)) *Shipper {
	if every <= 0 {
		every = DefaultShipEvery
	}
	return &Shipper{
		role:  role,
		label: label,
		snap:  snap,
		send:  send,
		every: every,
		logf:  logf,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the shipping loop. One immediate report is sent so the
// fleet view lists the process before the first full interval elapses.
func (s *Shipper) Start() {
	go func() {
		defer close(s.done)
		s.ship()
		t := time.NewTicker(s.every)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ship()
			}
		}
	}()
}

// Stop ends the loop, ships one final report (so the aggregator sees the
// process's last counters), and waits for the goroutine to exit.
func (s *Shipper) Stop() {
	close(s.stop)
	<-s.done
	s.ship()
}

// ship sends one report; errors are logged and swallowed — telemetry is
// best effort and must never take a shard down.
func (s *Shipper) ship() {
	s.seq++
	rep := Report{Role: s.role, Label: s.label, Seq: s.seq, Metrics: s.snap()}
	if err := s.send.SendTelemetry(rep); err != nil && s.logf != nil {
		s.logf("telemetry: ship failed: %v", err)
	}
}
