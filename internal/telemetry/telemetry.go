// Package telemetry is the fleet observability plane of a multi-process
// run (DESIGN.md §12): every process — hetkg-train elastic workers,
// hetkg-ps shards, hetkg-serve replicas — periodically ships a labeled
// snapshot of its metrics registry to the cluster coordinator, where a
// Fleet aggregator keeps a short per-process time series, derives rates
// (iterations/s, bytes/s, windowed hit ratio, report lag), and runs a
// rule-driven health engine (straggler, cache degradation, comm stall,
// telemetry lag — see health.go) over the aggregate. The coordinator
// exposes the result as the /fleet JSON endpoint on its obs server; the
// hetkg-top dashboard renders it live.
//
// Reports travel as op 'T' on the existing membership gob TCP envelope
// (internal/ps), so the telemetry plane needs no extra listener: workers
// piggyback a report on every heartbeat, shards and serve replicas run a
// Shipper against a dialed coordinator connection.
//
// All clocking is injectable (FleetConfig.Now), so rate and alert
// computations are fully deterministic under a fake clock in tests.
package telemetry

import (
	"sort"
	"time"

	"hetkg/internal/metrics"
)

// Process roles a Report can carry. The role selects which registry
// series the aggregator derives rates from (a worker's iterations, a
// shard's served RPCs, a serve replica's requests).
const (
	// RoleWorker is a hetkg-train elastic worker process.
	RoleWorker = "worker"
	// RoleShard is a hetkg-ps parameter-server shard process.
	RoleShard = "shard"
	// RoleServe is a hetkg-serve inference replica.
	RoleServe = "serve"
)

// Report is one process's labeled metric-registry snapshot, the unit that
// crosses the wire (ps op 'T').
type Report struct {
	// Role classifies the sender: RoleWorker, RoleShard, or RoleServe.
	Role string
	// Label identifies the process within its role (host:pid, listen addr).
	Label string
	// Seq is the sender's monotonically increasing report index; stale
	// (reordered) reports are dropped by the aggregator.
	Seq int64
	// Metrics is the sender's full registry snapshot at ship time.
	Metrics metrics.Snapshot
}

// Sender ships telemetry reports to the cluster coordinator. Implemented
// by *ps.CoordClient (over the gob TCP wire) and by *ps.Membership
// (in-process, forwarding straight into the coordinator's Fleet).
type Sender interface {
	// SendTelemetry delivers one report; best effort, callers log and
	// continue on error.
	SendTelemetry(Report) error
}

// DefaultWindow is the default per-process ring capacity in samples.
const DefaultWindow = 64

// FleetConfig parameterizes a coordinator's Fleet aggregator.
type FleetConfig struct {
	// Window is the per-process sample ring capacity (default
	// DefaultWindow). Rates are derived over the ring's span, so the
	// window × report interval is the smoothing horizon.
	Window int
	// Now supplies the clock (default time.Now); tests inject a fake so
	// every derived rate and alert decision is deterministic.
	Now func() time.Time
	// Health parameterizes the rule engine; zero fields take defaults.
	Health HealthConfig
	// Logf, when non-nil, receives alert activations and clears.
	Logf func(format string, args ...any)
}

// sample is one ingested snapshot with its arrival time.
type sample struct {
	t    time.Time
	snap metrics.Snapshot
}

// procSeries is the aggregator's ring-buffered view of one process.
type procSeries struct {
	role, label string
	reports     int64
	lastSeq     int64
	ring        []sample // fixed capacity; head indexes the oldest
	head, n     int
}

func (p *procSeries) push(t time.Time, snap metrics.Snapshot) {
	if p.n < cap(p.ring) {
		p.ring = p.ring[:p.n+1]
		p.ring[(p.head+p.n)%cap(p.ring)] = sample{t, snap}
		p.n++
		return
	}
	p.ring[p.head] = sample{t, snap}
	p.head = (p.head + 1) % cap(p.ring)
}

// at returns the i-th oldest sample (0 ≤ i < n).
func (p *procSeries) at(i int) sample { return p.ring[(p.head+i)%cap(p.ring)] }

func (p *procSeries) newest() sample { return p.at(p.n - 1) }
func (p *procSeries) oldest() sample { return p.at(0) }

// counterSum sums the named counter values in a snapshot (histogram and
// timer observation counts also qualify — they are monotonic).
func counterSum(s metrics.Snapshot, names []string) (total int64, found bool) {
	for _, name := range names {
		if v, ok := s[name]; ok {
			total += v.Count
			found = true
		}
	}
	return total, found
}

// windowRate returns the per-second rate of the summed named counters
// over the whole ring window. ok is false with fewer than two samples, no
// elapsed time, or when none of the counters exist.
func (p *procSeries) windowRate(names []string) (perSec float64, ok bool) {
	if p.n < 2 {
		return 0, false
	}
	first, newest := p.oldest(), p.newest()
	dt := newest.t.Sub(first.t).Seconds()
	if dt <= 0 {
		return 0, false
	}
	a, okA := counterSum(first.snap, names)
	b, okB := counterSum(newest.snap, names)
	if !okA && !okB {
		return 0, false
	}
	return float64(b-a) / dt, true
}

// rateHistory returns the per-interval rate between each consecutive
// sample pair, oldest first — the hetkg-top sparkline series.
func (p *procSeries) rateHistory(names []string) []float64 {
	if p.n < 2 {
		return nil
	}
	out := make([]float64, 0, p.n-1)
	for i := 1; i < p.n; i++ {
		a, b := p.at(i-1), p.at(i)
		dt := b.t.Sub(a.t).Seconds()
		if dt <= 0 {
			out = append(out, 0)
			continue
		}
		ca, _ := counterSum(a.snap, names)
		cb, _ := counterSum(b.snap, names)
		out = append(out, float64(cb-ca)/dt)
	}
	return out
}

// windowRatio returns hits/(hits+misses) over the ring window, plus the
// window's total accesses. ok is false when the counters are absent or
// nothing was accessed in the window.
func (p *procSeries) windowRatio(hits, misses []string) (ratio float64, accesses int64, ok bool) {
	if p.n < 2 {
		return 0, 0, false
	}
	first, newest := p.oldest(), p.newest()
	h0, okH := counterSum(first.snap, hits)
	m0, _ := counterSum(first.snap, misses)
	h1, _ := counterSum(newest.snap, hits)
	m1, okM := counterSum(newest.snap, misses)
	if !okH && !okM {
		return 0, 0, false
	}
	dh, dm := h1-h0, m1-m0
	if dh+dm <= 0 {
		return 0, 0, false
	}
	return float64(dh) / float64(dh+dm), dh + dm, true
}

// reportInterval estimates the process's report cadence as the median gap
// between consecutive samples (0 with fewer than two samples).
func (p *procSeries) reportInterval() time.Duration {
	if p.n < 2 {
		return 0
	}
	gaps := make([]time.Duration, 0, p.n-1)
	for i := 1; i < p.n; i++ {
		gaps = append(gaps, p.at(i).t.Sub(p.at(i-1).t))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}

// roleRates maps each role to the named per-second rates the aggregator
// derives for it. The first entry is the role's primary rate — the one
// hetkg-top sparklines and the straggler rule (workers) read.
var roleRates = map[string][]struct {
	name     string
	counters []string
}{
	RoleWorker: {
		{"iter_s", []string{metrics.MTrainIterations}},
		{"bytes_s", []string{metrics.MPSBytesTx, metrics.MPSBytesRx}},
	},
	RoleShard: {
		{"rpc_s", []string{metrics.MPSServerPulls, metrics.MPSServerPushes}},
		{"bytes_s", []string{metrics.MPSTCPRxBytes, metrics.MPSTCPTxBytes}},
	},
	RoleServe: {
		{"req_s", []string{metrics.MServeRequests}},
		{"bytes_s", nil}, // serve has no byte meter; omitted from views
	},
}

// roleHit maps roles to their cache hit/miss counter pair.
var roleHit = map[string][2][]string{
	RoleWorker: {{metrics.MCacheHits}, {metrics.MCacheMisses}},
	RoleServe:  {{metrics.MServeCacheHits}, {metrics.MServeCacheMisses}},
}

// PrimaryRate returns the name of a role's primary derived rate ("iter_s"
// for workers, "rpc_s" for shards, "req_s" for serve replicas).
func PrimaryRate(role string) string {
	specs := roleRates[role]
	if len(specs) == 0 {
		return ""
	}
	return specs[0].name
}

// procKey is a process's stable identity in the aggregator.
func procKey(role, label string) string { return role + "/" + label }
