package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// ViewKind is the schema discriminator of /fleet JSON documents.
const ViewKind = "hetkg-fleet/v1"

// Fleet is the coordinator-side telemetry aggregator: it ingests labeled
// registry snapshots from every process of a run, keeps a ring-buffered
// per-process time series, derives rates, and evaluates the health rules
// on every ingest. All methods are safe for concurrent use (reports
// arrive on independent shard connections).
type Fleet struct {
	cfg FleetConfig

	mu     sync.Mutex
	procs  map[string]*procSeries
	health *healthState
	obs    *fleetObs
	tracer *span.Tracer
	spans  int // fleet.alert span sequence
}

// fleetObs holds the aggregator's own fleet.* registry series.
type fleetObs struct {
	processes    *metrics.Gauge
	reports      *metrics.Counter
	alertsActive *metrics.Gauge
	alertsTotal  *metrics.Counter
	stragglers   *metrics.Gauge
}

// NewFleet builds an empty aggregator.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cfg.Health.defaults()
	return &Fleet{
		cfg:    cfg,
		procs:  make(map[string]*procSeries),
		health: newHealthState(),
	}
}

// Instrument publishes the aggregator's fleet.* series into reg:
// fleet.processes / fleet.alerts_active / fleet.stragglers gauges plus
// counters for ingested reports (fleet.reports) and alert activations
// (fleet.alerts_total). Call before reports flow.
func (f *Fleet) Instrument(reg *metrics.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.obs = &fleetObs{
		processes:    reg.Gauge(metrics.MFleetProcesses),
		reports:      reg.Counter(metrics.MFleetReports),
		alertsActive: reg.Gauge(metrics.MFleetAlertsActive),
		alertsTotal:  reg.Counter(metrics.MFleetAlertsTotal),
		stragglers:   reg.Gauge(metrics.MFleetStragglers),
	}
}

// Trace attaches a span tracer: each alert activation then records one
// fleet.alert span event. Build the tracer from a collector with Every=1
// so no activation is sampled away.
func (f *Fleet) Trace(tr *span.Tracer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracer = tr
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Ingest folds one report into the aggregate and re-evaluates the health
// rules. Reports with a stale Seq (reordered or duplicated on the wire)
// are dropped.
func (f *Fleet) Ingest(rep Report) error {
	switch rep.Role {
	case RoleWorker, RoleShard, RoleServe:
	default:
		return fmt.Errorf("telemetry: unknown role %q", rep.Role)
	}
	if rep.Label == "" {
		return fmt.Errorf("telemetry: report without a label")
	}
	if rep.Metrics == nil {
		return fmt.Errorf("telemetry: report without a snapshot")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	key := procKey(rep.Role, rep.Label)
	p := f.procs[key]
	if p == nil {
		p = &procSeries{
			role:  rep.Role,
			label: rep.Label,
			ring:  make([]sample, 0, f.cfg.Window),
		}
		f.procs[key] = p
		f.logf("fleet: %s reporting (%d processes)", key, len(f.procs))
	}
	if rep.Seq != 0 && rep.Seq <= p.lastSeq {
		return nil // stale or duplicate; the newer view already landed
	}
	p.lastSeq = rep.Seq
	p.reports++
	p.push(now, rep.Metrics)
	if o := f.obs; o != nil {
		o.reports.Inc()
		o.processes.Set(float64(len(f.procs)))
	}
	f.evaluateLocked(now)
	return nil
}

// Processes returns the number of processes the aggregator has heard from.
func (f *Fleet) Processes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.procs)
}

// ProcessView is one process's row in a FleetView.
type ProcessView struct {
	// ID is the process key, "role/label".
	ID string `json:"id"`
	// Role is RoleWorker, RoleShard, or RoleServe.
	Role string `json:"role"`
	// Label is the sender-chosen process identity.
	Label string `json:"label"`
	// Reports counts ingested snapshots from this process.
	Reports int64 `json:"reports"`
	// AgeMS is milliseconds since the last report arrived.
	AgeMS float64 `json:"age_ms"`
	// IntervalMS is the estimated report cadence (median gap), 0 until
	// two reports have arrived.
	IntervalMS float64 `json:"interval_ms,omitempty"`
	// Rates maps derived rate names (iter_s, rpc_s, req_s, bytes_s) to
	// per-second values over the ring window.
	Rates map[string]float64 `json:"rates,omitempty"`
	// HitRatio is the windowed cache hit ratio, present only for roles
	// with a cache (worker, serve) that saw accesses in the window.
	HitRatio *float64 `json:"hit_ratio,omitempty"`
	// LinksDown, present only for processes reporting the PS link-layer
	// gauge, is how many shard links currently sit behind an open circuit
	// breaker — non-zero means the process is riding out a shard outage.
	LinksDown *int `json:"links_down,omitempty"`
	// History is the per-interval series of the role's primary rate,
	// oldest first — the sparkline feed.
	History []float64 `json:"history,omitempty"`
	// Alerts lists the rules currently active against this process.
	Alerts []string `json:"alerts,omitempty"`
}

// FleetView is the /fleet JSON document: every known process with derived
// rates, plus the active alerts.
type FleetView struct {
	// Kind is always ViewKind.
	Kind string `json:"kind"`
	// Processes lists every process that ever reported, sorted by ID.
	Processes []ProcessView `json:"processes"`
	// Alerts lists the currently active alerts, most severe (oldest
	// activation) first.
	Alerts []Alert `json:"alerts"`
}

// View assembles the current fleet view. Reading a view also re-evaluates
// the health rules, so a process that silently died is flagged by the
// telemetry-lag rule even when no other reports arrive.
func (f *Fleet) View() FleetView {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	f.evaluateLocked(now)
	v := FleetView{Kind: ViewKind}
	keys := make([]string, 0, len(f.procs))
	for k := range f.procs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := f.procs[k]
		pv := ProcessView{
			ID:      k,
			Role:    p.role,
			Label:   p.label,
			Reports: p.reports,
			AgeMS:   float64(now.Sub(p.newest().t)) / 1e6,
		}
		if iv := p.reportInterval(); iv > 0 {
			pv.IntervalMS = float64(iv) / 1e6
		}
		var primary []string
		for i, spec := range roleRates[p.role] {
			if len(spec.counters) == 0 {
				continue
			}
			if i == 0 {
				primary = spec.counters
			}
			if rate, ok := p.windowRate(spec.counters); ok {
				if pv.Rates == nil {
					pv.Rates = make(map[string]float64)
				}
				pv.Rates[spec.name] = rate
			}
		}
		if hm, ok := roleHit[p.role]; ok {
			if ratio, _, ok := p.windowRatio(hm[0], hm[1]); ok {
				pv.HitRatio = &ratio
			}
		}
		if v, ok := p.newest().snap[metrics.MPSLinkBreakerOpen]; ok {
			n := int(v.Value)
			pv.LinksDown = &n
		}
		if primary != nil {
			pv.History = p.rateHistory(primary)
		}
		pv.Alerts = f.health.activeRules(k)
		v.Processes = append(v.Processes, pv)
	}
	v.Alerts = f.health.activeAlerts(now)
	return v
}

// ServeHTTP implements the /fleet endpoint: the FleetView as indented
// JSON. Mount it on the coordinator's obs server (obs.WithRoute).
func (f *Fleet) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.View()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
