package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// The health engine runs four rules over the aggregate on every ingest
// (and on every View, so a dead process is flagged without fresh
// traffic). Rules breach per evaluation; an alert only activates after
// DebounceUp consecutive breaches *with new data for its subject* and
// clears after DebounceDown consecutive quiet evaluations — a one-sample
// blip never pages, and an alert never flaps at ingest frequency.

// Rule names, as they appear in FleetView.Alerts and hetkg-top.
const (
	// RuleStraggler flags a worker whose iteration rate falls below
	// StragglerRatio × the fleet median (median-ratio outlier; the z-score
	// against the fleet mean is reported in the alert message).
	RuleStraggler = "straggler"
	// RuleCacheDegraded flags a fleet-wide windowed cache hit ratio below
	// HitRatioFloor — the paper's core artifact decaying.
	RuleCacheDegraded = "cache_degraded"
	// RuleCommStall flags a worker or shard whose byte counters stopped
	// moving across the whole window despite earlier traffic.
	RuleCommStall = "comm_stall"
	// RuleTelemetryLag flags a process whose reports stopped arriving for
	// longer than LagFactor × its own estimated cadence — the telemetry
	// analog of heartbeat failure detection.
	RuleTelemetryLag = "telemetry_lag"
)

// HealthConfig parameterizes the rule engine. Zero fields take defaults.
type HealthConfig struct {
	// StragglerRatio: a worker is a straggler when its iter/s drops below
	// this fraction of the fleet median (default 0.5).
	StragglerRatio float64
	// StragglerMinPeers is the minimum worker count for the straggler
	// rule to run — a median over fewer processes is noise (default 3).
	StragglerMinPeers int
	// HitRatioFloor: the fleet-wide windowed hit ratio below which
	// cache_degraded fires (default 0.2).
	HitRatioFloor float64
	// MinAccesses is the minimum windowed cache accesses before the hit
	// ratio is judged at all (default 256 — a cold cache is not an alert).
	MinAccesses int64
	// LagFactor: telemetry_lag fires when a process's report silence
	// exceeds this multiple of its estimated cadence (default 4, matching
	// the membership layer's worst-case detection bound).
	LagFactor float64
	// DebounceUp is the consecutive breach count (per subject report)
	// required to activate an alert (default 2).
	DebounceUp int
	// DebounceDown is the consecutive quiet count required to clear an
	// active alert (default 2).
	DebounceDown int
}

// defaults fills zero fields in place.
func (h *HealthConfig) defaults() {
	if h.StragglerRatio <= 0 {
		h.StragglerRatio = 0.5
	}
	if h.StragglerMinPeers <= 0 {
		h.StragglerMinPeers = 3
	}
	if h.HitRatioFloor <= 0 {
		h.HitRatioFloor = 0.2
	}
	if h.MinAccesses <= 0 {
		h.MinAccesses = 256
	}
	if h.LagFactor <= 0 {
		h.LagFactor = 4
	}
	if h.DebounceUp <= 0 {
		h.DebounceUp = 2
	}
	if h.DebounceDown <= 0 {
		h.DebounceDown = 2
	}
}

// Alert is one active health finding in a FleetView.
type Alert struct {
	// Rule names the breached rule (RuleStraggler, ...).
	Rule string `json:"rule"`
	// Proc is the subject process key ("role/label"); empty for
	// fleet-wide rules (cache_degraded).
	Proc string `json:"proc,omitempty"`
	// Value is the measured quantity that breached.
	Value float64 `json:"value"`
	// Threshold is the boundary it breached.
	Threshold float64 `json:"threshold"`
	// SinceMS is how long the alert has been active, in milliseconds.
	SinceMS float64 `json:"since_ms"`
	// Message is the operator-facing one-liner.
	Message string `json:"message"`
}

// alertKey identifies one (rule, subject) debounce lane.
type alertKey struct{ rule, proc string }

// breach is one rule violation observed in a single evaluation pass.
type breach struct {
	value, threshold float64
	message          string
}

// lane is the debounce state of one alertKey.
type lane struct {
	streak   int   // consecutive breaches (or clears when active)
	lastData int64 // subject's report count when the streak last advanced
	active   bool
	since    time.Time
	last     breach
}

// healthState holds the engine's debounce lanes.
type healthState struct {
	lanes map[alertKey]*lane
}

func newHealthState() *healthState {
	return &healthState{lanes: make(map[alertKey]*lane)}
}

// activeRules lists the rules currently active against proc, sorted.
func (h *healthState) activeRules(proc string) []string {
	var out []string
	for k, l := range h.lanes {
		if l.active && k.proc == proc {
			out = append(out, k.rule)
		}
	}
	sort.Strings(out)
	return out
}

// activeAlerts renders every active lane, oldest activation first.
func (h *healthState) activeAlerts(now time.Time) []Alert {
	out := []Alert{}
	keys := make([]alertKey, 0, len(h.lanes))
	for k, l := range h.lanes {
		if l.active {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := h.lanes[keys[i]], h.lanes[keys[j]]
		if !a.since.Equal(b.since) {
			return a.since.Before(b.since)
		}
		if keys[i].rule != keys[j].rule {
			return keys[i].rule < keys[j].rule
		}
		return keys[i].proc < keys[j].proc
	})
	for _, k := range keys {
		l := h.lanes[k]
		out = append(out, Alert{
			Rule:      k.rule,
			Proc:      k.proc,
			Value:     l.last.value,
			Threshold: l.last.threshold,
			SinceMS:   float64(now.Sub(l.since)) / 1e6,
			Message:   l.last.message,
		})
	}
	return out
}

// evaluateLocked runs every rule and advances the debounce lanes. The
// caller holds f.mu.
func (f *Fleet) evaluateLocked(now time.Time) {
	breaches := make(map[alertKey]breach)
	f.stragglerRule(breaches)
	f.cacheRule(breaches)
	f.commStallRule(breaches)
	f.lagRule(now, breaches)

	hc := f.cfg.Health
	// Advance lanes: breached keys accumulate toward activation, quiet
	// keys toward clearing. A lane only moves when its subject produced
	// new data since the lane last moved, so debounce counts subject
	// reports, not ingest events from unrelated processes.
	for k, b := range breaches {
		l := f.health.lanes[k]
		if l == nil {
			l = &lane{lastData: -1}
			f.health.lanes[k] = l
		}
		data := f.laneData(k, now)
		if data == l.lastData {
			if l.active {
				l.last = b // keep the message fresh even without new data
			}
			continue
		}
		l.lastData = data
		l.last = b
		if l.active {
			l.streak = 0 // an active lane's streak counts clears
			continue
		}
		l.streak++
		if l.streak >= hc.DebounceUp {
			l.active = true
			l.since = now
			l.streak = 0
			f.alertTransition(k, b, true)
		}
	}
	for k, l := range f.health.lanes {
		if _, breached := breaches[k]; breached {
			continue
		}
		data := f.laneData(k, now)
		if data == l.lastData {
			continue
		}
		l.lastData = data
		if !l.active {
			delete(f.health.lanes, k)
			continue
		}
		l.streak++
		if l.streak >= hc.DebounceDown {
			f.alertTransition(k, l.last, false)
			delete(f.health.lanes, k)
		}
	}
	f.publishLocked()
}

// laneData returns the debounce data counter for an alert lane: the
// subject's own report count (per-process rules), the fleet-wide report
// total (fleet-wide rules, proc == ""), or the evaluation time for the
// telemetry-lag rule — whose subject is silent by definition, so distinct
// evaluation instants are its "new data".
func (f *Fleet) laneData(k alertKey, now time.Time) int64 {
	if k.rule == RuleTelemetryLag {
		return now.UnixNano()
	}
	if k.proc != "" {
		if p := f.procs[k.proc]; p != nil {
			return p.reports
		}
		return 0
	}
	var total int64
	for _, p := range f.procs {
		total += p.reports
	}
	return total
}

// alertTransition records one activation or clear: log line, counters,
// and a fleet.alert span event on activation.
func (f *Fleet) alertTransition(k alertKey, b breach, activated bool) {
	subject := k.proc
	if subject == "" {
		subject = "fleet"
	}
	if activated {
		f.logf("fleet: ALERT %s on %s: %s", k.rule, subject, b.message)
		if o := f.obs; o != nil {
			o.alertsTotal.Inc()
		}
		sp := f.tracer.RootNamed(f.spans, span.NFleetAlert)
		f.spans++
		sp.End()
		return
	}
	f.logf("fleet: alert %s on %s cleared", k.rule, subject)
}

// publishLocked refreshes the alert gauges.
func (f *Fleet) publishLocked() {
	o := f.obs
	if o == nil {
		return
	}
	active, stragglers := 0, 0
	for k, l := range f.health.lanes {
		if !l.active {
			continue
		}
		active++
		if k.rule == RuleStraggler {
			stragglers++
		}
	}
	o.alertsActive.Set(float64(active))
	o.stragglers.Set(float64(stragglers))
}

// stragglerRule flags workers whose primary rate falls below
// StragglerRatio × the worker median.
func (f *Fleet) stragglerRule(breaches map[alertKey]breach) {
	hc := f.cfg.Health
	spec := roleRates[RoleWorker][0]
	type wr struct {
		key  string
		rate float64
	}
	var rates []wr
	for k, p := range f.procs {
		if p.role != RoleWorker {
			continue
		}
		if rate, ok := p.windowRate(spec.counters); ok {
			rates = append(rates, wr{k, rate})
		}
	}
	if len(rates) < hc.StragglerMinPeers {
		return
	}
	sorted := make([]float64, len(rates))
	var mean float64
	for i, r := range rates {
		sorted[i] = r.rate
		mean += r.rate
	}
	mean /= float64(len(rates))
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	threshold := hc.StragglerRatio * median
	if threshold <= 0 {
		return
	}
	var variance float64
	for _, r := range rates {
		variance += (r.rate - mean) * (r.rate - mean)
	}
	std := math.Sqrt(variance / float64(len(rates)))
	for _, r := range rates {
		if r.rate >= threshold {
			continue
		}
		z := 0.0
		if std > 0 {
			z = (r.rate - mean) / std
		}
		breaches[alertKey{RuleStraggler, r.key}] = breach{
			value:     r.rate,
			threshold: threshold,
			message: fmt.Sprintf("%.1f iter/s < %.2f x median %.1f (z=%.1f)",
				r.rate, hc.StragglerRatio, median, z),
		}
	}
}

// cacheRule flags a fleet-wide windowed hit ratio below the floor.
func (f *Fleet) cacheRule(breaches map[alertKey]breach) {
	hc := f.cfg.Health
	var hits, total int64
	for _, p := range f.procs {
		hm, ok := roleHit[p.role]
		if !ok {
			continue
		}
		ratio, accesses, ok := p.windowRatio(hm[0], hm[1])
		if !ok {
			continue
		}
		hits += int64(ratio * float64(accesses))
		total += accesses
	}
	if total < hc.MinAccesses {
		return
	}
	ratio := float64(hits) / float64(total)
	if ratio >= hc.HitRatioFloor {
		return
	}
	breaches[alertKey{RuleCacheDegraded, ""}] = breach{
		value:     ratio,
		threshold: hc.HitRatioFloor,
		message: fmt.Sprintf("fleet hit ratio %.3f < floor %.2f over %d accesses",
			ratio, hc.HitRatioFloor, total),
	}
}

// commStallRule flags workers and shards whose byte counters froze across
// the window despite earlier traffic.
func (f *Fleet) commStallRule(breaches map[alertKey]breach) {
	for k, p := range f.procs {
		var names []string
		for _, spec := range roleRates[p.role] {
			if spec.name == "bytes_s" {
				names = spec.counters
			}
		}
		if names == nil || p.n < 2 {
			continue
		}
		first, _ := counterSum(p.oldest().snap, names)
		newest, ok := counterSum(p.newest().snap, names)
		if !ok || first == 0 || newest != first {
			continue // never had traffic, or traffic still flowing
		}
		// A stall with open circuit breakers is a diagnosed outage — the
		// process is riding it out in degraded mode — not a mystery freeze.
		msg := fmt.Sprintf("no wire traffic across the last %d reports (total stuck at %d bytes)", p.n, newest)
		if v, open := p.newest().snap[metrics.MPSLinkBreakerOpen]; open && v.Value > 0 {
			msg = fmt.Sprintf("shard link down (%d breaker(s) open), no wire traffic across the last %d reports — degraded mode, not frozen", int(v.Value), p.n)
		}
		breaches[alertKey{RuleCommStall, k}] = breach{
			value:     0,
			threshold: 1,
			message:   msg,
		}
	}
}

// lagRule flags processes whose reports stopped arriving.
func (f *Fleet) lagRule(now time.Time, breaches map[alertKey]breach) {
	hc := f.cfg.Health
	for k, p := range f.procs {
		iv := p.reportInterval()
		if iv <= 0 {
			continue
		}
		silence := now.Sub(p.newest().t)
		limit := time.Duration(hc.LagFactor * float64(iv))
		if silence <= limit {
			continue
		}
		breaches[alertKey{RuleTelemetryLag, k}] = breach{
			value:     silence.Seconds(),
			threshold: limit.Seconds(),
			message: fmt.Sprintf("no report for %v (cadence %v, limit %v)",
				silence.Round(time.Millisecond), iv.Round(time.Millisecond), limit.Round(time.Millisecond)),
		}
	}
}
