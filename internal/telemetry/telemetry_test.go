package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// fakeClock is a manually advanced clock for deterministic rate and alert
// computation.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// counterSnap builds a snapshot of monotonic counters from name→value.
func counterSnap(vals map[string]int64) metrics.Snapshot {
	s := make(metrics.Snapshot, len(vals))
	for name, v := range vals {
		s[name] = metrics.Value{Kind: metrics.KindCounter, Count: v}
	}
	return s
}

// workerSnap is a worker snapshot at a given iteration count with a fixed
// hit ratio shape (3 hits : 1 miss) and byte traffic.
func workerSnap(iters int64) metrics.Snapshot {
	return counterSnap(map[string]int64{
		metrics.MTrainIterations: iters,
		metrics.MPSBytesTx:       iters * 100,
		metrics.MPSBytesRx:       iters * 400,
		metrics.MCacheHits:       iters * 3,
		metrics.MCacheMisses:     iters,
	})
}

// feed ships n reports per worker at the given per-second iteration
// rates, advancing the clock one second between rounds. Returns the
// per-worker cumulative iteration counts for continuation.
func feed(t *testing.T, f *Fleet, clk *fakeClock, rounds int, rates map[string]int64, start map[string]int64) map[string]int64 {
	t.Helper()
	if start == nil {
		start = make(map[string]int64)
	}
	for r := 0; r < rounds; r++ {
		for label, rate := range rates {
			start[label] += rate
			err := f.Ingest(Report{
				Role:    RoleWorker,
				Label:   label,
				Seq:     start[label], // monotonic per worker
				Metrics: workerSnap(start[label]),
			})
			if err != nil {
				t.Fatalf("ingest %s: %v", label, err)
			}
		}
		clk.Advance(time.Second)
	}
	return start
}

func TestFleetRatesAndView(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 8, Now: clk.Now})
	feed(t, f, clk, 5, map[string]int64{"w0": 100, "w1": 100}, nil)

	v := f.View()
	if v.Kind != ViewKind {
		t.Fatalf("kind = %q, want %q", v.Kind, ViewKind)
	}
	if len(v.Processes) != 2 {
		t.Fatalf("processes = %d, want 2", len(v.Processes))
	}
	p := v.Processes[0]
	if p.ID != "worker/w0" || p.Role != RoleWorker || p.Label != "w0" {
		t.Fatalf("unexpected first process %+v", p)
	}
	if p.Reports != 5 {
		t.Fatalf("reports = %d, want 5", p.Reports)
	}
	// 5 reports at 100 iters apart, 1s apart: window spans 4s and 400
	// iterations → exactly 100/s under the fake clock.
	if got := p.Rates["iter_s"]; got != 100 {
		t.Fatalf("iter_s = %v, want 100", got)
	}
	if got := p.Rates["bytes_s"]; got != 100*500 {
		t.Fatalf("bytes_s = %v, want 50000", got)
	}
	if p.HitRatio == nil || *p.HitRatio != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", p.HitRatio)
	}
	if p.IntervalMS != 1000 {
		t.Fatalf("interval_ms = %v, want 1000", p.IntervalMS)
	}
	if len(p.History) != 4 {
		t.Fatalf("history length = %d, want 4", len(p.History))
	}
	for _, h := range p.History {
		if h != 100 {
			t.Fatalf("history = %v, want all 100", p.History)
		}
	}
	if len(v.Alerts) != 0 {
		t.Fatalf("unexpected alerts: %+v", v.Alerts)
	}
}

func TestFleetIngestValidation(t *testing.T) {
	f := NewFleet(FleetConfig{Now: newFakeClock().Now})
	snap := workerSnap(1)
	if err := f.Ingest(Report{Role: "gpu", Label: "x", Metrics: snap}); err == nil {
		t.Fatal("unknown role accepted")
	}
	if err := f.Ingest(Report{Role: RoleWorker, Metrics: snap}); err == nil {
		t.Fatal("empty label accepted")
	}
	if err := f.Ingest(Report{Role: RoleWorker, Label: "w0"}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestFleetStaleSeqDropped(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Now: clk.Now})
	for _, seq := range []int64{1, 2, 2, 1} { // duplicate and reordered
		if err := f.Ingest(Report{Role: RoleWorker, Label: "w0", Seq: seq, Metrics: workerSnap(seq * 10)}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	v := f.View()
	if v.Processes[0].Reports != 2 {
		t.Fatalf("reports = %d, want 2 (stale dropped)", v.Processes[0].Reports)
	}
}

// TestStragglerDeterministic is the fault-injection acceptance test: three
// workers report under a fake clock, one at a fifth of the others' rate.
// The straggler rule must fire on exactly that worker, deterministically,
// and surface in the fleet.* metrics, the fleet.alert span stream, and the
// /fleet JSON.
func TestStragglerDeterministic(t *testing.T) {
	clk := newFakeClock()
	var logs []string
	f := NewFleet(FleetConfig{
		Window: 8,
		Now:    clk.Now,
		Logf:   func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	reg := metrics.NewRegistry()
	f.Instrument(reg)
	col := span.NewCollector(span.CollectorConfig{Every: 1, Capacity: 16})
	f.Trace(col.Tracer(0, 0))

	rates := map[string]int64{"w0": 100, "w1": 110, "w2": 20} // w2 lags: 20 < 0.5×105
	feed(t, f, clk, 6, rates, nil)

	v := f.View()
	if len(v.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one straggler", v.Alerts)
	}
	a := v.Alerts[0]
	if a.Rule != RuleStraggler || a.Proc != "worker/w2" {
		t.Fatalf("alert = %+v, want straggler on worker/w2", a)
	}
	if a.Value != 20 {
		t.Fatalf("alert value = %v, want 20 iter/s", a.Value)
	}
	if a.Threshold != 50 { // 0.5 × median(100, 110, 20) = 0.5 × 100
		t.Fatalf("alert threshold = %v, want 50", a.Threshold)
	}
	if !strings.Contains(a.Message, "z=") {
		t.Fatalf("message %q lacks z-score", a.Message)
	}
	// The straggling process's row carries the rule.
	var w2 *ProcessView
	for i := range v.Processes {
		if v.Processes[i].Label == "w2" {
			w2 = &v.Processes[i]
		}
	}
	if w2 == nil || len(w2.Alerts) != 1 || w2.Alerts[0] != RuleStraggler {
		t.Fatalf("w2 row alerts = %+v, want [straggler]", w2)
	}

	snap := reg.Snapshot()
	if got := snap[metrics.MFleetStragglers].Value; got != 1 {
		t.Fatalf("fleet.stragglers = %v, want 1", got)
	}
	if got := snap[metrics.MFleetAlertsActive].Value; got != 1 {
		t.Fatalf("fleet.alerts_active = %v, want 1", got)
	}
	if got := snap[metrics.MFleetAlertsTotal].Count; got != 1 {
		t.Fatalf("fleet.alerts_total = %d, want 1", got)
	}
	if got := snap[metrics.MFleetProcesses].Value; got != 3 {
		t.Fatalf("fleet.processes = %v, want 3", got)
	}
	if got := snap[metrics.MFleetReports].Count; got != 18 {
		t.Fatalf("fleet.reports = %d, want 18", got)
	}

	spans := col.Drain()
	if len(spans) != 1 || spans[0].Name != span.NFleetAlert {
		t.Fatalf("spans = %+v, want one fleet.alert", spans)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "ALERT straggler on worker/w2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no activation log line in %q", logs)
	}
}

// TestStragglerClears verifies the down-debounce: once the slow worker
// recovers to fleet speed, the alert clears after DebounceDown healthy
// reports and the gauges return to zero.
func TestStragglerClears(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 4, Now: clk.Now})
	reg := metrics.NewRegistry()
	f.Instrument(reg)

	totals := feed(t, f, clk, 6, map[string]int64{"w0": 100, "w1": 100, "w2": 10}, nil)
	if n := len(f.View().Alerts); n != 1 {
		t.Fatalf("alerts before recovery = %d, want 1", n)
	}
	// Recovery: with Window 4 the slow samples age out quickly.
	feed(t, f, clk, 8, map[string]int64{"w0": 100, "w1": 100, "w2": 100}, totals)
	if alerts := f.View().Alerts; len(alerts) != 0 {
		t.Fatalf("alerts after recovery = %+v, want none", alerts)
	}
	snap := reg.Snapshot()
	if got := snap[metrics.MFleetAlertsActive].Value; got != 0 {
		t.Fatalf("fleet.alerts_active = %v, want 0", got)
	}
	if got := snap[metrics.MFleetStragglers].Value; got != 0 {
		t.Fatalf("fleet.stragglers = %v, want 0", got)
	}
	// The activation remains counted.
	if got := snap[metrics.MFleetAlertsTotal].Count; got != 1 {
		t.Fatalf("fleet.alerts_total = %d, want 1", got)
	}
}

// TestStragglerNeedsPeers pins that the rule stays silent below the
// minimum worker count — two workers cannot vote one of them slow.
func TestStragglerNeedsPeers(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Now: clk.Now})
	feed(t, f, clk, 6, map[string]int64{"w0": 100, "w1": 5}, nil)
	if alerts := f.View().Alerts; len(alerts) != 0 {
		t.Fatalf("alerts = %+v, want none with 2 workers", alerts)
	}
}

// TestDebounceSingleBreachSilent pins that one breaching evaluation does
// not activate an alert (DebounceUp = 2 by default).
func TestDebounceSingleBreachSilent(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 8, Now: clk.Now, Health: HealthConfig{DebounceUp: 3}})
	// Three rounds: rates become computable (and breach) at round 2 and 3
	// — only two breaching evaluations with new data, below DebounceUp 3.
	feed(t, f, clk, 3, map[string]int64{"w0": 100, "w1": 100, "w2": 5}, nil)
	if alerts := f.View().Alerts; len(alerts) != 0 {
		t.Fatalf("alerts = %+v, want none before debounce-up", alerts)
	}
}

func TestCacheDegradedFleetWide(t *testing.T) {
	clk := newFakeClock()
	var logs []string
	f := NewFleet(FleetConfig{
		Window: 8,
		Now:    clk.Now,
		Logf:   func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	// One worker, all misses: hit ratio 0 < 0.2 floor once accesses
	// clear MinAccesses (256).
	var iters int64
	for r := 0; r < 6; r++ {
		iters += 100
		err := f.Ingest(Report{Role: RoleWorker, Label: "w0", Seq: int64(r + 1), Metrics: counterSnap(map[string]int64{
			metrics.MTrainIterations: iters,
			metrics.MCacheHits:       0,
			metrics.MCacheMisses:     iters * 2,
		})})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	v := f.View()
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != RuleCacheDegraded {
		t.Fatalf("alerts = %+v, want cache_degraded", v.Alerts)
	}
	if v.Alerts[0].Proc != "" {
		t.Fatalf("cache_degraded proc = %q, want fleet-wide (empty)", v.Alerts[0].Proc)
	}
	if v.Alerts[0].Value != 0 {
		t.Fatalf("value = %v, want 0 hit ratio", v.Alerts[0].Value)
	}
}

func TestCommStall(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 8, Now: clk.Now})
	// Byte counters move for 3 reports, then freeze while iterations
	// continue — the comm path stalled, not the process. Window 8 keeps
	// the early moving samples in range; the rule needs the full-window
	// delta to be zero, so advance enough frozen reports.
	send := func(seq, iters, bytes int64) {
		err := f.Ingest(Report{Role: RoleWorker, Label: "w0", Seq: seq, Metrics: counterSnap(map[string]int64{
			metrics.MTrainIterations: iters,
			metrics.MPSBytesTx:       bytes,
			metrics.MPSBytesRx:       bytes,
		})})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	var seq int64
	for i := int64(1); i <= 3; i++ {
		seq++
		send(seq, i*100, i*1000)
	}
	for i := int64(4); i <= 14; i++ { // frozen bytes fill the whole window
		seq++
		send(seq, i*100, 3000)
	}
	v := f.View()
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != RuleCommStall {
		t.Fatalf("alerts = %+v, want comm_stall", v.Alerts)
	}
	if v.Alerts[0].Proc != "worker/w0" {
		t.Fatalf("proc = %q, want worker/w0", v.Alerts[0].Proc)
	}
}

// TestCommStallColdStartSilent pins that a process that never had traffic
// (bytes stuck at zero) is not a comm stall — it has not started yet.
func TestCommStallColdStartSilent(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 4, Now: clk.Now})
	for i := int64(1); i <= 8; i++ {
		err := f.Ingest(Report{Role: RoleWorker, Label: "w0", Seq: i, Metrics: counterSnap(map[string]int64{
			metrics.MTrainIterations: i * 100,
		})})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if alerts := f.View().Alerts; len(alerts) != 0 {
		t.Fatalf("alerts = %+v, want none for traffic-free process", alerts)
	}
}

// TestTelemetryLag verifies that a process that stops reporting is
// flagged from View() alone — a silently dead process needs no fresh
// ingest to be noticed.
func TestTelemetryLag(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 8, Now: clk.Now})
	feed(t, f, clk, 4, map[string]int64{"w0": 100}, nil)
	// Cadence is 1s; LagFactor 4 → silence beyond 4s breaches. The lag
	// rule debounces on distinct evaluation instants (its subject is
	// silent by definition), so two View() reads at different times
	// activate it.
	clk.Advance(10 * time.Second)
	f.View()
	clk.Advance(time.Second)
	v := f.View()
	var lagged []Alert
	for _, a := range v.Alerts {
		if a.Rule == RuleTelemetryLag {
			lagged = append(lagged, a)
		}
	}
	if len(lagged) != 1 || lagged[0].Proc != "worker/w0" {
		t.Fatalf("alerts = %+v, want telemetry_lag on worker/w0", v.Alerts)
	}
	if v.Processes[0].AgeMS != 12000 {
		t.Fatalf("age_ms = %v, want 12000", v.Processes[0].AgeMS)
	}
}

func TestFleetServeHTTP(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Now: clk.Now})
	feed(t, f, clk, 3, map[string]int64{"w0": 50}, nil)

	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var v FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if v.Kind != ViewKind || len(v.Processes) != 1 || v.Processes[0].ID != "worker/w0" {
		t.Fatalf("decoded view = %+v", v)
	}
}

// fakeSender records shipped reports.
type fakeSender struct {
	mu   sync.Mutex
	reps []Report
}

func (s *fakeSender) SendTelemetry(r Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reps = append(s.reps, r)
	return nil
}

func (s *fakeSender) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reps)
}

func TestShipper(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(metrics.MServeRequests).Add(7)
	var sink fakeSender
	sh := NewShipper(RoleServe, "127.0.0.1:9", reg.Snapshot, &sink, time.Hour, nil)
	sh.Start()
	// Immediate first report, then one final report at Stop.
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sh.Stop()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.reps) != 2 {
		t.Fatalf("reports = %d, want 2 (startup + shutdown)", len(sink.reps))
	}
	for i, r := range sink.reps {
		if r.Role != RoleServe || r.Label != "127.0.0.1:9" || r.Seq != int64(i+1) {
			t.Fatalf("report %d = %+v", i, r)
		}
		if r.Metrics[metrics.MServeRequests].Count != 7 {
			t.Fatalf("report %d metric count = %d", i, r.Metrics[metrics.MServeRequests].Count)
		}
	}
}

func TestPrimaryRate(t *testing.T) {
	cases := map[string]string{RoleWorker: "iter_s", RoleShard: "rpc_s", RoleServe: "req_s", "bogus": ""}
	for role, want := range cases {
		if got := PrimaryRate(role); got != want {
			t.Fatalf("PrimaryRate(%q) = %q, want %q", role, got, want)
		}
	}
}

// TestCommStallDegradedDiagnosis pins that a comm stall with open circuit
// breakers is diagnosed as a shard outage (degraded mode) rather than a
// mystery freeze, and that the breaker gauge surfaces as LinksDown in the
// process view.
func TestCommStallDegradedDiagnosis(t *testing.T) {
	clk := newFakeClock()
	f := NewFleet(FleetConfig{Window: 8, Now: clk.Now})
	send := func(seq, iters, bytes int64, open float64) {
		snap := counterSnap(map[string]int64{
			metrics.MTrainIterations: iters,
			metrics.MPSBytesTx:       bytes,
			metrics.MPSBytesRx:       bytes,
		})
		snap[metrics.MPSLinkBreakerOpen] = metrics.Value{Kind: metrics.KindGauge, Value: open}
		if err := f.Ingest(Report{Role: RoleWorker, Label: "w0", Seq: seq, Metrics: snap}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	var seq int64
	for i := int64(1); i <= 3; i++ {
		seq++
		send(seq, i*100, i*1000, 0)
	}
	for i := int64(4); i <= 14; i++ { // bytes frozen, one breaker open
		seq++
		send(seq, i*100, 3000, 1)
	}
	v := f.View()
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != RuleCommStall {
		t.Fatalf("alerts = %+v, want comm_stall", v.Alerts)
	}
	if !strings.Contains(v.Alerts[0].Message, "degraded mode") {
		t.Errorf("stall with open breaker should be diagnosed as degraded, got %q", v.Alerts[0].Message)
	}
	if len(v.Processes) != 1 || v.Processes[0].LinksDown == nil {
		t.Fatalf("process view missing links_down: %+v", v.Processes)
	}
	if *v.Processes[0].LinksDown != 1 {
		t.Errorf("links_down = %d, want 1", *v.Processes[0].LinksDown)
	}

	// Recovery: the breaker closes and traffic resumes — the view reports
	// the link healthy again (0, not absent).
	for i := int64(15); i <= 18; i++ {
		seq++
		send(seq, i*100, i*1000, 0)
	}
	v = f.View()
	if v.Processes[0].LinksDown == nil || *v.Processes[0].LinksDown != 0 {
		t.Errorf("links_down after recovery = %v, want 0", v.Processes[0].LinksDown)
	}
}
