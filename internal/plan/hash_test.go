package plan

import (
	"reflect"
	"strings"
	"testing"
)

// TestHashFieldOrderIndependence feeds the same configuration through two
// plan files whose run keys appear in reversed orders: the canonical hash
// must not see declaration order.
func TestHashFieldOrderIndependence(t *testing.T) {
	a := `
plan: p
run:
  dataset: wn18
  scale: tiny
  codec: int8
  lr: 0.05
  epochs: 4
`
	b := `
plan: p
run:
  epochs: 4
  lr: 0.05
  codec: int8
  scale: tiny
  dataset: wn18
`
	pa, err := Parse([]byte(a))
	if err != nil {
		t.Fatalf("Parse a: %v", err)
	}
	pb, err := Parse([]byte(b))
	if err != nil {
		t.Fatalf("Parse b: %v", err)
	}
	if pa.Base.Hash() != pb.Base.Hash() {
		t.Fatalf("hashes differ across key orders:\n%s\nvs\n%s", pa.Base.Canonical(), pb.Base.Canonical())
	}
}

// TestHashSpelledOutDefaults: a spec that spells a default value explicitly
// hashes identically to one that leaves it zero (Normalize fills it).
func TestHashSpelledOutDefaults(t *testing.T) {
	var implicit RunSpec
	explicit := DefaultSpec()
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("implicit and explicit defaults hash differently:\n%s\nvs\n%s",
			implicit.Canonical(), explicit.Canonical())
	}
}

// TestHashSensitivity mutates every plan-tagged field in turn and demands a
// hash change: no knob may be semantically invisible.
func TestHashSensitivity(t *testing.T) {
	base := DefaultSpec()
	baseHash := base.Hash()
	seen := map[string]string{baseHash: "(base)"}
	for _, f := range specFields() {
		key := f.Tag.Get("plan")
		s := base
		fv := reflect.ValueOf(&s).Elem().FieldByIndex(f.Index)
		switch fv.Kind() {
		case reflect.String:
			fv.SetString(fv.String() + "-mut")
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 101)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.625)
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		default:
			t.Fatalf("field %s has untested kind %s", key, fv.Kind())
		}
		h := s.Hash()
		if h == baseHash {
			t.Errorf("mutating %q did not change the hash", key)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutations of %q and %s collide", key, prev)
		}
		seen[h] = key
	}
}

// TestCanonicalFormat pins the serialization's shape: versioned first line,
// one sorted key=value line per field, quoted strings.
func TestCanonicalFormat(t *testing.T) {
	c := DefaultSpec().Canonical()
	lines := strings.Split(strings.TrimSuffix(c, "\n"), "\n")
	if lines[0] != specHashVersion {
		t.Fatalf("first line = %q, want %q", lines[0], specHashVersion)
	}
	keys := SpecKeys()
	if len(lines)-1 != len(keys) {
		t.Fatalf("%d value lines, want %d", len(lines)-1, len(keys))
	}
	for i, key := range keys {
		if !strings.HasPrefix(lines[i+1], key+"=") {
			t.Errorf("line %d = %q, want prefix %q", i+1, lines[i+1], key+"=")
		}
	}
	if !strings.Contains(c, `dataset="fb15k"`) {
		t.Errorf("canonical form does not quote strings:\n%s", c)
	}
	if !sortedStrings(keys) {
		t.Errorf("SpecKeys not sorted: %v", keys)
	}
}

func TestShortHash(t *testing.T) {
	s := DefaultSpec()
	if sh := s.ShortHash(); len(sh) != 12 || !strings.HasPrefix(s.Hash(), sh) {
		t.Fatalf("ShortHash = %q for hash %q", sh, s.Hash())
	}
}

func sortedStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] >= ss[i] {
			return false
		}
	}
	return true
}
