// Package plan is the declarative experiment layer: a hetkg.yml file
// declares a run configuration plus a sweep matrix, `hetkg plan` resolves
// it into a deterministic run list with canonical config hashes, and
// `hetkg apply` executes the list in-process — generation-heavy
// intermediates served from the content-addressed artifact cache — and
// emits one hetkg-bench/v2 snapshot that `hetkg compare` gates against a
// committed baseline. DESIGN.md §14 documents the schema, hash scheme, and
// cache layout.
package plan

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Plan is one parsed hetkg.yml: a named base configuration, an optional
// sweep matrix, and optional compare tolerances.
type Plan struct {
	// Name identifies the plan; the BENCH snapshot is BENCH_<Name>.json.
	Name string
	// Base is the `run:` section over the repo defaults.
	Base RunSpec
	// Sweep is the `sweep:` matrix, axes sorted by key. Every resolved run
	// is Base plus one assignment from each axis.
	Sweep []SweepAxis
	// Tolerance is the `compare: tolerance:` map — per-field relative
	// regression budgets for `hetkg compare` (see Compare).
	Tolerance map[string]float64
}

// SweepAxis is one swept key and its values, in declaration order.
type SweepAxis struct {
	Key    string
	Values []any
}

// Run is one resolved run of a plan's matrix.
type Run struct {
	// Name is the sweep assignment ("cacheBudget=0.01,codec=fp32"), or
	// "base" for a sweepless plan — the BENCH row name.
	Name string
	// Spec is the fully-resolved configuration.
	Spec RunSpec
	// Hash is Spec.Hash(), the canonical config hash.
	Hash string
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// Parse parses plan source. Unknown keys anywhere are errors — a typoed
// knob must fail loudly, not silently fall back to a default.
func Parse(src []byte) (*Plan, error) {
	doc, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	p := &Plan{Base: DefaultSpec()}
	for key, val := range doc {
		switch key {
		case "plan":
			name, ok := val.(string)
			if !ok || name == "" {
				return nil, fmt.Errorf("plan: `plan:` must name the plan (a non-empty string)")
			}
			p.Name = name
		case "run":
			if val == nil {
				continue
			}
			m, ok := val.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("plan: `run:` must be a mapping of run keys")
			}
			for k, v := range m {
				if err := setSpecKey(&p.Base, k, v); err != nil {
					return nil, err
				}
			}
		case "sweep":
			if val == nil {
				continue
			}
			m, ok := val.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("plan: `sweep:` must be a mapping of run keys to value lists")
			}
			axes, err := parseSweep(m)
			if err != nil {
				return nil, err
			}
			p.Sweep = axes
		case "compare":
			tol, err := parseCompare(val)
			if err != nil {
				return nil, err
			}
			p.Tolerance = tol
		default:
			return nil, fmt.Errorf("plan: unknown top-level key %q (have plan, run, sweep, compare)", key)
		}
	}
	if p.Name == "" {
		return nil, fmt.Errorf("plan: missing `plan:` name")
	}
	if !validPlanName(p.Name) {
		return nil, fmt.Errorf("plan: name %q must be letters, digits, - or _ (it names BENCH_<plan>.json)", p.Name)
	}
	return p, nil
}

// parseSweep validates the matrix: every axis must be a known run key with
// a non-empty list of scalars, each of which must coerce into the field.
func parseSweep(m map[string]any) ([]SweepAxis, error) {
	axes := make([]SweepAxis, 0, len(m))
	for k, v := range m {
		list, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("plan: sweep key %q must list values ([a, b] or `- a` items)", k)
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("plan: sweep key %q has no values", k)
		}
		for _, item := range list {
			var probe RunSpec
			if err := setSpecKey(&probe, k, item); err != nil {
				return nil, fmt.Errorf("%w (sweep key %q)", err, k)
			}
		}
		axes = append(axes, SweepAxis{Key: k, Values: list})
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].Key < axes[j].Key })
	return axes, nil
}

// parseCompare validates `compare: tolerance: {field: fraction}`.
func parseCompare(val any) (map[string]float64, error) {
	if val == nil {
		return nil, nil
	}
	m, ok := val.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("plan: `compare:` must be a mapping")
	}
	var tol map[string]float64
	for k, v := range m {
		if k != "tolerance" {
			return nil, fmt.Errorf("plan: unknown compare key %q (have tolerance)", k)
		}
		tm, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("plan: `tolerance:` must map fields to fractions")
		}
		tol = make(map[string]float64, len(tm))
		for field, fv := range tm {
			switch n := fv.(type) {
			case float64:
				tol[field] = n
			case int64:
				tol[field] = float64(n)
			default:
				return nil, fmt.Errorf("plan: tolerance %q wants a number, got %v (%T)", field, fv, fv)
			}
			if tol[field] < 0 {
				return nil, fmt.Errorf("plan: tolerance %q is negative", field)
			}
		}
	}
	return tol, nil
}

// Resolve expands the sweep matrix into the deterministic run list: axes in
// sorted key order, the cartesian product enumerated odometer-style with
// the last axis fastest, each run named by its assignment and stamped with
// its canonical config hash.
func (p *Plan) Resolve() ([]Run, error) {
	if len(p.Sweep) == 0 {
		spec := p.Base
		spec.Normalize()
		return []Run{{Name: "base", Spec: spec, Hash: spec.Hash()}}, nil
	}
	counts := make([]int, len(p.Sweep))
	total := 1
	for i, ax := range p.Sweep {
		counts[i] = len(ax.Values)
		total *= counts[i]
	}
	runs := make([]Run, 0, total)
	idx := make([]int, len(p.Sweep))
	for {
		spec := p.Base
		parts := make([]string, len(p.Sweep))
		for i, ax := range p.Sweep {
			val := ax.Values[idx[i]]
			if err := setSpecKey(&spec, ax.Key, val); err != nil {
				return nil, err
			}
			parts[i] = ax.Key + "=" + scalarString(val)
		}
		spec.Normalize()
		runs = append(runs, Run{Name: strings.Join(parts, ","), Spec: spec, Hash: spec.Hash()})
		// Advance the odometer, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < counts[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return runs, nil
		}
	}
}

// scalarString renders a sweep value for run names, matching the canonical
// number formatting so names are stable across parses.
func scalarString(v any) string {
	switch n := v.(type) {
	case string:
		return n
	case int64:
		return strconv.FormatInt(n, 10)
	case float64:
		return strconv.FormatFloat(n, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(n)
	default:
		return fmt.Sprint(v)
	}
}

// validPlanName keeps plan names path- and row-safe.
func validPlanName(s string) bool {
	for _, r := range s {
		ok := r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
