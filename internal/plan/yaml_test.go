package plan

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	src := `
# experiment plan
plan: codecs   # trailing comment
run:
  dataset: fb15k
  lr: 0.1
  epochs: 3
  noHeterogeneity: true
  note: "a # not a comment"
sweep:
  codec: [fp32, int8, delta-int8]
  cacheBudget:
    - 0.01
    - 0.05
empty:
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	want := map[string]any{
		"plan": "codecs",
		"run": map[string]any{
			"dataset":         "fb15k",
			"lr":              0.1,
			"epochs":          int64(3),
			"noHeterogeneity": true,
			"note":            "a # not a comment",
		},
		"sweep": map[string]any{
			"codec":       []any{"fp32", "int8", "delta-int8"},
			"cacheBudget": []any{0.01, 0.05},
		},
		"empty": nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseYAML =\n%#v\nwant\n%#v", got, want)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	src := `
a: null
b: ~
c: true
d: False
e: -42
f: 3.5e-2
g: 'it''s'
h: "x\"y"
i: bare string
j: []
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	checks := map[string]any{
		"a": nil, "b": nil, "c": true, "d": false,
		"e": int64(-42), "f": 3.5e-2,
		"g": "it's", "h": `x"y`, "i": "bare string",
	}
	for k, want := range checks {
		if !reflect.DeepEqual(got[k], want) {
			t.Errorf("%s = %#v, want %#v", k, got[k], want)
		}
	}
	if seq, ok := got["j"].([]any); !ok || len(seq) != 0 {
		t.Errorf("j = %#v, want empty sequence", got["j"])
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		wantLine           string
	}{
		{"tab indent", "a:\n\tb: 1", "tab in indentation", "line 2"},
		{"duplicate key", "a: 1\na: 2", "duplicate key", "line 2"},
		{"directive", "%YAML 1.2\na: 1", "outside the plan subset", "line 1"},
		{"multi-doc", "a: 1\n---\nb: 2", "outside the plan subset", "line 2"},
		{"flow mapping", "a: {b: 1}", "flow mappings", "line 1"},
		{"nested flow", "a: [[1], 2]", "nested flow sequences", "line 1"},
		{"unterminated flow", "a: [1, 2", "unterminated flow sequence", "line 1"},
		{"unterminated quote", `a: "oops`, "unterminated quoted string", "line 1"},
		{"missing colon space", "a:1", "missing space", "line 1"},
		{"quoted key", `"a": 1`, "quoted keys", "line 1"},
		{"stray indent", "a: 1\n  b: 2", "unexpected indentation", "line 2"},
		{"list in mapping", "a: 1\n- b", "list item in a mapping", "line 2"},
		{"mapping in list", "a:\n  - k: v", "mappings inside lists", "line 2"},
		{"top-level list", "- a\n- b", "must be a mapping", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseYAML(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantSub)
			}
			if tc.wantLine != "" && !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error = %v, want it to cite %s", err, tc.wantLine)
			}
		})
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	got, err := parseYAML([]byte("\n# only comments\n"))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("parseYAML = %#v, want empty mapping", got)
	}
}
