package plan

import (
	"flag"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"hetkg/internal/core"
	"hetkg/internal/dataset"
)

// RunSpec is the declarative surface of one training run: every knob a plan
// file or a hetkg-train flag may set, and nothing deployment-specific
// (shard addresses, checkpoint paths, observability sinks — those belong to
// the process, not the experiment). It is the single source of truth three
// consumers share, so they cannot drift:
//
//   - the YAML loader decodes plan `run:` and `sweep:` keys into it (the
//     `plan:"..."` tags name the keys; scripts/check.sh lints that each is
//     documented in DESIGN.md §14);
//   - BindFlags registers the equivalent hetkg-train flags onto it;
//   - RunConfig() is the one mapping from either source to core.RunConfig.
//
// Field semantics are documented on core.RunConfig; zero values defer to
// the scale-derived defaults there.
type RunSpec struct {
	Dataset     string  `plan:"dataset"`
	Scale       string  `plan:"scale"`
	System      string  `plan:"system"`
	Model       string  `plan:"model"`
	Loss        string  `plan:"loss"`
	Optimizer   string  `plan:"optimizer"`
	Margin      float64 `plan:"margin"`
	Dim         int     `plan:"dim"`
	LR          float64 `plan:"lr"`
	Epochs      int     `plan:"epochs"`
	Batch       int     `plan:"batch"`
	Negs        int     `plan:"negs"`
	Chunk       int     `plan:"chunk"`
	Machines    int     `plan:"machines"`
	Workers     int     `plan:"workers"`
	Partitioner string  `plan:"partitioner"`
	// Cache is the absolute hot-table capacity; CacheBudget the fractional
	// spelling (of the entity+relation universe). Cache wins when both set.
	Cache           int     `plan:"cache"`
	CacheBudget     float64 `plan:"cacheBudget"`
	Staleness       int     `plan:"staleness"`
	Prefetch        int     `plan:"prefetch"`
	EntityRatio     float64 `plan:"entityRatio"`
	NoHeterogeneity bool    `plan:"noHeterogeneity"`
	Codec           string  `plan:"codec"`
	TopKRatio       float64 `plan:"topkRatio"`
	Adversarial     float64 `plan:"adversarial"`
	DegreeNegatives bool    `plan:"degreeNegatives"`
	Parallelism     int     `plan:"parallelism"`
	EvalEvery       int     `plan:"evalEvery"`
	EvalMax         int     `plan:"evalMax"`
	Seed            int64   `plan:"seed"`
}

// DefaultSpec returns the repo-wide run defaults — identical to the
// hetkg-train flag defaults, because BindFlags registers these values.
func DefaultSpec() RunSpec {
	return RunSpec{
		Dataset:     "fb15k",
		Scale:       "small",
		System:      "hetkg-d",
		Model:       "transe",
		Loss:        "logistic",
		Optimizer:   "adagrad",
		Margin:      1.0,
		LR:          0.1,
		Negs:        8,
		Chunk:       8,
		Machines:    4,
		Workers:     1,
		Partitioner: "metis",
		Staleness:   8,
		Prefetch:    16,
		EntityRatio: 0.25,
		Seed:        42,
	}
}

// Normalize fills every defaulted field, so two specs that differ only in
// spelling out a default hash identically. Fields left zero after
// Normalize (dim, epochs, batch, cache, ...) mean "scale-derived default"
// and hash as zero — core resolves them deterministically from Scale.
func (s *RunSpec) Normalize() {
	d := DefaultSpec()
	v := reflect.ValueOf(s).Elem()
	dv := reflect.ValueOf(d)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			v.Field(i).Set(dv.Field(i))
		}
	}
}

// systems maps the flag/plan spelling to the core system.
var systems = map[string]core.System{
	"pbg":     core.SystemPBG,
	"dglke":   core.SystemDGLKE,
	"hetkg-c": core.SystemHETKGC,
	"hetkg-d": core.SystemHETKGD,
}

// ParseSystem resolves a system name ("pbg", "dglke", "hetkg-c", "hetkg-d").
func ParseSystem(name string) (core.System, error) {
	sys, ok := systems[name]
	if !ok {
		names := make([]string, 0, len(systems))
		for n := range systems {
			names = append(names, n)
		}
		sort.Strings(names)
		return "", fmt.Errorf("plan: unknown system %q (have %s)", name, strings.Join(names, ", "))
	}
	return sys, nil
}

// RunConfig maps the spec to an executable core.RunConfig — the one
// flag-or-YAML→config builder. Deployment fields (ShardAddrs, JoinAddr,
// timelines, spans, metrics) are left zero for the caller to overlay.
func (s RunSpec) RunConfig() (core.RunConfig, error) {
	s.Normalize()
	sys, err := ParseSystem(s.System)
	if err != nil {
		return core.RunConfig{}, err
	}
	return core.RunConfig{
		Dataset:                 s.Dataset,
		Scale:                   dataset.ParseScale(s.Scale),
		System:                  sys,
		ModelName:               s.Model,
		LossName:                s.Loss,
		OptimizerName:           s.Optimizer,
		Margin:                  float32(s.Margin),
		Dim:                     s.Dim,
		LR:                      float32(s.LR),
		Epochs:                  s.Epochs,
		BatchSize:               s.Batch,
		NegPerPos:               s.Negs,
		ChunkSize:               s.Chunk,
		Machines:                s.Machines,
		WorkersPerMachine:       s.Workers,
		PartitionerName:         s.Partitioner,
		CacheCapacity:           s.Cache,
		CacheBudget:             s.CacheBudget,
		CacheSyncEvery:          s.Staleness,
		CachePrefetchD:          s.Prefetch,
		EntityFraction:          s.EntityRatio,
		NoHeterogeneity:         s.NoHeterogeneity,
		Codec:                   s.Codec,
		TopKRatio:               s.TopKRatio,
		AdversarialTemp:         float32(s.Adversarial),
		DegreeWeightedNegatives: s.DegreeNegatives,
		Parallelism:             s.Parallelism,
		EvalEvery:               s.EvalEvery,
		EvalMax:                 s.EvalMax,
		Seed:                    s.Seed,
	}, nil
}

// BindFlags registers the run-configuration flags (the experiment-semantic
// subset of hetkg-train's surface) onto fs, bound to the returned spec.
// Flag names and defaults are the historical hetkg-train spellings.
func BindFlags(fs *flag.FlagSet) *RunSpec {
	s := DefaultSpec()
	fs.StringVar(&s.Dataset, "dataset", s.Dataset, "dataset preset: fb15k | wn18 | freebase86m")
	fs.StringVar(&s.Scale, "scale", s.Scale, "dataset scale: tiny | small | paper")
	fs.StringVar(&s.System, "system", s.System, "system: pbg | dglke | hetkg-c | hetkg-d")
	fs.StringVar(&s.Model, "model", s.Model, "model: transe | transe_l2 | distmult | transh | complex")
	fs.StringVar(&s.Loss, "loss", s.Loss, "loss: logistic | ranking")
	fs.StringVar(&s.Optimizer, "optimizer", s.Optimizer, "optimizer: adagrad | sgd | adam")
	fs.Float64Var(&s.Margin, "margin", s.Margin, "ranking-loss margin γ")
	fs.IntVar(&s.Dim, "dim", s.Dim, "embedding dimension d (0 = scale default)")
	fs.Float64Var(&s.LR, "lr", s.LR, "AdaGrad learning rate")
	fs.IntVar(&s.Epochs, "epochs", s.Epochs, "training epochs (0 = scale default)")
	fs.IntVar(&s.Batch, "batch", s.Batch, "positive batch size b_p (0 = scale default)")
	fs.IntVar(&s.Negs, "negs", s.Negs, "negatives per positive b_n")
	fs.IntVar(&s.Chunk, "chunk", s.Chunk, "negative-sampling chunk size b_c")
	fs.IntVar(&s.Machines, "machines", s.Machines, "cluster machines (PS shards)")
	fs.IntVar(&s.Workers, "workers", s.Workers, "workers per machine")
	fs.StringVar(&s.Partitioner, "partitioner", s.Partitioner, "graph partitioner: metis | random")
	fs.IntVar(&s.Cache, "cache", s.Cache, "hot-embedding table capacity k (0 = -cache-budget, else 5% of ids)")
	fs.Float64Var(&s.CacheBudget, "cache-budget", s.CacheBudget, "hot table size as a fraction of the entity+relation universe (0 = default; ignored when -cache is set)")
	fs.IntVar(&s.Staleness, "staleness", s.Staleness, "staleness bound P (cache refresh interval)")
	fs.IntVar(&s.Prefetch, "prefetch", s.Prefetch, "prefetch depth D (DPS rebuild interval)")
	fs.Float64Var(&s.EntityRatio, "entity-ratio", s.EntityRatio, "entity share of the cache (heterogeneity quota)")
	fs.BoolVar(&s.NoHeterogeneity, "no-heterogeneity", s.NoHeterogeneity, "disable the entity/relation quota (HET-KG-N)")
	fs.StringVar(&s.Codec, "codec", s.Codec, "wire codec profile: fp32 | fp16 | int8 | delta-int8 | topk | auto (default fp32)")
	fs.Float64Var(&s.TopKRatio, "topk-ratio", s.TopKRatio, "kept gradient fraction per row for -codec topk (0 = default 0.125)")
	fs.Float64Var(&s.Adversarial, "adversarial", s.Adversarial, "self-adversarial negative sampling temperature (0 = off)")
	fs.BoolVar(&s.DegreeNegatives, "degree-negatives", s.DegreeNegatives, "corrupt with degree^0.75-weighted entities (hard negatives)")
	fs.IntVar(&s.Parallelism, "parallelism", s.Parallelism, "cores for batch compute and evaluation (0 = all; results identical at any value)")
	fs.IntVar(&s.EvalEvery, "eval-every", s.EvalEvery, "epochs between validation evaluations (0 = every epoch; larger than -epochs defers to the final evaluation only)")
	fs.IntVar(&s.EvalMax, "eval-max", s.EvalMax, "validation triples scored per evaluation (0 = default 300)")
	fs.Int64Var(&s.Seed, "seed", s.Seed, "random seed")
	return &s
}

// specFields enumerates the plan-tagged fields, sorted by key — the shared
// walk under decoding, hashing, and key listing.
func specFields() []reflect.StructField {
	t := reflect.TypeOf(RunSpec{})
	fields := make([]reflect.StructField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Tag.Get("plan") != "" {
			fields = append(fields, t.Field(i))
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		return fields[i].Tag.Get("plan") < fields[j].Tag.Get("plan")
	})
	return fields
}

// SpecKeys lists every plan key, sorted — the schema surface the DESIGN.md
// §14 lint covers.
func SpecKeys() []string {
	fields := specFields()
	keys := make([]string, len(fields))
	for i, f := range fields {
		keys[i] = f.Tag.Get("plan")
	}
	return keys
}

// setSpecKey assigns one decoded YAML value to its spec field.
func setSpecKey(s *RunSpec, key string, val any) error {
	for _, f := range specFields() {
		if f.Tag.Get("plan") != key {
			continue
		}
		fv := reflect.ValueOf(s).Elem().FieldByIndex(f.Index)
		return coerce(fv, key, val)
	}
	return fmt.Errorf("plan: unknown run key %q (have %s)", key, strings.Join(SpecKeys(), ", "))
}

// coerce converts a parsed YAML scalar into a spec field.
func coerce(fv reflect.Value, key string, val any) error {
	if val == nil {
		return fmt.Errorf("plan: key %q has no value", key)
	}
	switch fv.Kind() {
	case reflect.String:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("plan: key %q wants a string, got %v (%T)", key, val, val)
		}
		fv.SetString(s)
	case reflect.Int, reflect.Int64:
		n, ok := val.(int64)
		if !ok {
			return fmt.Errorf("plan: key %q wants an integer, got %v (%T)", key, val, val)
		}
		fv.SetInt(n)
	case reflect.Float64:
		switch n := val.(type) {
		case float64:
			fv.SetFloat(n)
		case int64:
			fv.SetFloat(float64(n))
		default:
			return fmt.Errorf("plan: key %q wants a number, got %v (%T)", key, val, val)
		}
	case reflect.Bool:
		b, ok := val.(bool)
		if !ok {
			return fmt.Errorf("plan: key %q wants true/false, got %v (%T)", key, val, val)
		}
		fv.SetBool(b)
	default:
		return fmt.Errorf("plan: key %q has unsupported field kind %s", key, fv.Kind())
	}
	return nil
}
