package plan

import (
	"path/filepath"
	"testing"

	"hetkg/internal/artifact"
	"hetkg/internal/plan/benchfmt"
)

const applyPlan = `
plan: apply-test
run:
  dataset: fb15k
  scale: tiny
  epochs: 1
  machines: 2
  evalMax: 50
sweep:
  codec: [fp32, int8]
`

// TestApplyWarmCacheSkipsGeneration is the acceptance proof for the
// artifact cache: a cold apply misses (and fills) the store; a warm apply
// of the same plan is served entirely from it — zero misses — while
// producing bit-identical deterministic measurements.
func TestApplyWarmCacheSkipsGeneration(t *testing.T) {
	p, err := Parse([]byte(applyPlan))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st, err := artifact.Open(filepath.Join(t.TempDir(), "artifacts"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	cold, err := Apply(p, ApplyOptions{Artifacts: st, Logf: t.Logf})
	if err != nil {
		t.Fatalf("cold Apply: %v", err)
	}
	if cold.CacheMisses == 0 {
		t.Fatal("cold apply reported no cache misses — nothing was generated?")
	}
	// Both runs share dataset and partition, so run 2 already hits.
	if cold.CacheHits == 0 {
		t.Error("cold apply's second run did not reuse the first run's artifacts")
	}

	warm, err := Apply(p, ApplyOptions{Artifacts: st})
	if err != nil {
		t.Fatalf("warm Apply: %v", err)
	}
	if warm.CacheMisses != 0 {
		t.Errorf("warm apply missed %d times, want 0 (generation not skipped)", warm.CacheMisses)
	}
	if warm.CacheHits == 0 {
		t.Error("warm apply reported no cache hits")
	}

	// Snapshot shape: one row per resolved run, hashed, with the
	// conventional measurements.
	f := cold.File
	if f.Name != "apply-test" || len(f.Rows) != 2 {
		t.Fatalf("snapshot = %+v", f)
	}
	wantRows := []string{"codec=fp32", "codec=int8"}
	for i, r := range f.Rows {
		if r.Name != wantRows[i] {
			t.Errorf("row %d = %q, want %q", i, r.Name, wantRows[i])
		}
		if len(r.Hash) != 64 {
			t.Errorf("row %q hash = %q", r.Name, r.Hash)
		}
		for _, field := range []string{"wall_ms", "iters", "mrr", "loss", "hit_ratio"} {
			if _, ok := r.Value(field); !ok {
				t.Errorf("row %q lacks %s (has %v)", r.Name, field, r.Fields())
			}
		}
	}

	// Cached intermediates must not change results: every deterministic
	// field agrees between the cold and warm passes.
	for i := range f.Rows {
		for _, field := range []string{"iters", "mrr", "loss", "hit_ratio", "bytes_raw", "bytes_wire"} {
			cv := f.Rows[i].Values[field]
			wv := warm.File.Rows[i].Values[field]
			if cv != wv {
				t.Errorf("row %q %s: cold %v != warm %v", f.Rows[i].Name, field, cv, wv)
			}
		}
	}

	// int8 must actually compress relative to raw.
	if r, ok := f.RowByName("codec=int8"); ok {
		if r.Values["bytes_wire"] >= r.Values["bytes_raw"] {
			t.Errorf("int8 wire bytes %v not below raw %v", r.Values["bytes_wire"], r.Values["bytes_raw"])
		}
	}
}

// TestApplyNoStore runs a single-run plan without a cache attached.
func TestApplyNoStore(t *testing.T) {
	p, err := Parse([]byte("plan: bare\nrun:\n  scale: tiny\n  epochs: 1\n  machines: 2\n  evalMax: 50"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := Apply(p, ApplyOptions{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Errorf("storeless apply counted cache traffic: %+v", res)
	}
	if len(res.File.Rows) != 1 || res.File.Rows[0].Name != "base" {
		t.Fatalf("rows = %+v", res.File.Rows)
	}
}

// TestApplySnapshotGatesItself closes the loop: an apply's own snapshot
// passes Compare against itself under the plan's tolerances.
func TestApplySnapshotGatesItself(t *testing.T) {
	p, err := Parse([]byte("plan: gate\nrun:\n  scale: tiny\n  epochs: 1\n  machines: 2\n  evalMax: 50"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := Apply(p, ApplyOptions{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if rep := Compare(res.File, res.File, p.Tolerance); !rep.OK() {
		t.Fatalf("self-compare failed: %s", rep.Summary())
	}
	// Round-trip through the on-disk format.
	path, err := benchfmt.WriteDir(t.TempDir(), res.File)
	if err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	loaded, err := benchfmt.Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rep := Compare(res.File, loaded, p.Tolerance); !rep.OK() {
		t.Fatalf("round-tripped compare failed: %s", rep.Summary())
	}
}
