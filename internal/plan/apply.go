package plan

import (
	"fmt"
	"time"

	"hetkg/internal/artifact"
	"hetkg/internal/core"
	"hetkg/internal/metrics"
	"hetkg/internal/plan/benchfmt"
)

// ApplyOptions configures plan execution.
type ApplyOptions struct {
	// Artifacts, when non-nil, serves dataset generation and partitioning
	// from the content-addressed cache across the plan's runs (and across
	// invocations sharing the directory). Nil disables caching; results are
	// identical either way.
	Artifacts *artifact.Store
	// Logf receives per-run progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// ApplyResult is an executed plan: the hetkg-bench/v2 snapshot plus the
// artifact-cache traffic the plan generated (counter deltas over the run).
type ApplyResult struct {
	File *benchfmt.File
	// CacheHits and CacheMisses are the artifact-store deltas attributable
	// to this Apply — a warm second run of the same plan shows all hits.
	CacheHits, CacheMisses int64
}

// Apply resolves and executes every run of the plan in-process, in matrix
// order, and assembles one snapshot row per run. Each row carries the run's
// canonical config hash and the conventional measurement set: wall_ms,
// iters, iters_per_sec, loss, mrr, hit_ratio, bytes_raw, bytes_wire — of
// which only wall_ms and iters_per_sec are wall-clock-derived; the rest are
// bit-deterministic for the configuration.
func Apply(p *Plan, opt ApplyOptions) (*ApplyResult, error) {
	runs, err := p.Resolve()
	if err != nil {
		return nil, err
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var hits0, miss0 int64
	if opt.Artifacts != nil {
		hits0, miss0 = opt.Artifacts.Hits(), opt.Artifacts.Misses()
	}
	base := p.Base
	base.Normalize()
	file := &benchfmt.File{
		Name:  p.Name,
		Scale: base.Scale,
		Seed:  base.Seed,
		Meta: map[string]string{
			"dataset": base.Dataset,
			"model":   base.Model,
			"system":  base.System,
		},
	}
	for i, run := range runs {
		rc, err := run.Spec.RunConfig()
		if err != nil {
			return nil, fmt.Errorf("plan %s: run %s: %w", p.Name, run.Name, err)
		}
		rc.Artifacts = opt.Artifacts
		if rc.Metrics == nil {
			rc.Metrics = metrics.NewRegistry()
		}
		logf("run %d/%d %s (%s)", i+1, len(runs), run.Name, run.Spec.ShortHash())
		start := time.Now()
		res, err := core.Run(rc)
		if err != nil {
			return nil, fmt.Errorf("plan %s: run %s: %w", p.Name, run.Name, err)
		}
		wall := time.Since(start)
		iters := float64(res.Metrics.Counter(metrics.MTrainIterations).Value())
		values := map[string]float64{
			"wall_ms":    float64(wall) / float64(time.Millisecond),
			"iters":      iters,
			"mrr":        res.Final.MRR,
			"hit_ratio":  res.HitRatio,
			"bytes_raw":  float64(res.Metrics.Counter(metrics.MPSCodecBytesRaw).Value()),
			"bytes_wire": float64(res.Metrics.Counter(metrics.MPSCodecBytesWire).Value()),
		}
		if secs := wall.Seconds(); secs > 0 {
			values["iters_per_sec"] = iters / secs
		}
		if n := len(res.Epochs); n > 0 {
			values["loss"] = res.Epochs[n-1].Loss
		}
		file.Rows = append(file.Rows, benchfmt.Row{Name: run.Name, Hash: run.Hash, Values: values})
		logf("  mrr=%.4f loss=%.4f hit=%.3f wall=%s", res.Final.MRR, values["loss"], res.HitRatio, wall.Round(time.Millisecond))
	}
	r := &ApplyResult{File: file}
	if opt.Artifacts != nil {
		r.CacheHits = opt.Artifacts.Hits() - hits0
		r.CacheMisses = opt.Artifacts.Misses() - miss0
	}
	return r, nil
}
