package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// specHashVersion versions the canonical serialization. Bump it when the
// spec gains or loses a field or a value's formatting changes: every hash
// moves at once, which reads as a universal cache miss — never as a stale
// artifact served under a new meaning.
const specHashVersion = "hetkg-spec/v1"

// Canonical renders the normalized spec as its canonical serialization:
// one `key=value` line per plan-tagged field, sorted by key. The encoding
// is field-order-independent by construction (the walk sorts on tag names,
// not declaration order) and injective per field (strings are quoted, so a
// value can never forge a neighboring key).
func (s RunSpec) Canonical() string {
	s.Normalize()
	var b strings.Builder
	b.WriteString(specHashVersion)
	b.WriteByte('\n')
	v := reflect.ValueOf(s)
	for _, f := range specFields() {
		b.WriteString(f.Tag.Get("plan"))
		b.WriteByte('=')
		b.WriteString(canonicalValue(v.FieldByIndex(f.Index)))
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash is the canonical config hash: hex SHA-256 of Canonical(). It names
// artifact-cache entries and ties BENCH rows to the exact configuration
// that produced them.
func (s RunSpec) Hash() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}

// ShortHash is the display form (12 hex chars, like git's abbreviations).
func (s RunSpec) ShortHash() string { return s.Hash()[:12] }

// canonicalValue formats one field value deterministically.
func canonicalValue(fv reflect.Value) string {
	switch fv.Kind() {
	case reflect.String:
		return strconv.Quote(fv.String())
	case reflect.Int, reflect.Int64:
		return strconv.FormatInt(fv.Int(), 10)
	case reflect.Float64:
		return strconv.FormatFloat(fv.Float(), 'g', -1, 64)
	case reflect.Bool:
		return strconv.FormatBool(fv.Bool())
	default:
		panic(fmt.Sprintf("plan: unhashable spec field kind %s", fv.Kind()))
	}
}
