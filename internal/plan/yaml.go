package plan

import (
	"fmt"
	"strconv"
	"strings"
)

// Plans are YAML so they read like every other infra config a user touches,
// but the repo is dependency-free, so this file implements the small YAML
// subset plans actually need rather than importing a parser:
//
//   - block mappings nested by space indentation (`key: value`, `key:` +
//     indented block);
//   - block sequences of scalars (`- item`);
//   - flow sequences of scalars (`[a, b, c]`) — the natural sweep spelling;
//   - scalars: null/~, true/false, integers, floats, single- or
//     double-quoted strings, bare strings;
//   - `#` comments and blank lines.
//
// Anything outside the subset — anchors, multi-document streams, block
// scalars, tabs in indentation, flow mappings — is a parse error with a
// line number, never a silent misread. DESIGN.md §14 documents the subset.

// yamlError is a parse error with a 1-based source line.
type yamlError struct {
	line int
	msg  string
}

// Error renders the message with its source line.
func (e *yamlError) Error() string { return fmt.Sprintf("plan: line %d: %s", e.line, e.msg) }

func yamlErrf(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// yamlLine is one significant source line.
type yamlLine struct {
	num     int // 1-based source line
	indent  int
	content string
}

// parseYAML parses a document whose top level is a mapping.
func parseYAML(src []byte) (map[string]any, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, yamlErrf(lines[next].num, "unexpected de-indented content after the document")
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, yamlErrf(lines[0].num, "document must be a mapping (key: value), not a list")
	}
	return m, nil
}

// splitLines strips comments and blanks and measures indentation.
func splitLines(src []byte) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(string(src), "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, yamlErrf(num+1, "tab in indentation (YAML requires spaces)")
		}
		content := stripComment(line[indent:])
		content = strings.TrimRight(content, " ")
		if content == "" {
			continue
		}
		if strings.HasPrefix(content, "%") || content == "---" {
			return nil, yamlErrf(num+1, "directives and multi-document streams are outside the plan subset")
		}
		out = append(out, yamlLine{num: num + 1, indent: indent, content: content})
	}
	return out, nil
}

// stripComment removes a trailing `#` comment, honoring quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly the given indent as either
// a mapping or a sequence, returning the value and the index of the first
// unconsumed line.
func parseBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].content, "- ") || lines[i].content == "-" {
		return parseSequence(lines, i, indent)
	}
	return parseMapping(lines, i, indent)
}

// parseMapping parses `key: ...` lines at the given indent.
func parseMapping(lines []yamlLine, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, yamlErrf(ln.num, "unexpected indentation (no open block takes it)")
		}
		if strings.HasPrefix(ln.content, "- ") || ln.content == "-" {
			return nil, 0, yamlErrf(ln.num, "list item in a mapping block")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := m[key]; dup {
			return nil, 0, yamlErrf(ln.num, "duplicate key %q", key)
		}
		i++
		if rest != "" {
			v, err := parseScalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			continue
		}
		// `key:` opens a nested block if the next line indents deeper.
		if i < len(lines) && lines[i].indent > indent {
			v, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			i = next
			continue
		}
		m[key] = nil
	}
	return m, i, nil
}

// parseSequence parses `- item` lines at the given indent (scalar items
// only — nested structures under a dash are outside the subset).
func parseSequence(lines []yamlLine, i, indent int) (any, int, error) {
	var seq []any
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, yamlErrf(ln.num, "nested blocks under a list item are outside the plan subset")
		}
		if !strings.HasPrefix(ln.content, "- ") && ln.content != "-" {
			return nil, 0, yamlErrf(ln.num, "expected a `- item` in this list")
		}
		item := strings.TrimSpace(strings.TrimPrefix(ln.content, "-"))
		if item == "" {
			return nil, 0, yamlErrf(ln.num, "empty list item")
		}
		if strings.Contains(item, ": ") || strings.HasSuffix(item, ":") {
			return nil, 0, yamlErrf(ln.num, "mappings inside lists are outside the plan subset")
		}
		v, err := parseScalarOrFlow(item, ln.num)
		if err != nil {
			return nil, 0, err
		}
		seq = append(seq, v)
		i++
	}
	return seq, i, nil
}

// splitKey splits `key: rest` (rest may be empty).
func splitKey(ln yamlLine) (key, rest string, err error) {
	c := ln.content
	idx := strings.Index(c, ":")
	if idx <= 0 {
		return "", "", yamlErrf(ln.num, "expected `key: value`, got %q", c)
	}
	key = strings.TrimSpace(c[:idx])
	rest = strings.TrimSpace(c[idx+1:])
	if key == "" {
		return "", "", yamlErrf(ln.num, "empty key")
	}
	if strings.HasPrefix(key, "\"") || strings.HasPrefix(key, "'") {
		return "", "", yamlErrf(ln.num, "quoted keys are outside the plan subset")
	}
	if rest != "" && !strings.HasPrefix(c[idx+1:], " ") {
		return "", "", yamlErrf(ln.num, "missing space after `:` in %q", c)
	}
	return key, rest, nil
}

// parseScalarOrFlow parses a scalar or a flow sequence `[a, b, c]`.
func parseScalarOrFlow(s string, line int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, yamlErrf(line, "unterminated flow sequence %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts, err := splitFlow(inner, line)
		if err != nil {
			return nil, err
		}
		seq := make([]any, 0, len(parts))
		for _, p := range parts {
			v, err := parseScalar(strings.TrimSpace(p), line)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, yamlErrf(line, "flow mappings are outside the plan subset (use an indented block)")
	}
	return parseScalar(s, line)
}

// splitFlow splits flow-sequence items on top-level commas, honoring quotes.
func splitFlow(s string, line int) ([]string, error) {
	var parts []string
	start := 0
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == ',' && !inSingle && !inDouble:
			parts = append(parts, s[start:i])
			start = i + 1
		case (r == '[' || r == ']') && !inSingle && !inDouble:
			return nil, yamlErrf(line, "nested flow sequences are outside the plan subset")
		}
	}
	if inSingle || inDouble {
		return nil, yamlErrf(line, "unterminated quote in flow sequence")
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// parseScalar interprets one scalar token.
func parseScalar(s string, line int) (any, error) {
	switch s {
	case "", "null", "~":
		return nil, nil
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	}
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		q := s[0]
		if len(s) < 2 || s[len(s)-1] != q {
			return nil, yamlErrf(line, "unterminated quoted string %s", s)
		}
		body := s[1 : len(s)-1]
		if q == '"' {
			body = strings.ReplaceAll(body, `\"`, `"`)
			body = strings.ReplaceAll(body, `\\`, `\`)
		} else {
			body = strings.ReplaceAll(body, "''", "'")
		}
		return body, nil
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	return s, nil
}
