package plan

import (
	"strings"
	"testing"
)

const samplePlan = `
plan: codecs
run:
  dataset: fb15k
  scale: tiny
  epochs: 2
  machines: 2
sweep:
  codec: [fp32, int8, delta-int8]
  cacheBudget: [0.01, 0.05]
compare:
  tolerance:
    wall_ms: 10
    mrr: 0.02
`

func TestParsePlan(t *testing.T) {
	p, err := Parse([]byte(samplePlan))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "codecs" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Base.Scale != "tiny" || p.Base.Epochs != 2 || p.Base.Machines != 2 {
		t.Errorf("Base = %+v", p.Base)
	}
	// Axes sort by key: cacheBudget before codec.
	if len(p.Sweep) != 2 || p.Sweep[0].Key != "cacheBudget" || p.Sweep[1].Key != "codec" {
		t.Fatalf("Sweep = %+v", p.Sweep)
	}
	if p.Tolerance["wall_ms"] != 10 || p.Tolerance["mrr"] != 0.02 {
		t.Errorf("Tolerance = %+v", p.Tolerance)
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"missing name", "run:\n  epochs: 1", "missing `plan:` name"},
		{"bad name", "plan: a/b", "BENCH_<plan>.json"},
		{"unknown top key", "plan: p\nsweeps:\n  codec: [a]", "unknown top-level key"},
		{"unknown run key", "plan: p\nrun:\n  codecs: int8", "unknown run key"},
		{"unknown sweep key", "plan: p\nsweep:\n  bogus: [1]", "unknown run key"},
		{"sweep not list", "plan: p\nsweep:\n  codec: int8", "must list values"},
		{"sweep empty", "plan: p\nsweep:\n  codec: []", "has no values"},
		{"sweep bad type", "plan: p\nsweep:\n  epochs: [one]", "wants an integer"},
		{"run bad type", "plan: p\nrun:\n  epochs: soon", "wants an integer"},
		{"bad compare key", "plan: p\ncompare:\n  budget: 1", "unknown compare key"},
		{"bad tolerance", "plan: p\ncompare:\n  tolerance:\n    mrr: big", "wants a number"},
		{"negative tolerance", "plan: p\ncompare:\n  tolerance:\n    mrr: -0.1", "is negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestResolveMatrix(t *testing.T) {
	p, err := Parse([]byte(samplePlan))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	runs, err := p.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	wantNames := []string{
		"cacheBudget=0.01,codec=fp32",
		"cacheBudget=0.01,codec=int8",
		"cacheBudget=0.01,codec=delta-int8",
		"cacheBudget=0.05,codec=fp32",
		"cacheBudget=0.05,codec=int8",
		"cacheBudget=0.05,codec=delta-int8",
	}
	if len(runs) != len(wantNames) {
		t.Fatalf("got %d runs, want %d", len(runs), len(wantNames))
	}
	seenHash := map[string]string{}
	for i, r := range runs {
		if r.Name != wantNames[i] {
			t.Errorf("run %d = %q, want %q", i, r.Name, wantNames[i])
		}
		if len(r.Hash) != 64 {
			t.Errorf("run %q hash = %q, want 64 hex chars", r.Name, r.Hash)
		}
		if prev, dup := seenHash[r.Hash]; dup {
			t.Errorf("runs %q and %q share hash %s", prev, r.Name, r.Hash)
		}
		seenHash[r.Hash] = r.Name
		if r.Spec.Hash() != r.Hash {
			t.Errorf("run %q hash does not match its spec", r.Name)
		}
	}

	// Resolution is deterministic across parses.
	p2, _ := Parse([]byte(samplePlan))
	runs2, _ := p2.Resolve()
	for i := range runs {
		if runs[i].Name != runs2[i].Name || runs[i].Hash != runs2[i].Hash {
			t.Fatalf("resolution not deterministic at run %d", i)
		}
	}
}

func TestResolveNoSweep(t *testing.T) {
	p, err := Parse([]byte("plan: single\nrun:\n  scale: tiny"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	runs, err := p.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(runs) != 1 || runs[0].Name != "base" {
		t.Fatalf("runs = %+v, want one run named base", runs)
	}
}

func TestLoadReportsPath(t *testing.T) {
	_, err := Load("/nonexistent/hetkg.yml")
	if err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}
