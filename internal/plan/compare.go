package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hetkg/internal/plan/benchfmt"
)

// DefaultTolerance is the relative regression budget for fields the plan's
// `compare: tolerance:` map doesn't name: a ≥10% regression always fails
// the default gate, while sub-8% noise passes.
const DefaultTolerance = 0.08

// Delta is one (row, field) comparison against the baseline.
type Delta struct {
	Row, Field string
	// Base and Cur are the baseline and current values.
	Base, Cur float64
	// Rel is the relative change in the regression direction: positive
	// means worse (lower mrr, more bytes), negative means improved.
	Rel float64
	// Tol is the budget applied (plan tolerance or DefaultTolerance).
	Tol float64
	// Regressed is Rel > Tol.
	Regressed bool
}

// String renders the comparison as one gate-report line.
func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%s/%s: %g -> %g (%+.1f%%, tol %.0f%%) %s",
		d.Row, d.Field, d.Base, d.Cur, -100*d.Rel, 100*d.Tol, verdict)
}

// Report is the outcome of comparing a snapshot against its baseline.
type Report struct {
	// Deltas covers every baseline (row, field) present in both snapshots,
	// rows in baseline order, fields sorted.
	Deltas []Delta
	// MissingRows lists baseline rows the current snapshot lacks entirely;
	// MissingFields lists "row/field" pairs a present row dropped. Both
	// fail the gate — a measurement that vanished cannot be declared safe.
	MissingRows   []string
	MissingFields []string
	// Regressions counts deltas beyond tolerance.
	Regressions int
}

// OK reports whether the gate passes: nothing missing, nothing regressed.
func (r *Report) OK() bool {
	return r.Regressions == 0 && len(r.MissingRows) == 0 && len(r.MissingFields) == 0
}

// Summary renders the gate verdict in one line.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("compare: OK (%d comparisons within tolerance)", len(r.Deltas))
	}
	return fmt.Sprintf("compare: FAIL (%d regressions, %d missing rows, %d missing fields)",
		r.Regressions, len(r.MissingRows), len(r.MissingFields))
}

// Compare gates cur against base: every field of every baseline row must be
// present in cur and within its relative tolerance (tol overrides by field
// name, DefaultTolerance otherwise). Direction matters — mrr dropping is a
// regression, bytes dropping is an improvement — and only regressions
// count; improvements never fail. Fields or rows that exist only in cur are
// ignored: new measurements extend the baseline, they don't break it.
func Compare(cur, base *benchfmt.File, tol map[string]float64) *Report {
	rep := &Report{}
	for _, brow := range base.Rows {
		crow, ok := cur.RowByName(brow.Name)
		if !ok {
			rep.MissingRows = append(rep.MissingRows, brow.Name)
			continue
		}
		for _, field := range brow.Fields() {
			bv := brow.Values[field]
			cv, ok := crow.Value(field)
			if !ok {
				rep.MissingFields = append(rep.MissingFields, brow.Name+"/"+field)
				continue
			}
			d := Delta{
				Row:   brow.Name,
				Field: field,
				Base:  bv,
				Cur:   cv,
				Rel:   regression(field, bv, cv),
				Tol:   tolerance(field, tol),
			}
			d.Regressed = d.Rel > d.Tol
			if d.Regressed {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	sort.Strings(rep.MissingFields)
	return rep
}

// tolerance resolves a field's budget from the plan map, falling back to
// DefaultTolerance.
func tolerance(field string, tol map[string]float64) float64 {
	if t, ok := tol[field]; ok {
		return t
	}
	return DefaultTolerance
}

// regression returns the relative change oriented so positive means worse.
func regression(field string, base, cur float64) float64 {
	denom := math.Abs(base)
	if denom == 0 {
		if cur == base {
			return 0
		}
		denom = math.Abs(cur)
	}
	rel := (cur - base) / denom
	if higherBetter(field) {
		rel = -rel
	}
	return rel
}

// higherBetter classifies a field's direction: quality and throughput
// metrics regress downward; time, loss, and traffic regress upward.
func higherBetter(field string) bool {
	switch {
	case strings.HasPrefix(field, "mrr"), strings.HasPrefix(field, "hit"):
		return true
	case field == "iters_per_sec", field == "ratio":
		return true
	}
	return false
}
