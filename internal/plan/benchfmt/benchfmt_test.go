package benchfmt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	f := &File{
		Name:  "codecs",
		Scale: "tiny",
		Seed:  42,
		Meta:  map[string]string{"dataset": "fb15k"},
		Rows: []Row{
			{Name: "codec=fp32", Hash: strings.Repeat("ab", 32), Values: map[string]float64{"mrr": 0.41, "wall_ms": 120.5}},
			{Name: "codec=int8", Values: map[string]float64{"mrr": 0.40}},
		},
	}
	path, err := WriteDir(t.TempDir(), f)
	if err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	if filepath.Base(path) != "BENCH_codecs.json" {
		t.Errorf("path = %s", path)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.SchemaName != Schema {
		t.Errorf("schema = %q", got.SchemaName)
	}
	if !reflect.DeepEqual(got.Rows, f.Rows) || got.Name != f.Name || got.Seed != f.Seed {
		t.Fatalf("round trip:\n%+v\nwant\n%+v", got, f)
	}
	r, ok := got.RowByName("codec=int8")
	if !ok || r.Values["mrr"] != 0.40 {
		t.Errorf("RowByName = %+v, %v", r, ok)
	}
	if _, ok := got.RowByName("nope"); ok {
		t.Error("RowByName found a phantom row")
	}
}

func TestReadRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct{ name, body, wantSub string }{
		{"bad-schema.json", `{"schema":"hetkg-bench-codecs/v1","name":"x","rows":[]}`, "schema"},
		{"no-name.json", `{"schema":"hetkg-bench/v2","rows":[]}`, "names no plan"},
		{"anon-row.json", `{"schema":"hetkg-bench/v2","name":"x","rows":[{"values":{"a":1}}]}`, "no name"},
		{"garbage.json", `not json`, "parsing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(write(tc.name, tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Read error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
	if _, err := Read(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("Read of a missing file succeeded")
	}
}

func TestFromTable(t *testing.T) {
	header := []string{"Codec", "MRR", "Wall", "B/iter", "Ratio", "Hit ratio"}
	rows := [][]string{
		{"fp32", "0.412", "1.5s", "8192", "1.00x", "85%"},
		{"int8", "0.409", "912ms", "2048", "4.00x", "85%"},
		{"empty", "", "", "", "", ""},
	}
	f := FromTable("codecs", header, rows)
	if f.Name != "codecs" || f.SchemaName != Schema {
		t.Fatalf("file = %+v", f)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %+v (all-empty row should drop)", f.Rows)
	}
	fp32 := f.Rows[0]
	want := map[string]float64{
		"mrr":       0.412,
		"wall_ms":   1500,
		"b_iter":    8192,
		"ratio":     1.0,
		"hit_ratio": 0.85,
	}
	if !reflect.DeepEqual(fp32.Values, want) {
		t.Fatalf("fp32 values = %+v, want %+v", fp32.Values, want)
	}
	if f.Rows[1].Values["wall_ms"] != 912 {
		t.Errorf("int8 wall_ms = %v", f.Rows[1].Values["wall_ms"])
	}
}

func TestNormalizeField(t *testing.T) {
	cases := map[string]string{
		"MRR":         "mrr",
		"B/iter":      "b_iter",
		"Hit ratio":   "hit_ratio",
		"  Wall  ":    "wall",
		"iters/sec":   "iters_sec",
		"++":          "",
		"Bytes (raw)": "bytes_raw",
	}
	for in, want := range cases {
		if got := NormalizeField(in); got != want {
			t.Errorf("NormalizeField(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRowFieldsSorted(t *testing.T) {
	r := Row{Values: map[string]float64{"z": 1, "a": 2, "m": 3}}
	if got := r.Fields(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("Fields = %v", got)
	}
}
