// Package benchfmt defines hetkg-bench/v2, the repo-wide machine-readable
// perf snapshot format: one JSON file per plan or experiment, one row per
// run, one flat map of named float values per row. Everything that measures
// — `hetkg apply`, every `hetkg-bench -bench-out` experiment — writes this
// one schema, and `hetkg compare` gates regressions against committed
// baselines of it. Keeping the package a leaf (stdlib only) lets both
// internal/core and internal/plan share the writer without a cycle.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Schema is the format identifier every file carries. v1 was the ad-hoc
// codecs-only format (hetkg-bench-codecs/v1); v2 generalizes it to any
// row set.
const Schema = "hetkg-bench/v2"

// File is one perf snapshot: a named set of measurement rows plus the
// provenance needed to reproduce them.
type File struct {
	// SchemaName is always Schema; Read rejects anything else.
	SchemaName string `json:"schema"`
	// Name identifies the producing plan or experiment ("codecs", "ci").
	Name string `json:"name"`
	// Scale and Seed record the workload provenance when meaningful.
	Scale string `json:"scale,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Meta holds free-form provenance (dataset, dim, machines, ...).
	Meta map[string]string `json:"meta,omitempty"`
	// Rows are the measurements, in resolution order.
	Rows []Row `json:"rows"`
}

// Row is one run's measurements.
type Row struct {
	// Name identifies the run within the file ("codec=int8" or a sweep
	// assignment like "cacheBudget=0.01,codec=fp32").
	Name string `json:"name"`
	// Hash, when set, is the run's canonical config hash (internal/plan),
	// tying the measurement to the exact configuration that produced it.
	Hash string `json:"hash,omitempty"`
	// Values maps measurement names to numbers. Conventional keys:
	// wall_ms, iters, iters_per_sec, mrr, loss, hit_ratio, bytes_remote,
	// bytes_raw, bytes_wire, ratio. wall_ms and iters_per_sec are the only
	// wall-clock-derived (nondeterministic) values; everything else is
	// bit-deterministic for a given configuration.
	Values map[string]float64 `json:"values"`
}

// Value returns a named measurement and whether the row carries it.
func (r Row) Value(field string) (float64, bool) {
	v, ok := r.Values[field]
	return v, ok
}

// Fields lists a row's measurement names, sorted.
func (r Row) Fields() []string {
	fs := make([]string, 0, len(r.Values))
	for f := range r.Values {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	return fs
}

// RowByName finds a row by its Name.
func (f *File) RowByName(name string) (Row, bool) {
	for _, r := range f.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Row{}, false
}

// FileName is the conventional on-disk name for a snapshot: BENCH_<name>.json.
func FileName(name string) string { return "BENCH_" + name + ".json" }

// Write marshals f (indented, schema stamped) to path, creating parent
// directories.
func Write(path string, f *File) error {
	f.SchemaName = Schema
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encoding %s: %w", f.Name, err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("benchfmt: creating %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchfmt: writing snapshot: %w", err)
	}
	return nil
}

// WriteDir writes f under dir as BENCH_<name>.json and returns the path.
func WriteDir(dir string, f *File) (string, error) {
	path := filepath.Join(dir, FileName(f.Name))
	return path, Write(path, f)
}

// Read loads and validates a snapshot.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	if f.SchemaName != Schema {
		return nil, fmt.Errorf("benchfmt: %s has schema %q, want %q", path, f.SchemaName, Schema)
	}
	if f.Name == "" {
		return nil, fmt.Errorf("benchfmt: %s names no plan or experiment", path)
	}
	for i, r := range f.Rows {
		if r.Name == "" {
			return nil, fmt.Errorf("benchfmt: %s row %d has no name", path, i)
		}
	}
	return &f, nil
}

// FromTable converts a rendered experiment table (header + string cells)
// into a snapshot: the first column becomes the row name, and every
// remaining cell that parses as a number becomes a value keyed by the
// normalized header. This is the generic `hetkg-bench -bench-out` path for
// experiments that don't assemble a richer File themselves. Cells render
// for humans, so the parser accepts the table conventions: "3.76x" ratios,
// "212ms"/"1.2s" durations (normalized to a _ms key), and "%"-suffixed
// percentages (normalized to a fraction).
func FromTable(name string, header []string, rows [][]string) *File {
	f := &File{SchemaName: Schema, Name: name}
	for _, row := range rows {
		if len(row) == 0 {
			continue
		}
		r := Row{Name: row[0], Values: map[string]float64{}}
		for i := 1; i < len(row) && i < len(header); i++ {
			key := NormalizeField(header[i])
			if key == "" {
				continue
			}
			if v, k, ok := parseCell(row[i], key); ok {
				r.Values[k] = v
			}
		}
		if len(r.Values) > 0 {
			f.Rows = append(f.Rows, r)
		}
	}
	return f
}

// NormalizeField maps a human table header to a value key: lowercased,
// runs of non-alphanumerics collapsed to single underscores ("B/iter" →
// "b_iter", "Hit ratio" → "hit_ratio").
func NormalizeField(h string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range strings.ToLower(h) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		} else {
			pendingSep = true
		}
	}
	return b.String()
}

// parseCell extracts a float from a table cell, returning the (possibly
// adjusted) key. Durations gain a _ms suffix and are reported in
// milliseconds; percentages are divided by 100.
func parseCell(cell, key string) (float64, string, bool) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return 0, key, false
	}
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		return v, key, true
	}
	if strings.HasSuffix(cell, "x") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64); err == nil {
			return v, key, true
		}
	}
	if strings.HasSuffix(cell, "%") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64); err == nil {
			return v / 100, key, true
		}
	}
	if d, err := time.ParseDuration(cell); err == nil {
		if !strings.HasSuffix(key, "_ms") {
			key += "_ms"
		}
		return float64(d) / float64(time.Millisecond), key, true
	}
	return 0, key, false
}
