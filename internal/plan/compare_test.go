package plan

import (
	"strings"
	"testing"

	"hetkg/internal/plan/benchfmt"
)

func snapshot(rows ...benchfmt.Row) *benchfmt.File {
	return &benchfmt.File{SchemaName: benchfmt.Schema, Name: "t", Rows: rows}
}

func row(name string, kv ...any) benchfmt.Row {
	r := benchfmt.Row{Name: name, Values: map[string]float64{}}
	for i := 0; i < len(kv); i += 2 {
		r.Values[kv[i].(string)] = kv[i+1].(float64)
	}
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := snapshot(row("a", "mrr", 0.5, "wall_ms", 100.0, "bytes_wire", 1000.0))
	rep := Compare(base, base, nil)
	if !rep.OK() {
		t.Fatalf("identical snapshots fail: %s", rep.Summary())
	}
	if len(rep.Deltas) != 3 {
		t.Fatalf("Deltas = %d, want 3", len(rep.Deltas))
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := snapshot(row("a", "mrr", 0.5))
	cur := snapshot(row("a", "mrr", 0.44)) // 12% drop > default 8%
	rep := Compare(cur, base, nil)
	if rep.OK() || rep.Regressions != 1 {
		t.Fatalf("12%% mrr regression passed: %s", rep.Summary())
	}
	d := rep.Deltas[0]
	if !d.Regressed || d.Rel < 0.1 {
		t.Fatalf("delta = %+v", d)
	}
	if !strings.Contains(d.String(), "REGRESSED") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestCompareDirectionAware(t *testing.T) {
	base := snapshot(row("a", "mrr", 0.5, "bytes_wire", 1000.0, "loss", 1.0, "iters_per_sec", 100.0))

	// Quality up, traffic down, loss down, throughput up: all improvements.
	better := snapshot(row("a", "mrr", 0.7, "bytes_wire", 500.0, "loss", 0.5, "iters_per_sec", 200.0))
	if rep := Compare(better, base, nil); !rep.OK() {
		t.Fatalf("improvements flagged as regressions: %s", rep.Summary())
	}

	// Traffic up 50%: a regression even though the number grew.
	worse := snapshot(row("a", "mrr", 0.5, "bytes_wire", 1500.0, "loss", 1.0, "iters_per_sec", 100.0))
	if rep := Compare(worse, base, nil); rep.OK() {
		t.Fatal("bytes_wire growth passed the gate")
	}
}

func TestComparePerFieldTolerance(t *testing.T) {
	base := snapshot(row("a", "wall_ms", 100.0, "mrr", 0.5))
	cur := snapshot(row("a", "wall_ms", 900.0, "mrr", 0.5)) // 9x slower
	tol := map[string]float64{"wall_ms": 10}                // wall clock is machine noise here
	if rep := Compare(cur, base, tol); !rep.OK() {
		t.Fatalf("wall_ms tolerance not honored: %s", rep.Summary())
	}
	// Without the override the same delta fails.
	if rep := Compare(cur, base, nil); rep.OK() {
		t.Fatal("9x wall_ms regression passed with default tolerance")
	}
}

func TestCompareMissingRowAndField(t *testing.T) {
	base := snapshot(row("a", "mrr", 0.5), row("b", "mrr", 0.6))
	cur := snapshot(row("a", "wall_ms", 10.0))
	rep := Compare(cur, base, nil)
	if rep.OK() {
		t.Fatal("missing measurements passed the gate")
	}
	if len(rep.MissingRows) != 1 || rep.MissingRows[0] != "b" {
		t.Errorf("MissingRows = %v", rep.MissingRows)
	}
	if len(rep.MissingFields) != 1 || rep.MissingFields[0] != "a/mrr" {
		t.Errorf("MissingFields = %v", rep.MissingFields)
	}
	if !strings.Contains(rep.Summary(), "FAIL") {
		t.Errorf("Summary = %q", rep.Summary())
	}
}

func TestCompareExtraCurrentDataIgnored(t *testing.T) {
	base := snapshot(row("a", "mrr", 0.5))
	cur := snapshot(row("a", "mrr", 0.5, "hit_ratio", 0.9), row("new", "mrr", 0.1))
	if rep := Compare(cur, base, nil); !rep.OK() {
		t.Fatalf("new rows/fields broke the gate: %s", rep.Summary())
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := snapshot(row("a", "bytes_wire", 0.0))
	same := snapshot(row("a", "bytes_wire", 0.0))
	if rep := Compare(same, base, nil); !rep.OK() {
		t.Fatalf("0 -> 0 failed: %s", rep.Summary())
	}
	grew := snapshot(row("a", "bytes_wire", 512.0))
	if rep := Compare(grew, base, nil); rep.OK() {
		t.Fatal("0 -> 512 bytes passed the gate")
	}
}
