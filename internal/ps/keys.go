// Package ps implements the sharded parameter server of the HET-KG /
// DGL-KE architecture: embedding rows live on the server shard co-located
// with the machine that owns them (co-located PS, §IV-A); workers pull rows
// and push gradients through localPull/localPush (shared memory) or
// remotePull/remotePush (the network), and the server applies gradients with
// server-side AdaGrad (Algorithm 4).
package ps

import (
	"fmt"

	"hetkg/internal/kg"
)

// Key identifies one embedding row in the global key space. Entities and
// relations share the space, distinguished by a high bit, so caches, pulls
// and pushes can mix both kinds in a single request.
type Key uint64

const relationBit Key = 1 << 62

// EntityKey returns the key of an entity embedding row.
func EntityKey(e kg.EntityID) Key { return Key(uint32(e)) }

// RelationKey returns the key of a relation embedding row.
func RelationKey(r kg.RelationID) Key { return relationBit | Key(uint32(r)) }

// IsRelation reports whether k identifies a relation row.
func (k Key) IsRelation() bool { return k&relationBit != 0 }

// Entity returns the entity id; the result is meaningless for relation keys.
func (k Key) Entity() kg.EntityID { return kg.EntityID(k &^ relationBit) }

// Relation returns the relation id; meaningless for entity keys.
func (k Key) Relation() kg.RelationID { return kg.RelationID(k &^ relationBit) }

// String renders "e:N" or "r:N".
func (k Key) String() string {
	if k.IsRelation() {
		return fmt.Sprintf("r:%d", uint64(k&^relationBit))
	}
	return fmt.Sprintf("e:%d", uint64(k))
}

// Placement maps keys to the server shard (machine) that owns them.
// Entities follow the graph partitioner's assignment (embedding co-located
// with the subgraph that uses it most); relations are striped round-robin,
// as relation usage has no spatial locality.
type Placement struct {
	numMachines int
	entityPart  []int32
}

// NewPlacement builds a placement for numMachines shards. entityPart is the
// partitioner's per-entity assignment; every value must be in
// [0, numMachines).
func NewPlacement(numMachines int, entityPart []int32) (*Placement, error) {
	if numMachines < 1 {
		return nil, fmt.Errorf("ps: numMachines %d < 1", numMachines)
	}
	for e, p := range entityPart {
		if p < 0 || int(p) >= numMachines {
			return nil, fmt.Errorf("ps: entity %d assigned to invalid machine %d of %d", e, p, numMachines)
		}
	}
	return &Placement{numMachines: numMachines, entityPart: entityPart}, nil
}

// NumMachines returns the shard count.
func (p *Placement) NumMachines() int { return p.numMachines }

// NumEntities returns the size of the placed entity universe.
func (p *Placement) NumEntities() int { return len(p.entityPart) }

// Shard returns the machine owning key k.
func (p *Placement) Shard(k Key) int {
	if k.IsRelation() {
		return int(uint32(k.Relation())) % p.numMachines
	}
	return int(p.entityPart[k.Entity()])
}
