package ps

import (
	"testing"
	"testing/quick"

	"hetkg/internal/kg"
)

// Key-space invariants: entity and relation keys round-trip and never
// collide across kinds for any 32-bit id.
func TestKeySpaceProperty(t *testing.T) {
	f := func(e uint32, r uint32) bool {
		ek := EntityKey(kg.EntityID(e))
		rk := RelationKey(kg.RelationID(r))
		if ek.IsRelation() || !rk.IsRelation() {
			return false
		}
		if ek == rk {
			return false
		}
		return uint32(ek.Entity()) == e && uint32(rk.Relation()) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Placement invariants: every key maps to a shard in range, and entity
// placement agrees with the partition vector.
func TestPlacementProperty(t *testing.T) {
	f := func(partRaw []uint8, machinesRaw uint8, relID uint16) bool {
		machines := 1 + int(machinesRaw%8)
		part := make([]int32, len(partRaw)+1)
		for i := range part {
			if i < len(partRaw) {
				part[i] = int32(int(partRaw[i]) % machines)
			}
		}
		p, err := NewPlacement(machines, part)
		if err != nil {
			return false
		}
		for e := range part {
			s := p.Shard(EntityKey(kg.EntityID(e)))
			if s != int(part[e]) {
				return false
			}
		}
		s := p.Shard(RelationKey(kg.RelationID(relID)))
		return s >= 0 && s < machines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A pull after any sequence of pushes returns rows of the declared width,
// and pushing zero gradients never changes a row.
func TestZeroPushIsIdentity(t *testing.T) {
	c := testCluster(t, 2)
	cl, _ := NewClient(0, c, NewInProc(c), nil)
	keys := []Key{EntityKey(0), EntityKey(1), RelationKey(0)}
	before := make(map[Key][]float32)
	if err := cl.Pull(keys, before); err != nil {
		t.Fatal(err)
	}
	zero := map[Key][]float32{}
	for _, k := range keys {
		zero[k] = make([]float32, 8)
	}
	// SGD with zero gradient is exact identity (AdaGrad would also be,
	// modulo its accumulator; the test cluster uses SGD).
	if err := cl.Push(zero); err != nil {
		t.Fatal(err)
	}
	after := make(map[Key][]float32)
	if err := cl.Pull(keys, after); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		for i := range before[k] {
			if before[k][i] != after[k][i] {
				t.Fatalf("zero push changed %v[%d]", k, i)
			}
		}
	}
}
