package ps

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hetkg/internal/chaos"
	"hetkg/internal/metrics"
)

// linkClock drives the breaker and backoff deterministically: Now returns
// the current fake instant, Sleep records the request and advances it.
type linkClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newLinkClock() *linkClock {
	return &linkClock{now: time.Unix(1000, 0)}
}

func (f *linkClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *linkClock) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
}

func (f *linkClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func (f *linkClock) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// TestBackoffDeterministicJitter pins the retry schedule: exponential
// growth from RetryBase capped at RetryMax, each delay jittered into
// [d/2, d), and bit-identical across links built from the same seed.
func TestBackoffDeterministicJitter(t *testing.T) {
	cfg := LinkConfig{RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond}.withDefaults()
	mk := func(seed int64) *tcpLink {
		return &tcpLink{rng: splitmix64(uint64(seed))}
	}
	a, b := mk(7), mk(7)
	var first []time.Duration
	for n := 1; n <= 6; n++ {
		da, db := a.backoff(cfg, n), b.backoff(cfg, n)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", n, da, db)
		}
		base := cfg.RetryBase << (n - 1)
		if base > cfg.RetryMax {
			base = cfg.RetryMax
		}
		if da < base/2 || da >= base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", n, da, base/2, base)
		}
		first = append(first, da)
	}
	// A different seed must produce a different schedule.
	c := mk(8)
	same := true
	for n := 1; n <= 6; n++ {
		if c.backoff(cfg, n) != first[n-1] {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical backoff schedules")
	}
}

// TestBreakerStateMachine drives closed → open → half-open → closed and
// the half-open probe-failure re-open, all on the fake clock.
func TestBreakerStateMachine(t *testing.T) {
	clk := newLinkClock()
	b := breaker{threshold: 3, cooldown: time.Second}

	// Below threshold stays closed.
	for i := 0; i < 2; i++ {
		if b.failure(clk.Now()) {
			t.Fatalf("failure %d tripped below threshold", i)
		}
		if !b.allow(clk.Now()) {
			t.Fatalf("closed breaker rejected call after failure %d", i)
		}
	}
	// Threshold trips exactly once.
	if !b.failure(clk.Now()) {
		t.Fatal("threshold failure did not trip")
	}
	if b.allow(clk.Now()) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe.
	clk.Advance(time.Second)
	if !b.allow(clk.Now()) {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	// Probe failure re-opens without counting as a new trip.
	if b.failure(clk.Now()) {
		t.Fatal("half-open probe failure counted as a fresh trip")
	}
	if b.allow(clk.Now()) {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	// Second probe succeeds: recovered.
	clk.Advance(time.Second)
	if !b.allow(clk.Now()) {
		t.Fatal("second probe refused")
	}
	if !b.success() {
		t.Fatal("closing success not reported as recovery")
	}
	if !b.allow(clk.Now()) || b.state != breakerClosed {
		t.Fatal("breaker not closed after recovery")
	}
	// A success on a closed breaker is not a recovery.
	if b.success() {
		t.Fatal("steady-state success reported as recovery")
	}
}

// chaosShard serves cluster shard 0 through a chaos injector, returning
// the listener address.
func chaosShard(t *testing.T, c *Cluster, inj *chaos.Injector) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeTCP(inj.Listen(l), c.Servers[0])
	return l.Addr().String()
}

// TestRetryReconnectTransparent kills the server-side connection under a
// live transport and verifies the next pull retries, reconnects, and
// returns correct values — with the ps.link.* counters recording exactly
// one reconnect.
func TestRetryReconnectTransparent(t *testing.T) {
	c := testCluster(t, 1)
	inj := chaos.NewInjector()
	addr := chaosShard(t, c, inj)

	clk := newLinkClock()
	tr, err := DialTCPLink([]string{addr}, ProfileFP32, LinkConfig{
		RPCTimeout: 2 * time.Second, Retries: 3, Seed: 1,
		Now: clk.Now, Sleep: clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	keys := []Key{EntityKey(0), RelationKey(1)}
	ref, err := NewInProc(c).Pull(0, &PullRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
		t.Fatalf("healthy pull: %v", err)
	}

	// Kill every future read on the server's first connection. The server
	// is already parked inside a Read whose chaos index predates the rule,
	// so one more pull rides that pending read; the one after it hits the
	// reset and must survive via retry + reconnect.
	inj.Add(chaos.Rule{Conn: 0, Op: chaos.OpRead, Count: -1, Fault: chaos.FaultReset})
	if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
		t.Fatalf("pull on pending read: %v", err)
	}
	resp, err := tr.Pull(0, &PullRequest{Keys: keys})
	if err != nil {
		t.Fatalf("pull across reconnect: %v", err)
	}
	for i := range resp.Vals {
		if resp.Vals[i] != ref.Vals[i] {
			t.Fatalf("value %d differs after reconnect: %v vs %v", i, resp.Vals[i], ref.Vals[i])
		}
	}
	if got := reg.Counter(metrics.MPSLinkReconnects).Value(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := reg.Counter(metrics.MPSLinkRetries).Value(); got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
	if got := reg.Counter(metrics.MPSLinkFailures).Value(); got < 1 {
		t.Errorf("failures = %d, want >= 1", got)
	}
	if slept := clk.Slept(); len(slept) == 0 {
		t.Error("no backoff sleep recorded across the retry")
	}
}

// TestDeadlineExceeded stalls the server past the RPC timeout with
// retries disabled: the call must fail as ErrLinkDown and count a
// deadline hit.
func TestDeadlineExceeded(t *testing.T) {
	c := testCluster(t, 1)
	inj := chaos.NewInjector()
	addr := chaosShard(t, c, inj)

	tr, err := DialTCPLink([]string{addr}, ProfileFP32, LinkConfig{
		RPCTimeout: 150 * time.Millisecond, Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	// Every further server read sleeps well past the client deadline. The
	// server's current pending Read predates the rule, so burn it with one
	// successful pull first.
	inj.Add(chaos.Rule{Conn: 0, Op: chaos.OpRead, Count: -1, Fault: chaos.FaultStall, Stall: 2 * time.Second})
	if _, err := tr.Pull(0, &PullRequest{Keys: []Key{EntityKey(0)}}); err != nil {
		t.Fatalf("pull on pending read: %v", err)
	}
	_, err = tr.Pull(0, &PullRequest{Keys: []Key{EntityKey(0)}})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("stalled pull error = %v, want ErrLinkDown", err)
	}
	var ld *LinkDownError
	if !errors.As(err, &ld) || ld.Shard != 0 {
		t.Fatalf("error %v does not carry the shard", err)
	}
	if got := reg.Counter(metrics.MPSLinkDeadlineExceeded).Value(); got < 1 {
		t.Errorf("deadline_exceeded = %d, want >= 1", got)
	}
}

// TestBreakerFailFastAndRecovery takes the shard fully down, watches the
// breaker open (trips counter + gauge), verifies fail-fast rejections
// carry Breaker=true, then brings the shard back and watches the link
// recover through the half-open probe.
func TestBreakerFailFastAndRecovery(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go ServeTCP(l, c.Servers[0])

	clk := newLinkClock()
	tr, err := DialTCPLink([]string{addr}, ProfileFP32, LinkConfig{
		RPCTimeout: 500 * time.Millisecond, Retries: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Second,
		Now: clk.Now, Sleep: clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	keys := []Key{EntityKey(0)}
	if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
		t.Fatalf("healthy pull: %v", err)
	}

	// Take the shard down completely.
	l.Close()
	tr.links[0].mu.Lock()
	tr.links[0].c.conn.Close()
	tr.links[0].mu.Unlock()

	// Two failed calls reach the threshold and trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := tr.Pull(0, &PullRequest{Keys: keys}); !errors.Is(err, ErrLinkDown) {
			t.Fatalf("down pull %d: %v, want ErrLinkDown", i, err)
		}
	}
	if got := reg.Counter(metrics.MPSLinkBreakerTrips).Value(); got != 1 {
		t.Fatalf("breaker_trips = %d, want 1", got)
	}
	if got := reg.Snapshot()[metrics.MPSLinkBreakerOpen].Value; got != 1 {
		t.Fatalf("breaker_open gauge = %v, want 1", got)
	}
	if tr.LinksDown() != 1 {
		t.Fatalf("LinksDown() = %d, want 1", tr.LinksDown())
	}

	// Within the cooldown, calls fail fast without touching the wire.
	failuresBefore := reg.Counter(metrics.MPSLinkFailures).Value()
	_, err = tr.Pull(0, &PullRequest{Keys: keys})
	var ld *LinkDownError
	if !errors.As(err, &ld) || !ld.Breaker {
		t.Fatalf("cooldown pull error = %v, want breaker fail-fast", err)
	}
	if got := reg.Counter(metrics.MPSLinkFailures).Value(); got != failuresBefore {
		t.Errorf("fail-fast rejection counted a wire failure (%d -> %d)", failuresBefore, got)
	}

	// Shard returns; after the cooldown the half-open probe succeeds and
	// the gauge clears.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer l2.Close()
	go ServeTCP(l2, c.Servers[0])
	clk.Advance(2 * time.Second)
	if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
		t.Fatalf("recovered pull: %v", err)
	}
	if got := reg.Snapshot()[metrics.MPSLinkBreakerOpen].Value; got != 0 {
		t.Errorf("breaker_open gauge = %v after recovery, want 0", got)
	}
	if tr.LinksDown() != 0 {
		t.Errorf("LinksDown() = %d after recovery, want 0", tr.LinksDown())
	}
}

// TestDialPartialFailureClosesConns pins the dial-cleanup contract: when
// a later shard's dial fails, connections already established to earlier
// shards are closed before DialTCPLink returns (no leaked sockets).
func TestDialPartialFailureClosesConns(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A hand-rolled accept + handshake so the test holds the server side
	// of shard 0's connection and can watch it for the close: after the
	// handshake, the next decode returns EOF exactly when the client
	// closes the socket.
	sawClose := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			sawClose <- err
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(bw)
		if _, _, err := handshakeServer(dec, enc, bw, c.Servers[0], nil); err != nil {
			sawClose <- err
			return
		}
		var req wireRequest
		sawClose <- dec.Decode(&req)
	}()

	// Shard 1's address accepts nothing: grab a free port and close it.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	tr, err := DialTCPLink([]string{l.Addr().String(), deadAddr}, ProfileFP32, LinkConfig{RPCTimeout: time.Second})
	if err == nil {
		tr.Close()
		t.Fatal("dial with a dead shard succeeded")
	}
	if tr != nil {
		t.Fatal("failed dial returned a transport")
	}
	select {
	case err := <-sawClose:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("server observed %v on shard 0's connection, want EOF from cleanup close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard 0's connection was never closed after the failed dial")
	}
}

// TestPushRetryExactlyOnce loses a push RESPONSE (the gradient landed,
// the ack did not): the client retries under the same sequence number on
// a fresh connection and the server must deduplicate, applying the
// gradient exactly once.
func TestPushRetryExactlyOnce(t *testing.T) {
	// Twin clusters: control sees the push once, chaos sees it through a
	// lost response + retry. Final rows must match bit-for-bit.
	ctrl := testCluster(t, 1)
	vict := testCluster(t, 1)
	inj := chaos.NewInjector()
	addr := chaosShard(t, vict, inj)

	tr, err := DialTCPLink([]string{addr}, ProfileFP32, LinkConfig{
		RPCTimeout: 2 * time.Second, Retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	key := []Key{EntityKey(0)}
	w := vict.Servers[0].Width(EntityKey(0))
	grad := make([]float32, w)
	for i := range grad {
		grad[i] = 0.5
	}

	// Server write indices on the connection: handshake ack = 0, so the
	// first request's response is write 1. Kill exactly that write: the
	// push applies, the ack dies with the connection, the client retries.
	inj.Add(chaos.Rule{Conn: 0, Op: chaos.OpWrite, After: 1, Fault: chaos.FaultReset})
	if err := tr.Push(0, &PushRequest{Keys: key, Vals: grad}); err != nil {
		t.Fatalf("push across lost response: %v", err)
	}
	if err := NewInProc(ctrl).Push(0, &PushRequest{Keys: key, Vals: grad}); err != nil {
		t.Fatal(err)
	}

	got, err := vict.Servers[0].Pull(key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctrl.Servers[0].Pull(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("value %d: retried push applied twice (%v) vs once (%v)", i, got[i], want[i])
		}
	}
}

// TestWireDedupAcrossConnections drives the dedup table directly: two raw
// connections sharing a link identity send the same (Seq) push; the
// second must be acknowledged without a second apply.
func TestWireDedupAcrossConnections(t *testing.T) {
	ctrl := testCluster(t, 1)
	vict := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, vict.Servers[0])

	prof, err := ResolveProfile(ProfileFP32)
	if err != nil {
		t.Fatal(err)
	}
	key := []Key{EntityKey(3)}
	w := vict.Servers[0].Width(EntityKey(3))
	grad := make([]float32, w)
	for i := range grad {
		grad[i] = 0.25
	}
	const linkID = 77

	sendPush := func() {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		c, err := handshakeClient(conn, prof, linkID)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := c.lc.encodePush(nil, key, append([]float32(nil), grad...))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.enc.Encode(&wireRequest{Op: 'U', Keys: key, Payload: payload, Seq: 5}); err != nil {
			t.Fatal(err)
		}
		if err := c.bw.Flush(); err != nil {
			t.Fatal(err)
		}
		var resp wireResponse
		if err := c.dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("push refused: %s", resp.Err)
		}
	}
	sendPush() // applies
	sendPush() // same link+seq on a new connection: deduplicated

	if err := NewInProc(ctrl).Push(0, &PushRequest{Keys: key, Vals: grad}); err != nil {
		t.Fatal(err)
	}
	got, err := vict.Servers[0].Pull(key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctrl.Servers[0].Pull(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("value %d: duplicate push applied (%v) vs once (%v)", i, got[i], want[i])
		}
	}
}
