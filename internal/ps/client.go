package ps

import (
	"errors"
	"fmt"
	"sort"

	"hetkg/internal/metrics"
	"hetkg/internal/netsim"
	"hetkg/internal/span"
)

// DegradedError reports a Pull or Push that completed for every shard
// except unreachable ones (errors.Is(err, ErrLinkDown)). Keys lists the
// rows that were NOT fetched/pushed, in the deterministic shard-then-key
// order the RPCs were issued in; rows for healthy shards were handled
// normally. The degraded training mode catches this to serve the missing
// pulls from the cache and buffer the missing pushes.
type DegradedError struct {
	// Op is "pull" or "push".
	Op string
	// Keys are the rows the unreachable shards own.
	Keys []Key
	// Err is the first shard's LinkDownError.
	Err error
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("ps: %s degraded, %d rows on unreachable shards: %v", e.Op, len(e.Keys), e.Err)
}

// Unwrap exposes the underlying LinkDownError (so errors.Is(err,
// ErrLinkDown) holds for a DegradedError too).
func (e *DegradedError) Unwrap() error { return e.Err }

// Client is a worker's view of the parameter server. It routes each key to
// its owning shard, distinguishes localPull/localPush (the target shard is
// co-located with this worker's machine) from remotePull/remotePush, and
// meters the traffic of both classes for the netsim cost model — the split
// the paper's co-located PS design exists to exploit (§IV-A, §V).
type Client struct {
	machine int
	place   *Placement
	tr      Transport
	meter   *netsim.Meter
	entDim  int
	relDim  int
	obs     *clientObs
	tracer  *span.Tracer
	sc      span.Context
}

// clientObs holds a client's registry-backed RPC series (see Instrument).
type clientObs struct {
	pullRPCs *metrics.Counter
	pushRPCs *metrics.Counter
	pullRows *metrics.Counter
	pushRows *metrics.Counter
	bytesTx  *metrics.Counter
	bytesRx  *metrics.Counter
}

// Instrument publishes this client's parameter-server traffic into reg:
// RPC counts (ps.{pull,push}_rpcs), row counts (ps.{pull,push}_rows), and
// wire bytes split by direction (ps.bytes_tx / ps.bytes_rx, using the same
// size accounting that feeds the netsim cost model). Clients wired to the
// same registry aggregate. Call before the client is used.
func (c *Client) Instrument(reg *metrics.Registry) {
	c.obs = &clientObs{
		pullRPCs: reg.Counter(metrics.MPSPullRPCs),
		pushRPCs: reg.Counter(metrics.MPSPushRPCs),
		pullRows: reg.Counter(metrics.MPSPullRows),
		pushRows: reg.Counter(metrics.MPSPushRows),
		bytesTx:  reg.Counter(metrics.MPSBytesTx),
		bytesRx:  reg.Counter(metrics.MPSBytesRx),
	}
}

// NewClient builds a client for a worker sitting on the given machine.
// meter may be nil to disable traffic accounting.
func NewClient(machine int, c *Cluster, tr Transport, meter *netsim.Meter) (*Client, error) {
	if machine < 0 || machine >= c.Place.NumMachines() {
		return nil, fmt.Errorf("ps: machine %d out of range [0,%d)", machine, c.Place.NumMachines())
	}
	return &Client{
		machine: machine,
		place:   c.Place,
		tr:      tr,
		meter:   meter,
		entDim:  c.EntityDim(),
		relDim:  c.RelationDim(),
	}, nil
}

// Machine returns the client's machine index.
func (c *Client) Machine() int { return c.machine }

// Meter returns the client's traffic meter (nil if disabled).
func (c *Client) Meter() *netsim.Meter { return c.meter }

// Trace attaches the owning worker's span tracer. Each per-shard RPC is then
// recorded as a ps.pull / ps.push span under the current span context, with
// the request carrying the RPC span's context so shard-side spans nest under
// it. Safe to leave unset.
func (c *Client) Trace(t *span.Tracer) { c.tracer = t }

// SetSpanContext sets the context new RPC spans parent under — the sampled
// batch's root span (or a cache-refresh span, for the refresh's bulk pull).
// Pass the zero Context to stop recording. The worker owns the client, so
// this is not synchronized with Pull/Push.
func (c *Client) SetSpanContext(sc span.Context) { c.sc = sc }

// SpanContext returns the current RPC parent context.
func (c *Client) SpanContext() span.Context { return c.sc }

// Width returns the row width for key k.
func (c *Client) Width(k Key) int {
	if k.IsRelation() {
		return c.relDim
	}
	return c.entDim
}

// Pull fetches the rows for keys into dst, allocating a fresh slice per
// key. Keys are grouped per shard into one RPC each (batched pulls, as in
// DGL-KE's KVStore).
func (c *Client) Pull(keys []Key, dst map[Key][]float32) error {
	groups := c.groupByShard(keys)
	var downKeys []Key
	var downErr error
	for _, shard := range sortedShards(groups) {
		ks := groups[shard]
		sp := c.tracer.StartChild(c.sc, span.NPSPull)
		resp, err := c.tr.Pull(shard, &PullRequest{Keys: ks, Trace: sp.Context()})
		if err != nil {
			sp.EndAttrs(span.Attrs{Rows: int64(len(ks)), Shard: shard})
			if errors.Is(err, ErrLinkDown) {
				// Finish the healthy shards; report the missing rows once.
				downKeys = append(downKeys, ks...)
				if downErr == nil {
					downErr = err
				}
				continue
			}
			return fmt.Errorf("ps: pull from shard %d: %w", shard, err)
		}
		tx, rx := c.pullWireBytes(len(ks), len(resp.Vals))
		c.record(shard, tx+rx, sp.Context())
		sp.EndAttrs(span.Attrs{Rows: int64(len(ks)), Bytes: tx + rx, Shard: shard})
		if o := c.obs; o != nil {
			o.pullRPCs.Inc()
			o.pullRows.Add(int64(len(ks)))
			o.bytesTx.Add(tx)
			o.bytesRx.Add(rx)
		}
		off := 0
		for _, k := range ks {
			w := c.Width(k)
			if off+w > len(resp.Vals) {
				return fmt.Errorf("ps: short pull response from shard %d", shard)
			}
			row := make([]float32, w)
			copy(row, resp.Vals[off:off+w])
			dst[k] = row
			off += w
		}
	}
	if downKeys != nil {
		return &DegradedError{Op: "pull", Keys: downKeys, Err: downErr}
	}
	return nil
}

// Push sends the gradient rows in grads to their owning shards, one RPC per
// shard, keys sorted for determinism.
func (c *Client) Push(grads map[Key][]float32) error {
	if len(grads) == 0 {
		return nil
	}
	keys := make([]Key, 0, len(grads))
	for k := range grads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	groups := c.groupByShard(keys)
	var downKeys []Key
	var downErr error
	for _, shard := range sortedShards(groups) {
		ks := groups[shard]
		total := 0
		for _, k := range ks {
			total += len(grads[k])
		}
		vals := make([]float32, 0, total)
		for _, k := range ks {
			g := grads[k]
			if len(g) != c.Width(k) {
				return fmt.Errorf("ps: gradient for %v has width %d, want %d", k, len(g), c.Width(k))
			}
			vals = append(vals, g...)
		}
		sp := c.tracer.StartChild(c.sc, span.NPSPush)
		if err := c.tr.Push(shard, &PushRequest{Keys: ks, Vals: vals, Trace: sp.Context()}); err != nil {
			sp.EndAttrs(span.Attrs{Rows: int64(len(ks)), Shard: shard})
			if errors.Is(err, ErrLinkDown) {
				downKeys = append(downKeys, ks...)
				if downErr == nil {
					downErr = err
				}
				continue
			}
			return fmt.Errorf("ps: push to shard %d: %w", shard, err)
		}
		tx := c.pushWireBytes(len(ks), len(vals))
		c.record(shard, tx, sp.Context())
		sp.EndAttrs(span.Attrs{Rows: int64(len(ks)), Bytes: tx, Shard: shard})
		if o := c.obs; o != nil {
			o.pushRPCs.Inc()
			o.pushRows.Add(int64(len(ks)))
			o.bytesTx.Add(tx)
		}
	}
	if downKeys != nil {
		return &DegradedError{Op: "push", Keys: downKeys, Err: downErr}
	}
	return nil
}

// groupByShard partitions keys by owning shard, preserving order within a
// shard.
func (c *Client) groupByShard(keys []Key) map[int][]Key {
	groups := make(map[int][]Key, c.place.NumMachines())
	for _, k := range keys {
		s := c.place.Shard(k)
		groups[s] = append(groups[s], k)
	}
	return groups
}

// sortedShards returns the group's shard indices in ascending order, so
// RPC issue order — and with it a DegradedError's key order — is
// deterministic regardless of map iteration.
func sortedShards(groups map[int][]Key) []int {
	shards := make([]int, 0, len(groups))
	for s, ks := range groups {
		if len(ks) > 0 {
			shards = append(shards, s)
		}
	}
	sort.Ints(shards)
	return shards
}

// pullWireBytes prices a pull round trip's request (tx) and response (rx)
// sides, deferring to the transport's own accounting when it compresses
// the payload.
func (c *Client) pullWireBytes(numKeys, numVals int) (tx, rx int64) {
	if sz, ok := c.tr.(Sizer); ok {
		return sz.PullRequestWireBytes(numKeys), sz.PullResponseWireBytes(numVals)
	}
	return PullRequestBytes(numKeys), PullResponseBytes(numVals)
}

// pushWireBytes prices a push request.
func (c *Client) pushWireBytes(numKeys, numVals int) int64 {
	if sz, ok := c.tr.(Sizer); ok {
		return sz.PushRequestWireBytes(numKeys, numVals)
	}
	return PushRequestBytes(numKeys, numVals)
}

func (c *Client) record(shard int, bytes int64, sc span.Context) {
	if c.meter == nil {
		return
	}
	if shard == c.machine {
		c.meter.RecordLocalSpan(bytes, c.tracer, sc)
	} else {
		c.meter.RecordRemoteSpan(bytes, c.tracer, sc)
	}
}
