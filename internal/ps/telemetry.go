package ps

import (
	"fmt"

	"hetkg/internal/telemetry"
)

// Telemetry transport (DESIGN.md §12): fleet reports ride the same gob
// TCP envelope as pulls, pushes, and membership ops. Op 'T' carries one
// telemetry.Report to the coordinator shard, which folds it into its
// Fleet aggregator. A shard without a coordinator (or a coordinator
// without a Fleet) refuses the op by name.

// opTelemetry ships one labeled metrics snapshot to the coordinator.
const opTelemetry = 'T'

// SendTelemetry implements telemetry.Sender over the wire: one op 'T'
// round trip on the persistent coordinator connection.
func (cc *CoordClient) SendTelemetry(rep telemetry.Report) error {
	var reply struct{}
	return cc.roundTrip(opTelemetry, &rep, &reply)
}

// SendTelemetry implements telemetry.Sender in process: the report goes
// straight into the coordinator's Fleet aggregator. Single-process
// elastic runs and tests use this path; remote processes arrive via op
// 'T' on the TCP envelope.
func (m *Membership) SendTelemetry(rep telemetry.Report) error {
	if m.cfg.Telemetry == nil {
		return fmt.Errorf("ps: coordinator has no fleet aggregator")
	}
	return m.cfg.Telemetry.Ingest(rep)
}

// serveTelemetry dispatches one op 'T' on a shard connection.
func serveTelemetry(coord *Membership, req *wireRequest, resp *wireResponse) {
	if coord == nil {
		resp.Err = "ps: this shard is not the coordinator (telemetry reports go to the first seed address)"
		return
	}
	var rep telemetry.Report
	if err := gobDecode(req.Payload, &rep); err != nil {
		resp.Err = err.Error()
		return
	}
	if err := coord.SendTelemetry(rep); err != nil {
		resp.Err = err.Error()
		return
	}
	payload, err := gobBytes(struct{}{})
	if err != nil {
		resp.Err = err.Error()
		return
	}
	resp.Payload = payload
}
