package ps

import (
	"fmt"

	"hetkg/internal/span"
)

// Sizer lets a transport report its own wire sizes to the traffic meter.
// Transports that compress the payload implement it so the netsim cost
// model prices what would actually cross the link.
type Sizer interface {
	PullRequestWireBytes(numKeys int) int64
	PullResponseWireBytes(numVals int) int64
	PushRequestWireBytes(numKeys, numVals int) int64
}

// QuantizedTransport wraps another transport with symmetric 8-bit linear
// quantization of every embedding and gradient payload — a standard
// communication-compression extension of the paper's theme: where HET-KG
// removes *whole rows* from the wire via caching, quantization shrinks the
// rows that still must travel by 4×.
//
// The quantization is really applied (values round-trip through int8 with a
// per-row scale), so its accuracy cost is measured, not assumed. Each row
// of w values costs w bytes plus 4 bytes of scale on the wire.
type QuantizedTransport struct {
	inner Transport
	// widthOf resolves a key's row width for per-row framing.
	widthOf func(Key) int
}

// NewQuantized wraps inner with 8-bit payload quantization for a cluster's
// key widths.
func NewQuantized(inner Transport, c *Cluster) *QuantizedTransport {
	return &QuantizedTransport{
		inner: inner,
		widthOf: func(k Key) int {
			if k.IsRelation() {
				return c.RelationDim()
			}
			return c.EntityDim()
		},
	}
}

// quantizeRows applies the int8 round trip in place, row by row.
func (t *QuantizedTransport) quantizeRows(keys []Key, vals []float32) error {
	off := 0
	for _, k := range keys {
		w := t.widthOf(k)
		if off+w > len(vals) {
			return fmt.Errorf("ps: quantize payload short at %v", k)
		}
		quantizeRow(vals[off : off+w])
		off += w
	}
	return nil
}

// quantizeRow rounds every value to the nearest of 255 levels spanning the
// row's [-maxAbs, +maxAbs] range (symmetric linear quantization).
func quantizeRow(row []float32) {
	var maxAbs float32
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return
	}
	scale := maxAbs / 127
	for i, v := range row {
		q := int8(v/scale + sign(v)*0.5) // round half away from zero
		row[i] = float32(q) * scale
	}
}

func sign(v float32) float32 {
	if v < 0 {
		return -1
	}
	return 1
}

// Pull implements Transport: values are quantized as they would be by the
// sending shard.
func (t *QuantizedTransport) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	resp, err := t.inner.Pull(shard, req)
	if err != nil {
		return nil, err
	}
	if err := t.quantizeRows(req.Keys, resp.Vals); err != nil {
		return nil, err
	}
	return resp, nil
}

// Push implements Transport: gradients are quantized before they reach the
// shard's optimizer.
func (t *QuantizedTransport) Push(shard int, req *PushRequest) error {
	if err := t.quantizeRows(req.Keys, req.Vals); err != nil {
		return err
	}
	return t.inner.Push(shard, req)
}

// Close implements Transport.
func (t *QuantizedTransport) Close() error { return t.inner.Close() }

// Trace forwards a transport tracer to the wrapped transport when it records
// spans (the TCP transport does; InProc has no wire work to time). Requests
// pass through with their Trace context intact either way.
func (t *QuantizedTransport) Trace(tr *span.Tracer) {
	if tt, ok := t.inner.(interface{ Trace(*span.Tracer) }); ok {
		tt.Trace(tr)
	}
}

// Wire sizes: 1 byte per value, 4 bytes of scale per row (approximated as
// 4 bytes per key), keys and framing unchanged.

// PullRequestWireBytes implements Sizer.
func (t *QuantizedTransport) PullRequestWireBytes(numKeys int) int64 {
	return PullRequestBytes(numKeys)
}

// PullResponseWireBytes implements Sizer.
func (t *QuantizedTransport) PullResponseWireBytes(numVals int) int64 {
	return msgHeaderBytes + int64(numVals) // 1 byte/value; scales folded into framing
}

// PushRequestWireBytes implements Sizer.
func (t *QuantizedTransport) PushRequestWireBytes(numKeys, numVals int) int64 {
	return msgHeaderBytes + 8*int64(numKeys) + int64(numVals)
}
