package ps

import (
	"errors"
	"fmt"
	"time"

	"hetkg/internal/metrics"
)

// The link layer hardens the TCP transport against shard outages: every
// RPC runs under a per-attempt socket deadline, failed attempts retry with
// exponential backoff + deterministic jitter, a poisoned connection is
// re-dialed transparently (re-running the codec handshake, which resets
// delta-codec base state to the version-0 unbased sentinel), and a
// per-link circuit breaker (closed → open → half-open) turns a dead shard
// into a cheap fail-fast instead of a deadline-long stall per call. The
// clock is injectable so unit tests drive the whole state machine
// deterministically.

// LinkConfig parameterizes the fault-tolerant RPC behaviour of one
// transport's shard links. Zero fields take the documented defaults;
// negative durations/counts disable the corresponding mechanism.
type LinkConfig struct {
	// RPCTimeout bounds each RPC attempt (and each dial + handshake):
	// SetWriteDeadline before the request is encoded, SetReadDeadline
	// before the response is decoded. Default 10s; negative disables
	// deadlines.
	RPCTimeout time.Duration
	// Retries is how many times a failed attempt is retried (on a fresh
	// connection) before the call fails with a LinkDownError. Default 3;
	// negative disables retries.
	Retries int
	// RetryBase is the first retry's backoff; attempt n waits
	// RetryBase·2^(n-1), jittered into [d/2, d). Default 25ms.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff. Default 1s.
	RetryMax time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// link's circuit breaker. Default 4 (one fully retried RPC under the
	// default Retries). Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// allowing one half-open probe. Default 1s.
	BreakerCooldown time.Duration
	// Seed keys the backoff jitter (per link, mixed with the shard
	// index), so retry schedules are reproducible.
	Seed int64
	// Now and Sleep inject the clock for the breaker and backoff (tests
	// substitute a fake; socket deadlines always use real time). Defaults:
	// time.Now, time.Sleep.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// withDefaults returns cfg with zero fields filled and negative sentinels
// normalized.
func (cfg LinkConfig) withDefaults() LinkConfig {
	switch {
	case cfg.RPCTimeout == 0:
		cfg.RPCTimeout = 10 * time.Second
	case cfg.RPCTimeout < 0:
		cfg.RPCTimeout = 0
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 3
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 4
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return cfg
}

// ErrLinkDown marks RPC failures caused by an unreachable shard link (every
// retry exhausted, or the circuit breaker open). Callers test with
// errors.Is to distinguish an outage — survivable via the degraded mode —
// from application errors, which never carry this mark.
var ErrLinkDown = errors.New("ps: shard link down")

// LinkDownError is the typed form of ErrLinkDown: which shard, at what
// address, and the last underlying attempt error.
type LinkDownError struct {
	// Shard is the unreachable shard's index.
	Shard int
	// Addr is its dial address.
	Addr string
	// Breaker reports whether the call was rejected fail-fast by an open
	// circuit breaker (no attempt was made on the wire).
	Breaker bool
	// Err is the last transport-level attempt error (nil only when the
	// breaker rejected the call before any attempt in this process's
	// lifetime, which cannot happen in practice).
	Err error
}

// Error implements error.
func (e *LinkDownError) Error() string {
	if e.Breaker {
		return fmt.Sprintf("ps: shard %d (%s) unavailable: circuit breaker open (last error: %v)", e.Shard, e.Addr, e.Err)
	}
	return fmt.Sprintf("ps: shard %d (%s) unavailable: %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying attempt error.
func (e *LinkDownError) Unwrap() error { return e.Err }

// Is marks every LinkDownError as ErrLinkDown.
func (e *LinkDownError) Is(target error) bool { return target == ErrLinkDown }

// RemoteError is an application-level refusal from a healthy shard (the
// wireResponse carried a non-empty Err). The link worked — remote errors
// never retry, never poison the connection, and never trip the breaker.
type RemoteError struct {
	// Msg is the shard's error string.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// noRetryError wraps local, non-transport errors (e.g. a codec encode
// failure) that must surface immediately without poisoning the connection.
type noRetryError struct{ err error }

func (e *noRetryError) Error() string { return e.err.Error() }
func (e *noRetryError) Unwrap() error { return e.err }

// Circuit breaker states: closed passes traffic, open rejects fail-fast,
// half-open admits a single probe after the cooldown.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one link's circuit breaker. It is guarded by the owning
// link's mutex; with threshold 0 it never opens.
type breaker struct {
	threshold int
	cooldown  time.Duration
	state     int
	failures  int // consecutive failures while closed
	openedAt  time.Time
}

// allow reports whether a call may proceed now. An open breaker whose
// cooldown has elapsed transitions to half-open and admits one probe (the
// link mutex serializes callers, so exactly one probe is in flight).
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	default:
		return true
	}
}

// success records a working RPC; it returns true when the breaker closed
// from a non-closed state (a recovered link).
func (b *breaker) success() (recovered bool) {
	was := b.state
	b.state = breakerClosed
	b.failures = 0
	return was != breakerClosed
}

// failure records a failed attempt; it returns true when this failure
// tripped the breaker from closed to open (a half-open probe failure
// re-opens without counting as a new trip).
func (b *breaker) failure(now time.Time) (tripped bool) {
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
	case breakerClosed:
		b.failures++
		if b.threshold > 0 && b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// linkObs holds a transport's registry-backed ps.link.* series (see
// TCPTransport.Instrument).
type linkObs struct {
	retries   *metrics.Counter
	reconns   *metrics.Counter
	failures  *metrics.Counter
	deadlines *metrics.Counter
	trips     *metrics.Counter
	open      *metrics.Gauge
}

// newLinkObs registers the link-health series in reg.
func newLinkObs(reg *metrics.Registry) *linkObs {
	return &linkObs{
		retries:   reg.Counter(metrics.MPSLinkRetries),
		reconns:   reg.Counter(metrics.MPSLinkReconnects),
		failures:  reg.Counter(metrics.MPSLinkFailures),
		deadlines: reg.Counter(metrics.MPSLinkDeadlineExceeded),
		trips:     reg.Counter(metrics.MPSLinkBreakerTrips),
		open:      reg.Gauge(metrics.MPSLinkBreakerOpen),
	}
}
