package ps

import (
	"fmt"
	"sync"
)

// AsyncServer wraps a Server with the explicit message-queue semantics of
// the paper's Algorithm 4: pushed gradients enter a bounded queue and a
// background applier drains it through the optimizer, so workers never
// block on the AdaGrad update itself (they block only when the queue is
// full — backpressure). Pulls bypass the queue and read current state,
// which is exactly the bounded-staleness behavior the cache's convergence
// analysis (§IV-C) assumes.
type AsyncServer struct {
	srv   *Server
	queue chan pushMsg

	mu       sync.Mutex
	cond     *sync.Cond
	pending  int
	applyErr error
	closed   bool
	done     chan struct{}
}

type pushMsg struct {
	keys []Key
	vals []float32
}

// NewAsyncServer starts the applier goroutine with the given queue depth.
func NewAsyncServer(srv *Server, queueDepth int) *AsyncServer {
	if queueDepth < 1 {
		queueDepth = 1
	}
	a := &AsyncServer{
		srv:   srv,
		queue: make(chan pushMsg, queueDepth),
		done:  make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	go a.applier()
	return a
}

func (a *AsyncServer) applier() {
	defer close(a.done)
	for msg := range a.queue {
		err := a.srv.Push(msg.keys, msg.vals)
		a.mu.Lock()
		if err != nil && a.applyErr == nil {
			a.applyErr = err
		}
		a.pending--
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

// Push enqueues a gradient message. The payload is copied, so callers may
// reuse their buffers immediately. An error from a previously applied
// message is reported on the next Push (asynchronous error propagation).
func (a *AsyncServer) Push(keys []Key, vals []float32) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("ps: async server closed")
	}
	if err := a.applyErr; err != nil {
		a.applyErr = nil
		a.mu.Unlock()
		return err
	}
	a.pending++
	a.mu.Unlock()

	k := make([]Key, len(keys))
	copy(k, keys)
	v := make([]float32, len(vals))
	copy(v, vals)
	a.queue <- pushMsg{keys: k, vals: v}
	return nil
}

// Pull drains nothing: it reads the server's current state directly. A
// worker that wants read-your-writes calls Flush first.
func (a *AsyncServer) Pull(keys []Key) ([]float32, error) {
	return a.srv.Pull(keys)
}

// Flush blocks until every message enqueued before the call is applied,
// and reports any deferred apply error.
func (a *AsyncServer) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.pending > 0 {
		a.cond.Wait()
	}
	err := a.applyErr
	a.applyErr = nil
	return err
}

// Pending returns the number of queued-but-unapplied messages.
func (a *AsyncServer) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pending
}

// Close flushes and stops the applier. Further pushes fail.
func (a *AsyncServer) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	if err := a.Flush(); err != nil {
		close(a.queue)
		<-a.done
		return err
	}
	close(a.queue)
	<-a.done
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applyErr
}

// AsyncInProc is an in-process transport routing pushes through per-shard
// AsyncServers while pulls read directly — the transport-level face of
// Algorithm 4.
type AsyncInProc struct {
	shards []*AsyncServer
}

// NewAsyncInProc wraps every shard of a cluster with an AsyncServer.
func NewAsyncInProc(c *Cluster, queueDepth int) *AsyncInProc {
	t := &AsyncInProc{}
	for _, srv := range c.Servers {
		t.shards = append(t.shards, NewAsyncServer(srv, queueDepth))
	}
	return t
}

// Pull implements Transport.
func (t *AsyncInProc) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	if shard < 0 || shard >= len(t.shards) {
		return nil, fmt.Errorf("ps: no shard %d", shard)
	}
	vals, err := t.shards[shard].Pull(req.Keys)
	if err != nil {
		return nil, err
	}
	return &PullResponse{Vals: vals}, nil
}

// Push implements Transport.
func (t *AsyncInProc) Push(shard int, req *PushRequest) error {
	if shard < 0 || shard >= len(t.shards) {
		return fmt.Errorf("ps: no shard %d", shard)
	}
	return t.shards[shard].Push(req.Keys, req.Vals)
}

// Flush waits for all shards' queues to drain.
func (t *AsyncInProc) Flush() error {
	for _, s := range t.shards {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Transport.
func (t *AsyncInProc) Close() error {
	var first error
	for _, s := range t.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
