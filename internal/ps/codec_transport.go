package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetkg/internal/metrics"
	"hetkg/internal/netsim"
	"hetkg/internal/span"
)

// CodecTransport wraps an in-process transport with the negotiated codec
// layer, simulating both ends of every worker↔shard link: each pull
// response and push payload really round-trips through the profile's
// codecs (so lossy codecs lose exactly the bits a remote peer would see),
// and the Sizer accounting reports the post-codec wire sizes to the
// traffic meter, so the netsim cost model prices compressed links.
//
// One CodecTransport is shared by every worker of a trainer process, the
// same sharing a real TCP connection pool has, so "per link" means per
// (process, shard) pair: all of a process's workers share one delta base
// per shard. A mutex serializes calls (the deterministic trainers drive
// workers serially anyway).
type CodecTransport struct {
	mu     sync.Mutex
	inner  Transport
	prof   Profile
	links  []*linkCodec
	tracer *span.Tracer

	bv  []byte // advertised-versions scratch
	buf []byte // payload scratch

	lastPullTx atomic.Int64
	lastPullRx atomic.Int64
	lastPushTx atomic.Int64
}

// NewCodecTransport wraps inner with the named codec profile for a
// cluster's key widths. "auto" resolves against cm's modeled inter-machine
// link — the dominant cost in the single-process simulation — via
// ChooseProfile; under the paper's 1 Gbps default that selects delta-int8.
func NewCodecTransport(inner Transport, c *Cluster, codec string, cm netsim.CostModel) (*CodecTransport, error) {
	prof, err := ResolveProfile(codec)
	if err != nil {
		return nil, err
	}
	if prof.Name == ProfileAuto {
		prof, err = ResolveProfile(ChooseProfile(2*cm.RemoteLatency, cm.RemoteBandwidthBps))
		if err != nil {
			return nil, err
		}
	}
	widthOf := func(k Key) int {
		if k.IsRelation() {
			return c.RelationDim()
		}
		return c.EntityDim()
	}
	t := &CodecTransport{inner: inner, prof: prof}
	for range c.Servers {
		lc, err := newLinkCodec(prof, widthOf)
		if err != nil {
			return nil, err
		}
		t.links = append(t.links, lc)
	}
	return t, nil
}

// NegotiatedProfile returns the resolved profile name (auto already picked).
func (t *CodecTransport) NegotiatedProfile() string { return t.prof.Name }

// Instrument publishes the codec's byte accounting into reg: pre-codec
// payload bytes (ps.codec.bytes_raw), post-codec wire bytes
// (ps.codec.bytes_wire), and delta-encoded pull rows (ps.codec.rows_delta).
// Call before the transport carries traffic.
func (t *CodecTransport) Instrument(reg *metrics.Registry) {
	obs := newCodecObs(reg)
	for _, lc := range t.links {
		lc.obs = obs
	}
}

// Trace attaches a span tracer: traced requests record a transport.encode
// child covering the codec work. The tracer also forwards to the inner
// transport when it records spans of its own.
func (t *CodecTransport) Trace(tr *span.Tracer) {
	t.tracer = tr
	if tt, ok := t.inner.(interface{ Trace(*span.Tracer) }); ok {
		tt.Trace(tr)
	}
}

// Pull implements Transport: the response payload round-trips through the
// pull codec (delta-framed when negotiated) before the caller sees it.
func (t *CodecTransport) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.links) {
		return nil, fmt.Errorf("ps: no shard %d", shard)
	}
	lc := t.links[shard]
	// Advertise versions before the pull mutates the bases.
	t.bv = lc.appendBaseVers(t.bv[:0], req.Keys)
	resp, err := t.inner.Pull(shard, req)
	if err != nil {
		return nil, err
	}
	sp := t.tracer.StartChild(req.Trace, span.NEncode)
	payload, err := lc.encodePull(t.buf[:0], req.Keys, t.bv, resp.Vals)
	if err != nil {
		sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
		return nil, err
	}
	t.buf = payload
	sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(payload)), Shard: shard})
	t.lastPullTx.Store(PullRequestBytes(len(req.Keys)) + int64(len(t.bv)))
	t.lastPullRx.Store(msgHeaderBytes + int64(len(payload)))
	return resp, nil
}

// Push implements Transport: gradients round-trip through the push codec
// before they reach the shard's optimizer.
func (t *CodecTransport) Push(shard int, req *PushRequest) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.links) {
		return fmt.Errorf("ps: no shard %d", shard)
	}
	lc := t.links[shard]
	sp := t.tracer.StartChild(req.Trace, span.NEncode)
	payload, err := lc.encodePush(t.buf[:0], req.Keys, req.Vals)
	if err != nil {
		sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
		return err
	}
	t.buf = payload
	sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(payload)), Shard: shard})
	t.lastPushTx.Store(msgHeaderBytes + 8*int64(len(req.Keys)) + int64(len(payload)))
	return t.inner.Push(shard, req)
}

// Close implements Transport.
func (t *CodecTransport) Close() error { return t.inner.Close() }

// Wire sizes reflect the most recent call's actual encoded payload (the
// client prices each RPC immediately after it returns; workers are driven
// serially, so "last call" is the RPC being priced).

// PullRequestWireBytes implements Sizer: keys plus advertised versions.
func (t *CodecTransport) PullRequestWireBytes(int) int64 { return t.lastPullTx.Load() }

// PullResponseWireBytes implements Sizer: framing plus encoded payload.
func (t *CodecTransport) PullResponseWireBytes(int) int64 { return t.lastPullRx.Load() }

// PushRequestWireBytes implements Sizer: framing, keys, encoded payload.
func (t *CodecTransport) PushRequestWireBytes(int, int) int64 { return t.lastPushTx.Load() }
