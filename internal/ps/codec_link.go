package ps

import (
	"encoding/binary"
	"fmt"

	"hetkg/internal/metrics"
)

// maxLinkBases caps the per-link delta base table. Links that touch more
// rows than this (a full-table gather on a huge graph) keep working — rows
// beyond the cap are simply sent full with version 0 ("unbased") and cost
// no base memory on either end.
const maxLinkBases = 1 << 20

// codecObs holds the registry-backed codec series shared by every link of
// one transport (see the transports' Instrument methods). Counting happens
// on the worker side of a link only, so a process running both a trainer
// and an in-process shard does not double-count.
type codecObs struct {
	bytesRaw  *metrics.Counter
	bytesWire *metrics.Counter
	rowsDelta *metrics.Counter
}

func newCodecObs(reg *metrics.Registry) *codecObs {
	return &codecObs{
		bytesRaw:  reg.Counter(metrics.MPSCodecBytesRaw),
		bytesWire: reg.Counter(metrics.MPSCodecBytesWire),
		rowsDelta: reg.Counter(metrics.MPSCodecRowsDelta),
	}
}

// linkCodec is one endpoint's codec state for one worker↔shard link. The
// stateless row codecs come from the negotiated profile; for delta pulls
// the link additionally remembers, per row, the last value it transmitted
// (the "base") and a version counter, kept in lockstep with the peer over
// the link's ordered, reliable byte stream.
//
// Wire layout of a delta-framed pull row:
//
//	[flag 1B][version 4B LE][codec row bytes]
//
// flag 1 = the codec bytes encode (new − base) against the version the
// worker advertised; flag 0 = they encode the full value. Version 0 means
// "unbased": the receiver must not install a base (used past maxLinkBases).
// Both ends then set base ← decoded value, so the bases stay bit-identical
// even though the codec is lossy. Non-delta profiles ship bare codec rows
// with no framing.
//
// A linkCodec is not internally synchronized; its owner (the codec
// transport's mutex, or a TCP connection's request mutex) serializes use.
type linkCodec struct {
	prof    Profile
	pull    Codec
	push    Codec
	widthOf func(Key) int
	bases   map[Key]*linkBase
	diff    []float32 // delta scratch row
	obs     *codecObs
}

type linkBase struct {
	ver uint32
	row []float32
}

// newLinkCodec builds one endpoint's state for a resolved (non-auto)
// profile.
func newLinkCodec(prof Profile, widthOf func(Key) int) (*linkCodec, error) {
	pull, err := rowCodec(prof.Pull)
	if err != nil {
		return nil, err
	}
	push, err := rowCodec(prof.Push)
	if err != nil {
		return nil, err
	}
	lc := &linkCodec{prof: prof, pull: pull, push: push, widthOf: widthOf}
	if prof.DeltaPull {
		lc.bases = make(map[Key]*linkBase)
	}
	return lc, nil
}

// totalWidth sums the row widths of keys.
func (lc *linkCodec) totalWidth(keys []Key) int {
	total := 0
	for _, k := range keys {
		total += lc.widthOf(k)
	}
	return total
}

// scratch returns the delta scratch row, grown to width w.
func (lc *linkCodec) scratch(w int) []float32 {
	if cap(lc.diff) < w {
		lc.diff = make([]float32, w)
	}
	return lc.diff[:w]
}

// appendBaseVers appends the worker's advertised per-row versions (4 bytes
// LE per key, 0 = no base held) for a pull request. Non-delta profiles
// advertise nothing and return dst unchanged.
func (lc *linkCodec) appendBaseVers(dst []byte, keys []Key) []byte {
	if !lc.prof.DeltaPull {
		return dst
	}
	for _, k := range keys {
		var ver uint32
		if b := lc.bases[k]; b != nil {
			ver = b.ver
		}
		dst = binary.LittleEndian.AppendUint32(dst, ver)
	}
	return dst
}

// bumpVer advances a base version, skipping 0 (the "unbased" sentinel).
func bumpVer(v uint32) uint32 {
	v++
	if v == 0 {
		v = 1
	}
	return v
}

// encodePull encodes a pull response's rows (vals, concatenated in key
// order) against the versions the worker advertised in baseVers, appending
// the payload to dst. vals is REWRITTEN in place with the decoder-visible
// values, so in-process callers observe exactly what a remote worker would
// reconstruct, and the link base stays in lockstep with the peer.
func (lc *linkCodec) encodePull(dst []byte, keys []Key, baseVers []byte, vals []float32) ([]byte, error) {
	if !lc.prof.DeltaPull {
		return lc.codeRows(dst, keys, vals, lc.pull)
	}
	if len(baseVers) != 0 && len(baseVers) != 4*len(keys) {
		return nil, fmt.Errorf("ps: pull advertises %d version bytes for %d keys", len(baseVers), len(keys))
	}
	rawStart := len(dst)
	off := 0
	deltas := int64(0)
	for i, k := range keys {
		w := lc.widthOf(k)
		if off+w > len(vals) {
			return nil, fmt.Errorf("ps: pull payload short at %v", k)
		}
		row := vals[off : off+w]
		var adv uint32
		if baseVers != nil {
			adv = binary.LittleEndian.Uint32(baseVers[4*i:])
		}
		b := lc.bases[k]
		if b != nil && adv != 0 && b.ver == adv {
			// Delta against the shared base: encode new − base, then
			// reconstruct the decoder's view base + dec(delta).
			diff := lc.scratch(w)
			for j := range row {
				diff[j] = row[j] - b.row[j]
			}
			dst = append(dst, 1)
			b.ver = bumpVer(b.ver)
			dst = binary.LittleEndian.AppendUint32(dst, b.ver)
			dst = lc.pull.EncodeRow(dst, diff)
			for j := range row {
				row[j] = b.row[j] + diff[j]
			}
			copy(b.row, row)
			deltas++
		} else {
			// Full value: (re)establish the base when there is room.
			if b == nil && len(lc.bases) < maxLinkBases {
				b = &linkBase{row: make([]float32, w)}
				lc.bases[k] = b
			}
			dst = append(dst, 0)
			var ver uint32
			if b != nil {
				ver = bumpVer(b.ver)
			}
			dst = binary.LittleEndian.AppendUint32(dst, ver)
			dst = lc.pull.EncodeRow(dst, row)
			if b != nil {
				b.ver = ver
				copy(b.row, row)
			}
		}
		off += w
	}
	if off != len(vals) {
		return nil, fmt.Errorf("ps: pull payload has %d leftover values", len(vals)-off)
	}
	if o := lc.obs; o != nil {
		o.bytesRaw.Add(4 * int64(len(vals)))
		o.bytesWire.Add(int64(len(dst) - rawStart))
		o.rowsDelta.Add(deltas)
	}
	return dst, nil
}

// decodePull is the worker-side inverse of encodePull: it fills vals
// (sized totalWidth(keys)) from payload and installs the decoded values as
// the new link bases.
func (lc *linkCodec) decodePull(keys []Key, payload []byte, vals []float32) error {
	if !lc.prof.DeltaPull {
		return lc.decodeRows(keys, payload, vals, lc.pull)
	}
	wire := int64(len(payload))
	off := 0
	deltas := int64(0)
	for _, k := range keys {
		w := lc.widthOf(k)
		if off+w > len(vals) {
			return fmt.Errorf("ps: pull decode buffer short at %v", k)
		}
		row := vals[off : off+w]
		if len(payload) < 5 {
			return fmt.Errorf("ps: delta pull row short at %v", k)
		}
		flag := payload[0]
		ver := binary.LittleEndian.Uint32(payload[1:])
		payload = payload[5:]
		var err error
		switch flag {
		case 1:
			b := lc.bases[k]
			if b == nil {
				return fmt.Errorf("ps: delta for unbased row %v", k)
			}
			diff := lc.scratch(w)
			payload, err = lc.pull.DecodeRow(diff, payload)
			if err != nil {
				return err
			}
			for j := range row {
				row[j] = b.row[j] + diff[j]
			}
			b.ver = ver
			copy(b.row, row)
			deltas++
		case 0:
			payload, err = lc.pull.DecodeRow(row, payload)
			if err != nil {
				return err
			}
			b := lc.bases[k]
			if ver == 0 {
				// Server could not base this row; drop ours so the next
				// request does not advertise a version the peer lost.
				if b != nil {
					delete(lc.bases, k)
				}
			} else {
				if b == nil {
					if len(lc.bases) >= maxLinkBases {
						return fmt.Errorf("ps: link base table full for %v", k)
					}
					b = &linkBase{row: make([]float32, w)}
					lc.bases[k] = b
				}
				b.ver = ver
				copy(b.row, row)
			}
		default:
			return fmt.Errorf("ps: bad delta flag %d for %v", flag, k)
		}
		off += w
	}
	if len(payload) != 0 {
		return fmt.Errorf("ps: pull payload has %d leftover bytes", len(payload))
	}
	if off != len(vals) {
		return fmt.Errorf("ps: pull decode buffer has %d leftover values", len(vals)-off)
	}
	if o := lc.obs; o != nil {
		o.bytesRaw.Add(4 * int64(len(vals)))
		o.bytesWire.Add(wire)
		o.rowsDelta.Add(deltas)
	}
	return nil
}

// encodePush encodes a push request's gradient rows, appending to dst.
// vals is rewritten with the decoder-visible values (lossy codecs really
// lose the same bits everywhere).
func (lc *linkCodec) encodePush(dst []byte, keys []Key, vals []float32) ([]byte, error) {
	return lc.codeRows(dst, keys, vals, lc.push)
}

// decodePush is the shard-side inverse of encodePush.
func (lc *linkCodec) decodePush(keys []Key, payload []byte, vals []float32) error {
	return lc.decodeRows(keys, payload, vals, lc.push)
}

// codeRows encodes rows with a stateless codec, accounting raw vs wire
// bytes into the link's codec series (the tx/rx split lives in
// ps.bytes_tx/rx).
func (lc *linkCodec) codeRows(dst []byte, keys []Key, vals []float32, c Codec) ([]byte, error) {
	rawStart := len(dst)
	off := 0
	for _, k := range keys {
		w := lc.widthOf(k)
		if off+w > len(vals) {
			return nil, fmt.Errorf("ps: payload short at %v", k)
		}
		dst = c.EncodeRow(dst, vals[off:off+w])
		off += w
	}
	if off != len(vals) {
		return nil, fmt.Errorf("ps: payload has %d leftover values", len(vals)-off)
	}
	if o := lc.obs; o != nil {
		o.bytesRaw.Add(4 * int64(len(vals)))
		o.bytesWire.Add(int64(len(dst) - rawStart))
	}
	return dst, nil
}

// decodeRows decodes stateless-codec rows into vals (sized
// totalWidth(keys)).
func (lc *linkCodec) decodeRows(keys []Key, payload []byte, vals []float32, c Codec) error {
	wire := int64(len(payload))
	off := 0
	var err error
	for _, k := range keys {
		w := lc.widthOf(k)
		if off+w > len(vals) {
			return fmt.Errorf("ps: decode buffer short at %v", k)
		}
		payload, err = c.DecodeRow(vals[off:off+w], payload)
		if err != nil {
			return err
		}
		off += w
	}
	if len(payload) != 0 {
		return fmt.Errorf("ps: payload has %d leftover bytes", len(payload))
	}
	if off != len(vals) {
		return fmt.Errorf("ps: decode buffer has %d leftover values", len(vals)-off)
	}
	if o := lc.obs; o != nil {
		o.bytesRaw.Add(4 * int64(len(vals)))
		o.bytesWire.Add(wire)
	}
	return nil
}
