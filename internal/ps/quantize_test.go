package ps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetkg/internal/netsim"
)

func TestQuantizeRowErrorBound(t *testing.T) {
	f := func(raw []float32) bool {
		row := make([]float32, len(raw))
		var maxAbs float64
		for i, v := range raw {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) {
				f64 = 0
			}
			for math.Abs(f64) > 1e6 {
				f64 /= 1e6
			}
			row[i] = float32(f64)
			if a := math.Abs(f64); a > maxAbs {
				maxAbs = a
			}
		}
		orig := make([]float32, len(row))
		copy(orig, row)
		quantizeRow(row)
		// Error per element is bounded by half the quantization step.
		step := maxAbs / 127
		for i := range row {
			if math.Abs(float64(row[i]-orig[i])) > step/2+1e-6 {
				return false
			}
		}
		return true
	}
	// Fixed seed: the time-seeded default occasionally draws values near
	// MaxFloat32 whose float32 round-off exceeds the analytic bound.
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeRowPreservesZeroAndExtremes(t *testing.T) {
	row := []float32{0, 127, -127, 63.5}
	quantizeRow(row)
	if row[0] != 0 {
		t.Errorf("zero changed: %v", row[0])
	}
	if row[1] != 127 || row[2] != -127 {
		t.Errorf("extremes changed: %v %v", row[1], row[2])
	}
	zero := []float32{0, 0}
	quantizeRow(zero) // must not divide by zero
	if zero[0] != 0 {
		t.Error("all-zero row corrupted")
	}
}

func TestQuantizedTransportRoundTrip(t *testing.T) {
	c := testCluster(t, 2)
	qt := NewQuantized(NewInProc(c), c)
	var meter netsim.Meter
	cl, err := NewClient(0, c, qt, &meter)
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{EntityKey(0), EntityKey(1), RelationKey(0)}
	rows := make(map[Key][]float32)
	if err := cl.Pull(keys, rows); err != nil {
		t.Fatalf("quantized Pull: %v", err)
	}
	// Values must be close to, but generally not identical with, the
	// exact rows.
	exact := make(map[Key][]float32)
	exactCl, _ := NewClient(0, c, NewInProc(c), nil)
	if err := exactCl.Pull(keys, exact); err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for _, k := range keys {
		for i := range rows[k] {
			d := math.Abs(float64(rows[k][i] - exact[k][i]))
			if d > maxDiff {
				maxDiff = d
			}
			if d > 0.01 {
				t.Errorf("quantization error %v too large at %v[%d]", d, k, i)
			}
		}
	}
	if maxDiff == 0 {
		t.Log("quantization was lossless on this data (possible but unusual)")
	}
	// Push path works and applies a (quantized) gradient.
	grad := map[Key][]float32{EntityKey(0): {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}}
	if err := cl.Push(grad); err != nil {
		t.Fatalf("quantized Push: %v", err)
	}
	after := make(map[Key][]float32)
	_ = exactCl.Pull([]Key{EntityKey(0)}, after)
	if after[EntityKey(0)][0] == exact[EntityKey(0)][0] {
		t.Error("quantized push had no effect")
	}
}

func TestQuantizedMeteringSavesBytes(t *testing.T) {
	c := testCluster(t, 2)
	keys := []Key{EntityKey(0), EntityKey(2), RelationKey(0), RelationKey(2)}

	var exactMeter, qMeter netsim.Meter
	exactCl, _ := NewClient(0, c, NewInProc(c), &exactMeter)
	qCl, _ := NewClient(0, c, NewQuantized(NewInProc(c), c), &qMeter)

	rows := make(map[Key][]float32)
	if err := exactCl.Pull(keys, rows); err != nil {
		t.Fatal(err)
	}
	rows2 := make(map[Key][]float32)
	if err := qCl.Pull(keys, rows2); err != nil {
		t.Fatal(err)
	}
	eb := exactMeter.Snapshot().LocalBytes + exactMeter.Snapshot().RemoteBytes
	qb := qMeter.Snapshot().LocalBytes + qMeter.Snapshot().RemoteBytes
	if qb >= eb {
		t.Errorf("quantized transport metered %d bytes, exact %d — no saving", qb, eb)
	}
	// Roughly 4x fewer payload bytes: allow a loose band given framing.
	if float64(qb) > 0.6*float64(eb) {
		t.Errorf("saving too small: quantized %d vs exact %d", qb, eb)
	}
}
