package ps

import (
	"net"
	"strings"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/metrics"
	"hetkg/internal/netsim"
	"hetkg/internal/opt"
)

// testClusterDim builds a single-purpose cluster with a chosen row width —
// the codec ratio and byte-accounting tests need rows wide enough that
// per-row headers are amortized, unlike testCluster's width-8 rows.
func testClusterDim(t *testing.T, machines, entities, dim int) *Cluster {
	t.Helper()
	part := make([]int32, entities)
	for i := range part {
		part[i] = int32(i % machines)
	}
	c, err := NewCluster(ClusterConfig{
		NumMachines:  machines,
		EntityPart:   part,
		NumRelations: 5,
		EntityDim:    dim,
		RelationDim:  dim,
		NewOptimizer: func() opt.Optimizer { return &opt.SGD{LR: 0.1} },
		Seed:         99,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// TestDeltaCompressionRatio is the PR's acceptance pin: at realistic row
// widths (64 floats) the delta-int8 profile must shrink pull+push payloads
// at least 3x versus the fp32 baseline, measured exactly where the
// experiment harness measures it — the ps.codec.bytes_raw and
// ps.codec.bytes_wire counters — with the steady state dominated by
// delta-framed rows (ps.codec.rows_delta).
func TestDeltaCompressionRatio(t *testing.T) {
	const dim, rows, iters = 64, 16, 10
	c := testClusterDim(t, 1, 32, dim)
	tr, err := NewCodecTransport(NewInProc(c), c, ProfileDeltaInt8, netsim.Default1Gbps())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	keys := make([]Key, rows)
	for i := range keys {
		keys[i] = EntityKey(kg.EntityID(i))
	}
	grad := make([]float32, rows*dim)
	for it := 0; it < iters; it++ {
		if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
			t.Fatalf("iter %d: pull: %v", it, err)
		}
		for i := range grad {
			grad[i] = 0.001 * float32(i%7)
		}
		if err := tr.Push(0, &PushRequest{Keys: keys, Vals: grad}); err != nil {
			t.Fatalf("iter %d: push: %v", it, err)
		}
	}
	raw := reg.Counter(metrics.MPSCodecBytesRaw).Value()
	wire := reg.Counter(metrics.MPSCodecBytesWire).Value()
	deltas := reg.Counter(metrics.MPSCodecRowsDelta).Value()
	if raw != int64(iters*2*rows*dim*4) {
		t.Errorf("bytes_raw = %d, want %d", raw, iters*2*rows*dim*4)
	}
	if wire == 0 {
		t.Fatal("no wire bytes counted")
	}
	if ratio := float64(raw) / float64(wire); ratio < 3.0 {
		t.Errorf("delta-int8 compression %.2fx below the 3x claim (raw %d, wire %d)", ratio, raw, wire)
	}
	// Every pull after the first should delta-frame every row.
	if want := int64((iters - 1) * rows); deltas < want {
		t.Errorf("rows_delta = %d, want >= %d", deltas, want)
	}
}

// TestDeltaOverTCP runs the delta profile over real sockets: negotiated
// profile reported per connection, values agreeing with the exact transport
// within the int8 bound, and the worker-side codec counters seeing deltas.
func TestDeltaOverTCP(t *testing.T) {
	c := testClusterDim(t, 1, 32, 64)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, c.Servers[0])

	tr, err := DialTCPCodec([]string{l.Addr().String()}, ProfileDeltaInt8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Profiles(); len(got) != 1 || got[0] != ProfileDeltaInt8 {
		t.Fatalf("negotiated profiles %v, want [delta-int8]", got)
	}
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	keys := []Key{EntityKey(0), EntityKey(1), RelationKey(2)}
	ref, err := NewInProc(c).Pull(0, &PullRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	var resp *PullResponse
	for i := 0; i < 3; i++ {
		resp, err = tr.Pull(0, &PullRequest{Keys: keys})
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
	}
	if len(resp.Vals) != len(ref.Vals) {
		t.Fatalf("pulled %d values, want %d", len(resp.Vals), len(ref.Vals))
	}
	for i := range resp.Vals {
		if !close32at(resp.Vals[i], ref.Vals[i], 0.05) {
			t.Fatalf("value %d drifted: %v vs %v", i, resp.Vals[i], ref.Vals[i])
		}
	}
	if deltas := reg.Counter(metrics.MPSCodecRowsDelta).Value(); deltas < int64(2*len(keys)) {
		t.Errorf("rows_delta = %d over TCP, want >= %d", deltas, 2*len(keys))
	}
	// A push must land on the shard through the codec path.
	grad := make([]float32, 64)
	grad[0] = 1
	if err := tr.Push(0, &PushRequest{Keys: []Key{EntityKey(0)}, Vals: grad}); err != nil {
		t.Fatalf("push: %v", err)
	}
	after, err := tr.Pull(0, &PullRequest{Keys: []Key{EntityKey(0)}})
	if err != nil {
		t.Fatal(err)
	}
	// SGD lr=0.1 and an int8-quantized unit gradient: expect ~-0.1.
	if d := after.Vals[0] - ref.Vals[0]; !close32at(d, -0.1, 0.01) {
		t.Errorf("push moved value by %v, want about -0.1", d)
	}
}

// TestCodecAllowlistRefusal: a shard restricted to fp32 must refuse an int8
// hello with a reason, and still accept the allowed profile afterwards.
func TestCodecAllowlistRefusal(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := &Acceptor{AllowCodecs: []string{ProfileFP32}}
	go acc.Serve(l, c.Servers[0])

	if _, err := DialTCPCodec([]string{l.Addr().String()}, ProfileInt8); err == nil {
		t.Fatal("disallowed codec negotiated")
	} else if !strings.Contains(err.Error(), "refused") {
		t.Errorf("refusal error %q does not name the refusal", err)
	}
	tr, err := DialTCPCodec([]string{l.Addr().String()}, ProfileFP32)
	if err != nil {
		t.Fatalf("allowed codec refused: %v", err)
	}
	tr.Close()
}

// TestSizerMatchesMeasuredTCPBytes pins the wire-size accounting the netsim
// cost model prices: the transport's Sizer estimates (headers, keys,
// encoded payload) must agree with the bytes the shard's counting
// connection actually saw — gob framing, handshake and all — within 1%.
// Payloads dominate at realistic row widths, so the fixed-size header
// approximations wash out.
func TestSizerMatchesMeasuredTCPBytes(t *testing.T) {
	const dim, rows, iters = 2048, 32, 16
	c := testClusterDim(t, 1, 40, dim)
	reg := metrics.NewRegistry()
	srv := c.Servers[0]
	srv.Instrument(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)

	tr, err := DialTCPCodec([]string{l.Addr().String()}, ProfileInt8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	keys := make([]Key, rows)
	for i := range keys {
		keys[i] = EntityKey(kg.EntityID(i))
	}
	grad := make([]float32, rows*dim)
	for i := range grad {
		grad[i] = 0.01 * float32(i%11)
	}
	var estimated int64
	for it := 0; it < iters; it++ {
		if _, err := tr.Pull(0, &PullRequest{Keys: keys}); err != nil {
			t.Fatal(err)
		}
		estimated += tr.PullRequestWireBytes(len(keys))
		estimated += tr.PullResponseWireBytes(rows * dim)
		if err := tr.Push(0, &PushRequest{Keys: keys, Vals: grad}); err != nil {
			t.Fatal(err)
		}
		estimated += tr.PushRequestWireBytes(len(keys), rows*dim)
	}
	measured := reg.Counter(metrics.MPSTCPRxBytes).Value() +
		reg.Counter(metrics.MPSTCPTxBytes).Value()
	if measured == 0 {
		t.Fatal("counting connection saw no bytes")
	}
	diff := float64(estimated-measured) / float64(measured)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Errorf("Sizer estimate %d vs measured %d bytes: %.2f%% off (want <= 1%%)",
			estimated, measured, 100*diff)
	}
}

// TestEncodeDecodeZeroAlloc pins the steady-state allocation contract of
// every row codec and of the delta link layer: with warm scratch buffers,
// encoding and decoding allocate nothing per call.
func TestEncodeDecodeZeroAlloc(t *testing.T) {
	row := make([]float32, 64)
	for i := range row {
		row[i] = float32(i%13) * 0.05
	}
	for _, name := range []string{"fp32", "fp16", "int8", "sparse"} {
		c, err := rowCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, 0, c.MaxRowBytes(len(row)))
		enc := c.EncodeRow(dst, row)
		dec := make([]float32, len(row))
		if n := testing.AllocsPerRun(100, func() {
			out := c.EncodeRow(dst[:0], row)
			if _, err := c.DecodeRow(dec, out); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: %v allocs per encode+decode, want 0", name, n)
		}
		_ = enc
	}

	// Delta link steady state: bases established, buffers warm.
	prof, _ := ResolveProfile(ProfileDeltaInt8)
	widthOf := func(Key) int { return len(row) }
	server, _ := newLinkCodec(prof, widthOf)
	worker, _ := newLinkCodec(prof, widthOf)
	keys := []Key{EntityKey(1), EntityKey(2)}
	vals := make([]float32, 2*len(row))
	bv := worker.appendBaseVers(make([]byte, 0, 8), keys)
	payload, err := server.encodePull(make([]byte, 0, 4096), keys, bv, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.decodePull(keys, payload, vals); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		bv = worker.appendBaseVers(bv[:0], keys)
		payload, err = server.encodePull(payload[:0], keys, bv, vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := worker.decodePull(keys, payload, vals); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("delta link: %v allocs per pull round trip, want 0", n)
	}
}

// Benchmarks pin the per-row codec cost; -benchmem (ReportAllocs) shows the
// zero-allocation steady state.

func benchRow(dim int) []float32 {
	row := make([]float32, dim)
	for i := range row {
		row[i] = float32(i%13)*0.05 - 0.3
	}
	return row
}

func BenchmarkEncodeRow(b *testing.B) {
	for _, name := range []string{"fp32", "fp16", "int8", "sparse"} {
		b.Run(name, func(b *testing.B) {
			c, err := rowCodec(name)
			if err != nil {
				b.Fatal(err)
			}
			row := benchRow(256)
			dst := make([]byte, 0, c.MaxRowBytes(len(row)))
			b.ReportAllocs()
			b.SetBytes(int64(4 * len(row)))
			for i := 0; i < b.N; i++ {
				dst = c.EncodeRow(dst[:0], row)
			}
		})
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	for _, name := range []string{"fp32", "fp16", "int8", "sparse"} {
		b.Run(name, func(b *testing.B) {
			c, err := rowCodec(name)
			if err != nil {
				b.Fatal(err)
			}
			row := benchRow(256)
			enc := c.EncodeRow(nil, row)
			dec := make([]float32, len(row))
			b.ReportAllocs()
			b.SetBytes(int64(4 * len(row)))
			for i := 0; i < b.N; i++ {
				if _, err := c.DecodeRow(dec, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeltaPullRoundTrip(b *testing.B) {
	prof, _ := ResolveProfile(ProfileDeltaInt8)
	const dim, rows = 256, 16
	widthOf := func(Key) int { return dim }
	server, _ := newLinkCodec(prof, widthOf)
	worker, _ := newLinkCodec(prof, widthOf)
	keys := make([]Key, rows)
	for i := range keys {
		keys[i] = EntityKey(kg.EntityID(i))
	}
	vals := benchRow(rows * dim)
	bv := worker.appendBaseVers(nil, keys)
	payload, err := server.encodePull(make([]byte, 0, rows*(9+dim)), keys, bv, vals)
	if err != nil {
		b.Fatal(err)
	}
	if err := worker.decodePull(keys, payload, vals); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(4 * rows * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bv = worker.appendBaseVers(bv[:0], keys)
		payload, err = server.encodePull(payload[:0], keys, bv, vals)
		if err != nil {
			b.Fatal(err)
		}
		if err := worker.decodePull(keys, payload, vals); err != nil {
			b.Fatal(err)
		}
	}
}
