package ps

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// The TCP transport implements the same Pull/Push protocol over real
// sockets with gob encoding, proving the parameter server works across
// process boundaries. Experiments use InProc (deterministic timing);
// integration tests exercise this path.

// wireRequest is the on-wire envelope for both operations. TraceID/ParentID
// carry the originating batch's span context across the wire (gob omits
// zero values, so untraced requests pay nothing extra); the serving shard
// parents its spans under them.
type wireRequest struct {
	Op       byte // 'P' pull, 'U' push
	Keys     []Key
	Vals     []float32
	TraceID  uint64
	ParentID uint64
}

// wireResponse is the on-wire reply.
type wireResponse struct {
	Vals []float32
	Err  string
}

// ServeTCP runs a shard's accept loop until the listener closes. Each
// connection is handled on its own goroutine; requests on one connection
// are processed in order. Processes that need to drain connections on
// shutdown should use an Acceptor instead.
func ServeTCP(l net.Listener, srv *Server) {
	var a Acceptor
	a.Serve(l, srv)
}

// Acceptor is a shard accept loop with graceful shutdown: it tracks live
// connections so Shutdown can wait for in-flight requests to drain before
// force-closing stragglers. The zero Acceptor is ready to use.
type Acceptor struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// Serve runs the accept loop until the listener closes (close the listener
// to stop accepting; then call Shutdown to drain).
func (a *Acceptor) Serve(l net.Listener, srv *Server) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !a.track(conn) {
			conn.Close() // Shutdown already started
			return
		}
		go func() {
			defer a.untrack(conn)
			serveConn(conn, srv)
		}()
	}
}

func (a *Acceptor) track(conn net.Conn) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	if a.conns == nil {
		a.conns = make(map[net.Conn]struct{})
	}
	a.conns[conn] = struct{}{}
	a.wg.Add(1)
	return true
}

func (a *Acceptor) untrack(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
	a.wg.Done()
}

// Shutdown waits up to grace for live connections to finish (trainer
// connections are persistent, so "finish" normally means the peer closed),
// then force-closes whatever remains and waits for their handlers to
// return. Call after closing the listener; new connections racing the
// shutdown are refused.
func (a *Acceptor) Shutdown(grace time.Duration) {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		a.mu.Lock()
		for c := range a.conns {
			c.Close()
		}
		a.mu.Unlock()
		<-done
	}
}

// countingConn wraps a server-side connection, feeding raw socket byte
// volumes (gob framing included) into an instrumented shard's registry.
type countingConn struct {
	net.Conn
	rx, tx *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

func serveConn(conn net.Conn, srv *Server) {
	defer conn.Close()
	if o := srv.obs; o != nil {
		o.tcpConns.Inc()
		conn = &countingConn{Conn: conn, rx: o.tcpRx, tx: o.tcpTx}
	}
	br := bufio.NewWriter(conn)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(br)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean close
		}
		var resp wireResponse
		sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
		switch req.Op {
		case 'P':
			vals, err := srv.PullTraced(sc, req.Keys)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Vals = vals
			}
		case 'U':
			if err := srv.PushTraced(sc, req.Keys, req.Vals); err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = fmt.Sprintf("ps: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := br.Flush(); err != nil {
			return
		}
	}
}

// TCPTransport connects a worker to shards over TCP, one persistent
// connection per shard. Calls on the same shard are serialized by a
// per-connection mutex.
type TCPTransport struct {
	conns  []*tcpConn
	tracer *span.Tracer
}

// Trace attaches a span tracer to the transport. Traced requests then record
// transport.serialize (gob encode + flush) and wire.tcp (request flushed →
// response decoded, which includes shard service time) spans. The transport
// is shared by every worker on the process, so wire its tracer with the
// MachineTransport/WorkerTransport pseudo-coordinates.
func (t *TCPTransport) Trace(tr *span.Tracer) { t.tracer = tr }

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	bw   *bufio.Writer
}

// DialTCP connects to every shard address in order.
func DialTCP(addrs []string) (*TCPTransport, error) {
	t := &TCPTransport{}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("ps: dialing shard %s: %w", addr, err)
		}
		bw := bufio.NewWriter(conn)
		t.conns = append(t.conns, &tcpConn{
			conn: conn,
			enc:  gob.NewEncoder(bw),
			dec:  gob.NewDecoder(conn),
			bw:   bw,
		})
	}
	return t, nil
}

func (t *TCPTransport) call(shard int, req *wireRequest) (*wireResponse, error) {
	if shard < 0 || shard >= len(t.conns) {
		return nil, fmt.Errorf("ps: no shard %d", shard)
	}
	c := t.conns[shard]
	sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
	c.mu.Lock()
	defer c.mu.Unlock()
	ser := t.tracer.StartChild(sc, span.NSerialize)
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ps: sending to shard %d: %w", shard, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("ps: flushing to shard %d: %w", shard, err)
	}
	ser.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
	wire := t.tracer.StartChild(sc, span.NWireTCP)
	var resp wireResponse
	defer func() { wire.EndAttrs(span.Attrs{Shard: shard}) }()
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("ps: shard %d closed the connection", shard)
		}
		return nil, fmt.Errorf("ps: reading from shard %d: %w", shard, err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Pull implements Transport.
func (t *TCPTransport) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	resp, err := t.call(shard, &wireRequest{
		Op: 'P', Keys: req.Keys,
		TraceID: req.Trace.Trace, ParentID: req.Trace.Parent,
	})
	if err != nil {
		return nil, err
	}
	return &PullResponse{Vals: resp.Vals}, nil
}

// Push implements Transport.
func (t *TCPTransport) Push(shard int, req *PushRequest) error {
	_, err := t.call(shard, &wireRequest{
		Op: 'U', Keys: req.Keys, Vals: req.Vals,
		TraceID: req.Trace.Trace, ParentID: req.Trace.Parent,
	})
	return err
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	var first error
	for _, c := range t.conns {
		if c != nil && c.conn != nil {
			if err := c.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
