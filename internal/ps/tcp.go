package ps

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// The TCP transport implements the same Pull/Push protocol over real
// sockets with gob envelopes, proving the parameter server works across
// process boundaries. Experiments use InProc (deterministic timing);
// integration tests and the cmd/ binaries exercise this path.
//
// A connection starts with a codec handshake: the client sends wireHello
// naming a codec profile (one byte, see profileID), the shard answers with
// wireHelloAck carrying its row widths (or a refusal when the profile is
// outside the Acceptor's allowlist). After the handshake, every embedding
// and gradient travels as an opaque Payload produced by the negotiated
// linkCodec — exact binary row layouts instead of gob-encoded []float32,
// so the Sizer's byte accounting matches what the socket carries.

// wireHello opens a connection: V is the protocol version, Profile the
// codec profile id the client wants for this link.
type wireHello struct {
	V       byte
	Profile byte
}

// wireHelloAck accepts or refuses a hello. On success it carries the
// shard's row widths, which the client's codec needs for per-row framing.
type wireHelloAck struct {
	Err    string
	EntDim int
	RelDim int
}

// wireVersion is the current handshake protocol version.
const wireVersion = 1

// wireRequest is the on-wire envelope for both operations. Payload carries
// codec-encoded bytes: the advertised base versions of a delta pull, or
// the encoded gradient rows of a push. TraceID/ParentID carry the
// originating batch's span context across the wire (gob omits zero values,
// so untraced requests pay nothing extra); the serving shard parents its
// spans under them.
type wireRequest struct {
	Op       byte // 'P' pull, 'U' push
	Keys     []Key
	Payload  []byte
	TraceID  uint64
	ParentID uint64
}

// wireResponse is the on-wire reply; Payload is the codec-encoded pull
// rows (empty for pushes).
type wireResponse struct {
	Payload []byte
	Err     string
}

// ServeTCP runs a shard's accept loop until the listener closes. Each
// connection is handled on its own goroutine; requests on one connection
// are processed in order. Every codec profile is allowed. Processes that
// need an allowlist or connection draining should use an Acceptor.
func ServeTCP(l net.Listener, srv *Server) {
	var a Acceptor
	a.Serve(l, srv)
}

// Acceptor is a shard accept loop with graceful shutdown: it tracks live
// connections so Shutdown can wait for in-flight requests to drain before
// force-closing stragglers. The zero Acceptor is ready to use and accepts
// every codec profile; set AllowCodecs before Serve to restrict.
type Acceptor struct {
	// AllowCodecs, when non-empty, lists the codec profiles this shard
	// will negotiate; hellos naming others are refused at handshake.
	AllowCodecs []string

	// Coordinator, when non-nil, makes this shard the cluster coordinator:
	// membership ops ('J'/'H'/'L') on its connections are served from this
	// Membership. Shards without one refuse membership ops by name.
	Coordinator *Membership

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// Serve runs the accept loop until the listener closes (close the listener
// to stop accepting; then call Shutdown to drain).
func (a *Acceptor) Serve(l net.Listener, srv *Server) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !a.track(conn) {
			conn.Close() // Shutdown already started
			return
		}
		go func() {
			defer a.untrack(conn)
			serveConn(conn, srv, a.AllowCodecs, a.Coordinator)
		}()
	}
}

func (a *Acceptor) track(conn net.Conn) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	if a.conns == nil {
		a.conns = make(map[net.Conn]struct{})
	}
	a.conns[conn] = struct{}{}
	a.wg.Add(1)
	return true
}

func (a *Acceptor) untrack(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
	a.wg.Done()
}

// Shutdown waits up to grace for live connections to finish (trainer
// connections are persistent, so "finish" normally means the peer closed),
// then force-closes whatever remains and waits for their handlers to
// return. Call after closing the listener; new connections racing the
// shutdown are refused.
func (a *Acceptor) Shutdown(grace time.Duration) {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		a.mu.Lock()
		for c := range a.conns {
			c.Close()
		}
		a.mu.Unlock()
		<-done
	}
}

// countingConn wraps a server-side connection, feeding raw socket byte
// volumes (gob framing included) into an instrumented shard's registry.
type countingConn struct {
	net.Conn
	rx, tx *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// handshakeServer negotiates one connection's codec: it reads the hello,
// checks the allowlist, and answers with the shard's dims (or a refusal).
func handshakeServer(dec *gob.Decoder, enc *gob.Encoder, bw *bufio.Writer, srv *Server, allow []string) (Profile, error) {
	var hello wireHello
	if err := dec.Decode(&hello); err != nil {
		return Profile{}, err
	}
	prof, err := profileByID(hello.Profile)
	if err == nil && hello.V != wireVersion {
		err = fmt.Errorf("ps: wire version %d, want %d", hello.V, wireVersion)
	}
	if err == nil && len(allow) > 0 {
		allowed := false
		for _, name := range allow {
			if name == prof.Name {
				allowed = true
				break
			}
		}
		if !allowed {
			err = fmt.Errorf("ps: codec %q refused by shard (allowed: %v)", prof.Name, allow)
		}
	}
	ack := wireHelloAck{EntDim: srv.Width(EntityKey(0)), RelDim: srv.Width(RelationKey(0))}
	if err != nil {
		ack.Err = err.Error()
	}
	if encErr := enc.Encode(&ack); encErr != nil {
		return Profile{}, encErr
	}
	if flushErr := bw.Flush(); flushErr != nil {
		return Profile{}, flushErr
	}
	return prof, err
}

func serveConn(conn net.Conn, srv *Server, allow []string, coord *Membership) {
	defer conn.Close()
	if o := srv.obs; o != nil {
		o.tcpConns.Inc()
		conn = &countingConn{Conn: conn, rx: o.tcpRx, tx: o.tcpTx}
	}
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(bw)
	prof, err := handshakeServer(dec, enc, bw, srv, allow)
	if err != nil {
		return // refused or broken handshake; the ack carried the reason
	}
	lc, err := newLinkCodec(prof, srv.Width)
	if err != nil {
		return
	}
	var pbuf []byte    // response payload scratch
	var vbuf []float32 // push decode scratch
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean close
		}
		var resp wireResponse
		sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
		switch req.Op {
		case 'P':
			vals, err := srv.PullTraced(sc, req.Keys)
			if err != nil {
				resp.Err = err.Error()
				break
			}
			payload, err := lc.encodePull(pbuf[:0], req.Keys, req.Payload, vals)
			if err != nil {
				resp.Err = err.Error()
				break
			}
			pbuf = payload
			resp.Payload = payload
		case 'U':
			total := lc.totalWidth(req.Keys)
			if cap(vbuf) < total {
				vbuf = make([]float32, total)
			}
			vals := vbuf[:total]
			if err := lc.decodePush(req.Keys, req.Payload, vals); err != nil {
				resp.Err = err.Error()
				break
			}
			if err := srv.PushTraced(sc, req.Keys, vals); err != nil {
				resp.Err = err.Error()
			}
		case opJoin, opHeartbeat, opLeave:
			serveMember(coord, &req, &resp)
		case opTelemetry:
			serveTelemetry(coord, &req, &resp)
		default:
			resp.Err = fmt.Sprintf("ps: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// TCPTransport connects a worker process to shards over TCP, one
// persistent connection per shard with its own negotiated codec state.
// Calls on the same shard are serialized by a per-connection mutex.
type TCPTransport struct {
	conns  []*tcpConn
	codec  string // requested profile ("auto" resolves per connection)
	tracer *span.Tracer

	lastPullTx atomic.Int64
	lastPullRx atomic.Int64
	lastPushTx atomic.Int64
}

// Trace attaches a span tracer to the transport. Traced requests then record
// transport.encode (codec work), transport.serialize (gob encode + flush)
// and wire.tcp (request flushed → response decoded, which includes shard
// service time) spans. The transport is shared by every worker on the
// process, so wire its tracer with the MachineTransport/WorkerTransport
// pseudo-coordinates.
func (t *TCPTransport) Trace(tr *span.Tracer) { t.tracer = tr }

// Instrument publishes the transport's codec byte accounting into reg (see
// CodecTransport.Instrument for the series). Call before traffic flows.
func (t *TCPTransport) Instrument(reg *metrics.Registry) {
	obs := newCodecObs(reg)
	for _, c := range t.conns {
		c.lc.obs = obs
	}
}

// NegotiatedProfile returns the profile this transport was dialed with
// ("auto" when per-connection resolution was requested; see Profiles).
func (t *TCPTransport) NegotiatedProfile() string { return t.codec }

// Profiles returns the per-connection negotiated profile names, in shard
// order — under "auto" they can differ per link.
func (t *TCPTransport) Profiles() []string {
	out := make([]string, len(t.conns))
	for i, c := range t.conns {
		out[i] = c.lc.prof.Name
	}
	return out
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	bw   *bufio.Writer
	lc   *linkCodec
	pbuf []byte // request payload scratch (base versions / encoded grads)
}

// DialTCP connects to every shard address in order with the exact fp32
// profile — the drop-in equivalent of the pre-codec wire protocol.
func DialTCP(addrs []string) (*TCPTransport, error) {
	return DialTCPCodec(addrs, ProfileFP32)
}

// DialTCPCodec connects to every shard address, negotiating the named
// codec profile on each connection. "auto" measures each dial's TCP
// round-trip time and picks per link via ChooseProfile: co-located shards
// stay on fp32, slow links get delta-int8.
func DialTCPCodec(addrs []string, codec string) (*TCPTransport, error) {
	reqProf, err := ResolveProfile(codec)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{codec: reqProf.Name}
	for _, addr := range addrs {
		start := time.Now()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("ps: dialing shard %s: %w", addr, err)
		}
		prof := reqProf
		if prof.Name == ProfileAuto {
			prof, err = ResolveProfile(ChooseProfile(time.Since(start), 0))
			if err != nil {
				conn.Close()
				t.Close()
				return nil, err
			}
		}
		c, err := handshakeClient(conn, prof)
		if err != nil {
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("ps: handshake with shard %s: %w", addr, err)
		}
		t.conns = append(t.conns, c)
	}
	return t, nil
}

// handshakeClient sends the hello on a fresh connection and builds the
// connection's codec state from the shard's answer.
func handshakeClient(conn net.Conn, prof Profile) (*tcpConn, error) {
	id, err := profileID(prof.Name)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&wireHello{V: wireVersion, Profile: id}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	var ack wireHelloAck
	if err := dec.Decode(&ack); err != nil {
		return nil, err
	}
	if ack.Err != "" {
		return nil, errors.New(ack.Err)
	}
	if ack.EntDim <= 0 || ack.RelDim <= 0 {
		return nil, fmt.Errorf("ps: shard advertised dims %d/%d", ack.EntDim, ack.RelDim)
	}
	lc, err := newLinkCodec(prof, func(k Key) int {
		if k.IsRelation() {
			return ack.RelDim
		}
		return ack.EntDim
	})
	if err != nil {
		return nil, err
	}
	return &tcpConn{conn: conn, enc: enc, dec: dec, bw: bw, lc: lc}, nil
}

// roundTrip sends req and reads the reply on c. The caller holds c.mu.
func (t *TCPTransport) roundTrip(shard int, c *tcpConn, req *wireRequest) (*wireResponse, error) {
	sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
	ser := t.tracer.StartChild(sc, span.NSerialize)
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ps: sending to shard %d: %w", shard, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("ps: flushing to shard %d: %w", shard, err)
	}
	ser.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
	wire := t.tracer.StartChild(sc, span.NWireTCP)
	var resp wireResponse
	defer func() { wire.EndAttrs(span.Attrs{Shard: shard}) }()
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("ps: shard %d closed the connection", shard)
		}
		return nil, fmt.Errorf("ps: reading from shard %d: %w", shard, err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Pull implements Transport: the request advertises the link's base
// versions (delta profiles), the reply's payload decodes through the
// negotiated pull codec.
func (t *TCPTransport) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	if shard < 0 || shard >= len(t.conns) {
		return nil, fmt.Errorf("ps: no shard %d", shard)
	}
	c := t.conns[shard]
	sc := req.Trace
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pbuf = c.lc.appendBaseVers(c.pbuf[:0], req.Keys)
	resp, err := t.roundTrip(shard, c, &wireRequest{
		Op: 'P', Keys: req.Keys, Payload: c.pbuf,
		TraceID: sc.Trace, ParentID: sc.Parent,
	})
	if err != nil {
		return nil, err
	}
	sp := t.tracer.StartChild(sc, span.NEncode)
	vals := make([]float32, c.lc.totalWidth(req.Keys))
	if err := c.lc.decodePull(req.Keys, resp.Payload, vals); err != nil {
		sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
		return nil, fmt.Errorf("ps: decoding pull from shard %d: %w", shard, err)
	}
	sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(resp.Payload)), Shard: shard})
	t.lastPullTx.Store(PullRequestBytes(len(req.Keys)) + int64(len(c.pbuf)))
	t.lastPullRx.Store(msgHeaderBytes + int64(len(resp.Payload)))
	return &PullResponse{Vals: vals}, nil
}

// Push implements Transport: gradients are codec-encoded (the caller's
// vals are rewritten with the decoder-visible values, as everywhere in the
// codec layer) and travel as an opaque payload.
func (t *TCPTransport) Push(shard int, req *PushRequest) error {
	if shard < 0 || shard >= len(t.conns) {
		return fmt.Errorf("ps: no shard %d", shard)
	}
	c := t.conns[shard]
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := t.tracer.StartChild(req.Trace, span.NEncode)
	payload, err := c.lc.encodePush(c.pbuf[:0], req.Keys, req.Vals)
	if err != nil {
		sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
		return err
	}
	c.pbuf = payload
	sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(payload)), Shard: shard})
	t.lastPushTx.Store(msgHeaderBytes + 8*int64(len(req.Keys)) + int64(len(payload)))
	_, err = t.roundTrip(shard, c, &wireRequest{
		Op: 'U', Keys: req.Keys, Payload: payload,
		TraceID: req.Trace.Trace, ParentID: req.Trace.Parent,
	})
	return err
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	var first error
	for _, c := range t.conns {
		if c != nil && c.conn != nil {
			if err := c.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Wire sizes: the most recent call's measured payload sizes (see
// CodecTransport for the last-call contract).

// PullRequestWireBytes implements Sizer.
func (t *TCPTransport) PullRequestWireBytes(int) int64 { return t.lastPullTx.Load() }

// PullResponseWireBytes implements Sizer.
func (t *TCPTransport) PullResponseWireBytes(int) int64 { return t.lastPullRx.Load() }

// PushRequestWireBytes implements Sizer.
func (t *TCPTransport) PushRequestWireBytes(int, int) int64 { return t.lastPushTx.Load() }
