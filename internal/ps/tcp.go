package ps

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// The TCP transport implements the same Pull/Push protocol over real
// sockets with gob envelopes, proving the parameter server works across
// process boundaries. Experiments use InProc (deterministic timing);
// integration tests and the cmd/ binaries exercise this path.
//
// A connection starts with a codec handshake: the client sends wireHello
// naming a codec profile (one byte, see profileID), the shard answers with
// wireHelloAck carrying its row widths (or a refusal when the profile is
// outside the Acceptor's allowlist). After the handshake, every embedding
// and gradient travels as an opaque Payload produced by the negotiated
// linkCodec — exact binary row layouts instead of gob-encoded []float32,
// so the Sizer's byte accounting matches what the socket carries.
//
// Fault tolerance lives one level up, in tcpLink (see link.go for the
// policy pieces): any transport-level failure poisons the connection —
// closing it so the gob stream can never desynchronize — and the retry
// loop re-dials, re-handshakes, and re-issues the attempt. A reconnect
// builds a fresh linkCodec on both ends, so delta base state restarts at
// the version-0 unbased sentinel and lossy lockstep stays correct.

// wireHello opens a connection: V is the protocol version, Profile the
// codec profile id the client wants for this link. Link identifies the
// client's (transport, shard) link across reconnects — the server's push
// dedup table keys on it so a push retried after a lost response is not
// applied twice (0 = no dedup, used by membership connections).
type wireHello struct {
	V       byte
	Profile byte
	Link    uint64
}

// wireHelloAck accepts or refuses a hello. On success it carries the
// shard's row widths, which the client's codec needs for per-row framing.
type wireHelloAck struct {
	Err    string
	EntDim int
	RelDim int
}

// wireVersion is the current handshake protocol version.
const wireVersion = 1

// wireRequest is the on-wire envelope for both operations. Payload carries
// codec-encoded bytes: the advertised base versions of a delta pull, or
// the encoded gradient rows of a push. Seq is the link's push sequence
// number (0 for pulls and membership ops): together with the hello's Link
// it gives pushes exactly-once semantics across retries and reconnects.
// TraceID/ParentID carry the originating batch's span context across the
// wire (gob omits zero values, so untraced requests pay nothing extra);
// the serving shard parents its spans under them.
type wireRequest struct {
	Op       byte // 'P' pull, 'U' push
	Keys     []Key
	Payload  []byte
	Seq      uint64
	TraceID  uint64
	ParentID uint64
}

// wireResponse is the on-wire reply; Payload is the codec-encoded pull
// rows (empty for pushes).
type wireResponse struct {
	Payload []byte
	Err     string
}

// ServeTCP runs a shard's accept loop until the listener closes. Each
// connection is handled on its own goroutine; requests on one connection
// are processed in order. Every codec profile is allowed. Processes that
// need an allowlist or connection draining should use an Acceptor.
func ServeTCP(l net.Listener, srv *Server) {
	var a Acceptor
	a.Serve(l, srv)
}

// Acceptor is a shard accept loop with graceful shutdown: it tracks live
// connections so Shutdown can wait for in-flight requests to drain before
// force-closing stragglers. The zero Acceptor is ready to use and accepts
// every codec profile; set AllowCodecs before Serve to restrict.
type Acceptor struct {
	// AllowCodecs, when non-empty, lists the codec profiles this shard
	// will negotiate; hellos naming others are refused at handshake.
	AllowCodecs []string

	// Coordinator, when non-nil, makes this shard the cluster coordinator:
	// membership ops ('J'/'H'/'L') on its connections are served from this
	// Membership. Shards without one refuse membership ops by name.
	Coordinator *Membership

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// Serve runs the accept loop until the listener closes (close the listener
// to stop accepting; then call Shutdown to drain).
func (a *Acceptor) Serve(l net.Listener, srv *Server) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !a.track(conn) {
			conn.Close() // Shutdown already started
			return
		}
		go func() {
			defer a.untrack(conn)
			serveConn(conn, srv, a.AllowCodecs, a.Coordinator)
		}()
	}
}

func (a *Acceptor) track(conn net.Conn) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	if a.conns == nil {
		a.conns = make(map[net.Conn]struct{})
	}
	a.conns[conn] = struct{}{}
	a.wg.Add(1)
	return true
}

func (a *Acceptor) untrack(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
	a.wg.Done()
}

// Shutdown waits up to grace for live connections to finish (trainer
// connections are persistent, so "finish" normally means the peer closed),
// then force-closes whatever remains and waits for their handlers to
// return. Call after closing the listener; new connections racing the
// shutdown are refused.
func (a *Acceptor) Shutdown(grace time.Duration) {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		a.mu.Lock()
		for c := range a.conns {
			c.Close()
		}
		a.mu.Unlock()
		<-done
	}
}

// countingConn wraps a server-side connection, feeding raw socket byte
// volumes (gob framing included) into an instrumented shard's registry.
type countingConn struct {
	net.Conn
	rx, tx *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// handshakeServer negotiates one connection's codec: it reads the hello,
// checks the allowlist, and answers with the shard's dims (or a refusal).
// It also returns the client's link identity for push deduplication.
func handshakeServer(dec *gob.Decoder, enc *gob.Encoder, bw *bufio.Writer, srv *Server, allow []string) (Profile, uint64, error) {
	var hello wireHello
	if err := dec.Decode(&hello); err != nil {
		return Profile{}, 0, err
	}
	prof, err := profileByID(hello.Profile)
	if err == nil && hello.V != wireVersion {
		err = fmt.Errorf("ps: wire version %d, want %d", hello.V, wireVersion)
	}
	if err == nil && len(allow) > 0 {
		allowed := false
		for _, name := range allow {
			if name == prof.Name {
				allowed = true
				break
			}
		}
		if !allowed {
			err = fmt.Errorf("ps: codec %q refused by shard (allowed: %v)", prof.Name, allow)
		}
	}
	ack := wireHelloAck{EntDim: srv.Width(EntityKey(0)), RelDim: srv.Width(RelationKey(0))}
	if err != nil {
		ack.Err = err.Error()
	}
	if encErr := enc.Encode(&ack); encErr != nil {
		return Profile{}, 0, encErr
	}
	if flushErr := bw.Flush(); flushErr != nil {
		return Profile{}, 0, flushErr
	}
	return prof, hello.Link, err
}

func serveConn(conn net.Conn, srv *Server, allow []string, coord *Membership) {
	defer conn.Close()
	if o := srv.obs; o != nil {
		o.tcpConns.Inc()
		conn = &countingConn{Conn: conn, rx: o.tcpRx, tx: o.tcpTx}
	}
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(bw)
	prof, link, err := handshakeServer(dec, enc, bw, srv, allow)
	if err != nil {
		return // refused or broken handshake; the ack carried the reason
	}
	lc, err := newLinkCodec(prof, srv.Width)
	if err != nil {
		return
	}
	var pbuf []byte    // response payload scratch
	var vbuf []float32 // push decode scratch
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean close
		}
		var resp wireResponse
		sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
		switch req.Op {
		case 'P':
			vals, err := srv.PullTraced(sc, req.Keys)
			if err != nil {
				resp.Err = err.Error()
				break
			}
			payload, err := lc.encodePull(pbuf[:0], req.Keys, req.Payload, vals)
			if err != nil {
				resp.Err = err.Error()
				break
			}
			pbuf = payload
			resp.Payload = payload
		case 'U':
			if srv.pushApplied(link, req.Seq) {
				// A retry of a push whose response was lost after the
				// gradient landed: acknowledge idempotently.
				break
			}
			total := lc.totalWidth(req.Keys)
			if cap(vbuf) < total {
				vbuf = make([]float32, total)
			}
			vals := vbuf[:total]
			if err := lc.decodePush(req.Keys, req.Payload, vals); err != nil {
				resp.Err = err.Error()
				break
			}
			if err := srv.PushTraced(sc, req.Keys, vals); err != nil {
				resp.Err = err.Error()
				break
			}
			srv.markPush(link, req.Seq)
		case opJoin, opHeartbeat, opLeave:
			serveMember(coord, &req, &resp)
		case opTelemetry:
			serveTelemetry(coord, &req, &resp)
		default:
			resp.Err = fmt.Sprintf("ps: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// TCPTransport connects a worker process to shards over TCP, one
// persistent connection per shard with its own negotiated codec state.
// Calls on the same shard are serialized by a per-link mutex; failed
// calls retry with backoff and transparent reconnect per LinkConfig.
type TCPTransport struct {
	links  []*tcpLink
	codec  string // requested profile ("auto" resolves per connection)
	cfg    LinkConfig
	tracer *span.Tracer
	closed atomic.Bool

	obs       *linkObs  // ps.link.* series (nil when uninstrumented)
	codecObs  *codecObs // applied to each (re)connected linkCodec
	openLinks atomic.Int64

	lastPullTx atomic.Int64
	lastPullRx atomic.Int64
	lastPushTx atomic.Int64
}

// tcpLink is one shard's persistent link: the current connection (nil
// while disconnected), the dial coordinates needed to rebuild it, the
// circuit breaker, and the push sequence for exactly-once retries.
type tcpLink struct {
	shard int
	addr  string

	mu        sync.Mutex
	c         *tcpConn
	prof      Profile // resolved profile (stable across reconnects)
	auto      bool    // profile still to be resolved from dial RTT
	id        uint64  // link identity carried in the hello (push dedup)
	seq       uint64  // last assigned push sequence
	rng       uint64  // backoff jitter state
	breaker   breaker
	connected bool // ever connected (distinguishes reconnects)
}

// Trace attaches a span tracer to the transport. Traced requests then record
// transport.encode (codec work), transport.serialize (gob encode + flush)
// and wire.tcp (request flushed → response decoded, which includes shard
// service time) spans. The transport is shared by every worker on the
// process, so wire its tracer with the MachineTransport/WorkerTransport
// pseudo-coordinates.
func (t *TCPTransport) Trace(tr *span.Tracer) { t.tracer = tr }

// Instrument publishes the transport's codec byte accounting (see
// CodecTransport.Instrument for the series) and its ps.link.* health
// series — retries, reconnects, failures, deadline hits, breaker trips,
// and the breaker-open gauge — into reg. Call before traffic flows.
func (t *TCPTransport) Instrument(reg *metrics.Registry) {
	t.codecObs = newCodecObs(reg)
	t.obs = newLinkObs(reg)
	for _, l := range t.links {
		l.mu.Lock()
		if l.c != nil {
			l.c.lc.obs = t.codecObs
		}
		l.mu.Unlock()
	}
}

// NegotiatedProfile returns the profile this transport was dialed with
// ("auto" when per-connection resolution was requested; see Profiles).
func (t *TCPTransport) NegotiatedProfile() string { return t.codec }

// Profiles returns the per-link negotiated profile names, in shard order —
// under "auto" they can differ per link.
func (t *TCPTransport) Profiles() []string {
	out := make([]string, len(t.links))
	for i, l := range t.links {
		out[i] = l.prof.Name
	}
	return out
}

// LinksDown returns how many shard links currently sit behind an open
// circuit breaker (the live value of the ps.link.breaker_open gauge).
func (t *TCPTransport) LinksDown() int { return int(t.openLinks.Load()) }

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	bw   *bufio.Writer
	lc   *linkCodec
	pbuf []byte // request payload scratch (base versions / encoded grads)
}

// linkSeq feeds newLinkID; mixing in the dial time keeps ids unique across
// worker processes without coordination.
var linkSeq atomic.Uint64

// newLinkID returns a process-unique, never-zero link identity.
func newLinkID() uint64 {
	id := splitmix64(uint64(time.Now().UnixNano())) ^ linkSeq.Add(1)
	if id == 0 {
		id = 1
	}
	return id
}

// DialTCP connects to every shard address in order with the exact fp32
// profile — the drop-in equivalent of the pre-codec wire protocol.
func DialTCP(addrs []string) (*TCPTransport, error) {
	return DialTCPCodec(addrs, ProfileFP32)
}

// DialTCPCodec connects with the named codec profile and default link
// hardening (see LinkConfig). "auto" measures each dial's TCP round-trip
// time and picks per link via ChooseProfile: co-located shards stay on
// fp32, slow links get delta-int8.
func DialTCPCodec(addrs []string, codec string) (*TCPTransport, error) {
	return DialTCPLink(addrs, codec, LinkConfig{})
}

// DialTCPLink connects to every shard address, negotiating the named codec
// profile on each link and applying cfg's deadline/retry/breaker policy to
// every RPC. Dialing is eager so a bad address or refused handshake fails
// the dial, not the first batch; on any error every connection already
// established is closed before returning (no partial progress leaks).
func DialTCPLink(addrs []string, codec string, cfg LinkConfig) (*TCPTransport, error) {
	reqProf, err := ResolveProfile(codec)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{codec: reqProf.Name, cfg: cfg.withDefaults()}
	for i, addr := range addrs {
		t.links = append(t.links, &tcpLink{
			shard: i,
			addr:  addr,
			prof:  reqProf,
			auto:  reqProf.Name == ProfileAuto,
			id:    newLinkID(),
			rng:   splitmix64(uint64(t.cfg.Seed) ^ uint64(i)*0x9e3779b97f4a7c15),
			breaker: breaker{
				threshold: t.cfg.BreakerThreshold,
				cooldown:  t.cfg.BreakerCooldown,
			},
		})
	}
	for _, l := range t.links {
		if err := l.connect(t); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// connect dials and handshakes l's shard, installing the fresh connection.
// The caller holds l.mu (or, during DialTCPLink, is the sole owner). A
// reconnect builds a new linkCodec, so delta base state on both ends
// restarts at the version-0 unbased sentinel.
func (l *tcpLink) connect(t *TCPTransport) error {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", l.addr, dialTimeout(t.cfg.RPCTimeout))
	if err != nil {
		return fmt.Errorf("ps: dialing shard %s: %w", l.addr, err)
	}
	if l.auto {
		prof, err := ResolveProfile(ChooseProfile(time.Since(start), 0))
		if err != nil {
			conn.Close()
			return err
		}
		l.prof = prof
		l.auto = false // the choice is sticky: reconnects keep the codec
	}
	if d := t.cfg.RPCTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
	}
	c, err := handshakeClient(conn, l.prof, l.id)
	if err != nil {
		conn.Close()
		return fmt.Errorf("ps: handshake with shard %s: %w", l.addr, err)
	}
	conn.SetDeadline(time.Time{})
	if t.codecObs != nil {
		c.lc.obs = t.codecObs
	}
	if l.connected {
		if o := t.obs; o != nil {
			o.reconns.Inc()
		}
	}
	l.connected = true
	l.c = c
	return nil
}

// dialTimeout bounds the TCP connect: the RPC deadline when one is set,
// otherwise a generous fixed cap so a black-holed SYN cannot hang a dial
// forever.
func dialTimeout(rpcTimeout time.Duration) time.Duration {
	if rpcTimeout > 0 {
		return rpcTimeout
	}
	return 30 * time.Second
}

// handshakeClient sends the hello on a fresh connection and builds the
// connection's codec state from the shard's answer. link is the client's
// link identity for push dedup (0 disables, e.g. membership connections).
func handshakeClient(conn net.Conn, prof Profile, link uint64) (*tcpConn, error) {
	id, err := profileID(prof.Name)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&wireHello{V: wireVersion, Profile: id, Link: link}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	var ack wireHelloAck
	if err := dec.Decode(&ack); err != nil {
		return nil, err
	}
	if ack.Err != "" {
		return nil, errors.New(ack.Err)
	}
	if ack.EntDim <= 0 || ack.RelDim <= 0 {
		return nil, fmt.Errorf("ps: shard advertised dims %d/%d", ack.EntDim, ack.RelDim)
	}
	lc, err := newLinkCodec(prof, func(k Key) int {
		if k.IsRelation() {
			return ack.RelDim
		}
		return ack.EntDim
	})
	if err != nil {
		return nil, err
	}
	return &tcpConn{conn: conn, enc: enc, dec: dec, bw: bw, lc: lc}, nil
}

// withLink runs attempt against shard's link under the retry policy: a
// transport-level failure poisons the connection (closing it so the gob
// stream can never desynchronize), backs off with deterministic jitter,
// reconnects, and re-runs the attempt. Application errors (RemoteError,
// noRetryError) pass through without retry or poisoning. When the link's
// circuit breaker is open the call fails fast with a LinkDownError before
// touching the wire.
func (t *TCPTransport) withLink(shard int, attempt func(l *tcpLink, c *tcpConn) error) error {
	if shard < 0 || shard >= len(t.links) {
		return fmt.Errorf("ps: no shard %d", shard)
	}
	if t.closed.Load() {
		return fmt.Errorf("ps: transport closed")
	}
	l := t.links[shard]
	l.mu.Lock()
	defer l.mu.Unlock()
	var lastErr error
	for try := 0; ; try++ {
		if try > 0 {
			if try > t.cfg.Retries {
				break
			}
			if o := t.obs; o != nil {
				o.retries.Inc()
			}
			t.cfg.Sleep(l.backoff(t.cfg, try))
		}
		if l.c == nil {
			if !l.breaker.allow(t.cfg.Now()) {
				return &LinkDownError{Shard: l.shard, Addr: l.addr, Breaker: true, Err: lastErr}
			}
			if err := l.connect(t); err != nil {
				lastErr = err
				l.fail(t, err)
				continue
			}
		}
		err := attempt(l, l.c)
		if err == nil {
			l.ok(t)
			return nil
		}
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			l.ok(t) // the link worked; the shard refused the request
			return err
		}
		var nr *noRetryError
		if errors.As(err, &nr) {
			return nr.err
		}
		lastErr = err
		l.poison(t, err)
	}
	return &LinkDownError{Shard: l.shard, Addr: l.addr, Err: lastErr}
}

// backoff returns the jittered exponential delay before retry attempt n
// (n ≥ 1): base·2^(n-1) capped at RetryMax, scaled into [d/2, d) by the
// link's deterministic jitter stream.
func (l *tcpLink) backoff(cfg LinkConfig, n int) time.Duration {
	d := cfg.RetryBase
	for i := 1; i < n && d < cfg.RetryMax; i++ {
		d *= 2
	}
	if d > cfg.RetryMax {
		d = cfg.RetryMax
	}
	l.rng = splitmix64(l.rng)
	frac := 0.5 + 0.5*float64(l.rng>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// poison closes and discards the link's connection after a transport-level
// failure — the stream position is unknown, so the connection must never
// carry another RPC — and records the failure with the breaker.
func (l *tcpLink) poison(t *TCPTransport, err error) {
	if l.c != nil {
		l.c.conn.Close()
		l.c = nil
	}
	l.fail(t, err)
}

// fail feeds one attempt failure into the metrics and the breaker,
// updating the breaker-open gauge on a trip.
func (l *tcpLink) fail(t *TCPTransport, err error) {
	if o := t.obs; o != nil {
		o.failures.Inc()
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			o.deadlines.Inc()
		}
	}
	if l.breaker.failure(t.cfg.Now()) {
		if o := t.obs; o != nil {
			o.trips.Inc()
		}
		t.setOpen(t.openLinks.Add(1))
	}
}

// ok records a working RPC, closing the breaker (and clearing the gauge)
// if the link was recovering.
func (l *tcpLink) ok(t *TCPTransport) {
	if l.breaker.success() {
		t.setOpen(t.openLinks.Add(-1))
	}
}

func (t *TCPTransport) setOpen(n int64) {
	if o := t.obs; o != nil {
		o.open.Set(float64(n))
	}
}

// roundTrip sends req and reads the reply on c under the per-attempt
// deadlines: SetWriteDeadline covers the encode + flush, SetReadDeadline
// the response decode. The caller holds the link mutex. A non-empty
// response Err returns as a *RemoteError (healthy link, refused request).
func (t *TCPTransport) roundTrip(shard int, c *tcpConn, req *wireRequest) (*wireResponse, error) {
	sc := span.Context{Trace: req.TraceID, Parent: req.ParentID}
	ser := t.tracer.StartChild(sc, span.NSerialize)
	if d := t.cfg.RPCTimeout; d > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ps: sending to shard %d: %w", shard, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("ps: flushing to shard %d: %w", shard, err)
	}
	ser.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
	wire := t.tracer.StartChild(sc, span.NWireTCP)
	var resp wireResponse
	defer func() { wire.EndAttrs(span.Attrs{Shard: shard}) }()
	if d := t.cfg.RPCTimeout; d > 0 {
		c.conn.SetReadDeadline(time.Now().Add(d))
	}
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("ps: shard %d closed the connection", shard)
		}
		return nil, fmt.Errorf("ps: reading from shard %d: %w", shard, err)
	}
	c.conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return &resp, nil
}

// Pull implements Transport: the request advertises the link's base
// versions (delta profiles), the reply's payload decodes through the
// negotiated pull codec. Each retry attempt re-encodes the base versions
// against the current connection's codec state — after a reconnect the
// fresh codec advertises nothing, so the shard answers with full rows.
func (t *TCPTransport) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	var out *PullResponse
	err := t.withLink(shard, func(_ *tcpLink, c *tcpConn) error {
		c.pbuf = c.lc.appendBaseVers(c.pbuf[:0], req.Keys)
		resp, err := t.roundTrip(shard, c, &wireRequest{
			Op: 'P', Keys: req.Keys, Payload: c.pbuf,
			TraceID: req.Trace.Trace, ParentID: req.Trace.Parent,
		})
		if err != nil {
			return err
		}
		sp := t.tracer.StartChild(req.Trace, span.NEncode)
		vals := make([]float32, c.lc.totalWidth(req.Keys))
		if err := c.lc.decodePull(req.Keys, resp.Payload, vals); err != nil {
			sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
			// The link's base state may now disagree with the shard's:
			// poison and retry on a fresh codec.
			return fmt.Errorf("ps: decoding pull from shard %d: %w", shard, err)
		}
		sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(resp.Payload)), Shard: shard})
		t.lastPullTx.Store(PullRequestBytes(len(req.Keys)) + int64(len(c.pbuf)))
		t.lastPullRx.Store(msgHeaderBytes + int64(len(resp.Payload)))
		out = &PullResponse{Vals: vals}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Push implements Transport: gradients are codec-encoded (the caller's
// vals are rewritten with the decoder-visible values, as everywhere in the
// codec layer) and travel as an opaque payload. The payload is encoded
// once and retries re-send the identical bytes under the same sequence
// number, so a push whose response was lost after the shard applied it is
// deduplicated server-side instead of double-applied.
func (t *TCPTransport) Push(shard int, req *PushRequest) error {
	var payload []byte
	var seq uint64
	return t.withLink(shard, func(l *tcpLink, c *tcpConn) error {
		if payload == nil {
			sp := t.tracer.StartChild(req.Trace, span.NEncode)
			p, err := c.lc.encodePush(c.pbuf[:0], req.Keys, req.Vals)
			if err != nil {
				sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Shard: shard})
				return &noRetryError{err}
			}
			c.pbuf = p
			payload = p
			sp.EndAttrs(span.Attrs{Rows: int64(len(req.Keys)), Bytes: int64(len(p)), Shard: shard})
			t.lastPushTx.Store(msgHeaderBytes + 8*int64(len(req.Keys)) + int64(len(p)))
			l.seq++
			seq = l.seq
		}
		_, err := t.roundTrip(shard, c, &wireRequest{
			Op: 'U', Keys: req.Keys, Payload: payload, Seq: seq,
			TraceID: req.Trace.Trace, ParentID: req.Trace.Parent,
		})
		return err
	})
}

// Close implements Transport. A closed transport fails every subsequent
// RPC instead of reconnecting.
func (t *TCPTransport) Close() error {
	t.closed.Store(true)
	var first error
	for _, l := range t.links {
		l.mu.Lock()
		if l.c != nil {
			if err := l.c.conn.Close(); err != nil && first == nil {
				first = err
			}
			l.c = nil
		}
		l.mu.Unlock()
	}
	return first
}

// Wire sizes: the most recent call's measured payload sizes (see
// CodecTransport for the last-call contract).

// PullRequestWireBytes implements Sizer.
func (t *TCPTransport) PullRequestWireBytes(int) int64 { return t.lastPullTx.Load() }

// PullResponseWireBytes implements Sizer.
func (t *TCPTransport) PullResponseWireBytes(int) int64 { return t.lastPullRx.Load() }

// PushRequestWireBytes implements Sizer.
func (t *TCPTransport) PushRequestWireBytes(int, int) int64 { return t.lastPushTx.Load() }
