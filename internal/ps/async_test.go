package ps

import (
	"sync"
	"testing"
)

func TestAsyncServerAppliesAfterFlush(t *testing.T) {
	c := testCluster(t, 1)
	a := NewAsyncServer(c.Servers[0], 16)
	defer a.Close()

	k := EntityKey(0)
	before, _ := a.Pull([]Key{k})
	grad := make([]float32, 8)
	grad[0] = 1
	for i := 0; i < 5; i++ {
		if err := a.Push([]Key{k}, grad); err != nil {
			t.Fatalf("Push %d: %v", i, err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if a.Pending() != 0 {
		t.Errorf("Pending = %d after Flush", a.Pending())
	}
	after, _ := a.Pull([]Key{k})
	if want := before[0] - 5*0.1; !approx32(after[0], want) { // SGD lr=0.1 × 5 pushes
		t.Errorf("after 5 async pushes: %v, want %v", after[0], want)
	}
}

func TestAsyncServerPayloadCopied(t *testing.T) {
	c := testCluster(t, 1)
	a := NewAsyncServer(c.Servers[0], 16)
	defer a.Close()
	k := EntityKey(1)
	before, _ := a.Pull([]Key{k})
	grad := make([]float32, 8)
	grad[0] = 1
	if err := a.Push([]Key{k}, grad); err != nil {
		t.Fatal(err)
	}
	grad[0] = 1e9 // mutate after Push; must not affect the queued message
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	after, _ := a.Pull([]Key{k})
	if !approx32(after[0], before[0]-0.1) {
		t.Errorf("queued payload not isolated from caller buffer: %v", after[0])
	}
}

func TestAsyncServerErrorPropagation(t *testing.T) {
	c := testCluster(t, 2) // shard 0 owns even entities only
	a := NewAsyncServer(c.Servers[0], 4)
	if err := a.Push([]Key{EntityKey(1)}, make([]float32, 8)); err != nil {
		t.Fatalf("enqueue itself should succeed: %v", err)
	}
	if err := a.Flush(); err == nil {
		t.Error("apply error not surfaced by Flush")
	}
	if err := a.Close(); err != nil {
		t.Errorf("Close after drained error: %v", err)
	}
	if err := a.Push([]Key{EntityKey(0)}, make([]float32, 8)); err == nil {
		t.Error("push after Close accepted")
	}
}

func TestAsyncServerConcurrentPushers(t *testing.T) {
	c := testCluster(t, 1)
	a := NewAsyncServer(c.Servers[0], 8)
	k := EntityKey(2)
	before, _ := a.Pull([]Key{k})
	grad := make([]float32, 8)
	grad[0] = 0.01
	var wg sync.WaitGroup
	const pushers, each = 4, 50
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := a.Push([]Key{k}, grad); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Servers[0].Pull([]Key{k})
	want := before[0] - pushers*each*0.001 // SGD lr=0.1 × grad 0.01
	if !approx32(after[0], want) {
		t.Errorf("after concurrent pushes: %v, want %v", after[0], want)
	}
}

func TestAsyncInProcTransport(t *testing.T) {
	c := testCluster(t, 2)
	tr := NewAsyncInProc(c, 8)
	cl, err := NewClient(0, c, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{EntityKey(0), EntityKey(1), RelationKey(0)}
	rows := make(map[Key][]float32)
	if err := cl.Pull(keys, rows); err != nil {
		t.Fatalf("Pull: %v", err)
	}
	grad := map[Key][]float32{EntityKey(0): make([]float32, 8)}
	grad[EntityKey(0)][0] = 1
	if err := cl.Push(grad); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rows2 := make(map[Key][]float32)
	if err := cl.Pull([]Key{EntityKey(0)}, rows2); err != nil {
		t.Fatal(err)
	}
	if rows2[EntityKey(0)][0] == rows[EntityKey(0)][0] {
		t.Error("async push not applied after Flush")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := tr.Pull(9, &PullRequest{}); err == nil {
		t.Error("bad shard accepted")
	}
}

func approx32(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-4
}
