package ps

import (
	"fmt"
	"math"
	"sync"

	"hetkg/internal/metrics"
	"hetkg/internal/opt"
	"hetkg/internal/span"
)

// Server is one parameter-server shard. It owns a subset of the embedding
// rows and the optimizer state for them, and applies pushed gradients
// immediately (the asynchronous "message queue → AdaGrad" path of
// Algorithm 4 collapses to a locked apply in-process).
type Server struct {
	machine int
	entDim  int
	relDim  int

	mu    sync.RWMutex
	rows  map[Key][]float32
	optim opt.Optimizer

	// lastPush records, per client link identity, the highest push sequence
	// already applied — the dedup table that makes push retries idempotent
	// (a retry re-sends the identical payload under the same sequence, so
	// "already applied" means the gradient landed and only the response was
	// lost).
	dedupMu  sync.Mutex
	lastPush map[uint64]uint64

	obs    *serverObs
	tracer *span.Tracer
}

// pushApplied reports whether the (link, seq) push was already applied.
// Link 0 or seq 0 means dedup is disabled for the request.
func (s *Server) pushApplied(link, seq uint64) bool {
	if link == 0 || seq == 0 {
		return false
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	return seq <= s.lastPush[link]
}

// markPush records a successfully applied push for dedup.
func (s *Server) markPush(link, seq uint64) {
	if link == 0 || seq == 0 {
		return
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if s.lastPush == nil {
		s.lastPush = make(map[uint64]uint64)
	}
	if seq > s.lastPush[link] {
		s.lastPush[link] = seq
	}
}

// serverObs holds a shard's registry-backed request series (see Instrument).
type serverObs struct {
	pulls      *metrics.Counter
	pushes     *metrics.Counter
	rowsPulled *metrics.Counter
	rowsPushed *metrics.Counter
	tcpConns   *metrics.Counter
	tcpRx      *metrics.Counter
	tcpTx      *metrics.Counter
}

// Instrument publishes this shard's request traffic into reg: served request
// counts (ps.server.{pulls,pushes}) and row volumes
// (ps.server.rows_{pulled,pushed}). When the shard is served over TCP
// (ServeTCP), accepted connections and raw socket bytes are additionally
// tracked as ps.tcp.{conns,rx_bytes,tx_bytes}. Shards wired to the same
// registry aggregate. Call before the shard serves traffic.
func (s *Server) Instrument(reg *metrics.Registry) {
	s.obs = &serverObs{
		pulls:      reg.Counter(metrics.MPSServerPulls),
		pushes:     reg.Counter(metrics.MPSServerPushes),
		rowsPulled: reg.Counter(metrics.MPSServerRowsPulled),
		rowsPushed: reg.Counter(metrics.MPSServerRowsPushed),
		tcpConns:   reg.Counter(metrics.MPSTCPConns),
		tcpRx:      reg.Counter(metrics.MPSTCPRxBytes),
		tcpTx:      reg.Counter(metrics.MPSTCPTxBytes),
	}
}

// ServerConfig parameterizes shard construction.
type ServerConfig struct {
	// Machine is this shard's machine index.
	Machine int
	// EntityDim and RelationDim are the row widths (they differ for models
	// like TransH whose relations pack extra parameters).
	EntityDim, RelationDim int
	// Optimizer applies pushed gradients (AdaGrad in the paper).
	Optimizer opt.Optimizer
}

// NewServer builds an empty shard.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.EntityDim <= 0 || cfg.RelationDim <= 0 {
		return nil, fmt.Errorf("ps: non-positive dims %d/%d", cfg.EntityDim, cfg.RelationDim)
	}
	if cfg.Optimizer == nil {
		return nil, fmt.Errorf("ps: nil optimizer")
	}
	return &Server{
		machine: cfg.Machine,
		entDim:  cfg.EntityDim,
		relDim:  cfg.RelationDim,
		rows:    make(map[Key][]float32),
		optim:   cfg.Optimizer,
	}, nil
}

// Machine returns the shard's machine index.
func (s *Server) Machine() int { return s.machine }

// Trace attaches a span tracer to the shard. Shard-side request handling is
// then recorded as shard.pull / shard.apply spans parented under the context
// carried in the request (zero context → no-op). Safe to leave unset.
func (s *Server) Trace(t *span.Tracer) { s.tracer = t }

// PullTraced serves a pull, recording a shard.pull span stitched to the
// originating batch via sc. Transports call this; Pull(keys) is the
// untraced equivalent.
func (s *Server) PullTraced(sc span.Context, keys []Key) ([]float32, error) {
	sp := s.tracer.StartChild(sc, span.NShardPull)
	vals, err := s.Pull(keys)
	sp.EndAttrs(span.Attrs{Rows: int64(len(keys)), Shard: s.machine})
	return vals, err
}

// PushTraced applies a push, recording a shard.apply span stitched to the
// originating batch via sc.
func (s *Server) PushTraced(sc span.Context, keys []Key, vals []float32) error {
	sp := s.tracer.StartChild(sc, span.NShardApply)
	err := s.Push(keys, vals)
	sp.EndAttrs(span.Attrs{Rows: int64(len(keys)), Shard: s.machine})
	return err
}

// Width returns the row width for key k.
func (s *Server) Width(k Key) int {
	if k.IsRelation() {
		return s.relDim
	}
	return s.entDim
}

// InitRow installs an initial value for a row this shard owns. It is called
// once per owned key before training starts.
func (s *Server) InitRow(k Key, row []float32) error {
	if len(row) != s.Width(k) {
		return fmt.Errorf("ps: row %v has width %d, want %d", k, len(row), s.Width(k))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]float32, len(row))
	copy(cp, row)
	s.rows[k] = cp
	return nil
}

// NumRows returns how many rows the shard owns.
func (s *Server) NumRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// Pull copies the requested rows, concatenated in key order, into a fresh
// buffer. Unknown keys are an error: they indicate a placement bug.
func (s *Server) Pull(keys []Key) ([]float32, error) {
	if o := s.obs; o != nil {
		o.pulls.Inc()
		o.rowsPulled.Add(int64(len(keys)))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, k := range keys {
		total += s.Width(k)
	}
	out := make([]float32, 0, total)
	for _, k := range keys {
		row, ok := s.rows[k]
		if !ok {
			return nil, fmt.Errorf("ps: shard %d does not own %v", s.machine, k)
		}
		out = append(out, row...)
	}
	return out, nil
}

// Push applies gradients for the given keys (concatenated in key order in
// vals) through the shard's optimizer. This is Algorithm 4's push path.
func (s *Server) Push(keys []Key, vals []float32) error {
	if o := s.obs; o != nil {
		o.pushes.Inc()
		o.rowsPushed.Add(int64(len(keys)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off := 0
	for _, k := range keys {
		w := s.Width(k)
		if off+w > len(vals) {
			return fmt.Errorf("ps: push payload too short for %v (have %d, need %d more)", k, len(vals)-off, w)
		}
		row, ok := s.rows[k]
		if !ok {
			return fmt.Errorf("ps: shard %d does not own %v", s.machine, k)
		}
		grad := vals[off : off+w]
		if !finite(grad) {
			// Drop non-finite gradients rather than poisoning the row;
			// asynchronous training can transiently explode.
			off += w
			continue
		}
		s.optim.Apply(uint64(k), row, grad)
		off += w
	}
	if off != len(vals) {
		return fmt.Errorf("ps: push payload has %d leftover values", len(vals)-off)
	}
	return nil
}

// SetRow overwrites a row's value (used by block trainers that update
// entity partitions locally and write them back wholesale).
func (s *Server) SetRow(k Key, row []float32) error {
	if len(row) != s.Width(k) {
		return fmt.Errorf("ps: SetRow %v width %d, want %d", k, len(row), s.Width(k))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, ok := s.rows[k]
	if !ok {
		return fmt.Errorf("ps: shard %d does not own %v", s.machine, k)
	}
	copy(dst, row)
	return nil
}

// Keys returns all keys owned by the shard (unordered).
func (s *Server) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.rows))
	for k := range s.rows {
		out = append(out, k)
	}
	return out
}

func finite(x []float32) bool {
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}
