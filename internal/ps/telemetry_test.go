package ps

import (
	"net"
	"strings"
	"testing"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/telemetry"
)

// TestTelemetryOverTCP drives op 'T' through the real gob TCP wire: a
// coordinator shard hosting a Fleet aggregator, a CoordClient shipping
// labeled snapshots, and the readable refusals from a non-coordinator
// shard and a coordinator without an aggregator.
func TestTelemetryOverTCP(t *testing.T) {
	cluster := testCluster(t, 2)
	fleet := telemetry.NewFleet(telemetry.FleetConfig{})
	m, err := NewMembership(MemberConfig{Partitions: 2, Telemetry: fleet})
	if err != nil {
		t.Fatal(err)
	}

	serve := func(coord *Membership) (addr string, stop func()) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		acc := &Acceptor{Coordinator: coord}
		done := make(chan struct{})
		go func() {
			acc.Serve(l, cluster.Servers[0])
			close(done)
		}()
		return l.Addr().String(), func() {
			l.Close()
			acc.Shutdown(time.Second)
			<-done
		}
	}

	addr, stop := serve(m)
	defer stop()
	cc, err := DialCoordinator(addr, time.Second)
	if err != nil {
		t.Fatalf("DialCoordinator: %v", err)
	}
	defer cc.Close()

	reg := metrics.NewRegistry()
	reg.Counter(metrics.MTrainIterations).Add(42)
	reg.Gauge(metrics.MTrainLoss).Set(0.5)
	for seq := int64(1); seq <= 2; seq++ {
		err := cc.SendTelemetry(telemetry.Report{
			Role:    telemetry.RoleWorker,
			Label:   "tcp-worker",
			Seq:     seq,
			Metrics: reg.Snapshot(),
		})
		if err != nil {
			t.Fatalf("SendTelemetry over TCP: %v", err)
		}
	}
	v := fleet.View()
	if len(v.Processes) != 1 || v.Processes[0].ID != "worker/tcp-worker" {
		t.Fatalf("fleet view = %+v", v.Processes)
	}
	if v.Processes[0].Reports != 2 {
		t.Fatalf("reports = %d, want 2", v.Processes[0].Reports)
	}

	// A malformed report surfaces the aggregator's error to the sender.
	if err := cc.SendTelemetry(telemetry.Report{Role: "gpu", Label: "x", Metrics: reg.Snapshot()}); err == nil {
		t.Error("bad role accepted over the wire")
	}

	// A plain shard (no coordinator) refuses telemetry by name.
	addr2, stop2 := serve(nil)
	defer stop2()
	cc2, err := DialCoordinator(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	err = cc2.SendTelemetry(telemetry.Report{Role: telemetry.RoleWorker, Label: "w", Metrics: reg.Snapshot()})
	if err == nil || !strings.Contains(err.Error(), "not the coordinator") {
		t.Fatalf("non-coordinator refusal = %v", err)
	}
}

// TestMembershipSendTelemetryInProcess covers the in-process Sender path
// and the no-aggregator refusal.
func TestMembershipSendTelemetryInProcess(t *testing.T) {
	fleet := telemetry.NewFleet(telemetry.FleetConfig{})
	m, err := NewMembership(MemberConfig{Partitions: 1, Telemetry: fleet})
	if err != nil {
		t.Fatal(err)
	}
	var sender telemetry.Sender = m // compile-time: *Membership is a Sender
	reg := metrics.NewRegistry()
	if err := sender.SendTelemetry(telemetry.Report{Role: telemetry.RoleWorker, Label: "w0", Seq: 1, Metrics: reg.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	if fleet.Processes() != 1 {
		t.Fatalf("processes = %d, want 1", fleet.Processes())
	}

	bare, err := NewMembership(MemberConfig{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.SendTelemetry(telemetry.Report{Role: telemetry.RoleWorker, Label: "w0", Metrics: reg.Snapshot()}); err == nil {
		t.Error("membership without a Fleet accepted telemetry")
	}
}
