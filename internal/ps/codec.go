package ps

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file is the negotiated wire-codec layer: row codecs (how one
// embedding or gradient row is laid out in bytes) and codec profiles (which
// codec each direction of a link uses). Profiles are negotiated per link —
// at connection time for the TCP transport, at construction time for the
// in-process simulation — so heterogeneous clusters can mix, e.g., fp32 on
// co-located links with delta-int8 across the slow inter-machine network.
//
// Row codecs are stateless and allocation-free: encoding appends to a
// caller-owned buffer, decoding fills a caller-owned row. The stateful part
// of the pull path (delta encoding against the replica's last-seen version)
// lives in linkCodec (codec_link.go), which frames rows with a per-row
// version so both ends of a link agree on the delta base.

// Sizer lets a transport report its own wire sizes to the traffic meter.
// Transports that compress the payload implement it so the netsim cost
// model prices what would actually cross the link.
type Sizer interface {
	PullRequestWireBytes(numKeys int) int64
	PullResponseWireBytes(numVals int) int64
	PushRequestWireBytes(numKeys, numVals int) int64
}

// Codec encodes and decodes one embedding row. Implementations are
// stateless and safe for concurrent use; Encode appends to dst (callers
// reuse a grow-only scratch buffer for zero-allocation steady state).
type Codec interface {
	// Name is the codec's wire name ("fp32", "int8", ...).
	Name() string
	// Lossy reports whether decode(encode(row)) may differ from row.
	Lossy() bool
	// MaxRowBytes bounds the encoded size of a width-w row.
	MaxRowBytes(w int) int
	// EncodeRow appends row's encoding to dst and returns the extended
	// slice. It also writes the decoder-visible values back into row, so
	// in-process callers observe exactly what a remote decoder would.
	EncodeRow(dst []byte, row []float32) []byte
	// DecodeRow fills row from the front of src and returns the unread
	// tail.
	DecodeRow(row []float32, src []byte) ([]byte, error)
}

// Canonical codec-profile names, the vocabulary of every -codec flag.
// scripts/check.sh enforces that each profile named here has a golden
// wire-format test and an EXPERIMENTS.md row.
const (
	// ProfileFP32 ships dense float32 rows both ways (the exact baseline).
	ProfileFP32 = "fp32"
	// ProfileFP16 ships IEEE half-precision rows both ways (2× smaller,
	// ~2^-11 relative rounding error).
	ProfileFP16 = "fp16"
	// ProfileInt8 ships 8-bit linearly quantized rows both ways (4×
	// smaller, per-row scale; what core.RunConfig.Quantize8Bit selects).
	ProfileInt8 = "int8"
	// ProfileDeltaInt8 pulls int8-quantized deltas against the version the
	// worker already holds (update norms shrink as training converges, so
	// deltas quantize tighter than absolute values) and pushes int8.
	ProfileDeltaInt8 = "delta-int8"
	// ProfileTopK pulls fp32 and pushes only each gradient row's largest
	// coordinates as a sparse row; the worker-side error-feedback buffer
	// (internal/train) re-sends the dropped mass later.
	ProfileTopK = "topk"
	// ProfileAuto picks a profile per link from the link's measured (TCP)
	// or modeled (netsim) RTT and bandwidth; see ChooseProfile.
	ProfileAuto = "auto"
)

// Profile is a negotiated pair of directional row codecs.
type Profile struct {
	// Name is the profile's canonical name.
	Name string
	// Pull and Push name the row codecs for pull responses (shard→worker)
	// and push payloads (worker→shard).
	Pull, Push string
	// DeltaPull frames pull rows with versions and encodes them as deltas
	// against the link's last-transmitted value (see linkCodec).
	DeltaPull bool
	// SparsePush marks the push path as top-k sparsified: the trainer
	// attaches an error-feedback buffer and drops small coordinates before
	// pushing.
	SparsePush bool
}

// profiles is the registry of negotiable profiles, indexed by the wire id
// that the TCP hello carries (one byte).
var profiles = []Profile{
	{Name: ProfileFP32, Pull: "fp32", Push: "fp32"},
	{Name: ProfileFP16, Pull: "fp16", Push: "fp16"},
	{Name: ProfileInt8, Pull: "int8", Push: "int8"},
	{Name: ProfileDeltaInt8, Pull: "int8", Push: "int8", DeltaPull: true},
	{Name: ProfileTopK, Pull: "fp32", Push: "sparse", SparsePush: true},
}

// ResolveProfile maps a -codec flag value to its profile. The empty string
// resolves to fp32 (the exact baseline); "auto" is accepted and resolved
// per link later (ChooseProfile), returned here with only Name set.
func ResolveProfile(name string) (Profile, error) {
	if name == "" {
		name = ProfileFP32
	}
	if name == ProfileAuto {
		return Profile{Name: ProfileAuto}, nil
	}
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("ps: unknown codec %q (have fp32, fp16, int8, delta-int8, topk, auto)", name)
}

// ProfileNames returns every negotiable profile name (excluding auto), in
// wire-id order.
func ProfileNames() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// profileID returns the one-byte wire id the TCP hello carries.
func profileID(name string) (byte, error) {
	for i, p := range profiles {
		if p.Name == name {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("ps: profile %q has no wire id", name)
}

// profileByID is the inverse of profileID, used by the serving shard.
func profileByID(id byte) (Profile, error) {
	if int(id) >= len(profiles) {
		return Profile{}, fmt.Errorf("ps: unknown profile id %d", id)
	}
	return profiles[int(id)], nil
}

// rowCodec resolves a directional codec name to its implementation.
func rowCodec(name string) (Codec, error) {
	switch name {
	case "fp32":
		return fp32Codec{}, nil
	case "fp16":
		return fp16Codec{}, nil
	case "int8":
		return int8Codec{}, nil
	case "sparse":
		return sparseCodec{}, nil
	}
	return nil, fmt.Errorf("ps: unknown row codec %q", name)
}

// ChooseProfile picks a profile for a link from its round-trip latency and
// bandwidth: when moving one 4 KiB row batch (the typical per-RPC payload)
// costs more than ~200 µs of wire time the link is slow enough that codec
// CPU pays for itself, and auto picks delta-int8; fast links (co-located
// shards, loopback) stay on exact fp32. The same rule prices measured TCP
// dial RTTs and the netsim cost model's configured link, so auto behaves
// identically in simulation and deployment.
func ChooseProfile(rtt time.Duration, bandwidthBps float64) string {
	const probeBytes = 4096
	cost := rtt
	if bandwidthBps > 0 {
		cost += time.Duration(probeBytes / bandwidthBps * float64(time.Second))
	}
	if cost > 200*time.Microsecond {
		return ProfileDeltaInt8
	}
	return ProfileFP32
}

// fp32Codec is the exact pass-through: 4 bytes per value, little-endian.
type fp32Codec struct{}

func (fp32Codec) Name() string          { return "fp32" }
func (fp32Codec) Lossy() bool           { return false }
func (fp32Codec) MaxRowBytes(w int) int { return 4 * w }

func (fp32Codec) EncodeRow(dst []byte, row []float32) []byte {
	for _, v := range row {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

func (fp32Codec) DecodeRow(row []float32, src []byte) ([]byte, error) {
	if len(src) < 4*len(row) {
		return nil, fmt.Errorf("ps: fp32 row short: %d bytes for width %d", len(src), len(row))
	}
	for i := range row {
		row[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return src[4*len(row):], nil
}

// fp16Codec stores IEEE 754 binary16: 2 bytes per value, round-to-nearest-
// even, overflow clamped to ±65504 (embeddings and gradients must stay
// finite; the shard drops non-finite rows anyway).
type fp16Codec struct{}

func (fp16Codec) Name() string          { return "fp16" }
func (fp16Codec) Lossy() bool           { return true }
func (fp16Codec) MaxRowBytes(w int) int { return 2 * w }

func (fp16Codec) EncodeRow(dst []byte, row []float32) []byte {
	for i, v := range row {
		h := f16FromF32(v)
		row[i] = f16ToF32(h)
		dst = binary.LittleEndian.AppendUint16(dst, h)
	}
	return dst
}

func (fp16Codec) DecodeRow(row []float32, src []byte) ([]byte, error) {
	if len(src) < 2*len(row) {
		return nil, fmt.Errorf("ps: fp16 row short: %d bytes for width %d", len(src), len(row))
	}
	for i := range row {
		row[i] = f16ToF32(binary.LittleEndian.Uint16(src[2*i:]))
	}
	return src[2*len(row):], nil
}

// f16FromF32 converts to half precision with round-to-nearest-even.
// Overflow clamps to ±65504 (max finite half) instead of ±Inf.
func f16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	abs := b & 0x7fffffff
	if abs >= 0x7f800000 { // Inf or NaN
		if abs > 0x7f800000 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7bff // clamp Inf to max finite
	}
	e := int32(abs>>23) - 127
	man := abs & 0x7fffff
	switch {
	case e > 15:
		return sign | 0x7bff // overflow: clamp to 65504
	case e >= -14: // normal half
		r := uint32(e+15)<<10 | man>>13
		// Round to nearest even on the 13 dropped mantissa bits.
		if man&0x1000 != 0 && (man&0xfff != 0 || r&1 == 1) {
			r++
			if r >= 0x7c00 {
				r = 0x7bff
			}
		}
		return sign | uint16(r)
	case e >= -24: // subnormal half
		m := man | 0x800000
		s := uint32(13 + (-14 - e))
		half := uint32(1) << (s - 1)
		r := m >> s
		if m&half != 0 && (m&(half-1) != 0 || r&1 == 1) {
			r++
		}
		return sign | uint16(r)
	}
	return sign // underflow to signed zero
}

// f16ToF32 converts half precision back to float32 (exact).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		e := int32(-14)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | uint32(e+127)<<23 | man<<13)
	case exp == 31:
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000) // NaN
		}
		return math.Float32frombits(sign | 0x7f800000) // Inf
	}
	return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
}

// int8Codec is symmetric 8-bit linear quantization with a per-row scale:
// 4 bytes of scale then 1 byte per value. Values round to the nearest of
// 255 levels spanning [-maxAbs, +maxAbs]; error is bounded by scale/2 =
// maxAbs/254 per value.
type int8Codec struct{}

func (int8Codec) Name() string          { return "int8" }
func (int8Codec) Lossy() bool           { return true }
func (int8Codec) MaxRowBytes(w int) int { return 4 + w }

func (int8Codec) EncodeRow(dst []byte, row []float32) []byte {
	var maxAbs float32
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	var scale float32
	if maxAbs > 0 && !math.IsInf(float64(maxAbs), 0) && !math.IsNaN(float64(maxAbs)) {
		scale = maxAbs / 127
	}
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(scale))
	for i, v := range row {
		var q int8
		if scale > 0 {
			q = int8(v/scale + sign(v)*0.5) // round half away from zero
		}
		row[i] = float32(q) * scale
		dst = append(dst, byte(q))
	}
	return dst
}

func (int8Codec) DecodeRow(row []float32, src []byte) ([]byte, error) {
	if len(src) < 4+len(row) {
		return nil, fmt.Errorf("ps: int8 row short: %d bytes for width %d", len(src), len(row))
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(src))
	src = src[4:]
	for i := range row {
		row[i] = float32(int8(src[i])) * scale
	}
	return src[len(row):], nil
}

func sign(v float32) float32 {
	if v < 0 {
		return -1
	}
	return 1
}

// sparseCodec ships only a row's nonzero coordinates: a 2-byte count then
// (2-byte index, 4-byte value) entries. It is exact on the values it keeps;
// paired with the trainer's top-k sparsifier (which zeroes small
// coordinates into the error-feedback buffer first) it realizes top-k
// gradient exchange. Row widths are capped at 65535 by the index width.
type sparseCodec struct{}

func (sparseCodec) Name() string          { return "sparse" }
func (sparseCodec) Lossy() bool           { return false }
func (sparseCodec) MaxRowBytes(w int) int { return 2 + 6*w }

func (sparseCodec) EncodeRow(dst []byte, row []float32) []byte {
	n := 0
	for _, v := range row {
		if v != 0 {
			n++
		}
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(n))
	for i, v := range row {
		if v == 0 {
			continue
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(i))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

func (sparseCodec) DecodeRow(row []float32, src []byte) ([]byte, error) {
	if len(src) < 2 {
		return nil, fmt.Errorf("ps: sparse row short: no count")
	}
	n := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	if len(src) < 6*n {
		return nil, fmt.Errorf("ps: sparse row short: %d bytes for %d entries", len(src), n)
	}
	for i := range row {
		row[i] = 0
	}
	for j := 0; j < n; j++ {
		idx := int(binary.LittleEndian.Uint16(src[6*j:]))
		if idx >= len(row) {
			return nil, fmt.Errorf("ps: sparse index %d out of width %d", idx, len(row))
		}
		row[idx] = math.Float32frombits(binary.LittleEndian.Uint32(src[6*j+2:]))
	}
	return src[6*n:], nil
}
