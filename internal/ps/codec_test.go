package ps

import (
	"encoding/hex"
	"math"
	"math/rand"
	"testing"
	"time"

	"hetkg/internal/kg"
	"hetkg/internal/netsim"
)

// goldenRow is the canonical test vector shared by every codec's golden
// wire-format test: positive, negative, zero, and sub-unit values.
func goldenRow() []float32 { return []float32{1.5, -2.25, 0, 0.75} }

// TestResolveProfile pins the -codec flag vocabulary: every canonical name
// resolves ("fp32", "fp16", "int8", "delta-int8", "topk", "auto"), the empty
// string means fp32, and unknown names fail with the vocabulary listed.
func TestResolveProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ResolveProfile(name)
		if err != nil {
			t.Errorf("ResolveProfile(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ResolveProfile(%q).Name = %q", name, p.Name)
		}
		if _, err := rowCodec(p.Pull); err != nil {
			t.Errorf("profile %q pull codec: %v", name, err)
		}
		if _, err := rowCodec(p.Push); err != nil {
			t.Errorf("profile %q push codec: %v", name, err)
		}
		id, err := profileID(name)
		if err != nil {
			t.Errorf("profileID(%q): %v", name, err)
		}
		back, err := profileByID(id)
		if err != nil || back.Name != name {
			t.Errorf("profileByID(profileID(%q)) = %q, %v", name, back.Name, err)
		}
	}
	if p, err := ResolveProfile(""); err != nil || p.Name != ProfileFP32 {
		t.Errorf("empty codec resolved to %q, %v; want fp32", p.Name, err)
	}
	if p, err := ResolveProfile("auto"); err != nil || p.Name != ProfileAuto {
		t.Errorf("auto resolved to %q, %v", p.Name, err)
	}
	if _, err := ResolveProfile("zstd"); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := profileID(ProfileAuto); err == nil {
		t.Error("auto has a wire id; it must resolve before the handshake")
	}
}

// TestGoldenWireFormats pins each row codec's exact byte layout for the
// canonical row {1.5, -2.25, 0, 0.75}. A byte change here is a wire protocol
// break: old workers cannot talk to new shards.
func TestGoldenWireFormats(t *testing.T) {
	cases := []struct {
		codec string
		hex   string
		// decoded is what both the decoder and the encoder's in-place
		// rewrite must produce (lossy codecs differ from the input).
		decoded []float32
	}{
		{"fp32", "0000c03f000010c0000000000000403f", []float32{1.5, -2.25, 0, 0.75}},
		{"fp16", "003e80c00000003a", []float32{1.5, -2.25, 0, 0.75}},
		// scale = 2.25/127; quants 85, -127, 0, 42 (round half away from 0).
		{"int8", "4522913c5581002a",
			[]float32{85 * 2.25 / 127, -2.25, 0, 42 * 2.25 / 127}},
		{"sparse", "030000000000c03f0100000010c003000000403f", []float32{1.5, -2.25, 0, 0.75}},
	}
	for _, tc := range cases {
		t.Run(tc.codec, func(t *testing.T) {
			c, err := rowCodec(tc.codec)
			if err != nil {
				t.Fatal(err)
			}
			row := goldenRow()
			enc := c.EncodeRow(nil, row)
			if got := hex.EncodeToString(enc); got != tc.hex {
				t.Fatalf("encoded bytes %s, want %s", got, tc.hex)
			}
			if len(enc) > c.MaxRowBytes(len(row)) {
				t.Errorf("encoding %d bytes exceeds MaxRowBytes %d", len(enc), c.MaxRowBytes(len(row)))
			}
			dec := make([]float32, len(row))
			rest, err := c.DecodeRow(dec, enc)
			if err != nil {
				t.Fatalf("DecodeRow: %v", err)
			}
			if len(rest) != 0 {
				t.Errorf("%d undecoded bytes", len(rest))
			}
			for i := range dec {
				if !close32(dec[i], tc.decoded[i]) {
					t.Errorf("decoded[%d] = %v, want %v", i, dec[i], tc.decoded[i])
				}
				// The encoder's in-place rewrite must equal the decode —
				// that is the lockstep guarantee the delta bases rely on.
				if dec[i] != row[i] {
					t.Errorf("encoder rewrote row[%d] to %v but decoder sees %v", i, row[i], dec[i])
				}
			}
			// Truncated input must error, not read out of bounds.
			if _, err := c.DecodeRow(dec, enc[:len(enc)-1]); err == nil {
				t.Error("truncated row decoded without error")
			}
		})
	}
}

func close32(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6
}

// TestInt8ErrorBound pins the quantizer's contract: per-value error at most
// scale/2 = maxAbs/254 (plus float slack) on random rows.
func TestInt8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := rowCodec("int8")
	for trial := 0; trial < 100; trial++ {
		row := make([]float32, 64)
		var maxAbs float64
		for i := range row {
			row[i] = float32((rng.Float64()*2 - 1) * math.Pow(10, float64(trial%7-3)))
			if a := math.Abs(float64(row[i])); a > maxAbs {
				maxAbs = a
			}
		}
		orig := append([]float32(nil), row...)
		enc := c.EncodeRow(nil, row)
		dec := make([]float32, len(row))
		if _, err := c.DecodeRow(dec, enc); err != nil {
			t.Fatal(err)
		}
		bound := maxAbs/254*(1+1e-5) + 1e-12
		for i := range dec {
			if err := math.Abs(float64(dec[i]) - float64(orig[i])); err > bound {
				t.Fatalf("trial %d: |dec-orig|[%d] = %g exceeds maxAbs/254 = %g", trial, i, err, bound)
			}
		}
	}
}

// TestFP16ErrorBound pins half precision's contract: relative error at most
// 2^-11 for values in the normal half range.
func TestFP16ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := rowCodec("fp16")
	row := make([]float32, 256)
	for i := range row {
		row[i] = float32((rng.Float64()*2 - 1) * math.Pow(10, float64(i%8-4)))
	}
	orig := append([]float32(nil), row...)
	enc := c.EncodeRow(nil, row)
	dec := make([]float32, len(row))
	if _, err := c.DecodeRow(dec, enc); err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if orig[i] == 0 {
			continue
		}
		rel := math.Abs(float64(dec[i])-float64(orig[i])) / math.Abs(float64(orig[i]))
		if math.Abs(float64(orig[i])) >= 6.1e-5 && rel > 1.0/(1<<11) {
			t.Errorf("relative error %g at %d (%v -> %v) exceeds 2^-11", rel, i, orig[i], dec[i])
		}
	}
}

// TestFP16SpecialValues covers the conversion's edges: overflow clamps to
// the max finite half (±65504), NaN stays NaN, subnormals round-trip, and
// signed zero survives.
func TestFP16SpecialValues(t *testing.T) {
	if got := f16ToF32(f16FromF32(1e6)); got != 65504 {
		t.Errorf("overflow clamped to %v, want 65504", got)
	}
	if got := f16ToF32(f16FromF32(-1e6)); got != -65504 {
		t.Errorf("negative overflow clamped to %v, want -65504", got)
	}
	if got := f16ToF32(f16FromF32(float32(math.Inf(1)))); got != 65504 {
		t.Errorf("+Inf clamped to %v, want 65504", got)
	}
	if got := f16ToF32(f16FromF32(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Errorf("NaN became %v", got)
	}
	// Smallest positive subnormal half = 2^-24.
	sub := float32(math.Ldexp(1, -24))
	if got := f16ToF32(f16FromF32(sub)); got != sub {
		t.Errorf("subnormal %v round-tripped to %v", sub, got)
	}
	// Below half the smallest subnormal: underflow to zero.
	if got := f16ToF32(f16FromF32(float32(math.Ldexp(1, -26)))); got != 0 {
		t.Errorf("tiny value became %v, want 0", got)
	}
	if bits := f16FromF32(float32(math.Copysign(0, -1))); bits != 0x8000 {
		t.Errorf("negative zero encoded as %#x", bits)
	}
	// Exhaustive: every finite half must round-trip bit-exactly through
	// float32 (f16ToF32 is an exact embedding).
	for h := uint32(0); h < 1<<16; h++ {
		f := f16ToF32(uint16(h))
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			continue
		}
		if back := f16FromF32(f); back != uint16(h) {
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

// TestSparseCodecEdgeCases: all-zero rows cost 2 bytes, decoding clears
// stale values, and corrupt indices are rejected.
func TestSparseCodecEdgeCases(t *testing.T) {
	c, _ := rowCodec("sparse")
	zero := make([]float32, 16)
	enc := c.EncodeRow(nil, zero)
	if len(enc) != 2 {
		t.Errorf("all-zero row encoded to %d bytes, want 2", len(enc))
	}
	dec := []float32{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}
	if _, err := c.DecodeRow(dec, enc); err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Errorf("stale value %v survived at %d", v, i)
		}
	}
	// Out-of-range index must error.
	bad := []byte{1, 0, 200, 0, 0, 0, 0, 0} // count 1, idx 200 for width 4
	if _, err := c.DecodeRow(make([]float32, 4), bad); err == nil {
		t.Error("out-of-range sparse index accepted")
	}
}

// TestChooseProfile pins the auto rule: slow links (where 4 KiB of payload
// costs over ~200 µs) negotiate delta-int8, fast links stay exact.
func TestChooseProfile(t *testing.T) {
	if got := ChooseProfile(time.Millisecond, 1e9); got != ProfileDeltaInt8 {
		t.Errorf("1 ms RTT chose %q, want delta-int8", got)
	}
	// The netsim auto path prices the paper's default link (100 µs one-way,
	// 1 Gbps) as 2×latency + transfer: slow enough for delta-int8.
	cm := netsim.Default1Gbps()
	if got := ChooseProfile(2*cm.RemoteLatency, cm.RemoteBandwidthBps); got != ProfileDeltaInt8 {
		t.Errorf("modeled 1 Gbps link chose %q, want delta-int8", got)
	}
	if got := ChooseProfile(10*time.Microsecond, 0); got != ProfileFP32 {
		t.Errorf("loopback RTT chose %q, want fp32", got)
	}
	if got := ChooseProfile(10*time.Microsecond, 1e10); got != ProfileFP32 {
		t.Errorf("fast link chose %q, want fp32", got)
	}
}

// deltaPair builds the two endpoints of one delta-int8 link sharing a fixed
// row width.
func deltaPair(t *testing.T, width int) (server, worker *linkCodec) {
	t.Helper()
	prof, err := ResolveProfile(ProfileDeltaInt8)
	if err != nil {
		t.Fatal(err)
	}
	widthOf := func(Key) int { return width }
	server, err = newLinkCodec(prof, widthOf)
	if err != nil {
		t.Fatal(err)
	}
	worker, err = newLinkCodec(prof, widthOf)
	if err != nil {
		t.Fatal(err)
	}
	return server, worker
}

// TestDeltaLinkLockstep drives both endpoints of a delta link through
// several pull generations and checks the protocol invariants: the worker
// reconstructs exactly the values the server's encoder rewrote (bases stay
// bit-identical despite the lossy inner codec), versions advance, and after
// the first generation every row travels as a delta.
func TestDeltaLinkLockstep(t *testing.T) {
	const width, rows = 16, 8
	server, worker := deltaPair(t, width)
	keys := make([]Key, rows)
	for i := range keys {
		keys[i] = EntityKey(kg.EntityID(i))
	}
	rng := rand.New(rand.NewSource(7))
	state := make([]float32, rows*width)
	for i := range state {
		state[i] = float32(rng.NormFloat64())
	}
	for gen := 0; gen < 5; gen++ {
		// The server's state drifts a little each generation, like training.
		for i := range state {
			state[i] += float32(rng.NormFloat64() * 0.01)
		}
		bv := worker.appendBaseVers(nil, keys)
		vals := append([]float32(nil), state...)
		payload, err := server.encodePull(nil, keys, bv, vals)
		if err != nil {
			t.Fatalf("gen %d: encodePull: %v", gen, err)
		}
		got := make([]float32, rows*width)
		if err := worker.decodePull(keys, payload, got); err != nil {
			t.Fatalf("gen %d: decodePull: %v", gen, err)
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("gen %d: worker decoded %v at %d, server rewrote %v", gen, got[i], i, vals[i])
			}
		}
		// Adopt the decoder-visible state so deltas stay small and the
		// test mirrors the shard (whose truth the codec rewrite tracks).
		copy(state, vals)
		for _, k := range keys {
			sb, wb := server.bases[k], worker.bases[k]
			if sb == nil || wb == nil {
				t.Fatalf("gen %d: missing base for %v", gen, k)
			}
			if sb.ver != wb.ver {
				t.Fatalf("gen %d: version skew for %v: server %d worker %d", gen, k, sb.ver, wb.ver)
			}
			if want := uint32(gen + 1); sb.ver != want {
				t.Errorf("gen %d: version %d, want %d", gen, sb.ver, want)
			}
			for j := range sb.row {
				if sb.row[j] != wb.row[j] {
					t.Fatalf("gen %d: base drift for %v at %d", gen, k, j)
				}
			}
		}
		// Wire layout: after generation 0 every row must be a delta frame.
		if gen > 0 {
			if payload[0] != 1 {
				t.Errorf("gen %d: first row not delta-framed", gen)
			}
			want := rows * (5 + 4 + width) // flag + ver + int8 row each
			if len(payload) != want {
				t.Errorf("gen %d: payload %d bytes, want %d", gen, len(payload), want)
			}
		}
	}
	// A worker that lost its base must reject a delta frame.
	fresh, err := newLinkCodec(server.prof, func(Key) int { return width })
	if err != nil {
		t.Fatal(err)
	}
	bv := worker.appendBaseVers(nil, keys)
	vals := append([]float32(nil), state...)
	payload, err := server.encodePull(nil, keys, bv, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.decodePull(keys, payload, make([]float32, rows*width)); err == nil {
		t.Error("delta frame for an unbased row decoded without error")
	}
}

// TestDeltaUnadvertisedRowsSentFull: a worker advertising version 0 (no
// base) must get full rows even when the server holds a base.
func TestDeltaUnadvertisedRowsSentFull(t *testing.T) {
	const width = 8
	server, worker := deltaPair(t, width)
	keys := []Key{EntityKey(1)}
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8}

	// First exchange establishes bases on both ends.
	bv := worker.appendBaseVers(nil, keys)
	payload, err := server.encodePull(nil, keys, bv, append([]float32(nil), vals...))
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.decodePull(keys, payload, make([]float32, width)); err != nil {
		t.Fatal(err)
	}

	// A second worker on a fresh link advertises nothing: full row again.
	worker2, err := newLinkCodec(server.prof, func(Key) int { return width })
	if err != nil {
		t.Fatal(err)
	}
	bv = worker2.appendBaseVers(nil, keys)
	payload, err = server.encodePull(nil, keys, bv, append([]float32(nil), vals...))
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != 0 {
		t.Error("unadvertised row was delta-framed")
	}
	if err := worker2.decodePull(keys, payload, make([]float32, width)); err != nil {
		t.Fatalf("fresh worker decode: %v", err)
	}
}

// TestCodecTransportProfiles checks every profile round-trips pulls and
// pushes through the in-process codec transport with the expected loss
// behaviour: exact profiles preserve values bit-for-bit, lossy ones stay
// within their bounds, and "topk" is exact on the (dense) pull path.
func TestCodecTransportProfiles(t *testing.T) {
	for _, codec := range []string{"fp32", "fp16", "int8", "delta-int8", "topk", "auto"} {
		t.Run(codec, func(t *testing.T) {
			c := testCluster(t, 2)
			exact := NewInProc(c)
			ref, err := exact.Pull(0, &PullRequest{Keys: []Key{EntityKey(0), RelationKey(0)}})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := NewCodecTransport(NewInProc(c), c, codec, netsim.Default1Gbps())
			if err != nil {
				t.Fatal(err)
			}
			resp, err := tr.Pull(0, &PullRequest{Keys: []Key{EntityKey(0), RelationKey(0)}})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Vals) != len(ref.Vals) {
				t.Fatalf("pulled %d values, want %d", len(resp.Vals), len(ref.Vals))
			}
			prof := tr.NegotiatedProfile()
			if codec != "auto" && prof != codec {
				t.Errorf("negotiated %q, want %q", prof, codec)
			}
			lossless := prof == "fp32" || prof == "topk"
			for i := range resp.Vals {
				if lossless && resp.Vals[i] != ref.Vals[i] {
					t.Fatalf("%q pull not exact at %d: %v vs %v", prof, i, resp.Vals[i], ref.Vals[i])
				}
				if !close32at(resp.Vals[i], ref.Vals[i], 0.05) {
					t.Fatalf("%q pull too lossy at %d: %v vs %v", prof, i, resp.Vals[i], ref.Vals[i])
				}
			}
			grad := make([]float32, 8)
			grad[0], grad[7] = 0.5, -0.25
			if err := tr.Push(0, &PushRequest{Keys: []Key{EntityKey(0)}, Vals: grad}); err != nil {
				t.Fatalf("push: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func close32at(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
