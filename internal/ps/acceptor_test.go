package ps

import (
	"net"
	"testing"
	"time"
)

// TestAcceptorShutdownDrains covers the graceful path: the client closes
// its connection, so Shutdown returns well before the grace deadline.
func TestAcceptorShutdownDrains(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var a Acceptor
	served := make(chan struct{})
	go func() {
		a.Serve(l, c.Servers[0])
		close(served)
	}()

	tr, err := DialTCP([]string{l.Addr().String()})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	cl, _ := NewClient(0, c, tr, nil)
	dst := make(map[Key][]float32)
	if err := cl.Pull([]Key{EntityKey(0)}, dst); err != nil {
		t.Fatalf("Pull: %v", err)
	}

	l.Close()
	tr.Close() // peer closes: handler sees EOF, drain completes
	start := time.Now()
	a.Shutdown(5 * time.Second)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Shutdown took %v with closed peer; want fast drain", d)
	}
	select {
	case <-served:
	case <-time.After(time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// TestAcceptorShutdownForceCloses covers the grace-expired path: a
// persistent client connection stays open, so Shutdown force-closes it
// after the grace period and the client's next request fails.
func TestAcceptorShutdownForceCloses(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var a Acceptor
	go a.Serve(l, c.Servers[0])

	tr, err := DialTCP([]string{l.Addr().String()})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer tr.Close()
	cl, _ := NewClient(0, c, tr, nil)
	dst := make(map[Key][]float32)
	if err := cl.Pull([]Key{EntityKey(0)}, dst); err != nil {
		t.Fatalf("Pull: %v", err)
	}

	l.Close()
	a.Shutdown(50 * time.Millisecond) // connection still open: force close
	if err := cl.Pull([]Key{EntityKey(0)}, dst); err == nil {
		t.Fatal("Pull succeeded after forced shutdown; want error")
	}
}
