package ps

import (
	"fmt"
	"math"

	"hetkg/internal/kg"
	"hetkg/internal/opt"
	"hetkg/internal/vec"
)

// ClusterConfig describes a parameter-server deployment: one shard per
// machine, entity rows placed by the graph partitioner, relations striped.
type ClusterConfig struct {
	// NumMachines is the number of co-located server shards.
	NumMachines int
	// EntityPart is the partitioner's per-entity machine assignment; its
	// length defines the entity universe.
	EntityPart []int32
	// NumRelations is the relation universe size.
	NumRelations int
	// EntityDim and RelationDim are row widths.
	EntityDim, RelationDim int
	// NewOptimizer constructs each shard's gradient applier. Shards get
	// independent optimizers (their state is row-local anyway).
	NewOptimizer func() opt.Optimizer
	// Seed drives deterministic row initialization. Initialization is a
	// pure function of (Seed, key), so the same seed yields identical
	// global embeddings regardless of the machine count — essential for
	// comparing 1-machine and 8-machine runs of the same workload.
	Seed int64
	// InitialEntities and InitialRelations, when non-nil, seed the rows
	// from existing tables (resuming from a checkpoint) instead of the
	// deterministic random initialization. Shapes must match the universe
	// and dims.
	InitialEntities  *vec.Matrix
	InitialRelations *vec.Matrix
}

// initialRows validates checkpoint-shaped tables against the config.
func (cfg *ClusterConfig) validateInitial() error {
	if cfg.InitialEntities != nil {
		if cfg.InitialEntities.Rows != len(cfg.EntityPart) || cfg.InitialEntities.Dim != cfg.EntityDim {
			return fmt.Errorf("ps: initial entities %dx%d, want %dx%d",
				cfg.InitialEntities.Rows, cfg.InitialEntities.Dim, len(cfg.EntityPart), cfg.EntityDim)
		}
	}
	if cfg.InitialRelations != nil {
		if cfg.InitialRelations.Rows != cfg.NumRelations || cfg.InitialRelations.Dim != cfg.RelationDim {
			return fmt.Errorf("ps: initial relations %dx%d, want %dx%d",
				cfg.InitialRelations.Rows, cfg.InitialRelations.Dim, cfg.NumRelations, cfg.RelationDim)
		}
	}
	return nil
}

// Cluster is a set of co-located server shards plus their placement.
type Cluster struct {
	Servers []*Server
	Place   *Placement

	entDim, relDim int
	numEntity      int
	numRel         int
}

// NewCluster builds and initializes all shards.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumMachines < 1 {
		return nil, fmt.Errorf("ps: NumMachines %d < 1", cfg.NumMachines)
	}
	if cfg.NumRelations < 1 {
		return nil, fmt.Errorf("ps: NumRelations %d < 1", cfg.NumRelations)
	}
	if cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("ps: NewOptimizer is nil")
	}
	place, err := NewPlacement(cfg.NumMachines, cfg.EntityPart)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Place:     place,
		entDim:    cfg.EntityDim,
		relDim:    cfg.RelationDim,
		numEntity: len(cfg.EntityPart),
		numRel:    cfg.NumRelations,
	}
	for m := 0; m < cfg.NumMachines; m++ {
		srv, err := NewServer(ServerConfig{
			Machine:     m,
			EntityDim:   cfg.EntityDim,
			RelationDim: cfg.RelationDim,
			Optimizer:   cfg.NewOptimizer(),
		})
		if err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
	}
	// Deterministic per-key initialization (or checkpoint rows on resume).
	if err := cfg.validateInitial(); err != nil {
		return nil, err
	}
	buf := make([]float32, max(cfg.EntityDim, cfg.RelationDim))
	for e := 0; e < c.numEntity; e++ {
		k := EntityKey(kg.EntityID(e))
		row := buf[:cfg.EntityDim]
		if cfg.InitialEntities != nil {
			row = cfg.InitialEntities.Row(e)
		} else {
			initRow(cfg.Seed, k, row, true)
		}
		if err := c.Servers[place.Shard(k)].InitRow(k, row); err != nil {
			return nil, err
		}
	}
	for r := 0; r < c.numRel; r++ {
		k := RelationKey(kg.RelationID(r))
		row := buf[:cfg.RelationDim]
		if cfg.InitialRelations != nil {
			row = cfg.InitialRelations.Row(r)
		} else {
			initRow(cfg.Seed, k, row, false)
		}
		if err := c.Servers[place.Shard(k)].InitRow(k, row); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// EntityDim returns the entity row width.
func (c *Cluster) EntityDim() int { return c.entDim }

// RelationDim returns the relation row width.
func (c *Cluster) RelationDim() int { return c.relDim }

// NumEntities returns the entity universe size.
func (c *Cluster) NumEntities() int { return c.numEntity }

// NumRelations returns the relation universe size.
func (c *Cluster) NumRelations() int { return c.numRel }

// Gather assembles the full embedding tables from all shards, for
// evaluation and checkpointing after training.
func (c *Cluster) Gather() (entities, relations *vec.Matrix, err error) {
	entities = vec.NewMatrix(c.numEntity, c.entDim)
	relations = vec.NewMatrix(c.numRel, c.relDim)
	for e := 0; e < c.numEntity; e++ {
		k := EntityKey(kg.EntityID(e))
		vals, err := c.Servers[c.Place.Shard(k)].Pull([]Key{k})
		if err != nil {
			return nil, nil, err
		}
		copy(entities.Row(e), vals)
	}
	for r := 0; r < c.numRel; r++ {
		k := RelationKey(kg.RelationID(r))
		vals, err := c.Servers[c.Place.Shard(k)].Pull([]Key{k})
		if err != nil {
			return nil, nil, err
		}
		copy(relations.Row(r), vals)
	}
	return entities, relations, nil
}

// initRow fills row deterministically from (seed, key) with the KGE uniform
// initialization; entity rows are additionally l2-normalized (the TransE
// convention).
func initRow(seed int64, k Key, row []float32, normalize bool) {
	s := splitmix64(uint64(seed) ^ (uint64(k) * 0x9E3779B97F4A7C15))
	bound := 6 / math.Sqrt(float64(len(row)))
	for i := range row {
		s = splitmix64(s)
		u := float64(s>>11) / float64(1<<53) // [0,1)
		row[i] = float32((u*2 - 1) * bound)
	}
	if normalize {
		vec.Normalize(row)
	}
}

// splitmix64 is the SplitMix64 PRNG step, used for per-key deterministic
// initialization independent of iteration order.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewClusterShard builds and initializes only machine m's shard of the
// cluster described by cfg. Because row initialization is a pure function
// of (Seed, key), a fleet of processes each calling NewClusterShard with
// the same configuration and a distinct machine index collectively hold
// exactly the state NewCluster would build in one process — the basis of
// the multi-process deployment (cmd/hetkg-ps).
func NewClusterShard(cfg ClusterConfig, machine int) (*Server, error) {
	if machine < 0 || machine >= cfg.NumMachines {
		return nil, fmt.Errorf("ps: machine %d out of range [0,%d)", machine, cfg.NumMachines)
	}
	place, err := NewPlacement(cfg.NumMachines, cfg.EntityPart)
	if err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("ps: NewOptimizer is nil")
	}
	srv, err := NewServer(ServerConfig{
		Machine:     machine,
		EntityDim:   cfg.EntityDim,
		RelationDim: cfg.RelationDim,
		Optimizer:   cfg.NewOptimizer(),
	})
	if err != nil {
		return nil, err
	}
	if err := cfg.validateInitial(); err != nil {
		return nil, err
	}
	buf := make([]float32, max(cfg.EntityDim, cfg.RelationDim))
	for e := 0; e < len(cfg.EntityPart); e++ {
		k := EntityKey(kg.EntityID(e))
		if place.Shard(k) != machine {
			continue
		}
		row := buf[:cfg.EntityDim]
		if cfg.InitialEntities != nil {
			row = cfg.InitialEntities.Row(e)
		} else {
			initRow(cfg.Seed, k, row, true)
		}
		if err := srv.InitRow(k, row); err != nil {
			return nil, err
		}
	}
	for r := 0; r < cfg.NumRelations; r++ {
		k := RelationKey(kg.RelationID(r))
		if place.Shard(k) != machine {
			continue
		}
		row := buf[:cfg.RelationDim]
		if cfg.InitialRelations != nil {
			row = cfg.InitialRelations.Row(r)
		} else {
			initRow(cfg.Seed, k, row, false)
		}
		if err := srv.InitRow(k, row); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// GatherVia assembles the full embedding tables by pulling every row
// through the given transport — the gather path that works when the shards
// live in other processes. Pulls are batched per shard.
func (c *Cluster) GatherVia(tr Transport) (entities, relations *vec.Matrix, err error) {
	entities = vec.NewMatrix(c.numEntity, c.entDim)
	relations = vec.NewMatrix(c.numRel, c.relDim)
	perShard := make([][]Key, c.Place.NumMachines())
	for e := 0; e < c.numEntity; e++ {
		k := EntityKey(kg.EntityID(e))
		s := c.Place.Shard(k)
		perShard[s] = append(perShard[s], k)
	}
	for r := 0; r < c.numRel; r++ {
		k := RelationKey(kg.RelationID(r))
		s := c.Place.Shard(k)
		perShard[s] = append(perShard[s], k)
	}
	const batch = 4096
	for shard, keys := range perShard {
		for start := 0; start < len(keys); start += batch {
			end := start + batch
			if end > len(keys) {
				end = len(keys)
			}
			ks := keys[start:end]
			resp, err := tr.Pull(shard, &PullRequest{Keys: ks})
			if err != nil {
				return nil, nil, fmt.Errorf("ps: gather from shard %d: %w", shard, err)
			}
			off := 0
			for _, k := range ks {
				if k.IsRelation() {
					copy(relations.Row(int(k.Relation())), resp.Vals[off:off+c.relDim])
					off += c.relDim
				} else {
					copy(entities.Row(int(k.Entity())), resp.Vals[off:off+c.entDim])
					off += c.entDim
				}
			}
		}
	}
	return entities, relations, nil
}
