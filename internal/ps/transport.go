package ps

import (
	"fmt"

	"hetkg/internal/span"
)

// PullRequest asks a shard for the rows of Keys. Trace carries the sampled
// batch's span context (zero when the batch is unsampled or tracing is off)
// so shard-side spans stitch to the originating batch.
type PullRequest struct {
	Keys  []Key
	Trace span.Context
}

// PullResponse carries the requested rows concatenated in key order.
type PullResponse struct {
	Vals []float32
}

// PushRequest carries gradients for Keys, concatenated in key order. Trace
// is the originating batch's span context, as in PullRequest.
type PushRequest struct {
	Keys  []Key
	Vals  []float32
	Trace span.Context
}

// Transport moves requests between a worker and the server shards. The two
// implementations are InProc (direct calls, used for experiments so traffic
// cost comes from the netsim model, not Go scheduling noise) and TCP (a real
// wire protocol, used by integration tests and multi-process deployments).
type Transport interface {
	// Pull fetches rows from the given shard.
	Pull(shard int, req *PullRequest) (*PullResponse, error)
	// Push sends gradients to the given shard.
	Push(shard int, req *PushRequest) error
	// Close releases transport resources.
	Close() error
}

// Wire-size accounting shared by all transports: 16 bytes of framing per
// message, 8 bytes per key, 4 bytes per float32 value. These sizes feed the
// netsim cost model, so they must match what a binary wire format would
// actually carry.
const msgHeaderBytes = 16

// PullRequestBytes returns the serialized size of a pull request.
func PullRequestBytes(numKeys int) int64 { return msgHeaderBytes + 8*int64(numKeys) }

// PullResponseBytes returns the serialized size of a pull response.
func PullResponseBytes(numVals int) int64 { return msgHeaderBytes + 4*int64(numVals) }

// PushRequestBytes returns the serialized size of a push request.
func PushRequestBytes(numKeys, numVals int) int64 {
	return msgHeaderBytes + 8*int64(numKeys) + 4*int64(numVals)
}

// InProc is the in-process transport: requests call shard methods directly.
type InProc struct {
	servers []*Server
}

// NewInProc wraps a cluster's shards.
func NewInProc(c *Cluster) *InProc { return &InProc{servers: c.Servers} }

// Pull implements Transport.
func (t *InProc) Pull(shard int, req *PullRequest) (*PullResponse, error) {
	if shard < 0 || shard >= len(t.servers) {
		return nil, fmt.Errorf("ps: no shard %d", shard)
	}
	vals, err := t.servers[shard].PullTraced(req.Trace, req.Keys)
	if err != nil {
		return nil, err
	}
	return &PullResponse{Vals: vals}, nil
}

// Push implements Transport.
func (t *InProc) Push(shard int, req *PushRequest) error {
	if shard < 0 || shard >= len(t.servers) {
		return fmt.Errorf("ps: no shard %d", shard)
	}
	return t.servers[shard].PushTraced(req.Trace, req.Keys, req.Vals)
}

// Close implements Transport.
func (t *InProc) Close() error { return nil }
