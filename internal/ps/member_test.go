package ps

import (
	"net"
	"testing"
	"time"

	"hetkg/internal/metrics"
)

// fakeClock is a manually-advanced clock for deterministic failure
// detection tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func clockConfig(c *fakeClock, parts int) MemberConfig {
	return MemberConfig{
		Partitions:     parts,
		ShardAddrs:     []string{"a:1", "b:2"},
		HeartbeatEvery: time.Second,
		Now:            c.Now,
	}
}

func TestMembershipJoinGrantsPreferredAndSpreads(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clockConfig(clk, 4))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m.Join(JoinRequest{Label: "w1", Preferred: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Sole worker: preferred granted, orphans spread to it too.
	if len(j1.Assignments) != 4 {
		t.Fatalf("sole worker got %d assignments, want all 4: %+v", len(j1.Assignments), j1.Assignments)
	}
	if len(j1.ShardAddrs) != 2 || j1.ShardAddrs[0] != "a:1" {
		t.Errorf("ShardAddrs = %v", j1.ShardAddrs)
	}
	if j1.Partitions != 4 || j1.HeartbeatEvery != time.Second {
		t.Errorf("reply metadata = %+v", j1)
	}

	// Second worker joins before any partition started: bounded preemption
	// moves un-started partitions until loads are within 1.
	j2, err := m.Join(JoinRequest{Label: "w2", Preferred: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Assignments) != 2 {
		t.Fatalf("second worker got %d assignments, want 2: %+v", len(j2.Assignments), j2.Assignments)
	}
	snap := m.Snapshot()
	if snap.Workers != 2 || snap.Unassigned != 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestMembershipNoPreemptionOfStartedPartitions(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clockConfig(clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := m.Join(JoinRequest{Label: "w1"})
	// w1 reports progress on both partitions: they are now started.
	hb, err := m.Heartbeat(HeartbeatRequest{WorkerID: j1.WorkerID, Progress: []PartitionProgress{
		{Partition: 0, Epoch: 1, Iteration: 5},
		{Partition: 1, Epoch: 1, Iteration: 5},
	}})
	if err != nil || len(hb.Assignments) != 2 {
		t.Fatalf("heartbeat: %v, assignments %+v", err, hb.Assignments)
	}
	j2, err := m.Join(JoinRequest{Label: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Assignments) != 0 {
		t.Errorf("started partitions were preempted: %+v", j2.Assignments)
	}
}

// TestMembershipHeartbeatTimeout is the fake-clock failure-detection test:
// a worker that stops heartbeating past WorkerTimeout is expired on the
// next membership RPC, its partitions move to a live worker with the last
// progress heard, and a late heartbeat from the expired worker reports
// Unknown so it re-joins.
func TestMembershipHeartbeatTimeout(t *testing.T) {
	clk := newFakeClock()
	cfg := clockConfig(clk, 2)
	cfg.WorkerTimeout = 3 * time.Second
	m, err := NewMembership(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m.Instrument(reg)

	j1, _ := m.Join(JoinRequest{Label: "w1", Preferred: []int{0}})
	j2, _ := m.Join(JoinRequest{Label: "w2", Preferred: []int{1}})

	// Both beat at t+1s to learn their post-rebalance partitions; w1 then
	// reports progress on whichever partition it actually holds.
	clk.advance(time.Second)
	hb1, err := m.Heartbeat(HeartbeatRequest{WorkerID: j1.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb1.Assignments) != 1 {
		t.Fatalf("w1 assignments = %+v, want 1 after the second join", hb1.Assignments)
	}
	w1part := hb1.Assignments[0].Partition
	if _, err := m.Heartbeat(HeartbeatRequest{WorkerID: j1.WorkerID, Progress: []PartitionProgress{
		{Partition: w1part, Epoch: 2, Iteration: 7},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Heartbeat(HeartbeatRequest{WorkerID: j2.WorkerID}); err != nil {
		t.Fatal(err)
	}

	// w1 goes silent. Just inside the timeout nothing happens.
	clk.advance(3 * time.Second)
	hb, err := m.Heartbeat(HeartbeatRequest{WorkerID: j2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Assignments) != 1 {
		t.Fatalf("w2 assignments before expiry = %+v", hb.Assignments)
	}

	// One more second: w1 is past the timeout; w2's next beat sweeps it and
	// adopts w1's partition at the last reported position.
	clk.advance(time.Second)
	hb, err = m.Heartbeat(HeartbeatRequest{WorkerID: j2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Assignments) != 2 {
		t.Fatalf("w2 assignments after expiry = %+v", hb.Assignments)
	}
	for _, a := range hb.Assignments {
		if a.Partition == w1part && (a.Epoch != 2 || a.Iteration != 7) {
			t.Errorf("partition %d resume hint = epoch %d iter %d, want 2/7", w1part, a.Epoch, a.Iteration)
		}
	}
	if got := reg.Counter(metrics.MClusterWorkerFailures).Value(); got != 1 {
		t.Errorf("cluster.worker_failures = %d, want 1", got)
	}

	// The late heartbeat from the expired worker is told to re-join.
	late, err := m.Heartbeat(HeartbeatRequest{WorkerID: j1.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if !late.Unknown {
		t.Error("expired worker's heartbeat not flagged Unknown")
	}
}

func TestMembershipGracefulLeaveReassignsImmediately(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clockConfig(clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := m.Join(JoinRequest{Label: "w1", Preferred: []int{0}})
	j2, _ := m.Join(JoinRequest{Label: "w2", Preferred: []int{1}})
	hb1, err := m.Heartbeat(HeartbeatRequest{WorkerID: j1.WorkerID})
	if err != nil || len(hb1.Assignments) != 1 {
		t.Fatalf("w1 heartbeat: %v, assignments %+v", err, hb1.Assignments)
	}
	w1part := hb1.Assignments[0].Partition
	if err := m.Leave(LeaveRequest{WorkerID: j1.WorkerID, Progress: []PartitionProgress{
		{Partition: w1part, Epoch: 3, Iteration: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// No timeout wait: w2's next beat already owns both partitions.
	hb, err := m.Heartbeat(HeartbeatRequest{WorkerID: j2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Assignments) != 2 {
		t.Fatalf("assignments after leave = %+v", hb.Assignments)
	}
	for _, a := range hb.Assignments {
		if a.Partition == w1part && a.Epoch != 3 {
			t.Errorf("leave progress lost: %+v", a)
		}
	}
}

func TestMembershipDonePartitionsFinishTheRun(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clockConfig(clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Join(JoinRequest{Label: "w"})
	hb, err := m.Heartbeat(HeartbeatRequest{WorkerID: j.WorkerID, Progress: []PartitionProgress{
		{Partition: 0, Done: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hb.AllDone {
		t.Error("AllDone with one partition still running")
	}
	if len(hb.Assignments) != 1 || hb.Assignments[0].Partition != 1 {
		t.Errorf("assignments = %+v, want only partition 1", hb.Assignments)
	}
	hb, err = m.Heartbeat(HeartbeatRequest{WorkerID: j.WorkerID, Progress: []PartitionProgress{
		{Partition: 0, Done: true}, // idempotent re-report
		{Partition: 1, Done: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !hb.AllDone {
		t.Error("AllDone not reported after every partition finished")
	}
	if !m.AllDone() {
		t.Error("Membership.AllDone() disagrees")
	}
}

// TestCoordClientOverTCP drives the membership protocol through the real
// gob TCP wire: a shard Acceptor hosting a Membership, a CoordClient
// dialing it, and join/heartbeat/leave round trips — plus the readable
// refusal from a shard that is not the coordinator.
func TestCoordClientOverTCP(t *testing.T) {
	cluster := testCluster(t, 2)
	m, err := NewMembership(MemberConfig{Partitions: 2, ShardAddrs: []string{"x:1", "y:2"}})
	if err != nil {
		t.Fatal(err)
	}

	serve := func(coord *Membership) (addr string, stop func()) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		acc := &Acceptor{Coordinator: coord}
		done := make(chan struct{})
		go func() {
			acc.Serve(l, cluster.Servers[0])
			close(done)
		}()
		return l.Addr().String(), func() {
			l.Close()
			acc.Shutdown(time.Second)
			<-done
		}
	}

	addr, stop := serve(m)
	defer stop()

	cc, err := DialCoordinator(addr, time.Second)
	if err != nil {
		t.Fatalf("DialCoordinator: %v", err)
	}
	defer cc.Close()
	join, err := cc.Join(JoinRequest{Label: "tcp-worker", Preferred: []int{0, 1}})
	if err != nil {
		t.Fatalf("Join over TCP: %v", err)
	}
	if len(join.Assignments) != 2 || len(join.ShardAddrs) != 2 {
		t.Fatalf("join reply = %+v", join)
	}
	hb, err := cc.Heartbeat(HeartbeatRequest{WorkerID: join.WorkerID, Progress: []PartitionProgress{
		{Partition: 0, Done: true},
		{Partition: 1, Done: true},
	}})
	if err != nil {
		t.Fatalf("Heartbeat over TCP: %v", err)
	}
	if !hb.AllDone {
		t.Error("AllDone lost over the wire")
	}
	if err := cc.Leave(LeaveRequest{WorkerID: join.WorkerID}); err != nil {
		t.Fatalf("Leave over TCP: %v", err)
	}

	// A plain shard (no coordinator) refuses membership ops by name.
	addr2, stop2 := serve(nil)
	defer stop2()
	cc2, err := DialCoordinator(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	if _, err := cc2.Join(JoinRequest{Label: "lost-worker"}); err == nil {
		t.Error("non-coordinator shard accepted a join")
	}
}
