package ps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/telemetry"
)

// Cluster membership and failure detection (DESIGN.md §11).
//
// One shard process — by convention the first address of the static seed
// list — additionally hosts a Membership: the coordinator. Worker processes
// register with it over the existing gob TCP protocol (ops 'J'oin,
// 'H'eartbeat, 'L'eave ride the same connections as pulls and pushes),
// discover the shard fleet from the join reply, and afterwards heartbeat
// periodically. The coordinator declares a worker dead when its heartbeats
// stop for longer than WorkerTimeout and hands the dead worker's partitions
// to the least-loaded live worker, together with the last progress it heard
// — the reassignment that lets a run survive a worker crash without
// restarting the epoch (the embeddings themselves live in the shards, which
// keep serving throughout).
//
// Failure detection is evaluated lazily, on membership RPCs, not on a
// timer goroutine: every live worker beats every HeartbeatEvery, so in any
// run that still has a survivor the sweep happens at heartbeat cadence, and
// the lazy design makes the detector fully deterministic under a fake
// clock (MemberConfig.Now).

// JoinRequest registers a worker process with the coordinator.
type JoinRequest struct {
	// Label identifies the worker in coordinator logs (host:pid, say).
	Label string
	// Preferred lists the partitions this worker was launched to own
	// (the elastic spelling of hetkg-train -machine). Preferred partitions
	// are granted when unowned; an empty list makes the worker a spare
	// that picks up orphaned partitions only.
	Preferred []int
}

// Assignment hands one partition to a worker, with the coordinator's
// last-known progress as the resume point (the worker may resume further
// ahead if it finds a fresher ckpt snapshot).
type Assignment struct {
	// Partition is the partition (machine) index to train.
	Partition int
	// Epoch is the 1-based epoch to resume at.
	Epoch int
	// Iteration is the number of completed iterations within Epoch.
	Iteration int
}

// JoinReply is the coordinator's answer to a JoinRequest: the worker's
// identity, the shard fleet, and the initial partition assignments.
type JoinReply struct {
	// WorkerID is the coordinator-issued identity for heartbeats/leave.
	WorkerID int
	// ShardAddrs is the parameter-server fleet, in machine order — the
	// shard-discovery half of the membership layer (workers need only the
	// coordinator's address to find the whole cluster).
	ShardAddrs []string
	// Partitions is the total partition count (= machines) of the run.
	Partitions int
	// HeartbeatEvery is the heartbeat cadence the coordinator expects.
	HeartbeatEvery time.Duration
	// Assignments are the partitions granted at join time.
	Assignments []Assignment
}

// PartitionProgress reports one partition's training position in a
// heartbeat: the owner's current epoch/iteration, or Done when every
// configured epoch has finished.
type PartitionProgress struct {
	Partition int
	Epoch     int
	Iteration int
	Done      bool
}

// HeartbeatRequest is a worker's periodic liveness report plus the progress
// of every partition it holds (done partitions are re-reported every beat,
// so a lost reply cannot lose a completion).
type HeartbeatRequest struct {
	WorkerID int
	Progress []PartitionProgress
}

// HeartbeatReply carries the worker's authoritative assignment set back.
// A partition present here but absent from the worker's active set was
// reassigned TO it (adopt and resume); one the worker holds but that is
// absent here was reassigned away (drop without checkpointing).
type HeartbeatReply struct {
	Assignments []Assignment
	// AllDone reports that every partition has completed every epoch —
	// the worker should gather, evaluate, and exit.
	AllDone bool
	// Unknown reports that the coordinator no longer knows this worker
	// (its heartbeats stalled past WorkerTimeout and it was expired).
	// The worker must re-Join before training further.
	Unknown bool
}

// LeaveRequest removes a worker gracefully, returning its partitions to
// the pool with exact progress (no timeout wait, no lost iterations).
type LeaveRequest struct {
	WorkerID int
	Progress []PartitionProgress
}

// MemberConfig parameterizes a coordinator's Membership.
type MemberConfig struct {
	// Partitions is the run's partition (machine) count.
	Partitions int
	// ShardAddrs is the static seed list of shard addresses advertised to
	// joining workers, in machine order.
	ShardAddrs []string
	// HeartbeatEvery is the cadence advertised to workers (default 1s).
	HeartbeatEvery time.Duration
	// WorkerTimeout declares a worker dead after this much heartbeat
	// silence (default 3 × HeartbeatEvery).
	WorkerTimeout time.Duration
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// Logf, when non-nil, receives membership events (joins, expiries,
	// reassignments).
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, is the coordinator's fleet aggregator:
	// op 'T' reports (and in-process SendTelemetry calls) are folded into
	// it. Nil coordinators refuse telemetry by name.
	Telemetry *telemetry.Fleet
}

// memberWorker is the coordinator's view of one registered worker.
type memberWorker struct {
	id       int
	label    string
	lastBeat time.Time
}

// memberPart is the coordinator's view of one partition: its owner (-1
// when orphaned), the last progress heard, and whether the owner has
// progressed past the assignment's resume point (started partitions are
// never preempted for balance — only expiry moves them).
type memberPart struct {
	owner   int
	epoch   int
	iter    int
	done    bool
	started bool
}

// memberObs holds the coordinator's registry series (see Instrument).
type memberObs struct {
	workers    *metrics.Gauge
	unassigned *metrics.Gauge
	heartbeats *metrics.Counter
	failures   *metrics.Counter
	reassigns  *metrics.Counter
}

// Membership is the coordinator's cluster state machine. All methods are
// safe for concurrent use (connections are served on separate goroutines).
type Membership struct {
	cfg MemberConfig

	mu      sync.Mutex
	nextID  int
	workers map[int]*memberWorker
	parts   []memberPart
	obs     *memberObs
}

// NewMembership builds a coordinator for a run with cfg.Partitions
// partitions, all initially orphaned at epoch 1, iteration 0.
func NewMembership(cfg MemberConfig) (*Membership, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("ps: membership needs >= 1 partition, got %d", cfg.Partitions)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.WorkerTimeout <= 0 {
		cfg.WorkerTimeout = 3 * cfg.HeartbeatEvery
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Membership{
		cfg:     cfg,
		nextID:  1,
		workers: make(map[int]*memberWorker),
		parts:   make([]memberPart, cfg.Partitions),
	}
	for p := range m.parts {
		m.parts[p] = memberPart{owner: -1, epoch: 1}
	}
	return m, nil
}

// Instrument publishes the coordinator's cluster series into reg:
// cluster.workers / cluster.partitions_unassigned gauges, and counters for
// received heartbeats (cluster.heartbeats), heartbeat-timeout expiries
// (cluster.worker_failures) and partition moves (cluster.reassignments).
// Call before the membership serves traffic.
func (m *Membership) Instrument(reg *metrics.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = &memberObs{
		workers:    reg.Gauge(metrics.MClusterWorkers),
		unassigned: reg.Gauge(metrics.MClusterPartsUnassigned),
		heartbeats: reg.Counter(metrics.MClusterHeartbeats),
		failures:   reg.Counter(metrics.MClusterWorkerFailures),
		reassigns:  reg.Counter(metrics.MClusterReassigns),
	}
}

func (m *Membership) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Join implements worker registration. Preferred partitions are granted
// when unowned; then orphans are spread over the live workers.
func (m *Membership) Join(req JoinRequest) (*JoinReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.expireLocked(now)
	w := &memberWorker{id: m.nextID, label: req.Label, lastBeat: now}
	m.nextID++
	m.workers[w.id] = w
	for _, p := range req.Preferred {
		if p < 0 || p >= len(m.parts) {
			return nil, fmt.Errorf("ps: preferred partition %d out of range [0,%d)", p, len(m.parts))
		}
		if m.parts[p].owner < 0 && !m.parts[p].done {
			m.assignLocked(p, w.id)
		}
	}
	m.rebalanceLocked()
	m.logf("cluster: worker %d (%s) joined, %d live", w.id, req.Label, len(m.workers))
	m.publishLocked()
	return &JoinReply{
		WorkerID:       w.id,
		ShardAddrs:     append([]string(nil), m.cfg.ShardAddrs...),
		Partitions:     len(m.parts),
		HeartbeatEvery: m.cfg.HeartbeatEvery,
		Assignments:    m.assignmentsLocked(w.id),
	}, nil
}

// Heartbeat implements the periodic liveness + progress report and returns
// the worker's current assignment set (reassignments included).
func (m *Membership) Heartbeat(req HeartbeatRequest) (*HeartbeatReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if o := m.obs; o != nil {
		o.heartbeats.Inc()
	}
	now := m.cfg.Now()
	w, ok := m.workers[req.WorkerID]
	if ok {
		w.lastBeat = now
	}
	m.expireLocked(now)
	if !ok || m.workers[req.WorkerID] == nil {
		return &HeartbeatReply{Unknown: true}, nil
	}
	for _, pr := range req.Progress {
		m.recordProgressLocked(req.WorkerID, pr)
	}
	m.rebalanceLocked()
	m.publishLocked()
	return &HeartbeatReply{
		Assignments: m.assignmentsLocked(req.WorkerID),
		AllDone:     m.allDoneLocked(),
	}, nil
}

// Leave implements graceful departure: final progress is recorded and the
// worker's partitions return to the pool immediately.
func (m *Membership) Leave(req LeaveRequest) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[req.WorkerID]
	if !ok {
		return nil // already expired; nothing to release
	}
	for _, pr := range req.Progress {
		m.recordProgressLocked(req.WorkerID, pr)
	}
	m.releaseLocked(w.id)
	delete(m.workers, w.id)
	m.logf("cluster: worker %d (%s) left, %d live", w.id, w.label, len(m.workers))
	m.rebalanceLocked()
	m.publishLocked()
	return nil
}

// AllDone reports whether every partition has completed every epoch.
func (m *Membership) AllDone() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allDoneLocked()
}

// MemberSnapshot is a point-in-time view of the cluster for logs, tests
// and the smoke harness.
type MemberSnapshot struct {
	// Workers is the number of live registered workers.
	Workers int
	// Unassigned counts partitions with no live owner (and work left).
	Unassigned int
	// Done counts partitions that completed every epoch.
	Done int
	// Owner[p] is partition p's worker id (-1 when orphaned).
	Owner []int
	// Epoch[p] / Iteration[p] is the last progress heard for p.
	Epoch     []int
	Iteration []int
}

// Snapshot returns the current membership view.
func (m *Membership) Snapshot() MemberSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MemberSnapshot{Workers: len(m.workers)}
	for _, p := range m.parts {
		s.Owner = append(s.Owner, p.owner)
		s.Epoch = append(s.Epoch, p.epoch)
		s.Iteration = append(s.Iteration, p.iter)
		if p.done {
			s.Done++
		} else if p.owner < 0 {
			s.Unassigned++
		}
	}
	return s
}

// recordProgressLocked folds one reported partition position into the
// table. Progress only moves forward (a stale report from a preempted
// worker cannot rewind the resume point).
func (m *Membership) recordProgressLocked(worker int, pr PartitionProgress) {
	if pr.Partition < 0 || pr.Partition >= len(m.parts) {
		return
	}
	p := &m.parts[pr.Partition]
	if pr.Done && !p.done {
		p.done = true
		p.owner = -1
		m.logf("cluster: partition %d done (worker %d)", pr.Partition, worker)
		return
	}
	if p.done || p.owner != worker {
		return
	}
	if pr.Epoch > p.epoch || (pr.Epoch == p.epoch && pr.Iteration > p.iter) {
		p.epoch, p.iter = pr.Epoch, pr.Iteration
		p.started = true
	}
}

// expireLocked sweeps workers whose heartbeats stalled past WorkerTimeout,
// orphaning their partitions with the last progress heard.
func (m *Membership) expireLocked(now time.Time) {
	for id, w := range m.workers {
		if now.Sub(w.lastBeat) <= m.cfg.WorkerTimeout {
			continue
		}
		m.releaseLocked(id)
		delete(m.workers, id)
		if o := m.obs; o != nil {
			o.failures.Inc()
		}
		m.logf("cluster: worker %d (%s) expired after %v silence", id, w.label, now.Sub(w.lastBeat))
	}
}

// releaseLocked orphans every partition owned by worker id.
func (m *Membership) releaseLocked(id int) {
	for p := range m.parts {
		if m.parts[p].owner == id {
			m.parts[p].owner = -1
			m.parts[p].started = false
		}
	}
}

// assignLocked hands partition p to worker id.
func (m *Membership) assignLocked(p, id int) {
	m.parts[p].owner = id
	m.parts[p].started = false
}

// rebalanceLocked hands orphaned partitions to the least-loaded live
// workers, then applies one bounded preemption rule: a partition whose
// owner has not yet trained past its resume point may move to a worker
// holding at least two fewer partitions (this spreads work at cold start
// without ever preempting in-flight training).
func (m *Membership) rebalanceLocked() {
	if len(m.workers) == 0 {
		return
	}
	load := make(map[int]int, len(m.workers))
	for id := range m.workers {
		load[id] = 0
	}
	for _, p := range m.parts {
		if p.owner >= 0 && !p.done {
			load[p.owner]++
		}
	}
	least := func() (int, int) {
		best, bestLoad := -1, int(^uint(0)>>1)
		for id, l := range load {
			if l < bestLoad || (l == bestLoad && (best < 0 || id < best)) {
				best, bestLoad = id, l
			}
		}
		return best, bestLoad
	}
	for p := range m.parts {
		if m.parts[p].done || m.parts[p].owner >= 0 {
			continue
		}
		id, _ := least()
		m.assignLocked(p, id)
		load[id]++
		if o := m.obs; o != nil {
			o.reassigns.Inc()
		}
		m.logf("cluster: partition %d -> worker %d (resume epoch %d iter %d)",
			p, id, m.parts[p].epoch, m.parts[p].iter)
	}
	for p := range m.parts {
		pt := &m.parts[p]
		if pt.done || pt.started || pt.owner < 0 {
			continue
		}
		id, l := least()
		if id == pt.owner || load[pt.owner] < l+2 {
			continue
		}
		load[pt.owner]--
		m.assignLocked(p, id)
		load[id]++
		if o := m.obs; o != nil {
			o.reassigns.Inc()
		}
		m.logf("cluster: partition %d rebalanced -> worker %d", p, id)
	}
}

// assignmentsLocked lists worker id's current partitions with resume hints.
func (m *Membership) assignmentsLocked(id int) []Assignment {
	var out []Assignment
	for p, pt := range m.parts {
		if pt.owner == id && !pt.done {
			out = append(out, Assignment{Partition: p, Epoch: pt.epoch, Iteration: pt.iter})
		}
	}
	return out
}

func (m *Membership) allDoneLocked() bool {
	for _, p := range m.parts {
		if !p.done {
			return false
		}
	}
	return true
}

// publishLocked refreshes the coordinator gauges.
func (m *Membership) publishLocked() {
	o := m.obs
	if o == nil {
		return
	}
	o.workers.Set(float64(len(m.workers)))
	unassigned := 0
	for _, p := range m.parts {
		if !p.done && p.owner < 0 {
			unassigned++
		}
	}
	o.unassigned.Set(float64(unassigned))
}

// Coordinator is the membership protocol from the worker's side. It is
// implemented by *Membership (in-process, used by tests and single-process
// elastic runs) and by *CoordClient (over the gob TCP wire).
type Coordinator interface {
	// Join registers this process and returns identity + shard fleet +
	// initial assignments.
	Join(JoinRequest) (*JoinReply, error)
	// Heartbeat reports liveness and progress, returning the current
	// assignment set.
	Heartbeat(HeartbeatRequest) (*HeartbeatReply, error)
	// Leave releases this worker's partitions gracefully.
	Leave(LeaveRequest) error
}

// CoordClient speaks the membership protocol to a coordinator shard over
// one persistent gob TCP connection. Calls are serialized by a mutex; each
// round trip is bounded by Timeout.
type CoordClient struct {
	mu      sync.Mutex
	c       *tcpConn
	timeout time.Duration
}

// DialCoordinator connects to the coordinator at addr. timeout bounds each
// membership round trip (0 = 5s) — the worker-side half of failure
// detection: a coordinator that stops answering within the bound surfaces
// as an error instead of a hang.
func DialCoordinator(addr string, timeout time.Duration) (*CoordClient, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ps: dialing coordinator %s: %w", addr, err)
	}
	prof, err := ResolveProfile(ProfileFP32)
	if err != nil {
		conn.Close()
		return nil, err
	}
	// Membership connections carry no pushes, so link id 0 (dedup off).
	conn.SetDeadline(time.Now().Add(timeout))
	c, err := handshakeClient(conn, prof, 0)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ps: handshake with coordinator %s: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	return &CoordClient{c: c, timeout: timeout}, nil
}

// Close releases the connection.
func (cc *CoordClient) Close() error { return cc.c.conn.Close() }

// roundTrip sends one membership op and decodes the typed reply payload.
func (cc *CoordClient) roundTrip(op byte, msg, reply any) error {
	payload, err := gobBytes(msg)
	if err != nil {
		return err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	c := cc.c
	if err := c.conn.SetDeadline(time.Now().Add(cc.timeout)); err != nil {
		return err
	}
	defer c.conn.SetDeadline(time.Time{})
	if err := c.enc.Encode(&wireRequest{Op: op, Payload: payload}); err != nil {
		return fmt.Errorf("ps: sending %q to coordinator: %w", op, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("ps: flushing %q to coordinator: %w", op, err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return fmt.Errorf("ps: reading %q reply from coordinator: %w", op, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("ps: coordinator refused %q: %s", op, resp.Err)
	}
	return gobDecode(resp.Payload, reply)
}

// Join implements Coordinator.
func (cc *CoordClient) Join(req JoinRequest) (*JoinReply, error) {
	var reply JoinReply
	if err := cc.roundTrip(opJoin, &req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Heartbeat implements Coordinator.
func (cc *CoordClient) Heartbeat(req HeartbeatRequest) (*HeartbeatReply, error) {
	var reply HeartbeatReply
	if err := cc.roundTrip(opHeartbeat, &req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Leave implements Coordinator.
func (cc *CoordClient) Leave(req LeaveRequest) error {
	var reply struct{}
	return cc.roundTrip(opLeave, &req, &reply)
}

// Membership wire ops, sharing the pull/push request envelope.
const (
	opJoin      = 'J'
	opHeartbeat = 'H'
	opLeave     = 'L'
)

// gobBytes encodes v into a fresh payload.
func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("ps: encoding membership payload: %w", err)
	}
	return buf.Bytes(), nil
}

// gobDecode decodes a membership payload into v.
func gobDecode(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("ps: decoding membership payload: %w", err)
	}
	return nil
}

// serveMember dispatches one membership op on a shard connection. A shard
// without a coordinator refuses the op by name, so a worker joining the
// wrong shard gets a readable error instead of a timeout.
func serveMember(coord *Membership, req *wireRequest, resp *wireResponse) {
	if coord == nil {
		resp.Err = "ps: this shard is not the coordinator (start it with -coordinator, or join the first seed address)"
		return
	}
	encode := func(reply any, err error) {
		if err != nil {
			resp.Err = err.Error()
			return
		}
		payload, err := gobBytes(reply)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Payload = payload
	}
	switch req.Op {
	case opJoin:
		var jr JoinRequest
		if err := gobDecode(req.Payload, &jr); err != nil {
			resp.Err = err.Error()
			return
		}
		reply, err := coord.Join(jr)
		encode(reply, err)
	case opHeartbeat:
		var hr HeartbeatRequest
		if err := gobDecode(req.Payload, &hr); err != nil {
			resp.Err = err.Error()
			return
		}
		reply, err := coord.Heartbeat(hr)
		encode(reply, err)
	case opLeave:
		var lr LeaveRequest
		if err := gobDecode(req.Payload, &lr); err != nil {
			resp.Err = err.Error()
			return
		}
		encode(struct{}{}, coord.Leave(lr))
	}
}
