package ps

import (
	"math"
	"net"
	"sync"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/netsim"
	"hetkg/internal/opt"
)

func TestKeySpace(t *testing.T) {
	e := EntityKey(42)
	r := RelationKey(42)
	if e == r {
		t.Fatal("entity and relation keys collide")
	}
	if e.IsRelation() {
		t.Error("entity key claims to be a relation")
	}
	if !r.IsRelation() {
		t.Error("relation key does not claim to be a relation")
	}
	if e.Entity() != 42 || r.Relation() != 42 {
		t.Error("key round trip failed")
	}
	if e.String() != "e:42" || r.String() != "r:42" {
		t.Errorf("String() = %q, %q", e.String(), r.String())
	}
}

func TestPlacement(t *testing.T) {
	part := []int32{0, 1, 0, 1}
	p, err := NewPlacement(2, part)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	if p.Shard(EntityKey(1)) != 1 || p.Shard(EntityKey(2)) != 0 {
		t.Error("entity placement does not follow partition")
	}
	if p.Shard(RelationKey(0)) != 0 || p.Shard(RelationKey(1)) != 1 || p.Shard(RelationKey(2)) != 0 {
		t.Error("relation striping wrong")
	}
	if _, err := NewPlacement(0, part); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := NewPlacement(2, []int32{5}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func testCluster(t *testing.T, machines int) *Cluster {
	t.Helper()
	part := make([]int32, 20)
	for i := range part {
		part[i] = int32(i % machines)
	}
	c, err := NewCluster(ClusterConfig{
		NumMachines:  machines,
		EntityPart:   part,
		NumRelations: 5,
		EntityDim:    8,
		RelationDim:  8,
		NewOptimizer: func() opt.Optimizer { return &opt.SGD{LR: 0.1} },
		Seed:         99,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestClusterInitDeterministicAcrossShardCounts(t *testing.T) {
	c1 := testCluster(t, 1)
	c2 := testCluster(t, 4)
	e1, r1, err := c1.Gather()
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	e2, r2, err := c2.Gather()
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	for i := range e1.Data {
		if e1.Data[i] != e2.Data[i] {
			t.Fatalf("entity init differs between 1 and 4 machines at %d", i)
		}
	}
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			t.Fatalf("relation init differs between 1 and 4 machines at %d", i)
		}
	}
}

func TestServerPullPush(t *testing.T) {
	c := testCluster(t, 1)
	srv := c.Servers[0]
	k := EntityKey(3)
	before, err := srv.Pull([]Key{k})
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	grad := make([]float32, 8)
	grad[0] = 1
	if err := srv.Push([]Key{k}, grad); err != nil {
		t.Fatalf("Push: %v", err)
	}
	after, _ := srv.Pull([]Key{k})
	if after[0] != before[0]-0.1 { // SGD lr=0.1
		t.Errorf("after push: %v, want %v", after[0], before[0]-0.1)
	}
	for i := 1; i < 8; i++ {
		if after[i] != before[i] {
			t.Errorf("untouched coordinate %d changed", i)
		}
	}
}

func TestServerRejectsUnknownKey(t *testing.T) {
	c := testCluster(t, 2)
	// Shard 0 owns even entities only.
	if _, err := c.Servers[0].Pull([]Key{EntityKey(1)}); err == nil {
		t.Error("pull of unowned key accepted")
	}
	if err := c.Servers[0].Push([]Key{EntityKey(1)}, make([]float32, 8)); err == nil {
		t.Error("push to unowned key accepted")
	}
}

func TestServerRejectsShortPayload(t *testing.T) {
	c := testCluster(t, 1)
	if err := c.Servers[0].Push([]Key{EntityKey(0)}, make([]float32, 3)); err == nil {
		t.Error("short payload accepted")
	}
	if err := c.Servers[0].Push([]Key{EntityKey(0)}, make([]float32, 12)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestServerDropsNonFiniteGradients(t *testing.T) {
	c := testCluster(t, 1)
	srv := c.Servers[0]
	k := EntityKey(0)
	before, _ := srv.Pull([]Key{k})
	bad := make([]float32, 8)
	bad[0] = float32(math.Inf(1))
	if err := srv.Push([]Key{k}, bad); err != nil {
		t.Fatalf("Push: %v", err)
	}
	after, _ := srv.Pull([]Key{k})
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("non-finite gradient was applied")
		}
	}
}

func TestSetRow(t *testing.T) {
	c := testCluster(t, 1)
	srv := c.Servers[0]
	k := EntityKey(5)
	row := make([]float32, 8)
	row[7] = 3.5
	if err := srv.SetRow(k, row); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	got, _ := srv.Pull([]Key{k})
	if got[7] != 3.5 {
		t.Errorf("SetRow not visible: %v", got)
	}
	if err := srv.SetRow(k, make([]float32, 3)); err == nil {
		t.Error("wrong-width SetRow accepted")
	}
}

func TestClientRoutesAndMeters(t *testing.T) {
	c := testCluster(t, 2)
	var meter netsim.Meter
	cl, err := NewClient(0, c, NewInProc(c), &meter)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	keys := []Key{EntityKey(0), EntityKey(1), EntityKey(2), RelationKey(0), RelationKey(1)}
	dst := make(map[Key][]float32)
	if err := cl.Pull(keys, dst); err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if len(dst) != 5 {
		t.Fatalf("pulled %d rows, want 5", len(dst))
	}
	for k, row := range dst {
		if len(row) != 8 {
			t.Errorf("row %v has width %d", k, len(row))
		}
	}
	s := meter.Snapshot()
	// Keys split across both shards: 1 local RPC (shard 0) + 1 remote (shard 1).
	if s.LocalMsgs != 1 || s.RemoteMsgs != 1 {
		t.Errorf("meter = %+v, want 1 local + 1 remote pull", s)
	}
	grads := map[Key][]float32{
		EntityKey(0): make([]float32, 8),
		EntityKey(1): make([]float32, 8),
	}
	if err := cl.Push(grads); err != nil {
		t.Fatalf("Push: %v", err)
	}
	s = meter.Snapshot()
	if s.LocalMsgs != 2 || s.RemoteMsgs != 2 {
		t.Errorf("meter after push = %+v, want 2 local + 2 remote", s)
	}
	if s.RemoteBytes == 0 || s.LocalBytes == 0 {
		t.Error("byte accounting missing")
	}
}

func TestClientValidation(t *testing.T) {
	c := testCluster(t, 2)
	if _, err := NewClient(5, c, NewInProc(c), nil); err == nil {
		t.Error("out-of-range machine accepted")
	}
	cl, _ := NewClient(0, c, NewInProc(c), nil)
	if err := cl.Push(map[Key][]float32{EntityKey(0): make([]float32, 3)}); err == nil {
		t.Error("wrong-width gradient accepted")
	}
	if err := cl.Push(nil); err != nil {
		t.Errorf("empty push should be a no-op, got %v", err)
	}
}

func TestPullModifyPushIsolation(t *testing.T) {
	// Rows returned by Pull must be copies: mutating them must not change
	// server state without a Push.
	c := testCluster(t, 1)
	cl, _ := NewClient(0, c, NewInProc(c), nil)
	dst := make(map[Key][]float32)
	k := EntityKey(0)
	if err := cl.Pull([]Key{k}, dst); err != nil {
		t.Fatal(err)
	}
	dst[k][0] = 12345
	dst2 := make(map[Key][]float32)
	if err := cl.Pull([]Key{k}, dst2); err != nil {
		t.Fatal(err)
	}
	if dst2[k][0] == 12345 {
		t.Error("Pull returned a reference into server storage")
	}
}

func TestConcurrentClients(t *testing.T) {
	c := testCluster(t, 2)
	tr := NewInProc(c)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := NewClient(w%2, c, tr, nil)
			if err != nil {
				t.Error(err)
				return
			}
			keys := []Key{EntityKey(kg.EntityID(w)), RelationKey(0)}
			for i := 0; i < 100; i++ {
				dst := make(map[Key][]float32)
				if err := cl.Pull(keys, dst); err != nil {
					t.Error(err)
					return
				}
				g := map[Key][]float32{keys[0]: make([]float32, 8)}
				g[keys[0]][0] = 0.001
				if err := cl.Push(g); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTCPTransportIntegration(t *testing.T) {
	c := testCluster(t, 2)
	var addrs []string
	var listeners []net.Listener
	for _, srv := range c.Servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
		go ServeTCP(l, srv)
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	tr, err := DialTCP(addrs)
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer tr.Close()

	cl, _ := NewClient(0, c, tr, nil)
	keys := []Key{EntityKey(0), EntityKey(1), RelationKey(3)}
	dst := make(map[Key][]float32)
	if err := cl.Pull(keys, dst); err != nil {
		t.Fatalf("TCP Pull: %v", err)
	}
	if len(dst) != 3 {
		t.Fatalf("pulled %d rows over TCP, want 3", len(dst))
	}
	// Push a gradient and confirm it took effect.
	before := dst[EntityKey(0)][0]
	grad := make([]float32, 8)
	grad[0] = 1
	if err := cl.Push(map[Key][]float32{EntityKey(0): grad}); err != nil {
		t.Fatalf("TCP Push: %v", err)
	}
	dst2 := make(map[Key][]float32)
	if err := cl.Pull([]Key{EntityKey(0)}, dst2); err != nil {
		t.Fatal(err)
	}
	if got := dst2[EntityKey(0)][0]; got != before-0.1 {
		t.Errorf("TCP push not applied: %v, want %v", got, before-0.1)
	}
	// Error propagation over the wire.
	if _, err := tr.Pull(0, &PullRequest{Keys: []Key{EntityKey(1)}}); err == nil {
		t.Error("unowned key over TCP did not error")
	}
}

func TestTCPAgreesWithInProc(t *testing.T) {
	c := testCluster(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, c.Servers[0])
	tcp, err := DialTCP([]string{l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	inproc := NewInProc(c)
	req := &PullRequest{Keys: []Key{EntityKey(7), RelationKey(2)}}
	a, err := tcp.Pull(0, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inproc.Pull(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Vals) != len(b.Vals) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Vals), len(b.Vals))
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatalf("value %d differs: %v vs %v", i, a.Vals[i], b.Vals[i])
		}
	}
}

func TestWireSizes(t *testing.T) {
	if PullRequestBytes(10) != 16+80 {
		t.Error("PullRequestBytes wrong")
	}
	if PullResponseBytes(100) != 16+400 {
		t.Error("PullResponseBytes wrong")
	}
	if PushRequestBytes(10, 100) != 16+80+400 {
		t.Error("PushRequestBytes wrong")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	base := ClusterConfig{
		NumMachines:  1,
		EntityPart:   []int32{0},
		NumRelations: 1,
		EntityDim:    4,
		RelationDim:  4,
		NewOptimizer: func() opt.Optimizer { return &opt.SGD{LR: 0.1} },
	}
	bad := base
	bad.NumMachines = 0
	if _, err := NewCluster(bad); err == nil {
		t.Error("0 machines accepted")
	}
	bad = base
	bad.NumRelations = 0
	if _, err := NewCluster(bad); err == nil {
		t.Error("0 relations accepted")
	}
	bad = base
	bad.NewOptimizer = nil
	if _, err := NewCluster(bad); err == nil {
		t.Error("nil optimizer accepted")
	}
	bad = base
	bad.EntityDim = 0
	if _, err := NewCluster(bad); err == nil {
		t.Error("0 dim accepted")
	}
}

func TestNewClusterShardMatchesFullCluster(t *testing.T) {
	part := make([]int32, 20)
	for i := range part {
		part[i] = int32(i % 3)
	}
	cfg := ClusterConfig{
		NumMachines:  3,
		EntityPart:   part,
		NumRelations: 5,
		EntityDim:    8,
		RelationDim:  8,
		NewOptimizer: func() opt.Optimizer { return &opt.SGD{LR: 0.1} },
		Seed:         99,
	}
	full, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		shard, err := NewClusterShard(cfg, m)
		if err != nil {
			t.Fatalf("NewClusterShard(%d): %v", m, err)
		}
		if shard.NumRows() != full.Servers[m].NumRows() {
			t.Fatalf("shard %d has %d rows, full cluster's has %d",
				m, shard.NumRows(), full.Servers[m].NumRows())
		}
		for _, k := range full.Servers[m].Keys() {
			want, _ := full.Servers[m].Pull([]Key{k})
			got, err := shard.Pull([]Key{k})
			if err != nil {
				t.Fatalf("shard %d missing %v", m, k)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shard %d row %v differs at %d", m, k, i)
				}
			}
		}
	}
	if _, err := NewClusterShard(cfg, 3); err == nil {
		t.Error("out-of-range machine accepted")
	}
}

func TestGatherViaMatchesDirectGather(t *testing.T) {
	c := testCluster(t, 2)
	de, dr, err := c.Gather()
	if err != nil {
		t.Fatal(err)
	}
	ve, vr, err := c.GatherVia(NewInProc(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range de.Data {
		if de.Data[i] != ve.Data[i] {
			t.Fatal("GatherVia entities differ from direct Gather")
		}
	}
	for i := range dr.Data {
		if dr.Data[i] != vr.Data[i] {
			t.Fatal("GatherVia relations differ from direct Gather")
		}
	}
}
