package ps

import (
	"net"
	"testing"
	"time"

	"hetkg/internal/chaos"
	"hetkg/internal/kg"
)

// TestReconnectGoldenAcrossProfiles is the reconnect × codec matrix: for
// every negotiable profile, a transport that loses its connection mid-run
// and reconnects transparently must stay correct. Three golden
// assertions, twin-run framed:
//
//  1. Server rows after the fault run are bit-identical to a never-
//     disconnected twin run fed the identical pull/push sequence (push
//     codecs are stateless, and the link layer never double-applies).
//  2. The first post-reconnect pull is bit-identical to a freshly-dialed
//     control transport's pull of the same keys — the reconnect reset
//     delta base state to the version-0 unbased sentinel on BOTH ends,
//     so the shard frames full rows, exactly like a fresh link.
//  3. For stateless-pull profiles (everything but delta-int8), every
//     pull in the fault run is bit-identical to the twin run's. Delta
//     pulls legitimately differ after a reconnect (full-framed int8
//     quantizes the absolute value, delta-framed the difference), which
//     is why assertion 2 compares against a fresh dial instead.
func TestReconnectGoldenAcrossProfiles(t *testing.T) {
	const dim, entities, nkeys, rounds = 16, 32, 8, 3
	for _, profName := range ProfileNames() {
		prof, err := ResolveProfile(profName)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(profName, func(t *testing.T) {
			vict := testClusterDim(t, 1, entities, dim)
			ctrl := testClusterDim(t, 1, entities, dim)
			inj := chaos.NewInjector()
			vaddr := chaosShard(t, vict, inj)
			cl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			go ServeTCP(cl, ctrl.Servers[0])

			dial := func(addr string) *TCPTransport {
				t.Helper()
				tr, err := DialTCPLink([]string{addr}, profName, LinkConfig{
					RPCTimeout: 2 * time.Second, Retries: 3, Seed: 11,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { tr.Close() })
				return tr
			}
			vtr, ctr := dial(vaddr), dial(cl.Addr().String())

			keys := make([]Key, nkeys)
			for i := range keys {
				keys[i] = EntityKey(kg.EntityID(i))
			}
			// grads is a fresh deterministic gradient batch per round —
			// fresh per call because EncodeRow writes decoder-visible
			// values back into its input.
			grads := func(round int) []float32 {
				g := make([]float32, nkeys*dim)
				for i := range g {
					g[i] = 0.01 * float32((round*31+i)%17)
				}
				return g
			}
			step := func(tr *TCPTransport, round int) []float32 {
				t.Helper()
				resp, err := tr.Pull(0, &PullRequest{Keys: keys})
				if err != nil {
					t.Fatalf("round %d pull: %v", round, err)
				}
				if err := tr.Push(0, &PushRequest{Keys: keys, Vals: grads(round)}); err != nil {
					t.Fatalf("round %d push: %v", round, err)
				}
				return resp.Vals
			}
			mustEqual := func(what string, got, want []float32) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s: %d values vs %d", what, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: value %d differs: %v vs %v", what, i, got[i], want[i])
					}
				}
			}

			// Pre-fault: both transports share an identical history, so
			// every profile — delta included — must pull identical bytes.
			for r := 0; r < rounds; r++ {
				mustEqual("pre-fault pull", step(vtr, r), step(ctr, r))
			}

			// Fault: every further read on the victim's first connection
			// resets it. The server's pending Read predates the rule, so a
			// burn pull rides it (mirrored on the control twin lockstep to
			// keep the push sequences identical); the next pull reconnects.
			inj.Add(chaos.Rule{Conn: 0, Op: chaos.OpRead, Count: -1, Fault: chaos.FaultReset})
			burnV := step(vtr, rounds)
			burnC := step(ctr, rounds)
			if !prof.DeltaPull {
				mustEqual("burn pull", burnV, burnC)
			}

			// Assertion 2: first post-reconnect pull == fresh dial's pull.
			vresp, err := vtr.Pull(0, &PullRequest{Keys: keys})
			if err != nil {
				t.Fatalf("post-reconnect pull: %v", err)
			}
			fresh := dial(vaddr)
			fresp, err := fresh.Pull(0, &PullRequest{Keys: keys})
			if err != nil {
				t.Fatalf("fresh-dial pull: %v", err)
			}
			mustEqual("post-reconnect vs fresh dial", vresp.Vals, fresp.Vals)
			// Mirror the pull on the control twin so histories stay in
			// lockstep for the remaining rounds.
			cresp, err := ctr.Pull(0, &PullRequest{Keys: keys})
			if err != nil {
				t.Fatal(err)
			}
			if !prof.DeltaPull {
				mustEqual("post-reconnect vs twin", vresp.Vals, cresp.Vals)
			}

			// Post-fault rounds keep training through the survivor.
			for r := rounds + 1; r < 2*rounds; r++ {
				v, c := step(vtr, r), step(ctr, r)
				if !prof.DeltaPull {
					mustEqual("post-fault pull", v, c)
				}
			}

			// Assertion 1: the shards agree bit-for-bit — the outage
			// neither lost nor double-applied any push.
			got, err := vict.Servers[0].Pull(keys)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ctrl.Servers[0].Pull(keys)
			if err != nil {
				t.Fatal(err)
			}
			mustEqual("final server rows", got, want)
		})
	}
}
