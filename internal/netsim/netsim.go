// Package netsim models the training cluster's network. The paper's
// measurements (communication dominating 70%+ of DGL-KE epoch time on a
// 1 Gbps link, Table I) are driven by how many bytes cross the slow
// inter-machine link versus how many are served from co-located shared
// memory. This package meters exactly that traffic and converts it to time
// through a configurable cost model, so a single-process reproduction
// exhibits the same communication/computation structure as the 4-machine
// cluster.
//
// Metering is done by the parameter-server client (every pull/push knows
// whether its target shard is co-located); this package is policy-free.
package netsim

import (
	"fmt"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/span"
)

// CostModel converts message counts and byte volumes into elapsed time.
// Remote traffic crosses the inter-machine network; local traffic moves
// through shared memory between co-located workers and servers.
type CostModel struct {
	// RemoteLatency is charged once per remote message (RPC half-trip).
	RemoteLatency time.Duration
	// RemoteBandwidthBps is the inter-machine link speed in bytes/second.
	RemoteBandwidthBps float64
	// LocalLatency is charged once per local (shared-memory) operation.
	LocalLatency time.Duration
	// LocalBandwidthBps is the shared-memory copy speed in bytes/second.
	LocalBandwidthBps float64
}

// Default1Gbps mirrors the paper's testbed: a 1 Gbps Ethernet
// (125 MB/s) with ~100 µs effective per-message latency, against ~20 GB/s
// shared memory with negligible latency.
func Default1Gbps() CostModel {
	return CostModel{
		RemoteLatency:      100 * time.Microsecond,
		RemoteBandwidthBps: 125e6,
		LocalLatency:       200 * time.Nanosecond,
		LocalBandwidthBps:  20e9,
	}
}

// Validate reports whether the model's rates are usable.
func (c CostModel) Validate() error {
	if c.RemoteBandwidthBps <= 0 || c.LocalBandwidthBps <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth (remote %v, local %v)",
			c.RemoteBandwidthBps, c.LocalBandwidthBps)
	}
	if c.RemoteLatency < 0 || c.LocalLatency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	return nil
}

// RemoteTime returns the simulated time to move msgs messages totalling
// bytes over the inter-machine link.
func (c CostModel) RemoteTime(msgs, bytes int64) time.Duration {
	return time.Duration(msgs)*c.RemoteLatency +
		time.Duration(float64(bytes)/c.RemoteBandwidthBps*float64(time.Second))
}

// LocalTime returns the simulated time for local shared-memory traffic.
func (c CostModel) LocalTime(msgs, bytes int64) time.Duration {
	return time.Duration(msgs)*c.LocalLatency +
		time.Duration(float64(bytes)/c.LocalBandwidthBps*float64(time.Second))
}

// Meter accumulates a worker's traffic, split by locality. It is safe for
// concurrent use. An instrumented meter (see Instrument) additionally
// publishes per-link message/byte counters and the running simulated wire
// time into a metrics registry.
type Meter struct {
	localMsgs   metrics.Counter
	localBytes  metrics.Counter
	remoteMsgs  metrics.Counter
	remoteBytes metrics.Counter
	obs         *meterObs
}

// meterObs holds a meter's registry-backed series. All fields are shared
// get-or-create registry metrics, so every meter wired to the same registry
// feeds one aggregate per-link series.
type meterObs struct {
	localMsgs   *metrics.Counter
	localBytes  *metrics.Counter
	remoteMsgs  *metrics.Counter
	remoteBytes *metrics.Counter
	simWireNS   *metrics.Counter
	cm          CostModel
}

// Instrument publishes this meter's traffic into reg: the per-link
// net.{local,remote}_{msgs,bytes} counters, plus net.sim_wire_ns — the
// cumulative simulated wire time, priced per message by cm (each message
// pays its latency plus bytes/bandwidth). Pricing is integer-nanosecond
// arithmetic on deterministic byte counts, so the series is reproducible.
// Call before the meter sees traffic; not synchronized with Record calls.
func (m *Meter) Instrument(reg *metrics.Registry, cm CostModel) {
	m.obs = &meterObs{
		localMsgs:   reg.Counter(metrics.MNetLocalMsgs),
		localBytes:  reg.Counter(metrics.MNetLocalBytes),
		remoteMsgs:  reg.Counter(metrics.MNetRemoteMsgs),
		remoteBytes: reg.Counter(metrics.MNetRemoteBytes),
		simWireNS:   reg.Counter(metrics.MNetSimWire),
		cm:          cm,
	}
}

// RecordLocal notes one local message of the given size.
func (m *Meter) RecordLocal(bytes int64) {
	m.localMsgs.Inc()
	m.localBytes.Add(bytes)
	if o := m.obs; o != nil {
		o.localMsgs.Inc()
		o.localBytes.Add(bytes)
		o.simWireNS.Add(int64(o.cm.LocalTime(1, bytes)))
	}
}

// RecordRemote notes one remote message of the given size.
func (m *Meter) RecordRemote(bytes int64) {
	m.remoteMsgs.Inc()
	m.remoteBytes.Add(bytes)
	if o := m.obs; o != nil {
		o.remoteMsgs.Inc()
		o.remoteBytes.Add(bytes)
		o.simWireNS.Add(int64(o.cm.RemoteTime(1, bytes)))
	}
}

// RecordLocalSpan is RecordLocal plus a simulated wire.sim span: when the
// meter is instrumented (the cost model lives on the obs struct) and sc
// belongs to a sampled batch, the priced local time is recorded under sc so
// the trace shows what this message would have cost on the modeled link.
func (m *Meter) RecordLocalSpan(bytes int64, tr *span.Tracer, sc span.Context) {
	m.RecordLocal(bytes)
	if o := m.obs; o != nil {
		tr.RecordSim(sc, span.NWireSim, o.cm.LocalTime(1, bytes), bytes)
	}
}

// RecordRemoteSpan is RecordRemote plus a simulated wire.sim span priced at
// the modeled inter-machine link.
func (m *Meter) RecordRemoteSpan(bytes int64, tr *span.Tracer, sc span.Context) {
	m.RecordRemote(bytes)
	if o := m.obs; o != nil {
		tr.RecordSim(sc, span.NWireSim, o.cm.RemoteTime(1, bytes), bytes)
	}
}

// Snapshot is a point-in-time copy of a Meter's counters.
type Snapshot struct {
	LocalMsgs, LocalBytes   int64
	RemoteMsgs, RemoteBytes int64
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		LocalMsgs:   m.localMsgs.Value(),
		LocalBytes:  m.localBytes.Value(),
		RemoteMsgs:  m.remoteMsgs.Value(),
		RemoteBytes: m.remoteBytes.Value(),
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.localMsgs.Reset()
	m.localBytes.Reset()
	m.remoteMsgs.Reset()
	m.remoteBytes.Reset()
}

// Sub returns s - prev component-wise, for per-epoch deltas.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		LocalMsgs:   s.LocalMsgs - prev.LocalMsgs,
		LocalBytes:  s.LocalBytes - prev.LocalBytes,
		RemoteMsgs:  s.RemoteMsgs - prev.RemoteMsgs,
		RemoteBytes: s.RemoteBytes - prev.RemoteBytes,
	}
}

// Time converts the snapshot to simulated communication time under cm.
func (s Snapshot) Time(cm CostModel) time.Duration {
	return cm.RemoteTime(s.RemoteMsgs, s.RemoteBytes) + cm.LocalTime(s.LocalMsgs, s.LocalBytes)
}

// RemoteFraction returns the share of bytes that crossed the network.
func (s Snapshot) RemoteFraction() float64 {
	total := s.LocalBytes + s.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(s.RemoteBytes) / float64(total)
}

// String renders a compact summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("local %d msgs/%d B, remote %d msgs/%d B",
		s.LocalMsgs, s.LocalBytes, s.RemoteMsgs, s.RemoteBytes)
}
