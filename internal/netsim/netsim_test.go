package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestDefaultModelValidates(t *testing.T) {
	if err := Default1Gbps().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []CostModel{
		{RemoteBandwidthBps: 0, LocalBandwidthBps: 1},
		{RemoteBandwidthBps: 1, LocalBandwidthBps: -1},
		{RemoteBandwidthBps: 1, LocalBandwidthBps: 1, RemoteLatency: -time.Second},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestRemoteTimeComposition(t *testing.T) {
	cm := CostModel{
		RemoteLatency:      time.Millisecond,
		RemoteBandwidthBps: 1000, // 1000 B/s: 500 bytes = 500ms
		LocalBandwidthBps:  1e9,
	}
	got := cm.RemoteTime(2, 500)
	want := 2*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Errorf("RemoteTime = %v, want %v", got, want)
	}
}

func TestLocalMuchCheaperThanRemote(t *testing.T) {
	cm := Default1Gbps()
	remote := cm.RemoteTime(100, 1<<20)
	local := cm.LocalTime(100, 1<<20)
	if local*10 >= remote {
		t.Errorf("local (%v) should be far cheaper than remote (%v)", local, remote)
	}
}

func TestMeterAndSnapshot(t *testing.T) {
	var m Meter
	m.RecordLocal(100)
	m.RecordLocal(50)
	m.RecordRemote(1000)
	s := m.Snapshot()
	if s.LocalMsgs != 2 || s.LocalBytes != 150 || s.RemoteMsgs != 1 || s.RemoteBytes != 1000 {
		t.Errorf("Snapshot = %+v", s)
	}
	if got := s.RemoteFraction(); got < 0.86 || got > 0.88 {
		t.Errorf("RemoteFraction = %v, want ≈1000/1150", got)
	}
	m.Reset()
	if m.Snapshot() != (Snapshot{}) {
		t.Error("Reset did not zero the meter")
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{LocalMsgs: 10, LocalBytes: 100, RemoteMsgs: 5, RemoteBytes: 50}
	b := Snapshot{LocalMsgs: 4, LocalBytes: 40, RemoteMsgs: 1, RemoteBytes: 10}
	d := a.Sub(b)
	if d != (Snapshot{LocalMsgs: 6, LocalBytes: 60, RemoteMsgs: 4, RemoteBytes: 40}) {
		t.Errorf("Sub = %+v", d)
	}
}

func TestSnapshotTime(t *testing.T) {
	cm := CostModel{
		RemoteLatency:      time.Millisecond,
		RemoteBandwidthBps: 1e6,
		LocalLatency:       time.Microsecond,
		LocalBandwidthBps:  1e9,
	}
	s := Snapshot{LocalMsgs: 1, LocalBytes: 0, RemoteMsgs: 1, RemoteBytes: 0}
	if got := s.Time(cm); got != time.Millisecond+time.Microsecond {
		t.Errorf("Time = %v", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.RecordRemote(10)
				m.RecordLocal(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.RemoteMsgs != 4000 || s.RemoteBytes != 40000 || s.LocalMsgs != 4000 {
		t.Errorf("concurrent Snapshot = %+v", s)
	}
}

func TestEmptySnapshotRemoteFraction(t *testing.T) {
	if (Snapshot{}).RemoteFraction() != 0 {
		t.Error("empty snapshot RemoteFraction should be 0")
	}
	if (Snapshot{}).String() == "" {
		t.Error("String empty")
	}
}
