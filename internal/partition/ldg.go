package partition

import (
	"math/rand"

	"hetkg/internal/kg"
)

// LDG is the Linear Deterministic Greedy streaming partitioner (Stanton &
// Kliot, KDD'12): entities arrive in a stream and each is irrevocably
// assigned to the partition maximizing
//
//	|neighbors already placed there| × (1 − load/capacity)
//
// It uses one pass and O(V) memory, which is how production systems
// partition graphs too large for multilevel algorithms to hold in memory —
// the regime Freebase-86m actually occupies. Quality sits between Random
// and MetisLike; the trade-off is measured by cmd/hetkg-partition.
type LDG struct {
	// Seed shuffles the stream order (stream order matters for LDG).
	Seed int64
	// Slack is the allowed load overshoot (default 0.1).
	Slack float64
	// Passes re-streams the graph this many times, reassigning with the
	// previous pass as context (default 1; 2–3 improve cuts noticeably).
	Passes int
}

// Name implements Partitioner.
func (*LDG) Name() string { return "ldg" }

// Partition implements Partitioner.
func (p *LDG) Partition(g *kg.Graph, k int) (*Result, error) {
	if err := validate(g, k); err != nil {
		return nil, err
	}
	slack := p.Slack
	if slack <= 0 {
		slack = 0.1
	}
	passes := p.Passes
	if passes <= 0 {
		passes = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	capacity := float64(g.NumEntity)/float64(k)*(1+slack) + 1

	part := make([]int32, g.NumEntity)
	for i := range part {
		part[i] = -1
	}
	load := make([]int, k)
	order := rng.Perm(g.NumEntity)
	score := make([]float64, k)

	for pass := 0; pass < passes; pass++ {
		for _, ei := range order {
			e := kg.EntityID(ei)
			// On re-streaming, lift the entity out before re-placing it.
			if part[ei] >= 0 {
				load[part[ei]]--
				part[ei] = -1
			}
			for i := range score {
				score[i] = 0
			}
			for _, ti := range g.IncidentTriples(e) {
				tr := g.Triples[ti]
				other := tr.Head
				if other == e {
					other = tr.Tail
				}
				if q := part[other]; q >= 0 {
					score[q]++
				}
			}
			best, bestScore := 0, -1.0
			for q := 0; q < k; q++ {
				s := (score[q] + 1) * (1 - float64(load[q])/capacity)
				if s > bestScore {
					best, bestScore = q, s
				}
			}
			part[ei] = int32(best)
			load[best]++
		}
	}

	r := &Result{K: k, EntityPart: part}
	assignTriples(g, r)
	return r, nil
}
