package partition

import (
	"encoding/binary"
	"fmt"

	"hetkg/internal/artifact"
	"hetkg/internal/kg"
)

// partVersion versions cached partitionings: bump whenever any partitioner
// algorithm changes, so stale artifacts can never alias current output.
const partVersion = "partition/v1"

// cached wraps a Partitioner with an artifact store: identical (graph,
// partitioner, k) inputs are served from disk instead of re-partitioned.
// Partitioning is the second dominant startup cost after dataset generation
// — the METIS-like scheme does multilevel coarsening plus KL refinement —
// and every process of a multi-process run repeats it identically.
type cached struct {
	inner Partitioner
	store *artifact.Store
}

// Cached wraps p so Partition consults (and fills) st. A nil store returns
// p unchanged. The cache key fingerprints the partitioner's configured
// state (%#v covers name, seed, and tuning fields), the requested k, and
// the graph content, so any semantic change misses rather than aliasing.
func Cached(p Partitioner, st *artifact.Store) Partitioner {
	if st == nil {
		return p
	}
	return &cached{inner: p, store: st}
}

// Name identifies the wrapped algorithm (the cache is invisible in reports).
func (c *cached) Name() string { return c.inner.Name() }

// Partition serves from the store when possible, else delegates and caches.
func (c *cached) Partition(g *kg.Graph, k int) (*Result, error) {
	key := cacheKey(c.inner, g, k)
	var r Result
	if ok, _ := c.store.Get("partition", key, &r); ok {
		if validCached(&r, g, k) {
			return &r, nil
		}
	}
	fresh, err := c.inner.Partition(g, k)
	if err != nil {
		return nil, err
	}
	_ = c.store.Put("partition", key, fresh)
	return fresh, nil
}

// validCached sanity-checks a decoded Result against the request: the CRC
// guards bytes, this guards shape (a foreign-but-well-formed entry can
// never index out of range downstream).
func validCached(r *Result, g *kg.Graph, k int) bool {
	if r.K != k || len(r.EntityPart) != g.NumEntity || len(r.TripleIdx) != k {
		return false
	}
	for _, p := range r.EntityPart {
		if p < 0 || int(p) >= k {
			return false
		}
	}
	return true
}

// cacheKey fingerprints the partitioning inputs. The graph fingerprint
// hashes the full triple stream (12 bytes per triple), not just the counts:
// two different graphs with identical statistics must not share an entry.
func cacheKey(p Partitioner, g *kg.Graph, k int) artifact.Key {
	h := artifact.NewHasher()
	var buf [12]byte
	for _, t := range g.Triples {
		binary.BigEndian.PutUint32(buf[0:4], uint32(t.Head))
		binary.BigEndian.PutUint32(buf[4:8], uint32(t.Relation))
		binary.BigEndian.PutUint32(buf[8:12], uint32(t.Tail))
		h.Write(buf[:])
	}
	return artifact.KeyOf(partVersion,
		fmt.Sprintf("%#v", p), // partitioner type + seed + tuning fields
		fmt.Sprintf("k=%d", k),
		g.Name,
		fmt.Sprintf("%d/%d/%d", g.NumEntity, g.NumRel, len(g.Triples)),
		string(h.Key()))
}
