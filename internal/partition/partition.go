// Package partition divides a knowledge graph across the machines of a
// training cluster. HET-KG (like DGL-KE) partitions entities with METIS so
// that most triples have both endpoints on the same machine, minimizing
// remote embedding pulls (§V "Graph Partitioning").
//
// Three partitioners are provided: Random (the contrast baseline discussed
// in [34]); MetisLike, a from-scratch multilevel scheme — heavy-edge-matching
// coarsening, greedy balanced initial partitioning, and boundary
// Kernighan–Lin refinement — with the same objective as METIS (minimize
// cross-partition triples under a balance constraint); and LDG, the
// one-pass streaming partitioner used when the graph exceeds memory.
package partition

import (
	"fmt"
	"math/rand"

	"hetkg/internal/kg"
)

// Result is an entity partitioning and the induced triple assignment.
type Result struct {
	// K is the number of partitions.
	K int
	// EntityPart[e] is the partition owning entity e's embedding.
	EntityPart []int32
	// TripleIdx[p] lists indices into the source graph's Triples assigned
	// to partition p. A triple is assigned to the partition of its head
	// entity (the DGL-KE convention); its tail may live elsewhere, making
	// it a "cross triple".
	TripleIdx [][]int32
}

// Partitioner computes a Result for a graph.
type Partitioner interface {
	// Name identifies the algorithm for reports.
	Name() string
	// Partition divides g into k parts.
	Partition(g *kg.Graph, k int) (*Result, error)
}

// New returns the partitioner registered under name ("random", "metis", or
// "ldg").
func New(name string, seed int64) (Partitioner, error) {
	switch name {
	case "random":
		return &Random{Seed: seed}, nil
	case "metis", "metislike":
		return &MetisLike{Seed: seed}, nil
	case "ldg", "streaming":
		return &LDG{Seed: seed, Passes: 2}, nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q", name)
	}
}

// assignTriples derives TripleIdx from EntityPart by head-entity ownership.
func assignTriples(g *kg.Graph, r *Result) {
	r.TripleIdx = make([][]int32, r.K)
	for i, t := range g.Triples {
		p := r.EntityPart[t.Head]
		r.TripleIdx[p] = append(r.TripleIdx[p], int32(i))
	}
}

// EdgeCut counts cross triples: triples whose head and tail live on
// different partitions. Every cross triple forces a remote embedding pull
// per iteration that touches it.
func (r *Result) EdgeCut(g *kg.Graph) int {
	cut := 0
	for _, t := range g.Triples {
		if r.EntityPart[t.Head] != r.EntityPart[t.Tail] {
			cut++
		}
	}
	return cut
}

// CutFraction is EdgeCut normalized by the triple count.
func (r *Result) CutFraction(g *kg.Graph) float64 {
	if g.NumTriples() == 0 {
		return 0
	}
	return float64(r.EdgeCut(g)) / float64(g.NumTriples())
}

// Balance returns max partition triple-load divided by the ideal load
// (1.0 = perfectly balanced).
func (r *Result) Balance() float64 {
	total, maxLoad := 0, 0
	for _, idx := range r.TripleIdx {
		total += len(idx)
		if len(idx) > maxLoad {
			maxLoad = len(idx)
		}
	}
	if total == 0 || r.K == 0 {
		return 1
	}
	ideal := float64(total) / float64(r.K)
	if ideal == 0 {
		return 1
	}
	return float64(maxLoad) / ideal
}

// Subgraphs materializes one per-partition subgraph (global ids preserved).
func (r *Result) Subgraphs(g *kg.Graph) []*kg.Graph {
	out := make([]*kg.Graph, r.K)
	for p := 0; p < r.K; p++ {
		out[p] = g.Subgraph(fmt.Sprintf("%s-part%d", g.Name, p), r.TripleIdx[p])
	}
	return out
}

// validate rejects impossible requests shared by all partitioners.
func validate(g *kg.Graph, k int) error {
	if k < 1 {
		return fmt.Errorf("partition: k = %d < 1", k)
	}
	if k > g.NumEntity {
		return fmt.Errorf("partition: k = %d exceeds %d entities", k, g.NumEntity)
	}
	return nil
}

// Random assigns every entity to a uniformly random partition. It is the
// baseline that makes METIS's locality benefit measurable.
type Random struct {
	Seed int64
}

// Name implements Partitioner.
func (*Random) Name() string { return "random" }

// Partition implements Partitioner.
func (p *Random) Partition(g *kg.Graph, k int) (*Result, error) {
	if err := validate(g, k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	r := &Result{K: k, EntityPart: make([]int32, g.NumEntity)}
	for e := range r.EntityPart {
		r.EntityPart[e] = int32(rng.Intn(k))
	}
	assignTriples(g, r)
	return r, nil
}
