package partition

import (
	"math/rand"
	"sort"

	"hetkg/internal/kg"
)

// MetisLike is a from-scratch multilevel k-way partitioner in the style of
// METIS (Karypis & Kumar): the entity graph is repeatedly coarsened by
// heavy-edge matching, the coarsest graph is partitioned greedily under a
// balance constraint, and the partition is projected back up with boundary
// Kernighan–Lin refinement at every level.
type MetisLike struct {
	// Seed drives matching order and tie-breaking.
	Seed int64
	// Imbalance is the allowed load slack (default 0.05 = 5%).
	Imbalance float64
	// CoarsestSize stops coarsening once the graph is this small
	// (default max(4k, 64) nodes).
	CoarsestSize int
	// RefinePasses is the number of KL passes per level (default 3).
	RefinePasses int
}

// Name implements Partitioner.
func (*MetisLike) Name() string { return "metis" }

// level is one graph in the coarsening hierarchy. Nodes carry weights (how
// many original entities they aggregate); edges carry multiplicities (how
// many triples connect the two sides).
type level struct {
	nodeW []int64
	adj   []map[int32]int64 // adj[u][v] = edge weight
	// coarseOf maps this level's nodes to the coarser level's nodes
	// (filled when the next level is built).
	coarseOf []int32
}

// Partition implements Partitioner.
func (m *MetisLike) Partition(g *kg.Graph, k int) (*Result, error) {
	if err := validate(g, k); err != nil {
		return nil, err
	}
	imbalance := m.Imbalance
	if imbalance <= 0 {
		imbalance = 0.05
	}
	coarsest := m.CoarsestSize
	if coarsest <= 0 {
		coarsest = 4 * k
		if coarsest < 64 {
			coarsest = 64
		}
	}
	passes := m.RefinePasses
	if passes <= 0 {
		passes = 3
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Level 0: the entity graph.
	base := &level{
		nodeW: make([]int64, g.NumEntity),
		adj:   make([]map[int32]int64, g.NumEntity),
	}
	for i := range base.adj {
		base.adj[i] = make(map[int32]int64)
	}
	for e := 0; e < g.NumEntity; e++ {
		base.nodeW[e] = 1
	}
	for _, t := range g.Triples {
		if t.Head == t.Tail {
			continue
		}
		base.adj[t.Head][int32(t.Tail)]++
		base.adj[t.Tail][int32(t.Head)]++
	}

	// Coarsening phase.
	levels := []*level{base}
	for {
		cur := levels[len(levels)-1]
		if len(cur.nodeW) <= coarsest {
			break
		}
		next, shrunk := coarsen(cur, rng)
		if !shrunk {
			break
		}
		levels = append(levels, next)
	}

	// Initial partition on the coarsest level.
	top := levels[len(levels)-1]
	part := greedyInitial(top, k, imbalance, rng)
	refine(top, part, k, imbalance, passes)

	// Uncoarsening with refinement.
	for li := len(levels) - 2; li >= 0; li-- {
		cur := levels[li]
		finer := make([]int32, len(cur.nodeW))
		for v := range finer {
			finer[v] = part[cur.coarseOf[v]]
		}
		part = finer
		refine(cur, part, k, imbalance, passes)
	}

	r := &Result{K: k, EntityPart: part}
	assignTriples(g, r)
	return r, nil
}

// coarsen performs one round of heavy-edge matching and contraction. It
// returns the coarser level and whether meaningful shrinkage happened.
func coarsen(cur *level, rng *rand.Rand) (*level, bool) {
	n := len(cur.nodeW)
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, ui := range order {
		u := int32(ui)
		if match[u] != -1 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for v, w := range cur.adj[u] {
			if match[v] != -1 || v == u {
				continue
			}
			// Tie-break on vertex id: map iteration order must not leak
			// into the partition (training reproducibility depends on it).
			if w > bestW || (w == bestW && v < best) {
				best, bestW = v, w
			}
		}
		if best == -1 {
			match[u] = u // matched with itself
		} else {
			match[u] = best
			match[best] = u
		}
	}
	// Number coarse nodes.
	cur.coarseOf = make([]int32, n)
	for i := range cur.coarseOf {
		cur.coarseOf[i] = -1
	}
	var nc int32
	for u := int32(0); u < int32(n); u++ {
		if cur.coarseOf[u] != -1 {
			continue
		}
		cur.coarseOf[u] = nc
		if v := match[u]; v != u && v >= 0 {
			cur.coarseOf[v] = nc
		}
		nc++
	}
	if int(nc) > n*9/10 { // shrinking too slowly: stop coarsening
		return nil, false
	}
	next := &level{
		nodeW: make([]int64, nc),
		adj:   make([]map[int32]int64, nc),
	}
	for i := range next.adj {
		next.adj[i] = make(map[int32]int64)
	}
	for u := int32(0); u < int32(n); u++ {
		cu := cur.coarseOf[u]
		next.nodeW[cu] += cur.nodeW[u]
		for v, w := range cur.adj[u] {
			cv := cur.coarseOf[v]
			if cu != cv {
				next.adj[cu][cv] += w
			}
		}
	}
	return next, true
}

// greedyInitial assigns coarse nodes to partitions in descending weight
// order, choosing for each node the partition that maximizes attachment
// (edge weight already placed there) subject to the load cap.
func greedyInitial(l *level, k int, imbalance float64, rng *rand.Rand) []int32 {
	n := len(l.nodeW)
	var totalW int64
	for _, w := range l.nodeW {
		totalW += w
	}
	cap64 := int64(float64(totalW)/float64(k)*(1+imbalance)) + 1
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(i, j int) bool { return l.nodeW[order[i]] > l.nodeW[order[j]] })

	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	load := make([]int64, k)
	for _, u := range order {
		gain := make([]int64, k)
		for v, w := range l.adj[u] {
			if p := part[v]; p >= 0 {
				gain[p] += w
			}
		}
		best, bestScore := -1, int64(-1)
		for p := 0; p < k; p++ {
			if load[p]+l.nodeW[u] > cap64 {
				continue
			}
			// Prefer attachment, break ties by lighter load.
			score := gain[p]*1024 - load[p]
			if best == -1 || score > bestScore {
				best, bestScore = p, score
			}
		}
		if best == -1 { // everything full: least-loaded wins regardless of cap
			best = 0
			for p := 1; p < k; p++ {
				if load[p] < load[best] {
					best = p
				}
			}
		}
		part[u] = int32(best)
		load[best] += l.nodeW[u]
	}
	return part
}

// refine runs boundary Kernighan–Lin passes: move nodes to the partition
// with the highest cut-gain when the move keeps the balance constraint.
func refine(l *level, part []int32, k int, imbalance float64, passes int) {
	var totalW int64
	for _, w := range l.nodeW {
		totalW += w
	}
	cap64 := int64(float64(totalW)/float64(k)*(1+imbalance)) + 1
	load := make([]int64, k)
	for u, w := range l.nodeW {
		load[part[u]] += w
	}
	gain := make([]int64, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for u := range l.nodeW {
			pu := part[u]
			if len(l.adj[u]) == 0 {
				continue
			}
			for p := range gain {
				gain[p] = 0
			}
			boundary := false
			for v, w := range l.adj[u] {
				gain[part[v]] += w
				if part[v] != pu {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			best, bestGain := pu, int64(0)
			for p := 0; p < k; p++ {
				if int32(p) == pu {
					continue
				}
				g := gain[p] - gain[pu]
				if g > bestGain && load[p]+l.nodeW[u] <= cap64 {
					best, bestGain = int32(p), g
				}
			}
			if best != pu {
				load[pu] -= l.nodeW[u]
				load[best] += l.nodeW[u]
				part[u] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
