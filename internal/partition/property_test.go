package partition

import (
	"testing"
	"testing/quick"

	"hetkg/internal/kg"
)

// Invariants every partitioner must satisfy on arbitrary graphs:
//  1. every entity is assigned to a partition in [0, k);
//  2. the triple assignment conserves all triples exactly once;
//  3. the edge cut never exceeds the triple count.
func TestPartitionerInvariants(t *testing.T) {
	build := func(raw []uint8, k int) (*kg.Graph, int) {
		if len(raw) < 6 {
			raw = append(raw, 1, 2, 3, 4, 5, 6)
		}
		n := 12
		var triples []kg.Triple
		for i := 0; i+2 < len(raw); i += 3 {
			triples = append(triples, kg.Triple{
				Head:     kg.EntityID(raw[i] % uint8(n)),
				Relation: kg.RelationID(raw[i+1] % 3),
				Tail:     kg.EntityID(raw[i+2] % uint8(n)),
			})
		}
		return kg.MustNewGraph("prop", n, 3, triples), 1 + k%4
	}
	for _, name := range []string{"random", "metis", "ldg"} {
		name := name
		f := func(raw []uint8, kraw int) bool {
			g, k := build(raw, abs(kraw))
			p, err := New(name, 7)
			if err != nil {
				return false
			}
			r, err := p.Partition(g, k)
			if err != nil {
				return false
			}
			if len(r.EntityPart) != g.NumEntity {
				return false
			}
			for _, pt := range r.EntityPart {
				if pt < 0 || int(pt) >= k {
					return false
				}
			}
			total := 0
			seen := map[int32]bool{}
			for _, idx := range r.TripleIdx {
				for _, ti := range idx {
					if seen[ti] {
						return false // triple assigned twice
					}
					seen[ti] = true
					total++
				}
			}
			if total != g.NumTriples() {
				return false
			}
			return r.EdgeCut(g) <= g.NumTriples()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
