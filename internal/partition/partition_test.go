package partition

import (
	"math/rand"
	"testing"

	"hetkg/internal/dataset"
	"hetkg/internal/kg"
)

// clusteredGraph builds a graph with c dense clusters and sparse bridges —
// the structure where a min-cut partitioner must beat random decisively.
func clusteredGraph(t *testing.T, c, perCluster int, seed int64) *kg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := c * perCluster
	var triples []kg.Triple
	seen := map[kg.Triple]bool{}
	add := func(h, tl int) {
		if h == tl {
			return
		}
		tr := kg.Triple{Head: kg.EntityID(h), Relation: 0, Tail: kg.EntityID(tl)}
		if !seen[tr] {
			seen[tr] = true
			triples = append(triples, tr)
		}
	}
	for ci := 0; ci < c; ci++ {
		base := ci * perCluster
		for e := 0; e < perCluster*6; e++ { // dense intra-cluster edges
			add(base+rng.Intn(perCluster), base+rng.Intn(perCluster))
		}
	}
	for b := 0; b < c; b++ { // a handful of bridges
		add(b*perCluster, ((b+1)%c)*perCluster)
	}
	return kg.MustNewGraph("clustered", n, 1, triples)
}

func TestValidate(t *testing.T) {
	g := clusteredGraph(t, 2, 10, 1)
	for _, p := range []Partitioner{&Random{Seed: 1}, &MetisLike{Seed: 1}} {
		if _, err := p.Partition(g, 0); err == nil {
			t.Errorf("%s accepted k=0", p.Name())
		}
		if _, err := p.Partition(g, g.NumEntity+1); err == nil {
			t.Errorf("%s accepted k > entities", p.Name())
		}
	}
}

func TestRandomPartitionCoversAllTriples(t *testing.T) {
	g := clusteredGraph(t, 3, 20, 2)
	r, err := (&Random{Seed: 3}).Partition(g, 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := 0
	for _, idx := range r.TripleIdx {
		total += len(idx)
	}
	if total != g.NumTriples() {
		t.Errorf("assigned %d triples, graph has %d", total, g.NumTriples())
	}
	for e, p := range r.EntityPart {
		if p < 0 || int(p) >= 4 {
			t.Fatalf("entity %d assigned to invalid partition %d", e, p)
		}
	}
}

func TestMetisBeatsRandomOnClusteredGraph(t *testing.T) {
	g := clusteredGraph(t, 4, 50, 4)
	randRes, err := (&Random{Seed: 5}).Partition(g, 4)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	metisRes, err := (&MetisLike{Seed: 5}).Partition(g, 4)
	if err != nil {
		t.Fatalf("metis: %v", err)
	}
	rc, mc := randRes.CutFraction(g), metisRes.CutFraction(g)
	if mc >= rc/2 {
		t.Errorf("metis cut %.3f not well below random cut %.3f", mc, rc)
	}
	if mc > 0.15 {
		t.Errorf("metis cut %.3f too high for a 4-cluster graph", mc)
	}
}

func TestMetisBalance(t *testing.T) {
	g := dataset.FB15kLike(dataset.Tiny, 6)
	r, err := (&MetisLike{Seed: 6}).Partition(g, 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	// Triple load is assigned by head entity; on a skewed graph allow
	// generous slack, but no partition may be empty or hold everything.
	if b := r.Balance(); b > 2.5 {
		t.Errorf("balance = %.2f, want ≤ 2.5", b)
	}
	for p, idx := range r.TripleIdx {
		if len(idx) == 0 {
			t.Errorf("partition %d is empty", p)
		}
	}
}

func TestMetisOnSkewedRealisticGraph(t *testing.T) {
	g := dataset.FB15kLike(dataset.Tiny, 7)
	randRes, _ := (&Random{Seed: 7}).Partition(g, 4)
	metisRes, err := (&MetisLike{Seed: 7}).Partition(g, 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if metisRes.CutFraction(g) >= randRes.CutFraction(g) {
		t.Errorf("metis cut %.3f not below random %.3f on skewed graph",
			metisRes.CutFraction(g), randRes.CutFraction(g))
	}
}

func TestK1IsNoCut(t *testing.T) {
	g := clusteredGraph(t, 2, 10, 8)
	for _, p := range []Partitioner{&Random{Seed: 1}, &MetisLike{Seed: 1}} {
		r, err := p.Partition(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if cut := r.EdgeCut(g); cut != 0 {
			t.Errorf("%s k=1 cut = %d, want 0", p.Name(), cut)
		}
		if len(r.TripleIdx[0]) != g.NumTriples() {
			t.Errorf("%s k=1 did not keep all triples", p.Name())
		}
	}
}

func TestSubgraphsPreserveUniverse(t *testing.T) {
	g := clusteredGraph(t, 2, 20, 9)
	r, _ := (&MetisLike{Seed: 9}).Partition(g, 2)
	subs := r.Subgraphs(g)
	if len(subs) != 2 {
		t.Fatalf("got %d subgraphs, want 2", len(subs))
	}
	total := 0
	for _, s := range subs {
		total += s.NumTriples()
		if s.NumEntity != g.NumEntity || s.NumRel != g.NumRel {
			t.Error("subgraph universe changed")
		}
	}
	if total != g.NumTriples() {
		t.Errorf("subgraphs hold %d triples, want %d", total, g.NumTriples())
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := clusteredGraph(t, 3, 30, 10)
	a, _ := (&MetisLike{Seed: 11}).Partition(g, 3)
	b, _ := (&MetisLike{Seed: 11}).Partition(g, 3)
	for i := range a.EntityPart {
		if a.EntityPart[i] != b.EntityPart[i] {
			t.Fatal("MetisLike not deterministic for a fixed seed")
		}
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"random", "metis"} {
		p, err := New(name, 1)
		if err != nil || p == nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := New("kahip", 1); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestSelfLoopsDoNotCrashMetis(t *testing.T) {
	triples := []kg.Triple{
		{Head: 0, Relation: 0, Tail: 0},
		{Head: 0, Relation: 0, Tail: 1},
		{Head: 1, Relation: 0, Tail: 2},
		{Head: 2, Relation: 0, Tail: 3},
	}
	g := kg.MustNewGraph("loops", 4, 1, triples)
	if _, err := (&MetisLike{Seed: 1}).Partition(g, 2); err != nil {
		t.Fatalf("Partition with self-loop: %v", err)
	}
}

func TestBalanceOfEmptyResult(t *testing.T) {
	r := &Result{K: 2, TripleIdx: make([][]int32, 2)}
	if b := r.Balance(); b != 1 {
		t.Errorf("empty Balance = %v, want 1", b)
	}
}

func TestLDGBeatsRandomOnClusteredGraph(t *testing.T) {
	g := clusteredGraph(t, 4, 50, 15)
	randRes, _ := (&Random{Seed: 15}).Partition(g, 4)
	ldgRes, err := (&LDG{Seed: 15, Passes: 2}).Partition(g, 4)
	if err != nil {
		t.Fatalf("LDG: %v", err)
	}
	rc, lc := randRes.CutFraction(g), ldgRes.CutFraction(g)
	if lc >= rc {
		t.Errorf("LDG cut %.3f not below random %.3f", lc, rc)
	}
}

func TestLDGBalance(t *testing.T) {
	g := dataset.FB15kLike(dataset.Tiny, 16)
	r, err := (&LDG{Seed: 16}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// LDG enforces a hard-ish entity capacity; entity balance within slack.
	counts := make([]int, 4)
	for _, p := range r.EntityPart {
		counts[p]++
	}
	ideal := float64(g.NumEntity) / 4
	for p, c := range counts {
		if float64(c) > ideal*1.25 {
			t.Errorf("partition %d holds %d entities, cap ≈ %.0f", p, c, ideal*1.1)
		}
	}
	for e, p := range r.EntityPart {
		if p < 0 || p >= 4 {
			t.Fatalf("entity %d unassigned (%d)", e, p)
		}
	}
}

func TestLDGDeterministic(t *testing.T) {
	g := clusteredGraph(t, 3, 30, 17)
	a, _ := (&LDG{Seed: 18, Passes: 2}).Partition(g, 3)
	b, _ := (&LDG{Seed: 18, Passes: 2}).Partition(g, 3)
	for i := range a.EntityPart {
		if a.EntityPart[i] != b.EntityPart[i] {
			t.Fatal("LDG not deterministic")
		}
	}
}

func TestLDGMultiplePassesImproveCut(t *testing.T) {
	g := clusteredGraph(t, 4, 40, 19)
	one, _ := (&LDG{Seed: 19, Passes: 1}).Partition(g, 4)
	three, _ := (&LDG{Seed: 19, Passes: 3}).Partition(g, 4)
	if three.CutFraction(g) > one.CutFraction(g)+0.02 {
		t.Errorf("3-pass LDG cut %.3f worse than 1-pass %.3f", three.CutFraction(g), one.CutFraction(g))
	}
}

func TestNewLDGByName(t *testing.T) {
	if p, err := New("ldg", 1); err != nil || p.Name() != "ldg" {
		t.Errorf("New(ldg) = %v, %v", p, err)
	}
}
