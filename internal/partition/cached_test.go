package partition

import (
	"reflect"
	"testing"

	"hetkg/internal/artifact"
	"hetkg/internal/dataset"
)

func TestCachedMatchesFresh(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.FB15kLike(dataset.Tiny, 42)
	for _, name := range []string{"metis", "random", "ldg"} {
		t.Run(name, func(t *testing.T) {
			fresh, err := New(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Partition(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			wrapped := Cached(must(New(name, 42)), st)
			if wrapped.Name() != name && name != "metis" && name != "ldg" {
				t.Fatalf("Cached changed the reported name to %q", wrapped.Name())
			}
			cold, err := wrapped.Partition(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			hitsBefore := st.Hits()
			warm, err := wrapped.Partition(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			if st.Hits() != hitsBefore+1 {
				t.Fatalf("warm Partition did not hit the cache (hits %d -> %d)",
					hitsBefore, st.Hits())
			}
			if !reflect.DeepEqual(cold.EntityPart, want.EntityPart) {
				t.Fatal("cold cached partition differs from fresh")
			}
			if !reflect.DeepEqual(warm.EntityPart, cold.EntityPart) ||
				warm.K != cold.K {
				t.Fatal("warm cached partition differs from cold")
			}
			// TripleIdx may gob-decode empty slices as nil; compare content.
			if len(warm.TripleIdx) != len(cold.TripleIdx) {
				t.Fatal("TripleIdx length changed through the cache")
			}
			for p := range warm.TripleIdx {
				if len(warm.TripleIdx[p]) != len(cold.TripleIdx[p]) {
					t.Fatalf("partition %d triple list changed through the cache", p)
				}
				for i := range warm.TripleIdx[p] {
					if warm.TripleIdx[p][i] != cold.TripleIdx[p][i] {
						t.Fatalf("partition %d triple %d changed through the cache", p, i)
					}
				}
			}
		})
	}
}

func TestCachedKeySeparation(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.FB15kLike(dataset.Tiny, 42)
	p := Cached(must(New("metis", 42)), st)
	if _, err := p.Partition(g, 4); err != nil {
		t.Fatal(err)
	}

	// Different k must miss.
	if _, err := p.Partition(g, 2); err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 0 {
		t.Fatal("k=2 aliased the k=4 entry")
	}
	// Different partitioner seed must miss.
	p43 := Cached(must(New("metis", 43)), st)
	if _, err := p43.Partition(g, 4); err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 0 {
		t.Fatal("seed 43 aliased the seed 42 entry")
	}
	// Different graph content (same sizes, different seed) must miss.
	g2 := dataset.FB15kLike(dataset.Tiny, 99)
	if _, err := p.Partition(g2, 4); err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 0 {
		t.Fatal("a different graph aliased an existing entry")
	}
}

func TestCachedNilStore(t *testing.T) {
	inner := must(New("metis", 42))
	if got := Cached(inner, nil); got != inner {
		t.Fatal("Cached(nil store) must return the partitioner unchanged")
	}
}

func must(p Partitioner, err error) Partitioner {
	if err != nil {
		panic(err)
	}
	return p
}
