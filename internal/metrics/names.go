package metrics

// Canonical registry metric names. Every subsystem registers under these
// constants so a run's registry — and therefore its timeline and the live
// introspection endpoint — carries one stable, documented vocabulary.
// scripts/check.sh enforces that each name listed here is documented in
// EXPERIMENTS.md's "metric → paper figure" table.
const (
	// MTrainIterations counts processed mini-batches across all workers.
	MTrainIterations = "train.iterations"
	// MTrainPairs counts scored (positive, negative) pairs.
	MTrainPairs = "train.pairs"
	// MTrainLoss is the mean pair loss of the most recent batch.
	MTrainLoss = "train.loss"
	// MTrainEpoch is the current epoch (set at timeline emission).
	MTrainEpoch = "train.epoch"
	// MTrainCompWall is the accumulated wall-clock gradient-computation
	// time (timer; excluded from timelines).
	MTrainCompWall = "train.comp_wall"

	// MCacheHits counts hot-embedding-table hits across all workers.
	MCacheHits = "cache.hits"
	// MCacheMisses counts hot-embedding-table misses (cold or stale).
	MCacheMisses = "cache.misses"
	// MCacheHitRatio is hits/(hits+misses), set at timeline emission.
	MCacheHitRatio = "cache.hit_ratio"
	// MCacheEvictedRows counts rows dropped by table rebuilds (DPS).
	MCacheEvictedRows = "cache.evicted_rows"
	// MCacheRefreshRows counts rows pulled by Build/Refresh — the
	// construction-traffic side of the staleness trade-off.
	MCacheRefreshRows = "cache.refresh_rows"
	// MCacheStaleness is the histogram of row ages (iterations since last
	// synchronization) observed at cache hits.
	MCacheStaleness = "cache.staleness"

	// MPSPullRPCs counts parameter-server pull round trips.
	MPSPullRPCs = "ps.pull_rpcs"
	// MPSPushRPCs counts parameter-server push requests.
	MPSPushRPCs = "ps.push_rpcs"
	// MPSPullRows counts embedding rows fetched from the PS.
	MPSPullRows = "ps.pull_rows"
	// MPSPushRows counts gradient rows pushed to the PS.
	MPSPushRows = "ps.push_rows"
	// MPSBytesTx counts wire bytes sent to the PS (pull requests and push
	// payloads), priced by the transport's size accounting.
	MPSBytesTx = "ps.bytes_tx"
	// MPSBytesRx counts wire bytes received from the PS (pull responses).
	MPSBytesRx = "ps.bytes_rx"

	// MPSCodecBytesRaw counts pre-codec payload bytes (4 per float32 value
	// crossing the transport in either direction), the baseline the codec
	// savings are measured against.
	MPSCodecBytesRaw = "ps.codec.bytes_raw"
	// MPSCodecBytesWire counts post-codec payload bytes — what the
	// negotiated wire codec actually ships. bytes_raw/bytes_wire is the
	// compression ratio.
	MPSCodecBytesWire = "ps.codec.bytes_wire"
	// MPSCodecRowsDelta counts pull rows that were delta-encoded against
	// the link's cached version (vs sent full).
	MPSCodecRowsDelta = "ps.codec.rows_delta"
	// MPSCodecRowsTopkDropped counts gradient coordinates zeroed by the
	// top-k sparsifier into the error-feedback buffer (re-sent later).
	MPSCodecRowsTopkDropped = "ps.codec.rows_topk_dropped"

	// MPSLinkRetries counts RPC attempts re-issued after a transport-level
	// failure (the first attempt of each call is not a retry).
	MPSLinkRetries = "ps.link.retries"
	// MPSLinkReconnects counts successful re-dials of a previously
	// connected shard link (each resets the link's delta-codec base state).
	MPSLinkReconnects = "ps.link.reconnects"
	// MPSLinkFailures counts failed RPC/dial attempts on shard links
	// (every failure, whether or not a retry later succeeded).
	MPSLinkFailures = "ps.link.failures"
	// MPSLinkDeadlineExceeded counts link attempt failures caused by the
	// per-RPC deadline (a subset of ps.link.failures; a stalled — not
	// dead — shard shows up here).
	MPSLinkDeadlineExceeded = "ps.link.deadline_exceeded"
	// MPSLinkBreakerTrips counts circuit-breaker transitions from closed
	// to open (consecutive-failure threshold reached).
	MPSLinkBreakerTrips = "ps.link.breaker_trips"
	// MPSLinkBreakerOpen is the number of shard links currently behind an
	// open (or half-open) circuit breaker (gauge; nonzero means the
	// process is running degraded or stalling on a dead shard).
	MPSLinkBreakerOpen = "ps.link.breaker_open"

	// MNetLocalMsgs counts shared-memory (co-located) messages.
	MNetLocalMsgs = "net.local_msgs"
	// MNetLocalBytes counts shared-memory bytes.
	MNetLocalBytes = "net.local_bytes"
	// MNetRemoteMsgs counts inter-machine messages.
	MNetRemoteMsgs = "net.remote_msgs"
	// MNetRemoteBytes counts inter-machine bytes.
	MNetRemoteBytes = "net.remote_bytes"
	// MNetSimWire accumulates simulated wire nanoseconds, priced
	// per message by the netsim cost model.
	MNetSimWire = "net.sim_wire_ns"

	// MPSServerPulls counts pull requests served by a PS shard.
	MPSServerPulls = "ps.server.pulls"
	// MPSServerPushes counts push requests served by a PS shard.
	MPSServerPushes = "ps.server.pushes"
	// MPSServerRowsPulled counts rows a shard served to pulls.
	MPSServerRowsPulled = "ps.server.rows_pulled"
	// MPSServerRowsPushed counts gradient rows a shard applied.
	MPSServerRowsPushed = "ps.server.rows_pushed"
	// MPSTCPConns counts accepted TCP transport connections.
	MPSTCPConns = "ps.tcp.conns"
	// MPSTCPRxBytes counts bytes read from TCP transport connections.
	MPSTCPRxBytes = "ps.tcp.rx_bytes"
	// MPSTCPTxBytes counts bytes written to TCP transport connections.
	MPSTCPTxBytes = "ps.tcp.tx_bytes"

	// MCachePolicyPrefix prefixes the per-policy replay metrics
	// cache.policy.<name>.{hits,misses,evictions} registered by
	// cache.ReplayObserved for the Table VI policy study.
	MCachePolicyPrefix = "cache.policy."

	// MServeRequests counts query-server API requests across all endpoints.
	MServeRequests = "serve.requests"
	// MServeErrors counts API requests rejected with an error status.
	MServeErrors = "serve.errors"
	// MServeLatencyScore is the /v1/score service-time histogram (ns).
	MServeLatencyScore = "serve.latency.score_ns"
	// MServeLatencyPredict is the /v1/predict service-time histogram (ns).
	MServeLatencyPredict = "serve.latency.predict_ns"
	// MServeLatencyNeighbors is the /v1/neighbors service-time histogram (ns).
	MServeLatencyNeighbors = "serve.latency.neighbors_ns"
	// MServeCacheHits counts query rows served from the hot tier.
	MServeCacheHits = "serve.cache.hits"
	// MServeCacheMisses counts query rows served from the cold table.
	MServeCacheMisses = "serve.cache.misses"
	// MServeCacheHitRatio is hits/(hits+misses), refreshed at each hot-set
	// rebuild.
	MServeCacheHitRatio = "serve.cache.hit_ratio"
	// MServeCachePromotedRows counts rows copied into the hot tier by
	// rebuilds.
	MServeCachePromotedRows = "serve.cache.promoted_rows"
	// MServeCacheRebuilds counts hot-set rebuilds (promotion passes).
	MServeCacheRebuilds = "serve.cache.rebuilds"
	// MServeBatches counts candidate sweeps run by the prediction batcher.
	MServeBatches = "serve.batches"
	// MServeBatchSize is the histogram of predictions coalesced per sweep.
	MServeBatchSize = "serve.batch_size"

	// MClusterWorkers is the coordinator's count of live registered worker
	// processes (gauge, refreshed on every membership RPC).
	MClusterWorkers = "cluster.workers"
	// MClusterPartsUnassigned is the coordinator's count of partitions with
	// work remaining but no live owner (gauge; nonzero between a worker
	// failure and the next rebalance-carrying heartbeat).
	MClusterPartsUnassigned = "cluster.partitions_unassigned"
	// MClusterHeartbeats counts heartbeat RPCs the coordinator received.
	MClusterHeartbeats = "cluster.heartbeats"
	// MClusterWorkerFailures counts workers expired by heartbeat timeout
	// (crashes as seen by the coordinator; graceful leaves do not count).
	MClusterWorkerFailures = "cluster.worker_failures"
	// MClusterReassigns counts partition ownership moves performed by the
	// coordinator (cold-start spreading plus post-failure adoption).
	MClusterReassigns = "cluster.reassignments"

	// MFleetProcesses is the coordinator's count of processes that have ever
	// shipped a telemetry report (gauge; includes processes that later died).
	MFleetProcesses = "fleet.processes"
	// MFleetReports counts telemetry reports the fleet aggregator ingested.
	MFleetReports = "fleet.reports"
	// MFleetAlertsActive is the number of currently active health alerts
	// (gauge, refreshed on every rule evaluation).
	MFleetAlertsActive = "fleet.alerts_active"
	// MFleetAlertsTotal counts alert activations since the coordinator
	// started (debounced transitions, not raw rule breaches).
	MFleetAlertsTotal = "fleet.alerts_total"
	// MFleetStragglers is the number of workers currently flagged by the
	// straggler rule (gauge; a subset of fleet.alerts_active).
	MFleetStragglers = "fleet.stragglers"

	// MClusterCkptWrites counts partition progress snapshots a worker wrote.
	MClusterCkptWrites = "cluster.ckpt_writes"
	// MClusterCkptResumes counts partitions a worker adopted mid-run and
	// resumed from a progress snapshot or coordinator hint.
	MClusterCkptResumes = "cluster.ckpt_resumes"
	// MClusterCkptCorrupt counts progress snapshots rejected as corrupt or
	// truncated at resume (the worker falls back to the coordinator's hint).
	MClusterCkptCorrupt = "cluster.ckpt_corrupt"

	// MTrainDegradedBatches counts batches that trained through degraded
	// mode (at least one shard link down, rows served stale from the cache
	// and/or pushes buffered).
	MTrainDegradedBatches = "train.degraded.batches"
	// MTrainDegradedStaleRows counts rows served from the cache within the
	// degraded staleness bound while their shard link was down.
	MTrainDegradedStaleRows = "train.degraded.stale_rows"
	// MTrainDegradedBufferedRows counts gradient rows buffered (coalesced
	// by key) because their shard link was down at push time.
	MTrainDegradedBufferedRows = "train.degraded.buffered_rows"
	// MTrainDegradedReplayedRows counts buffered gradient rows successfully
	// replayed to their shard after the link recovered.
	MTrainDegradedReplayedRows = "train.degraded.replayed_rows"
)
