// Package metrics provides the lightweight instrumentation the experiment
// harness reads: atomic counters, hit ratios, and computation/communication
// time breakdowns (the quantities behind the paper's Table I, Fig. 7, and
// Fig. 8 hit-ratio plots).
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically adjustable atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Ratio tracks a hits/total pair, e.g. cache hit ratio.
type Ratio struct {
	Hits  Counter
	Total Counter
}

// Hit records one hit (which is also one access).
func (r *Ratio) Hit() {
	r.Hits.Inc()
	r.Total.Inc()
}

// Miss records one miss.
func (r *Ratio) Miss() { r.Total.Inc() }

// Value returns hits/total, or 0 when nothing was recorded.
func (r *Ratio) Value() float64 {
	t := r.Total.Value()
	if t == 0 {
		return 0
	}
	return float64(r.Hits.Value()) / float64(t)
}

// Reset zeroes both counters.
func (r *Ratio) Reset() {
	r.Hits.Reset()
	r.Total.Reset()
}

// Breakdown accumulates the two time components of distributed training:
// local computation (measured wall-clock) and communication (simulated from
// metered traffic; see internal/netsim).
type Breakdown struct {
	compNS atomic.Int64
	commNS atomic.Int64
}

// AddComp records computation time.
func (b *Breakdown) AddComp(d time.Duration) { b.compNS.Add(int64(d)) }

// AddComm records communication time.
func (b *Breakdown) AddComm(d time.Duration) { b.commNS.Add(int64(d)) }

// Comp returns accumulated computation time.
func (b *Breakdown) Comp() time.Duration { return time.Duration(b.compNS.Load()) }

// Comm returns accumulated communication time.
func (b *Breakdown) Comm() time.Duration { return time.Duration(b.commNS.Load()) }

// Total returns Comp + Comm.
func (b *Breakdown) Total() time.Duration { return b.Comp() + b.Comm() }

// CommFraction returns Comm/Total, the paper's Table I statistic.
func (b *Breakdown) CommFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Comm()) / float64(t)
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() {
	b.compNS.Store(0)
	b.commNS.Store(0)
}

// String renders "comp=… comm=… (x% comm)".
func (b *Breakdown) String() string {
	return fmt.Sprintf("comp=%v comm=%v (%.0f%% comm)", b.Comp().Round(time.Millisecond),
		b.Comm().Round(time.Millisecond), 100*b.CommFraction())
}

// EpochStat is one epoch's record in a training run, the raw material of
// the paper's convergence figures (Fig. 5, Fig. 9).
type EpochStat struct {
	Epoch    int
	Loss     float64
	MRR      float64
	Comp     time.Duration
	Comm     time.Duration
	HitRatio float64
	// CumTime is total training time (comp+comm) through this epoch.
	CumTime time.Duration
}

// Total returns the epoch's comp+comm time.
func (e EpochStat) Total() time.Duration { return e.Comp + e.Comm }
