package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d, want 0", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Errorf("empty Ratio = %v, want 0", r.Value())
	}
	r.Hit()
	r.Hit()
	r.Miss()
	r.Miss()
	if got := r.Value(); got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	r.Reset()
	if r.Value() != 0 || r.Total.Value() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.AddComp(3 * time.Second)
	b.AddComm(time.Second)
	if b.Total() != 4*time.Second {
		t.Errorf("Total = %v, want 4s", b.Total())
	}
	if got := b.CommFraction(); got != 0.25 {
		t.Errorf("CommFraction = %v, want 0.25", got)
	}
	if b.String() == "" {
		t.Error("String empty")
	}
	b.Reset()
	if b.CommFraction() != 0 {
		t.Error("Reset did not clear; CommFraction nonzero")
	}
}

func TestEpochStatTotal(t *testing.T) {
	e := EpochStat{Comp: time.Second, Comm: 2 * time.Second}
	if e.Total() != 3*time.Second {
		t.Errorf("Total = %v, want 3s", e.Total())
	}
}
