package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram.
const NumBuckets = 64

// Histogram is a concurrency-safe distribution over fixed log-spaced
// buckets. Bucket i covers (2^(i-1), 2^i]; bucket 0 covers (-inf, 1]
// (including zero, the common case for staleness-in-iterations), and the
// last bucket absorbs everything above 2^62. The bucket grid is a package
// constant, never derived from the data, so two histograms fed the same
// observations — on different runs or different machines — have identical
// bucket counts; that is what makes histogram values legal timeline content
// under the determinism guarantee.
//
// Quantile estimates are bucket upper bounds (conservative: the true
// quantile is at most the reported value, and more than half the reported
// value when the quantile falls past bucket 0).
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample. NaN samples are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveInt records one integer sample.
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper bound of the
// bucket containing the quantile's rank, or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}

// BucketUpperBound returns bucket i's inclusive upper bound, 2^i.
func BucketUpperBound(i int) float64 {
	return math.Ldexp(1, i)
}

// bucketIndex maps a sample to its bucket: 0 for v <= 1, otherwise
// ceil(log2(v)) capped at the last bucket. The exact-power-of-two check via
// Frexp keeps boundaries inclusive (Observe(2) lands in the bucket whose
// upper bound is 2) without floating-point log.
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	idx := exp
	if frac == 0.5 {
		idx = exp - 1
	}
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// snapshot captures the histogram as a Value with non-empty buckets and
// cached quantiles.
func (h *Histogram) snapshot() Value {
	v := Value{Kind: KindHistogram, Count: h.Count(), Sum: h.Sum()}
	for i := 0; i < NumBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			v.Buckets = append(v.Buckets, Bucket{LE: BucketUpperBound(i), N: n})
		}
	}
	if v.Count > 0 {
		v.Quantiles = &Quantiles{
			P50: h.Quantile(0.50),
			P90: h.Quantile(0.90),
			P95: h.Quantile(0.95),
			P99: h.Quantile(0.99),
		}
	}
	return v
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Timer accumulates wall-clock durations (e.g. per-batch computation time).
// Timer values are nondeterministic by nature and therefore excluded from
// timeline records; read them on the live endpoint or via Total.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }
