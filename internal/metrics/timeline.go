package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// TimelineKind is the header discriminator of timeline files.
const TimelineKind = "hetkg-timeline/v1"

// DefaultTimelineEvery is the default iteration interval between records.
const DefaultTimelineEvery = 10

// TimelineHeader is the first JSONL line of a timeline: run identity plus
// the emission interval.
type TimelineHeader struct {
	Kind    string `json:"kind"` // always TimelineKind
	System  string `json:"system,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Every   int    `json:"every"`
	Seed    int64  `json:"seed"`
}

// TimelineWall carries a record's wall-clock measurements. Wall values are
// nondeterministic (they depend on the machine and the scheduler) and are
// kept out of Metrics so that everything under "metrics" is bit-identical
// across runs of the same configuration.
type TimelineWall struct {
	// ElapsedMS is wall-clock milliseconds since training started.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CompMS is accumulated wall-clock gradient-computation milliseconds.
	CompMS float64 `json:"comp_ms,omitempty"`
	// PairsPerSec is the run's throughput so far: scored (positive,
	// negative) pairs per wall-clock second.
	PairsPerSec float64 `json:"pairs_per_sec,omitempty"`
}

// TimelineRecord is one emitted line: the training position, the loss, a
// deterministic registry snapshot, and optional wall-clock readings.
type TimelineRecord struct {
	// Iter is the global iteration (mini-batch rounds across all epochs).
	Iter int `json:"iter"`
	// Epoch is the 1-based epoch the iteration belongs to.
	Epoch int `json:"epoch"`
	// Loss is the mean pair loss over workers' running epoch averages.
	Loss float64 `json:"loss"`
	// Metrics is the registry snapshot with timers excluded.
	Metrics Snapshot `json:"metrics"`
	// Wall holds the record's nondeterministic wall-clock readings.
	Wall *TimelineWall `json:"wall,omitempty"`
}

// TimelineEmitter appends timeline records for one run to a writer. It is
// not safe for concurrent use; the training loop emits from its scheduling
// goroutine.
type TimelineEmitter struct {
	reg   *Registry
	bw    *bufio.Writer
	enc   *json.Encoder
	every int
}

// NewTimelineEmitter writes the header line and returns an emitter that
// snapshots reg on each Emit. hdr.Kind is forced to TimelineKind and
// hdr.Every to the effective interval (DefaultTimelineEvery when
// unspecified). Call Flush when the run completes.
func NewTimelineEmitter(w io.Writer, reg *Registry, hdr TimelineHeader) (*TimelineEmitter, error) {
	if reg == nil {
		return nil, fmt.Errorf("metrics: timeline emitter needs a registry")
	}
	every := hdr.Every
	if every <= 0 {
		every = DefaultTimelineEvery
	}
	hdr.Kind = TimelineKind
	hdr.Every = every
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("metrics: encoding timeline header: %w", err)
	}
	return &TimelineEmitter{reg: reg, bw: bw, enc: enc, every: every}, nil
}

// Every returns the emission interval in iterations.
func (e *TimelineEmitter) Every() int { return e.every }

// ShouldEmit reports whether the given global iteration is on the emission
// grid.
func (e *TimelineEmitter) ShouldEmit(iter int) bool {
	return iter > 0 && iter%e.every == 0
}

// Emit writes one record. When rec.Metrics is nil it is filled with the
// registry's deterministic snapshot (timers excluded).
func (e *TimelineEmitter) Emit(rec TimelineRecord) error {
	if rec.Metrics == nil {
		rec.Metrics = e.reg.Snapshot().Deterministic()
	}
	if err := e.enc.Encode(rec); err != nil {
		return fmt.Errorf("metrics: encoding timeline record (iter %d): %w", rec.Iter, err)
	}
	return nil
}

// Flush drains the emitter's buffer to the underlying writer.
func (e *TimelineEmitter) Flush() error { return e.bw.Flush() }

// TimelineRun is a fully parsed timeline file.
type TimelineRun struct {
	Header  TimelineHeader
	Records []TimelineRecord
}

// ReadTimeline parses a timeline written by TimelineEmitter. A malformed
// final line is tolerated: a run killed mid-write (crash, SIGKILL, full
// disk) leaves a truncated trailing record, and the complete prefix is still
// a valid timeline. A malformed line followed by further records is real
// corruption and stays an error.
func ReadTimeline(r io.Reader) (*TimelineRun, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("metrics: empty timeline")
	}
	var run TimelineRun
	if err := json.Unmarshal(sc.Bytes(), &run.Header); err != nil {
		return nil, fmt.Errorf("metrics: parsing timeline header: %w", err)
	}
	if run.Header.Kind != TimelineKind {
		return nil, fmt.Errorf("metrics: not a timeline file (kind %q)", run.Header.Kind)
	}
	line := 1
	var pendingErr error // a parse failure that is fatal only if more data follows
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec TimelineRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("metrics: timeline line %d: %w", line, err)
			continue
		}
		run.Records = append(run.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: reading timeline: %w", err)
	}
	return &run, nil
}

// ReadTimelineFile parses the timeline at path.
func ReadTimelineFile(path string) (*TimelineRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: opening timeline %s: %w", path, err)
	}
	defer f.Close()
	return ReadTimeline(f)
}
