package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.count")
	c1.Add(3)
	c2 := r.Counter("a.count")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if c2.Value() != 3 {
		t.Fatalf("shared counter lost its value: %d", c2.Value())
	}
	g := r.Gauge("a.gauge")
	g.Set(1.5)
	if got := r.Gauge("a.gauge").Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.25)
	r.Histogram("h").Observe(3)
	r.Timer("t").Observe(2 * time.Second)

	s := r.Snapshot()
	if v := s["c"]; v.Kind != KindCounter || v.Count != 7 {
		t.Fatalf("counter snapshot = %+v", v)
	}
	if v := s["g"]; v.Kind != KindGauge || v.Value != 0.25 {
		t.Fatalf("gauge snapshot = %+v", v)
	}
	if v := s["h"]; v.Kind != KindHistogram || v.Count != 1 || v.Sum != 3 {
		t.Fatalf("histogram snapshot = %+v", v)
	}
	if v := s["t"]; v.Kind != KindTimer || v.Count != 1 || v.Sum != 2 {
		t.Fatalf("timer snapshot = %+v", v)
	}

	det := s.Deterministic()
	if _, ok := det["t"]; ok {
		t.Fatal("Deterministic kept a timer")
	}
	if len(det) != 3 {
		t.Fatalf("Deterministic dropped too much: %v", det)
	}
}

// TestRegistryConcurrent exercises concurrent register/update/snapshot; run
// under -race (scripts/check.sh) it doubles as the registry race test.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(fmt.Sprintf("worker.%d.count", w)).Inc()
				r.Histogram("shared.hist").ObserveInt(int64(i))
				r.Gauge("shared.gauge").Set(float64(i))
				if i%10 == 0 {
					_ = r.Snapshot()
					_ = r.Names()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*perWorker {
		t.Fatalf("shared.count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("shared.hist count = %d, want %d", got, workers*perWorker)
	}
	if got := len(r.Names()); got != workers+3 {
		t.Fatalf("got %d names, want %d", got, workers+3)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("z.hist").Observe(5)

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("two WriteJSON calls on an unchanged registry differ")
	}
	var decoded map[string]Value
	if err := json.Unmarshal(buf1.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if decoded["a.count"].Count != 1 || decoded["b.count"].Count != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
}
