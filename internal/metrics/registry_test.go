package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.count")
	c1.Add(3)
	c2 := r.Counter("a.count")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if c2.Value() != 3 {
		t.Fatalf("shared counter lost its value: %d", c2.Value())
	}
	g := r.Gauge("a.gauge")
	g.Set(1.5)
	if got := r.Gauge("a.gauge").Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.25)
	r.Histogram("h").Observe(3)
	r.Timer("t").Observe(2 * time.Second)

	s := r.Snapshot()
	if v := s["c"]; v.Kind != KindCounter || v.Count != 7 {
		t.Fatalf("counter snapshot = %+v", v)
	}
	if v := s["g"]; v.Kind != KindGauge || v.Value != 0.25 {
		t.Fatalf("gauge snapshot = %+v", v)
	}
	if v := s["h"]; v.Kind != KindHistogram || v.Count != 1 || v.Sum != 3 {
		t.Fatalf("histogram snapshot = %+v", v)
	}
	if v := s["t"]; v.Kind != KindTimer || v.Count != 1 || v.Sum != 2 {
		t.Fatalf("timer snapshot = %+v", v)
	}

	det := s.Deterministic()
	if _, ok := det["t"]; ok {
		t.Fatal("Deterministic kept a timer")
	}
	if len(det) != 3 {
		t.Fatalf("Deterministic dropped too much: %v", det)
	}
}

// TestRegistryConcurrent exercises concurrent register/update/snapshot; run
// under -race (scripts/check.sh) it doubles as the registry race test.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(fmt.Sprintf("worker.%d.count", w)).Inc()
				r.Histogram("shared.hist").ObserveInt(int64(i))
				r.Gauge("shared.gauge").Set(float64(i))
				if i%10 == 0 {
					_ = r.Snapshot()
					_ = r.Names()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*perWorker {
		t.Fatalf("shared.count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("shared.hist count = %d, want %d", got, workers*perWorker)
	}
	if got := len(r.Names()); got != workers+3 {
		t.Fatalf("got %d names, want %d", got, workers+3)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("z.hist").Observe(5)

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("two WriteJSON calls on an unchanged registry differ")
	}
	var decoded map[string]Value
	if err := json.Unmarshal(buf1.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if decoded["a.count"].Count != 1 || decoded["b.count"].Count != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
}

// TestSnapshotFilter covers the ?prefix= server side: only names sharing
// the prefix survive, and the empty prefix is the identity.
func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.workers").Inc()
	r.Counter("cluster.heartbeats").Inc()
	r.Counter("serve.requests").Inc()
	r.Gauge("train.loss").Set(0.5)

	s := r.Snapshot()
	got := s.Filter("cluster.")
	if len(got) != 2 {
		t.Fatalf("Filter(cluster.) = %v, want 2 entries", got)
	}
	for name := range got {
		if name != "cluster.workers" && name != "cluster.heartbeats" {
			t.Fatalf("Filter kept %q", name)
		}
	}
	if len(s.Filter("")) != len(s) {
		t.Fatal("empty prefix is not the identity")
	}
	if len(s.Filter("nothing.")) != 0 {
		t.Fatal("unmatched prefix returned entries")
	}
}

// TestSnapshotQuantileLadder pins the exported quantile set (p50, p90,
// p95, p99) and its JSON field names — what operators read off /metrics
// and timeline records.
func TestSnapshotQuantileLadder(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.ObserveInt(int64(i))
	}
	v := r.Snapshot()["lat"]
	if v.Quantiles == nil {
		t.Fatal("no quantiles on a populated histogram")
	}
	// Bucket upper bounds are powers of two: p50 → 64, p90/p95/p99 → 128.
	if q := v.Quantiles; q.P50 != 64 || q.P90 != 128 || q.P95 != 128 || q.P99 != 128 {
		t.Fatalf("quantiles = %+v", q)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"p50"`, `"p90"`, `"p95"`, `"p99"`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Fatalf("marshalled value %s lacks %s", b, field)
		}
	}
}

// TestRegistrySnapshotWhileWriting hammers Snapshot from dedicated reader
// goroutines while writers are mid-Inc/Observe — the snapshot-under-write
// race test (run under -race by scripts/check.sh tier 2). Successive
// snapshots of a monotonic counter must never go backwards.
func TestRegistrySnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	const writers = 4
	const perWriter = 500
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").ObserveInt(int64(i))
				r.Gauge("g").Set(float64(i))
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastC, lastH int64
			for {
				s := r.Snapshot()
				if v, ok := s["c"]; ok {
					if v.Count < lastC {
						t.Errorf("counter went backwards: %d -> %d", lastC, v.Count)
						return
					}
					lastC = v.Count
				}
				if v, ok := s["h"]; ok {
					if v.Count < lastH {
						t.Errorf("histogram count went backwards: %d -> %d", lastH, v.Count)
						return
					}
					lastH = v.Count
					var n int64
					for _, b := range v.Buckets {
						n += b.N
					}
					// Bucket increments land before the count increment, so a
					// torn read can only over-count buckets, never under.
					if n < v.Count-writers {
						t.Errorf("bucket sum %d fell behind count %d", n, v.Count)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Counter("c").Value(); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
}
