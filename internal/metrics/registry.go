package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric.
type Kind string

// The four metric kinds a Registry holds.
const (
	// KindCounter is a monotonically increasing integer.
	KindCounter Kind = "counter"
	// KindGauge is a settable float64 (last write wins).
	KindGauge Kind = "gauge"
	// KindHistogram is a distribution over fixed log-spaced buckets.
	KindHistogram Kind = "histogram"
	// KindTimer accumulates wall-clock durations. Timers are excluded from
	// timeline records (they are not deterministic across runs); they are
	// visible on the live introspection endpoint.
	KindTimer Kind = "timer"
)

// Gauge is an atomically settable float64 metric. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value stored by Set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a concurrency-safe collection of named metrics. Components
// register metrics by name with the kind-specific get-or-create accessors
// (Counter, Gauge, Histogram, Timer); registering the same name twice
// returns the same metric, so independent subsystems (e.g. every worker's
// HotCache) share one aggregate series. Snapshot and WriteJSON read a
// consistent point-in-time view without blocking writers.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric registered under name, creating it with mk on
// first use.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m = mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookup(name, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, kindOf(m)))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// It panics if name is already registered as a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookup(name, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, kindOf(m)))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. It panics if name is already registered as a different kind.
func (r *Registry) Histogram(name string) *Histogram {
	m := r.lookup(name, func() any { return &Histogram{} })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, kindOf(m)))
	}
	return h
}

// Timer returns the timer registered under name, creating it on first use.
// It panics if name is already registered as a different kind.
func (r *Registry) Timer(name string) *Timer {
	m := r.lookup(name, func() any { return &Timer{} })
	t, ok := m.(*Timer)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, kindOf(m)))
	}
	return t
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a point-in-time copy of every registered metric's value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(Snapshot, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = valueOf(m)
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON (the payload of
// the live introspection endpoint's /metrics handler). Keys are sorted, so
// the encoding is deterministic for a given registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Snapshot maps metric names to point-in-time values. encoding/json sorts
// map keys, so a marshalled snapshot is deterministic.
type Snapshot map[string]Value

// Filter returns the subset of s whose names start with prefix — the
// server side of the introspection endpoint's ?prefix= query (an
// operator grabbing only cluster.* or serve.* without piping through
// jq). An empty prefix returns s unchanged.
func (s Snapshot) Filter(prefix string) Snapshot {
	if prefix == "" {
		return s
	}
	out := make(Snapshot)
	for name, v := range s {
		if strings.HasPrefix(name, prefix) {
			out[name] = v
		}
	}
	return out
}

// Deterministic returns a copy of s without timer metrics: everything that
// remains is derived from iteration counts, rows, bytes, and losses, which
// are bit-identical across runs of the same configuration (wall-clock
// timers are not). Timeline records embed this view.
func (s Snapshot) Deterministic() Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		if v.Kind == KindTimer {
			continue
		}
		out[name] = v
	}
	return out
}

// Value is one metric's snapshotted state. Which fields are meaningful
// depends on Kind: counters use Count; gauges use Value; histograms use
// Count, Sum, Buckets, and Quantiles; timers use Count and Sum (seconds).
type Value struct {
	Kind Kind `json:"kind"`
	// Count is the counter value, or the observation count for histograms
	// and timers.
	Count int64 `json:"count,omitempty"`
	// Value is the gauge value.
	Value float64 `json:"value,omitempty"`
	// Sum is the sum of histogram observations, or a timer's total seconds.
	Sum float64 `json:"sum,omitempty"`
	// Buckets lists the histogram's non-empty buckets.
	Buckets []Bucket `json:"buckets,omitempty"`
	// Quantiles caches the histogram's p50/p90/p95/p99 at snapshot time.
	Quantiles *Quantiles `json:"q,omitempty"`
}

// Bucket is one non-empty histogram bucket: N observations at most LE.
type Bucket struct {
	// LE is the bucket's inclusive upper bound.
	LE float64 `json:"le"`
	// N is the number of observations that fell into the bucket.
	N int64 `json:"n"`
}

// Quantiles holds a histogram's snapshot quantiles. Each value is the upper
// bound of the bucket containing the quantile rank (a conservative
// estimate; see Histogram).
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// kindOf returns the Kind of a registered metric.
func kindOf(m any) Kind {
	switch m.(type) {
	case *Counter:
		return KindCounter
	case *Gauge:
		return KindGauge
	case *Histogram:
		return KindHistogram
	case *Timer:
		return KindTimer
	}
	return Kind(fmt.Sprintf("%T", m))
}

// valueOf snapshots a registered metric.
func valueOf(m any) Value {
	switch v := m.(type) {
	case *Counter:
		return Value{Kind: KindCounter, Count: v.Value()}
	case *Gauge:
		return Value{Kind: KindGauge, Value: v.Value()}
	case *Histogram:
		return v.snapshot()
	case *Timer:
		return Value{Kind: KindTimer, Count: v.Count(), Sum: v.Total().Seconds()}
	}
	return Value{Kind: kindOf(m)}
}
