package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTimelineRoundTrip emits records from a live registry and decodes them
// back, checking header, record, and metric fidelity.
func TestTimelineRoundTrip(t *testing.T) {
	reg := NewRegistry()
	hits := reg.Counter(MCacheHits)
	loss := reg.Gauge(MTrainLoss)
	stale := reg.Histogram(MCacheStaleness)
	reg.Timer(MTrainCompWall).Observe(time.Millisecond)

	var buf bytes.Buffer
	em, err := NewTimelineEmitter(&buf, reg, TimelineHeader{
		System: "HET-KG-D", Dataset: "fb15k", Seed: 42, Every: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if em.Every() != 5 {
		t.Fatalf("Every() = %d, want 5", em.Every())
	}
	if em.ShouldEmit(0) || em.ShouldEmit(7) || !em.ShouldEmit(10) {
		t.Fatal("ShouldEmit grid wrong")
	}
	for i := 1; i <= 3; i++ {
		hits.Add(10)
		loss.Set(1.0 / float64(i))
		stale.ObserveInt(int64(i))
		rec := TimelineRecord{
			Iter:  i * 5,
			Epoch: 1,
			Loss:  1.0 / float64(i),
			Wall:  &TimelineWall{ElapsedMS: float64(i)},
		}
		if err := em.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := em.Flush(); err != nil {
		t.Fatal(err)
	}

	run, err := ReadTimeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Header.Kind != TimelineKind || run.Header.System != "HET-KG-D" ||
		run.Header.Dataset != "fb15k" || run.Header.Every != 5 || run.Header.Seed != 42 {
		t.Fatalf("header = %+v", run.Header)
	}
	if len(run.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(run.Records))
	}
	last := run.Records[2]
	if last.Iter != 15 || last.Epoch != 1 || last.Loss != 1.0/3.0 {
		t.Fatalf("last record = %+v", last)
	}
	if v := last.Metrics[MCacheHits]; v.Kind != KindCounter || v.Count != 30 {
		t.Fatalf("cache.hits in last record = %+v", v)
	}
	if v := last.Metrics[MCacheStaleness]; v.Kind != KindHistogram || v.Count != 3 || v.Quantiles == nil {
		t.Fatalf("staleness in last record = %+v", v)
	} else if q := v.Quantiles; q.P50 != 2 || q.P90 != 4 || q.P95 != 4 || q.P99 != 4 {
		// Observations 1, 2, 3 land in buckets with upper bounds 1, 2, 4:
		// the full quantile ladder survives the timeline round trip.
		t.Fatalf("staleness quantiles = %+v", q)
	}
	if _, ok := last.Metrics[MTrainCompWall]; ok {
		t.Fatal("timer leaked into a timeline record")
	}
	if last.Wall == nil || last.Wall.ElapsedMS != 3 {
		t.Fatalf("wall = %+v", last.Wall)
	}
}

func TestTimelineDefaultEvery(t *testing.T) {
	var buf bytes.Buffer
	em, err := NewTimelineEmitter(&buf, NewRegistry(), TimelineHeader{})
	if err != nil {
		t.Fatal(err)
	}
	if em.Every() != DefaultTimelineEvery {
		t.Fatalf("Every() = %d, want %d", em.Every(), DefaultTimelineEvery)
	}
}

// TestReadTimelineToleratesTruncatedTail simulates a run killed mid-write:
// the final record is cut mid-JSON. The complete prefix must parse; the same
// malformed line anywhere but last must stay an error.
func TestReadTimelineToleratesTruncatedTail(t *testing.T) {
	header := `{"kind":"hetkg-timeline/v1","every":5,"seed":1}` + "\n"
	rec1 := `{"iter":5,"epoch":1,"loss":2.5}` + "\n"
	rec2 := `{"iter":10,"epoch":1,"loss":2.1}` + "\n"
	cut := `{"iter":15,"epoch":1,"lo` // SIGKILL mid-record, no newline

	run, err := ReadTimeline(strings.NewReader(header + rec1 + rec2 + cut))
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if len(run.Records) != 2 {
		t.Fatalf("got %d records, want the 2 complete ones", len(run.Records))
	}
	if run.Records[1].Iter != 10 || run.Records[1].Loss != 2.1 {
		t.Fatalf("last complete record = %+v", run.Records[1])
	}

	// A trailing truncated line followed only by blank lines is still a tail.
	run, err = ReadTimeline(strings.NewReader(header + rec1 + cut + "\n\n"))
	if err != nil {
		t.Fatalf("truncated tail before blank lines rejected: %v", err)
	}
	if len(run.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(run.Records))
	}

	// The same bad line mid-file is corruption, not truncation.
	if _, err := ReadTimeline(strings.NewReader(header + rec1 + cut + "\n" + rec2)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestReadTimelineRejectsOtherKinds(t *testing.T) {
	in := `{"kind":"hetkg-trace/v1"}` + "\n"
	if _, err := ReadTimeline(strings.NewReader(in)); err == nil {
		t.Fatal("accepted a non-timeline file")
	}
	if _, err := ReadTimeline(strings.NewReader("")); err == nil {
		t.Fatal("accepted an empty file")
	}
}
