package metrics

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket grid: bucket i covers
// (2^(i-1), 2^i], bucket 0 absorbs everything <= 1, and the top bucket
// absorbs overflow. Exact powers of two must land on their own bound
// (inclusive upper bounds), the property the grid's determinism rests on.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0},
		{0, 0},
		{0.5, 0},
		{1, 0},
		{1.0001, 1},
		{2, 1},      // exact power: inclusive in bucket 1 (le=2)
		{2.0001, 2}, // just over: bucket 2 (le=4)
		{3, 2},
		{4, 2}, // exact power: inclusive in bucket 2 (le=4)
		{4.5, 3},
		{1024, 10},
		{1025, 11},
		{math.Ldexp(1, 62), 62},
		{math.Ldexp(1, 63), 63},
		{math.MaxFloat64, 63}, // overflow pins to the last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BucketUpperBound(3); got != 8 {
		t.Errorf("BucketUpperBound(3) = %v, want 8", got)
	}
}

func TestHistogramObserveAndSum(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	v := h.snapshot()
	var total int64
	for _, b := range v.Buckets {
		total += b.N
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 observations <= 1, 9 in (8, 16], 1 in (512, 1024].
	for i := 0; i < 90; i++ {
		h.ObserveInt(1)
	}
	for i := 0; i < 9; i++ {
		h.ObserveInt(10)
	}
	h.ObserveInt(1000)
	if got := h.Quantile(0.50); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.95); got != 16 {
		t.Errorf("p95 = %v, want 16 (bucket upper bound)", got)
	}
	if got := h.Quantile(1); got != 1024 {
		t.Errorf("p100 = %v, want 1024", got)
	}
	q := h.snapshot().Quantiles
	if q == nil || q.P50 != 1 || q.P99 != 16 || q.P90 != 1 {
		t.Errorf("snapshot quantiles = %+v", q)
	}
}
