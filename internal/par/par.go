// Package par is the deterministic parallel execution engine underneath the
// trainers and the evaluator: a bounded worker pool that fans an index space
// out across at most Degree goroutines and collects results in index order.
//
// Determinism is the design constraint. HET-KG's experiments must be
// reproducible bit-for-bit at any core count, so every primitive here obeys
// two rules:
//
//  1. Work decomposition never depends on the parallelism degree. Shards
//     returns the same contiguous ranges for a given index space whether the
//     caller runs them on one goroutine or thirty-two, so floating-point
//     accumulation that is private per shard and merged in shard order gives
//     identical bits at every degree.
//  2. Results are collected by index, never by completion order. Map writes
//     each result into its own slot; ForErr reports the lowest-index error
//     regardless of which goroutine failed first.
//
// Callers own any cross-item state: functions passed to For/Map must only
// write to index-addressed slots (or shard-private scratch) and may freely
// read shared immutable inputs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Degree resolves a configured parallelism knob: values > 0 are used as-is,
// anything else means "all cores" (runtime.GOMAXPROCS). This is the single
// interpretation of Config.Parallelism across the repo.
func Degree(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// Range is one contiguous shard [Begin, End) of an index space.
type Range struct {
	Begin, End int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Begin }

// Shards partitions [0, n) into at most want contiguous near-equal ranges
// (the first n%want shards are one element longer). The boundaries depend
// only on n and want — never on how many goroutines execute them — which is
// what makes sharded float accumulation reproducible at any core count.
func Shards(n, want int) []Range {
	if n <= 0 {
		return nil
	}
	if want > n {
		want = n
	}
	if want < 1 {
		want = 1
	}
	out := make([]Range, want)
	size, rem := n/want, n%want
	begin := 0
	for s := range out {
		end := begin + size
		if s < rem {
			end++
		}
		out[s] = Range{Begin: begin, End: end}
		begin = end
	}
	return out
}

// For runs fn(i) for every i in [0, n), using at most degree goroutines.
// degree <= 1 runs inline with zero scheduling overhead — the serial
// baseline the benchmarks compare against. Items are claimed dynamically
// (work-stealing via a shared counter), so fn must not care which goroutine
// runs which index; determinism comes from writing results by index.
// For returns only after every item has completed.
func For(degree, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if degree > n {
		degree = n
	}
	if degree <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(degree)
	for g := 0; g < degree; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with error collection: every item runs (no cancellation —
// items are cheap and independent here) and the error of the lowest failing
// index is returned, so the reported failure is the same at any degree.
func ForErr(degree, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if degree <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	For(degree, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) on at most degree goroutines and returns the
// results in index order — the pool's ordered result collection.
func Map[T any](degree, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(degree, n, func(i int) { out[i] = fn(i) })
	return out
}
