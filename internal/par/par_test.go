package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(3); got != 3 {
		t.Errorf("Degree(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Degree(0); got != want {
		t.Errorf("Degree(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Degree(-5); got != want {
		t.Errorf("Degree(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestShardsCoverAndBalance(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 4}, {1, 4}, {5, 4}, {8, 4}, {100, 32}, {31, 32}, {7, 1}, {10, -1},
	} {
		shards := Shards(tc.n, tc.want)
		if tc.n == 0 {
			if shards != nil {
				t.Errorf("Shards(0, %d) = %v, want nil", tc.want, shards)
			}
			continue
		}
		next := 0
		minLen, maxLen := tc.n, 0
		for _, r := range shards {
			if r.Begin != next {
				t.Fatalf("Shards(%d, %d): gap at %d (%v)", tc.n, tc.want, next, shards)
			}
			if r.Len() <= 0 {
				t.Fatalf("Shards(%d, %d): empty shard %v", tc.n, tc.want, r)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			next = r.End
		}
		if next != tc.n {
			t.Errorf("Shards(%d, %d) covers [0,%d)", tc.n, tc.want, next)
		}
		if maxLen-minLen > 1 {
			t.Errorf("Shards(%d, %d) unbalanced: min %d max %d", tc.n, tc.want, minLen, maxLen)
		}
	}
}

func TestShardsDegreeIndependent(t *testing.T) {
	// The same (n, want) must always give the same boundaries — the contract
	// the deterministic-merge design rests on.
	a := Shards(997, 32)
	b := Shards(997, 32)
	if len(a) != len(b) {
		t.Fatal("shard count varies")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, degree := range []int{1, 2, 4, 8} {
		n := 1000
		counts := make([]atomic.Int32, n)
		For(degree, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("degree %d: index %d ran %d times", degree, i, c)
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	For(8, 1, func(i int) { ran = true })
	if !ran {
		t.Error("n=1 did not run")
	}
}

func TestMapOrdered(t *testing.T) {
	for _, degree := range []int{1, 4} {
		got := Map(degree, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("degree %d: Map[%d] = %d, want %d", degree, i, v, i*i)
			}
		}
	}
	if Map(4, 0, func(i int) int { return i }) != nil {
		t.Error("Map with n=0 not nil")
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, degree := range []int{1, 8} {
		err := ForErr(degree, 100, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 93:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("degree %d: got %v, want lowest-index error", degree, err)
		}
	}
	if err := ForErr(4, 50, func(int) error { return nil }); err != nil {
		t.Errorf("no-error run returned %v", err)
	}
}

// TestShardedAccumulationBitIdentical pins the core numeric contract: a
// float sum accumulated per-shard and merged in shard order gives identical
// bits whether the shards run on one goroutine or many.
func TestShardedAccumulationBitIdentical(t *testing.T) {
	n := 10007
	xs := make([]float32, n)
	seed := uint32(2463534242)
	for i := range xs {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		xs[i] = float32(seed%1000)/999 - 0.5
	}
	sum := func(degree int) float32 {
		shards := Shards(n, 32)
		partial := make([]float32, len(shards))
		For(degree, len(shards), func(s int) {
			var acc float32
			for i := shards[s].Begin; i < shards[s].End; i++ {
				acc += xs[i]
			}
			partial[s] = acc
		})
		var total float32
		for _, p := range partial {
			total += p
		}
		return total
	}
	want := sum(1)
	for _, degree := range []int{2, 4, 8, 16} {
		if got := sum(degree); got != want {
			t.Fatalf("degree %d: sum %v != serial %v", degree, got, want)
		}
	}
}
