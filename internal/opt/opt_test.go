package opt

import (
	"math"
	"testing"
)

func TestSGDApply(t *testing.T) {
	o := &SGD{LR: 0.5}
	row := []float32{1, 2}
	o.Apply(0, row, []float32{2, -2})
	if row[0] != 0 || row[1] != 3 {
		t.Errorf("SGD row = %v, want [0 3]", row)
	}
}

func TestAdaGradFirstStepIsUnitScaled(t *testing.T) {
	// With accumulated G = g², the first step is lr*g/|g| = lr*sign(g).
	o := NewAdaGrad(0.1, 0)
	row := []float32{0, 0}
	o.Apply(1, row, []float32{4, -0.25})
	if !approx(row[0], -0.1) || !approx(row[1], 0.1) {
		t.Errorf("first AdaGrad step = %v, want [-0.1 0.1]", row)
	}
}

func TestAdaGradStepsShrink(t *testing.T) {
	o := NewAdaGrad(0.1, 1e-10)
	row := []float32{0}
	prev := float32(0)
	var lastStep float32 = math.MaxFloat32
	for i := 0; i < 5; i++ {
		o.Apply(7, row, []float32{1})
		step := prev - row[0]
		if step <= 0 {
			t.Fatalf("step %d not a descent step: %v", i, step)
		}
		if step >= lastStep {
			t.Fatalf("step %d (%v) did not shrink from %v", i, step, lastStep)
		}
		lastStep = step
		prev = row[0]
	}
}

func TestAdaGradPerKeyState(t *testing.T) {
	o := NewAdaGrad(0.1, 1e-10)
	a := []float32{0}
	b := []float32{0}
	// Hammer key 1 so its accumulator grows.
	for i := 0; i < 100; i++ {
		o.Apply(1, a, []float32{1})
	}
	o.Apply(2, b, []float32{1})
	// A fresh key gets the full first step; the worn key's 101st step is tiny.
	before := a[0]
	o.Apply(1, a, []float32{1})
	wornStep := before - a[0]
	if freshStep := -b[0]; freshStep < 5*wornStep {
		t.Errorf("fresh step %v should dwarf worn step %v", freshStep, wornStep)
	}
	if o.StateRows() != 2 {
		t.Errorf("StateRows = %d, want 2", o.StateRows())
	}
}

func TestAdaGradReset(t *testing.T) {
	o := NewAdaGrad(0.1, 1e-10)
	row := []float32{0}
	o.Apply(1, row, []float32{1})
	o.Reset()
	if o.StateRows() != 0 {
		t.Errorf("StateRows after Reset = %d, want 0", o.StateRows())
	}
}

func TestAdaGradWidthChangeResetsRowState(t *testing.T) {
	o := NewAdaGrad(0.1, 1e-10)
	row2 := []float32{0, 0}
	o.Apply(1, row2, []float32{1, 1})
	row3 := []float32{0, 0, 0}
	// Must not panic or index out of bounds when the same key shows up
	// with a different width (can happen across tests reusing keyspaces).
	o.Apply(1, row3, []float32{1, 1, 1})
	if row3[2] == 0 {
		t.Error("third coordinate not updated after width change")
	}
}

func TestNew(t *testing.T) {
	if o, err := New("adagrad", 0.1); err != nil || o.Name() != "adagrad" {
		t.Errorf("New(adagrad) = %v, %v", o, err)
	}
	if o, err := New("sgd", 0.1); err != nil || o.Name() != "sgd" {
		t.Errorf("New(sgd) = %v, %v", o, err)
	}
	if _, err := New("rmsprop", 0.1); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

func TestAdaGradConcurrentApply(t *testing.T) {
	// The PS applies gradients from many workers; per-key state creation
	// must be race-free. Run with -race in CI.
	o := NewAdaGrad(0.01, 1e-10)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			row := []float32{0, 0}
			for i := 0; i < 200; i++ {
				o.Apply(uint64(i%10), row, []float32{0.1, -0.1})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if o.StateRows() != 10 {
		t.Errorf("StateRows = %d, want 10", o.StateRows())
	}
}

func approx(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-5
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, Adam's first step is ≈ lr·sign(g).
	o := NewAdam(0.05)
	row := []float32{0, 0}
	o.Apply(1, row, []float32{3, -0.2})
	if !approx(row[0], -0.05) || !approx(row[1], 0.05) {
		t.Errorf("first Adam step = %v, want [-0.05 0.05]", row)
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (x-3)² from 0: gradient 2(x-3).
	o := NewAdam(0.1)
	row := []float32{0}
	for i := 0; i < 600; i++ {
		o.Apply(1, row, []float32{2 * (row[0] - 3)})
	}
	if row[0] < 2.5 || row[0] > 3.5 {
		t.Errorf("Adam did not converge toward 3: %v", row[0])
	}
}

func TestAdamPerKeyStateAndReset(t *testing.T) {
	o := NewAdam(0.1)
	a, b := []float32{0}, []float32{0}
	o.Apply(1, a, []float32{1})
	o.Apply(2, b, []float32{1})
	if o.StateRows() != 2 {
		t.Errorf("StateRows = %d, want 2", o.StateRows())
	}
	o.Reset()
	if o.StateRows() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestNewAdamByName(t *testing.T) {
	if o, err := New("adam", 0.1); err != nil || o.Name() != "adam" {
		t.Errorf("New(adam) = %v, %v", o, err)
	}
}
