package opt

import (
	"math"
	"sync"
)

// AdaGrad keeps a per-row sum of squared gradients and scales each update by
// its inverse square root (Duchi et al.):
//
//	G_t += g ⊙ g
//	row -= lr * g / (sqrt(G_t) + eps)
//
// This is the update Algorithm 4 of the paper runs on the server for every
// pushed gradient. State grows with the number of distinct rows touched —
// the memory cost the paper notes as AdaGrad's drawback (§VI-A).
type AdaGrad struct {
	lr  float32
	eps float32

	mu    sync.Mutex
	accum map[uint64][]float32
}

// NewAdaGrad returns an AdaGrad optimizer with the given learning rate and
// numerical-stability epsilon.
func NewAdaGrad(lr, eps float32) *AdaGrad {
	return &AdaGrad{lr: lr, eps: eps, accum: make(map[uint64][]float32)}
}

// Name implements Optimizer.
func (*AdaGrad) Name() string { return "adagrad" }

// Apply implements Optimizer.
func (o *AdaGrad) Apply(key uint64, row, grad []float32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	acc, ok := o.accum[key]
	if !ok || len(acc) != len(grad) {
		acc = make([]float32, len(grad))
		o.accum[key] = acc
	}
	for i, g := range grad {
		acc[i] += g * g
		row[i] -= o.lr * g / (float32(math.Sqrt(float64(acc[i]))) + o.eps)
	}
}

// Reset implements Optimizer.
func (o *AdaGrad) Reset() {
	o.mu.Lock()
	o.accum = make(map[uint64][]float32)
	o.mu.Unlock()
}

// StateRows reports how many rows currently hold accumulator state, the
// memory-overhead figure the paper calls out for AdaGrad.
func (o *AdaGrad) StateRows() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.accum)
}
