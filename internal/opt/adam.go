package opt

import (
	"math"
	"sync"
)

// Adam (Kingma & Ba) keeps per-row first- and second-moment estimates with
// bias correction. The paper trains with AdaGrad; Adam is provided as the
// common modern alternative so downstream users can compare optimizers on
// their own graphs (sparse rows each keep their own step counter, the
// "lazy Adam" convention for embedding tables).
type Adam struct {
	lr    float32
	beta1 float64
	beta2 float64
	eps   float64

	mu    sync.Mutex
	state map[uint64]*adamState
}

type adamState struct {
	m, v []float64
	step int
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float32) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, state: make(map[uint64]*adamState)}
}

// Name implements Optimizer.
func (*Adam) Name() string { return "adam" }

// Apply implements Optimizer.
func (o *Adam) Apply(key uint64, row, grad []float32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.state[key]
	if !ok || len(st.m) != len(grad) {
		st = &adamState{m: make([]float64, len(grad)), v: make([]float64, len(grad))}
		o.state[key] = st
	}
	st.step++
	c1 := 1 - math.Pow(o.beta1, float64(st.step))
	c2 := 1 - math.Pow(o.beta2, float64(st.step))
	for i, g := range grad {
		gf := float64(g)
		st.m[i] = o.beta1*st.m[i] + (1-o.beta1)*gf
		st.v[i] = o.beta2*st.v[i] + (1-o.beta2)*gf*gf
		mHat := st.m[i] / c1
		vHat := st.v[i] / c2
		row[i] -= o.lr * float32(mHat/(math.Sqrt(vHat)+o.eps))
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.mu.Lock()
	o.state = make(map[uint64]*adamState)
	o.mu.Unlock()
}

// StateRows reports how many rows hold moment state.
func (o *Adam) StateRows() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.state)
}
