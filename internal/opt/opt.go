// Package opt implements the sparse optimizers used server-side by the
// parameter server: AdaGrad (the paper's optimizer, §VI-A) and plain SGD.
//
// Optimizer state is per-row and owned by whoever owns the embedding row
// (the PS shard), mirroring DGL-KE's design where the server applies
// gradients pushed by workers.
package opt

import "fmt"

// Optimizer applies a gradient to one embedding row in place. The training
// objective is *maximized* via loss gradients that already carry their sign,
// so Apply always performs descent: param -= lr * step(grad).
type Optimizer interface {
	// Name identifies the optimizer.
	Name() string
	// Apply updates row in place given its gradient. key identifies the row
	// so stateful optimizers can keep per-row accumulators; rows of
	// different widths may share an optimizer as long as each key keeps a
	// consistent width.
	Apply(key uint64, row, grad []float32)
	// Reset drops all accumulated state.
	Reset()
}

// New constructs an optimizer by name ("adagrad", "sgd", or "adam").
func New(name string, lr float32) (Optimizer, error) {
	switch name {
	case "adagrad":
		return NewAdaGrad(lr, 1e-10), nil
	case "sgd":
		return &SGD{LR: lr}, nil
	case "adam":
		return NewAdam(lr), nil
	default:
		return nil, fmt.Errorf("opt: unknown optimizer %q", name)
	}
}

// SGD is plain stochastic gradient descent: row -= lr*grad.
type SGD struct {
	LR float32
}

// Name implements Optimizer.
func (*SGD) Name() string { return "sgd" }

// Apply implements Optimizer.
func (o *SGD) Apply(_ uint64, row, grad []float32) {
	for i, g := range grad {
		row[i] -= o.LR * g
	}
}

// Reset implements Optimizer. SGD is stateless.
func (o *SGD) Reset() {}
