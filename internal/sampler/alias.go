package sampler

import (
	"fmt"
	"math"
	"math/rand"
)

// AliasTable samples from an arbitrary discrete distribution in O(1) per
// draw (Walker's alias method, Vose's construction). The samplers use it
// for degree-weighted negative corruption: drawing negatives ∝ degree^0.75
// (the word2vec convention) yields harder negatives on skewed graphs than
// uniform corruption, because random uniform entities are almost always
// trivially implausible.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a table for the given non-negative weights.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampler: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampler: negative weight %v at %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("sampler: all weights zero")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small { // numerical leftovers
		t.prob[i] = 1
	}
	return t, nil
}

// Len returns the support size.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws one index according to the table's distribution.
func (t *AliasTable) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// DegreeWeights converts entity degrees to the standard deg^0.75 negative
// sampling weights, flooring at 1 so zero-degree entities stay reachable.
func DegreeWeights(degrees []int) []float64 {
	out := make([]float64, len(degrees))
	for i, d := range degrees {
		if d < 1 {
			d = 1
		}
		out[i] = math.Pow(float64(d), 0.75)
	}
	return out
}
