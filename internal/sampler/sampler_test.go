package sampler

import (
	"math/rand"
	"testing"

	"hetkg/internal/kg"
)

func lineGraph(t *testing.T, n int) *kg.Graph {
	t.Helper()
	triples := make([]kg.Triple, n)
	for i := range triples {
		triples[i] = kg.Triple{
			Head:     kg.EntityID(i % 20),
			Relation: kg.RelationID(i % 3),
			Tail:     kg.EntityID((i + 1) % 20),
		}
	}
	return kg.MustNewGraph("line", 20, 3, triples)
}

func newSampler(t *testing.T, cfg Config, g *kg.Graph, seed int64) *Sampler {
	t.Helper()
	s, err := New(cfg, g, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{BatchSize: 4, NegPerPos: 2, ChunkSize: 2, NumEntity: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{BatchSize: 0, NegPerPos: 1, NumEntity: 10},
		{BatchSize: 1, NegPerPos: -1, NumEntity: 10},
		{BatchSize: 1, NegPerPos: 1, NumEntity: 1},
		{BatchSize: 1, NegPerPos: 1, NumEntity: 10, ChunkSize: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBatchShape(t *testing.T) {
	g := lineGraph(t, 100)
	s := newSampler(t, Config{BatchSize: 8, NegPerPos: 4, ChunkSize: 1, NumEntity: 20}, g, 1)
	b := s.Next()
	if len(b.Pos) != 8 || len(b.Neg) != 8 {
		t.Fatalf("batch %d/%d, want 8/8", len(b.Pos), len(b.Neg))
	}
	if b.NumNegatives() != 32 {
		t.Errorf("NumNegatives = %d, want 32", b.NumNegatives())
	}
	for i, ns := range b.Neg {
		if len(ns.Entities) != 4 {
			t.Errorf("Neg[%d] has %d entities, want 4", i, len(ns.Entities))
		}
		for _, e := range ns.Entities {
			if e < 0 || int(e) >= 20 {
				t.Errorf("negative entity %d out of range", e)
			}
		}
	}
}

func TestEpochCoversAllTriples(t *testing.T) {
	g := lineGraph(t, 50)
	s := newSampler(t, Config{BatchSize: 7, NegPerPos: 1, NumEntity: 20}, g, 2)
	seen := map[kg.Triple]int{}
	iters := s.IterationsPerEpoch()
	if iters != 8 { // ceil(50/7)
		t.Fatalf("IterationsPerEpoch = %d, want 8", iters)
	}
	for i := 0; i < iters; i++ {
		for _, p := range s.Next().Pos {
			seen[p]++
		}
	}
	// 8 batches × 7 = 56 > 50, so up to 6 triples repeat after reshuffle,
	// but every distinct triple must be visited at least once.
	distinct := map[kg.Triple]bool{}
	for _, tr := range g.Triples {
		distinct[tr] = true
	}
	for tr := range distinct {
		if seen[tr] == 0 {
			t.Errorf("triple %v never sampled in epoch", tr)
		}
	}
}

func TestChunkedSharing(t *testing.T) {
	g := lineGraph(t, 100)
	s := newSampler(t, Config{BatchSize: 8, NegPerPos: 3, ChunkSize: 4, NumEntity: 20}, g, 3)
	b := s.Next()
	if b.Neg[0] != b.Neg[3] {
		t.Error("positives 0 and 3 in same chunk must share the NegativeSample")
	}
	if b.Neg[0] == b.Neg[4] {
		t.Error("positives 0 and 4 in different chunks must not share")
	}
}

func TestChunkedReducesDistinctRows(t *testing.T) {
	g := lineGraph(t, 1000)
	indep := newSampler(t, Config{BatchSize: 64, NegPerPos: 16, ChunkSize: 1, NumEntity: 20}, g, 4)
	chunked := newSampler(t, Config{BatchSize: 64, NegPerPos: 16, ChunkSize: 16, NumEntity: 20}, g, 4)
	// With only 20 entities dedup saturates, so count raw id references
	// instead: chunked generates 64/16=4 shared sets of 16 vs 64 sets.
	bi := indep.Next()
	bc := chunked.Next()
	rawI, rawC := 0, 0
	seenI := map[*NegativeSample]bool{}
	seenC := map[*NegativeSample]bool{}
	for i := range bi.Neg {
		if !seenI[bi.Neg[i]] {
			seenI[bi.Neg[i]] = true
			rawI += len(bi.Neg[i].Entities)
		}
		if !seenC[bc.Neg[i]] {
			seenC[bc.Neg[i]] = true
			rawC += len(bc.Neg[i].Entities)
		}
	}
	if rawI != 64*16 || rawC != 4*16 {
		t.Errorf("raw negative entity draws: independent %d (want 1024), chunked %d (want 64)", rawI, rawC)
	}
}

func TestDistinctIDsDeduplicates(t *testing.T) {
	b := &Batch{
		Pos: []kg.Triple{
			{Head: 0, Relation: 0, Tail: 1},
			{Head: 1, Relation: 0, Tail: 2},
			{Head: 0, Relation: 1, Tail: 1},
		},
		Neg: []*NegativeSample{
			{Entities: []kg.EntityID{2, 3}},
			{Entities: []kg.EntityID{3, 3}},
			{Entities: []kg.EntityID{0}},
		},
	}
	ents, rels := b.DistinctIDs()
	if len(ents) != 4 { // 0,1,2,3
		t.Errorf("distinct entities = %v, want 4 ids", ents)
	}
	if len(rels) != 2 {
		t.Errorf("distinct relations = %v, want 2 ids", rels)
	}
}

func TestFilterRejectsFalseNegatives(t *testing.T) {
	// Graph over 3 entities where almost everything is a positive: the
	// filter must steer corruption toward the one non-positive option.
	triples := []kg.Triple{
		{Head: 0, Relation: 0, Tail: 1},
		{Head: 0, Relation: 0, Tail: 2},
	}
	g := kg.MustNewGraph("dense", 3, 1, triples)
	filter := kg.NewTripleSet(triples)
	s := newSampler(t, Config{BatchSize: 2, NegPerPos: 8, ChunkSize: 1, NumEntity: 3, Filter: filter}, g, 5)
	falseNeg, total := 0, 0
	for it := 0; it < 50; it++ {
		b := s.Next()
		for i, p := range b.Pos {
			for j := range b.Neg[i].Entities {
				total++
				if filter.Contains(NegTriple(p, b.Neg[i], j)) {
					falseNeg++
				}
			}
		}
	}
	unfiltered := newSampler(t, Config{BatchSize: 2, NegPerPos: 8, ChunkSize: 1, NumEntity: 3}, g, 5)
	falseNegU := 0
	for it := 0; it < 50; it++ {
		b := unfiltered.Next()
		for i, p := range b.Pos {
			for j := range b.Neg[i].Entities {
				if filter.Contains(NegTriple(p, b.Neg[i], j)) {
					falseNegU++
				}
			}
		}
	}
	if falseNeg >= falseNegU {
		t.Errorf("filtered sampler produced %d false negatives vs %d unfiltered; filter ineffective", falseNeg, falseNegU)
	}
}

func TestNegTriple(t *testing.T) {
	p := kg.Triple{Head: 1, Relation: 2, Tail: 3}
	nsHead := &NegativeSample{Entities: []kg.EntityID{9}, CorruptHead: true}
	if got := NegTriple(p, nsHead, 0); got != (kg.Triple{Head: 9, Relation: 2, Tail: 3}) {
		t.Errorf("head corruption = %v", got)
	}
	nsTail := &NegativeSample{Entities: []kg.EntityID{9}, CorruptHead: false}
	if got := NegTriple(p, nsTail, 0); got != (kg.Triple{Head: 1, Relation: 2, Tail: 9}) {
		t.Errorf("tail corruption = %v", got)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	g := lineGraph(t, 100)
	cfg := Config{BatchSize: 8, NegPerPos: 2, ChunkSize: 2, NumEntity: 20}
	a := newSampler(t, cfg, g, 42)
	b := newSampler(t, cfg, g, 42)
	for it := 0; it < 5; it++ {
		ba, bb := a.Next(), b.Next()
		for i := range ba.Pos {
			if ba.Pos[i] != bb.Pos[i] {
				t.Fatalf("iteration %d positive %d differs", it, i)
			}
			for j := range ba.Neg[i].Entities {
				if ba.Neg[i].Entities[j] != bb.Neg[i].Entities[j] {
					t.Fatalf("iteration %d negative (%d,%d) differs", it, i, j)
				}
			}
		}
	}
}

func TestNewRejectsEmptyGraph(t *testing.T) {
	g := &kg.Graph{Name: "empty", NumEntity: 5, NumRel: 1}
	if _, err := New(Config{BatchSize: 1, NegPerPos: 1, NumEntity: 5}, g, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestBatchSizeLargerThanGraph(t *testing.T) {
	g := lineGraph(t, 5)
	s := newSampler(t, Config{BatchSize: 100, NegPerPos: 1, NumEntity: 20}, g, 6)
	b := s.Next()
	if len(b.Pos) != 5 {
		t.Errorf("batch size %d, want clamped to 5", len(b.Pos))
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 4, 8}
	at, err := NewAliasTable(weights)
	if err != nil {
		t.Fatalf("NewAliasTable: %v", err)
	}
	if at.Len() != 4 {
		t.Fatalf("Len = %d", at.Len())
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[at.Sample(rng)]++
	}
	total := 1.0 + 2 + 4 + 8
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("index %d: empirical %.4f, want ≈%.4f", i, got, want)
		}
	}
}

func TestAliasTableValidation(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAliasTable([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewAliasTable([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	// Degenerate single-element and zero-containing distributions work.
	at, err := NewAliasTable([]float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		if at.Sample(rng) != 1 {
			t.Fatal("zero-weight index sampled")
		}
	}
}

func TestDegreeWeights(t *testing.T) {
	w := DegreeWeights([]int{0, 1, 16})
	if w[0] != 1 || w[1] != 1 { // floor at degree 1
		t.Errorf("low-degree weights %v, want floor 1", w[:2])
	}
	if w[2] < 7.9 || w[2] > 8.1 { // 16^0.75 = 8
		t.Errorf("16^0.75 = %v, want 8", w[2])
	}
}

func TestDegreeWeightedNegativesBiasTowardHubs(t *testing.T) {
	// A hub graph: entity 0 has huge degree. Degree-weighted corruption
	// must pick it far more often than uniform.
	var triples []kg.Triple
	for i := 1; i < 20; i++ {
		triples = append(triples, kg.Triple{Head: 0, Relation: 0, Tail: kg.EntityID(i)})
	}
	g := kg.MustNewGraph("hub", 20, 1, triples)
	cfg := Config{
		BatchSize: 8, NegPerPos: 8, ChunkSize: 1, NumEntity: 20,
		NegativeWeights: DegreeWeights(g.EntityDegrees()),
	}
	s, err := New(cfg, g, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	hub, total := 0, 0
	for it := 0; it < 100; it++ {
		b := s.Next()
		for _, ns := range b.Neg {
			for _, e := range ns.Entities {
				total++
				if e == 0 {
					hub++
				}
			}
		}
	}
	frac := float64(hub) / float64(total)
	// deg(0)=19, others deg 1: weight share = 19^0.75/(19^0.75+19) ≈ 0.32.
	if frac < 0.2 {
		t.Errorf("hub sampled %.3f of the time, want ≈0.32 (uniform would be 0.05)", frac)
	}
}

func TestNegativeWeightsValidation(t *testing.T) {
	g := lineGraph(t, 10)
	cfg := Config{BatchSize: 2, NegPerPos: 1, NumEntity: 20, NegativeWeights: []float64{1, 2}}
	if _, err := New(cfg, g, rand.New(rand.NewSource(1))); err == nil {
		t.Error("wrong-length weights accepted")
	}
}
