// Package sampler produces the positive and negative training samples for
// mini-batch KGE training (§III-A, §V of the HET-KG paper).
//
// Positive triples are drawn uniformly from a worker's partitioned subgraph.
// Negative triples corrupt the head or the tail of a positive with a random
// entity. Two corruption regimes are provided:
//
//   - Independent: each positive is corrupted NegPerPos times with fresh
//     entities — complexity O(b_p·d·(b_n+1)) in pulled embedding rows.
//   - Chunked (the PBG/DGL-KE batched strategy the paper adopts in §V):
//     the mini-batch is divided into chunks of ChunkSize positives and each
//     chunk shares one set of NegPerPos corrupt entities, reducing the
//     distinct rows pulled to O(b_p + b_p·k/b_c).
package sampler

import (
	"fmt"
	"math/rand"

	"hetkg/internal/kg"
)

// NegativeSample is one chunk's shared corruption set.
type NegativeSample struct {
	// Entities are the corrupt replacement entities shared by the chunk.
	Entities []kg.EntityID
	// CorruptHead selects which slot the entities replace: head if true,
	// tail otherwise.
	CorruptHead bool
}

// Batch is one training mini-batch: positives plus, for each positive, a
// pointer to its (possibly shared) negative sample.
type Batch struct {
	Pos []kg.Triple
	// Neg[i] holds the corruption set for Pos[i]. With chunked sampling
	// consecutive positives share the same *NegativeSample.
	Neg []*NegativeSample
}

// NumNegatives returns the total number of negative triples the batch
// expands to (positives × negatives each).
func (b *Batch) NumNegatives() int {
	n := 0
	for _, ns := range b.Neg {
		n += len(ns.Entities)
	}
	return n
}

// DistinctIDs de-duplicates the entity and relation ids the batch touches —
// exactly the dedup step of the paper's prefetch Algorithm 1 (lines 7–9) and
// the set of embedding rows a worker must obtain to process the batch.
func (b *Batch) DistinctIDs() (entities []kg.EntityID, relations []kg.RelationID) {
	seenE := make(map[kg.EntityID]struct{}, 3*len(b.Pos))
	seenR := make(map[kg.RelationID]struct{}, 8)
	addE := func(e kg.EntityID) {
		if _, ok := seenE[e]; !ok {
			seenE[e] = struct{}{}
			entities = append(entities, e)
		}
	}
	for i, p := range b.Pos {
		addE(p.Head)
		addE(p.Tail)
		if _, ok := seenR[p.Relation]; !ok {
			seenR[p.Relation] = struct{}{}
			relations = append(relations, p.Relation)
		}
		for _, e := range b.Neg[i].Entities {
			addE(e)
		}
	}
	return entities, relations
}

// Config parameterizes a Sampler.
type Config struct {
	// BatchSize is b_p, the number of positive triples per mini-batch.
	BatchSize int
	// NegPerPos is b_n, negatives generated per positive.
	NegPerPos int
	// ChunkSize is b_c; positives in the same chunk share corrupt entities.
	// ChunkSize 0 or 1 selects independent corruption.
	ChunkSize int
	// NumEntity is the corruption universe (entities are drawn uniformly).
	NumEntity int
	// Filter, when non-nil, rejects corrupted triples that are actually
	// positives (false negatives). A bounded number of re-draws is
	// attempted; persistent collisions are kept, matching standard
	// implementations.
	Filter *kg.TripleSet
	// NegativeWeights, when non-nil, draws corrupting entities from this
	// unnormalized distribution (length NumEntity) instead of uniformly —
	// e.g. DegreeWeights(g.EntityDegrees()) for word2vec-style deg^0.75
	// corruption.
	NegativeWeights []float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.BatchSize < 1:
		return fmt.Errorf("sampler: BatchSize %d < 1", c.BatchSize)
	case c.NegPerPos < 0:
		return fmt.Errorf("sampler: NegPerPos %d < 0", c.NegPerPos)
	case c.NumEntity < 2:
		return fmt.Errorf("sampler: NumEntity %d < 2", c.NumEntity)
	case c.ChunkSize < 0:
		return fmt.Errorf("sampler: ChunkSize %d < 0", c.ChunkSize)
	}
	return nil
}

// Sampler draws mini-batches from a fixed triple list. It is not safe for
// concurrent use; each worker owns one Sampler seeded independently.
type Sampler struct {
	cfg     Config
	triples []kg.Triple
	rng     *rand.Rand
	// negDist draws weighted corrupting entities (nil = uniform).
	negDist *AliasTable
	// cursor implements sampling-without-replacement per epoch: a shuffled
	// index walk, reshuffled when exhausted, so every triple is visited
	// once per epoch as in standard KGE training.
	perm   []int32
	cursor int
}

// New builds a Sampler over the subgraph's triples.
func New(cfg Config, g *kg.Graph, rng *rand.Rand) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumTriples() == 0 {
		return nil, fmt.Errorf("sampler: graph %q has no triples", g.Name)
	}
	s := &Sampler{cfg: cfg, triples: g.Triples, rng: rng}
	if cfg.NegativeWeights != nil {
		if len(cfg.NegativeWeights) != cfg.NumEntity {
			return nil, fmt.Errorf("sampler: %d negative weights for %d entities",
				len(cfg.NegativeWeights), cfg.NumEntity)
		}
		var err error
		s.negDist, err = NewAliasTable(cfg.NegativeWeights)
		if err != nil {
			return nil, err
		}
	}
	s.reshuffle()
	return s, nil
}

func (s *Sampler) reshuffle() {
	if s.perm == nil {
		s.perm = make([]int32, len(s.triples))
		for i := range s.perm {
			s.perm[i] = int32(i)
		}
	}
	s.rng.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	s.cursor = 0
}

// IterationsPerEpoch returns how many batches constitute one pass over the
// subgraph.
func (s *Sampler) IterationsPerEpoch() int {
	n := (len(s.triples) + s.cfg.BatchSize - 1) / s.cfg.BatchSize
	if n < 1 {
		n = 1
	}
	return n
}

// Next produces the next mini-batch (positives without replacement within an
// epoch, negatives freshly corrupted).
func (s *Sampler) Next() *Batch {
	bp := s.cfg.BatchSize
	if bp > len(s.triples) {
		bp = len(s.triples)
	}
	pos := make([]kg.Triple, bp)
	for i := 0; i < bp; i++ {
		if s.cursor >= len(s.perm) {
			s.reshuffle()
		}
		pos[i] = s.triples[s.perm[s.cursor]]
		s.cursor++
	}
	b := &Batch{Pos: pos, Neg: make([]*NegativeSample, bp)}
	chunk := s.cfg.ChunkSize
	if chunk <= 1 { // independent corruption
		for i := range pos {
			b.Neg[i] = s.corrupt(pos[i : i+1])
		}
		return b
	}
	for start := 0; start < bp; start += chunk {
		end := start + chunk
		if end > bp {
			end = bp
		}
		ns := s.corrupt(pos[start:end])
		for i := start; i < end; i++ {
			b.Neg[i] = ns
		}
	}
	return b
}

// corrupt draws one NegativeSample for the given positives, filtering false
// negatives against every positive that will share it.
func (s *Sampler) corrupt(sharedBy []kg.Triple) *NegativeSample {
	ns := &NegativeSample{
		Entities:    make([]kg.EntityID, 0, s.cfg.NegPerPos),
		CorruptHead: s.rng.Intn(2) == 0,
	}
	for len(ns.Entities) < s.cfg.NegPerPos {
		e := s.drawEntity()
		if s.cfg.Filter != nil && s.collides(e, ns.CorruptHead, sharedBy) {
			// Bounded re-draw: try a few more times, then accept. Standard
			// implementations tolerate rare false negatives rather than
			// loop forever on tiny graphs.
			ok := false
			for tries := 0; tries < 8; tries++ {
				e = s.drawEntity()
				if !s.collides(e, ns.CorruptHead, sharedBy) {
					ok = true
					break
				}
			}
			_ = ok
		}
		ns.Entities = append(ns.Entities, e)
	}
	return ns
}

// drawEntity samples one corrupting entity (weighted when configured).
func (s *Sampler) drawEntity() kg.EntityID {
	if s.negDist != nil {
		return kg.EntityID(s.negDist.Sample(s.rng))
	}
	return kg.EntityID(s.rng.Intn(s.cfg.NumEntity))
}

func (s *Sampler) collides(e kg.EntityID, corruptHead bool, sharedBy []kg.Triple) bool {
	for _, p := range sharedBy {
		var cand kg.Triple
		if corruptHead {
			cand = kg.Triple{Head: e, Relation: p.Relation, Tail: p.Tail}
		} else {
			cand = kg.Triple{Head: p.Head, Relation: p.Relation, Tail: e}
		}
		if s.cfg.Filter.Contains(cand) {
			return true
		}
	}
	return false
}

// NegTriple materializes the j-th negative triple for positive p under the
// sample ns.
func NegTriple(p kg.Triple, ns *NegativeSample, j int) kg.Triple {
	if ns.CorruptHead {
		return kg.Triple{Head: ns.Entities[j], Relation: p.Relation, Tail: p.Tail}
	}
	return kg.Triple{Head: p.Head, Relation: p.Relation, Tail: ns.Entities[j]}
}
