package kg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	triples := []Triple{
		{0, 0, 1},
		{1, 0, 2},
		{2, 1, 0},
		{0, 1, 3},
		{3, 0, 0},
	}
	g, err := NewGraph("tiny", 4, 2, triples)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	tests := []struct {
		name    string
		ne, nr  int
		triples []Triple
		wantErr bool
	}{
		{"ok", 2, 1, []Triple{{0, 0, 1}}, false},
		{"empty-universe", 0, 1, nil, true},
		{"no-relations", 2, 0, nil, true},
		{"head-out-of-range", 2, 1, []Triple{{2, 0, 1}}, true},
		{"tail-out-of-range", 2, 1, []Triple{{0, 0, 5}}, true},
		{"relation-out-of-range", 2, 1, []Triple{{0, 1, 1}}, true},
		{"negative-entity", 2, 1, []Triple{{-1, 0, 1}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGraph(tc.name, tc.ne, tc.nr, tc.triples)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewGraph err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestDegrees(t *testing.T) {
	g := tinyGraph(t)
	// entity 0 appears in triples 0,2,3,4 → degree 4
	wantDeg := []int{4, 2, 2, 2}
	got := g.EntityDegrees()
	for i, w := range wantDeg {
		if got[i] != w {
			t.Errorf("degree(%d) = %d, want %d", i, got[i], w)
		}
		if g.Degree(EntityID(i)) != w {
			t.Errorf("Degree(%d) = %d, want %d", i, g.Degree(EntityID(i)), w)
		}
	}
}

func TestSelfLoopCountedOnce(t *testing.T) {
	g := MustNewGraph("loop", 2, 1, []Triple{{0, 0, 0}, {0, 0, 1}})
	if d := g.Degree(0); d != 2 {
		t.Errorf("self-loop degree = %d, want 2 (loop once + edge once)", d)
	}
	if inc := g.IncidentTriples(0); len(inc) != 2 {
		t.Errorf("incident triples = %v, want 2 entries", inc)
	}
}

func TestIncidentTriples(t *testing.T) {
	g := tinyGraph(t)
	inc := g.IncidentTriples(1)
	if len(inc) != 2 {
		t.Fatalf("IncidentTriples(1) = %v, want 2 entries", inc)
	}
	for _, ti := range inc {
		tr := g.Triples[ti]
		if tr.Head != 1 && tr.Tail != 1 {
			t.Errorf("triple %v not incident to entity 1", tr)
		}
	}
}

func TestRelationCounts(t *testing.T) {
	g := tinyGraph(t)
	got := g.RelationCounts()
	if got[0] != 3 || got[1] != 2 {
		t.Errorf("RelationCounts = %v, want [3 2]", got)
	}
}

func TestSubgraphKeepsUniverse(t *testing.T) {
	g := tinyGraph(t)
	sub := g.Subgraph("sub", []int32{0, 3})
	if sub.NumEntity != g.NumEntity || sub.NumRel != g.NumRel {
		t.Error("Subgraph changed universe sizes")
	}
	if sub.NumTriples() != 2 {
		t.Errorf("Subgraph has %d triples, want 2", sub.NumTriples())
	}
	if sub.Triples[1] != g.Triples[3] {
		t.Errorf("Subgraph triple = %v, want %v", sub.Triples[1], g.Triples[3])
	}
}

func TestTripleSet(t *testing.T) {
	s := NewTripleSet([]Triple{{0, 0, 1}, {1, 0, 2}})
	if !s.Contains(Triple{0, 0, 1}) {
		t.Error("Contains missed a member")
	}
	if s.Contains(Triple{9, 9, 9}) {
		t.Error("Contains reported a non-member")
	}
	s.Add(Triple{9, 9, 9})
	if !s.Contains(Triple{9, 9, 9}) || s.Len() != 3 {
		t.Error("Add did not insert")
	}
}

func TestSplitTriples(t *testing.T) {
	triples := make([]Triple, 100)
	for i := range triples {
		triples[i] = Triple{EntityID(i % 10), RelationID(i % 3), EntityID((i + 1) % 10)}
	}
	g := MustNewGraph("g", 10, 3, triples)
	rng := rand.New(rand.NewSource(7))
	sp, err := SplitTriples(g, rng, 0.05, 0.05)
	if err != nil {
		t.Fatalf("SplitTriples: %v", err)
	}
	if sp.Train.NumTriples() != 90 || sp.Valid.NumTriples() != 5 || sp.Test.NumTriples() != 5 {
		t.Errorf("split sizes = %d/%d/%d, want 90/5/5",
			sp.Train.NumTriples(), sp.Valid.NumTriples(), sp.Test.NumTriples())
	}
	if sp.AllTriples().Len() == 0 {
		t.Error("AllTriples empty")
	}
	// Splits must be disjoint and cover everything.
	seen := map[Triple]int{}
	for _, part := range [][]Triple{sp.Train.Triples, sp.Valid.Triples, sp.Test.Triples} {
		for _, tr := range part {
			seen[tr]++
		}
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != 100 {
		t.Errorf("split covers %d triples, want 100", total)
	}
}

func TestSplitTriplesRejectsBadFractions(t *testing.T) {
	g := tinyGraph(t)
	rng := rand.New(rand.NewSource(1))
	for _, tc := range [][2]float64{{-0.1, 0.1}, {0.5, 0.5}, {0.1, -0.1}} {
		if _, err := SplitTriples(g, rng, tc[0], tc[1]); err == nil {
			t.Errorf("fractions %v accepted", tc)
		}
	}
}

func TestComputeStats(t *testing.T) {
	// A hub graph: entity 0 connects to everyone.
	var triples []Triple
	for i := 1; i < 100; i++ {
		triples = append(triples, Triple{0, RelationID(i % 2), EntityID(i)})
	}
	g := MustNewGraph("hub", 100, 2, triples)
	s := g.ComputeStats()
	if s.MaxEntityDegree != 99 {
		t.Errorf("MaxEntityDegree = %d, want 99", s.MaxEntityDegree)
	}
	// Top 1% = 1 entity (the hub), which sits in half of all entity slots.
	if s.Top1PctEntityShare < 0.45 || s.Top1PctEntityShare > 0.55 {
		t.Errorf("Top1PctEntityShare = %v, want ≈0.5", s.Top1PctEntityShare)
	}
	if s.NumTriples != 99 {
		t.Errorf("NumTriples = %d, want 99", s.NumTriples)
	}
}

func TestReadTSV(t *testing.T) {
	in := "alice\tknows\tbob\nbob\tknows\tcarol\n\n# comment\ncarol\tlikes\talice\n"
	g, v, err := ReadTSV(strings.NewReader(in), "toy")
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if g.NumTriples() != 3 || g.NumEntity != 3 || g.NumRel != 2 {
		t.Fatalf("parsed %d triples, %d entities, %d relations; want 3/3/2",
			g.NumTriples(), g.NumEntity, g.NumRel)
	}
	if v.EntityLabel(0) != "alice" || v.RelationLabel(1) != "likes" {
		t.Errorf("vocab labels wrong: %q %q", v.EntityLabel(0), v.RelationLabel(1))
	}
	if v.EntityLabel(99) != "" {
		t.Error("out-of-range entity label not empty")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, _, err := ReadTSV(strings.NewReader("a\tb\n"), "bad"); err == nil {
		t.Error("2-field line accepted")
	}
	if _, _, err := ReadTSV(strings.NewReader(""), "empty"); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	g2, _, err := ReadTSV(&buf, "roundtrip")
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if g2.NumTriples() != g.NumTriples() {
		t.Fatalf("round trip lost triples: %d vs %d", g2.NumTriples(), g.NumTriples())
	}
}

// Property: total degree equals head slots plus non-self-loop tail slots.
func TestDegreeSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		var triples []Triple
		for i := 0; i+2 < len(raw); i += 3 {
			triples = append(triples, Triple{
				Head:     EntityID(raw[i] % 16),
				Relation: RelationID(raw[i+1] % 4),
				Tail:     EntityID(raw[i+2] % 16),
			})
		}
		g := MustNewGraph("prop", 16, 4, triples)
		want := 0
		for _, tr := range triples {
			want++
			if tr.Head != tr.Tail {
				want++
			}
		}
		got := 0
		for _, d := range g.EntityDegrees() {
			got += d
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNumericVocab(t *testing.T) {
	v := NumericVocab(3, 2)
	if v.NumEntities() != 3 || v.NumRelations() != 2 {
		t.Fatalf("NumericVocab sizes %d/%d, want 3/2", v.NumEntities(), v.NumRelations())
	}
	if v.EntityLabel(2) != "2" || v.RelationLabel(0) != "0" {
		t.Error("NumericVocab labels wrong")
	}
}

func TestAddInverses(t *testing.T) {
	g := tinyGraph(t)
	aug := AddInverses(g)
	if aug.NumRel != 2*g.NumRel {
		t.Fatalf("NumRel = %d, want %d", aug.NumRel, 2*g.NumRel)
	}
	if aug.NumTriples() != 2*g.NumTriples() {
		t.Fatalf("triples = %d, want %d", aug.NumTriples(), 2*g.NumTriples())
	}
	if aug.NumEntity != g.NumEntity {
		t.Error("entity universe changed")
	}
	set := NewTripleSet(aug.Triples)
	for _, tr := range g.Triples {
		if !set.Contains(tr) {
			t.Fatalf("original triple %v lost", tr)
		}
		inv := Triple{Head: tr.Tail, Relation: tr.Relation + RelationID(g.NumRel), Tail: tr.Head}
		if !set.Contains(inv) {
			t.Fatalf("inverse of %v missing", tr)
		}
	}
	// The augmented graph must still validate.
	if _, err := NewGraph(aug.Name, aug.NumEntity, aug.NumRel, aug.Triples); err != nil {
		t.Fatalf("augmented graph invalid: %v", err)
	}
}
