package kg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTSV parses triples in the standard KGE benchmark format: one triple
// per line, "head<TAB>relation<TAB>tail", where the fields are arbitrary
// string labels (as in the FB15k/WN18 distribution files). Labels are
// interned into dense ids in first-seen order; the returned Vocab maps both
// directions. Blank lines and lines starting with '#' are skipped.
func ReadTSV(r io.Reader, name string) (*Graph, *Vocab, error) {
	v := NewVocab()
	var triples []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("kg: %s line %d: want 3 tab-separated fields, got %d", name, lineNo, len(fields))
		}
		triples = append(triples, Triple{
			Head:     v.EntityID(fields[0]),
			Relation: v.RelationID(fields[1]),
			Tail:     v.EntityID(fields[2]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("kg: reading %s: %w", name, err)
	}
	if len(triples) == 0 {
		return nil, nil, fmt.Errorf("kg: %s: no triples", name)
	}
	g, err := NewGraph(name, v.NumEntities(), v.NumRelations(), triples)
	if err != nil {
		return nil, nil, err
	}
	return g, v, nil
}

// WriteTSV writes the graph's triples using numeric labels (the inverse of
// ReadTSV with a numeric vocabulary).
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", t.Head, t.Relation, t.Tail); err != nil {
			return fmt.Errorf("kg: writing %s: %w", g.Name, err)
		}
	}
	return bw.Flush()
}

// Vocab interns string labels for entities and relations into dense ids.
type Vocab struct {
	entity   map[string]EntityID
	relation map[string]RelationID
	entNames []string
	relNames []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{
		entity:   make(map[string]EntityID),
		relation: make(map[string]RelationID),
	}
}

// EntityID interns the label and returns its id.
func (v *Vocab) EntityID(label string) EntityID {
	if id, ok := v.entity[label]; ok {
		return id
	}
	id := EntityID(len(v.entNames))
	v.entity[label] = id
	v.entNames = append(v.entNames, label)
	return id
}

// RelationID interns the label and returns its id.
func (v *Vocab) RelationID(label string) RelationID {
	if id, ok := v.relation[label]; ok {
		return id
	}
	id := RelationID(len(v.relNames))
	v.relation[label] = id
	v.relNames = append(v.relNames, label)
	return id
}

// EntityLabel returns the label for an interned entity id, or "" if unknown.
func (v *Vocab) EntityLabel(id EntityID) string {
	if int(id) < 0 || int(id) >= len(v.entNames) {
		return ""
	}
	return v.entNames[id]
}

// RelationLabel returns the label for an interned relation id, or "".
func (v *Vocab) RelationLabel(id RelationID) string {
	if int(id) < 0 || int(id) >= len(v.relNames) {
		return ""
	}
	return v.relNames[id]
}

// NumEntities returns the number of distinct entity labels interned.
func (v *Vocab) NumEntities() int { return len(v.entNames) }

// NumRelations returns the number of distinct relation labels interned.
func (v *Vocab) NumRelations() int { return len(v.relNames) }

// NumericVocab builds a vocabulary whose labels are just the decimal ids,
// matching WriteTSV output.
func NumericVocab(numEntity, numRel int) *Vocab {
	v := NewVocab()
	for i := 0; i < numEntity; i++ {
		v.EntityID(strconv.Itoa(i))
	}
	for i := 0; i < numRel; i++ {
		v.RelationID(strconv.Itoa(i))
	}
	return v
}
