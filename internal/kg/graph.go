package kg

import (
	"fmt"
	"sort"
)

// Graph is an immutable knowledge graph: a triple list plus the entity and
// relation universe sizes. Adjacency (CSR) and degree tables are built
// lazily because not every consumer needs them.
type Graph struct {
	Name       string
	NumEntity  int
	NumRel     int
	Triples    []Triple
	adjOnce    bool
	adjOffsets []int32 // CSR offsets into adjTriples, per entity (undirected incidence)
	adjTriples []int32 // indices into Triples
}

// NewGraph validates the triple list against the declared universe sizes and
// returns the graph. Triples referencing out-of-range ids are an error: they
// would index embedding tables out of bounds much later and much less
// legibly.
func NewGraph(name string, numEntity, numRel int, triples []Triple) (*Graph, error) {
	if numEntity <= 0 || numRel <= 0 {
		return nil, fmt.Errorf("kg: graph %q: non-positive universe (%d entities, %d relations)", name, numEntity, numRel)
	}
	for i, t := range triples {
		if t.Head < 0 || int(t.Head) >= numEntity || t.Tail < 0 || int(t.Tail) >= numEntity {
			return nil, fmt.Errorf("kg: graph %q: triple %d %v has entity out of range [0,%d)", name, i, t, numEntity)
		}
		if t.Relation < 0 || int(t.Relation) >= numRel {
			return nil, fmt.Errorf("kg: graph %q: triple %d %v has relation out of range [0,%d)", name, i, t, numRel)
		}
	}
	return &Graph{Name: name, NumEntity: numEntity, NumRel: numRel, Triples: triples}, nil
}

// MustNewGraph is NewGraph that panics on error, for tests and generators
// whose inputs are correct by construction.
func MustNewGraph(name string, numEntity, numRel int, triples []Triple) *Graph {
	g, err := NewGraph(name, numEntity, numRel, triples)
	if err != nil {
		panic(err)
	}
	return g
}

// NumTriples returns the number of triples (edges).
func (g *Graph) NumTriples() int { return len(g.Triples) }

// buildAdjacency constructs the undirected incidence CSR: for each entity,
// the indices of all triples in which it appears as head or tail.
func (g *Graph) buildAdjacency() {
	if g.adjOnce {
		return
	}
	deg := make([]int32, g.NumEntity+1)
	for _, t := range g.Triples {
		deg[t.Head+1]++
		if t.Tail != t.Head {
			deg[t.Tail+1]++
		}
	}
	for i := 1; i <= g.NumEntity; i++ {
		deg[i] += deg[i-1]
	}
	g.adjOffsets = deg
	g.adjTriples = make([]int32, deg[g.NumEntity])
	cursor := make([]int32, g.NumEntity)
	for i, t := range g.Triples {
		h := t.Head
		g.adjTriples[g.adjOffsets[h]+cursor[h]] = int32(i)
		cursor[h]++
		if t.Tail != t.Head {
			tl := t.Tail
			g.adjTriples[g.adjOffsets[tl]+cursor[tl]] = int32(i)
			cursor[tl]++
		}
	}
	g.adjOnce = true
}

// IncidentTriples returns the indices (into Triples) of all triples incident
// to entity e. The returned slice aliases internal storage; callers must not
// modify it.
func (g *Graph) IncidentTriples(e EntityID) []int32 {
	g.buildAdjacency()
	return g.adjTriples[g.adjOffsets[e]:g.adjOffsets[e+1]]
}

// Degree returns the number of triples incident to entity e.
func (g *Graph) Degree(e EntityID) int {
	g.buildAdjacency()
	return int(g.adjOffsets[e+1] - g.adjOffsets[e])
}

// EntityDegrees returns the degree of every entity.
func (g *Graph) EntityDegrees() []int {
	g.buildAdjacency()
	out := make([]int, g.NumEntity)
	for i := range out {
		out[i] = int(g.adjOffsets[i+1] - g.adjOffsets[i])
	}
	return out
}

// RelationCounts returns, for every relation, the number of triples using it.
func (g *Graph) RelationCounts() []int {
	out := make([]int, g.NumRel)
	for _, t := range g.Triples {
		out[t.Relation]++
	}
	return out
}

// Subgraph returns a new Graph over the same entity/relation universe
// containing only the triples at the given indices. It is how partitions
// materialize per-worker subgraphs without re-numbering ids (ids must stay
// global so embedding keys agree across workers).
func (g *Graph) Subgraph(name string, idx []int32) *Graph {
	ts := make([]Triple, len(idx))
	for i, j := range idx {
		ts[i] = g.Triples[j]
	}
	return &Graph{Name: name, NumEntity: g.NumEntity, NumRel: g.NumRel, Triples: ts}
}

// Stats summarizes the structural properties that drive HET-KG's cache
// design: skew of entity degrees and concentration of relation usage.
type Stats struct {
	NumEntity, NumRel, NumTriples int
	MaxEntityDegree               int
	MeanEntityDegree              float64
	// TopEntityShare[p] is the fraction of all entity slots (2 per triple)
	// occupied by the top p-fraction of entities by degree. The paper's
	// FB15k observation: top 1% of entities ≈ 6% of usage.
	Top1PctEntityShare float64
	// Top1PctRelationShare is the fraction of triples using the top 1% of
	// relations (paper: ≈36% on FB15k).
	Top1PctRelationShare float64
}

// ComputeStats scans the graph once and derives Stats.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NumEntity: g.NumEntity, NumRel: g.NumRel, NumTriples: len(g.Triples)}
	deg := g.EntityDegrees()
	total := 0
	for _, d := range deg {
		total += d
		if d > s.MaxEntityDegree {
			s.MaxEntityDegree = d
		}
	}
	if g.NumEntity > 0 {
		s.MeanEntityDegree = float64(total) / float64(g.NumEntity)
	}
	s.Top1PctEntityShare = topShare(deg, 0.01)
	s.Top1PctRelationShare = topShare(g.RelationCounts(), 0.01)
	return s
}

// topShare returns the fraction of sum(counts) held by the top frac of
// items when sorted by count descending. At least one item is always
// counted so tiny universes still produce a meaningful number.
func topShare(counts []int, frac float64) float64 {
	if len(counts) == 0 {
		return 0
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	k := int(float64(len(sorted)) * frac)
	if k < 1 {
		k = 1
	}
	total, top := 0, 0
	for i, c := range sorted {
		total += c
		if i < k {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// AddInverses returns a graph augmented with reciprocal relations: every
// relation r gains an inverse with id r + NumRel, and every triple
// (h, r, t) gains (t, r⁻¹, h). Standard KGE preprocessing — it lets a model
// answer head-corruption queries through the inverse relation's tail slot,
// which helps translational models in particular. Apply to the training
// split only; evaluation stays on the original relations.
func AddInverses(g *Graph) *Graph {
	triples := make([]Triple, 0, 2*len(g.Triples))
	triples = append(triples, g.Triples...)
	for _, t := range g.Triples {
		triples = append(triples, Triple{
			Head:     t.Tail,
			Relation: t.Relation + RelationID(g.NumRel),
			Tail:     t.Head,
		})
	}
	return &Graph{
		Name:      g.Name + "+inv",
		NumEntity: g.NumEntity,
		NumRel:    2 * g.NumRel,
		Triples:   triples,
	}
}
