package kg

import (
	"fmt"
	"math/rand"
)

// Split is a train/validation/test partition of a graph's triples. All three
// share the parent graph's entity/relation universe.
type Split struct {
	Train *Graph
	Valid *Graph
	Test  *Graph
}

// SplitTriples shuffles the graph's triples with rng and divides them by the
// given fractions (validFrac and testFrac; the remainder trains). The paper
// uses the standard FB15k/WN18 splits and 90/5/5 on Freebase-86m.
func SplitTriples(g *Graph, rng *rand.Rand, validFrac, testFrac float64) (Split, error) {
	if validFrac < 0 || testFrac < 0 || validFrac+testFrac >= 1 {
		return Split{}, fmt.Errorf("kg: invalid split fractions valid=%v test=%v", validFrac, testFrac)
	}
	n := len(g.Triples)
	perm := rng.Perm(n)
	nValid := int(float64(n) * validFrac)
	nTest := int(float64(n) * testFrac)
	nTrain := n - nValid - nTest

	pick := func(name string, idx []int) *Graph {
		ts := make([]Triple, len(idx))
		for i, j := range idx {
			ts[i] = g.Triples[j]
		}
		return &Graph{Name: name, NumEntity: g.NumEntity, NumRel: g.NumRel, Triples: ts}
	}
	return Split{
		Train: pick(g.Name+"-train", perm[:nTrain]),
		Valid: pick(g.Name+"-valid", perm[nTrain:nTrain+nValid]),
		Test:  pick(g.Name+"-test", perm[nTrain+nValid:]),
	}, nil
}

// AllTriples returns a TripleSet over train+valid+test, the universe used by
// filtered evaluation.
func (s Split) AllTriples() *TripleSet {
	return NewTripleSet(s.Train.Triples, s.Valid.Triples, s.Test.Triples)
}
