// Package kg defines the knowledge-graph representation shared by the whole
// system: triples, the Graph container with adjacency and degree statistics,
// dataset splits, and TSV import/export.
//
// A knowledge graph is G = {(h, r, t) | h, t ∈ E, r ∈ R}. Entities and
// relations are identified by dense int32 ids so embedding tables can be
// plain dense matrices indexed by id.
package kg

import "fmt"

// EntityID identifies an entity (a vertex of the knowledge graph).
type EntityID int32

// RelationID identifies a relation (an edge label).
type RelationID int32

// Triple is one (head, relation, tail) fact.
type Triple struct {
	Head     EntityID
	Relation RelationID
	Tail     EntityID
}

// String renders the triple as "(h, r, t)".
func (t Triple) String() string {
	return fmt.Sprintf("(%d, %d, %d)", t.Head, t.Relation, t.Tail)
}

// TripleSet is a membership index over triples, used by the filtered
// link-prediction protocol ("filtered MRR") to exclude known positives from
// the candidate ranking, and by samplers to reject false negatives.
type TripleSet struct {
	m map[Triple]struct{}
}

// NewTripleSet builds a set containing all triples of the given slices.
func NewTripleSet(lists ...[]Triple) *TripleSet {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	s := &TripleSet{m: make(map[Triple]struct{}, n)}
	for _, l := range lists {
		for _, t := range l {
			s.m[t] = struct{}{}
		}
	}
	return s
}

// Contains reports whether t is in the set.
func (s *TripleSet) Contains(t Triple) bool {
	_, ok := s.m[t]
	return ok
}

// Add inserts t into the set.
func (s *TripleSet) Add(t Triple) { s.m[t] = struct{}{} }

// Len returns the number of distinct triples in the set.
func (s *TripleSet) Len() int { return len(s.m) }
