package train

import (
	"net"
	"testing"

	"hetkg/internal/ps"
)

// TestTrainingOverRealTCP runs the full HET-KG training loop — prefetch,
// cache builds, staleness refreshes, per-batch pulls and pushes — through
// real loopback sockets instead of the in-process transport, proving the
// wire protocol carries the entire workload, not just single calls.
func TestTrainingOverRealTCP(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0

	var listeners []net.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	var transports []*ps.TCPTransport
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		var addrs []string
		for _, srv := range c.Servers {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			listeners = append(listeners, l)
			addrs = append(addrs, l.Addr().String())
			go ps.ServeTCP(l, srv)
		}
		tr, err := ps.DialTCP(addrs)
		if err != nil {
			return nil, err
		}
		transports = append(transports, tr)
		return tr, nil
	}

	tcpRes, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("TrainHETKG over TCP: %v", err)
	}
	if tcpRes.HitRatio <= 0 {
		t.Error("cache never hit over TCP")
	}

	// The exact same run over the in-process transport must produce
	// identical embeddings: the transport is pure plumbing.
	inprocCfg := testConfig(t, 2)
	inprocCfg.Epochs = 1
	inprocCfg.EvalEvery = 0
	inprocRes, err := TrainHETKG(inprocCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tcpRes.Entities.Data {
		if tcpRes.Entities.Data[i] != inprocRes.Entities.Data[i] {
			t.Fatalf("TCP and in-process runs diverge at entity datum %d", i)
		}
	}
}
