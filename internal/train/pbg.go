package train

import (
	"math/rand"
	"sort"
	"time"

	"hetkg/internal/kg"
	"hetkg/internal/metrics"
	"hetkg/internal/netsim"
	"hetkg/internal/opt"
	"hetkg/internal/vec"
)

// TrainPBG runs the PyTorch-BigGraph-style baseline (§III-B): entities are
// divided into disjoint buckets stored on a shared filesystem; workers
// acquire (source, destination) bucket pairs from a lock server, load both
// entity partitions (parameters plus optimizer state), train the pair's
// edges with locally updated entity embeddings, synchronize relation
// embeddings as *dense* parameters through a shared server after every
// pair, and save the partitions back.
//
// The cost structure reproduces PBG's documented weaknesses: bucket
// swapping moves entire partitions per pair, dense relation sync scales
// with the relation-matrix size (ruinous on many-relation graphs like
// FB15k), and the lock server limits parallelism because concurrent pairs
// must be bucket-disjoint (§VI-C.2's flat speedup curve).
func TrainPBG(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	entDim := cfg.Model.EntityDim(cfg.Dim)
	relDim := cfg.Model.RelationDim(cfg.Dim)
	st := &pbgState{
		cfg:     &cfg,
		ents:    vec.NewMatrix(cfg.Graph.NumEntity, entDim),
		rels:    vec.NewMatrix(cfg.Graph.NumRel, relDim),
		entOpt:  cfg.NewOptimizer(),
		relOpt:  cfg.NewOptimizer(),
		rng:     rng,
		relGrad: vec.NewMatrix(cfg.Graph.NumRel, relDim),
		gh:      make([]float32, entDim),
		gt:      make([]float32, entDim),
		gn:      make([]float32, entDim),
	}
	st.ents.InitKGE(rng)
	st.rels.InitUniform(rng, 6/float32sqrt(relDim))

	// Bucket entities uniformly. PBG uses at least as many buckets as
	// trainers so pairs can be disjoint.
	// PBG requires at least 2× as many buckets as trainers so the lock
	// server can hand out disjoint pairs.
	numWorkers := cfg.NumMachines * cfg.WorkersPerMachine
	numBuckets := 2 * numWorkers
	if numBuckets < 2 {
		numBuckets = 2
	}
	st.bucketOf = make([]int32, cfg.Graph.NumEntity)
	for e := range st.bucketOf {
		st.bucketOf[e] = int32(rng.Intn(numBuckets))
	}
	st.bucketSize = make([]int, numBuckets)
	for _, b := range st.bucketOf {
		st.bucketSize[b]++
	}
	// Group edges by bucket pair.
	pairEdges := make(map[[2]int32][]kg.Triple)
	for _, tr := range cfg.Graph.Triples {
		key := [2]int32{st.bucketOf[tr.Head], st.bucketOf[tr.Tail]}
		pairEdges[key] = append(pairEdges[key], tr)
	}
	// Deterministic pair order.
	pairs := make([][2]int32, 0, len(pairEdges))
	for p := range pairEdges {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	// Bucket members for in-pair negative corruption.
	members := make([][]kg.EntityID, numBuckets)
	for e, b := range st.bucketOf {
		members[b] = append(members[b], kg.EntityID(e))
	}

	res := &Result{System: "PBG", Metrics: cfg.Metrics}
	var cum time.Duration
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		var pairTimes []pairCost
		var lossSum float64
		var lossN int
		for _, pk := range pairs {
			edges := pairEdges[pk]
			comp, comm, loss := st.trainPair(pk, edges, members)
			pairTimes = append(pairTimes, pairCost{pk, comp, comm})
			lossSum += loss
			lossN++
		}
		comp, comm := schedulePairs(pairTimes, numWorkers)
		stat := metrics.EpochStat{Epoch: epoch, Comp: comp, Comm: comm}
		if lossN > 0 {
			stat.Loss = lossSum / float64(lossN)
		}
		cum += stat.Total()
		stat.CumTime = cum
		if cfg.EvalEvery > 0 && len(cfg.Valid) > 0 && epoch%cfg.EvalEvery == 0 {
			ev, err := evalNow(&cfg, st.ents, st.rels)
			if err != nil {
				return nil, err
			}
			stat.MRR = ev.MRR
		}
		res.Epochs = append(res.Epochs, stat)
	}

	res.Entities, res.Relations = st.ents, st.rels
	if cfg.EvalEvery > 0 && len(cfg.Valid) > 0 {
		ev, err := evalNow(&cfg, st.ents, st.rels)
		if err != nil {
			return nil, err
		}
		res.Final = ev
	}
	for _, e := range res.Epochs {
		res.Comp += e.Comp
		res.Comm += e.Comm
	}
	res.Traffic = st.traffic
	return res, nil
}

// pbgState is the PBG trainer's world: full embedding tables standing in
// for the shared filesystem, shared optimizers, and traffic accounting.
type pbgState struct {
	cfg        *Config
	ents, rels *vec.Matrix
	entOpt     opt.Optimizer
	relOpt     opt.Optimizer
	rng        *rand.Rand
	bucketOf   []int32
	bucketSize []int
	relGrad    *vec.Matrix // scratch: per-pair dense relation gradient
	gh, gt, gn []float32   // scratch: per-edge entity gradients, zeroed per use
	traffic    netsim.Snapshot
}

// pairCost is one bucket pair's simulated execution cost.
type pairCost struct {
	pair       [2]int32
	comp, comm time.Duration
}

// trainPair processes one bucket pair: charge the swap traffic, train its
// edges in mini-batches with in-bucket negatives, and charge the dense
// relation synchronization.
func (st *pbgState) trainPair(pk [2]int32, edges []kg.Triple, members [][]kg.EntityID) (comp, comm time.Duration, meanLoss float64) {
	cfg := st.cfg
	entDim := st.ents.Dim
	relDim := st.rels.Dim

	// Bucket swap: load parameters + AdaGrad state for both buckets, and
	// save them back afterwards (2x each way). Same-bucket pairs move one
	// bucket.
	rows := st.bucketSize[pk[0]]
	if pk[1] != pk[0] {
		rows += st.bucketSize[pk[1]]
	}
	swapBytes := int64(rows) * int64(entDim) * 4 * 2 // params + optimizer state
	st.charge(4, swapBytes*2)                        // load + save

	// Dense relation sync: push the full relation gradient matrix and pull
	// fresh values (PBG treats relations as dense model weights).
	relBytes := int64(st.rels.Rows) * int64(relDim) * 4
	st.charge(2, relBytes*2)

	// Train the pair's edges.
	start := time.Now()
	for i := range st.relGrad.Data {
		st.relGrad.Data[i] = 0
	}
	negPool := members[pk[1]] // corrupt tails within the destination bucket
	if len(negPool) == 0 {
		negPool = members[pk[0]]
	}
	var lossSum float64
	pairsN := 0
	for _, tr := range edges {
		h := st.ents.Row(int(tr.Head))
		r := st.rels.Row(int(tr.Relation))
		t := st.ents.Row(int(tr.Tail))
		posScore := cfg.Model.Score(h, r, t)
		gh, gt := st.gh, st.gt
		vec.Zero(gh)
		vec.Zero(gt)
		gr := st.relGrad.Row(int(tr.Relation))
		scale := float32(1) / float32(cfg.NegPerPos)
		for n := 0; n < cfg.NegPerPos; n++ {
			ne := negPool[st.rng.Intn(len(negPool))]
			neRow := st.ents.Row(int(ne))
			negScore := cfg.Model.Score(h, r, neRow)
			loss, dPos, dNeg := cfg.Loss.PosNeg(posScore, negScore)
			lossSum += float64(loss)
			pairsN++
			if dPos != 0 {
				cfg.Model.Grad(h, r, t, dPos*scale, gh, gr, gt)
			}
			if dNeg != 0 {
				gn := st.gn
				vec.Zero(gn)
				cfg.Model.Grad(h, r, neRow, dNeg*scale, gn, gr, nil)
				st.entOpt.Apply(uint64(ne), neRow, gn)
			}
		}
		// Entities update locally and immediately (Hogwild-style threads
		// without synchronization, PBG step 3).
		st.entOpt.Apply(uint64(tr.Head), h, gh)
		st.entOpt.Apply(uint64(tr.Tail), t, gt)
	}
	// Apply accumulated relation gradients through the shared server.
	for rel := 0; rel < st.rels.Rows; rel++ {
		g := st.relGrad.Row(rel)
		if isZero(g) {
			continue
		}
		st.relOpt.Apply(uint64(rel), st.rels.Row(rel), g)
	}
	comp = time.Since(start)
	comm = cfg.CostModel.RemoteTime(6, swapBytes*2+relBytes*2)
	if pairsN > 0 {
		meanLoss = lossSum / float64(pairsN)
	}
	return comp, comm, meanLoss
}

// charge records shared-filesystem traffic (always remote: the shared FS
// sits across the network from every worker).
func (st *pbgState) charge(msgs, bytes int64) {
	st.traffic.RemoteMsgs += msgs
	st.traffic.RemoteBytes += bytes
}

// schedulePairs computes the epoch makespan under the lock-server
// constraint: a pair can run only when both its buckets are free, and at
// most numWorkers pairs run at once. Greedy list scheduling over the
// deterministic pair order.
func schedulePairs(costs []pairCost, numWorkers int) (comp, comm time.Duration) {
	if numWorkers < 1 {
		numWorkers = 1
	}
	workerFree := make([]time.Duration, numWorkers)
	bucketFree := map[int32]time.Duration{}
	var makespan time.Duration
	var compTotal, totalTotal time.Duration
	for _, pc := range costs {
		// Earliest-available worker.
		wi := 0
		for i := 1; i < numWorkers; i++ {
			if workerFree[i] < workerFree[wi] {
				wi = i
			}
		}
		start := workerFree[wi]
		if t := bucketFree[pc.pair[0]]; t > start {
			start = t
		}
		if t := bucketFree[pc.pair[1]]; t > start {
			start = t
		}
		dur := pc.comp + pc.comm
		end := start + dur
		workerFree[wi] = end
		bucketFree[pc.pair[0]] = end
		bucketFree[pc.pair[1]] = end
		if end > makespan {
			makespan = end
		}
		compTotal += pc.comp
		totalTotal += dur
	}
	if totalTotal == 0 {
		return 0, 0
	}
	// Split the makespan between comp and comm in proportion to the
	// aggregate mix, preserving both the critical path and the breakdown.
	compFrac := float64(compTotal) / float64(totalTotal)
	comp = time.Duration(float64(makespan) * compFrac)
	comm = makespan - comp
	return comp, comm
}

func isZero(x []float32) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

func float32sqrt(n int) float32 {
	x := float32(1)
	f := float32(n)
	for i := 0; i < 20; i++ {
		x = (x + f/x) / 2
	}
	return x
}
