package train

import (
	"errors"
	"strings"
	"testing"

	"hetkg/internal/ps"
)

// flakyTransport wraps a real transport and fails the n-th operation, for
// verifying that transport errors surface as clean trainer errors instead
// of panics, hangs, or silently corrupted results.
type flakyTransport struct {
	inner    ps.Transport
	failAt   int
	opCount  int
	failPull bool
	failPush bool
}

var errInjected = errors.New("injected network failure")

func (f *flakyTransport) Pull(shard int, req *ps.PullRequest) (*ps.PullResponse, error) {
	f.opCount++
	if f.failPull && f.opCount >= f.failAt {
		return nil, errInjected
	}
	return f.inner.Pull(shard, req)
}

func (f *flakyTransport) Push(shard int, req *ps.PushRequest) error {
	f.opCount++
	if f.failPush && f.opCount >= f.failAt {
		return errInjected
	}
	return f.inner.Push(shard, req)
}

func (f *flakyTransport) Close() error { return f.inner.Close() }

func TestTrainerSurfacesPullFailure(t *testing.T) {
	for _, mode := range []string{"pull", "push"} {
		t.Run(mode, func(t *testing.T) {
			cfg := testConfig(t, 2)
			cfg.Epochs = 1
			cfg.EvalEvery = 0
			cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
				return &flakyTransport{
					inner:    ps.NewInProc(c),
					failAt:   25,
					failPull: mode == "pull",
					failPush: mode == "push",
				}, nil
			}
			_, err := TrainHETKG(cfg)
			if err == nil {
				t.Fatal("trainer swallowed a transport failure")
			}
			if !errors.Is(err, errInjected) && !strings.Contains(err.Error(), "injected") {
				t.Errorf("error does not identify the cause: %v", err)
			}
		})
	}
}

func TestTrainerSurfacesEarlyFailure(t *testing.T) {
	// Failing the very first operation exercises the cache-build path.
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		return &flakyTransport{inner: ps.NewInProc(c), failAt: 1, failPull: true}, nil
	}
	if _, err := TrainHETKG(cfg); err == nil {
		t.Fatal("first-pull failure swallowed")
	}
	// DGL-KE path too.
	cfg2 := testConfig(t, 2)
	cfg2.Epochs = 1
	cfg2.EvalEvery = 0
	cfg2.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		return &flakyTransport{inner: ps.NewInProc(c), failAt: 1, failPull: true}, nil
	}
	if _, err := TrainDGLKE(cfg2); err == nil {
		t.Fatal("DGL-KE first-pull failure swallowed")
	}
}

func TestTransportConstructionFailure(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		return nil, errors.New("cannot reach cluster")
	}
	if _, err := TrainDGLKE(cfg); err == nil || !strings.Contains(err.Error(), "cannot reach cluster") {
		t.Fatalf("transport construction error not surfaced: %v", err)
	}
}
