package train

import (
	"bytes"
	"encoding/json"
	"testing"

	"hetkg/internal/metrics"
)

// timelineRun trains HET-KG on the small test workload with a timeline
// attached and returns the parsed timeline.
func timelineRun(t *testing.T) *metrics.TimelineRun {
	t.Helper()
	cfg := testConfig(t, 2)
	cfg.EvalEvery = 0
	cfg.Parallelism = 1
	cfg.Dataset = "traintest"
	cfg.TimelineEvery = 2
	var buf bytes.Buffer
	cfg.Timeline = &buf
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("TrainHETKG: %v", err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil")
	}
	run, err := metrics.ReadTimeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTimeline: %v", err)
	}
	return run
}

// TestTimelineEmission checks a training run emits a well-formed timeline:
// enough records, and the last record carrying every headline series —
// loss, cache hit ratio, staleness quantiles, PS byte counts, simulated
// wire time — plus wall-clock readings in the separate wall object.
func TestTimelineEmission(t *testing.T) {
	run := timelineRun(t)
	if run.Header.System != "HET-KG-C" || run.Header.Dataset != "traintest" || run.Header.Every != 2 {
		t.Fatalf("header = %+v", run.Header)
	}
	if len(run.Records) < 10 {
		t.Fatalf("got %d records, want >= 10", len(run.Records))
	}
	last := run.Records[len(run.Records)-1]
	if last.Loss <= 0 {
		t.Errorf("last record loss = %v", last.Loss)
	}
	if v := last.Metrics[metrics.MCacheHitRatio]; v.Kind != metrics.KindGauge || v.Value <= 0 {
		t.Errorf("cache.hit_ratio = %+v", v)
	}
	if v := last.Metrics[metrics.MCacheStaleness]; v.Kind != metrics.KindHistogram ||
		v.Count == 0 || v.Quantiles == nil {
		t.Errorf("cache.staleness = %+v", v)
	}
	if v := last.Metrics[metrics.MPSBytesTx]; v.Count <= 0 {
		t.Errorf("ps.bytes_tx = %+v", v)
	}
	if v := last.Metrics[metrics.MPSBytesRx]; v.Count <= 0 {
		t.Errorf("ps.bytes_rx = %+v", v)
	}
	if v := last.Metrics[metrics.MNetSimWire]; v.Count <= 0 {
		t.Errorf("net.sim_wire_ns = %+v", v)
	}
	if v := last.Metrics[metrics.MTrainIterations]; v.Count <= 0 {
		t.Errorf("train.iterations = %+v", v)
	}
	if v := last.Metrics[metrics.MPSServerPulls]; v.Count <= 0 {
		t.Errorf("ps.server.pulls = %+v", v)
	}
	if last.Wall == nil || last.Wall.ElapsedMS <= 0 {
		t.Errorf("wall = %+v", last.Wall)
	}
	// Timers must never leak into the deterministic snapshot.
	if _, ok := last.Metrics[metrics.MTrainCompWall]; ok {
		t.Error("wall-clock timer leaked into a timeline record")
	}
}

// TestTimelineDeterministic re-runs the same configuration and requires the
// two timelines to be bit-identical once the wall-clock object is stripped:
// the paper-reproduction contract is that every value under "metrics"
// derives from deterministic quantities only.
func TestTimelineDeterministic(t *testing.T) {
	strip := func(run *metrics.TimelineRun) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, rec := range run.Records {
			rec.Wall = nil
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a := timelineRun(t)
	b := timelineRun(t)
	if !bytes.Equal(strip(a), strip(b)) {
		t.Fatal("timelines differ between identical runs")
	}
}
