package train

import (
	"sort"

	"hetkg/internal/metrics"
	"hetkg/internal/ps"
)

// errorFeedback is a worker's top-k gradient sparsifier with error
// feedback, the push half of the "topk" codec profile. Before a push, each
// gradient row is compensated with the row's accumulated residual, its
// largest-|g| coordinates are kept, and everything else is zeroed back
// INTO the residual — so dropped mass is re-sent on a later push instead
// of being lost, which is what preserves convergence (the EF invariant:
// at any point, sum of pushed values + residual = sum of raw gradients,
// per coordinate, up to float addition error).
//
// The sparsified rows then hit the wire through the "sparse" row codec,
// which ships only nonzero coordinates. The cache's local copy is updated
// with the raw gradient before sparsification (worker.processBatch), so
// only the cross-machine exchange is approximated — mirroring how the
// delta codec leans on the cache's staleness tolerance.
//
// errorFeedback is confined to its owning worker goroutine. Residual rows
// are allocated once per touched key and reused for the whole run.
type errorFeedback struct {
	// ratio is the kept fraction per row; keep = max(1, round(ratio·w)).
	ratio float64
	resid map[ps.Key][]float32
	abs   []float64 // selection scratch, reused across rows

	dropped *metrics.Counter // nil when unwired
}

func newErrorFeedback(ratio float64, reg *metrics.Registry) *errorFeedback {
	ef := &errorFeedback{ratio: ratio, resid: make(map[ps.Key][]float32)}
	if reg != nil {
		ef.dropped = reg.Counter(metrics.MPSCodecRowsTopkDropped)
	}
	return ef
}

// keepCount returns how many coordinates of a width-w row survive.
func (ef *errorFeedback) keepCount(w int) int {
	k := int(ef.ratio*float64(w) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > w {
		k = w
	}
	return k
}

// residual returns k's residual row, allocating it zeroed on first touch.
func (ef *errorFeedback) residual(k ps.Key, w int) []float32 {
	r, ok := ef.resid[k]
	if !ok {
		r = make([]float32, w)
		ef.resid[k] = r
	}
	return r
}

// Sparsify compensates g with k's residual and keeps only the top
// largest-|g| coordinates in place; dropped coordinates move back into the
// residual. Selection is deterministic: the magnitude threshold is the
// keep-th largest |g|, strict winners all survive, and ties at the
// threshold fill the remaining quota in ascending index order.
func (ef *errorFeedback) Sparsify(k ps.Key, g []float32) {
	w := len(g)
	if w == 0 {
		return
	}
	r := ef.residual(k, w)
	for i := range g {
		g[i] += r[i]
	}
	keep := ef.keepCount(w)
	if keep >= w {
		for i := range r {
			r[i] = 0
		}
		return
	}
	if cap(ef.abs) < w {
		ef.abs = make([]float64, w)
	}
	abs := ef.abs[:w]
	for i, v := range g {
		a := float64(v)
		if a < 0 {
			a = -a
		}
		abs[i] = a
	}
	sort.Float64s(abs)
	thr := abs[w-keep]
	// Quota for coordinates sitting exactly at the threshold: keep minus
	// the strict winners.
	quota := keep
	for _, a := range abs[w-keep:] {
		if a > thr {
			quota--
		}
	}
	var droppedHere int64
	for i, v := range g {
		a := float64(v)
		if a < 0 {
			a = -a
		}
		switch {
		case a > thr:
			r[i] = 0
		case a == thr && quota > 0:
			quota--
			r[i] = 0
		default:
			r[i] = g[i]
			g[i] = 0
			droppedHere++
		}
	}
	if ef.dropped != nil {
		ef.dropped.Add(droppedHere)
	}
}
