package train

import (
	"errors"
	"strings"
	"testing"

	"hetkg/internal/metrics"
	"hetkg/internal/ps"
)

// outageTransport simulates one shard going dark for a deterministic window
// of transport operations: calls targeting the shard inside [from, until)
// fail with ps.LinkDownError — the exact error shape the TCP link layer
// produces once retries are exhausted or the breaker is open — while every
// other call passes through. until < 0 means the shard never recovers.
// Scheduling is deterministic (round-robin workers, serial per-shard RPCs),
// so the same window yields the identical fault schedule on every run.
type outageTransport struct {
	inner ps.Transport
	shard int
	from  int
	until int
	ops   int
}

func (o *outageTransport) down(shard int) bool {
	op := o.ops
	o.ops++
	if shard != o.shard || op < o.from {
		return false
	}
	return o.until < 0 || op < o.until
}

func (o *outageTransport) Pull(shard int, req *ps.PullRequest) (*ps.PullResponse, error) {
	if o.down(shard) {
		return nil, &ps.LinkDownError{Shard: shard, Addr: "outage-test", Err: errors.New("injected outage")}
	}
	return o.inner.Pull(shard, req)
}

func (o *outageTransport) Push(shard int, req *ps.PushRequest) error {
	if o.down(shard) {
		return &ps.LinkDownError{Shard: shard, Addr: "outage-test", Err: errors.New("injected outage")}
	}
	return o.inner.Push(shard, req)
}

func (o *outageTransport) Close() error { return o.inner.Close() }

// degradedConfig is testConfig tuned so a mid-epoch outage is survivable:
// the hot table is big enough to hold the whole epoch-1 census (every key
// the epoch will touch is stale-servable) and the staleness bound is wide.
func degradedConfig(t *testing.T, from, until int) Config {
	t.Helper()
	cfg := testConfig(t, 2)
	cfg.Epochs = 2
	cfg.EvalEvery = 0
	cfg.Cache.Capacity = 5000
	cfg.DegradedMaxStaleness = 10000
	cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		return &outageTransport{inner: ps.NewInProc(c), shard: 1, from: from, until: until}, nil
	}
	return cfg
}

// TestDegradedSurvivesShardOutage is the degraded-mode happy path: shard 1
// goes dark mid-epoch, training rides through on stale cache rows and
// buffered pushes, the shard recovers, and every buffered gradient row
// replays — nothing is dropped, and the whole run is deterministic.
func TestDegradedSurvivesShardOutage(t *testing.T) {
	run := func() (*Result, *metrics.Registry) {
		t.Helper()
		cfg := degradedConfig(t, 40, 120)
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		res, err := TrainHETKG(cfg)
		if err != nil {
			t.Fatalf("degraded run failed: %v", err)
		}
		return res, reg
	}
	res, reg := run()

	batches := reg.Counter(metrics.MTrainDegradedBatches).Value()
	stale := reg.Counter(metrics.MTrainDegradedStaleRows).Value()
	buffered := reg.Counter(metrics.MTrainDegradedBufferedRows).Value()
	replayed := reg.Counter(metrics.MTrainDegradedReplayedRows).Value()
	if batches == 0 {
		t.Error("no batch ran degraded during the outage window")
	}
	if stale == 0 {
		t.Error("no pull was served stale during the outage")
	}
	if buffered == 0 {
		t.Error("no push was buffered during the outage")
	}
	if replayed != buffered {
		t.Errorf("replayed %d of %d buffered rows — update mass dropped or double-counted", replayed, buffered)
	}

	// Determinism: an identical second run (same seed, same fault window)
	// must produce bit-identical embeddings.
	res2, _ := run()
	if len(res.Entities.Data) != len(res2.Entities.Data) {
		t.Fatalf("entity table size differs across identical runs: %d vs %d",
			len(res.Entities.Data), len(res2.Entities.Data))
	}
	for i := range res.Entities.Data {
		if res.Entities.Data[i] != res2.Entities.Data[i] {
			t.Fatalf("entity value %d differs across identical degraded runs: %v vs %v",
				i, res.Entities.Data[i], res2.Entities.Data[i])
		}
	}
}

// TestDegradedDisabledSurfacesOutage: without opting in (DegradedMaxStaleness
// unset), a shard outage is a hard error, exactly as before the feature.
func TestDegradedDisabledSurfacesOutage(t *testing.T) {
	cfg := degradedConfig(t, 40, 120)
	cfg.DegradedMaxStaleness = 0
	if _, err := TrainHETKG(cfg); !errors.Is(err, ps.ErrLinkDown) {
		t.Fatalf("want the outage surfaced as ErrLinkDown, got %v", err)
	}
}

// TestDegradedStalenessBoundIsFatal: a bound tighter than the cache's sync
// period means no expired row is eligible for stale serving, so the outage
// must fail the run rather than silently train on over-age rows.
func TestDegradedStalenessBoundIsFatal(t *testing.T) {
	cfg := degradedConfig(t, 40, -1)
	cfg.DegradedMaxStaleness = 1
	_, err := TrainHETKG(cfg)
	if err == nil || !strings.Contains(err.Error(), "staleness bound") {
		t.Fatalf("want staleness-bound failure, got %v", err)
	}
	if !errors.Is(err, ps.ErrLinkDown) {
		t.Fatalf("staleness failure should still identify the outage: %v", err)
	}
}

// TestDegradedBufferBudgetIsFatal: the replay buffer is bounded; an outage
// that accumulates more distinct rows than the budget fails the run instead
// of growing without limit.
func TestDegradedBufferBudgetIsFatal(t *testing.T) {
	cfg := degradedConfig(t, 40, -1)
	cfg.DegradedMaxBufferedRows = 2
	_, err := TrainHETKG(cfg)
	if err == nil || !strings.Contains(err.Error(), "buffer full") {
		t.Fatalf("want buffer-budget failure, got %v", err)
	}
}

// TestDegradedDrainFailureIsFatal: a shard that never recovers leaves
// buffered pushes at finalize; the strict drain must fail the run so the
// gathered embeddings never silently miss update mass.
func TestDegradedDrainFailureIsFatal(t *testing.T) {
	cfg := degradedConfig(t, 40, -1)
	cfg.Epochs = 1
	_, err := TrainHETKG(cfg)
	if err == nil || !strings.Contains(err.Error(), "buffered degraded push") {
		t.Fatalf("want strict-drain failure, got %v", err)
	}
}
