package train

import (
	"fmt"
	"time"

	"hetkg/internal/metrics"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/span"
)

// TrainDGLKE runs the DGL-KE-style baseline (§III-B): METIS-partitioned
// subgraphs, a co-located parameter server, and per-iteration pull/push of
// every embedding the mini-batch touches. It is HET-KG without the
// hot-embedding table.
func TrainDGLKE(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env, err := setupPS(&cfg)
	if err != nil {
		return nil, err
	}
	workers, err := newWorkers(&cfg, env.cluster, env.part, env.tr, false)
	if err != nil {
		return nil, err
	}
	return runPSTraining(&cfg, env, workers, "DGL-KE", nil)
}

// psEnv bundles the shared PS-training substrate.
type psEnv struct {
	cluster *ps.Cluster
	part    *partition.Result
	// tr is the worker↔PS transport; gathers go through it too, so remote
	// shard deployments (cmd/hetkg-ps) see the trained state.
	tr ps.Transport
}

// runPSTraining drives PS-style trainers (DGL-KE and HET-KG) with the
// round-robin asynchronous schedule: each epoch every worker processes its
// share of iterations one batch per turn, then an epoch barrier (the full
// synchronization DGL-KE performs every few thousand mini-batches, §V)
// gathers statistics and optionally evaluates. perIteration, when non-nil,
// is invoked before each worker turn — HET-KG hooks its prefetch, rebuild
// and staleness sync there.
func runPSTraining(cfg *Config, env *psEnv, workers []*worker, system string,
	perIteration func(w *worker) error) (*Result, error) {

	res := &Result{System: system, Metrics: cfg.Metrics}
	var em *metrics.TimelineEmitter
	if cfg.Timeline != nil {
		var err error
		em, err = metrics.NewTimelineEmitter(cfg.Timeline, cfg.Metrics, metrics.TimelineHeader{
			System:  system,
			Dataset: cfg.Dataset,
			Every:   cfg.TimelineEvery,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	start := time.Now()
	round := 0 // global iterations: one round = one batch turn per worker
	var cum time.Duration
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		// Each worker makes one pass over its own partition per epoch;
		// with unbalanced partitions a light worker simply finishes its
		// epoch early (ASP — nobody waits), rather than re-looping its
		// subgraph, which would inflate both traffic and update counts.
		maxIters := 0
		for _, w := range workers {
			if it := w.smp.IterationsPerEpoch(); it > maxIters {
				maxIters = it
			}
		}
		for it := 0; it < maxIters; it++ {
			for _, w := range workers {
				if it >= w.smp.IterationsPerEpoch() {
					continue
				}
				if err := w.turn(perIteration); err != nil {
					return nil, err
				}
			}
			round++
			if em != nil && em.ShouldEmit(round) {
				if err := emitTimeline(em, workers[0].obs, workers, round, epoch, start); err != nil {
					return nil, err
				}
			}
		}
		stat, err := epochBarrier(cfg, env, workers, epoch, &cum)
		if err != nil {
			return nil, err
		}
		res.Epochs = append(res.Epochs, stat)
	}
	if em != nil {
		if err := em.Flush(); err != nil {
			return nil, err
		}
	}
	return finalize(cfg, env, workers, res)
}

// epochBarrier collects per-epoch statistics across workers: the epoch's
// simulated duration is the critical path (slowest worker), matching a real
// cluster where machines run in parallel.
func epochBarrier(cfg *Config, env *psEnv, workers []*worker, epoch int, cum *time.Duration) (metrics.EpochStat, error) {
	var stat metrics.EpochStat
	stat.Epoch = epoch
	var lossSum float64
	var accTotal, hitTotal float64
	for _, w := range workers {
		comp, comm, loss := w.epochStats(cfg.CostModel)
		if comp > stat.Comp {
			stat.Comp = comp
		}
		if comm > stat.Comm {
			stat.Comm = comm
		}
		lossSum += loss
		if w.hot != nil {
			acc := float64(w.hot.Accesses())
			accTotal += acc
			hitTotal += acc * w.hot.HitRatio()
			w.accTotal += acc
			w.hitTotal += acc * w.hot.HitRatio()
			w.hot.ResetStats()
		}
	}
	stat.Loss = lossSum / float64(len(workers))
	if accTotal > 0 {
		stat.HitRatio = hitTotal / accTotal
	}
	*cum += stat.Total()
	stat.CumTime = *cum

	if cfg.EvalEvery > 0 && len(cfg.Valid) > 0 && epoch%cfg.EvalEvery == 0 {
		ents, rels, err := env.cluster.GatherVia(env.tr)
		if err != nil {
			return stat, err
		}
		ev, err := evalNow(cfg, ents, rels)
		if err != nil {
			return stat, err
		}
		stat.MRR = ev.MRR
	}
	return stat, nil
}

// finalize gathers embeddings, runs the final evaluation, and aggregates
// run-level statistics.
func finalize(cfg *Config, env *psEnv, workers []*worker, res *Result) (*Result, error) {
	// A run that trained through a shard outage may still hold buffered
	// degraded pushes; they must land before the gather or the final
	// embeddings silently miss update mass.
	for _, w := range workers {
		if err := w.drainDegraded(); err != nil {
			return nil, err
		}
	}
	ents, rels, err := env.cluster.GatherVia(env.tr)
	if err != nil {
		return nil, err
	}
	res.Entities, res.Relations = ents, rels
	if cfg.EvalEvery > 0 && len(cfg.Valid) > 0 {
		ev, err := evalNow(cfg, ents, rels)
		if err != nil {
			return nil, err
		}
		res.Final = ev
	}
	var hitTotal, accTotal float64
	for _, w := range workers {
		s := w.meter.Snapshot()
		res.Traffic.LocalMsgs += s.LocalMsgs
		res.Traffic.LocalBytes += s.LocalBytes
		res.Traffic.RemoteMsgs += s.RemoteMsgs
		res.Traffic.RemoteBytes += s.RemoteBytes
		accTotal += w.accTotal
		hitTotal += w.hitTotal
		if w.hot != nil {
			res.RefreshRows += w.hot.RefreshedRows()
		}
	}
	if accTotal > 0 {
		res.HitRatio = hitTotal / accTotal
	}
	res.CacheAccesses = int64(accTotal)
	for _, e := range res.Epochs {
		res.Comp += e.Comp
		res.Comm += e.Comm
	}
	return res, nil
}

// setupPS partitions the graph and builds the parameter-server cluster.
func setupPS(cfg *Config) (*psEnv, error) {
	part, err := cfg.Partitioner.Partition(cfg.Graph, cfg.NumMachines)
	if err != nil {
		return nil, err
	}
	cluster, err := ps.NewCluster(ps.ClusterConfig{
		NumMachines:      cfg.NumMachines,
		EntityPart:       part.EntityPart,
		NumRelations:     cfg.Graph.NumRel,
		EntityDim:        cfg.Model.EntityDim(cfg.Dim),
		RelationDim:      cfg.Model.RelationDim(cfg.Dim),
		NewOptimizer:     cfg.NewOptimizer,
		Seed:             cfg.Seed,
		InitialEntities:  cfg.InitialEntities,
		InitialRelations: cfg.InitialRelations,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		for _, srv := range cluster.Servers {
			srv.Instrument(cfg.Metrics)
		}
	}
	if cfg.Spans != nil {
		for _, srv := range cluster.Servers {
			srv.Trace(cfg.Spans.Tracer(srv.Machine(), span.WorkerShard))
		}
	}
	var tr ps.Transport
	if cfg.NewTransport != nil {
		tr, err = cfg.NewTransport(cluster)
		if err != nil {
			return nil, fmt.Errorf("train: building transport: %w", err)
		}
	} else {
		tr = ps.NewInProc(cluster)
	}
	// Wrap in-process transports with the negotiated codec layer. A
	// transport that already negotiated its own profile (TCP, at dial
	// time) is left alone — wrapping it would codec the payload twice.
	if _, negotiated := tr.(interface{ NegotiatedProfile() string }); !negotiated && cfg.Codec != "" {
		tr, err = ps.NewCodecTransport(tr, cluster, cfg.Codec, cfg.CostModel)
		if err != nil {
			return nil, fmt.Errorf("train: building codec transport: %w", err)
		}
	}
	if cfg.Metrics != nil {
		if inst, ok := tr.(interface{ Instrument(*metrics.Registry) }); ok {
			inst.Instrument(cfg.Metrics)
		}
	}
	if cfg.Spans != nil {
		// A transport serving real sockets (or a wrapper over one) records
		// serialization/wire spans on a dedicated shared row.
		if tt, ok := tr.(interface{ Trace(*span.Tracer) }); ok {
			tt.Trace(cfg.Spans.Tracer(span.MachineTransport, span.WorkerTransport))
		}
	}
	return &psEnv{cluster: cluster, part: part, tr: tr}, nil
}
