package train

import (
	"math/rand"
	"testing"
	"time"

	"hetkg/internal/cache"
	"hetkg/internal/dataset"
	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/netsim"
)

func testCostModel() netsim.CostModel {
	cm := netsim.Default1Gbps()
	cm.RemoteLatency = 10 * time.Microsecond
	return cm
}

// testConfig returns a small but non-trivial training setup.
func testConfig(t *testing.T, machines int) Config {
	t.Helper()
	g := dataset.MustGenerate(dataset.Config{
		Name: "traintest", NumEntity: 300, NumRel: 20, NumTriples: 3000,
		EntityZipf: 0.9, RelationZipf: 1.0, Seed: 21,
	})
	rng := rand.New(rand.NewSource(22))
	sp, err := kg.SplitTriples(g, rng, 0.05, 0.05)
	if err != nil {
		t.Fatalf("SplitTriples: %v", err)
	}
	return Config{
		Graph:  sp.Train,
		Valid:  sp.Valid.Triples,
		Filter: sp.AllTriples(),
		Model:  model.TransE{Norm: 1},
		Loss:   model.LogisticLoss{},
		Dim:    32, // large enough that traffic is bandwidth-bound, as in the paper

		LR:          0.1,
		Epochs:      3,
		BatchSize:   64,
		NegPerPos:   4,
		ChunkSize:   4,
		NumMachines: machines,
		// The paper trains at d=400 (1.6 KB rows), where traffic cost is
		// bandwidth-bound. At this test's d=32, stock per-message latency
		// would dominate instead, so scale it down to stay in the paper's
		// regime.
		CostModel:      testCostModel(),
		EvalEvery:      1,
		EvalCandidates: 50,
		EvalMax:        100,
		Seed:           23,
		Cache: CacheConfig{
			Strategy:       cache.CPS,
			Capacity:       60,
			EntityFraction: 0.25,
			Heterogeneity:  true,
			SyncEvery:      8,
		},
	}
}

func TestDGLKELossDecreasesAndLearns(t *testing.T) {
	cfg := testConfig(t, 2)
	res, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatalf("TrainDGLKE: %v", err)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("recorded %d epochs, want %d", len(res.Epochs), cfg.Epochs)
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first {
		t.Errorf("loss did not decrease: %.4f → %.4f", first, last)
	}
	// 50 sampled candidates → chance MRR ≈ 0.09. Trained should beat it.
	if res.Final.MRR < 0.15 {
		t.Errorf("final MRR %.3f barely above chance", res.Final.MRR)
	}
	if res.Comp <= 0 || res.Comm <= 0 {
		t.Error("missing time accounting")
	}
	if res.Traffic.RemoteBytes == 0 {
		t.Error("2-machine run produced no remote traffic")
	}
	if res.System != "DGL-KE" {
		t.Errorf("System = %q", res.System)
	}
}

func TestHETKGCPSReducesRemoteTraffic(t *testing.T) {
	cfg := testConfig(t, 2)
	base, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatalf("TrainDGLKE: %v", err)
	}
	het, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("TrainHETKG: %v", err)
	}
	if het.System != "HET-KG-C" {
		t.Errorf("System = %q", het.System)
	}
	if het.HitRatio <= 0 {
		t.Fatalf("hit ratio = %v, cache never hit", het.HitRatio)
	}
	if het.Traffic.RemoteBytes >= base.Traffic.RemoteBytes {
		t.Errorf("HET-KG remote bytes %d not below DGL-KE %d",
			het.Traffic.RemoteBytes, base.Traffic.RemoteBytes)
	}
	if het.Comm >= base.Comm {
		t.Errorf("HET-KG comm %v not below DGL-KE %v", het.Comm, base.Comm)
	}
	// Quality must stay in the same band (the paper's central claim).
	if het.Final.MRR < base.Final.MRR*0.7 {
		t.Errorf("HET-KG MRR %.3f collapsed vs DGL-KE %.3f", het.Final.MRR, base.Final.MRR)
	}
}

func TestHETKGDPS(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Cache.Strategy = cache.DPS
	cfg.Cache.PrefetchD = 8
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("TrainHETKG DPS: %v", err)
	}
	if res.System != "HET-KG-D" {
		t.Errorf("System = %q", res.System)
	}
	if res.HitRatio <= 0 {
		t.Error("DPS cache never hit")
	}
	if res.Final.MRR < 0.1 {
		t.Errorf("DPS MRR %.3f too low", res.Final.MRR)
	}
}

func TestDPSHitRatioBeatsCPSUnderTightCapacity(t *testing.T) {
	// DPS adapts to short-term access patterns; with a small cache its
	// hit ratio should be at least CPS's (§IV-B.2).
	cfg := testConfig(t, 2)
	cfg.Cache.Capacity = 25
	cfg.Epochs = 2
	cps, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache.Strategy = cache.DPS
	cfg.Cache.PrefetchD = 8
	dps, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hit ratios: CPS=%.3f DPS=%.3f", cps.HitRatio, dps.HitRatio)
	if dps.HitRatio < cps.HitRatio*0.9 {
		t.Errorf("DPS hit ratio %.3f well below CPS %.3f", dps.HitRatio, cps.HitRatio)
	}
}

func TestPBGRuns(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 6
	res, err := TrainPBG(cfg)
	if err != nil {
		t.Fatalf("TrainPBG: %v", err)
	}
	if res.System != "PBG" {
		t.Errorf("System = %q", res.System)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first {
		t.Errorf("PBG loss did not decrease: %.4f → %.4f", first, last)
	}
	if res.Final.MRR < 0.1 {
		t.Errorf("PBG MRR %.3f barely above chance", res.Final.MRR)
	}
	if res.Traffic.RemoteBytes == 0 {
		t.Error("PBG moved no bucket traffic")
	}
}

func TestPBGCommDominatedByRelationsOnManyRelationGraph(t *testing.T) {
	// PBG's dense relation sync makes its communication much heavier than
	// the PS systems' on a graph with many relations — Fig. 7's shape.
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	pbg, err := TrainPBG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	het, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pbg.Comm <= het.Comm {
		t.Errorf("PBG comm %v should exceed HET-KG comm %v", pbg.Comm, het.Comm)
	}
}

func TestSingleMachineHasNoRemoteTraffic(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Epochs = 1
	res, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.RemoteBytes != 0 || res.Traffic.RemoteMsgs != 0 {
		t.Errorf("1-machine run produced remote traffic: %+v", res.Traffic)
	}
	if res.Traffic.LocalBytes == 0 {
		t.Error("no local traffic metered")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	a, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epochs[0].Loss != b.Epochs[0].Loss {
		t.Errorf("loss differs across identical runs: %v vs %v", a.Epochs[0].Loss, b.Epochs[0].Loss)
	}
	for i := range a.Entities.Data {
		if a.Entities.Data[i] != b.Entities.Data[i] {
			t.Fatalf("entity embeddings differ at %d", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, 1)
	tests := []func(*Config){
		func(c *Config) { c.Graph = nil },
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Loss = nil },
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.NegPerPos = 0 },
		func(c *Config) { c.NumMachines = 0 },
		func(c *Config) { c.WorkersPerMachine = -1 },
	}
	for i, mutate := range tests {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	cfg := good
	if err := cfg.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if cfg.WorkersPerMachine != 1 || cfg.Partitioner == nil {
		t.Error("defaults not filled")
	}
}

func TestMoreMachinesMoreRemoteComm(t *testing.T) {
	// Table I's driver: with more machines a larger share of pulls is
	// remote, so DGL-KE's comm fraction grows.
	cfg1 := testConfig(t, 1)
	cfg1.Epochs = 1
	cfg1.EvalEvery = 0
	r1, err := TrainDGLKE(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := testConfig(t, 4)
	cfg4.Epochs = 1
	cfg4.EvalEvery = 0
	r4, err := TrainDGLKE(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	f1 := r1.Traffic.RemoteFraction()
	f4 := r4.Traffic.RemoteFraction()
	if f4 <= f1 {
		t.Errorf("remote fraction with 4 machines (%.3f) not above 1 machine (%.3f)", f4, f1)
	}
}

func TestCacheCapacityIncreasesHitRatio(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	cfg.Cache.Capacity = 10
	small, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache.Capacity = 150
	large, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if large.HitRatio <= small.HitRatio {
		t.Errorf("hit ratio did not grow with capacity: %v (k=10) vs %v (k=150)",
			small.HitRatio, large.HitRatio)
	}
}

func TestHETKGNegativeCapacityRejected(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Cache.Capacity = -1
	if _, err := TrainHETKG(cfg); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestDistMultTraining(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Model = model.DistMult{}
	cfg.Epochs = 2
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("DistMult HET-KG: %v", err)
	}
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Errorf("DistMult loss did not decrease: %v → %v", res.Epochs[0].Loss, res.Epochs[1].Loss)
	}
}

func TestZeroCapacityCacheDegradesToDGLKE(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	cfg.Cache.Capacity = 0
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio != 0 {
		t.Errorf("zero-capacity cache hit ratio = %v", res.HitRatio)
	}
	base := testConfig(t, 2)
	base.Epochs = 1
	base.EvalEvery = 0
	b, err := TrainDGLKE(base)
	if err != nil {
		t.Fatal(err)
	}
	// Same pull volume modulo the (empty) refresh overhead.
	if res.Traffic.RemoteBytes < b.Traffic.RemoteBytes {
		t.Errorf("empty cache cannot beat no cache: %d vs %d",
			res.Traffic.RemoteBytes, b.Traffic.RemoteBytes)
	}
}
