package train

import (
	"hetkg/internal/sampler"
)

// BatchBench is a single-worker harness exposing the processBatch hot path
// to the repository's benchmark suite (bench_test.go), which lives outside
// this package. It builds the full PS substrate for cfg, takes the first
// worker, and replays one sampled batch so iterations measure pure
// gather/compute/push work with a stable working set.
type BatchBench struct {
	w *worker
	b *sampler.Batch
}

// NewBatchBench validates cfg, builds the cluster and workers (no cache —
// the DGL-KE-style path the paper's compute profile measures), and samples
// the batch to replay.
func NewBatchBench(cfg Config) (*BatchBench, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env, err := setupPS(&cfg)
	if err != nil {
		return nil, err
	}
	workers, err := newWorkers(&cfg, env.cluster, env.part, env.tr, false)
	if err != nil {
		return nil, err
	}
	w := workers[0]
	return &BatchBench{w: w, b: w.smp.Next()}, nil
}

// Pairs returns the number of (positive, negative) score pairs the batch
// expands to — the denominator for ns/pair metrics.
func (bb *BatchBench) Pairs() int { return bb.b.NumNegatives() }

// ProcessBatch pushes the replayed batch through the worker hot path once.
func (bb *BatchBench) ProcessBatch() (float64, error) {
	return bb.w.processBatch(bb.b)
}

// ProcessBatchTraced is ProcessBatch under a live root span: every
// iteration is sampled and traced end to end (lookup, compute, RPC and
// shard spans). Benchmarking it against ProcessBatch on a Config without
// Spans measures the tracer's enabled-path overhead; the disabled path is
// plain ProcessBatch, whose tracer is nil.
func (bb *BatchBench) ProcessBatchTraced() (float64, error) {
	root := bb.w.tracer.Root(bb.w.iteration)
	if root.Valid() {
		bb.w.beginSpan(root)
		defer bb.w.endSpan()
	}
	return bb.w.processBatch(bb.b)
}
