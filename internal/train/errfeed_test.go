package train

import (
	"math"
	"math/rand"
	"testing"

	"hetkg/internal/metrics"
	"hetkg/internal/ps"
)

// TestErrorFeedbackInvariant pins the property that makes top-k safe: over
// any number of pushes, the sum of what was sent plus the residual still
// pending equals the sum of the raw gradients, per coordinate — dropped
// mass is deferred, never lost.
func TestErrorFeedbackInvariant(t *testing.T) {
	const width, rounds = 64, 50
	rng := rand.New(rand.NewSource(7))
	ef := newErrorFeedback(0.125, nil)
	k := ps.EntityKey(3)
	rawSum := make([]float64, width)
	sentSum := make([]float64, width)
	for round := 0; round < rounds; round++ {
		g := make([]float32, width)
		for i := range g {
			g[i] = float32(rng.NormFloat64())
			rawSum[i] += float64(g[i])
		}
		ef.Sparsify(k, g)
		nonzero := 0
		for i, v := range g {
			sentSum[i] += float64(v)
			if v != 0 {
				nonzero++
			}
		}
		if want := ef.keepCount(width); nonzero > want {
			t.Fatalf("round %d: %d coordinates survived, keep is %d", round, nonzero, want)
		}
	}
	resid := ef.resid[k]
	for i := range rawSum {
		got := sentSum[i] + float64(resid[i])
		if math.Abs(got-rawSum[i]) > 1e-3 {
			t.Errorf("coordinate %d: sent %g + residual %g != raw %g", i, sentSum[i], resid[i], rawSum[i])
		}
	}
}

// TestErrorFeedbackSelection pins the deterministic selection rule: the
// keep-th largest magnitudes survive, ties at the threshold fill the quota
// in ascending index order, and everything dropped lands in the residual.
func TestErrorFeedbackSelection(t *testing.T) {
	ef := newErrorFeedback(0.5, nil)
	k := ps.EntityKey(1)
	g := []float32{3, -1, 2, 2, -2, 0.5, 0, -4}
	ef.Sparsify(k, g)
	// keep = 4 of 8; magnitudes sorted: 4, 3, 2, 2, 2, 1, 0.5, 0.
	// Threshold 2 with one strict-winner pair (4, 3): two tied slots go to
	// the lowest indices holding |g| == 2, i.e. indices 2 and 3, not 4.
	want := []float32{3, 0, 2, 2, 0, 0, 0, -4}
	for i := range g {
		if g[i] != want[i] {
			t.Errorf("g[%d] = %v, want %v (full: %v)", i, g[i], want[i], g)
		}
	}
	wantResid := []float32{0, -1, 0, 0, -2, 0.5, 0, 0}
	for i, r := range ef.resid[k] {
		if r != wantResid[i] {
			t.Errorf("resid[%d] = %v, want %v", i, r, wantResid[i])
		}
	}
	// The residual compensates the next push: index 4 accumulated -2 twice
	// and must now win a slot.
	g2 := []float32{0, 0, 0, 0, -2, 0, 0, 0}
	ef.Sparsify(k, g2)
	if g2[4] != -4 {
		t.Errorf("residual not folded into next push: got %v at 4, want -4", g2[4])
	}
}

// TestErrorFeedbackDeterminism: identical gradient streams produce
// identical sparsified streams (the selection has no map-order or
// randomness dependence).
func TestErrorFeedbackDeterminism(t *testing.T) {
	mk := func() [][]float32 {
		rng := rand.New(rand.NewSource(11))
		out := make([][]float32, 20)
		for r := range out {
			g := make([]float32, 32)
			for i := range g {
				g[i] = float32(rng.NormFloat64())
			}
			out[r] = g
		}
		return out
	}
	a, b := mk(), mk()
	efA := newErrorFeedback(0.25, nil)
	efB := newErrorFeedback(0.25, nil)
	k := ps.EntityKey(9)
	for r := range a {
		efA.Sparsify(k, a[r])
		efB.Sparsify(k, b[r])
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("round %d: runs diverged at %d: %v vs %v", r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestErrorFeedbackCounters: the dropped-rows metric counts every zeroed
// coordinate, and keepCount clamps to [1, w].
func TestErrorFeedbackCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	ef := newErrorFeedback(0.125, reg)
	g := make([]float32, 64)
	for i := range g {
		g[i] = float32(i + 1)
	}
	ef.Sparsify(ps.EntityKey(0), g)
	dropped := reg.Counter(metrics.MPSCodecRowsTopkDropped).Value()
	if want := int64(64 - ef.keepCount(64)); dropped != want {
		t.Errorf("dropped counter = %d, want %d", dropped, want)
	}
	if ef.keepCount(64) != 8 {
		t.Errorf("keepCount(64) = %d, want 8", ef.keepCount(64))
	}
	if ef.keepCount(2) != 1 {
		t.Errorf("keepCount(2) = %d at ratio 0.125, want the floor of 1", ef.keepCount(2))
	}
	full := newErrorFeedback(1, reg)
	if full.keepCount(64) != 64 {
		t.Errorf("keepCount at ratio 1 = %d, want 64", full.keepCount(64))
	}
	g2 := []float32{1, 2}
	full.Sparsify(ps.EntityKey(1), g2)
	if g2[0] != 1 || g2[1] != 2 {
		t.Errorf("ratio-1 sparsifier changed the row: %v", g2)
	}
}

// TestTopKTrainingConvergence is the tentpole's accuracy pin: top-k push
// sparsification with error feedback must converge to an MRR within noise
// of the dense fp32 run — the whole point of the EF buffer.
func TestTopKTrainingConvergence(t *testing.T) {
	dense := testConfig(t, 2)
	dense.Epochs = 3
	dres, err := TrainHETKG(dense)
	if err != nil {
		t.Fatal(err)
	}
	sparse := testConfig(t, 2)
	sparse.Epochs = 3
	sparse.Codec = ps.ProfileTopK
	sparse.TopKRatio = 0.25
	sres, err := TrainHETKG(sparse)
	if err != nil {
		t.Fatalf("topk training: %v", err)
	}
	if sres.Epochs[len(sres.Epochs)-1].Loss >= sres.Epochs[0].Loss {
		t.Error("topk training did not learn")
	}
	if sres.Final.MRR < dres.Final.MRR*0.9 {
		t.Errorf("topk+EF MRR %.3f fell outside noise of dense %.3f", sres.Final.MRR, dres.Final.MRR)
	}
	dropped := sres.Metrics.Counter(metrics.MPSCodecRowsTopkDropped).Value()
	if dropped == 0 {
		t.Error("no coordinates were dropped; sparsifier not wired")
	}
	wire := sres.Metrics.Counter(metrics.MPSCodecBytesWire).Value()
	raw := sres.Metrics.Counter(metrics.MPSCodecBytesRaw).Value()
	if wire == 0 || raw == 0 {
		t.Fatal("codec byte counters not wired")
	}
	if wire >= raw {
		t.Errorf("topk wire bytes %d not below raw %d", wire, raw)
	}
}
