package train

import (
	"testing"

	"hetkg/internal/eval"
)

// TestParallelismDeterministic pins the deterministic-parallelism contract:
// the same seed must produce bit-identical epoch losses and evaluation
// metrics whether the execution engine runs on one core or eight. Batch
// compute merges fixed shards in order and evaluation derives one RNG per
// ranking item, so nothing — not even the last float bit — may differ.
func TestParallelismDeterministic(t *testing.T) {
	run := func(system string, parallelism int) *Result {
		cfg := testConfig(t, 2)
		cfg.Epochs = 2
		cfg.Parallelism = parallelism
		var res *Result
		var err error
		if system == "hetkg" {
			res, err = TrainHETKG(cfg)
		} else {
			res, err = TrainDGLKE(cfg)
		}
		if err != nil {
			t.Fatalf("%s (parallelism %d): %v", system, parallelism, err)
		}
		return res
	}
	for _, system := range []string{"dglke", "hetkg"} {
		t.Run(system, func(t *testing.T) {
			serial := run(system, 1)
			wide := run(system, 8)
			for i := range serial.Epochs {
				if serial.Epochs[i].Loss != wide.Epochs[i].Loss {
					t.Errorf("epoch %d loss differs: serial %v vs parallel %v",
						i+1, serial.Epochs[i].Loss, wide.Epochs[i].Loss)
				}
				if serial.Epochs[i].MRR != wide.Epochs[i].MRR {
					t.Errorf("epoch %d MRR differs: serial %v vs parallel %v",
						i+1, serial.Epochs[i].MRR, wide.Epochs[i].MRR)
				}
			}
			if serial.Final.MRR != wide.Final.MRR {
				t.Errorf("final MRR differs: serial %v vs parallel %v",
					serial.Final.MRR, wide.Final.MRR)
			}
			if serial.Final.MR != wide.Final.MR {
				t.Errorf("final MR differs: serial %v vs parallel %v",
					serial.Final.MR, wide.Final.MR)
			}
			for i := 0; i < serial.Entities.Rows; i++ {
				a, b := serial.Entities.Row(i), wide.Entities.Row(i)
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("entity %d dim %d differs: %v vs %v", i, j, a[j], b[j])
					}
				}
			}
		})
	}
}

// TestParallelEvalDeterministic checks the evaluator alone: sampled
// candidates derive from per-item RNGs, so any parallelism degree must
// produce the same Result.
func TestParallelEvalDeterministic(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	res, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := eval.Config{
		Model:         cfg.Model,
		Entities:      res.Entities,
		Relations:     res.Relations,
		Filter:        cfg.Filter,
		NumCandidates: 40,
		Seed:          99,
	}
	evalAt := func(p int) eval.Result {
		c := base
		c.Parallelism = p
		r, err := eval.Evaluate(c, cfg.Valid)
		if err != nil {
			t.Fatalf("Evaluate(parallelism %d): %v", p, err)
		}
		return r
	}
	serial := evalAt(1)
	for _, p := range []int{2, 4, 8} {
		wide := evalAt(p)
		if serial.MRR != wide.MRR || serial.MR != wide.MR || serial.N != wide.N {
			t.Errorf("parallelism %d: MRR/MR/N %v/%v/%d vs serial %v/%v/%d",
				p, wide.MRR, wide.MR, wide.N, serial.MRR, serial.MR, serial.N)
		}
		for k, v := range serial.Hits {
			if wide.Hits[k] != v {
				t.Errorf("parallelism %d: Hits@%d %v vs serial %v", p, k, wide.Hits[k], v)
			}
		}
	}
}
