package train

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"hetkg/internal/cache"
	"hetkg/internal/kg"
	"hetkg/internal/netsim"
	"hetkg/internal/par"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
	"hetkg/internal/span"
	"hetkg/internal/vec"
)

// batchShards is the fixed shard grid for within-batch parallel gradient
// computation. Shard boundaries must not depend on the parallelism degree
// (see internal/par), so the grid is a constant: positives are split into at
// most batchShards contiguous ranges, each range accumulates gradients into
// private scratch, and the partial sums merge in shard order. Parallelism-1
// and parallelism-N runs therefore produce bit-identical results; the
// constant also caps useful within-batch parallelism at 32 cores, the
// paper's per-machine core count.
const batchShards = 32

// worker is one training worker: a sampler over its machine's subgraph, a
// PS client, an optional hot-embedding cache, and per-epoch accounting.
// Workers are driven round-robin by the trainers — one batch per turn — so
// asynchronous interleaving (worker A missing worker B's fresh pushes until
// cache refresh) is reproduced deterministically; per-worker clocks model
// what would run in parallel on separate machines. Within a turn, the
// batch's gradient computation fans out across cores (processBatch).
type worker struct {
	id      int
	machine int
	smp     *sampler.Sampler
	client  *ps.Client
	meter   *netsim.Meter
	hot     *cache.HotCache // nil for cacheless trainers
	ef      *errorFeedback  // nil unless the codec profile sparsifies pushes

	cfg    *Config
	degree int                  // resolved compute parallelism
	rows   map[ps.Key][]float32 // per-batch working set (pulled + cached)
	scr    *batchScratch        // worker-owned arena, reused across batches
	obs    *trainObs            // run-shared registry handles (nil when unwired)
	tracer *span.Tracer         // per-batch span tracer (nil when unwired)
	sp     span.Active          // current batch's root span (zero when unsampled)

	// queued holds prefetched batches to replay (HET-KG).
	queued []*sampler.Batch
	// iteration counts processed batches for staleness bookkeeping.
	iteration int
	// pushBuf holds gradient rows for unreachable shards, coalesced by
	// key, awaiting replay (degraded mode; see degraded.go).
	pushBuf map[ps.Key][]float32

	// Per-epoch accounting, reset by epochStats.
	compTime  time.Duration
	commBase  netsim.Snapshot
	lossSum   float64
	lossCount int
	// Run-level cache accounting, accumulated at epoch barriers.
	accTotal, hitTotal float64
}

// workerBuilder constructs individual workers over the partitioned
// subgraphs — the shared machinery of newWorkers (static deployments, all
// workers up front) and the elastic driver (workers built and rebuilt as
// the coordinator assigns partitions).
type workerBuilder struct {
	cfg       *Config
	cluster   *ps.Cluster
	subs      []*kg.Graph
	tr        ps.Transport
	tobs      *trainObs
	prof      ps.Profile
	withCache bool
}

// newWorkerBuilder prepares shared state for building workers. withCache
// attaches a HotCache configured from cfg.Cache to each built worker.
func newWorkerBuilder(cfg *Config, cluster *ps.Cluster, part *partition.Result, tr ps.Transport, withCache bool) (*workerBuilder, error) {
	prof, err := ps.ResolveProfile(cfg.Codec)
	if err != nil {
		return nil, err
	}
	var tobs *trainObs
	if cfg.Metrics != nil {
		tobs = newTrainObs(cfg.Metrics)
	}
	return &workerBuilder{
		cfg:       cfg,
		cluster:   cluster,
		subs:      part.Subgraphs(cfg.Graph),
		tr:        tr,
		tobs:      tobs,
		prof:      prof,
		withCache: withCache,
	}, nil
}

// build constructs the worker with global id on machine m. The sampler seed
// is a pure function of (cfg.Seed, id), so any process that builds worker
// id — including one adopting the partition after its first owner died —
// derives the identical batch stream and can resume it by fast-forward.
func (b *workerBuilder) build(m, id int) (*worker, error) {
	cfg := b.cfg
	meter := &netsim.Meter{}
	client, err := ps.NewClient(m, b.cluster, b.tr, meter)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		meter.Instrument(cfg.Metrics, cfg.CostModel)
		client.Instrument(cfg.Metrics)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
	smp, err := sampler.New(sampler.Config{
		BatchSize:       cfg.BatchSize,
		NegPerPos:       cfg.NegPerPos,
		ChunkSize:       cfg.ChunkSize,
		NumEntity:       cfg.Graph.NumEntity,
		Filter:          cfg.Filter,
		NegativeWeights: cfg.NegativeWeights,
	}, b.subs[m], rng)
	if err != nil {
		return nil, err
	}
	w := &worker{
		id:      id,
		machine: m,
		smp:     smp,
		client:  client,
		meter:   meter,
		cfg:     cfg,
		degree:  par.Degree(cfg.Parallelism),
		rows:    make(map[ps.Key][]float32),
		obs:     b.tobs,
	}
	if b.prof.SparsePush {
		w.ef = newErrorFeedback(cfg.TopKRatio, cfg.Metrics)
	}
	if cfg.Spans != nil {
		w.tracer = cfg.Spans.Tracer(m, id)
		client.Trace(w.tracer)
	}
	if b.withCache {
		hot, err := cache.New(client, cfg.NewOptimizer(), cfg.Cache.SyncEvery)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			hot.Instrument(cfg.Metrics)
		}
		if w.tracer != nil {
			hot.Trace(w.tracer)
		}
		w.hot = hot
	}
	return w, nil
}

// newWorkers builds one worker per (machine, slot) over the partitioned
// subgraphs. withCache attaches a HotCache configured from cfg.Cache.
func newWorkers(cfg *Config, cluster *ps.Cluster, part *partition.Result, tr ps.Transport, withCache bool) ([]*worker, error) {
	b, err := newWorkerBuilder(cfg, cluster, part, tr, withCache)
	if err != nil {
		return nil, err
	}
	local := func(m int) bool {
		if len(cfg.LocalMachines) == 0 {
			return true
		}
		for _, lm := range cfg.LocalMachines {
			if lm == m {
				return true
			}
		}
		return false
	}
	var workers []*worker
	id := 0
	for m := 0; m < cfg.NumMachines; m++ {
		if !local(m) {
			id += cfg.WorkersPerMachine // keep worker seeds stable across deployments
			continue
		}
		if b.subs[m].NumTriples() == 0 {
			// A machine with no triples contributes no worker; its shard
			// still serves pulls.
			continue
		}
		for s := 0; s < cfg.WorkersPerMachine; s++ {
			w, err := b.build(m, id)
			if err != nil {
				return nil, err
			}
			workers = append(workers, w)
			id++
		}
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("train: no worker received any triples")
	}
	return workers, nil
}

// nextBatch returns the next batch to train on: a queued prefetched batch if
// one exists, otherwise a fresh sample. The popped slot is nilled so the
// backing array does not pin replayed batches until the whole queue cycles.
func (w *worker) nextBatch() *sampler.Batch {
	if len(w.queued) > 0 {
		b := w.queued[0]
		w.queued[0] = nil
		w.queued = w.queued[1:]
		return b
	}
	return w.smp.Next()
}

// turn runs one scheduled worker turn: the trainer's per-iteration hook
// (prefetch/rebuild/sync for HET-KG), drawing the next batch, and
// processBatch — all under one root "batch" span when this iteration is on
// the tracer's sampling grid. The root's context is installed on the PS
// client and the hot cache for the duration of the turn so their spans (RPCs,
// refreshes, simulated wire time) stitch to this batch; an unsampled turn
// threads zero values through the same calls at nil-check cost.
func (w *worker) turn(perIteration func(*worker) error) error {
	root := w.tracer.Root(w.iteration)
	if root.Valid() {
		w.beginSpan(root)
		defer w.endSpan()
	}
	if perIteration != nil {
		if err := perIteration(w); err != nil {
			return err
		}
	}
	smp := root.Start(span.NNegSample)
	b := w.nextBatch()
	smp.EndAttrs(span.Attrs{Rows: int64(len(b.Pos)), Shard: span.NoShard})
	_, err := w.processBatch(b)
	return err
}

// beginSpan installs root as the worker's current batch span and points the
// client and cache at it.
func (w *worker) beginSpan(root span.Active) {
	w.sp = root
	sc := root.Context()
	w.client.SetSpanContext(sc)
	if w.hot != nil {
		w.hot.SetSpanContext(sc)
	}
}

// endSpan closes the current batch span and detaches the client and cache.
func (w *worker) endSpan() {
	w.sp.End()
	w.sp = span.Active{}
	w.client.SetSpanContext(span.Context{})
	if w.hot != nil {
		w.hot.SetSpanContext(span.Context{})
	}
}

// gradBuf is a reusable keyed gradient accumulator: a map from embedding key
// to gradient row, backed by a grow-only pool of max-width rows so steady
// state allocates nothing per batch. Rows are zeroed on acquisition.
type gradBuf struct {
	m    map[ps.Key][]float32
	pool [][]float32
	used int
	maxW int
}

func newGradBuf(maxW int) *gradBuf {
	return &gradBuf{m: make(map[ps.Key][]float32), maxW: maxW}
}

// reset empties the accumulator, returning every pooled row.
func (g *gradBuf) reset() {
	clear(g.m)
	g.used = 0
}

// row returns k's gradient row of width w, acquiring and zeroing a pooled
// row on first touch.
func (g *gradBuf) row(k ps.Key, w int) []float32 {
	if r, ok := g.m[k]; ok {
		return r
	}
	if g.used == len(g.pool) {
		g.pool = append(g.pool, make([]float32, g.maxW))
	}
	r := g.pool[g.used][:w]
	g.used++
	vec.Zero(r)
	g.m[k] = r
	return r
}

// shardScratch is one compute shard's private accumulation state. Shards
// never share scratch, so the parallel gradient pass needs no locks; the
// trainer merges shard results in fixed shard order afterwards.
type shardScratch struct {
	grads     *gradBuf
	negScores []float32
	weights   []float32
	lossSum   float64
	pairs     int
}

// batchScratch is the worker-owned arena reused across batches: per-shard
// accumulators, the merged gradient buffer handed to the cache and the PS,
// and the miss list of the gather step.
type batchScratch struct {
	maxW    int
	shards  []*shardScratch
	merged  *gradBuf
	missing []ps.Key
}

// scratch lazily builds the arena (row widths are only known once the
// client exists).
func (w *worker) scratch() *batchScratch {
	if w.scr == nil {
		maxW := w.client.Width(ps.EntityKey(0))
		if rw := w.client.Width(ps.RelationKey(0)); rw > maxW {
			maxW = rw
		}
		w.scr = &batchScratch{maxW: maxW, merged: newGradBuf(maxW)}
	}
	return w.scr
}

// processBatch runs workflow steps 2–4 (§IV-B) for one mini-batch: gather
// rows (cache first, then PS), compute gradients, update cached copies, and
// push all gradients to the PS. It returns the batch's mean pair loss.
//
// The gradient pass (step 3) runs on the parallel execution engine: the
// batch's positives split over the fixed batchShards grid, each shard
// accumulates into private scratch, and partial gradients and losses merge
// in shard order — deterministic at any Config.Parallelism.
func (w *worker) processBatch(b *sampler.Batch) (float64, error) {
	scr := w.scratch()

	// Step 2: load embeddings — hot table first, parameter server for the
	// rest. Serial: the hot cache is confined to the worker goroutine.
	ents, rels := b.DistinctIDs()
	clear(w.rows)
	lookup := w.sp.Start(span.NCacheLookup)
	missing := scr.missing[:0]
	gather := func(k ps.Key) {
		if w.hot != nil {
			if row, ok := w.hot.Get(k, w.iteration); ok {
				w.rows[k] = row
				return
			}
		}
		missing = append(missing, k)
	}
	for _, e := range ents {
		gather(ps.EntityKey(e))
	}
	for _, r := range rels {
		gather(ps.RelationKey(r))
	}
	scr.missing = missing // keep the grown backing array for reuse
	lookup.EndAttrs(span.Attrs{Rows: int64(len(ents) + len(rels)), Shard: span.NoShard})
	degradedBatch := false
	if len(missing) > 0 {
		var staleServed map[ps.Key]bool
		if err := w.client.Pull(missing, w.rows); err != nil {
			var deg *ps.DegradedError
			if !errors.As(err, &deg) || !w.degradedEnabled() {
				return 0, err
			}
			served, serr := w.staleServe(deg)
			if serr != nil {
				return 0, serr
			}
			staleServed = served
			degradedBatch = true
		}
		if w.hot != nil {
			// Freshly pulled hot rows re-enter the table with a reset
			// staleness clock (the per-row synchronization of Alg. 3).
			// Stale-served rows keep their old clock: no fresh server value
			// landed, so their age must keep counting toward the bound.
			for _, k := range missing {
				if staleServed[k] {
					continue
				}
				w.hot.Offer(k, w.rows[k], w.iteration)
			}
		}
	}

	// Step 3: forward + backward, sharded across cores.
	compute := w.sp.Start(span.NGradCompute)
	start := time.Now()
	shards := par.Shards(len(b.Pos), batchShards)
	for len(scr.shards) < len(shards) {
		scr.shards = append(scr.shards, &shardScratch{grads: newGradBuf(scr.maxW)})
	}
	for s := range shards {
		sc := scr.shards[s]
		sc.grads.reset()
		sc.lossSum, sc.pairs = 0, 0
	}
	par.For(w.degree, len(shards), func(s int) {
		w.computeShard(scr.shards[s], b, shards[s])
	})

	// Ordered merge: shard partials combine in shard order, so the per-key
	// float sums do not depend on how shards were scheduled.
	merged := scr.merged
	merged.reset()
	var lossSum float64
	pairs := 0
	for s := range shards {
		sc := scr.shards[s]
		for k, g := range sc.grads.m {
			dst := merged.row(k, len(g))
			vec.Add(dst, dst, g)
		}
		lossSum += sc.lossSum
		pairs += sc.pairs
	}
	elapsed := time.Since(start)
	compute.EndAttrs(span.Attrs{Rows: int64(pairs), Shard: span.NoShard})
	w.compTime += elapsed
	if o := w.obs; o != nil {
		o.comp.Observe(elapsed)
	}

	// Step 4: apply to cached copies, push everything to the PS. The local
	// copy gets the raw gradient; only the pushed exchange is sparsified
	// (error feedback re-sends the dropped mass later).
	if w.hot != nil {
		for k, g := range merged.m {
			w.hot.Update(k, g)
		}
	}
	if w.ef != nil {
		for k, g := range merged.m {
			w.ef.Sparsify(k, g)
		}
	}
	if err := w.replayPushes(); err != nil {
		return 0, err
	}
	if err := w.client.Push(merged.m); err != nil {
		var deg *ps.DegradedError
		if !errors.As(err, &deg) || !w.degradedEnabled() {
			return 0, err
		}
		if berr := w.bufferPushes(deg.Keys, merged.m, deg.Err); berr != nil {
			return 0, berr
		}
		degradedBatch = true
	}
	w.iteration++
	if o := w.obs; o != nil {
		o.iterations.Inc()
		o.pairs.Add(int64(pairs))
		if degradedBatch {
			o.degradedBatches.Inc()
		}
	}
	if pairs == 0 {
		return 0, nil
	}
	mean := lossSum / float64(pairs)
	w.lossSum += mean
	w.lossCount++
	if o := w.obs; o != nil {
		// Keep the live endpoint's loss current even when no timeline
		// emitter refreshes the derived gauges. Workers overwrite each
		// other in scheduling order, which is deterministic.
		o.loss.Set(w.lossSum / float64(w.lossCount))
	}
	return mean, nil
}

// computeShard scores and differentiates the positives in r against their
// negatives, accumulating gradients and loss into sc. It reads w.rows and
// the model/loss concurrently with other shards (all immutable during the
// pass) and writes only shard-private state.
func (w *worker) computeShard(sc *shardScratch, b *sampler.Batch, r par.Range) {
	mdl, loss := w.cfg.Model, w.cfg.Loss
	for i := r.Begin; i < r.End; i++ {
		pos := b.Pos[i]
		ns := b.Neg[i]
		if len(ns.Entities) == 0 {
			continue
		}
		h := w.rows[ps.EntityKey(pos.Head)]
		rel := w.rows[ps.RelationKey(pos.Relation)]
		t := w.rows[ps.EntityKey(pos.Tail)]
		posScore := mdl.Score(h, rel, t)
		gh := sc.grads.row(ps.EntityKey(pos.Head), len(h))
		gr := sc.grads.row(ps.RelationKey(pos.Relation), len(rel))
		gt := sc.grads.row(ps.EntityKey(pos.Tail), len(t))
		negScores := growF32(&sc.negScores, len(ns.Entities))
		for j, ne := range ns.Entities {
			neRow := w.rows[ps.EntityKey(ne)]
			if ns.CorruptHead {
				negScores[j] = mdl.Score(neRow, rel, t)
			} else {
				negScores[j] = mdl.Score(h, rel, neRow)
			}
		}
		weights := growF32(&sc.weights, len(ns.Entities))
		negativeWeightsInto(weights, negScores, w.cfg.AdversarialTemp)
		// The positive triple's gradient is linear in the loss derivative,
		// so the per-negative coefficients sum into one Grad call instead
		// of |negatives| passes over (h, r, t).
		var dPosTotal float32
		for j, ne := range ns.Entities {
			neRow := w.rows[ps.EntityKey(ne)]
			l, dPos, dNeg := loss.PosNeg(posScore, negScores[j])
			sc.lossSum += float64(l) * float64(weights[j]) * float64(len(ns.Entities))
			sc.pairs++
			scale := weights[j]
			dPosTotal += dPos * scale
			if dNeg != 0 {
				gn := sc.grads.row(ps.EntityKey(ne), len(neRow))
				if ns.CorruptHead {
					mdl.Grad(neRow, rel, t, dNeg*scale, gn, gr, gt)
				} else {
					mdl.Grad(h, rel, neRow, dNeg*scale, gh, gr, gn)
				}
			}
		}
		if dPosTotal != 0 {
			mdl.Grad(h, rel, t, dPosTotal, gh, gr, gt)
		}
	}
}

// growF32 resizes *buf to n elements, reusing its backing array when
// possible. Contents are unspecified — callers overwrite every element.
func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// epochStats returns and resets this worker's per-epoch accounting:
// computation time, simulated communication time, and mean loss.
func (w *worker) epochStats(cm netsim.CostModel) (comp, comm time.Duration, loss float64) {
	snap := w.meter.Snapshot()
	delta := snap.Sub(w.commBase)
	w.commBase = snap
	comp = w.compTime
	w.compTime = 0
	comm = delta.Time(cm)
	if w.lossCount > 0 {
		loss = w.lossSum / float64(w.lossCount)
	}
	w.lossSum, w.lossCount = 0, 0
	return comp, comm, loss
}

// negativeWeights returns the per-negative gradient weights: uniform 1/n
// when temp = 0, or the self-adversarial softmax(temp · score) otherwise
// (hard negatives — those the model scores highest — get more weight).
func negativeWeights(scores []float32, temp float32) []float32 {
	out := make([]float32, len(scores))
	negativeWeightsInto(out, scores, temp)
	return out
}

// negativeWeightsInto is the allocation-free form of negativeWeights: it
// fills out (same length as scores) in place.
func negativeWeightsInto(out, scores []float32, temp float32) {
	n := len(scores)
	if n == 0 {
		return
	}
	if temp <= 0 {
		u := 1 / float32(n)
		for i := range out {
			out[i] = u
		}
		return
	}
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var sum float64
	for i, s := range scores {
		e := math.Exp(float64(temp * (s - maxS)))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
}
