package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hetkg/internal/cache"
	"hetkg/internal/netsim"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/sampler"
)

// worker is one training worker: a sampler over its machine's subgraph, a
// PS client, an optional hot-embedding cache, and per-epoch accounting.
// Workers are driven round-robin by the trainers — one batch per turn — so
// asynchronous interleaving (worker A missing worker B's fresh pushes until
// cache refresh) is reproduced deterministically; per-worker clocks model
// what would run in parallel on separate machines.
type worker struct {
	id      int
	machine int
	smp     *sampler.Sampler
	client  *ps.Client
	meter   *netsim.Meter
	hot     *cache.HotCache // nil for cacheless trainers

	cfg  *Config
	rows map[ps.Key][]float32 // per-batch working set (pulled + cached)

	// queued holds prefetched batches to replay (HET-KG).
	queued []*sampler.Batch
	// iteration counts processed batches for staleness bookkeeping.
	iteration int

	// Per-epoch accounting, reset by epochStats.
	compTime  time.Duration
	commBase  netsim.Snapshot
	lossSum   float64
	lossCount int
	// Run-level cache accounting, accumulated at epoch barriers.
	accTotal, hitTotal float64
}

// newWorkers builds one worker per (machine, slot) over the partitioned
// subgraphs. withCache attaches a HotCache configured from cfg.Cache.
func newWorkers(cfg *Config, cluster *ps.Cluster, part *partition.Result, tr ps.Transport, withCache bool) ([]*worker, error) {
	subs := part.Subgraphs(cfg.Graph)
	local := func(m int) bool {
		if len(cfg.LocalMachines) == 0 {
			return true
		}
		for _, lm := range cfg.LocalMachines {
			if lm == m {
				return true
			}
		}
		return false
	}
	var workers []*worker
	id := 0
	for m := 0; m < cfg.NumMachines; m++ {
		sub := subs[m]
		if !local(m) {
			id += cfg.WorkersPerMachine // keep worker seeds stable across deployments
			continue
		}
		if sub.NumTriples() == 0 {
			// A machine with no triples contributes no worker; its shard
			// still serves pulls.
			continue
		}
		for s := 0; s < cfg.WorkersPerMachine; s++ {
			meter := &netsim.Meter{}
			client, err := ps.NewClient(m, cluster, tr, meter)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			smp, err := sampler.New(sampler.Config{
				BatchSize:       cfg.BatchSize,
				NegPerPos:       cfg.NegPerPos,
				ChunkSize:       cfg.ChunkSize,
				NumEntity:       cfg.Graph.NumEntity,
				Filter:          cfg.Filter,
				NegativeWeights: cfg.NegativeWeights,
			}, sub, rng)
			if err != nil {
				return nil, err
			}
			w := &worker{
				id:      id,
				machine: m,
				smp:     smp,
				client:  client,
				meter:   meter,
				cfg:     cfg,
				rows:    make(map[ps.Key][]float32),
			}
			if withCache {
				hot, err := cache.New(client, cfg.NewOptimizer(), cfg.Cache.SyncEvery)
				if err != nil {
					return nil, err
				}
				w.hot = hot
			}
			workers = append(workers, w)
			id++
		}
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("train: no worker received any triples")
	}
	return workers, nil
}

// nextBatch returns the next batch to train on: a queued prefetched batch if
// one exists, otherwise a fresh sample.
func (w *worker) nextBatch() *sampler.Batch {
	if len(w.queued) > 0 {
		b := w.queued[0]
		w.queued = w.queued[1:]
		return b
	}
	return w.smp.Next()
}

// processBatch runs workflow steps 2–4 (§IV-B) for one mini-batch: gather
// rows (cache first, then PS), compute gradients, update cached copies, and
// push all gradients to the PS. It returns the batch's mean pair loss.
func (w *worker) processBatch(b *sampler.Batch) (float64, error) {
	// Step 2: load embeddings — hot table first, parameter server for the
	// rest.
	ents, rels := b.DistinctIDs()
	clear(w.rows)
	var missing []ps.Key
	gather := func(k ps.Key) {
		if w.hot != nil {
			if row, ok := w.hot.Get(k, w.iteration); ok {
				w.rows[k] = row
				return
			}
		}
		missing = append(missing, k)
	}
	for _, e := range ents {
		gather(ps.EntityKey(e))
	}
	for _, r := range rels {
		gather(ps.RelationKey(r))
	}
	if len(missing) > 0 {
		if err := w.client.Pull(missing, w.rows); err != nil {
			return 0, err
		}
		if w.hot != nil {
			// Freshly pulled hot rows re-enter the table with a reset
			// staleness clock (the per-row synchronization of Alg. 3).
			for _, k := range missing {
				w.hot.Offer(k, w.rows[k], w.iteration)
			}
		}
	}

	// Step 3: forward + backward. Gradients accumulate per distinct key.
	start := time.Now()
	grads := make(map[ps.Key][]float32, len(w.rows))
	gradOf := func(k ps.Key) []float32 {
		g, ok := grads[k]
		if !ok {
			g = make([]float32, w.client.Width(k))
			grads[k] = g
		}
		return g
	}
	var lossSum float64
	pairs := 0
	for i, pos := range b.Pos {
		h := w.rows[ps.EntityKey(pos.Head)]
		r := w.rows[ps.RelationKey(pos.Relation)]
		t := w.rows[ps.EntityKey(pos.Tail)]
		posScore := w.cfg.Model.Score(h, r, t)
		ns := b.Neg[i]
		if len(ns.Entities) == 0 {
			continue
		}
		gh := gradOf(ps.EntityKey(pos.Head))
		gr := gradOf(ps.RelationKey(pos.Relation))
		gt := gradOf(ps.EntityKey(pos.Tail))
		negScores := make([]float32, len(ns.Entities))
		for j, ne := range ns.Entities {
			neRow := w.rows[ps.EntityKey(ne)]
			if ns.CorruptHead {
				negScores[j] = w.cfg.Model.Score(neRow, r, t)
			} else {
				negScores[j] = w.cfg.Model.Score(h, r, neRow)
			}
		}
		weights := negativeWeights(negScores, w.cfg.AdversarialTemp)
		for j, ne := range ns.Entities {
			neRow := w.rows[ps.EntityKey(ne)]
			loss, dPos, dNeg := w.cfg.Loss.PosNeg(posScore, negScores[j])
			lossSum += float64(loss) * float64(weights[j]) * float64(len(ns.Entities))
			pairs++
			scale := weights[j]
			if dPos != 0 {
				w.cfg.Model.Grad(h, r, t, dPos*scale, gh, gr, gt)
			}
			if dNeg != 0 {
				gn := gradOf(ps.EntityKey(ne))
				if ns.CorruptHead {
					w.cfg.Model.Grad(neRow, r, t, dNeg*scale, gn, gr, gt)
				} else {
					w.cfg.Model.Grad(h, r, neRow, dNeg*scale, gh, gr, gn)
				}
			}
		}
	}
	w.compTime += time.Since(start)

	// Step 4: apply to cached copies, push everything to the PS.
	if w.hot != nil {
		for k, g := range grads {
			w.hot.Update(k, g)
		}
	}
	if err := w.client.Push(grads); err != nil {
		return 0, err
	}
	w.iteration++
	if pairs == 0 {
		return 0, nil
	}
	mean := lossSum / float64(pairs)
	w.lossSum += mean
	w.lossCount++
	return mean, nil
}

// epochStats returns and resets this worker's per-epoch accounting:
// computation time, simulated communication time, and mean loss.
func (w *worker) epochStats(cm netsim.CostModel) (comp, comm time.Duration, loss float64) {
	snap := w.meter.Snapshot()
	delta := snap.Sub(w.commBase)
	w.commBase = snap
	comp = w.compTime
	w.compTime = 0
	comm = delta.Time(cm)
	if w.lossCount > 0 {
		loss = w.lossSum / float64(w.lossCount)
	}
	w.lossSum, w.lossCount = 0, 0
	return comp, comm, loss
}

// negativeWeights returns the per-negative gradient weights: uniform 1/n
// when temp = 0, or the self-adversarial softmax(temp · score) otherwise
// (hard negatives — those the model scores highest — get more weight).
func negativeWeights(scores []float32, temp float32) []float32 {
	n := len(scores)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	if temp <= 0 {
		u := 1 / float32(n)
		for i := range out {
			out[i] = u
		}
		return out
	}
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var sum float64
	for i, s := range scores {
		e := math.Exp(float64(temp * (s - maxS)))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}
