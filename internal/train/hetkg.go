package train

import (
	"fmt"

	"hetkg/internal/cache"
)

// TrainHETKG runs the paper's system: the DGL-KE substrate plus a per-worker
// hot-embedding table built by prefetch (Algorithm 1) and filter
// (Algorithm 2), maintained under the partial-stale protocol (Algorithms
// 3/4). cfg.Cache.Strategy selects CPS (table fixed after a one-shot census)
// or DPS (table rebuilt from a D-iteration lookahead every D iterations).
func TrainHETKG(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cache.Capacity < 0 {
		return nil, fmt.Errorf("train: negative cache capacity %d", cfg.Cache.Capacity)
	}
	env, err := setupPS(&cfg)
	if err != nil {
		return nil, err
	}
	workers, err := newWorkers(&cfg, env.cluster, env.part, env.tr, true)
	if err != nil {
		return nil, err
	}

	name := "HET-KG-C"
	if cfg.Cache.Strategy == cache.DPS {
		name = "HET-KG-D"
	}
	return runPSTraining(&cfg, env, workers, name, hetkgHook(&cfg))
}

// hetkgHook builds the HET-KG per-iteration hook: prefetch (Algorithm 1),
// hot-table construction via filter (Algorithm 2), and the CPS/DPS build
// policy. The hook is shared by the static trainer (TrainHETKG) and the
// elastic driver, which installs it on workers it adopts mid-run — the
// one-shot CPS build is keyed by worker id, so an adopted partition's
// table is rebuilt once in its new process and then stays fixed.
func hetkgHook(cfg *Config) func(*worker) error {
	filterCfg := cache.FilterConfig{
		Capacity:       cfg.Cache.Capacity,
		EntityFraction: cfg.Cache.EntityFraction,
		Heterogeneity:  cfg.Cache.Heterogeneity,
	}
	built := make(map[int]bool) // CPS: one build per worker

	return func(w *worker) error {
		// Staleness synchronization (Algorithm 3 lines 8–9) is per-row:
		// the cache expires entries older than P at Get time and the
		// worker re-pulls them with its ordinary batch pull, so refresh
		// traffic is metered through the normal path and only rows that
		// are actually used pay it.
		if len(w.queued) > 0 {
			return nil
		}
		// Queue exhausted: prefetch ahead (Algorithm 1).
		switch cfg.Cache.Strategy {
		case cache.CPS:
			d := cfg.Cache.PrefetchD
			if d <= 0 {
				d = w.smp.IterationsPerEpoch()
			}
			pre := cache.Prefetch(w.smp, d)
			w.queued = pre.Batches
			if !built[w.id] {
				// One-shot construction from the whole-subgraph census.
				keys, err := cache.Filter(pre, filterCfg)
				if err != nil {
					return err
				}
				if err := w.hot.Build(keys, w.iteration); err != nil {
					return err
				}
				built[w.id] = true
			}
		case cache.DPS:
			d := cfg.Cache.PrefetchD
			if d <= 0 {
				d = 16
			}
			pre := cache.Prefetch(w.smp, d)
			w.queued = pre.Batches
			// Rebuild the table from the short-term census every D
			// iterations (the rebuild is also a refresh, so DPS pays pull
			// traffic for the new table's values here).
			keys, err := cache.Filter(pre, filterCfg)
			if err != nil {
				return err
			}
			if err := w.hot.Build(keys, w.iteration); err != nil {
				return err
			}
		default:
			return fmt.Errorf("train: unknown cache strategy %v", cfg.Cache.Strategy)
		}
		return nil
	}
}
