package train

import (
	"os"
	"sync"
	"testing"
	"time"

	"hetkg/internal/ckpt"
	"hetkg/internal/metrics"
	"hetkg/internal/ps"
	"hetkg/internal/telemetry"
)

// elasticMembership builds an in-process coordinator with a fast heartbeat
// so tests finish quickly.
func elasticMembership(t *testing.T, parts int) *ps.Membership {
	t.Helper()
	m, err := ps.NewMembership(ps.MemberConfig{
		Partitions:     parts,
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestElasticSingleWorkerTrains(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Dataset = "traintest"
	m := elasticMembership(t, 2)
	res, err := TrainElastic(cfg, ElasticConfig{Coordinator: m, Label: "solo"})
	if err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	if res.System != "HET-KG-C/elastic" {
		t.Errorf("System = %q", res.System)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("recorded %d epochs, want %d", len(res.Epochs), cfg.Epochs)
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first {
		t.Errorf("loss did not decrease: %.4f → %.4f", first, last)
	}
	if res.Final.MRR < 0.15 {
		t.Errorf("final MRR = %.3f, want > 0.15", res.Final.MRR)
	}
	if !m.AllDone() {
		t.Error("coordinator does not agree the run finished")
	}
}

// TestElasticShipsTelemetry runs a solo elastic worker against a
// coordinator with a fleet aggregator and asserts the worker's registry
// snapshots arrived: piggybacked on heartbeats, labeled with the worker's
// role and label, carrying the live training counters.
func TestElasticShipsTelemetry(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Dataset = "traintest"
	cfg.Metrics = metrics.NewRegistry()
	fleet := telemetry.NewFleet(telemetry.FleetConfig{})
	m, err := ps.NewMembership(ps.MemberConfig{
		Partitions:     2,
		HeartbeatEvery: 5 * time.Millisecond,
		Telemetry:      fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainElastic(cfg, ElasticConfig{Coordinator: m, Label: "solo"}); err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	v := fleet.View()
	if len(v.Processes) != 1 {
		t.Fatalf("fleet processes = %+v, want the one worker", v.Processes)
	}
	p := v.Processes[0]
	if p.ID != "worker/solo" || p.Role != telemetry.RoleWorker {
		t.Fatalf("process = %+v", p)
	}
	if p.Reports < 1 {
		t.Fatalf("reports = %d, want >= 1", p.Reports)
	}
	// The last shipped snapshot carried the training counters.
	iters := cfg.Metrics.Counter(metrics.MTrainIterations).Value()
	if iters == 0 {
		t.Fatal("no iterations trained")
	}
}

// TestElasticTelemetryDisabledWithoutAggregator pins the refusal path: a
// coordinator without a Fleet rejects the first report and the worker
// silently stops shipping instead of failing the run.
func TestElasticTelemetryDisabledWithoutAggregator(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Dataset = "traintest"
	cfg.Metrics = metrics.NewRegistry()
	m := elasticMembership(t, 2)
	if _, err := TrainElastic(cfg, ElasticConfig{Coordinator: m, Label: "mute"}); err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	if !m.AllDone() {
		t.Error("run did not finish")
	}
}

// TestElasticResumeFromSnapshot pre-seeds the checkpoint directory as a
// crashed worker would have left it — partition 0 fully done, partition 1
// mid-run — and asserts the adopting process resumes rather than restarts,
// leaves fresh Done snapshots behind, and still completes the run.
func TestElasticResumeFromSnapshot(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Dataset = "traintest"
	cfg.Metrics = metrics.NewRegistry()
	dir := t.TempDir()
	writeProg := func(p ckpt.Progress) {
		t.Helper()
		if err := ckpt.WriteProgressFile(dir, &p); err != nil {
			t.Fatal(err)
		}
	}
	writeProg(ckpt.Progress{Partition: 0, Epoch: cfg.Epochs, Done: true,
		Dataset: cfg.Dataset, Seed: cfg.Seed})
	writeProg(ckpt.Progress{Partition: 1, Epoch: 2, Iteration: 1,
		Dataset: cfg.Dataset, Seed: cfg.Seed})

	m := elasticMembership(t, 2)
	res, err := TrainElastic(cfg, ElasticConfig{
		Coordinator: m, Label: "resumer", CkptDir: dir, CkptEvery: 4,
	})
	if err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	if res.Final.MRR <= 0 {
		t.Errorf("final MRR = %.3f after resume", res.Final.MRR)
	}
	if got := cfg.Metrics.Counter(metrics.MClusterCkptResumes).Value(); got < 1 {
		t.Errorf("cluster.ckpt_resumes = %d, want >= 1", got)
	}
	if got := cfg.Metrics.Counter(metrics.MClusterCkptWrites).Value(); got < 1 {
		t.Errorf("cluster.ckpt_writes = %d, want >= 1", got)
	}
	// The run's own snapshots must mark partition 1 done at the end.
	snap, err := ckpt.ReadProgressFile(dir, 1)
	if err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if !snap.Done {
		t.Errorf("final snapshot for partition 1 = %+v, want Done", snap)
	}
}

// TestElasticIgnoresForeignAndCorruptSnapshots: a snapshot from another
// run's seed and a truncated file are both skipped (counted as corrupt) and
// training starts from the coordinator's hint instead of failing.
func TestElasticIgnoresForeignAndCorruptSnapshots(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Dataset = "traintest"
	cfg.Metrics = metrics.NewRegistry()
	dir := t.TempDir()
	if err := ckpt.WriteProgressFile(dir, &ckpt.Progress{
		Partition: 0, Epoch: 2, Dataset: cfg.Dataset, Seed: cfg.Seed + 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt.ProgressPath(dir, 1),
		[]byte("HETKG-PROG-v1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := elasticMembership(t, 2)
	res, err := TrainElastic(cfg, ElasticConfig{
		Coordinator: m, Label: "skeptic", RecoverFrom: dir,
	})
	if err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	if got := cfg.Metrics.Counter(metrics.MClusterCkptCorrupt).Value(); got != 2 {
		t.Errorf("cluster.ckpt_corrupt = %d, want 2", got)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Errorf("recorded %d epochs, want %d (full restart from epoch 1)", len(res.Epochs), cfg.Epochs)
	}
}

// TestElasticTwoWorkersSplitThePartitions runs two elastic worker drivers
// concurrently against one coordinator: each keeps its preferred partition,
// both observe the cluster-wide completion, and neither errors.
func TestElasticTwoWorkersSplitThePartitions(t *testing.T) {
	m := elasticMembership(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	results := make([]*Result, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := testConfig(t, 2)
			cfg.Dataset = "traintest"
			results[i], errs[i] = TrainElastic(cfg, ElasticConfig{
				Coordinator: m,
				Label:       "peer",
				Preferred:   []int{i},
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !m.AllDone() {
		t.Error("cluster did not finish")
	}
	for i, res := range results {
		if res == nil || res.Final.MRR <= 0 {
			t.Errorf("worker %d has no final evaluation: %+v", i, res)
		}
	}
}
