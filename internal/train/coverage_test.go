package train

import (
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/sampler"
)

// Every registered model must train end-to-end (loss decreasing) on the
// HET-KG system — scoring, analytic gradients, variable row widths
// (TransH/RESCAL relations), cache updates, and PS pushes all composed.
func TestAllModelsTrainEndToEnd(t *testing.T) {
	for _, name := range model.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, 2)
			cfg.Epochs = 2
			cfg.EvalEvery = 0
			cfg.Dim = 8 // RESCAL relations are d², keep it cheap
			m, err := model.New(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Model = m
			res, err := TrainHETKG(cfg)
			if err != nil {
				t.Fatalf("TrainHETKG(%s): %v", name, err)
			}
			if res.Epochs[1].Loss >= res.Epochs[0].Loss {
				t.Errorf("%s loss did not decrease: %.4f → %.4f",
					name, res.Epochs[0].Loss, res.Epochs[1].Loss)
			}
			if res.Relations.Dim != m.RelationDim(cfg.Dim) {
				t.Errorf("%s relation table width %d, want %d",
					name, res.Relations.Dim, m.RelationDim(cfg.Dim))
			}
		})
	}
}

func TestMultipleWorkersPerMachine(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.WorkersPerMachine = 2
	cfg.Epochs = 2
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("TrainHETKG 2x2 workers: %v", err)
	}
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Error("loss did not decrease with 4 workers")
	}
	if res.HitRatio <= 0 {
		t.Error("caches never hit with multiple workers per machine")
	}
}

func TestQuantizedTraining(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 2
	exact, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := testConfig(t, 2)
	q.Epochs = 2
	q.Quantize8Bit = true
	quant, err := TrainHETKG(q)
	if err != nil {
		t.Fatalf("quantized training: %v", err)
	}
	if quant.Traffic.RemoteBytes >= exact.Traffic.RemoteBytes {
		t.Errorf("quantized remote bytes %d not below exact %d",
			quant.Traffic.RemoteBytes, exact.Traffic.RemoteBytes)
	}
	if quant.Epochs[1].Loss >= quant.Epochs[0].Loss {
		t.Error("quantized training did not learn")
	}
	// Quality within a tolerant band of the exact run.
	if quant.Final.MRR < exact.Final.MRR*0.6 {
		t.Errorf("8-bit quantization collapsed MRR: %.3f vs %.3f",
			quant.Final.MRR, exact.Final.MRR)
	}
}

func TestAlternativeOptimizers(t *testing.T) {
	for _, name := range []string{"sgd", "adam"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, 2)
			cfg.Epochs = 2
			cfg.EvalEvery = 0
			if name == "sgd" {
				cfg.LR = 0.05 // plain SGD needs a gentler rate
			}
			lr := cfg.LR
			cfg.NewOptimizer = func() opt.Optimizer {
				o, err := opt.New(name, lr)
				if err != nil {
					t.Fatal(err)
				}
				return o
			}
			res, err := TrainDGLKE(cfg)
			if err != nil {
				t.Fatalf("TrainDGLKE(%s): %v", name, err)
			}
			if res.Epochs[1].Loss >= res.Epochs[0].Loss {
				t.Errorf("%s loss did not decrease: %.4f → %.4f",
					name, res.Epochs[0].Loss, res.Epochs[1].Loss)
			}
		})
	}
}

func TestAlternativePartitioners(t *testing.T) {
	for _, name := range []string{"random", "ldg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, 4)
			cfg.Epochs = 1
			cfg.EvalEvery = 0
			p, err := partition.New(name, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Partitioner = p
			if _, err := TrainHETKG(cfg); err != nil {
				t.Fatalf("TrainHETKG with %s partitioner: %v", name, err)
			}
		})
	}
}

func TestRankingLossTraining(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Loss = model.RankingLoss{Margin: 1}
	cfg.Epochs = 2
	cfg.EvalEvery = 0
	res, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatalf("ranking-loss training: %v", err)
	}
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Errorf("ranking loss did not decrease: %.4f → %.4f",
			res.Epochs[0].Loss, res.Epochs[1].Loss)
	}
}

func TestEmptyMachineTolerated(t *testing.T) {
	// With more machines than densely-connected regions, a machine can end
	// up with zero triples; training must proceed with the workers that
	// have data while the empty machine's shard keeps serving.
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	// Force a degenerate partition: everything on machine 0.
	cfg.Partitioner = &allOnZero{}
	res, err := TrainDGLKE(cfg)
	if err != nil {
		t.Fatalf("degenerate partition: %v", err)
	}
	if len(res.Epochs) != 1 {
		t.Error("epoch not recorded")
	}
}

// allOnZero assigns every entity (and thus every triple) to machine 0,
// leaving the other machines' shards empty of entities.
type allOnZero struct{}

func (*allOnZero) Name() string { return "all-on-zero" }

func (*allOnZero) Partition(g *kg.Graph, k int) (*partition.Result, error) {
	r := &partition.Result{K: k, EntityPart: make([]int32, g.NumEntity)}
	r.TripleIdx = make([][]int32, k)
	for i := range g.Triples {
		r.TripleIdx[0] = append(r.TripleIdx[0], int32(i))
	}
	return r, nil
}

func TestNegativeWeights(t *testing.T) {
	// temp = 0: uniform.
	w := negativeWeights([]float32{1, 2, 3}, 0)
	for _, v := range w {
		if !approxF32(v, 1.0/3) {
			t.Fatalf("uniform weights = %v", w)
		}
	}
	// temp > 0: sums to 1, monotone in score.
	w = negativeWeights([]float32{-1, 0, 5}, 1)
	var sum float32
	for _, v := range w {
		sum += v
	}
	if !approxF32(sum, 1) {
		t.Errorf("weights sum to %v", sum)
	}
	if !(w[2] > w[1] && w[1] > w[0]) {
		t.Errorf("weights not monotone in score: %v", w)
	}
	// Numerical stability with huge scores.
	w = negativeWeights([]float32{1e8, 1e8 - 1}, 1)
	if w[0] <= 0 || w[0] > 1 || w[0] != w[0] {
		t.Errorf("unstable weights: %v", w)
	}
	if len(negativeWeights(nil, 1)) != 0 {
		t.Error("empty scores should give empty weights")
	}
}

func TestAdversarialTraining(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.AdversarialTemp = 1
	cfg.Epochs = 2
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("adversarial training: %v", err)
	}
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Errorf("adversarial loss did not decrease: %.4f → %.4f",
			res.Epochs[0].Loss, res.Epochs[1].Loss)
	}
	if res.Final.MRR < 0.1 {
		t.Errorf("adversarial MRR %.3f too low", res.Final.MRR)
	}
}

func approxF32(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-5
}

func TestDegreeWeightedNegativeTraining(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 2
	cfg.EvalEvery = 0
	cfg.NegativeWeights = sampler.DegreeWeights(cfg.Graph.EntityDegrees())
	res, err := TrainHETKG(cfg)
	if err != nil {
		t.Fatalf("degree-weighted training: %v", err)
	}
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Errorf("loss did not decrease: %.4f → %.4f", res.Epochs[0].Loss, res.Epochs[1].Loss)
	}
}
